module skynet

go 1.22
