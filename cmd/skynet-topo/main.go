// Command skynet-topo inspects the synthetic topology substrate: summary
// statistics, per-location listings, and Graphviz DOT export of a
// subtree — handy when interpreting incident roots and voting graphs.
//
// Usage:
//
//	skynet-topo -scale small -stats
//	skynet-topo -scale small -under "RG01|CT01|LS01|ST01"
//	skynet-topo -scale small -dot "RG01|CT01|LS01|ST01|CL01" > cluster.dot
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"skynet/internal/hierarchy"
	"skynet/internal/topology"
)

func main() {
	var (
		scale  = flag.String("scale", "small", "topology scale: small or production")
		seed   = flag.Int64("seed", 1, "topology seed")
		stats  = flag.Bool("stats", false, "print summary statistics")
		under  = flag.String("under", "", "list devices under a location path")
		dot    = flag.String("dot", "", "emit Graphviz DOT of the subgraph under a location path")
		export = flag.String("export", "", "write the topology as JSON to this file")
	)
	flag.Parse()

	var cfg topology.Config
	switch *scale {
	case "small":
		cfg = topology.SmallConfig()
	case "production":
		cfg = topology.ProductionConfig()
	default:
		fatal(fmt.Errorf("unknown scale %q", *scale))
	}
	cfg.Seed = *seed
	topo, err := topology.Generate(cfg)
	if err != nil {
		fatal(err)
	}

	if !*stats && *under == "" && *dot == "" {
		*stats = true
	}
	if *stats {
		printStats(topo)
	}
	if *under != "" {
		p, err := hierarchy.Parse(*under)
		if err != nil {
			fatal(err)
		}
		listUnder(topo, p)
	}
	if *dot != "" {
		p, err := hierarchy.Parse(*dot)
		if err != nil {
			fatal(err)
		}
		emitDOT(topo, p)
	}
	if *export != "" {
		if err := topo.SaveFile(*export); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d devices, %d links)\n", *export, topo.NumDevices(), topo.NumLinks())
	}
}

func printStats(topo *topology.Topology) {
	roleCount := map[topology.Role]int{}
	for i := range topo.Devices {
		roleCount[topo.Devices[i].Role]++
	}
	fmt.Printf("devices:  %d\n", topo.NumDevices())
	fmt.Printf("links:    %d\n", topo.NumLinks())
	fmt.Printf("clusters: %d\n", len(topo.Clusters()))
	fmt.Printf("circuit sets: %d\n", len(topo.Sets))
	fmt.Printf("customers:    %d\n", len(topo.Customers))
	roles := make([]topology.Role, 0, len(roleCount))
	for r := range roleCount {
		roles = append(roles, r)
	}
	sort.Slice(roles, func(i, j int) bool { return roles[i] < roles[j] })
	for _, r := range roles {
		fmt.Printf("  %-6s %d\n", r, roleCount[r])
	}
}

func listUnder(topo *topology.Topology, p hierarchy.Path) {
	ids := topo.DevicesUnder(p)
	fmt.Printf("%d devices under %s:\n", len(ids), p)
	for _, id := range ids {
		d := topo.Device(id)
		fmt.Printf("  %-44s %-6s group=%s\n", d.Name, d.Role, d.Group)
	}
}

func emitDOT(topo *topology.Topology, p hierarchy.Path) {
	ids := topo.DevicesUnder(p)
	in := map[topology.DeviceID]bool{}
	for _, id := range ids {
		in[id] = true
	}
	fmt.Println("graph topology {")
	fmt.Println("  node [shape=box];")
	for _, id := range ids {
		d := topo.Device(id)
		fmt.Printf("  %q [label=%q];\n", d.Name, fmt.Sprintf("%s\\n%s", d.Role, d.Name))
	}
	for i := range topo.Links {
		l := &topo.Links[i]
		if in[l.A] && in[l.B] {
			fmt.Printf("  %q -- %q [label=%q];\n",
				topo.Device(l.A).Name, topo.Device(l.B).Name, l.CircuitSet)
		}
	}
	fmt.Println("}")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "skynet-topo: %v\n", err)
	os.Exit(1)
}
