package main

// The -fanout mode is the serving-layer gate: it measures
// publish→subscriber-write latency under flood load, checks that the
// publisher never waits on consumers, and bounds the tick-path
// interference of having the hub attached. Two modes share one report
// shape:
//
//	skynet-bench -fanout                                  # in-process, 100K subscribers
//	skynet-bench -fanout -fanout-subs 5000 -fanout-sse http://127.0.0.1:7072
//
// The in-process mode drives a real engine at -fanout-alerts alerts per
// tick with every subscriber attached straight to the hub — the pure
// serving-core measurement. The SSE mode swarms a running skynetd's
// /api/events endpoint and computes latency from the pub_unix_ns stamp
// in snapshot/delta frames — the full HTTP path. -fanout-json writes
// the latency histogram artifact CI uploads.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"skynet/internal/alert"
	"skynet/internal/core"
	"skynet/internal/experiments"
	"skynet/internal/fanout"
	"skynet/internal/microbench"
	"skynet/internal/preprocess"
	"skynet/internal/topology"
)

// latBuckets are the histogram upper bounds in milliseconds; the last
// implicit bucket is +Inf.
var latBuckets = [...]float64{0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}

// latHist is one goroutine's latency histogram — merged after the run
// so recording never contends.
type latHist struct {
	counts [len(latBuckets) + 1]int64
	count  int64
	sumNs  int64
	maxNs  int64
	// samples keeps raw nanos for exact quantiles; bounded by the run
	// shape (ticks × 2 frames per subscriber), so memory stays small.
	samples []int64
}

func (h *latHist) observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	ms := float64(ns) / 1e6
	i := sort.SearchFloat64s(latBuckets[:], ms)
	h.counts[i]++
	h.count++
	h.sumNs += ns
	if ns > h.maxNs {
		h.maxNs = ns
	}
	h.samples = append(h.samples, ns)
}

func (h *latHist) merge(o *latHist) {
	for i := range o.counts {
		h.counts[i] += o.counts[i]
	}
	h.count += o.count
	h.sumNs += o.sumNs
	if o.maxNs > h.maxNs {
		h.maxNs = o.maxNs
	}
	h.samples = append(h.samples, o.samples...)
}

// quantile returns the q-quantile latency from the raw samples.
func (h *latHist) quantile(q float64) time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
	i := int(q * float64(len(h.samples)-1))
	return time.Duration(h.samples[i])
}

// fanoutBucket is one histogram row in the JSON artifact.
type fanoutBucket struct {
	LeMs  float64 `json:"le_ms"` // <=0 means +Inf
	Count int64   `json:"count"`
}

// fanoutReport is the -fanout JSON artifact.
type fanoutReport struct {
	Mode string `json:"mode"` // "inprocess" | "sse"
	// CPUs records the machine the numbers came from: delivery is
	// CPU-bound, so latency quantiles scale with subscribers/cores and
	// are meaningless without it.
	CPUs          int            `json:"cpus"`
	Subscribers   int            `json:"subscribers"`
	Ticks         int            `json:"ticks,omitempty"`
	AlertsPerTick int            `json:"alerts_per_tick,omitempty"`
	Samples       int64          `json:"latency_samples"`
	MeanMs        float64        `json:"latency_mean_ms"`
	P50Ms         float64        `json:"latency_p50_ms"`
	P90Ms         float64        `json:"latency_p90_ms"`
	P99Ms         float64        `json:"latency_p99_ms"`
	MaxMs         float64        `json:"latency_max_ms"`
	Histogram     []fanoutBucket `json:"histogram"`
	// PublisherMaxMs is the slowest ingest+tick+publish round — the
	// number that proves the publisher never waited on a consumer.
	PublisherMaxMs float64 `json:"publisher_max_ms,omitempty"`
	// InterferencePct is the paired-slice engine_tick overhead of
	// having the hub attached, in percent (in-process mode only).
	InterferencePct float64      `json:"interference_pct,omitempty"`
	Stats           fanout.Stats `json:"fanout_stats"`
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

func (h *latHist) report(rep *fanoutReport) {
	rep.Samples = h.count
	if h.count > 0 {
		rep.MeanMs = float64(h.sumNs) / float64(h.count) / 1e6
	}
	rep.P50Ms = ms(h.quantile(0.50))
	rep.P90Ms = ms(h.quantile(0.90))
	rep.P99Ms = ms(h.quantile(0.99))
	rep.MaxMs = float64(h.maxNs) / 1e6
	for i, le := range latBuckets {
		rep.Histogram = append(rep.Histogram, fanoutBucket{LeMs: le, Count: h.counts[i]})
	}
	rep.Histogram = append(rep.Histogram, fanoutBucket{LeMs: 0, Count: h.counts[len(latBuckets)]})
}

// runFanoutBench dispatches the mode, writes the artifact, and enforces
// the gate: p99 ≤ p99Limit, and (in-process) interference ≤ 2%.
func runFanoutBench(subs, ticks, alertsPerTick int, sseAddr, jsonOut string, p99Limit time.Duration, skipInterference bool) error {
	var (
		rep *fanoutReport
		err error
	)
	if sseAddr != "" {
		rep, err = fanoutSSESwarm(sseAddr, subs, time.Duration(ticks)*time.Second)
	} else {
		rep, err = fanoutInProcess(subs, ticks, alertsPerTick, skipInterference)
	}
	if err != nil {
		return err
	}
	if jsonOut != "" {
		var w io.Writer = os.Stdout
		if jsonOut != "-" {
			f, err := os.Create(jsonOut)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
		if jsonOut != "-" {
			fmt.Printf("fan-out latency report written to %s\n", jsonOut)
		}
	}
	fmt.Printf("fanout %s: %d subscribers, %d samples — p50 %.2fms p90 %.2fms p99 %.2fms max %.2fms\n",
		rep.Mode, rep.Subscribers, rep.Samples, rep.P50Ms, rep.P90Ms, rep.P99Ms, rep.MaxMs)
	if rep.Mode == "inprocess" {
		fmt.Printf("fanout publisher: max round %.2fms; coalesced %d, resyncs %d, evictions %d\n",
			rep.PublisherMaxMs, rep.Stats.Coalesced, rep.Stats.Resyncs, rep.Stats.Evictions)
		if !skipInterference {
			fmt.Printf("fanout engine_tick interference: %+.2f%% (paired tick slices, gate +2%%)\n",
				rep.InterferencePct)
		}
	}
	if rep.Samples == 0 {
		return fmt.Errorf("fanout: no latency samples recorded")
	}
	if limit := ms(p99Limit); rep.P99Ms > limit {
		return fmt.Errorf("fanout: p99 publish→write latency %.2fms exceeds the %.0fms gate", rep.P99Ms, limit)
	}
	if rep.Mode == "inprocess" && !skipInterference && rep.InterferencePct > 2.0 {
		return fmt.Errorf("fanout: engine_tick interference %+.2f%% exceeds the 2%% gate", rep.InterferencePct)
	}
	return nil
}

// fanoutInProcess attaches subs subscribers directly to a hub fed by a
// real engine ingesting alertsPerTick alerts per tick — the
// 100K-subscriber serving-core measurement.
func fanoutInProcess(subs, ticks, alertsPerTick int, skipInterference bool) (*fanoutReport, error) {
	// Interference is measured first, against a quiet heap: the estimate
	// compares two engines' tick rates, GC assist work is charged to
	// goroutines by allocation rate, and a heap still holding the
	// swarm's accumulated latency samples makes every GC cycle expensive
	// enough to skew the comparison.
	var interferencePct float64
	if !skipInterference {
		pct, err := fanoutInterference()
		if err != nil {
			return nil, err
		}
		interferencePct = pct
	}
	topo, err := topology.Generate(topology.SmallConfig())
	if err != nil {
		return nil, err
	}
	classifier, err := preprocess.BootstrapClassifier()
	if err != nil {
		return nil, err
	}
	eng := core.NewEngine(core.DefaultConfig(), topo, classifier, nil, nil)
	hub := fanout.NewHub(fanout.Config{Ring: 4096})
	eng.EnableFanout(hub)

	alerts := experiments.SyntheticStructuredAlerts(topo, alertsPerTick, 1)
	var batch alert.Batch
	for j := range alerts {
		batch.Append(&alerts[j])
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hists := make([]latHist, subs)
	var wg sync.WaitGroup
	for i := 0; i < subs; i++ {
		sub, err := hub.Subscribe(fanout.SubscribeOptions{Cursor: -1})
		if err != nil {
			return nil, err
		}
		wg.Add(1)
		go func(sub *fanout.Subscriber, h *latHist) {
			defer wg.Done()
			defer sub.Close()
			var wire int
			for {
				frames, err := sub.Wait(ctx)
				if err != nil {
					_ = wire
					return
				}
				// Serving means writing the bytes: Bytes forces any
				// deferred snapshot render, so the stamp below charges
				// the full cost a real SSE write would pay.
				for _, f := range frames {
					wire += len(f.Bytes())
					// now−PubAt is publish→subscriber-write: the frame is in
					// the consumer's hands, one io.Write from the socket.
					h.observe(time.Since(f.PubAt()))
					f.Release()
				}
			}
		}(sub, &hists[i])
	}

	// Publisher: flat-out flood, no pacing — every tick ingests the full
	// batch and publishes one snapshot+delta. simNow advances one second
	// per tick, making the workload a sustained alertsPerTick/sec flood.
	simNow := time.Date(2024, 7, 2, 11, 0, 0, 0, time.UTC)
	var pubMax time.Duration
	for i := 0; i < ticks; i++ {
		for j := range batch.Time {
			batch.Time[j] = simNow.Add(time.Duration(j%10) * 100 * time.Millisecond)
		}
		t0 := time.Now()
		eng.IngestBatch(&batch)
		simNow = simNow.Add(time.Second)
		eng.Tick(simNow)
		if d := time.Since(t0); d > pubMax {
			pubMax = d
		}
	}
	// Let in-flight deliveries drain before tearing the swarm down.
	time.Sleep(200 * time.Millisecond)
	cancel()
	hub.Close()
	wg.Wait()

	var all latHist
	for i := range hists {
		all.merge(&hists[i])
	}
	rep := &fanoutReport{
		Mode: "inprocess", CPUs: runtime.NumCPU(), Subscribers: subs, Ticks: ticks,
		AlertsPerTick: alertsPerTick, PublisherMaxMs: ms(pubMax), Stats: hub.StatsSnapshot(),
	}
	all.report(rep)
	rep.InterferencePct = interferencePct
	return rep, nil
}

// fanoutInterference measures what attaching the hub costs the tick
// path via microbench.TickInterference: a bare engine and a
// fanout-enabled engine in this same process run alternating timed
// slices of ticks, and the verdict is the mean ratio of the fastest
// pairs. Paired adjacent slices (rather than two separate benchmark
// runs) are what make a single-digit gate measurable on a noisy
// machine — see the TickInterference doc for the full design.
func fanoutInterference() (float64, error) {
	const slices, ticksPerSlice = 48, 64
	fmt.Fprintf(os.Stderr, "measuring engine_tick interference (%d paired %d-tick slices)...\n", slices, ticksPerSlice)
	return microbench.TickInterference(slices, ticksPerSlice)
}

// fanoutSSESwarm opens subs concurrent /api/events connections against
// a running skynetd and measures delivery latency from the pub_unix_ns
// stamp in snapshot/delta frames. The daemon must be under load (e.g.
// skynet-ingest replaying a trace) for frames to flow.
func fanoutSSESwarm(base string, subs int, runFor time.Duration) (*fanoutReport, error) {
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	ctx, cancel := context.WithTimeout(context.Background(), runFor)
	defer cancel()
	hists := make([]latHist, subs)
	errs := make([]error, subs)
	var wg sync.WaitGroup
	for i := 0; i < subs; i++ {
		wg.Add(1)
		go func(h *latHist, errSlot *error) {
			defer wg.Done()
			*errSlot = followSSELatency(ctx, base+"/api/events", h)
		}(&hists[i], &errs[i])
	}
	wg.Wait()
	connected := 0
	var all latHist
	for i := range hists {
		if errs[i] == nil {
			connected++
		}
		all.merge(&hists[i])
	}
	if connected == 0 {
		return nil, fmt.Errorf("fanout sse: no client could connect to %s (first error: %v)", base, errs[0])
	}
	rep := &fanoutReport{Mode: "sse", CPUs: runtime.NumCPU(), Subscribers: connected}
	// Best-effort hub stats from the daemon.
	if resp, err := http.Get(base + "/api/fanout"); err == nil {
		_ = json.NewDecoder(resp.Body).Decode(&rep.Stats)
		resp.Body.Close()
	}
	all.report(rep)
	return rep, nil
}

// followSSELatency reads one SSE connection until ctx expires, observing
// latency for every frame whose payload carries pub_unix_ns.
func followSSELatency(ctx context.Context, url string, h *latHist) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		if pub, ok := extractPubNanos(line); ok {
			h.observe(time.Since(time.Unix(0, pub)))
		}
	}
	// The deadline tearing the connection down is the expected exit.
	if ctx.Err() != nil {
		return nil
	}
	return sc.Err()
}

// extractPubNanos pulls the pub_unix_ns stamp out of a data line without
// decoding the whole document — 5K swarm clients parsing full JSON would
// turn the bench client into the bottleneck.
func extractPubNanos(line string) (int64, bool) {
	const key = `"pub_unix_ns":`
	i := strings.Index(line, key)
	if i < 0 {
		return 0, false
	}
	j := i + len(key)
	k := j
	for k < len(line) && line[k] >= '0' && line[k] <= '9' {
		k++
	}
	v, err := strconv.ParseInt(line[j:k], 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}
