// Command skynet-bench regenerates the paper's evaluation tables and
// figures on the synthetic substrate.
//
// Usage:
//
//	skynet-bench -exp all
//	skynet-bench -exp fig9 -scenarios 48
//	skynet-bench -list
//	skynet-bench -json bench.json          # machine-readable microbenchmarks
//	skynet-bench -json - engine_tick       # one benchmark, to stdout
//	skynet-bench -json - -spans            # + per-stage span latency breakdown
//	skynet-bench -json - -compare BENCH_2026-08-06.json   # CI regression gate
//	skynet-bench -json bench.json -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Every experiment prints a table plus the paper's reported shape so the
// two can be compared side by side; EXPERIMENTS.md archives a full run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"skynet/internal/experiments"
	"skynet/internal/microbench"
	"skynet/internal/telemetry"
	"skynet/internal/topology"
	"skynet/internal/trace"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment to run (see -list) or 'all'")
		list      = flag.Bool("list", false, "list available experiments and exit")
		scenarios = flag.Int("scenarios", 24, "scenario corpus size")
		window    = flag.Duration("window", 12*time.Minute, "observation window per scenario")
		seed      = flag.Int64("seed", 1, "random seed")
		scale     = flag.String("scale", "small", "topology scale: small or production")
		telDump   = flag.String("telemetry", "",
			`dump a telemetry snapshot from an instrumented replay ("-" for stdout, else a file)`)
		workers = flag.Int("workers", 0,
			"pipeline worker fan-out (0 = all cores, 1 = serial; results are identical)")
		jsonOut = flag.String("json", "",
			`run the microbenchmark suite and write machine-readable results ("-" for stdout, else a file), then exit`)
		spans = flag.Bool("spans", false,
			"with -json: add the per-stage span latency breakdown (span_stages) to the report")
		compare = flag.String("compare", "",
			"with -json: compare against this baseline report and exit non-zero on regression")
		tolerance = flag.Float64("tolerance", 0.15,
			"with -compare: allowed fractional ns/op regression (0.15 = +15%)")
		memTolerance = flag.Float64("mem-tolerance", 0.25,
			"with -compare: allowed fractional bytes/op and allocs/op regression (<=0 disables the memory gate)")
		cpuProfile = flag.String("cpuprofile", "",
			"with -json: write a CPU pprof profile of the benchmark run to this file")
		memProfile = flag.String("memprofile", "",
			"with -json: write a heap pprof profile taken after the benchmark run to this file")
		mutexFraction = flag.Int("mutex-fraction", 0,
			"runtime mutex-contention sampling rate, as in skynetd (0 = off); for measuring its overhead")
		blockRate = flag.Int("block-rate", 0,
			"runtime blocking-event sampling threshold in ns, as in skynetd (0 = off); for measuring its overhead")
		fanoutBench = flag.Bool("fanout", false,
			"run the fan-out serving benchmark (in-process hub swarm, or an SSE swarm with -fanout-sse), then exit")
		fanoutSubs = flag.Int("fanout-subs", 100000,
			"with -fanout: concurrent subscribers")
		fanoutTicks = flag.Int("fanout-ticks", 30,
			"with -fanout: flood ticks to publish (in-process), or seconds to stream (SSE mode)")
		fanoutAlerts = flag.Int("fanout-alerts", 10000,
			"with -fanout: alerts ingested per tick — one tick per simulated second, so also the alerts/sec flood rate")
		fanoutSSE = flag.String("fanout-sse", "",
			"with -fanout: swarm this running skynetd's /api/events over HTTP instead of an in-process hub")
		fanoutJSON = flag.String("fanout-json", "",
			`with -fanout: write the latency-histogram artifact ("-" for stdout, else a file)`)
		fanoutP99 = flag.Duration("fanout-p99", 50*time.Millisecond,
			"with -fanout: fail when p99 publish→subscriber-write latency exceeds this")
		fanoutNoInterference = flag.Bool("fanout-no-interference", false,
			"with -fanout: skip the interleaved engine_tick interference measurement (in-process mode)")
	)
	flag.Parse()

	// Mirror skynetd's contention-profiling knobs so their overhead can be
	// measured on the same microbenchmarks the regression gate runs.
	if *mutexFraction > 0 {
		runtime.SetMutexProfileFraction(*mutexFraction)
	}
	if *blockRate > 0 {
		runtime.SetBlockProfileRate(*blockRate)
	}

	if *list {
		fmt.Println("available experiments:")
		for _, n := range experiments.Names() {
			fmt.Println("  " + n)
		}
		fmt.Println("microbenchmarks (-json):")
		for _, n := range microbench.Names() {
			fmt.Println("  " + n)
		}
		return
	}
	if *jsonOut != "" {
		if err := runMicrobench(*jsonOut, flag.Args(), *spans, *compare, *tolerance, *memTolerance,
			*cpuProfile, *memProfile); err != nil {
			fmt.Fprintf(os.Stderr, "skynet-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *fanoutBench {
		if err := runFanoutBench(*fanoutSubs, *fanoutTicks, *fanoutAlerts,
			*fanoutSSE, *fanoutJSON, *fanoutP99, *fanoutNoInterference); err != nil {
			fmt.Fprintf(os.Stderr, "skynet-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *cpuProfile != "" || *memProfile != "" {
		fmt.Fprintln(os.Stderr, "skynet-bench: -cpuprofile/-memprofile require -json (they profile the microbenchmark run)")
		os.Exit(2)
	}

	opts := experiments.DefaultOptions()
	opts.Scenarios = *scenarios
	opts.Window = *window
	opts.Seed = *seed
	opts.Engine.Workers = *workers
	switch strings.ToLower(*scale) {
	case "small":
		opts.Topology = topology.SmallConfig()
	case "production":
		opts.Topology = topology.ProductionConfig()
	default:
		fmt.Fprintf(os.Stderr, "skynet-bench: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	start := time.Now()
	if *exp == "all" {
		results, err := experiments.All(opts)
		for _, r := range results {
			r.Print(os.Stdout)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "skynet-bench: %v\n", err)
			os.Exit(1)
		}
	} else {
		r, err := experiments.ByName(*exp, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "skynet-bench: %v\n", err)
			os.Exit(1)
		}
		r.Print(os.Stdout)
	}
	fmt.Printf("completed in %v (scenarios=%d, scale=%s, seed=%d)\n",
		time.Since(start).Round(time.Millisecond), opts.Scenarios, *scale, *seed)

	if *telDump != "" {
		if err := dumpTelemetry(*telDump, opts); err != nil {
			fmt.Fprintf(os.Stderr, "skynet-bench: telemetry dump: %v\n", err)
			os.Exit(1)
		}
	}
}

// runMicrobench executes the hot-path benchmark suite (optionally only
// the names given as positional args) and writes the JSON report to dst.
// With spans it adds the per-stage span latency breakdown; with a compare
// baseline it fails when any shared benchmark regressed beyond tolerance
// (ns/op) or memTolerance (bytes/op, allocs/op). cpuProfile/memProfile
// write pprof profiles of the benchmark run itself, so a regression
// flagged by the gate ships with the evidence needed to diagnose it.
func runMicrobench(dst string, names []string, spans bool, compare string, tolerance, memTolerance float64,
	cpuProfile, memProfile string) error {
	banner := microbench.Names()
	if len(names) > 0 {
		banner = names
	}
	fmt.Fprintf(os.Stderr, "running microbenchmarks: %s\n", strings.Join(banner, ", "))
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpu profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	rep, err := microbench.Run(names...)
	if err != nil {
		return err
	}
	if memProfile != "" {
		f, err := os.Create(memProfile)
		if err != nil {
			return err
		}
		runtime.GC() // settle live-heap accounting before the snapshot
		werr := pprof.WriteHeapProfile(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("heap profile: %w", werr)
		}
		fmt.Fprintf(os.Stderr, "heap profile written to %s\n", memProfile)
	}
	if spans {
		stages, err := microbench.CollectSpanStages(0)
		if err != nil {
			return err
		}
		rep.SpanStages = stages
	}
	var w io.Writer = os.Stdout
	if dst != "-" {
		f, err := os.Create(dst)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if dst != "-" {
		fmt.Printf("benchmark results written to %s\n", dst)
	}
	if compare != "" {
		return compareBaseline(compare, rep, tolerance, memTolerance)
	}
	return nil
}

// compareBaseline loads a committed baseline report and fails on any
// ns/op, bytes/op, or allocs/op regression beyond its tolerance — the CI
// bench-regression gate.
func compareBaseline(path string, cur *microbench.Report, tolerance, memTolerance float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base microbench.Report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	if regs := microbench.Compare(&base, cur, tolerance, memTolerance); len(regs) > 0 {
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "REGRESSION %s\n", r)
		}
		return fmt.Errorf("%d benchmark(s) regressed beyond tolerance (%.0f%% ns/op, %.0f%% mem) vs %s",
			len(regs), 100*tolerance, 100*memTolerance, path)
	}
	fmt.Fprintf(os.Stderr, "baseline %s: all benchmarks within tolerance (%.0f%% ns/op, %.0f%% mem)\n",
		path, 100*tolerance, 100*memTolerance)
	return nil
}

// dumpTelemetry replays a freshly generated severe-failure trace with the
// telemetry registry and journal attached, then writes the resulting
// Prometheus text snapshot — funnel counters, per-stage histograms,
// incident gauges, and replay throughput — to dst.
func dumpTelemetry(dst string, opts experiments.Options) error {
	gen := trace.DefaultGenerateOptions()
	gen.Topology = opts.Topology
	gen.Seed = opts.Seed
	gen.Scenarios = 2
	gen.Window = opts.Window
	g, err := trace.Generate(gen)
	if err != nil {
		return err
	}
	reg := telemetry.New()
	journal := telemetry.NewJournal(0)
	journal.RegisterMetrics(reg)
	if _, err := trace.ReplayWithOptions(g.Alerts, g.Topo, opts.Engine,
		trace.ReplayOptions{Telemetry: reg, Journal: journal}); err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if dst != "-" {
		f, err := os.Create(dst)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
		fmt.Printf("telemetry snapshot written to %s\n", dst)
	}
	return reg.Expose(w)
}
