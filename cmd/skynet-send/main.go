// Command skynet-send streams a recorded alert trace to a running
// skynetd over its TCP ingest listener — the workload driver behind the
// CI daemon-smoke job and a convenient way to feed a local daemon a
// synthetic flood:
//
//	skynet-gen -out flood.jsonl.gz -scenarios 3
//	skynetd -tcp 127.0.0.1:7070 &
//	skynet-send -trace flood.jsonl.gz -addr 127.0.0.1:7070
//
// Alerts are sent in trace order as fast as the connection accepts them
// (JSON Lines, the format skynetd's TCP listener speaks); -limit
// truncates the trace and -flush bounds client-side batching.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"skynet/internal/ingest"
	"skynet/internal/trace"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "alert trace to send (JSON Lines, .gz ok; required)")
		addr      = flag.String("addr", "127.0.0.1:7070", "skynetd TCP ingest address")
		limit     = flag.Int("limit", 0, "send at most this many alerts (0 = whole trace)")
		flushN    = flag.Int("flush", 512, "flush the connection every N alerts")
		timeout   = flag.Duration("timeout", 10*time.Second, "dial timeout")
	)
	flag.Parse()
	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "skynet-send: -trace is required")
		os.Exit(2)
	}

	alerts, err := trace.Read(*tracePath)
	if err != nil {
		die(err)
	}
	if *limit > 0 && len(alerts) > *limit {
		alerts = alerts[:*limit]
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	client, err := ingest.DialTCP(ctx, *addr)
	if err != nil {
		die(err)
	}
	start := time.Now()
	for i := range alerts {
		if err := client.Send(&alerts[i]); err != nil {
			die(err)
		}
		if *flushN > 0 && (i+1)%*flushN == 0 {
			if err := client.Flush(); err != nil {
				die(err)
			}
		}
	}
	if err := client.Close(); err != nil {
		die(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("sent %d alerts to %s in %s (%.0f alerts/s)\n",
		len(alerts), *addr, elapsed.Round(time.Millisecond),
		float64(len(alerts))/elapsed.Seconds())
}

func die(err error) {
	fmt.Fprintf(os.Stderr, "skynet-send: %v\n", err)
	os.Exit(1)
}
