// Command skynet-top is a live terminal dashboard for a running skynetd:
// it polls the daemon's status API and renders the pipeline's health the
// way top renders a host's — tick-latency and ingest-rate sparklines,
// the SLO burn table, the flood-episode banner, the Go-runtime panel,
// and the continuous profiler's per-stage CPU bars, with a tail of the
// live event stream.
//
// Usage:
//
//	skynet-top                       # live view against 127.0.0.1:7072
//	skynet-top -addr host:7072       # remote daemon
//	skynet-top -once                 # render one snapshot and exit (CI)
//
// Data sources: /api/query (sparkline series), /api/slo, /api/floods,
// /api/profile, /api/health, /api/fanout (serving-layer stats), and the
// /api/events SSE stream (live mode, resumed with Last-Event-ID across
// reconnects). Endpoints that are disabled on the daemon render as
// "(unavailable)" panels rather than failing the whole dashboard.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"skynet/internal/flood"
	"skynet/internal/prof"
	"skynet/internal/slo"
	"skynet/internal/tsdb"
)

func main() {
	var (
		addr = flag.String("addr", "127.0.0.1:7072",
			"skynetd HTTP status address (host:port or full http:// URL)")
		once = flag.Bool("once", false,
			"render one snapshot to stdout and exit — the CI smoke mode")
		interval = flag.Duration("interval", 2*time.Second, "refresh cadence in live mode")
		width    = flag.Int("width", 48, "sparkline and bar width in cells")
		span     = flag.Uint64("span", 120, "ticks of history behind the sparklines")
	)
	flag.Parse()

	c := &client{
		base: normalizeAddr(*addr),
		hc:   &http.Client{Timeout: 5 * time.Second},
	}

	if *once {
		frame, errs := render(c, nil, *width, *span)
		fmt.Print(frame)
		if errs == allPanels {
			fmt.Fprintf(os.Stderr, "skynet-top: no endpoint reachable at %s\n", c.base)
			os.Exit(1)
		}
		return
	}

	events := newEventTail(8)
	go events.follow(c)
	for {
		frame, _ := render(c, events, *width, *span)
		// Clear screen + home, then the frame — the classic top redraw.
		fmt.Print("\x1b[2J\x1b[H" + frame)
		time.Sleep(*interval)
	}
}

// normalizeAddr accepts host:port or a full URL.
func normalizeAddr(addr string) string {
	if strings.HasPrefix(addr, "http://") || strings.HasPrefix(addr, "https://") {
		return strings.TrimRight(addr, "/")
	}
	return "http://" + addr
}

// client is a tiny JSON-over-HTTP accessor for the status API.
type client struct {
	base string
	hc   *http.Client
}

func (c *client) getJSON(path string, v any) error {
	resp, err := c.hc.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	// /api/health deliberately serves 503 while degraded — still JSON.
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return fmt.Errorf("%s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// Decoded API shapes — mirrors of the daemon's JSON views, declared
// locally so the console only depends on the wire contract.

type healthView struct {
	Status    string            `json:"status"`
	Degraded  []string          `json:"degraded"`
	TickP99Ns int64             `json:"tick_p99_ns"`
	SLOP99Ns  int64             `json:"slo_tick_p99_ns"`
	Ticks     int64             `json:"ticks"`
	Dumps     int64             `json:"dumps"`
	Runtime   prof.RuntimeStats `json:"runtime"`
}

type sloView struct {
	Tick   uint64           `json:"tick"`
	Firing int64            `json:"firing"`
	Rules  []slo.RuleStatus `json:"rules"`
	Events []slo.Event      `json:"events"`
}

type floodSummary struct {
	ID            uint64      `json:"id"`
	Phase         flood.Phase `json:"phase"`
	StartTick     uint64      `json:"start_tick"`
	DurationTicks uint64      `json:"duration_ticks"`
	RawTotal      int64       `json:"raw_total"`
	PeakRate      int64       `json:"peak_rate"`
	Incidents     int         `json:"incidents"`
	MaxSeverity   float64     `json:"max_severity"`
	Scenario      string      `json:"scenario"`
}

type profileView struct {
	Windows  []prof.ProfileWindow  `json:"windows"`
	Stages   []prof.StageCPUSample `json:"stages"`
	Captures int64                 `json:"captures"`
	Errors   int64                 `json:"errors"`
}

// fanoutView mirrors /api/fanout — the serving hub's accounting.
type fanoutView struct {
	Subscribers    int64             `json:"subscribers"`
	RingSize       int               `json:"ring_size"`
	HeadSeq        uint64            `json:"head_seq"`
	Published      uint64            `json:"published_total"`
	Ticks          uint64            `json:"ticks_total"`
	Resyncs        uint64            `json:"resyncs_total"`
	Coalesced      uint64            `json:"deltas_coalesced_total"`
	Evictions      uint64            `json:"evictions_total"`
	DroppedTotal   uint64            `json:"dropped_total"`
	Dropped        map[string]uint64 `json:"dropped_by_kind"`
	QueueHighWater uint64            `json:"queue_depth_high_water"`
}

// Panel-failure bitmask: render exits nonzero in -once mode only when
// every data source failed.
const allPanels = (1 << 6) - 1

// render fetches every panel's data and assembles one frame.
func render(c *client, events *eventTail, width int, span uint64) (string, int) {
	var (
		errs   int
		health healthView
		sloV   sloView
		floods []floodSummary
		profV  profileView
		fanV   fanoutView
	)
	if err := c.getJSON("/api/health", &health); err != nil {
		errs |= 1
		health.Status = "unknown"
	}
	if err := c.getJSON("/api/slo", &sloV); err != nil {
		errs |= 2
	}
	if err := c.getJSON("/api/floods", &floods); err != nil {
		errs |= 4
	}
	if err := c.getJSON("/api/profile", &profV); err != nil {
		errs |= 8
	}
	fanOK := c.getJSON("/api/fanout", &fanV) == nil
	if !fanOK {
		errs |= 32
	}

	var b strings.Builder
	fmt.Fprintf(&b, "SKYNET-TOP  %s  %s  tick %d  ticks %d  dumps %d\n",
		c.base, strings.ToUpper(health.Status), sloV.Tick, health.Ticks, health.Dumps)
	if len(health.Degraded) > 0 {
		fmt.Fprintf(&b, "  degraded: %s\n", strings.Join(health.Degraded, ", "))
	}
	b.WriteString("\n")

	renderFlood(&b, floods)
	if !renderSparklines(&b, c, sloV.Tick, width, span) {
		errs |= 16
	}
	renderSLO(&b, sloV)
	renderRuntime(&b, health)
	renderStages(&b, profV, width)
	renderFanout(&b, fanV, fanOK)
	renderEvents(&b, events)
	return b.String(), errs
}

// renderFanout prints the serving-layer panel from /api/fanout: how many
// consumers the snapshot+delta hub is carrying and how hard it is
// working to keep laggards alive (coalesced deltas, resyncs, evictions).
func renderFanout(b *strings.Builder, v fanoutView, ok bool) {
	if !ok {
		b.WriteString("FANOUT    (unavailable)\n\n")
		return
	}
	fmt.Fprintf(b, "FANOUT    %d subscribers  ring %d @ seq %d  %d frames (%d ticks)\n",
		v.Subscribers, v.RingSize, v.HeadSeq, v.Published, v.Ticks)
	fmt.Fprintf(b, "          coalesced %d  resyncs %d  evictions %d  dropped %d  queue hw %d\n\n",
		v.Coalesced, v.Resyncs, v.Evictions, v.DroppedTotal, v.QueueHighWater)
}

// renderFlood prints the FLOOD banner: the open episode if any, else the
// most recently closed one, else a quiet line.
func renderFlood(b *strings.Builder, floods []floodSummary) {
	b.WriteString("FLOOD     ")
	if len(floods) == 0 {
		b.WriteString("no episodes detected\n\n")
		return
	}
	ep := floods[len(floods)-1]
	if ep.Phase == flood.PhaseClosed {
		fmt.Fprintf(b, "quiet — last episode #%d closed (%d raw, peak %d/tick, %d incidents)\n\n",
			ep.ID, ep.RawTotal, ep.PeakRate, ep.Incidents)
		return
	}
	fmt.Fprintf(b, "*** EPISODE #%d %s *** started tick %d, %d ticks, %d raw, peak %d/tick, %d incidents, max severity %.2f\n",
		ep.ID, strings.ToUpper(ep.Phase.String()), ep.StartTick, ep.DurationTicks,
		ep.RawTotal, ep.PeakRate, ep.Incidents, ep.MaxSeverity)
	if ep.Scenario != "" {
		fmt.Fprintf(b, "          matched scenario: %s\n", ep.Scenario)
	}
	b.WriteString("\n")
}

// renderSparklines prints TICK LATENCY and INGEST RATE from /api/query.
// Reports whether at least one series was fetched.
func renderSparklines(b *strings.Builder, c *client, tick uint64, width int, span uint64) bool {
	ok := false
	from := uint64(1)
	if tick > span {
		from = tick - span + 1
	}
	lat, err := querySeries(c, "skynet_tick_duration_seconds", from, tick)
	if err == nil && len(lat) > 0 {
		ok = true
		last := lat[len(lat)-1]
		fmt.Fprintf(b, "TICK LAT  %s  last %s  max %s\n",
			tsdb.Sparkline(lat, width), fmtSeconds(last), fmtSeconds(maxOf(lat)))
	} else {
		b.WriteString("TICK LAT  (unavailable)\n")
	}
	raw, err := querySeries(c, "skynet_raw_alerts_total", from, tick)
	if rates := deltas(raw); err == nil && len(rates) > 0 {
		ok = true
		fmt.Fprintf(b, "INGEST    %s  last %.0f/tick  peak %.0f/tick\n",
			tsdb.Sparkline(rates, width), rates[len(rates)-1], maxOf(rates))
	} else {
		b.WriteString("INGEST    (unavailable)\n")
	}
	b.WriteString("\n")
	return ok
}

func querySeries(c *client, metric string, from, to uint64) ([]float64, error) {
	var res tsdb.QueryResult
	path := fmt.Sprintf("/api/query?metric=%s&from=%d&to=%d&step=1", metric, from, to)
	if err := c.getJSON(path, &res); err != nil {
		return nil, err
	}
	vals := make([]float64, 0, len(res.Points))
	for _, p := range res.Points {
		vals = append(vals, p.Value)
	}
	return vals, nil
}

// renderSLO prints the burn table.
func renderSLO(b *strings.Builder, v sloView) {
	fmt.Fprintf(b, "SLO BURN  %d firing\n", v.Firing)
	if len(v.Rules) == 0 {
		b.WriteString("          (unavailable)\n\n")
		return
	}
	fmt.Fprintf(b, "          %-22s %-10s %10s %8s %8s\n", "rule", "state", "value", "fast", "slow")
	for _, rs := range v.Rules {
		state := "ok"
		if rs.Firing {
			state = "FIRING"
		}
		fmt.Fprintf(b, "          %-22s %-10s %10.4g %8.2f %8.2f\n",
			rs.Rule.Name, state, rs.Value, rs.FastBurn, rs.SlowBurn)
	}
	b.WriteString("\n")
}

// renderRuntime prints the Go-runtime panel from /api/health.
func renderRuntime(b *strings.Builder, h healthView) {
	r := h.Runtime
	if r.Goroutines == 0 {
		b.WriteString("RUNTIME   (unavailable)\n\n")
		return
	}
	fmt.Fprintf(b, "RUNTIME   goroutines %d  heap %s  gc %d  last pause %s  tick p99 %s\n\n",
		r.Goroutines, fmtBytes(r.HeapLiveBytes), r.GCCycles,
		r.GCPauseDuration(), time.Duration(h.TickP99Ns))
}

// renderStages prints the top-stage CPU bars from /api/profile.
func renderStages(b *strings.Builder, v profileView, width int) {
	fmt.Fprintf(b, "STAGE CPU %d windows (%d failed)\n", v.Captures, v.Errors)
	if len(v.Stages) == 0 {
		if v.Captures > 0 {
			b.WriteString("          (idle — no CPU samples in the last window)\n\n")
		} else {
			b.WriteString("          (no profile window yet)\n\n")
		}
		return
	}
	stages := make([]prof.StageCPUSample, len(v.Stages))
	copy(stages, v.Stages)
	sort.SliceStable(stages, func(i, j int) bool { return stages[i].CPUNanos > stages[j].CPUNanos })
	for _, s := range stages {
		n := int(s.Fraction * float64(width))
		if n > width {
			n = width
		}
		fmt.Fprintf(b, "          %-18s %5.1f%% %s\n",
			s.Stage, s.Fraction*100, strings.Repeat("█", n))
	}
	b.WriteString("\n")
}

// renderEvents prints the SSE tail (live mode only).
func renderEvents(b *strings.Builder, events *eventTail) {
	b.WriteString("EVENTS    ")
	if events == nil {
		b.WriteString("(live mode only)\n")
		return
	}
	lines := events.recent()
	if len(lines) == 0 {
		b.WriteString("(none yet)\n")
		return
	}
	b.WriteString("\n")
	for _, l := range lines {
		fmt.Fprintf(b, "          %s\n", l)
	}
}

// eventTail follows the /api/events SSE stream, keeping the last N
// event lines for the dashboard's footer. The last SSE id seen is
// echoed back as Last-Event-ID on reconnect, so a dropped connection
// resumes mid-stream (resynced from the snapshot if it fell too far
// behind) instead of replaying the feed from scratch.
type eventTail struct {
	mu     sync.Mutex
	lines  []string
	keep   int
	lastID string
}

func newEventTail(keep int) *eventTail { return &eventTail{keep: keep} }

func (t *eventTail) recent() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, len(t.lines))
	copy(out, t.lines)
	return out
}

func (t *eventTail) push(line string) {
	t.mu.Lock()
	t.lines = append(t.lines, line)
	if len(t.lines) > t.keep {
		t.lines = t.lines[len(t.lines)-t.keep:]
	}
	t.mu.Unlock()
}

// follow reconnects forever; each SSE frame becomes one tail line
// "<event> <data>", with the data trimmed to a screen-friendly length.
func (t *eventTail) follow(c *client) {
	for {
		t.followOnce(c)
		time.Sleep(2 * time.Second)
	}
}

func (t *eventTail) followOnce(c *client) {
	req, err := http.NewRequest(http.MethodGet, c.base+"/api/events", nil)
	if err != nil {
		return
	}
	t.mu.Lock()
	if t.lastID != "" {
		req.Header.Set("Last-Event-ID", t.lastID)
	}
	t.mu.Unlock()
	// Streaming must bypass c.hc's 5s request timeout: the SSE
	// connection is long-lived by design.
	resp, err := http.DefaultClient.Do(req)
	if err != nil || resp.StatusCode != http.StatusOK {
		if resp != nil {
			resp.Body.Close()
		}
		return
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			t.mu.Lock()
			t.lastID = strings.TrimPrefix(line, "id: ")
			t.mu.Unlock()
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			if len(data) > 100 {
				data = data[:100] + "…"
			}
			t.push(fmt.Sprintf("%-9s %s", event, data))
		}
	}
}

func deltas(vals []float64) []float64 {
	if len(vals) < 2 {
		return nil
	}
	out := make([]float64, 0, len(vals)-1)
	for i := 1; i < len(vals); i++ {
		d := vals[i] - vals[i-1]
		if d < 0 {
			d = 0
		}
		out = append(out, d)
	}
	return out
}

func maxOf(vals []float64) float64 {
	m := 0.0
	for _, v := range vals {
		if v > m {
			m = v
		}
	}
	return m
}

func fmtSeconds(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}

func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
