// Command skynet-gen generates synthetic raw-alert traces with ground
// truth: it builds a topology, injects failure scenarios drawn with the
// paper's Figure 1 root-cause mix, runs the Table 2 monitor fleet, and
// writes the resulting alert stream as JSON Lines (gzip when the path ends
// in .gz).
//
// Usage:
//
//	skynet-gen -out trace.jsonl.gz -scenarios 5 -window 1h
//	skynet-replay -trace trace.jsonl.gz
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"skynet/internal/topology"
	"skynet/internal/trace"
)

func main() {
	var (
		out       = flag.String("out", "trace.jsonl.gz", "output trace file (.gz compresses)")
		scenarios = flag.Int("scenarios", 3, "number of failure scenarios")
		window    = flag.Duration("window", time.Hour, "simulated duration")
		spacing   = flag.Duration("spacing", 20*time.Minute, "spacing between scenario starts")
		seed      = flag.Int64("seed", 1, "random seed")
		scale     = flag.String("scale", "small", "topology scale: small or production")
	)
	flag.Parse()

	opts := trace.DefaultGenerateOptions()
	opts.Scenarios = *scenarios
	opts.Window = *window
	opts.Spacing = *spacing
	opts.Seed = *seed
	switch *scale {
	case "small":
		opts.Topology = topology.SmallConfig()
	case "production":
		opts.Topology = topology.ProductionConfig()
	default:
		fmt.Fprintf(os.Stderr, "skynet-gen: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	g, err := trace.Generate(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skynet-gen: %v\n", err)
		os.Exit(1)
	}
	if err := trace.Write(*out, g.Alerts); err != nil {
		fmt.Fprintf(os.Stderr, "skynet-gen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d raw alerts to %s\n", len(g.Alerts), *out)
	fmt.Println("injected scenarios (ground truth):")
	windowEnd := opts.Start.Add(opts.Window)
	for _, sc := range g.Scenarios {
		note := ""
		if !sc.Start.Before(windowEnd) {
			note = "  [WARNING: starts after the simulated window — raise -window or lower -spacing]"
		}
		fmt.Printf("  %-40s %-28s %s – %s  truth=%v%s\n",
			sc.Name, sc.Category,
			sc.Start.Format(time.TimeOnly), sc.End.Format(time.TimeOnly), sc.Truth, note)
	}
}
