// Command skynet-replay pushes a recorded raw-alert trace (produced by
// skynet-gen or captured from a live skynetd) through the SkyNet pipeline
// and prints the resulting incident reports, most severe first.
//
// Usage:
//
//	skynet-replay -trace trace.jsonl.gz
//	skynet-replay -trace trace.jsonl.gz -thresholds 2/1+2/6 -severity 0
package main

import (
	"flag"
	"fmt"
	"os"

	"skynet/internal/core"
	"skynet/internal/evaluator"
	"skynet/internal/locator"
	"skynet/internal/topology"
	"skynet/internal/trace"
)

func main() {
	var (
		tracePath  = flag.String("trace", "", "trace file to replay (required)")
		scale      = flag.String("scale", "small", "topology scale the trace was generated on")
		seed       = flag.Int64("seed", 1, "topology seed the trace was generated on")
		thresholds = flag.String("thresholds", locator.ProductionThresholds().String(),
			"incident thresholds in A/B+C/D notation")
		severity = flag.Float64("severity", evaluator.DefaultConfig().SeverityThreshold,
			"severity filter (0 shows everything)")
	)
	flag.Parse()
	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "skynet-replay: -trace is required")
		flag.Usage()
		os.Exit(2)
	}

	alerts, err := trace.Read(*tracePath)
	if err != nil {
		fatal(err)
	}
	var topoCfg topology.Config
	switch *scale {
	case "small":
		topoCfg = topology.SmallConfig()
	case "production":
		topoCfg = topology.ProductionConfig()
	default:
		fatal(fmt.Errorf("unknown scale %q", *scale))
	}
	topoCfg.Seed = *seed
	topo, err := topology.Generate(topoCfg)
	if err != nil {
		fatal(err)
	}

	cfg := core.DefaultConfig()
	th, err := locator.ParseThresholds(*thresholds)
	if err != nil {
		fatal(err)
	}
	cfg.Locator.Thresholds = th
	cfg.Evaluator.SeverityThreshold = *severity

	eng, err := trace.Replay(alerts, topo, cfg, 0)
	if err != nil {
		fatal(err)
	}

	all := eng.AllIncidents()
	stats := eng.PreprocessStats()
	fmt.Printf("replayed %d raw alerts → %d structured → %d incidents\n",
		stats.In, stats.Out, len(all))
	shown := 0
	for _, in := range evaluator.Rank(all) {
		if in.Severity < *severity {
			continue
		}
		shown++
		fmt.Println(in.Render())
	}
	if shown == 0 {
		fmt.Printf("no incidents at or above severity %.1f (rerun with -severity 0 to see all)\n", *severity)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "skynet-replay: %v\n", err)
	os.Exit(1)
}
