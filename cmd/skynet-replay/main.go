// Command skynet-replay pushes a recorded raw-alert trace (produced by
// skynet-gen or captured from a live skynetd) through the SkyNet pipeline
// and prints the resulting incident reports, most severe first.
//
// Usage:
//
//	skynet-replay -trace trace.jsonl.gz
//	skynet-replay -trace trace.jsonl.gz -thresholds 2/1+2/6 -severity 0
//	skynet-replay -trace trace.jsonl.gz -stats
//	skynet-replay -trace trace.jsonl.gz -spans
//	skynet-replay -trace trace.jsonl.gz -floods
//
// With -stats, the replay runs instrumented and a per-stage timing table
// plus the volume funnel (raw → structured → consolidated → incidents)
// follow the reports. With -spans, every tick is span-traced and the
// slowest tick's span tree plus per-stage span aggregates are printed.
// With -floods, the flood-episode detector rides the replay and every
// detected episode's postmortem report is printed.
// (The issue sketch called this flag -trace; that name was already taken
// by the trace-file path, so the span report lives on -spans.)
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"skynet/internal/core"
	"skynet/internal/evaluator"
	"skynet/internal/flood"
	"skynet/internal/locator"
	"skynet/internal/provenance"
	"skynet/internal/span"
	"skynet/internal/telemetry"
	"skynet/internal/topology"
	"skynet/internal/trace"
	"skynet/internal/tsdb"
)

func main() {
	var (
		tracePath  = flag.String("trace", "", "trace file to replay (required)")
		scale      = flag.String("scale", "small", "topology scale the trace was generated on")
		seed       = flag.Int64("seed", 1, "topology seed the trace was generated on")
		thresholds = flag.String("thresholds", locator.ProductionThresholds().String(),
			"incident thresholds in A/B+C/D notation")
		severity = flag.Float64("severity", evaluator.DefaultConfig().SeverityThreshold,
			"severity filter (0 shows everything)")
		showStats = flag.Bool("stats", false,
			"print per-stage timing and the volume funnel after replay")
		showSpans = flag.Bool("spans", false,
			"trace the replay and print the slowest tick's span tree plus a per-stage span latency table")
		workers = flag.Int("workers", 0,
			"pipeline worker fan-out (0 = all cores, 1 = serial; replays are identical either way)")
		provEvery = flag.Int("provenance", 0,
			"record lineage detail for 1 in N ingested alerts (1 = all, 0 disables) and print the conservation ledger")
		explainID = flag.Int("explain", -1,
			"print the provenance tree of one incident after replay (implies full-detail recording)")
		showFloods = flag.Bool("floods", false,
			"detect flood episodes during the replay and print per-episode postmortem reports")
		historyMetrics = flag.String("history", "",
			"sample telemetry history during the replay and print terminal sparklines for the comma-separated metrics (\"all\" lists every recorded series)")
	)
	flag.Parse()
	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "skynet-replay: -trace is required")
		flag.Usage()
		os.Exit(2)
	}

	alerts, err := trace.Read(*tracePath)
	if err != nil {
		fatal(err)
	}
	var topoCfg topology.Config
	switch *scale {
	case "small":
		topoCfg = topology.SmallConfig()
	case "production":
		topoCfg = topology.ProductionConfig()
	default:
		fatal(fmt.Errorf("unknown scale %q", *scale))
	}
	topoCfg.Seed = *seed
	topo, err := topology.Generate(topoCfg)
	if err != nil {
		fatal(err)
	}

	cfg := core.DefaultConfig()
	th, err := locator.ParseThresholds(*thresholds)
	if err != nil {
		fatal(err)
	}
	cfg.Locator.Thresholds = th
	cfg.Evaluator.SeverityThreshold = *severity
	cfg.Workers = *workers

	var reg *telemetry.Registry
	var journal *telemetry.Journal
	if *showStats {
		reg = telemetry.New()
		journal = telemetry.NewJournal(0)
	}
	var db *tsdb.DB
	if *historyMetrics != "" {
		if reg == nil {
			reg = telemetry.New() // the sampler reads registry handles
		}
		db = tsdb.New(tsdb.Config{})
	}
	var tracer *span.Tracer
	if *showSpans {
		tracer = span.NewTracer(0)
	}
	var prov *provenance.Recorder
	switch {
	case *explainID >= 0:
		// Explaining one incident wants every lineage in detail.
		prov = provenance.New(provenance.Config{SampleEvery: 1})
	case *provEvery > 0:
		prov = provenance.New(provenance.Config{SampleEvery: *provEvery})
	}
	var floodRec *flood.Recorder
	if *showFloods {
		floodRec = flood.New(flood.Config{})
	}
	eng, err := trace.ReplayWithOptions(alerts, topo, cfg,
		trace.ReplayOptions{Telemetry: reg, Journal: journal, Provenance: prov, Tracer: tracer, Flood: floodRec,
			History: db})
	if err != nil {
		fatal(err)
	}

	all := eng.AllIncidents()
	stats := eng.PreprocessStats()
	fmt.Printf("replayed %d raw alerts → %d structured → %d incidents\n",
		stats.In, stats.Out, len(all))
	shown := 0
	for _, in := range evaluator.Rank(all) {
		if in.Severity < *severity {
			continue
		}
		shown++
		fmt.Println(in.Render())
	}
	if shown == 0 {
		fmt.Printf("no incidents at or above severity %.1f (rerun with -severity 0 to see all)\n", *severity)
	}
	if *showStats {
		printStats(eng, reg, journal)
	}
	if tracer != nil {
		printSpans(tracer)
	}
	if prov != nil {
		printConservation(prov)
	}
	if floodRec != nil {
		printFloods(floodRec)
	}
	if db != nil {
		printHistory(db, *historyMetrics)
	}
	if *explainID >= 0 {
		explain(eng, prov, *explainID)
	}
}

// printHistory renders the -history report: a terminal sparkline per
// requested metric from the replay's tick-indexed store. "all" lists
// every recorded series instead.
func printHistory(db *tsdb.DB, metrics string) {
	fmt.Printf("\n== telemetry history (%d series, %d samples, %s resident) ==\n",
		len(db.SeriesNames()), db.Samples(), formatBytes(db.MemoryBytes()))
	if metrics == "all" {
		for _, name := range db.SeriesNames() {
			fmt.Printf("  %s\n", name)
		}
		return
	}
	for _, metric := range strings.Split(metrics, ",") {
		metric = strings.TrimSpace(metric)
		if metric == "" {
			continue
		}
		res, err := db.Query(metric, 0, 0, 1)
		if err != nil {
			fmt.Printf("%s: %v (try -history all for the recorded series)\n", metric, err)
			continue
		}
		fmt.Print(tsdb.RenderHistory(res, 72))
	}
}

func formatBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// printFloods renders the -floods report: the episode table, then each
// episode's full postmortem.
func printFloods(rec *flood.Recorder) {
	eps := rec.Episodes()
	fmt.Println("\n== flood episodes ==")
	if len(eps) == 0 {
		fmt.Println("  no flood episodes detected")
		return
	}
	fmt.Print(flood.RenderTable(eps))
	for i := range eps {
		fmt.Print(eps[i].Render())
	}
}

// printConservation renders the lineage ledger: every ingested alert must
// be in exactly one terminal bucket once the replay has quiesced.
func printConservation(prov *provenance.Recorder) {
	c := prov.Counters()
	fmt.Println("\n== lineage conservation (ingested == consolidated + filtered + expired + attributed) ==")
	fmt.Printf("  ingested      %8d  (%d link-split mirrors)\n", c.Ingested, c.Split)
	fmt.Printf("  consolidated  %8d\n", c.Consolidated)
	fmt.Printf("  filtered      %8d  (", c.Filtered)
	for r := provenance.FilterUnclassified; ; r++ {
		fmt.Printf("%d %s", c.ByReason[r], r)
		if r == provenance.FilterStale {
			break
		}
		fmt.Print(", ")
	}
	fmt.Println(")")
	fmt.Printf("  expired       %8d\n", c.Expired)
	fmt.Printf("  attributed    %8d\n", c.Attributed)
	if inflight := c.Ingested - c.Terminal(); inflight != 0 {
		fmt.Printf("  IN FLIGHT     %8d  — conservation violated at quiescence!\n", inflight)
	} else {
		fmt.Println("  conserved: every lineage accounted for exactly once")
	}
}

// explain prints the human-readable provenance tree of one incident.
func explain(eng *core.Engine, prov *provenance.Recorder, id int) {
	for _, in := range eng.AllIncidents() {
		if in.ID == id {
			fmt.Printf("\n%s", prov.Explain(in).Render())
			return
		}
	}
	fmt.Fprintf(os.Stderr, "skynet-replay: -explain %d: no such incident\n", id)
	os.Exit(1)
}

// printStats renders the -stats report: the volume funnel of Fig. 5a and
// the per-stage tick timings accumulated by the telemetry registry.
func printStats(eng *core.Engine, reg *telemetry.Registry, journal *telemetry.Journal) {
	st := eng.PreprocessStats()
	active := len(eng.Active())
	closed := len(eng.Closed())
	structured := st.In - st.DroppedUnclassified

	fmt.Println("\n== funnel: raw → structured → consolidated → incidents ==")
	fmt.Printf("  raw alerts          %d\n", st.In)
	fmt.Printf("  structured          %d  (%d syslog lines unclassified)\n", structured, st.DroppedUnclassified)
	fmt.Printf("  consolidated        %d  (%s reduction: %d deduplicated, %d sporadic, %d related, %d uncorroborated)\n",
		st.Out, reduction(st.In, st.Out), st.Deduplicated, st.DroppedSporadic, st.DroppedRelated, st.DroppedUncorroborated)
	fmt.Printf("  incidents           %d  (%d active, %d closed)\n", active+closed, active, closed)
	if journal != nil {
		fmt.Printf("  lifecycle events    %d\n", len(journal.Events()))
	}

	snaps := map[string]telemetry.MetricSnapshot{}
	for _, m := range reg.Snapshot() {
		snaps[m.Name] = m
	}
	fmt.Println("\n== per-stage timing (per tick) ==")
	fmt.Printf("  %-12s %8s %10s %10s %10s %12s\n", "stage", "ticks", "mean", "p50", "p90", "total")
	for _, row := range []struct{ label, metric string }{
		{"preprocess", "skynet_stage_preprocess_seconds"},
		{"locate", "skynet_stage_locate_seconds"},
		{"evaluate", "skynet_stage_evaluate_seconds"},
		{"sop", "skynet_stage_sop_seconds"},
		{"full tick", "skynet_tick_seconds"},
	} {
		h := snaps[row.metric].Hist
		if h == nil {
			continue
		}
		fmt.Printf("  %-12s %8d %10s %10s %10s %12s\n", row.label, h.Count,
			fmtSeconds(h.Mean()), fmtSeconds(h.Quantile(0.5)), fmtSeconds(h.Quantile(0.9)), fmtSeconds(h.Sum))
	}
	if v, ok := snaps["skynet_replay_alerts_per_second"]; ok && v.Value > 0 {
		fmt.Printf("\nreplay throughput: %s alerts/s (%s wall)\n",
			fmtCount(v.Value), fmtSeconds(snaps["skynet_replay_seconds"].Value))
	}
}

// printSpans renders the -spans report: the span tree of the slowest tick
// and the per-stage span latency aggregates over the whole replay.
func printSpans(tracer *span.Tracer) {
	fmt.Printf("\n== slowest tick (of %d traced) ==\n", tracer.TickCount())
	if slow, ok := tracer.Slowest(); ok {
		fmt.Print(slow.Render())
	} else {
		fmt.Println("  no ticks traced")
	}
	fmt.Println("\n== per-stage span latency ==")
	fmt.Print(span.RenderStageStats(tracer.StageStats()))
}

func reduction(in, out int) string {
	if in == 0 {
		return "0%"
	}
	return fmt.Sprintf("%.1f%%", 100*(1-float64(out)/float64(in)))
}

func fmtSeconds(s float64) string {
	if math.IsInf(s, 1) {
		return ">10s"
	}
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}

func fmtCount(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "skynet-replay: %v\n", err)
	os.Exit(1)
}
