// Command skynetd is the SkyNet analysis daemon: it listens for raw
// alerts over TCP (JSON Lines) and UDP (compact pipe format), runs the
// preprocessor → locator → evaluator pipeline on a wall-clock tick, and
// prints incident reports as they are created, updated, or closed.
//
// Usage:
//
//	skynetd -tcp :7070 -udp :7071
//	skynetd -tcp 127.0.0.1:0 -scale small   # with topology-aware scoping
//
// Send alerts with the ingest clients or anything that speaks the wire
// formats (see internal/alert). Stop with SIGINT/SIGTERM.
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sync"
	"syscall"
	"time"

	"skynet/internal/alert"
	"skynet/internal/core"
	"skynet/internal/fanout"
	"skynet/internal/flight"
	"skynet/internal/flood"
	"skynet/internal/ingest"
	"skynet/internal/preprocess"
	"skynet/internal/prof"
	"skynet/internal/provenance"
	"skynet/internal/slo"
	"skynet/internal/span"
	"skynet/internal/status"
	"skynet/internal/telemetry"
	"skynet/internal/topology"
	"skynet/internal/tsdb"
)

// version identifies the build; release pipelines override it with
// -ldflags "-X main.version=...".
var version = "dev"

func main() {
	var (
		tcpAddr  = flag.String("tcp", "127.0.0.1:7070", "TCP listen address (empty disables)")
		udpAddr  = flag.String("udp", "127.0.0.1:7071", "UDP listen address (empty disables)")
		httpAddr = flag.String("http", "127.0.0.1:7072", "HTTP status address (empty disables)")
		tick     = flag.Duration("tick", 10*time.Second, "pipeline tick interval")
		scale    = flag.String("scale", "", "optional synthetic topology: small or production")
		topoFile = flag.String("topo", "", "optional topology JSON file (overrides -scale)")
		seed     = flag.Int64("seed", 1, "topology seed")
		pprofOn  = flag.Bool("pprof", false, "mount /debug/pprof on the HTTP status server")
		workers  = flag.Int("workers", 0,
			"pipeline worker fan-out (0 = all cores, 1 = serial; output is identical)")
		provEvery = flag.Int("provenance", provenance.DefaultSampleEvery,
			"record lineage detail for 1 in N ingested alerts (1 = all, 0 disables; conservation counters stay exact)")
		flightDir = flag.String("flight-dir", "flight-dumps",
			"flight-recorder dump directory (empty disables dumps; triggers, /api/health, and /api/trace stay on)")
		sloTickP99 = flag.Duration("slo-tick-p99", flight.DefaultSLOTickP99,
			"self-SLO on tick latency p99; a breach fires the flight recorder")
		flightMaxDumps = flag.Int("flight-max-dumps", 0,
			"max flight dump directories kept on disk; oldest are deleted past the cap (0 = keep all)")
		selfMonitor = flag.Bool("self-monitor", true,
			"inject synthetic meta/skynetd alerts through the ingest path when an SLO burn-rate rule fires")
		historySnap = flag.String("history-snapshot", "",
			"file for the final telemetry-history snapshot written on shutdown (default <flight-dir>/history-final.json; empty flight dir disables)")
		mutexFraction = flag.Int("mutex-fraction", 0,
			"mutex contention profiling: record 1 in N contention events (0 disables; see bench_results.txt for overhead)")
		blockRate = flag.Int("block-rate", 0,
			"block profiling: record blocking events lasting >= N ns (0 disables; see bench_results.txt for overhead)")
		profileDir = flag.String("profile-dir", "profiles",
			"continuous-profiler window archive directory (empty disables archiving; capture, telemetry, and /api/profile stay on)")
		profileInterval = flag.Duration("profile-interval", time.Minute,
			"continuous-profiler capture cadence, start to start")
		profileWindow = flag.Duration("profile-window", 5*time.Second,
			"continuous-profiler CPU capture length per window")
		profileMaxWindows = flag.Int("profile-max-windows", 16,
			"max profile window directories kept on disk; oldest are deleted past the cap")
		fanoutRing = flag.Int("fanout-ring", 1024,
			"fan-out ring capacity in frames (rounded up to a power of two); lagging subscribers past ring+slack are resynced from the snapshot")
		fanoutRate = flag.Float64("fanout-rate", 0,
			"per-subscriber event deliveries per second on /api/events (0 = unlimited; backlog coalesces, never queues)")
	)
	flag.Parse()
	log := slog.New(slog.NewTextHandler(os.Stderr, nil))

	// Contention profiling is sampled and default-off; the flags wire
	// straight through to the runtime. Profiles appear on /debug/pprof
	// (with -pprof), in continuous-profiler windows, and in flight dumps.
	if *mutexFraction > 0 {
		runtime.SetMutexProfileFraction(*mutexFraction)
	}
	if *blockRate > 0 {
		runtime.SetBlockProfileRate(*blockRate)
	}

	var topo *topology.Topology
	if *topoFile != "" {
		var err error
		topo, err = topology.LoadFile(*topoFile)
		if err != nil {
			fatal(log, err)
		}
		log.Info("topology loaded from file", "path", *topoFile,
			"devices", topo.NumDevices(), "links", topo.NumLinks())
	}
	switch {
	case topo != nil:
		// loaded from file above
	case *scale == "":
		log.Info("running without topology; connectivity scoping disabled")
	case *scale == "small" || *scale == "production":
		cfg := topology.SmallConfig()
		if *scale == "production" {
			cfg = topology.ProductionConfig()
		}
		cfg.Seed = *seed
		var err error
		topo, err = topology.Generate(cfg)
		if err != nil {
			fatal(log, err)
		}
		log.Info("topology generated", "devices", topo.NumDevices(), "links", topo.NumLinks())
	default:
		fatal(log, fmt.Errorf("unknown scale %q", *scale))
	}

	classifier, err := preprocess.BootstrapClassifier()
	if err != nil {
		fatal(log, err)
	}
	engineCfg := core.DefaultConfig()
	engineCfg.Workers = *workers
	engine := core.NewEngine(engineCfg, topo, classifier, nil, nil)
	// engineMu serializes the main loop and the HTTP status handlers.
	var engineMu sync.Mutex

	// Telemetry: the registry backs GET /metrics, the journal backs
	// GET /api/journal.
	reg := telemetry.New()
	journal := telemetry.NewJournal(0)
	engine.EnableTelemetry(reg, journal)
	journal.RegisterMetrics(reg)

	// Tracing: a span tree per tick, feeding /api/trace, the per-stage
	// span histograms on /metrics, and flight-recorder dumps.
	tracer := span.NewTracer(0)
	engine.EnableTracing(tracer)

	// Telemetry history: every registry metric sampled once per tick into
	// the tick-indexed store behind GET /api/query, flight-dump history
	// sections, and flood postmortem trajectory curves.
	db := tsdb.New(tsdb.Config{})
	db.RegisterMetrics(reg)
	engine.EnableHistory(tsdb.NewSampler(db, reg))

	// SLO watchdog: multi-window burn-rate rules over the history store;
	// with -self-monitor, burns feed back into the pipeline as synthetic
	// meta/skynetd alerts.
	sloEng := slo.New(db, slo.DefaultRules(*sloTickP99))
	sloEng.RegisterMetrics(reg)
	engine.EnableSLO(sloEng, *selfMonitor)

	// Continuous profiling: pipeline stages run under pprof labels, a
	// background collector captures short windowed CPU profiles on a
	// cadence and aggregates per-stage CPU fractions into skynet_prof_*
	// telemetry behind GET /api/profile; the runtime sampler feeds GC /
	// heap / scheduler health into the registry and the history store
	// (where the gc_pause burn-rate rule watches it).
	engine.EnableProfiling(prof.NewLabeler(engine.MaxShards()))
	engine.EnableRuntimeMetrics(prof.NewRuntime(reg))
	profiler := prof.NewCollector(prof.CollectorConfig{
		Dir:        *profileDir,
		Interval:   *profileInterval,
		Window:     *profileWindow,
		MaxWindows: *profileMaxWindows,
		Registry:   reg,
	})
	profiler.Start()
	defer profiler.Stop()

	// Fan-out serving layer: every tick the engine publishes one encoded
	// incident-feed snapshot plus delta into the hub's shared ring, and
	// GET /api/events serves frames by reference — subscriber count never
	// touches the tick path. Event chatter (journal, flood, flight, SLO)
	// rides the same ring with SSE ids for Last-Event-ID resume.
	hub := fanout.NewHub(fanout.Config{
		Ring:      *fanoutRing,
		Rate:      *fanoutRate,
		WallStamp: true,
	})
	defer hub.Close()
	hub.RegisterMetrics(reg)
	engine.EnableFanout(hub)
	journal.SetNotify(func(ev telemetry.Event) { hub.Publish(status.EventTypeIncident, ev) })

	// Provenance: lineage conservation counters on /metrics and the
	// per-incident explain endpoint.
	var prov *provenance.Recorder
	if *provEvery > 0 {
		prov = provenance.New(provenance.Config{SampleEvery: *provEvery})
		engine.EnableProvenance(prov)
		prov.RegisterMetrics(reg)
	}

	// Flood forensics: the episode detector rides the engine tick, tags
	// telemetry with the episode ID, and accumulates per-episode
	// postmortems for GET /api/floods.
	floodRec := flood.New(flood.Config{})
	engine.EnableFlood(floodRec)
	floodRec.RegisterMetrics(reg)
	floodRec.SetHistory(flood.HistoryFromDB(db,
		tsdb.MetricTickDuration,
		"skynet_raw_alerts_total",
		"skynet_active_incidents",
		"skynet_preprocess_pending_depth"))
	floodRec.SetNotify(func(ev flood.Event) {
		hub.Publish(status.EventTypeFlood, ev)
		log.Info("flood episode", "episode", ev.Episode, "phase", ev.Phase.String(), "detail", ev.Detail)
		if ev.Phase == flood.PhaseClosed && *flightDir != "" {
			if rep, ok := floodRec.Report(ev.Episode); ok {
				if path, err := flood.WriteReport(*flightDir, &rep); err != nil {
					log.Warn("flood report archive failed", "err", err)
				} else {
					log.Info("flood postmortem archived", "path", path)
				}
			}
		}
	})

	log.Info("pipeline configured",
		"workers", engine.Workers(),
		"preprocess_shards", engine.PreprocessShards(),
		"locator_shards", engine.LocatorShards(),
		"provenance_sample_every", *provEvery)
	// The batch handler runs on the ingest dispatch goroutine and feeds
	// the engine's columnar path directly under engineMu (IngestBatch
	// copies the columns out, so the dispatcher's batch is safe to
	// reuse). Backpressure lives inside ingest: its queues buffer while
	// the engine ticks, and overflow is shed there — counted on the
	// skynet_ingest_rejected_queue_full_total counter, never silently
	// dropped.
	srv, err := ingest.ListenBatch(ingest.Config{
		TCPAddr:     *tcpAddr,
		UDPAddr:     *udpAddr,
		MaxConns:    256,
		ReadTimeout: 5 * time.Minute,
		QueueDepth:  8192,
		Logger:      log,
	}, func(b *alert.Batch) {
		engineMu.Lock()
		engine.IngestBatch(b)
		engineMu.Unlock()
	})
	if err != nil {
		fatal(log, err)
	}
	srv.RegisterMetrics(reg)
	defer srv.Close()

	// Flight recorder: watches tick p99, ingest shed, journal drops, queue
	// high-water, and provenance conservation; dumps evidence on anomalies.
	flightSrc := flight.Sources{
		Shed:           func() int64 { return int64(srv.Stats().QueueFull) },
		JournalEvicted: journal.Evicted,
		Queue:          srv.QueueLoad,
		FloodClosed:    floodRec.ClosedCount,
		Metrics:        reg,
		Tracer:         tracer,
		SLOBurnEvents:  sloEng.EventCount,
		SLODetail:      sloEng.LastDetail,
		History:        func(w io.Writer) error { return db.SnapshotTo(w, time.Now()) },
		Profiles:       profiler.WriteLatest,
		Incidents: func() any {
			engineMu.Lock()
			defer engineMu.Unlock()
			active := engine.Active()
			out := make([]status.IncidentSummary, 0, len(active))
			for _, inc := range active {
				out = append(out, status.Summarize(inc))
			}
			return out
		},
	}
	if prov != nil {
		flightSrc.ProvInFlight = prov.InFlight
	}
	flightRec := flight.New(flight.Config{
		Dir:         *flightDir,
		SLOTickP99:  *sloTickP99,
		MaxDumpDirs: *flightMaxDumps,
	}, flightSrc)
	flightRec.RegisterMetrics(reg)
	flightRec.SetNotify(func(ev flight.Event) {
		hub.Publish(status.EventTypeAnomaly, ev)
		log.Warn("flight-recorder trigger", "trigger", ev.Trigger, "detail", ev.Detail, "dump", ev.DumpDir)
	})
	sloEng.SetNotify(func(ev slo.Event) {
		hub.Publish(status.EventTypeSLO, ev)
		log.Warn("slo burn event", "rule", ev.Rule, "firing", ev.Firing, "detail", ev.Detail)
	})
	if a := srv.TCPAddr(); a != nil {
		log.Info("tcp listening", "addr", a.String())
	}
	if a := srv.UDPAddr(); a != nil {
		log.Info("udp listening", "addr", a.String())
	}
	if *httpAddr != "" {
		flags := map[string]string{}
		flag.VisitAll(func(f *flag.Flag) { flags[f.Name] = f.Value.String() })
		snap := status.NewSnapshotter(&engineMu, engine, srv).
			WithTopology(topo).
			WithTelemetry(reg).
			WithJournal(journal).
			WithProvenance(prov).
			WithBuildInfo(status.BuildInfo{
				Version:   version,
				GoVersion: runtime.Version(),
				OS:        runtime.GOOS,
				Arch:      runtime.GOARCH,
				Workers:   engine.Workers(),
				Flags:     flags,
			}).
			WithPprof(*pprofOn).
			WithFlight(flightRec).
			WithTracer(tracer).
			WithEvents(hub).
			WithFlood(floodRec).
			WithHistory(db).
			WithSLO(sloEng).
			WithProfiler(profiler)
		statusSrv, err := status.Listen(*httpAddr, snap, log)
		if err != nil {
			fatal(log, err)
		}
		defer statusSrv.Close()
		log.Info("http status listening", "addr", statusSrv.Addr().String(), "pprof", *pprofOn)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	ticker := time.NewTicker(*tick)
	defer ticker.Stop()

	known := map[int]bool{}
	for {
		select {
		case now := <-ticker.C:
			engineMu.Lock()
			tickStart := time.Now()
			res := engine.Tick(now)
			tickDur := time.Since(tickStart)
			closed := engine.Closed()
			active := len(engine.Active())
			engineMu.Unlock()
			// Observe outside engineMu: a dump's incident snapshot takes
			// the lock itself. Perf feeds the open flood episode's report
			// without touching its deterministic episode state.
			floodRec.ObservePerf(tickDur, int64(srv.Stats().QueueFull))
			flightRec.Observe(now, tickDur)
			for _, inc := range res.NewIncidents {
				known[inc.ID] = true
				fmt.Printf("--- NEW INCIDENT ---\n%s\n", inc.Render())
			}
			for _, inc := range closed {
				if known[inc.ID] {
					delete(known, inc.ID)
					fmt.Printf("--- INCIDENT %d CLOSED at %s ---\n", inc.ID, inc.End.Format(time.TimeOnly))
				}
			}
			if len(res.NewIncidents) == 0 && res.Structured > 0 {
				log.Info("tick", "structured", res.Structured, "active", active)
			}
		case sig := <-stop:
			log.Info("shutting down", "signal", sig.String())
			// Close the fan-out hub first so every SSE subscriber wakes
			// with ErrClosed and /api/events handlers return before the
			// HTTP server's deferred graceful shutdown runs.
			hub.Close()
			// Flush the final telemetry-history snapshot: the whole run's
			// tick-indexed series, the postmortem artifact CI uploads.
			if path := finalSnapshotPath(*historySnap, *flightDir); path != "" {
				if err := writeHistorySnapshot(db, path); err != nil {
					log.Warn("history snapshot failed", "err", err)
				} else {
					log.Info("history snapshot written", "path", path,
						"series", len(db.SeriesNames()), "samples", db.Samples(),
						"resident_bytes", db.MemoryBytes())
				}
			}
			engineMu.Lock()
			stats := engine.PreprocessStats()
			total := len(engine.AllIncidents())
			engineMu.Unlock()
			srvStats := srv.Stats()
			fmt.Printf("ingested %d alerts (%d rejected, %d shed), %d structured, queue high water %d\n",
				srvStats.AlertsAccepted, srvStats.AlertsRejected, srvStats.QueueFull, stats.Out, srvStats.QueueHighWater)
			fmt.Printf("%d incidents over the run, %d lifecycle events journaled\n", total, journal.Len())
			return
		}
	}
}

// finalSnapshotPath resolves the -history-snapshot flag: an explicit
// path wins; otherwise the snapshot lands next to the flight dumps, and
// an empty flight dir disables it.
func finalSnapshotPath(flagPath, flightDir string) string {
	if flagPath != "" {
		return flagPath
	}
	if flightDir == "" {
		return ""
	}
	return filepath.Join(flightDir, "history-final.json")
}

func writeHistorySnapshot(db *tsdb.DB, path string) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = db.SnapshotTo(f, time.Now())
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func fatal(log *slog.Logger, err error) {
	log.Error("fatal", "err", err)
	os.Exit(1)
}
