package main

import (
	"fmt"
	"net"
	"time"

	"skynet/internal/alert"
	"skynet/internal/hierarchy"
)

func main() {
	loc := hierarchy.MustNew("RG01", "CT01", "LS01", "ST01", "CL01", "dev-1")
	now := time.Now()
	var alerts []alert.Alert
	kinds := []struct {
		src alert.Source
		typ string
	}{
		{alert.SourcePing, "packet loss"},
		{alert.SourceSNMP, "link down"},
		{alert.SourceSyslog, "bgp peer down"},
	}
	for i := 0; i < 30; i++ {
		k := kinds[i%len(kinds)]
		alerts = append(alerts, alert.Alert{
			Source:   k.src,
			Type:     k.typ,
			Location: loc,
			Time:     now,
			End:      now.Add(time.Minute),
			Count:    1,
			Value:    0.5,
		})
	}
	conn, err := net.Dial("tcp", "127.0.0.1:7070")
	if err != nil {
		panic(err)
	}
	defer conn.Close()
	if err := alert.WriteAll(conn, alerts); err != nil {
		panic(err)
	}
	fmt.Println("sent", len(alerts))
}
