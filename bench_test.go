package skynet

// Benchmark harness: one benchmark per paper table/figure (regenerating
// the measured rows each iteration at reduced corpus size), plus
// microbenchmarks for the hot paths. Run everything with:
//
//	go test -bench=. -benchmem
//
// The skynet-bench binary prints the full-size tables; these benchmarks
// exist so `go test -bench` regenerates every experiment and tracks the
// implementation's own performance.

import (
	"flag"
	"os"
	"testing"
	"time"

	"skynet/internal/alert"
	"skynet/internal/core"
	"skynet/internal/evaluator"
	"skynet/internal/experiments"
	"skynet/internal/flood"
	"skynet/internal/hierarchy"
	"skynet/internal/incident"
	"skynet/internal/locator"
	"skynet/internal/monitors"
	"skynet/internal/netsim"
	"skynet/internal/preprocess"
	"skynet/internal/prof"
	"skynet/internal/provenance"
	"skynet/internal/slo"
	"skynet/internal/span"
	"skynet/internal/telemetry"
	"skynet/internal/topology"
	"skynet/internal/tsdb"
)

var benchEpoch = time.Date(2024, 7, 2, 11, 0, 0, 0, time.UTC)

// benchOptions is a reduced corpus so figure-level benchmarks complete in
// seconds per iteration.
func benchOptions() experiments.Options {
	opts := experiments.DefaultOptions()
	opts.Scenarios = 6
	opts.Window = 8 * time.Minute
	return opts
}

func runExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.ByName(name, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatalf("%s produced no rows", name)
		}
	}
}

// BenchmarkFig1ScenarioMix regenerates the Figure 1 root-cause mix.
func BenchmarkFig1ScenarioMix(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkFig3Coverage regenerates the Figure 3 per-tool coverage bars.
func BenchmarkFig3Coverage(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig5dCorrelation regenerates the Figure 5d class correlation.
func BenchmarkFig5dCorrelation(b *testing.B) { runExperiment(b, "fig5d") }

// BenchmarkFig8aSourceAblation regenerates the Figure 8a accuracy-vs-
// sources ablation.
func BenchmarkFig8aSourceAblation(b *testing.B) { runExperiment(b, "fig8a") }

// BenchmarkFig8bPreprocess regenerates the Figure 8b volume reduction.
func BenchmarkFig8bPreprocess(b *testing.B) { runExperiment(b, "fig8b") }

// BenchmarkFig8cLocate regenerates the Figure 8c locating-time curve.
func BenchmarkFig8cLocate(b *testing.B) { runExperiment(b, "fig8c") }

// BenchmarkFig9Thresholds regenerates the Figure 9 threshold sweep.
func BenchmarkFig9Thresholds(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10aSeverity regenerates the Figure 10a severity
// distributions.
func BenchmarkFig10aSeverity(b *testing.B) { runExperiment(b, "fig10a") }

// BenchmarkFig10bFilter regenerates the Figure 10b monthly filter counts.
func BenchmarkFig10bFilter(b *testing.B) { runExperiment(b, "fig10b") }

// BenchmarkFig10cMitigation regenerates the Figure 10c mitigation-time
// comparison.
func BenchmarkFig10cMitigation(b *testing.B) { runExperiment(b, "fig10c") }

// BenchmarkSec62Preprocessing regenerates the §6.2 stream summary.
func BenchmarkSec62Preprocessing(b *testing.B) { runExperiment(b, "preprocessing") }

// BenchmarkCases reruns the §5.1 case studies.
func BenchmarkCases(b *testing.B) { runExperiment(b, "cases") }

// --- Microbenchmarks: hot paths of the pipeline ---

// BenchmarkLocatorAddCheck measures main-tree insertion plus incident
// generation over a 40k-alert hotspot batch — the Figure 8c unit of work.
func BenchmarkLocatorAddCheck(b *testing.B) {
	topo := topology.MustGenerate(topology.SmallConfig())
	alerts := experiments.SyntheticStructuredAlerts(topo, 40000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loc := locator.New(locator.DefaultConfig(), topo)
		for j := range alerts {
			loc.Add(alerts[j])
		}
		loc.Check(benchEpoch.Add(time.Minute))
	}
	b.ReportMetric(float64(len(alerts)), "alerts/op")
}

// BenchmarkPreprocessorStream measures the §4.1 stream stage on a raw
// synthetic batch.
func BenchmarkPreprocessorStream(b *testing.B) {
	topo := topology.MustGenerate(topology.SmallConfig())
	raw := experiments.SyntheticStructuredAlerts(topo, 20000, 2)
	classifier, err := preprocess.BootstrapClassifier()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _ := preprocess.Process(preprocess.DefaultConfig(), topo, classifier, raw, 10*time.Second)
		if len(out) == 0 {
			b.Fatal("no output")
		}
	}
}

// BenchmarkFTreeClassify measures syslog line classification.
func BenchmarkFTreeClassify(b *testing.B) {
	classifier, err := preprocess.BootstrapClassifier()
	if err != nil {
		b.Fatal(err)
	}
	line := "%LINK-3-UPDOWN: Interface TenGigE0/1/0/25, changed state to down (bench)"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := classifier.ClassifyLine(line); !ok {
			b.Fatal("line did not classify")
		}
	}
}

// BenchmarkPathEval measures end-to-end path evaluation in the simulator.
func BenchmarkPathEval(b *testing.B) {
	topo := topology.MustGenerate(topology.SmallConfig())
	sim := netsim.New(topo, 1)
	if err := sim.Step(benchEpoch); err != nil {
		b.Fatal(err)
	}
	cls := topo.Clusters()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.EvalPath(cls[i%len(cls)], cls[(i+7)%len(cls)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetPoll measures one full monitoring round over the small
// topology with an active severe failure.
func BenchmarkFleetPoll(b *testing.B) {
	topo := topology.MustGenerate(topology.SmallConfig())
	sim := netsim.New(topo, 1)
	city := topo.Clusters()[0].Truncate(hierarchy.LevelCity)
	sim.MustInject(netsim.Fault{Kind: netsim.FaultFiberBundleCut, Location: city, Magnitude: 0.5, Start: benchEpoch})
	fleet := monitors.NewFleet(topo, monitors.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := benchEpoch.Add(time.Duration(i) * 2 * time.Second)
		if err := sim.Step(now); err != nil {
			b.Fatal(err)
		}
		fleet.Poll(sim, now)
	}
}

// BenchmarkSeverityScore measures Equation 1–3 evaluation.
func BenchmarkSeverityScore(b *testing.B) {
	topo := topology.MustGenerate(topology.SmallConfig())
	eval := evaluator.New(evaluator.DefaultConfig(), topo)
	alerts := experiments.SyntheticStructuredAlerts(topo, 500, 3)
	in := buildBenchIncident(topo, alerts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.Score(in, benchEpoch.Add(10*time.Minute))
	}
}

func buildBenchIncident(topo *topology.Topology, alerts []alert.Alert) *Incident {
	root := hierarchy.Root()
	for i := range alerts {
		if root.IsRoot() {
			root = alerts[i].Location.Truncate(hierarchy.LevelSite)
		}
	}
	in := incident.New(1, root)
	for i := range alerts {
		if root.Contains(alerts[i].Location) {
			in.Add(alerts[i])
		}
	}
	return in
}

// --- Telemetry overhead ---

// telemetryDump, when set, writes the Prometheus text snapshot
// accumulated by the instrumented benchmarks to the given file:
//
//	go test -bench=EngineTick -telemetrydump=telemetry.prom
var telemetryDump = flag.String("telemetrydump", "",
	"write a Prometheus text snapshot of benchmark telemetry to this file")

// benchEngineTick drives the engine through repeated ingest+tick rounds
// over a severe-failure alert batch. With a nil registry it measures the
// bare pipeline; with one attached it measures the instrumented path, so
// the pair bounds the telemetry overhead. A lineage recorder likewise
// bounds the provenance overhead, a span tracer the tracing overhead, a
// flood recorder the episode-tagging overhead, history the full
// telemetry-history stack (per-tick sampler + SLO burn-rate engine with
// self-monitoring on; requires reg), and profiled the pprof stage
// labeler plus the runtime/metrics sampler.
func benchEngineTick(b *testing.B, workers int, reg *telemetry.Registry, journal *telemetry.Journal, rec *provenance.Recorder, tracer *span.Tracer, fl *flood.Recorder, history, profiled bool) {
	topo := topology.MustGenerate(topology.SmallConfig())
	alerts := experiments.SyntheticStructuredAlerts(topo, 2000, 1)
	classifier, err := preprocess.BootstrapClassifier()
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Workers = workers
	eng := core.NewEngine(cfg, topo, classifier, nil, nil)
	if reg != nil || journal != nil {
		eng.EnableTelemetry(reg, journal)
	}
	if rec != nil {
		eng.EnableProvenance(rec)
	}
	if tracer != nil {
		eng.EnableTracing(tracer)
	}
	if fl != nil {
		eng.EnableFlood(fl)
	}
	if profiled {
		eng.EnableProfiling(prof.NewLabeler(eng.MaxShards()))
		eng.EnableRuntimeMetrics(prof.NewRuntime(telemetry.New()))
	}
	if history {
		db := tsdb.New(tsdb.Config{})
		db.RegisterMetrics(reg)
		eng.EnableHistory(tsdb.NewSampler(db, reg))
		sloEng := slo.New(db, slo.DefaultRules(500*time.Millisecond))
		sloEng.RegisterMetrics(reg)
		eng.EnableSLO(sloEng, true)
	}
	now := benchEpoch
	// The batch is built once and only its Time column is rewritten per
	// round: IngestBatch copies the columns out, so the engine sees a
	// fresh batch every tick while the harness models a collector that
	// reuses its buffer.
	var batch alert.Batch
	for j := range alerts {
		batch.Append(&alerts[j])
	}
	var ts [10]time.Time
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := range ts {
			ts[k] = now.Add(time.Duration(k) * time.Second)
		}
		for j := range batch.Time {
			batch.Time[j] = ts[j%10]
		}
		eng.IngestBatch(&batch)
		now = now.Add(10 * time.Second)
		eng.Tick(now)
	}
	b.ReportMetric(float64(len(alerts)), "alerts/tick")
}

// BenchmarkEngineTick measures an uninstrumented ingest+tick round with
// the default worker fan-out (all cores).
func BenchmarkEngineTick(b *testing.B) { benchEngineTick(b, 0, nil, nil, nil, nil, nil, false, false) }

// BenchmarkEngineTickSerial pins the pipeline to one worker — the serial
// reference the parallel path must match bit-for-bit (see
// TestEngineDeterministicAcrossWorkers).
func BenchmarkEngineTickSerial(b *testing.B) {
	benchEngineTick(b, 1, nil, nil, nil, nil, nil, false, false)
}

// BenchmarkEngineTickWorkers4 forces four workers regardless of core
// count, exposing the goroutine fan-out overhead when oversubscribed.
func BenchmarkEngineTickWorkers4(b *testing.B) {
	benchEngineTick(b, 4, nil, nil, nil, nil, nil, false, false)
}

// BenchmarkEngineTickProvenance is BenchmarkEngineTick with the lineage
// recorder attached at the default 1-in-16 sampling; the delta between
// the two is the provenance cost per tick (acceptance bound: within 5%).
func BenchmarkEngineTickProvenance(b *testing.B) {
	benchEngineTick(b, 0, nil, nil, provenance.New(provenance.Config{}), nil, nil, false, false)
}

// BenchmarkEngineTickSpans is BenchmarkEngineTick with the span tracer
// attached; the delta between the two is the tracing cost per tick
// (acceptance bound: within 2%, see bench_results.txt).
func BenchmarkEngineTickSpans(b *testing.B) {
	benchEngineTick(b, 0, nil, nil, nil, span.NewTracer(0), nil, false, false)
}

// BenchmarkEngineTickFlood is BenchmarkEngineTick with the flood-episode
// recorder attached; the delta between the two is the episode-tagging
// cost per tick (acceptance bound: within 2%, see bench_results.txt).
// The synthetic batch rate keeps an episode open for the whole run, so
// this measures the recorder's worst case: every tick aggregates.
func BenchmarkEngineTickFlood(b *testing.B) {
	benchEngineTick(b, 0, nil, nil, nil, nil, flood.New(flood.Config{}), false, false)
}

// BenchmarkEngineTickTelemetry is BenchmarkEngineTick with the metrics
// registry and lifecycle journal attached; the delta between the two is
// the telemetry cost per tick (acceptance bound: within 5%).
func BenchmarkEngineTickTelemetry(b *testing.B) {
	reg := telemetry.New()
	benchEngineTick(b, 0, reg, telemetry.NewJournal(0), nil, nil, nil, false, false)
	if *telemetryDump == "" {
		return
	}
	f, err := os.Create(*telemetryDump)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	if err := reg.Expose(f); err != nil {
		b.Fatal(err)
	}
	b.Logf("telemetry snapshot written to %s", *telemetryDump)
}

// BenchmarkEngineTickHistory is BenchmarkEngineTickTelemetry with the
// tick-indexed history sampler and the SLO burn-rate engine attached
// (self-monitoring on); the delta between the two is the telemetry-
// history cost per tick (acceptance bound: within 2%, see
// EXPERIMENTS.md).
func BenchmarkEngineTickHistory(b *testing.B) {
	benchEngineTick(b, 0, telemetry.New(), nil, nil, nil, nil, true, false)
}

// BenchmarkEngineTickProfiled is BenchmarkEngineTick with the pprof
// stage labeler and the runtime/metrics sampler attached — the always-on
// parts of the continuous profiler (the windowed collector is off; its
// cost is duty-cycled and bounded separately). The delta between the two
// is the labeling cost per tick (acceptance bound: within 2% on time and
// bytes/op, see bench_results.txt).
func BenchmarkEngineTickProfiled(b *testing.B) {
	benchEngineTick(b, 0, nil, nil, nil, nil, nil, false, true)
}

// BenchmarkWireCodec measures the UDP wire format round trip.
func BenchmarkWireCodec(b *testing.B) {
	a := Alert{
		Source: alert.SourcePing, Type: alert.TypePacketLoss, Class: ClassFailure,
		Time: benchEpoch, End: benchEpoch.Add(time.Minute),
		Location: MustPath("RG01", "CT01", "LS01", "ST01", "CL01", "dev-1"),
		Value:    0.25, Count: 3, Raw: "Packet loss 25.0% to peer",
	}
	buf := make([]byte, 0, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = alert.AppendWire(buf[:0], &a)
		if _, err := alert.ParseWire(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndPipeline measures a complete minute of simulated
// operation: simulator steps, fleet polls, and engine ticks under a
// severe failure.
func BenchmarkEndToEndPipeline(b *testing.B) {
	topo := topology.MustGenerate(topology.SmallConfig())
	for i := 0; i < b.N; i++ {
		r, err := core.NewRunner(topo, core.DefaultConfig(), monitors.DefaultConfig(), int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		city := topo.Clusters()[0].Truncate(hierarchy.LevelCity)
		r.Sim.MustInject(netsim.Fault{Kind: netsim.FaultFiberBundleCut, Location: city, Magnitude: 0.5, Start: benchEpoch})
		if _, err := r.Run(benchEpoch, benchEpoch.Add(time.Minute)); err != nil {
			b.Fatal(err)
		}
	}
}
