// Package skynet is a research-grade reproduction of "SkyNet: Analyzing
// Alert Flooding from Severe Network Failures in Large Cloud
// Infrastructures" (SIGCOMM 2025): an alert-flood analysis system that
// turns the raw output of a dozen heterogeneous network monitoring tools
// into a ranked, human-sized list of incidents.
//
// The package is a facade over the implementation packages:
//
//	Engine / Runner        the preprocessor → locator → evaluator pipeline
//	GenerateTopology       the synthetic hierarchical cloud network
//	NewSimulator           fault injection and network-state simulation
//	NewFleet               the Table 2 monitoring-tool models
//	ListenIngest           UDP/TCP network alert ingestion
//	GenerateTrace/Replay   workload generation and offline replay
//
// Quick start:
//
//	topo := skynet.GenerateTopology(skynet.SmallTopology())
//	runner, _ := skynet.NewRunner(topo, skynet.DefaultEngineConfig(), skynet.DefaultMonitorConfig(), 1)
//	runner.Sim.MustInject(skynet.Fault{Kind: skynet.FaultFiberBundleCut, Location: city, Start: t0})
//	runner.Run(t0, t0.Add(10*time.Minute))
//	for _, in := range runner.Engine.Severe() {
//	    fmt.Println(in.Render())
//	}
package skynet

import (
	"time"

	"skynet/internal/alert"
	"skynet/internal/core"
	"skynet/internal/evaluator"
	"skynet/internal/ftree"
	"skynet/internal/hierarchy"
	"skynet/internal/incident"
	"skynet/internal/ingest"
	"skynet/internal/llmctx"
	"skynet/internal/locator"
	"skynet/internal/metrics"
	"skynet/internal/monitors"
	"skynet/internal/netsim"
	"skynet/internal/preprocess"
	"skynet/internal/scenario"
	"skynet/internal/sop"
	"skynet/internal/topology"
	"skynet/internal/trace"
	"skynet/internal/viz"
	"skynet/internal/zoomin"
)

// ZoomSample is one reachability observation for location zoom-in.
type ZoomSample = zoomin.Sample

// LLMBundle is a token-budgeted diagnostic context for one incident — the
// §9 LLM-integration path.
type LLMBundle = llmctx.Bundle

// LLMConfig bounds an LLM context bundle.
type LLMConfig = llmctx.Config

// Core data model.
type (
	// Alert is the uniform structured alert of §4.1.
	Alert = alert.Alert
	// Source identifies a monitoring data source (Table 2).
	Source = alert.Source
	// Class is an alert's importance tier (§4.2).
	Class = alert.Class
	// Path is a location in the network hierarchy (Figure 5b).
	Path = hierarchy.Path
	// Level is one layer of the hierarchy.
	Level = hierarchy.Level
	// Incident is a cluster of alerts attributed to one root cause.
	Incident = incident.Incident
)

// Alert classes.
const (
	ClassInfo      = alert.ClassInfo
	ClassAbnormal  = alert.ClassAbnormal
	ClassRootCause = alert.ClassRootCause
	ClassFailure   = alert.ClassFailure
)

// Monitoring data sources (Table 2).
const (
	SourcePing               = alert.SourcePing
	SourceTraceroute         = alert.SourceTraceroute
	SourceOutOfBand          = alert.SourceOutOfBand
	SourceTraffic            = alert.SourceTraffic
	SourceNetFlow            = alert.SourceNetFlow
	SourceInternetTelemetry  = alert.SourceInternetTelemetry
	SourceSyslog             = alert.SourceSyslog
	SourceSNMP               = alert.SourceSNMP
	SourceINT                = alert.SourceINT
	SourcePTP                = alert.SourcePTP
	SourceRouteMonitoring    = alert.SourceRouteMonitoring
	SourceModificationEvents = alert.SourceModificationEvents
	SourcePatrolInspection   = alert.SourcePatrolInspection
)

// Pipeline.
type (
	// Engine is the preprocessor → locator → evaluator pipeline.
	Engine = core.Engine
	// EngineConfig aggregates the module configurations.
	EngineConfig = core.Config
	// Runner binds a simulator, monitor fleet, and engine.
	Runner = core.Runner
	// Thresholds is the incident-generation rule (Figure 9's A/B+C/D).
	Thresholds = locator.Thresholds
)

// Substrate.
type (
	// Topology is the synthetic network.
	Topology = topology.Topology
	// TopologyConfig controls generation scale.
	TopologyConfig = topology.Config
	// Device is one network element.
	Device = topology.Device
	// Simulator derives network state from injected faults.
	Simulator = netsim.Simulator
	// Fault is one injected failure.
	Fault = netsim.Fault
	// FaultKind enumerates failure mechanisms.
	FaultKind = netsim.FaultKind
	// Scenario is a failure with ground truth.
	Scenario = scenario.Scenario
	// MonitorConfig tunes the monitoring-tool models.
	MonitorConfig = monitors.Config
	// Fleet is the set of Table 2 monitors.
	Fleet = monitors.Fleet
)

// Fault kinds.
const (
	FaultDeviceDown     = netsim.FaultDeviceDown
	FaultDeviceHardware = netsim.FaultDeviceHardware
	FaultDeviceSoftware = netsim.FaultDeviceSoftware
	FaultLinkCut        = netsim.FaultLinkCut
	FaultFiberBundleCut = netsim.FaultFiberBundleCut
	FaultCongestion     = netsim.FaultCongestion
	FaultRouteError     = netsim.FaultRouteError
	FaultRouteHijack    = netsim.FaultRouteHijack
	FaultModification   = netsim.FaultModification
	FaultPowerFailure   = netsim.FaultPowerFailure
	FaultSilentLoss     = netsim.FaultSilentLoss
	FaultBitFlip        = netsim.FaultBitFlip
	FaultClockDrift     = netsim.FaultClockDrift
)

// Ingestion and tooling.
type (
	// IngestServer receives alerts over TCP/UDP.
	IngestServer = ingest.Server
	// IngestConfig tunes the listeners.
	IngestConfig = ingest.Config
	// OperatorModel prices manual vs SkyNet-assisted mitigation.
	OperatorModel = metrics.OperatorModel
	// VotingGraph is the §7.1 visualization.
	VotingGraph = viz.Graph
)

// ParsePath parses a "Region|City|..." location string.
func ParsePath(s string) (Path, error) { return hierarchy.Parse(s) }

// MustPath builds a Path from segments, panicking on error.
func MustPath(segments ...string) Path { return hierarchy.MustNew(segments...) }

// SmallTopology returns a laptop-scale topology configuration.
func SmallTopology() TopologyConfig { return topology.SmallConfig() }

// ProductionTopology returns a bench-scale (O(10^4) devices) configuration.
func ProductionTopology() TopologyConfig { return topology.ProductionConfig() }

// GenerateTopology builds a deterministic synthetic network.
func GenerateTopology(cfg TopologyConfig) *Topology { return topology.MustGenerate(cfg) }

// LoadTopology reads a topology from a JSON inventory file (the format
// written by SaveTopology / skynet-topo -export).
func LoadTopology(path string) (*Topology, error) { return topology.LoadFile(path) }

// SaveTopology writes a topology as a JSON inventory file.
func SaveTopology(topo *Topology, path string) error { return topo.SaveFile(path) }

// DefaultEngineConfig returns the production pipeline parameters:
// 5-minute alert trees, 2/1+2/5 thresholds, severity filter at 10.
func DefaultEngineConfig() EngineConfig { return core.DefaultConfig() }

// DefaultMonitorConfig returns production-like monitoring cadences.
func DefaultMonitorConfig() MonitorConfig { return monitors.DefaultConfig() }

// ProductionThresholds returns the deployed "2/1+2/5" setting.
func ProductionThresholds() Thresholds { return locator.ProductionThresholds() }

// ParseThresholds parses Figure 9's A/B+C/D notation.
func ParseThresholds(s string) (Thresholds, error) { return locator.ParseThresholds(s) }

// NewSimulator creates a fault-injection simulator over a topology.
func NewSimulator(topo *Topology, seed int64) *Simulator { return netsim.New(topo, seed) }

// NewFleet constructs the Table 2 monitor fleet; a non-empty sources list
// restricts it.
func NewFleet(topo *Topology, cfg MonitorConfig, sources ...Source) *Fleet {
	return monitors.NewFleet(topo, cfg, sources...)
}

// NewUserTelemetryMonitor builds the §9 user-side telemetry extension;
// inject it with Fleet.Extend.
func NewUserTelemetryMonitor(topo *Topology, cfg MonitorConfig) monitors.Monitor {
	return monitors.NewUserTelemetryMonitor(topo, cfg)
}

// NewSRTEProbeMonitor builds the §9 SRTE label-probing extension; inject
// it with Fleet.Extend.
func NewSRTEProbeMonitor(topo *Topology, cfg MonitorConfig) monitors.Monitor {
	return monitors.NewSRTEProbeMonitor(topo, cfg)
}

// NewRunner builds the closed simulate→monitor→analyze loop.
func NewRunner(topo *Topology, engineCfg EngineConfig, monCfg MonitorConfig, seed int64, sources ...Source) (*Runner, error) {
	return core.NewRunner(topo, engineCfg, monCfg, seed, sources...)
}

// NewEngine assembles a standalone pipeline (bring your own alerts). The
// classifier handles raw syslog lines; pass the result of
// BootstrapClassifier or train your own.
func NewEngine(cfg EngineConfig, topo *Topology, classifier *ftree.Classifier) *Engine {
	return core.NewEngine(cfg, topo, classifier, nil, nil)
}

// BootstrapClassifier trains the FT-tree syslog classifier on the built-in
// message corpus.
func BootstrapClassifier() (*ftree.Classifier, error) { return preprocess.BootstrapClassifier() }

// ListenIngest starts the UDP/TCP alert listeners, feeding handler.
func ListenIngest(cfg IngestConfig, handler func(Alert)) (*IngestServer, error) {
	return ingest.Listen(cfg, handler)
}

// DefaultIngestConfig returns loopback listener defaults.
func DefaultIngestConfig() IngestConfig { return ingest.DefaultConfig() }

// GenerateTrace produces a synthetic raw-alert trace with ground truth.
func GenerateTrace(opts trace.GenerateOptions) (*trace.Generated, error) { return trace.Generate(opts) }

// DefaultTraceOptions returns a small, fast workload.
func DefaultTraceOptions() trace.GenerateOptions { return trace.DefaultGenerateOptions() }

// ReplayTrace pushes a raw trace through a fresh engine.
func ReplayTrace(alerts []Alert, topo *Topology, cfg EngineConfig) (*Engine, error) {
	return trace.Replay(alerts, topo, cfg, 0)
}

// BuildVotingGraph constructs the §7.1 alert-voting visualization for an
// incident.
func BuildVotingGraph(topo *Topology, in *Incident) *VotingGraph { return viz.Build(topo, in) }

// DefaultOperatorModel returns the Fig. 10c mitigation-time calibration.
func DefaultOperatorModel() OperatorModel { return metrics.DefaultOperatorModel() }

// BuildLLMContext produces a token-budgeted diagnostic bundle for an
// incident, ready to paste into an LLM prompt (§9 future work).
func BuildLLMContext(cfg LLMConfig, in *Incident) LLMBundle { return llmctx.Build(cfg, in) }

// DefaultLLMConfig returns the default context budget.
func DefaultLLMConfig() LLMConfig { return llmctx.DefaultConfig() }

// Rank orders incidents by severity, highest first.
func Rank(ins []*Incident) []*Incident { return evaluator.Rank(ins) }

// NewSOPEngine builds the §7.2 heuristic-rule engine with the default
// device-loss-isolation rule.
func NewSOPEngine(topo *Topology, exec sop.Executor, util sop.TrafficOracle) *sop.Engine {
	return sop.NewEngine(topo, exec, util)
}

// FiberCutSevere builds the §2.2 war-story scenario.
func FiberCutSevere(topo *Topology, start time.Time) Scenario {
	return scenario.FiberCutSevere(topo, start)
}

// DDoSMultiSite builds the §5.1 multi-site attack scenario set.
func DDoSMultiSite(topo *Topology, n int, start time.Time) []Scenario {
	return scenario.DDoSMultiSite(topo, n, start)
}
