package skynet_test

import (
	"fmt"
	"time"

	"skynet"
)

var exampleEpoch = time.Date(2024, 7, 2, 11, 0, 0, 0, time.UTC)

// ExampleParseThresholds shows the Figure 9 threshold notation.
func ExampleParseThresholds() {
	th, _ := skynet.ParseThresholds("2/1+2/5")
	fmt.Println(th)
	fmt.Println(th.Crossed(2, 2)) // two failure types
	fmt.Println(th.Crossed(1, 2)) // one failure + one other: not enough
	// Output:
	// 2/1+2/5
	// true
	// false
}

// ExampleMustPath shows hierarchy paths.
func ExampleMustPath() {
	p := skynet.MustPath("RegionA", "Citya", "Logic site 2", "Site I")
	fmt.Println(p)
	fmt.Println(p.Level())
	fmt.Println(p.Parent())
	// Output:
	// RegionA|Citya|Logic site 2|Site I
	// site
	// RegionA|Citya|Logic site 2
}

// ExampleNewRunner runs the closed loop end to end: a known device
// failure is detected as an incident and mitigated by the automatic SOP.
func ExampleNewRunner() {
	topo := skynet.GenerateTopology(skynet.SmallTopology())
	runner, err := skynet.NewRunner(topo, skynet.DefaultEngineConfig(), quietMonitors(), 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	// A CSR silently dropping half its traffic: the §5.1 known failure.
	var dev *skynet.Device
	for i := range topo.Devices {
		if topo.Devices[i].Role.String() == "CSR" {
			dev = &topo.Devices[i]
			break
		}
	}
	runner.Sim.MustInject(skynet.Fault{
		Kind: skynet.FaultDeviceHardware, Device: dev.ID, Magnitude: 0.5,
		Start: exampleEpoch.Add(time.Minute),
	})
	stats, err := runner.Run(exampleEpoch, exampleEpoch.Add(5*time.Minute))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("incidents:", len(runner.Engine.AllIncidents()) > 0)
	fmt.Println("auto-SOP fired:", stats.SOPExecutions > 0)
	fmt.Println("device isolated:", runner.Sim.DeviceState(dev.ID).Isolated)
	// Output:
	// incidents: true
	// auto-SOP fired: true
	// device isolated: true
}

// ExampleBuildLLMContext turns an incident into an LLM-ready diagnostic
// bundle under a token budget.
func ExampleBuildLLMContext() {
	topo := skynet.GenerateTopology(skynet.SmallTopology())
	runner, _ := skynet.NewRunner(topo, skynet.DefaultEngineConfig(), quietMonitors(), 1)
	sc := skynet.FiberCutSevere(topo, exampleEpoch.Add(time.Minute))
	_ = sc.Inject(runner.Sim)
	_, _ = runner.Run(exampleEpoch, exampleEpoch.Add(6*time.Minute))
	in := runner.Engine.Severe()[0]
	bundle := skynet.BuildLLMContext(skynet.DefaultLLMConfig(), in)
	fmt.Println(bundle.Tokens <= skynet.DefaultLLMConfig().TokenBudget)
	fmt.Println(len(bundle.Sections) >= 3)
	// Output:
	// true
	// true
}

func quietMonitors() skynet.MonitorConfig {
	cfg := skynet.DefaultMonitorConfig()
	cfg.NoisePerHour = 0
	return cfg
}
