package baseline

import (
	"testing"
	"time"

	"skynet/internal/alert"
	"skynet/internal/hierarchy"
	"skynet/internal/monitors"
	"skynet/internal/netsim"
	"skynet/internal/scenario"
	"skynet/internal/topology"
)

var epoch = time.Date(2024, 7, 2, 11, 0, 0, 0, time.UTC)

func mkAlert(src alert.Source, typ string, class alert.Class, at time.Time, loc hierarchy.Path) alert.Alert {
	return alert.Alert{Source: src, Type: typ, Class: class, Time: at, End: at, Location: loc, Count: 1}
}

func TestDetectedBy(t *testing.T) {
	dev := hierarchy.MustNew("R", "C", "L", "S", "K", "d1")
	sc := scenario.Scenario{
		Truth: []hierarchy.Path{dev},
		Start: epoch, End: epoch.Add(10 * time.Minute),
	}
	raw := []alert.Alert{
		mkAlert(alert.SourcePing, alert.TypePacketLoss, alert.ClassFailure, epoch.Add(time.Minute), dev),
		mkAlert(alert.SourceSNMP, alert.TypeHighCPU, alert.ClassAbnormal, epoch.Add(time.Minute),
			hierarchy.MustNew("R9", "C", "L", "S", "K", "dx")), // unrelated
	}
	if !DetectedBy(raw, alert.SourcePing, &sc) {
		t.Error("ping should detect")
	}
	if DetectedBy(raw, alert.SourceSNMP, &sc) {
		t.Error("SNMP alert is unrelated, should not detect")
	}
	if DetectedBy(raw, alert.SourceSyslog, &sc) {
		t.Error("no syslog alerts at all")
	}
	// Out-of-window alerts don't count.
	late := []alert.Alert{
		mkAlert(alert.SourcePing, alert.TypePacketLoss, alert.ClassFailure, epoch.Add(2*time.Hour), dev),
	}
	if DetectedBy(late, alert.SourcePing, &sc) {
		t.Error("late alert should not count")
	}
}

func TestCoverageOrdering(t *testing.T) {
	// End-to-end: silent loss is visible to ping/sFlow/INT but not
	// syslog/SNMP; a link cut is visible to syslog/SNMP. Coverage over a
	// mixed corpus must reflect each tool's blind spots.
	topo := topology.MustGenerate(topology.SmallConfig())
	cfg := monitors.DefaultConfig()
	cfg.NoisePerHour = 0

	var runs []Run
	mk := func(f netsim.Fault, truth hierarchy.Path) {
		sim := netsim.New(topo, 1)
		sim.MustInject(f)
		fleet := monitors.NewFleet(topo, cfg)
		raw, err := fleet.Run(sim, epoch, epoch.Add(3*time.Minute), 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		sc := scenario.Scenario{Truth: []hierarchy.Path{truth}, Start: f.Start, End: epoch.Add(3 * time.Minute)}
		runs = append(runs, Run{Raw: raw, Scenario: &sc})
	}
	var isr *topology.Device
	for i := range topo.Devices {
		if topo.Devices[i].Role == topology.RoleISR {
			isr = &topo.Devices[i]
			break
		}
	}
	mk(netsim.Fault{Kind: netsim.FaultSilentLoss, Device: isr.ID, Magnitude: 0.5, Start: epoch.Add(10 * time.Second)}, isr.Path)
	l := topo.Link(0)
	mk(netsim.Fault{Kind: netsim.FaultLinkCut, Link: l.ID, Circuits: l.Circuits, Start: epoch.Add(10 * time.Second)},
		topo.Device(l.A).Path)

	cov := Coverage(runs)
	if cov[alert.SourcePing] < 0.5 {
		t.Errorf("ping coverage = %v, want ≥ 0.5", cov[alert.SourcePing])
	}
	if cov[alert.SourceSyslog] >= 1.0 {
		t.Errorf("syslog coverage = %v; it must miss the silent loss", cov[alert.SourceSyslog])
	}
	if cov[alert.SourcePTP] != 0 {
		t.Errorf("PTP coverage = %v; neither fault is clock-related", cov[alert.SourcePTP])
	}
	if len(Coverage(nil)) != 0 {
		t.Error("empty corpus should give empty coverage")
	}
}

func TestFirstAlertAnalysis(t *testing.T) {
	dev := hierarchy.MustNew("R", "C", "L", "S", "K", "d1")
	// Behaviour first, root cause 4 minutes later — the §7.3 incident.
	alerts := []alert.Alert{
		mkAlert(alert.SourceSyslog, alert.TypeHardwareError, alert.ClassRootCause, epoch.Add(4*time.Minute), dev),
		mkAlert(alert.SourcePing, alert.TypePacketLoss, alert.ClassFailure, epoch, dev),
		mkAlert(alert.SourceSyslog, alert.TypeBGPPeerDown, alert.ClassAbnormal, epoch.Add(10*time.Second), dev),
	}
	v, ok := FirstAlertAnalysis(alerts)
	if !ok {
		t.Fatal("analysis failed")
	}
	if v.FirstIsRootCauseClass {
		t.Error("first alert should be the behaviour symptom")
	}
	if !v.HasRootCause || v.RootCauseDelay != 4*time.Minute {
		t.Errorf("root cause delay = %v, want 4m", v.RootCauseDelay)
	}
	if v.First.Type != alert.TypePacketLoss {
		t.Errorf("first = %v", v.First.Type)
	}
	if _, ok := FirstAlertAnalysis(nil); ok {
		t.Error("empty input should not analyze")
	}
}

func TestMisleadRate(t *testing.T) {
	dev := hierarchy.MustNew("R", "C", "L", "S", "K", "d1")
	misleading := []alert.Alert{
		mkAlert(alert.SourcePing, alert.TypePacketLoss, alert.ClassFailure, epoch, dev),
		mkAlert(alert.SourceSyslog, alert.TypeHardwareError, alert.ClassRootCause, epoch.Add(time.Minute), dev),
	}
	honest := []alert.Alert{
		mkAlert(alert.SourceSyslog, alert.TypeLinkDown, alert.ClassRootCause, epoch, dev),
		mkAlert(alert.SourcePing, alert.TypePacketLoss, alert.ClassFailure, epoch.Add(time.Second), dev),
	}
	noRootCause := []alert.Alert{
		mkAlert(alert.SourcePing, alert.TypePacketLoss, alert.ClassFailure, epoch, dev),
	}
	rate := MisleadRate([][]alert.Alert{misleading, honest, noRootCause})
	if rate != 0.5 {
		t.Errorf("mislead rate = %v, want 0.5 (no-root-cause sets excluded)", rate)
	}
	if MisleadRate(nil) != 0 {
		t.Error("empty corpus rate should be 0")
	}
}

func TestUnbalancedHashCaseMisleads(t *testing.T) {
	// End-to-end reproduction of the §7.3 lesson: run the scenario, apply
	// the first-alert heuristic to its raw alerts, confirm it misleads.
	topo := topology.MustGenerate(topology.SmallConfig())
	sc := scenario.UnbalancedHashCase(topo, epoch.Add(30*time.Second))
	sim := netsim.New(topo, 1)
	if err := sc.Inject(sim); err != nil {
		t.Fatal(err)
	}
	cfg := monitors.DefaultConfig()
	cfg.NoisePerHour = 0
	fleet := monitors.NewFleet(topo, cfg)
	raw, err := fleet.Run(sim, epoch, epoch.Add(6*time.Minute), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 {
		t.Fatal("scenario produced no alerts")
	}
	v, ok := FirstAlertAnalysis(raw)
	if !ok {
		t.Fatal("no analysis")
	}
	// The hardware error (true root cause) must NOT be the first alert:
	// behaviour symptoms and BGP churn lead.
	if v.First.Type == alert.TypeHardwareError {
		t.Error("hardware error arrived first; scenario does not reproduce §7.3")
	}
}
