// Package baseline implements the comparison points the paper evaluates
// SkyNet against:
//
//   - single-data-source monitoring (Figure 3's coverage bars and the
//     Fig. 8a source-removal ablation) — each tool alone, with its blind
//     spots;
//   - first-alert time-series causality (§7.3) — the "first alert is the
//     root cause" heuristic the paper shows to be unreliable;
//   - per-(type, location) alert counting (Figure 9's first column) lives
//     in the locator as a config switch.
package baseline

import (
	"sort"
	"time"

	"skynet/internal/alert"
	"skynet/internal/scenario"
)

// DetectedBy reports whether one data source, alone, would have detected a
// scenario: it emitted at least one counting-class alert (failure,
// abnormal, or root cause) whose location relates to the scenario's ground
// truth during the activity window. This is the Figure 3 coverage notion —
// tool-level awareness, before any SkyNet processing.
func DetectedBy(raw []alert.Alert, src alert.Source, sc *scenario.Scenario) bool {
	grace := 5 * time.Minute
	for i := range raw {
		a := &raw[i]
		if a.Source != src {
			continue
		}
		if a.Class == alert.ClassInfo && a.Source != alert.SourceSyslog {
			continue
		}
		if a.Time.Before(sc.Start) || (!sc.End.IsZero() && a.Time.After(sc.End.Add(grace))) {
			continue
		}
		for _, tp := range sc.Truth {
			if tp.Contains(a.Location) || a.Location.Contains(tp) {
				return true
			}
		}
	}
	return false
}

// Coverage computes each source's scenario-detection ratio over a corpus
// of (raw alerts, scenario) runs — the Figure 3 experiment.
func Coverage(runs []Run) map[alert.Source]float64 {
	detected := map[alert.Source]int{}
	for _, run := range runs {
		for _, src := range alert.Sources() {
			if DetectedBy(run.Raw, src, run.Scenario) {
				detected[src]++
			}
		}
	}
	out := make(map[alert.Source]float64, len(detected))
	if len(runs) == 0 {
		return out
	}
	for _, src := range alert.Sources() {
		out[src] = float64(detected[src]) / float64(len(runs))
	}
	return out
}

// Run pairs a raw alert trace with the scenario that produced it.
type Run struct {
	Raw      []alert.Alert
	Scenario *scenario.Scenario
}

// FirstAlertVerdict is the outcome of the §7.3 time-series heuristic on
// one incident window.
type FirstAlertVerdict struct {
	// First is the earliest alert in the window.
	First alert.Alert
	// FirstIsRootCauseClass reports whether the earliest alert is a
	// root-cause-class alert — what the heuristic implicitly assumes.
	FirstIsRootCauseClass bool
	// RootCauseDelay is how long after the first alert the first
	// root-cause-class alert arrived (zero when the first alert already
	// was one; negative never occurs).
	RootCauseDelay time.Duration
	// HasRootCause reports whether any root-cause alert exists at all.
	HasRootCause bool
}

// FirstAlertAnalysis applies the time-series-causality heuristic to a set
// of structured alerts: order by time, call the first one the root cause.
// The paper's lesson (§7.3) is that network behaviour is usually affected
// first and root-cause logs are collected later — the returned verdict
// quantifies exactly that gap.
func FirstAlertAnalysis(alerts []alert.Alert) (FirstAlertVerdict, bool) {
	if len(alerts) == 0 {
		return FirstAlertVerdict{}, false
	}
	sorted := make([]alert.Alert, len(alerts))
	copy(sorted, alerts)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Time.Before(sorted[j].Time) })
	v := FirstAlertVerdict{First: sorted[0]}
	v.FirstIsRootCauseClass = sorted[0].Class == alert.ClassRootCause
	for i := range sorted {
		if sorted[i].Class == alert.ClassRootCause {
			v.HasRootCause = true
			v.RootCauseDelay = sorted[i].Time.Sub(sorted[0].Time)
			break
		}
	}
	return v, true
}

// MisleadRate measures, over many incident alert sets, how often the
// first-alert heuristic points at something other than a root-cause
// alert even though one eventually arrives — the fraction of incidents
// where time ordering misleads the operator.
func MisleadRate(incidentAlerts [][]alert.Alert) float64 {
	misled, applicable := 0, 0
	for _, alerts := range incidentAlerts {
		v, ok := FirstAlertAnalysis(alerts)
		if !ok || !v.HasRootCause {
			continue
		}
		applicable++
		if !v.FirstIsRootCauseClass {
			misled++
		}
	}
	if applicable == 0 {
		return 0
	}
	return float64(misled) / float64(applicable)
}
