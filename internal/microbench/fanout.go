package microbench

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"skynet/internal/alert"
	"skynet/internal/core"
	"skynet/internal/experiments"
	"skynet/internal/fanout"
	"skynet/internal/hierarchy"
	"skynet/internal/preprocess"
	"skynet/internal/topology"
)

// benchFeed builds a realistic serving payload: a snapshot carrying
// incidents active incidents and a delta with churn/3 opened, updated,
// and closed rows each — roughly one severe-failure tick at steady state.
func benchFeed(incidents, churn int) (*fanout.FeedSnapshot, *fanout.FeedDelta) {
	info := func(id int) fanout.IncidentInfo {
		return fanout.IncidentInfo{
			ID:        id,
			Root:      hierarchy.MustNew("RG01", "CT01", fmt.Sprintf("LS%02d", id%40+1)),
			Severity:  0.5 + float64(id%50)/100,
			Active:    true,
			Alerts:    120 + id,
			Locations: 8 + id%16,
			Start:     benchEpoch,
			Update:    benchEpoch.Add(time.Duration(id) * time.Second),
		}
	}
	snap := &fanout.FeedSnapshot{
		Tick: 100, Time: benchEpoch.Add(1000 * time.Second),
		RawTotal: 1_000_000, Structured: 9500, ClosedTotal: 42,
		FloodPhase: "peak", FloodEpisode: 3, SLOFiring: 1,
	}
	for i := 0; i < incidents; i++ {
		snap.Incidents = append(snap.Incidents, info(i))
	}
	delta := &fanout.FeedDelta{
		Tick: 100, FromTick: 100, Time: snap.Time,
		Structured: 9500, FloodPhase: "peak", FloodEpisode: 3, SLOFiring: 1,
	}
	for i := 0; i < churn/3; i++ {
		delta.Opened = append(delta.Opened, info(incidents+i))
		delta.Updated = append(delta.Updated, info(i))
		c := info(incidents + churn + i)
		c.Active = false
		c.End = benchEpoch.Add(time.Hour)
		delta.Closed = append(delta.Closed, c)
	}
	return snap, delta
}

// benchFanoutPublish measures one PublishTick — the whole per-tick cost
// the serving layer adds to the engine: two frame encodes plus the
// bounded eviction scan and a single wake. 128 attached subscribers
// never poll (worst case for the publisher: nothing is ever handed
// off), pinning the property the design rests on — publish cost does
// not scale with subscriber count or subscriber behavior.
func benchFanoutPublish(b *testing.B) {
	hub := fanout.NewHub(fanout.Config{Ring: 1024, EvictAfter: -1})
	defer hub.Close()
	for i := 0; i < 128; i++ {
		if _, err := hub.Subscribe(fanout.SubscribeOptions{Cursor: -1}); err != nil {
			b.Fatal(err)
		}
	}
	snap, delta := benchFeed(64, 24)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap.Tick++
		delta.Tick = snap.Tick
		delta.FromTick = snap.Tick
		hub.PublishTick(snap, delta)
	}
}

// benchFanoutDeltaEncode measures the delta wire encode alone — the
// reflection-free JSON renderer on the publish path.
func benchFanoutDeltaEncode(b *testing.B) {
	_, delta := benchFeed(64, 24)
	buf := make([]byte, 0, 8192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = delta.AppendJSON(buf[:0], 0)
		if len(buf) == 0 {
			b.Fatal("empty encode")
		}
	}
}

// tickDriver drives the same ingest+tick rounds as the engine_tick
// benchmark, but outside the testing harness, so interference
// measurements can time arbitrary slices of ticks back to back.
type tickDriver struct {
	eng   *core.Engine
	hub   *fanout.Hub
	batch alert.Batch
	now   time.Time
	ts    [10]time.Time
}

func newTickDriver(fan bool) (*tickDriver, error) {
	topo := topology.MustGenerate(topology.SmallConfig())
	alerts := experiments.SyntheticStructuredAlerts(topo, 2000, 1)
	classifier, err := preprocess.BootstrapClassifier()
	if err != nil {
		return nil, err
	}
	d := &tickDriver{
		eng: core.NewEngine(core.DefaultConfig(), topo, classifier, nil, nil),
		now: benchEpoch,
	}
	if fan {
		d.hub = fanout.NewHub(fanout.Config{Ring: 1024})
		d.eng.EnableFanout(d.hub)
	}
	for j := range alerts {
		d.batch.Append(&alerts[j])
	}
	return d, nil
}

// run executes n ingest+tick rounds and returns the elapsed wall time.
func (d *tickDriver) run(n int) time.Duration {
	start := time.Now()
	for i := 0; i < n; i++ {
		for k := range d.ts {
			d.ts[k] = d.now.Add(time.Duration(k) * time.Second)
		}
		for j := range d.batch.Time {
			d.batch.Time[j] = d.ts[j%10]
		}
		d.eng.IngestBatch(&d.batch)
		d.now = d.now.Add(10 * time.Second)
		d.eng.Tick(d.now)
	}
	return time.Since(start)
}

func (d *tickDriver) close() {
	if d.hub != nil {
		d.hub.Close()
	}
}

// TickInterference measures what attaching the fan-out hub costs the
// tick path, as a percentage (+2.0 = 2% slower). Two engines — one
// bare, one with a hub attached — live in the same process and run
// alternating timed slices of ticksPerSlice ticks; the verdict is the
// mean slowdown over the quietest slice pairs (see below). The design
// is built for noisy machines: comparing two separate testing.Benchmark
// runs fails there because absolute ns/op drifts by tens of percent
// over the seconds a benchmark takes, while interleaved slices sample
// the same noise on both sides and timing noise on a shared box is
// additive (preemption, GC pauses, cache evictions only ever add
// time), so the fastest pairs converge on the true cost. The slice order
// flips every round so a monotonic trend cannot systematically favor
// either engine, both engines share one heap so GC cost lands on both
// sides, and the warm-up runs each engine past incident build-up and
// the ring's first wrap (where the frame pools are still cold) before
// anything is timed.
func TickInterference(slices, ticksPerSlice int) (float64, error) {
	bare, err := newTickDriver(false)
	if err != nil {
		return 0, err
	}
	defer bare.close()
	fan, err := newTickDriver(true)
	if err != nil {
		return 0, err
	}
	defer fan.close()
	warm := 2 * 1024
	bare.run(warm)
	fan.run(warm)
	// The verdict is the mean ratio of the fastest pairs — the rounds
	// whose two slices have the smallest combined wall time. Taking each
	// engine's global minimum independently is not enough on a machine
	// whose clock rate wanders: the two minima can land in windows
	// running at different effective frequencies and the ratio inherits
	// the difference. A fastest pair by construction sampled both
	// engines inside the same quiet window, so its ratio compares like
	// with like; averaging the best few keeps one lucky-but-lopsided
	// pair from deciding the verdict alone. (Median and trimmed-mean
	// over all pairs were tried and rejected: they fold in the noisy
	// windows and swing several percent run to run.)
	type pair struct {
		sum   time.Duration
		ratio float64
	}
	pairs := make([]pair, 0, slices)
	for i := 0; i < slices; i++ {
		var b, f time.Duration
		if i%2 == 0 {
			b = bare.run(ticksPerSlice)
			f = fan.run(ticksPerSlice)
		} else {
			f = fan.run(ticksPerSlice)
			b = bare.run(ticksPerSlice)
		}
		pairs = append(pairs, pair{b + f, float64(f) / float64(b)})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].sum < pairs[j].sum })
	k := max(4, slices/6)
	if k > len(pairs) {
		k = len(pairs)
	}
	sum := 0.0
	for _, p := range pairs[:k] {
		sum += p.ratio
	}
	return (sum/float64(k) - 1) * 100, nil
}
