// Package microbench runs the pipeline's hot-path benchmarks
// programmatically (via testing.Benchmark) and reports machine-readable
// results — iterations, ns/op, B/op, allocs/op — backing the
// `skynet-bench -json` flag so perf regressions can be tracked by tooling
// instead of eyeballing `go test -bench` text.
package microbench

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"skynet/internal/alert"
	"skynet/internal/core"
	"skynet/internal/experiments"
	"skynet/internal/fanout"
	"skynet/internal/flood"
	"skynet/internal/hierarchy"
	"skynet/internal/incident"
	"skynet/internal/locator"
	"skynet/internal/preprocess"
	"skynet/internal/prof"
	"skynet/internal/provenance"
	"skynet/internal/slo"
	"skynet/internal/span"
	"skynet/internal/telemetry"
	"skynet/internal/topology"
	"skynet/internal/tsdb"
)

// Result is one benchmark's measurement in the JSON report.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// SpanStage is one pipeline stage's span-latency aggregate in the JSON
// report, mirrored from span.StageStat with explicit nanosecond fields so
// the schema is stable for tooling.
type SpanStage struct {
	Name    string  `json:"name"`
	Count   int64   `json:"count"`
	MeanNs  float64 `json:"mean_ns"`
	MaxNs   int64   `json:"max_ns"`
	TotalNs int64   `json:"total_ns"`
}

// Report is the full `skynet-bench -json` document. SpanStages is only
// present when the run was asked for the per-stage breakdown (-spans).
type Report struct {
	GoVersion  string      `json:"go_version"`
	OS         string      `json:"goos"`
	Arch       string      `json:"goarch"`
	CPUs       int         `json:"cpus"`
	Results    []Result    `json:"results"`
	SpanStages []SpanStage `json:"span_stages,omitempty"`
}

var benchEpoch = time.Date(2024, 7, 2, 11, 0, 0, 0, time.UTC)

// suite lists the benchmarks in report order. Each mirrors a hot path
// also covered by the repo-root `go test -bench` harness.
var suite = []struct {
	Name  string
	Bench func(b *testing.B)
}{
	{"engine_tick", func(b *testing.B) { benchEngineTick(b, nil, nil, nil, false, false, false) }},
	{"engine_tick_provenance", func(b *testing.B) {
		benchEngineTick(b, provenance.New(provenance.Config{}), nil, nil, false, false, false)
	}},
	{"engine_tick_spans", func(b *testing.B) {
		benchEngineTick(b, nil, span.NewTracer(0), nil, false, false, false)
	}},
	{"engine_tick_flood", func(b *testing.B) {
		benchEngineTick(b, nil, nil, flood.New(flood.Config{}), false, false, false)
	}},
	{"engine_tick_history", func(b *testing.B) {
		benchEngineTick(b, nil, nil, nil, true, false, false)
	}},
	{"engine_tick_profiled", func(b *testing.B) {
		benchEngineTick(b, nil, nil, nil, false, true, false)
	}},
	{"engine_tick_fanout", func(b *testing.B) {
		benchEngineTick(b, nil, nil, nil, false, false, true)
	}},
	{"preprocessor_stream", benchPreprocessorStream},
	{"incident_entries", benchIncidentEntries},
	{"batch_absorb", benchBatchAbsorb},
	{"locator_addcheck", benchLocatorAddCheck},
	{"locator_steady_check", benchLocatorSteadyCheck},
	{"ftree_classify", benchFTreeClassify},
	{"wire_codec", benchWireCodec},
	{"wire_codec_scratch", benchWireCodecScratch},
	{"fanout_publish", benchFanoutPublish},
	{"fanout_delta_encode", benchFanoutDeltaEncode},
}

// Names lists the available benchmark names in report order.
func Names() []string {
	out := make([]string, len(suite))
	for i, s := range suite {
		out[i] = s.Name
	}
	return out
}

// Run executes the named benchmarks (all when names is empty) and returns
// the report. Benchmarks use the default go benchtime (~1s each).
func Run(names ...string) (*Report, error) {
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	rep := &Report{
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
	}
	// want shrinks as names are matched (leftovers are unknown names), so
	// filter on the original request, not on want's emptiness.
	filtered := len(names) > 0
	for _, s := range suite {
		if filtered && !want[s.Name] {
			continue
		}
		delete(want, s.Name)
		r := testing.Benchmark(s.Bench)
		rep.Results = append(rep.Results, Result{
			Name:        s.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}
	for n := range want {
		return nil, fmt.Errorf("microbench: unknown benchmark %q (have %v)", n, Names())
	}
	return rep, nil
}

// CollectSpanStages drives a span-traced engine through ticks ingest+tick
// rounds of the engine_tick workload and returns the per-stage span
// aggregates — the `span_stages` section of the `-spans` JSON report.
func CollectSpanStages(ticks int) ([]SpanStage, error) {
	if ticks <= 0 {
		ticks = 32
	}
	topo := topology.MustGenerate(topology.SmallConfig())
	alerts := experiments.SyntheticStructuredAlerts(topo, 2000, 1)
	classifier, err := preprocess.BootstrapClassifier()
	if err != nil {
		return nil, err
	}
	eng := core.NewEngine(core.DefaultConfig(), topo, classifier, nil, nil)
	tracer := span.NewTracer(ticks)
	eng.EnableTracing(tracer)
	now := benchEpoch
	for i := 0; i < ticks; i++ {
		for j := range alerts {
			a := alerts[j]
			a.Time = now.Add(time.Duration(j%10) * time.Second)
			eng.Ingest(a)
		}
		now = now.Add(10 * time.Second)
		eng.Tick(now)
	}
	stats := tracer.StageStats()
	out := make([]SpanStage, len(stats))
	for i, s := range stats {
		out[i] = SpanStage{
			Name:    s.Name,
			Count:   s.Count,
			MeanNs:  float64(s.Mean().Nanoseconds()),
			MaxNs:   s.Max.Nanoseconds(),
			TotalNs: s.Total.Nanoseconds(),
		}
	}
	return out, nil
}

// Compare checks cur against base: every baseline benchmark whose ns/op
// regressed by more than tol (fractional — 0.15 means +15%) is reported,
// as is any baseline benchmark missing from the current run. When memTol
// is positive, bytes/op and allocs/op are gated the same way against
// memTol (allocation counts are far less noisy than wall time, so memTol
// is typically tighter in spirit even when numerically larger); memTol
// <= 0 disables the memory gate. Benchmarks new in cur are ignored so
// baselines need not be regenerated to add one. An empty result means the
// run is within tolerance.
func Compare(base, cur *Report, tol, memTol float64) []string {
	curBy := make(map[string]Result, len(cur.Results))
	for _, r := range cur.Results {
		curBy[r.Name] = r
	}
	var out []string
	for _, b := range base.Results {
		c, ok := curBy[b.Name]
		if !ok {
			out = append(out, fmt.Sprintf("%s: in baseline but missing from current run", b.Name))
			continue
		}
		if b.NsPerOp > 0 {
			if delta := c.NsPerOp/b.NsPerOp - 1; delta > tol {
				out = append(out, fmt.Sprintf("%s: %.0f → %.0f ns/op (%+.1f%%, tolerance %+.0f%%)",
					b.Name, b.NsPerOp, c.NsPerOp, 100*delta, 100*tol))
			}
		}
		if memTol > 0 {
			out = appendMemRegression(out, b.Name, "bytes/op", b.BytesPerOp, c.BytesPerOp, memTol)
			out = appendMemRegression(out, b.Name, "allocs/op", b.AllocsPerOp, c.AllocsPerOp, memTol)
		}
	}
	return out
}

// appendMemRegression gates one memory metric. A baseline of zero is a
// hard floor: any growth from zero is reported, since no ratio can
// express it and a zero-alloc path silently starting to allocate is
// exactly the regression the gate exists for.
func appendMemRegression(out []string, name, metric string, base, cur int64, memTol float64) []string {
	if base == 0 {
		if cur > 0 {
			out = append(out, fmt.Sprintf("%s: 0 → %d %s (baseline was allocation-free)", name, cur, metric))
		}
		return out
	}
	if delta := float64(cur)/float64(base) - 1; delta > memTol {
		out = append(out, fmt.Sprintf("%s: %d → %d %s (%+.1f%%, tolerance %+.0f%%)",
			name, base, cur, metric, 100*delta, 100*memTol))
	}
	return out
}

// benchEngineTick drives repeated ingest+tick rounds over a severe-failure
// batch, optionally with the lineage recorder, span tracer, flood
// detector, the full telemetry-history stack (registry + per-tick
// sampler + SLO burn-rate engine with self-monitoring on), the
// continuous profiler's always-on parts (pprof stage labeler +
// runtime/metrics sampler), or the fan-out serving hub attached — each
// pairing with the bare run bounds that instrument's overhead per tick.
func benchEngineTick(b *testing.B, rec *provenance.Recorder, tracer *span.Tracer, fl *flood.Recorder, history, profiled, fan bool) {
	topo := topology.MustGenerate(topology.SmallConfig())
	alerts := experiments.SyntheticStructuredAlerts(topo, 2000, 1)
	classifier, err := preprocess.BootstrapClassifier()
	if err != nil {
		b.Fatal(err)
	}
	eng := core.NewEngine(core.DefaultConfig(), topo, classifier, nil, nil)
	if rec != nil {
		eng.EnableProvenance(rec)
	}
	if tracer != nil {
		eng.EnableTracing(tracer)
	}
	if fl != nil {
		eng.EnableFlood(fl)
	}
	if profiled {
		eng.EnableProfiling(prof.NewLabeler(eng.MaxShards()))
		eng.EnableRuntimeMetrics(prof.NewRuntime(telemetry.New()))
	}
	if fan {
		hub := fanout.NewHub(fanout.Config{Ring: 1024})
		defer hub.Close()
		eng.EnableFanout(hub)
	}
	if history {
		reg := telemetry.New()
		eng.EnableTelemetry(reg, nil)
		db := tsdb.New(tsdb.Config{})
		db.RegisterMetrics(reg)
		eng.EnableHistory(tsdb.NewSampler(db, reg))
		sloEng := slo.New(db, slo.DefaultRules(500*time.Millisecond))
		sloEng.RegisterMetrics(reg)
		eng.EnableSLO(sloEng, true)
	}
	now := benchEpoch
	// Built once; only the Time column is rewritten per round (IngestBatch
	// copies the columns out, so the engine sees a fresh batch per tick).
	var batch alert.Batch
	for j := range alerts {
		batch.Append(&alerts[j])
	}
	var ts [10]time.Time
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := range ts {
			ts[k] = now.Add(time.Duration(k) * time.Second)
		}
		for j := range batch.Time {
			batch.Time[j] = ts[j%10]
		}
		eng.IngestBatch(&batch)
		now = now.Add(10 * time.Second)
		eng.Tick(now)
	}
}

func benchPreprocessorStream(b *testing.B) {
	topo := topology.MustGenerate(topology.SmallConfig())
	raw := experiments.SyntheticStructuredAlerts(topo, 20000, 2)
	classifier, err := preprocess.BootstrapClassifier()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		preprocess.ProcessFunc(preprocess.DefaultConfig(), topo, classifier, raw, 10*time.Second,
			func(batch []alert.Alert) { n += len(batch) })
		if n == 0 {
			b.Fatal("no output")
		}
	}
}

// benchIncidentEntries measures the pooled incident output path: slab
// appends via AddRef (pre-sized with Grow, so steady state is
// allocation-free), then the rev-memoized report views the evaluator and
// status surfaces read every tick.
func benchIncidentEntries(b *testing.B) {
	topo := topology.MustGenerate(topology.SmallConfig())
	alerts := experiments.SyntheticStructuredAlerts(topo, 8000, 1)
	root := hierarchy.MustNew("RG01")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := incident.New(1, root)
		in.Grow(len(alerts))
		for j := range alerts {
			in.AddRef(&alerts[j])
		}
		if len(in.Locations()) == 0 || len(in.EntriesByClass(alert.ClassFailure)) == 0 {
			b.Fatal("incident absorbed nothing")
		}
	}
}

// benchBatchAbsorb measures the columnar hand-off cycle: a reused batch
// filled row-by-row (the ingest side), then bulk-absorbed into a second
// reused batch with AppendRange (the preprocess side). Both batches keep
// their column capacity across rounds, so steady state is allocation-free.
func benchBatchAbsorb(b *testing.B) {
	topo := topology.MustGenerate(topology.SmallConfig())
	alerts := experiments.SyntheticStructuredAlerts(topo, 2000, 1)
	var src, dst alert.Batch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Reset()
		for j := range alerts {
			src.Append(&alerts[j])
		}
		dst.Reset()
		dst.AppendRange(&src, 0, src.Len())
		if dst.Len() != len(alerts) {
			b.Fatal("absorb lost rows")
		}
	}
}

func benchLocatorAddCheck(b *testing.B) {
	topo := topology.MustGenerate(topology.SmallConfig())
	alerts := experiments.SyntheticStructuredAlerts(topo, 40000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loc := locator.New(locator.DefaultConfig(), topo)
		for j := range alerts {
			loc.Add(alerts[j])
		}
		loc.Check(benchEpoch.Add(time.Minute))
	}
}

// benchLocatorSteadyCheck measures a Check with no alert-set change — the
// incremental connectivity path, where the cached component partition is
// reused and only thresholding runs. This is the per-tick steady-state
// cost during a long-lived flood.
func benchLocatorSteadyCheck(b *testing.B) {
	topo := topology.MustGenerate(topology.SmallConfig())
	alerts := experiments.SyntheticStructuredAlerts(topo, 40000, 1)
	loc := locator.New(locator.DefaultConfig(), topo)
	for j := range alerts {
		loc.Add(alerts[j])
	}
	now := benchEpoch.Add(time.Minute)
	loc.Check(now)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loc.Check(now)
	}
}

func benchFTreeClassify(b *testing.B) {
	classifier, err := preprocess.BootstrapClassifier()
	if err != nil {
		b.Fatal(err)
	}
	line := "%LINK-3-UPDOWN: Interface TenGigE0/1/0/25, changed state to down (bench)"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := classifier.ClassifyLine(line); !ok {
			b.Fatal("line did not classify")
		}
	}
}

func benchWireCodec(b *testing.B) {
	a := alert.Alert{
		Source: alert.SourcePing, Type: alert.TypePacketLoss, Class: alert.ClassFailure,
		Time: benchEpoch, End: benchEpoch.Add(time.Minute),
		Location: hierarchy.MustNew("RG01", "CT01", "LS01", "ST01", "CL01", "dev-1"),
		Value:    0.25, Count: 3, Raw: "Packet loss 25.0% to peer",
	}
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = alert.AppendWire(buf[:0], &a)
		if _, err := alert.ParseWire(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// benchWireCodecScratch is benchWireCodec through a WireScratch — the
// steady-state ingest decode path, where every string field is a cache
// hit and the round trip allocates nothing.
func benchWireCodecScratch(b *testing.B) {
	a := alert.Alert{
		Source: alert.SourcePing, Type: alert.TypePacketLoss, Class: alert.ClassFailure,
		Time: benchEpoch, End: benchEpoch.Add(time.Minute),
		Location: hierarchy.MustNew("RG01", "CT01", "LS01", "ST01", "CL01", "dev-1"),
		Value:    0.25, Count: 3, Raw: "Packet loss 25.0% to peer",
	}
	buf := make([]byte, 0, 256)
	var sc alert.WireScratch
	buf = alert.AppendWire(buf, &a)
	if _, err := sc.ParseWire(buf); err != nil { // warm the caches
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = alert.AppendWire(buf[:0], &a)
		if _, err := sc.ParseWire(buf); err != nil {
			b.Fatal(err)
		}
	}
}
