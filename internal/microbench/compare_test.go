package microbench

import (
	"strings"
	"testing"
)

func report(results ...Result) *Report { return &Report{Results: results} }

func TestCompareGatesTimeAndMemory(t *testing.T) {
	base := report(
		Result{Name: "a", NsPerOp: 1000, BytesPerOp: 1000, AllocsPerOp: 10},
		Result{Name: "b", NsPerOp: 1000, BytesPerOp: 1000, AllocsPerOp: 10},
	)

	t.Run("within tolerance", func(t *testing.T) {
		cur := report(
			Result{Name: "a", NsPerOp: 1100, BytesPerOp: 1200, AllocsPerOp: 12},
			Result{Name: "b", NsPerOp: 900, BytesPerOp: 800, AllocsPerOp: 8},
		)
		if regs := Compare(base, cur, 0.15, 0.25); len(regs) != 0 {
			t.Errorf("want no regressions, got %v", regs)
		}
	})

	t.Run("time regression", func(t *testing.T) {
		cur := report(
			Result{Name: "a", NsPerOp: 1300, BytesPerOp: 1000, AllocsPerOp: 10},
			Result{Name: "b", NsPerOp: 1000, BytesPerOp: 1000, AllocsPerOp: 10},
		)
		regs := Compare(base, cur, 0.15, 0.25)
		if len(regs) != 1 || !strings.Contains(regs[0], "ns/op") {
			t.Errorf("want one ns/op regression, got %v", regs)
		}
	})

	t.Run("memory regression", func(t *testing.T) {
		cur := report(
			Result{Name: "a", NsPerOp: 1000, BytesPerOp: 2000, AllocsPerOp: 10},
			Result{Name: "b", NsPerOp: 1000, BytesPerOp: 1000, AllocsPerOp: 20},
		)
		regs := Compare(base, cur, 0.15, 0.25)
		if len(regs) != 2 {
			t.Fatalf("want 2 regressions, got %v", regs)
		}
		if !strings.Contains(regs[0], "bytes/op") || !strings.Contains(regs[1], "allocs/op") {
			t.Errorf("want bytes/op then allocs/op, got %v", regs)
		}
	})

	t.Run("memory gate disabled", func(t *testing.T) {
		cur := report(
			Result{Name: "a", NsPerOp: 1000, BytesPerOp: 9000, AllocsPerOp: 90},
			Result{Name: "b", NsPerOp: 1000, BytesPerOp: 9000, AllocsPerOp: 90},
		)
		if regs := Compare(base, cur, 0.15, 0); len(regs) != 0 {
			t.Errorf("memTol=0 must disable the memory gate, got %v", regs)
		}
	})

	t.Run("zero-alloc baseline is a hard floor", func(t *testing.T) {
		zbase := report(Result{Name: "z", NsPerOp: 100, BytesPerOp: 0, AllocsPerOp: 0})
		cur := report(Result{Name: "z", NsPerOp: 100, BytesPerOp: 16, AllocsPerOp: 1})
		regs := Compare(zbase, cur, 0.15, 0.25)
		if len(regs) != 2 {
			t.Errorf("growth from a zero baseline must always be reported, got %v", regs)
		}
	})

	t.Run("missing benchmark", func(t *testing.T) {
		cur := report(Result{Name: "a", NsPerOp: 1000, BytesPerOp: 1000, AllocsPerOp: 10})
		regs := Compare(base, cur, 0.15, 0.25)
		if len(regs) != 1 || !strings.Contains(regs[0], "missing") {
			t.Errorf("want one missing-benchmark report, got %v", regs)
		}
	})

	t.Run("new benchmark ignored", func(t *testing.T) {
		cur := report(
			Result{Name: "a", NsPerOp: 1000, BytesPerOp: 1000, AllocsPerOp: 10},
			Result{Name: "b", NsPerOp: 1000, BytesPerOp: 1000, AllocsPerOp: 10},
			Result{Name: "new", NsPerOp: 5, BytesPerOp: 5, AllocsPerOp: 5},
		)
		if regs := Compare(base, cur, 0.15, 0.25); len(regs) != 0 {
			t.Errorf("benchmarks new in cur must be ignored, got %v", regs)
		}
	})
}
