package incident

import (
	"strings"
	"testing"
	"time"

	"skynet/internal/alert"
	"skynet/internal/hierarchy"
)

var epoch = time.Date(2024, 7, 2, 11, 45, 11, 0, time.UTC)

var root = hierarchy.MustNew("RegionA", "Citya", "Logic site 2")
var locA = root.MustChild("Site I").MustChild("Cluster ii").MustChild("Device i")
var locB = root.MustChild("Site I")

func mk(src alert.Source, typ string, at time.Time, loc hierarchy.Path, count int) alert.Alert {
	return alert.Alert{
		Source: src, Type: typ, Class: alert.Classify(src, typ),
		Time: at, End: at, Location: loc, Count: count,
	}
}

func TestAddAggregates(t *testing.T) {
	in := New(1, root)
	in.Add(mk(alert.SourcePing, alert.TypePacketLoss, epoch, locA, 1))
	in.Add(mk(alert.SourcePing, alert.TypePacketLoss, epoch.Add(time.Minute), locA, 2))
	if got := in.AlertCount(); got != 3 {
		t.Errorf("AlertCount = %d, want 3", got)
	}
	if len(in.Entries()[locA]) != 1 {
		t.Error("same type+location should aggregate into one entry")
	}
	e := in.Entries()[locA][alert.StreamKey{Source: alert.SourcePing, Type: alert.TypePacketLoss}]
	if !e.Alert.Time.Equal(epoch) || !e.Alert.End.Equal(epoch.Add(time.Minute)) {
		t.Error("aggregate span wrong")
	}
	if !in.Start.Equal(epoch) || !in.UpdateTime.Equal(epoch.Add(time.Minute)) {
		t.Errorf("incident span wrong: %v %v", in.Start, in.UpdateTime)
	}
}

func TestAddZeroCountNormalized(t *testing.T) {
	in := New(1, root)
	in.Add(mk(alert.SourcePing, alert.TypePacketLoss, epoch, locA, 0))
	if in.AlertCount() != 1 {
		t.Errorf("zero-count alert should count as 1, got %d", in.AlertCount())
	}
}

func TestTypeCountDedups(t *testing.T) {
	in := New(1, root)
	in.Add(mk(alert.SourcePing, alert.TypePacketLoss, epoch, locA, 1))
	in.Add(mk(alert.SourcePing, alert.TypePacketLoss, epoch, locB, 1)) // same type, other location
	in.Add(mk(alert.SourcePing, alert.TypeEndToEndICMP, epoch, locA, 1))
	in.Add(mk(alert.SourceSyslog, alert.TypeLinkDown, epoch, locA, 1))
	if got := in.TypeCount(alert.ClassFailure); got != 2 {
		t.Errorf("failure types = %d, want 2", got)
	}
	if got := in.TypeCount(alert.ClassRootCause); got != 1 {
		t.Errorf("rootcause types = %d, want 1", got)
	}
	if got := in.TypeCount(alert.ClassAbnormal); got != 0 {
		t.Errorf("abnormal types = %d, want 0", got)
	}
}

func TestMergeAndClose(t *testing.T) {
	a := New(1, root)
	a.Add(mk(alert.SourcePing, alert.TypePacketLoss, epoch, locA, 1))
	b := New(2, locB)
	b.Add(mk(alert.SourceSyslog, alert.TypeLinkDown, epoch.Add(time.Second), locB, 1))
	b.MergedFrom = []int{7}
	a.Merge(b)
	if a.AlertCount() != 2 {
		t.Errorf("merged count = %d", a.AlertCount())
	}
	if len(a.MergedFrom) != 2 {
		t.Errorf("MergedFrom = %v", a.MergedFrom)
	}
	if !a.Active() {
		t.Error("should be active before Close")
	}
	a.Close(epoch.Add(time.Minute))
	if a.Active() || !a.End.Equal(epoch.Add(time.Minute)) {
		t.Error("close failed")
	}
	a.Close(epoch.Add(2 * time.Minute)) // idempotent
	if !a.End.Equal(epoch.Add(time.Minute)) {
		t.Error("second close moved End")
	}
}

func TestLocationsSorted(t *testing.T) {
	in := New(1, root)
	in.Add(mk(alert.SourcePing, alert.TypePacketLoss, epoch, locB, 1))
	in.Add(mk(alert.SourcePing, alert.TypePacketLoss, epoch, locA, 1))
	locs := in.Locations()
	if len(locs) != 2 || locs[0].Compare(locs[1]) >= 0 {
		t.Errorf("locations unsorted: %v", locs)
	}
}

func TestRenderFigure6Shape(t *testing.T) {
	in := New(1, root)
	in.Add(mk(alert.SourcePing, alert.TypeEndToEndICMP, epoch, locA, 3))
	in.Add(mk(alert.SourceOutOfBand, alert.TypeDeviceInaccessible, epoch, locA, 680))
	in.Add(mk(alert.SourceSyslog, alert.TypeTrafficBlackhole, epoch, locB, 1))
	in.Add(mk(alert.SourceSyslog, alert.TypeBGPLinkJitter, epoch, locB, 4))
	in.Add(mk(alert.SourceSyslog, alert.TypeHardwareError, epoch, locB, 1))
	in.Severity = 60.0
	out := in.Render()
	for _, want := range []string{
		"Incident 1:",
		"[RegionA|Citya|Logic site 2]",
		"severity=60.0",
		"Failure alerts",
		"Abnormal alerts",
		"Root cause alerts",
		"inaccessible (680)",
		"bgp link jitter (4)",
		"end to end icmp (3)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// The last row of a source uses the corner branch.
	if !strings.Contains(out, "└-") {
		t.Error("render missing corner branch")
	}
}

func TestRenderClosedAndZoomed(t *testing.T) {
	in := New(2, root)
	in.Add(mk(alert.SourcePing, alert.TypePacketLoss, epoch, locA, 1))
	in.Zoomed = locB
	in.Close(epoch.Add(time.Minute))
	out := in.Render()
	if !strings.Contains(out, "zoomed="+locB.String()) {
		t.Errorf("render missing zoomed location:\n%s", out)
	}
	if !strings.Contains(out, in.End.Format("15:04:05")) {
		t.Error("render should show the closed end time")
	}
}

func TestEntriesByClassSorted(t *testing.T) {
	in := New(1, root)
	in.Add(mk(alert.SourcePing, alert.TypePacketLoss, epoch, locB, 1))
	in.Add(mk(alert.SourcePing, alert.TypeEndToEndICMP, epoch, locA, 1))
	in.Add(mk(alert.SourcePing, alert.TypeEndToEndICMP, epoch, locB, 1))
	got := in.EntriesByClass(alert.ClassFailure)
	entries := got[alert.SourcePing]
	if len(entries) != 3 {
		t.Fatalf("entries = %d", len(entries))
	}
	for i := 1; i < len(entries); i++ {
		prev, cur := entries[i-1].Alert, entries[i].Alert
		if prev.Type > cur.Type || (prev.Type == cur.Type && prev.Location.Compare(cur.Location) > 0) {
			t.Error("entries not sorted by type then location")
		}
	}
}
