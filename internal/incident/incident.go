// Package incident defines SkyNet's central output object: an incident is
// "a set of alerts originating from the same root cause" (§1), grouped by
// time and location, with its alerts organized into the three classes of
// §4.2 and rendered for operators in the Figure 6 report format.
package incident

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"skynet/internal/alert"
	"skynet/internal/hierarchy"
)

// Entry is one aggregated alert stream inside an incident: all alerts of
// one (source, type) at one location.
type Entry struct {
	// Alert is the aggregated view: Time of first observation, End of
	// last, Count of instances, max Value.
	Alert alert.Alert
}

// Incident is a cluster of alerts attributed to one root cause.
type Incident struct {
	// ID is unique within a locator's lifetime.
	ID int
	// Root is the hierarchy node the incident is rooted at.
	Root hierarchy.Path
	// Start is the earliest alert time; End is set when the incident
	// times out (zero while active).
	Start time.Time
	End   time.Time
	// UpdateTime is the latest alert timestamp seen (Algorithm 1's
	// i.updateTime).
	UpdateTime time.Time

	// Entries maps location → stream key (source, type, circuit set)
	// → aggregated entry.
	Entries map[hierarchy.Path]map[alert.StreamKey]*Entry

	// Severity is the evaluator's score y_k (0 until evaluated).
	Severity float64
	// Zoomed is the refined failure location from location zoom-in, or
	// the zero path when zoom-in could not refine.
	Zoomed hierarchy.Path
	// MergedFrom lists incident IDs absorbed into this one as its scope
	// grew.
	MergedFrom []int

	// rev counts content mutations (Add/Merge/Close). The engine's
	// incremental evaluator compares revisions to skip re-refining and
	// re-scoring incidents whose inputs cannot have changed.
	rev uint64
}

// Rev returns the mutation revision: it changes whenever Add, Merge, or
// Close alter the incident's content.
func (in *Incident) Rev() uint64 { return in.rev }

// New creates an empty incident.
func New(id int, root hierarchy.Path) *Incident {
	return &Incident{
		ID:      id,
		Root:    root,
		Entries: make(map[hierarchy.Path]map[alert.StreamKey]*Entry),
	}
}

// Active reports whether the incident is still open.
func (in *Incident) Active() bool { return in.End.IsZero() }

// Add merges one alert into the incident, updating Start/UpdateTime and
// the per-location aggregation.
func (in *Incident) Add(a alert.Alert) {
	in.rev++
	locEntries, ok := in.Entries[a.Location]
	if !ok {
		locEntries = make(map[alert.StreamKey]*Entry)
		in.Entries[a.Location] = locEntries
	}
	k := a.StreamKey()
	if e, ok := locEntries[k]; ok {
		if a.End.After(e.Alert.End) {
			e.Alert.End = a.End
		}
		if a.Time.Before(e.Alert.Time) {
			e.Alert.Time = a.Time
		}
		if a.Value > e.Alert.Value {
			e.Alert.Value = a.Value
		}
		e.Alert.Count += max(a.Count, 1)
	} else {
		cp := a
		if cp.Count <= 0 {
			cp.Count = 1
		}
		locEntries[k] = &Entry{Alert: cp}
	}
	if in.Start.IsZero() || a.Time.Before(in.Start) {
		in.Start = a.Time
	}
	last := a.Time
	if a.End.After(last) {
		last = a.End
	}
	if last.After(in.UpdateTime) {
		in.UpdateTime = last
	}
}

// Merge absorbs all entries of another incident.
func (in *Incident) Merge(other *Incident) {
	for _, locEntries := range other.Entries {
		for _, e := range locEntries {
			in.Add(e.Alert)
		}
	}
	in.MergedFrom = append(in.MergedFrom, other.ID)
	in.MergedFrom = append(in.MergedFrom, other.MergedFrom...)
}

// Close marks the incident ended at the given time.
func (in *Incident) Close(at time.Time) {
	if in.End.IsZero() {
		in.End = at
		in.rev++
	}
}

// Locations returns the alerting locations inside the incident, sorted.
func (in *Incident) Locations() []hierarchy.Path {
	out := make([]hierarchy.Path, 0, len(in.Entries))
	for p := range in.Entries {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// TypeCount returns the number of distinct (source, type) pairs of the
// given class across the incident — the deduplicated counting unit of
// §4.2.
func (in *Incident) TypeCount(c alert.Class) int {
	seen := map[alert.TypeKey]bool{}
	for _, locEntries := range in.Entries {
		for k, e := range locEntries {
			if e.Alert.Class == c {
				seen[k.TypeKey()] = true
			}
		}
	}
	return len(seen)
}

// AlertCount returns the total number of raw alert instances aggregated.
func (in *Incident) AlertCount() int {
	n := 0
	for _, locEntries := range in.Entries {
		for _, e := range locEntries {
			n += e.Alert.Count
		}
	}
	return n
}

// EntriesByClass groups aggregated entries of one class by source, each
// source's entries sorted by type — the structure of the Figure 6 report.
func (in *Incident) EntriesByClass(c alert.Class) map[alert.Source][]*Entry {
	out := make(map[alert.Source][]*Entry)
	for _, locEntries := range in.Entries {
		for _, e := range locEntries {
			if e.Alert.Class == c {
				out[e.Alert.Source] = append(out[e.Alert.Source], e)
			}
		}
	}
	for _, entries := range out {
		sort.Slice(entries, func(i, j int) bool {
			if entries[i].Alert.Type != entries[j].Alert.Type {
				return entries[i].Alert.Type < entries[j].Alert.Type
			}
			return entries[i].Alert.Location.Compare(entries[j].Alert.Location) < 0
		})
	}
	return out
}

// Render produces the operator-facing report in the Figure 6 layout:
//
//	Incident 1:
//	[Region A|City a|Logic site 2][11:45:11 - 11:48:10] severity=60.0
//	Failure alerts
//	  ping
//	  |- end to end icmp (3)
//	  └- packet loss (5)
//	...
func (in *Incident) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Incident %d:\n", in.ID)
	end := in.UpdateTime
	if !in.End.IsZero() {
		end = in.End
	}
	fmt.Fprintf(&b, "[%s][%s - %s]", in.Root, in.Start.Format(time.TimeOnly), end.Format(time.TimeOnly))
	if in.Severity > 0 {
		fmt.Fprintf(&b, " severity=%.1f", in.Severity)
	}
	if !in.Zoomed.IsRoot() && in.Zoomed != in.Root {
		fmt.Fprintf(&b, " zoomed=%s", in.Zoomed)
	}
	b.WriteByte('\n')
	sections := []struct {
		title string
		class alert.Class
	}{
		{"Failure alerts", alert.ClassFailure},
		{"Abnormal alerts", alert.ClassAbnormal},
		{"Root cause alerts", alert.ClassRootCause},
	}
	for _, sec := range sections {
		grouped := in.EntriesByClass(sec.class)
		if len(grouped) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s\n", sec.title)
		srcs := make([]alert.Source, 0, len(grouped))
		for s := range grouped {
			srcs = append(srcs, s)
		}
		sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
		for _, s := range srcs {
			fmt.Fprintf(&b, "  %s\n", s)
			entries := grouped[s]
			// Collapse per-type across locations for display counts.
			type agg struct {
				typ   string
				count int
			}
			var rows []agg
			idx := map[string]int{}
			for _, e := range entries {
				if i, ok := idx[e.Alert.Type]; ok {
					rows[i].count += e.Alert.Count
				} else {
					idx[e.Alert.Type] = len(rows)
					rows = append(rows, agg{e.Alert.Type, e.Alert.Count})
				}
			}
			for i, r := range rows {
				branch := "|-"
				if i == len(rows)-1 {
					branch = "└-"
				}
				fmt.Fprintf(&b, "  %s %s (%d)\n", branch, r.typ, r.count)
			}
		}
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
