// Package incident defines SkyNet's central output object: an incident is
// "a set of alerts originating from the same root cause" (§1), grouped by
// time and location, with its alerts organized into the three classes of
// §4.2 and rendered for operators in the Figure 6 report format.
package incident

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"skynet/internal/alert"
	"skynet/internal/hierarchy"
)

// Entry is one aggregated alert stream inside an incident: all alerts of
// one (source, type) at one location.
type Entry struct {
	// Alert is the aggregated view: Time of first observation, End of
	// last, Count of instances, max Value.
	Alert alert.Alert
}

// Incident is a cluster of alerts attributed to one root cause.
type Incident struct {
	// ID is unique within a locator's lifetime.
	ID int
	// Root is the hierarchy node the incident is rooted at.
	Root hierarchy.Path
	// Start is the earliest alert time; End is set when the incident
	// times out (zero while active).
	Start time.Time
	End   time.Time
	// UpdateTime is the latest alert timestamp seen (Algorithm 1's
	// i.updateTime).
	UpdateTime time.Time

	// slab holds the aggregated entries in first-seen order. Entries are
	// only ever appended or updated in place, so slab indices are stable
	// for the incident's lifetime. Pointers into the slab (handed out by
	// the map-shaped views below) stay valid until the next Add/Merge,
	// which may grow the slab and move it.
	//
	// Lookup is two-level: idx maps a location to the head of a chain of
	// slab indices threaded through next (-1 terminated), and Add scans
	// that chain comparing stream keys. A location rarely carries more
	// than a handful of streams, so the scan is short — and keeping the
	// map key to a bare Path (104 bytes) stays under Go's 128-byte
	// inline-key limit, so map inserts don't heap-allocate a key copy
	// the way a (Path, StreamKey) composite did.
	slab []Entry
	next []int32
	idx  map[hierarchy.Path]int32

	// Severity is the evaluator's score y_k (0 until evaluated).
	Severity float64
	// Zoomed is the refined failure location from location zoom-in, or
	// the zero path when zoom-in could not refine.
	Zoomed hierarchy.Path
	// MergedFrom lists incident IDs absorbed into this one as its scope
	// grew.
	MergedFrom []int

	// rev counts content mutations (Add/Merge/Close). The engine's
	// incremental evaluator compares revisions to skip re-refining and
	// re-scoring incidents whose inputs cannot have changed; the memoized
	// views below use it to prove their caches fresh.
	rev uint64

	// Lazily materialized, rev-stamped views. The slab is the source of
	// truth; these exist only for report/explain/JSON surfaces that want
	// the historical map shape. A view built at viewRev==rev is returned
	// as-is on the next call; any mutation invalidates all of them.
	viewRev  uint64
	view     map[hierarchy.Path]map[alert.StreamKey]*Entry
	locsRev  uint64
	locs     []hierarchy.Path
	classRev uint64
	byClass  map[alert.Class]map[alert.Source][]*Entry
}

// Rev returns the mutation revision: it changes whenever Add, Merge, or
// Close alter the incident's content.
func (in *Incident) Rev() uint64 { return in.rev }

// New creates an empty incident. Entry storage is allocated lazily on the
// first Add, so incidents that merge-and-close immediately cost nothing.
func New(id int, root hierarchy.Path) *Incident {
	return &Incident{ID: id, Root: root}
}

// Grow pre-sizes the incident for about n additional entries: one slab
// reservation and one index sized up front instead of a doubling series
// of reallocations. Callers that know the incoming stream count (the
// locator copying a component) use this to keep Add allocation-free.
func (in *Incident) Grow(n int) {
	if n <= 0 {
		return
	}
	if cap(in.slab)-len(in.slab) < n {
		ns := make([]Entry, len(in.slab), len(in.slab)+n)
		copy(ns, in.slab)
		in.slab = ns
	}
	if cap(in.next)-len(in.next) < n {
		nn := make([]int32, len(in.next), len(in.next)+n)
		copy(nn, in.next)
		in.next = nn
	}
	if in.idx == nil {
		in.idx = make(map[hierarchy.Path]int32, len(in.slab)+n)
	}
}

// Active reports whether the incident is still open.
func (in *Incident) Active() bool { return in.End.IsZero() }

// Add merges one alert into the incident, updating Start/UpdateTime and
// the per-location aggregation.
func (in *Incident) Add(a alert.Alert) { in.AddRef(&a) }

// AddRef is Add without the 330-byte argument copy — the hot ingest path.
// The alert is copied into the slab; the pointer is not retained.
func (in *Incident) AddRef(a *alert.Alert) {
	in.rev++
	if in.idx == nil {
		in.idx = make(map[hierarchy.Path]int32, 8)
	}
	head, found := in.idx[a.Location]
	if found {
		for i := head; i >= 0; i = in.next[i] {
			e := &in.slab[i].Alert
			if e.Source != a.Source || e.Type != a.Type || e.CircuitSet != a.CircuitSet {
				continue
			}
			if a.End.After(e.End) {
				e.End = a.End
			}
			if a.Time.Before(e.Time) {
				e.Time = a.Time
			}
			if a.Value > e.Value {
				e.Value = a.Value
			}
			e.Count += max(a.Count, 1)
			in.bumpTimes(a)
			return
		}
	}
	// New stream: append to the slab and push onto the location's chain
	// (chain order does not matter — slab order stays first-seen).
	i := int32(len(in.slab))
	in.slab = append(in.slab, Entry{Alert: *a})
	if a.Count <= 0 {
		in.slab[i].Alert.Count = 1
	}
	if found {
		in.next = append(in.next, head)
	} else {
		in.next = append(in.next, -1)
	}
	in.idx[a.Location] = i
	in.bumpTimes(a)
}

// bumpTimes folds one alert's timestamps into Start/UpdateTime.
func (in *Incident) bumpTimes(a *alert.Alert) {
	if in.Start.IsZero() || a.Time.Before(in.Start) {
		in.Start = a.Time
	}
	last := a.Time
	if a.End.After(last) {
		last = a.End
	}
	if last.After(in.UpdateTime) {
		in.UpdateTime = last
	}
}

// Merge absorbs all entries of another incident.
func (in *Incident) Merge(other *Incident) {
	for i := range other.slab {
		in.Add(other.slab[i].Alert)
	}
	in.MergedFrom = append(in.MergedFrom, other.ID)
	in.MergedFrom = append(in.MergedFrom, other.MergedFrom...)
}

// Close marks the incident ended at the given time.
func (in *Incident) Close(at time.Time) {
	if in.End.IsZero() {
		in.End = at
		in.rev++
	}
}

// EntrySlab returns the incident's aggregated entries in first-seen
// order. This is the allocation-free view for hot readers (evaluator,
// zoom-in): iterate by index, do not mutate, and do not retain the slice
// across a mutation (Add/Merge may grow and move it).
func (in *Incident) EntrySlab() []Entry { return in.slab }

// EntryCount returns the number of distinct aggregated streams.
func (in *Incident) EntryCount() int { return len(in.slab) }

// Entries materializes the historical map shape: location → stream key
// (source, type, circuit set) → aggregated entry. The map is built
// lazily and memoized against the revision counter, so repeated calls on
// an unchanged incident are free. Callers must treat the result as
// read-only; it is shared and invalidated by the next mutation.
func (in *Incident) Entries() map[hierarchy.Path]map[alert.StreamKey]*Entry {
	if in.view != nil && in.viewRev == in.rev {
		return in.view
	}
	view := make(map[hierarchy.Path]map[alert.StreamKey]*Entry)
	for i := range in.slab {
		e := &in.slab[i]
		locEntries, ok := view[e.Alert.Location]
		if !ok {
			locEntries = make(map[alert.StreamKey]*Entry)
			view[e.Alert.Location] = locEntries
		}
		locEntries[e.Alert.StreamKey()] = e
	}
	in.view, in.viewRev = view, in.rev
	return view
}

// Locations returns the alerting locations inside the incident, sorted.
// The slice is memoized against the revision counter and shared: callers
// must not modify it.
func (in *Incident) Locations() []hierarchy.Path {
	if in.locs != nil && in.locsRev == in.rev {
		return in.locs
	}
	out := make([]hierarchy.Path, 0, len(in.slab))
	for i := range in.slab {
		out = append(out, in.slab[i].Alert.Location)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	// Dedupe in place: distinct streams share locations.
	w := 0
	for i := range out {
		if i == 0 || out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	in.locs, in.locsRev = out[:w], in.rev
	return in.locs
}

// LocationCount returns the number of distinct alerting locations.
// O(1): idx is keyed by location and entries are never removed, so its
// size is exactly the distinct-location count — no need to materialize
// the sorted Locations view (which costs O(slab log slab) per revision,
// far too much for per-tick surfaces like the fan-out delta).
func (in *Incident) LocationCount() int { return len(in.idx) }

// TypeCount returns the number of distinct (source, type) pairs of the
// given class across the incident — the deduplicated counting unit of
// §4.2.
func (in *Incident) TypeCount(c alert.Class) int {
	seen := map[alert.TypeKey]bool{}
	for i := range in.slab {
		a := &in.slab[i].Alert
		if a.Class == c {
			seen[alert.TypeKey{Source: a.Source, Type: a.Type}] = true
		}
	}
	return len(seen)
}

// AlertCount returns the total number of raw alert instances aggregated.
func (in *Incident) AlertCount() int {
	n := 0
	for i := range in.slab {
		n += in.slab[i].Alert.Count
	}
	return n
}

// EntriesByClass groups aggregated entries of one class by source, each
// source's entries sorted by type — the structure of the Figure 6 report.
// Results are memoized against the revision counter and shared: callers
// must treat them as read-only.
func (in *Incident) EntriesByClass(c alert.Class) map[alert.Source][]*Entry {
	if in.byClass != nil && in.classRev == in.rev {
		if out, ok := in.byClass[c]; ok {
			return out
		}
	} else {
		in.byClass = make(map[alert.Class]map[alert.Source][]*Entry, 3)
		in.classRev = in.rev
	}
	out := make(map[alert.Source][]*Entry)
	for i := range in.slab {
		e := &in.slab[i]
		if e.Alert.Class == c {
			out[e.Alert.Source] = append(out[e.Alert.Source], e)
		}
	}
	for _, entries := range out {
		sort.Slice(entries, func(i, j int) bool {
			if entries[i].Alert.Type != entries[j].Alert.Type {
				return entries[i].Alert.Type < entries[j].Alert.Type
			}
			return entries[i].Alert.Location.Compare(entries[j].Alert.Location) < 0
		})
	}
	in.byClass[c] = out
	return out
}

// Render produces the operator-facing report in the Figure 6 layout:
//
//	Incident 1:
//	[Region A|City a|Logic site 2][11:45:11 - 11:48:10] severity=60.0
//	Failure alerts
//	  ping
//	  |- end to end icmp (3)
//	  └- packet loss (5)
//	...
func (in *Incident) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Incident %d:\n", in.ID)
	end := in.UpdateTime
	if !in.End.IsZero() {
		end = in.End
	}
	fmt.Fprintf(&b, "[%s][%s - %s]", in.Root, in.Start.Format(time.TimeOnly), end.Format(time.TimeOnly))
	if in.Severity > 0 {
		fmt.Fprintf(&b, " severity=%.1f", in.Severity)
	}
	if !in.Zoomed.IsRoot() && in.Zoomed != in.Root {
		fmt.Fprintf(&b, " zoomed=%s", in.Zoomed)
	}
	b.WriteByte('\n')
	sections := []struct {
		title string
		class alert.Class
	}{
		{"Failure alerts", alert.ClassFailure},
		{"Abnormal alerts", alert.ClassAbnormal},
		{"Root cause alerts", alert.ClassRootCause},
	}
	for _, sec := range sections {
		grouped := in.EntriesByClass(sec.class)
		if len(grouped) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s\n", sec.title)
		srcs := make([]alert.Source, 0, len(grouped))
		for s := range grouped {
			srcs = append(srcs, s)
		}
		sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
		for _, s := range srcs {
			fmt.Fprintf(&b, "  %s\n", s)
			entries := grouped[s]
			// Collapse per-type across locations for display counts.
			type agg struct {
				typ   string
				count int
			}
			var rows []agg
			idx := map[string]int{}
			for _, e := range entries {
				if i, ok := idx[e.Alert.Type]; ok {
					rows[i].count += e.Alert.Count
				} else {
					idx[e.Alert.Type] = len(rows)
					rows = append(rows, agg{e.Alert.Type, e.Alert.Count})
				}
			}
			for i, r := range rows {
				branch := "|-"
				if i == len(rows)-1 {
					branch = "└-"
				}
				fmt.Fprintf(&b, "  %s %s (%d)\n", branch, r.typ, r.count)
			}
		}
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
