package incident

import (
	"fmt"
	"testing"
	"time"

	"skynet/internal/alert"
	"skynet/internal/hierarchy"
)

// Allocation pins for the pooled entry slab. Aggregating into an
// existing stream must never allocate, and appending a fresh stream into
// a Grow-reserved slab must not either — the locator calls Grow with the
// component's stream count before copying it, and that promise is what
// keeps incident materialization off the GC during a flood.
func TestAddRefAggregateAllocFree(t *testing.T) {
	in := New(1, hierarchy.MustNew("RG01"))
	a := alert.Alert{
		Source: alert.SourcePing, Type: alert.TypePacketLoss, Class: alert.ClassFailure,
		Time:     time.Date(2024, 7, 2, 11, 0, 0, 0, time.UTC),
		Location: hierarchy.MustNew("RG01", "CT01", "LS01", "ST01", "CL01", "dev-1"),
		Value:    0.25, Count: 1,
	}
	in.AddRef(&a)
	if avg := testing.AllocsPerRun(200, func() {
		a.Time = a.Time.Add(time.Second)
		a.End = a.Time
		in.AddRef(&a)
	}); avg != 0 {
		t.Errorf("AddRef into an existing stream allocates %.1f times per call, want 0", avg)
	}
}

func TestAddRefGrownAppendAllocFree(t *testing.T) {
	const runs, perRun = 50, 8
	total := (runs + 1) * perRun
	alerts := make([]alert.Alert, total)
	base := time.Date(2024, 7, 2, 11, 0, 0, 0, time.UTC)
	for i := range alerts {
		alerts[i] = alert.Alert{
			Source: alert.SourcePing, Type: alert.TypePacketLoss, Class: alert.ClassFailure,
			Time:     base.Add(time.Duration(i) * time.Second),
			Location: hierarchy.MustNew("RG01", "CT01", "LS01", "ST01", "CL01", fmt.Sprintf("dev-%04d", i)),
			Value:    0.5, Count: 1,
		}
	}
	in := New(1, hierarchy.MustNew("RG01"))
	in.Grow(total)
	next := 0
	if avg := testing.AllocsPerRun(runs, func() {
		for i := 0; i < perRun; i++ {
			in.AddRef(&alerts[next])
			next++
		}
	}); avg != 0 {
		t.Errorf("AddRef of a fresh stream after Grow allocates %.1f times per run of %d, want 0", avg, perRun)
	}
	if in.EntryCount() != next {
		t.Fatalf("slab holds %d entries, want %d", in.EntryCount(), next)
	}
}
