package locator

import (
	"testing"
	"time"

	"skynet/internal/alert"
	"skynet/internal/topology"
)

// TestSteadyCheckZeroAllocs pins the tentpole invariant: a Check where
// the alerting set did not change — no adds, nothing expired, incidents
// stable — reuses the cached component partition and per-worker scratch
// and allocates nothing at all.
func TestSteadyCheckZeroAllocs(t *testing.T) {
	topo := topology.MustGenerate(topology.SmallConfig())
	cfg := DefaultConfig()
	cfg.Workers = 1
	l := New(cfg, topo)

	// A qualifying component (one incident) plus a lone sub-threshold
	// device, so the steady loop exercises both branches.
	lnk := topo.Link(0)
	a, b := topo.Device(lnk.A).Path, topo.Device(lnk.B).Path
	l.Add(mk(alert.SourcePing, alert.TypePacketLoss, epoch, a))
	l.Add(mk(alert.SourcePing, alert.TypeEndToEndICMP, epoch, b))
	far := topo.Clusters()[len(topo.Clusters())-1]
	farDev := topo.Device(topo.DevicesUnder(far)[0]).Path
	l.Add(mk(alert.SourceSyslog, alert.TypeLinkDown, epoch, farDev))
	if created := l.Check(epoch.Add(time.Second)); len(created) != 1 {
		t.Fatalf("setup: created %d incidents, want 1", len(created))
	}

	now := epoch.Add(2 * time.Second)
	if avg := testing.AllocsPerRun(50, func() {
		l.Check(now)
	}); avg != 0 {
		t.Errorf("steady-state Check allocates %.1f times per call, want 0", avg)
	}
}

// TestSteadyCheckZeroAllocsAblation covers the DisableConnectivity
// short-circuit, which must also stay allocation-free at steady state.
func TestSteadyCheckZeroAllocsAblation(t *testing.T) {
	topo := topology.MustGenerate(topology.SmallConfig())
	cfg := DefaultConfig()
	cfg.Workers = 1
	cfg.DisableConnectivity = true
	l := New(cfg, topo)
	l.Add(mk(alert.SourceSyslog, alert.TypeLinkDown, epoch, topo.Device(0).Path))
	l.Check(epoch.Add(time.Second))

	now := epoch.Add(2 * time.Second)
	if avg := testing.AllocsPerRun(50, func() {
		l.Check(now)
	}); avg != 0 {
		t.Errorf("steady-state ablation Check allocates %.1f times per call, want 0", avg)
	}
}

// TestSteadyAddNoNewStreamsZeroAllocs pins the consolidation path: an
// alert that merges into an existing stream of an existing node must not
// allocate.
func TestSteadyAddZeroAllocs(t *testing.T) {
	topo := topology.MustGenerate(topology.SmallConfig())
	cfg := DefaultConfig()
	cfg.Workers = 1
	l := New(cfg, topo)
	a := mk(alert.SourceSyslog, alert.TypeLinkDown, epoch, topo.Device(0).Path)
	l.Add(a)
	if avg := testing.AllocsPerRun(50, func() {
		l.Add(a)
	}); avg != 0 {
		t.Errorf("consolidating Add allocates %.1f times per call, want 0", avg)
	}
}
