package locator

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"skynet/internal/alert"
	"skynet/internal/experimentsutil"
	"skynet/internal/topology"
)

// Property tests on the locator's structural invariants under random alert
// streams: whatever arrives, in whatever order, the trees must stay
// consistent.

// randStream produces a random but valid structured-alert stream over a
// topology.
func randStream(topo *topology.Topology, r *rand.Rand, n int) []alert.Alert {
	return experimentsutil.RandomAlerts(topo, r, n, epoch)
}

func propTopo() *topology.Topology { return topology.MustGenerate(topology.SmallConfig()) }

func TestPropertyIncidentRootsContainTheirEntries(t *testing.T) {
	topo := propTopo()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := New(DefaultConfig(), topo)
		for _, a := range randStream(topo, r, 80) {
			l.Add(a)
			if r.Intn(10) == 0 {
				l.Check(a.Time)
			}
		}
		l.Check(epoch.Add(20 * time.Minute))
		for _, in := range append(l.Active(), l.Closed()...) {
			for loc := range in.Entries() {
				if !in.Root.Contains(loc) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPropertyActiveRootsAreDisjointOrNested(t *testing.T) {
	// After any stream, no two active incidents may share a root, and no
	// active root may strictly contain another (containment triggers
	// absorption in Algorithm 2).
	topo := propTopo()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := New(DefaultConfig(), topo)
		for _, a := range randStream(topo, r, 120) {
			l.Add(a)
			if r.Intn(8) == 0 {
				l.Check(a.Time)
			}
		}
		active := l.Active()
		for i := range active {
			for j := i + 1; j < len(active); j++ {
				if active[i].Root == active[j].Root {
					return false
				}
				if active[i].Root.Contains(active[j].Root) || active[j].Root.Contains(active[i].Root) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPropertyEveryIncidentCrossedThresholds(t *testing.T) {
	// No incident may exist whose deduplicated type counts never crossed
	// the thresholds (at creation time, its copied alerts alone must
	// qualify).
	topo := propTopo()
	th := ProductionThresholds()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := New(DefaultConfig(), topo)
		for _, a := range randStream(topo, r, 100) {
			l.Add(a)
			if r.Intn(10) == 0 {
				l.Check(a.Time)
			}
		}
		l.Check(epoch.Add(30 * time.Minute))
		for _, in := range append(l.Active(), l.Closed()...) {
			failure := in.TypeCount(alert.ClassFailure)
			all := failure + in.TypeCount(alert.ClassAbnormal) + in.TypeCount(alert.ClassRootCause)
			if !th.Crossed(failure, all) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPropertyExpiryEventuallyEmptiesTree(t *testing.T) {
	topo := propTopo()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := New(DefaultConfig(), topo)
		var last time.Time
		for _, a := range randStream(topo, r, 60) {
			l.Add(a)
			last = a.Time
		}
		// One NodeTTL+IncidentTTL past the last alert: everything gone.
		l.Check(last.Add(25 * time.Minute))
		return l.NodeCount() == 0 && len(l.Active()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDeterministicAcrossRuns(t *testing.T) {
	topo := propTopo()
	f := func(seed int64) bool {
		run := func() []int {
			r := rand.New(rand.NewSource(seed))
			l := New(DefaultConfig(), topo)
			for _, a := range randStream(topo, r, 100) {
				l.Add(a)
				if r.Intn(6) == 0 {
					l.Check(a.Time)
				}
			}
			l.Check(epoch.Add(30 * time.Minute))
			var ids []int
			for _, in := range append(l.Active(), l.Closed()...) {
				ids = append(ids, in.ID, in.AlertCount())
			}
			return ids
		}
		a, b := run(), run()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
