package locator

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"skynet/internal/alert"
	"skynet/internal/experimentsutil"
	"skynet/internal/topology"
)

// fingerprint renders the locator's complete observable state — node
// count, every active and closed incident with its ID, root, span, and
// entries — for bit-exact comparison between worker settings.
func fingerprint(l *Locator) string {
	var b strings.Builder
	fmt.Fprintf(&b, "nodes=%d active=%d closed=%d\n", l.NodeCount(), l.ActiveCount(), l.ClosedCount())
	for _, in := range l.Active() {
		b.WriteString(in.Render())
	}
	for _, in := range l.Closed() {
		b.WriteString(in.Render())
	}
	return b.String()
}

// TestAddBatchMatchesSerialAdd drives the same random stream through a
// one-worker locator using per-alert Add and through multi-worker
// locators using AddBatch, interleaving Checks. The sharded parallel path
// must reproduce the serial engine's incidents bit for bit.
func TestAddBatchMatchesSerialAdd(t *testing.T) {
	topo := topology.MustGenerate(topology.SmallConfig())
	for _, seed := range []int64{1, 11, 23} {
		batch := experimentsutil.RandomAlerts(topo, rand.New(rand.NewSource(seed)), 600, epoch)
		run := func(workers int, useBatch bool) string {
			cfg := DefaultConfig()
			cfg.Workers = workers
			l := New(cfg, topo)
			var b strings.Builder
			for i := 0; i < len(batch); i += 200 {
				end := min(i+200, len(batch))
				if useBatch {
					l.AddBatch(batch[i:end])
				} else {
					for j := i; j < end; j++ {
						l.Add(batch[j])
					}
				}
				now := batch[end-1].Time.Add(30 * time.Second)
				for _, in := range l.Check(now) {
					b.WriteString(in.Render())
				}
			}
			b.WriteString(fingerprint(l))
			return b.String()
		}
		ref := run(1, false)
		for _, workers := range []int{2, 4, 8} {
			if got := run(workers, true); got != ref {
				t.Errorf("seed %d: AddBatch at %d workers diverged from serial Add", seed, workers)
			}
		}
		// The batch path at one worker must also match.
		if got := run(1, true); got != ref {
			t.Errorf("seed %d: serial AddBatch diverged from serial Add", seed)
		}
	}
}

// TestActiveClosedReturnCopies pins the aliasing contract: the slices
// returned by Active, Closed, and ClosedSince are the caller's to sort,
// truncate, or append to — doing so must not disturb the locator.
func TestActiveClosedReturnCopies(t *testing.T) {
	l, topo := newLocator(t)
	loc := topo.Clusters()[0]
	l.Add(mk(alert.SourcePing, "packet loss", epoch, loc))
	l.Add(mk(alert.SourcePing, "end to end icmp", epoch, loc))
	created := l.Check(epoch.Add(time.Minute))
	if len(created) != 1 {
		t.Fatalf("expected 1 incident, got %d", len(created))
	}

	act := l.Active()
	act[0] = nil
	_ = append(act, nil)
	if got := l.Active(); len(got) != 1 || got[0] == nil {
		t.Fatal("mutating Active()'s result corrupted the locator")
	}

	// Time the incident out, then vandalize Closed()'s result.
	l.Check(epoch.Add(time.Hour))
	cl := l.Closed()
	if len(cl) != 1 {
		t.Fatalf("expected 1 closed incident, got %d", len(cl))
	}
	cl[0] = nil
	_ = append(cl, nil)
	if got := l.Closed(); len(got) != 1 || got[0] == nil {
		t.Fatal("mutating Closed()'s result corrupted the locator")
	}
	cs := l.ClosedSince(0)
	cs[0] = nil
	if got := l.ClosedSince(0); len(got) != 1 || got[0] == nil {
		t.Fatal("mutating ClosedSince()'s result corrupted the locator")
	}
}

// TestParseThresholdsRoundTrip checks String/ParseThresholds inverse on a
// spread of settings, plus a malformed-input table.
func TestParseThresholdsRoundTrip(t *testing.T) {
	for _, th := range []Thresholds{
		ProductionThresholds(),
		{FailureOnly: 1, ComboFailure: 0, ComboOther: 0, AnyAlerts: 0},
		{FailureOnly: 0, ComboFailure: 3, ComboOther: 4, AnyAlerts: 9},
		{FailureOnly: 10, ComboFailure: 2, ComboOther: 1, AnyAlerts: 100},
	} {
		got, err := ParseThresholds(th.String())
		if err != nil {
			t.Errorf("ParseThresholds(%q): %v", th.String(), err)
			continue
		}
		if got != th {
			t.Errorf("round trip %q: got %+v, want %+v", th.String(), got, th)
		}
	}
	malformed := []string{
		"",            // empty
		"2/1+2",       // missing last clause
		"2/12/5",      // missing +
		"2/1+2+3/5",   // extra +
		"x/1+2/5",     // non-numeric A
		"2/y+2/5",     // non-numeric B
		"2/1+z/5",     // non-numeric C
		"2/1+2/w",     // non-numeric D
		"-2/1+2/5",    // negative A
		"2/-1+2/5",    // negative B
		"2/1+-2/5",    // negative C
		"2/1+2/-5",    // negative D
		"2/1+2/5/6",   // too many clauses
		"2 / 1+2 / 5", // embedded spaces
	}
	for _, bad := range malformed {
		if _, err := ParseThresholds(bad); err == nil {
			t.Errorf("ParseThresholds(%q): want error, got nil", bad)
		}
	}
}
