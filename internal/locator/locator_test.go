package locator

import (
	"testing"
	"time"

	"skynet/internal/alert"
	"skynet/internal/hierarchy"
	"skynet/internal/topology"
)

var epoch = time.Date(2024, 7, 2, 11, 0, 0, 0, time.UTC)

func mk(src alert.Source, typ string, at time.Time, loc hierarchy.Path) alert.Alert {
	return alert.Alert{
		Source: src, Type: typ, Class: alert.Classify(src, typ),
		Time: at, End: at, Location: loc, Count: 1,
	}
}

func newLocator(t *testing.T) (*Locator, *topology.Topology) {
	t.Helper()
	topo := topology.MustGenerate(topology.SmallConfig())
	return New(DefaultConfig(), topo), topo
}

func TestParseThresholds(t *testing.T) {
	th, err := ParseThresholds("2/1+2/5")
	if err != nil {
		t.Fatal(err)
	}
	if th != ProductionThresholds() {
		t.Errorf("parsed %+v", th)
	}
	if th.String() != "2/1+2/5" {
		t.Errorf("String = %q", th.String())
	}
	for _, bad := range []string{"", "2/5", "a/1+2/5", "2/x+2/5", "2/1+x/5", "2/1+2/x", "2/1/2/5", "2/1-2/5", "-1/1+2/5"} {
		if _, err := ParseThresholds(bad); err == nil {
			t.Errorf("ParseThresholds(%q): want error", bad)
		}
	}
}

func TestThresholdClauses(t *testing.T) {
	th := ProductionThresholds()
	cases := []struct {
		fail, all int
		want      bool
	}{
		{2, 2, true},  // A: two failure types
		{1, 3, true},  // B+C: one failure + two other
		{0, 5, true},  // D: five any
		{1, 2, false}, // one failure + one other
		{0, 4, false}, // four non-failure
		{1, 1, false}, // lone failure
		{0, 0, false},
	}
	for _, c := range cases {
		if got := th.Crossed(c.fail, c.all); got != c.want {
			t.Errorf("Crossed(%d,%d) = %v, want %v", c.fail, c.all, got, c.want)
		}
	}
	// Disabled clauses.
	if (Thresholds{}).Crossed(10, 20) {
		t.Error("all-zero thresholds should never cross")
	}
	only5 := Thresholds{AnyAlerts: 5}
	if only5.Crossed(4, 4) || !only5.Crossed(0, 5) {
		t.Error("AnyAlerts-only misbehaves")
	}
}

func TestTwoFailureTypesMakeIncident(t *testing.T) {
	l, topo := newLocator(t)
	dev := topo.Device(0).Path
	l.Add(mk(alert.SourcePing, alert.TypePacketLoss, epoch, dev))
	l.Add(mk(alert.SourcePing, alert.TypeEndToEndICMP, epoch.Add(time.Second), dev))
	created := l.Check(epoch.Add(2 * time.Second))
	if len(created) != 1 {
		t.Fatalf("incidents created = %d, want 1", len(created))
	}
	in := created[0]
	if in.Root != dev {
		t.Errorf("root = %v, want %v", in.Root, dev)
	}
	if in.TypeCount(alert.ClassFailure) != 2 {
		t.Errorf("failure types = %d", in.TypeCount(alert.ClassFailure))
	}
}

func TestSameTypeManyLocationsCountsOnce(t *testing.T) {
	// The probe-error storm of §4.2: many identical device-down alerts
	// across devices must NOT make an incident under type counting.
	l, topo := newLocator(t)
	cl := topo.Clusters()[0]
	for _, id := range topo.DevicesUnder(cl) {
		l.Add(mk(alert.SourceOutOfBand, alert.TypeDeviceInaccessible, epoch, topo.Device(id).Path))
	}
	if created := l.Check(epoch.Add(time.Second)); len(created) != 0 {
		t.Errorf("same-type flood created %d incidents", len(created))
	}
}

func TestTypeAndLocationBaselineFires(t *testing.T) {
	// The Figure 9 first column: per-(type,location) counting turns the
	// same flood into an incident — the false-positive explosion.
	topo := topology.MustGenerate(topology.SmallConfig())
	cfg := DefaultConfig()
	cfg.TypeAndLocation = true
	l := New(cfg, topo)
	cl := topo.Clusters()[0]
	for _, id := range topo.DevicesUnder(cl) {
		l.Add(mk(alert.SourceOutOfBand, alert.TypeDeviceInaccessible, epoch, topo.Device(id).Path))
	}
	if created := l.Check(epoch.Add(time.Second)); len(created) != 1 {
		t.Errorf("type+location baseline created %d incidents, want 1", len(created))
	}
}

func TestBelowThresholdNoIncident(t *testing.T) {
	l, topo := newLocator(t)
	dev := topo.Device(0).Path
	l.Add(mk(alert.SourcePing, alert.TypePacketLoss, epoch, dev))
	l.Add(mk(alert.SourceSyslog, alert.TypeLinkDown, epoch, dev))
	if created := l.Check(epoch.Add(time.Second)); len(created) != 0 {
		t.Error("1 failure + 1 other should not qualify")
	}
}

func TestComboThreshold(t *testing.T) {
	l, topo := newLocator(t)
	dev := topo.Device(0).Path
	l.Add(mk(alert.SourcePing, alert.TypePacketLoss, epoch, dev))
	l.Add(mk(alert.SourceSyslog, alert.TypeLinkDown, epoch, dev))
	l.Add(mk(alert.SourceSyslog, alert.TypeBGPPeerDown, epoch, dev))
	if created := l.Check(epoch.Add(time.Second)); len(created) != 1 {
		t.Error("1 failure + 2 other should qualify")
	}
}

func TestInfoAlertsNeverCount(t *testing.T) {
	l, topo := newLocator(t)
	dev := topo.Device(0).Path
	for i := 0; i < 10; i++ {
		a := mk(alert.SourceModificationEvents, alert.TypeModificationDone, epoch, dev)
		a.Type = a.Type + string(rune('a'+i)) // distinct unknown types
		a.Class = alert.ClassInfo
		l.Add(a)
	}
	if created := l.Check(epoch.Add(time.Second)); len(created) != 0 {
		t.Error("info alerts created an incident")
	}
}

func TestIsolatedDevicesSplitIncidents(t *testing.T) {
	// The Figure 5c scenario: alerts at a connected area and at an
	// unrelated distant device must form two incidents.
	l, topo := newLocator(t)
	l1 := topo.Link(0)
	a := topo.Device(l1.A)
	b := topo.Device(l1.B)
	// Area 1: adjacent devices a and b with a failure each + rootcause.
	l.Add(mk(alert.SourcePing, alert.TypePacketLoss, epoch, a.Path))
	l.Add(mk(alert.SourcePing, alert.TypeEndToEndICMP, epoch, b.Path))
	// Area 2: a device in the last cluster of another city.
	far := topo.Clusters()[len(topo.Clusters())-1]
	var farDev hierarchy.Path
	for _, id := range topo.DevicesUnder(far) {
		farDev = topo.Device(id).Path
		break
	}
	l.Add(mk(alert.SourcePing, alert.TypePacketLoss, epoch, farDev))
	l.Add(mk(alert.SourceTraffic, alert.TypePacketLoss, epoch, farDev))
	created := l.Check(epoch.Add(time.Second))
	if len(created) != 2 {
		t.Fatalf("created %d incidents, want 2", len(created))
	}
	roots := map[hierarchy.Path]bool{}
	for _, in := range created {
		roots[in.Root] = true
	}
	if !roots[farDev] {
		t.Errorf("far device not an incident root: %v", roots)
	}
}

func TestConnectivityAblationMergesEverything(t *testing.T) {
	topo := topology.MustGenerate(topology.SmallConfig())
	cfg := DefaultConfig()
	cfg.DisableConnectivity = true
	l := New(cfg, topo)
	l1 := topo.Link(0)
	l.Add(mk(alert.SourcePing, alert.TypePacketLoss, epoch, topo.Device(l1.A).Path))
	l.Add(mk(alert.SourcePing, alert.TypeEndToEndICMP, epoch, topo.Device(l1.B).Path))
	far := topo.Clusters()[len(topo.Clusters())-1]
	var farDev hierarchy.Path
	for _, id := range topo.DevicesUnder(far) {
		farDev = topo.Device(id).Path
		break
	}
	l.Add(mk(alert.SourceTraffic, alert.TypePacketLoss, epoch, farDev))
	created := l.Check(epoch.Add(time.Second))
	if len(created) != 1 {
		t.Fatalf("ablation created %d incidents, want 1 merged", len(created))
	}
	if created[0].Root.Depth() >= farDev.Depth() {
		t.Error("merged incident should root at a shallow common ancestor")
	}
}

func TestAncestorAlertJoinsComponent(t *testing.T) {
	// A site-level ping alert plus device alerts under the site must form
	// one component rooted at the site.
	l, topo := newLocator(t)
	cl := topo.Clusters()[0]
	site := cl.Parent()
	var dev hierarchy.Path
	for _, id := range topo.DevicesUnder(cl) {
		dev = topo.Device(id).Path
		break
	}
	l.Add(mk(alert.SourcePing, alert.TypePacketLoss, epoch, site))
	l.Add(mk(alert.SourcePing, alert.TypeEndToEndICMP, epoch, dev))
	created := l.Check(epoch.Add(time.Second))
	if len(created) != 1 {
		t.Fatalf("created %d, want 1", len(created))
	}
	if created[0].Root != site {
		t.Errorf("root = %v, want %v", created[0].Root, site)
	}
}

func TestAlertExpiry(t *testing.T) {
	l, topo := newLocator(t)
	dev := topo.Device(0).Path
	l.Add(mk(alert.SourcePing, alert.TypePacketLoss, epoch, dev))
	l.Check(epoch.Add(time.Second))
	if l.NodeCount() != 1 {
		t.Fatal("node missing")
	}
	// After NodeTTL the alert — and its node — must be gone.
	l.Check(epoch.Add(6 * time.Minute))
	if l.NodeCount() != 0 {
		t.Error("expired node retained")
	}
	// A second failure type arriving now must NOT combine with the
	// expired alert.
	l.Add(mk(alert.SourcePing, alert.TypeEndToEndICMP, epoch.Add(6*time.Minute), dev))
	if created := l.Check(epoch.Add(6*time.Minute + time.Second)); len(created) != 0 {
		t.Error("expired alert contributed to an incident")
	}
}

func TestIncidentTimeout(t *testing.T) {
	l, topo := newLocator(t)
	dev := topo.Device(0).Path
	l.Add(mk(alert.SourcePing, alert.TypePacketLoss, epoch, dev))
	l.Add(mk(alert.SourcePing, alert.TypeEndToEndICMP, epoch, dev))
	created := l.Check(epoch.Add(time.Second))
	if len(created) != 1 {
		t.Fatal("no incident")
	}
	if len(l.Active()) != 1 || len(l.Closed()) != 0 {
		t.Fatal("active bookkeeping wrong")
	}
	// 16 minutes of silence closes it.
	l.Check(epoch.Add(16 * time.Minute))
	if len(l.Active()) != 0 || len(l.Closed()) != 1 {
		t.Errorf("active=%d closed=%d after timeout", len(l.Active()), len(l.Closed()))
	}
	closedIn := l.Closed()[0]
	if closedIn.Active() {
		t.Error("closed incident claims active")
	}
	if !closedIn.End.Equal(closedIn.UpdateTime) {
		t.Error("incident end should be its last update time")
	}
}

func TestNewAlertsFeedActiveIncident(t *testing.T) {
	l, topo := newLocator(t)
	dev := topo.Device(0).Path
	l.Add(mk(alert.SourcePing, alert.TypePacketLoss, epoch, dev))
	l.Add(mk(alert.SourcePing, alert.TypeEndToEndICMP, epoch, dev))
	created := l.Check(epoch.Add(time.Second))
	in := created[0]
	before := in.AlertCount()
	// A later alert under the incident root joins it and refreshes
	// UpdateTime — keeping the incident alive past the original TTL.
	l.Add(mk(alert.SourceSyslog, alert.TypeLinkDown, epoch.Add(10*time.Minute), dev))
	l.Check(epoch.Add(10*time.Minute + time.Second))
	if in.AlertCount() <= before {
		t.Error("alert did not join the active incident")
	}
	l.Check(epoch.Add(20 * time.Minute)) // only 10 min since last alert
	if len(l.Active()) != 1 {
		t.Error("incident closed despite fresh alerts")
	}
}

func TestNoDuplicateIncidentForSameRoot(t *testing.T) {
	l, topo := newLocator(t)
	dev := topo.Device(0).Path
	l.Add(mk(alert.SourcePing, alert.TypePacketLoss, epoch, dev))
	l.Add(mk(alert.SourcePing, alert.TypeEndToEndICMP, epoch, dev))
	if n := len(l.Check(epoch.Add(time.Second))); n != 1 {
		t.Fatal("setup failed")
	}
	// Same conditions at the next check: no second incident.
	if n := len(l.Check(epoch.Add(2 * time.Second))); n != 0 {
		t.Errorf("duplicate incident created: %d", n)
	}
}

func TestIncidentGrowthAbsorbsSmaller(t *testing.T) {
	l, topo := newLocator(t)
	// Start with an incident at one device.
	lnk := topo.Link(0)
	a, b := topo.Device(lnk.A), topo.Device(lnk.B)
	l.Add(mk(alert.SourcePing, alert.TypePacketLoss, epoch, a.Path))
	l.Add(mk(alert.SourcePing, alert.TypeEndToEndICMP, epoch, a.Path))
	first := l.Check(epoch.Add(time.Second))
	if len(first) != 1 {
		t.Fatal("setup failed")
	}
	// The failure widens: the adjacent device starts alerting too.
	l.Add(mk(alert.SourcePing, alert.TypePacketLoss, epoch.Add(30*time.Second), b.Path))
	l.Add(mk(alert.SourceSyslog, alert.TypeLinkDown, epoch.Add(30*time.Second), b.Path))
	second := l.Check(epoch.Add(31 * time.Second))
	if len(second) != 1 {
		t.Fatalf("widened incident not created: %d", len(second))
	}
	grown := second[0]
	if grown.Root != a.Path.CommonAncestor(b.Path) {
		t.Errorf("grown root = %v", grown.Root)
	}
	if len(grown.MergedFrom) != 1 || grown.MergedFrom[0] != first[0].ID {
		t.Errorf("MergedFrom = %v", grown.MergedFrom)
	}
	if len(l.Active()) != 1 {
		t.Errorf("active = %d after merge", len(l.Active()))
	}
}

func TestCheckOnEmptyLocator(t *testing.T) {
	l, _ := newLocator(t)
	if created := l.Check(epoch); created != nil {
		t.Error("empty locator created incidents")
	}
}

func TestNilTopologyImpliesNoConnectivity(t *testing.T) {
	l := New(DefaultConfig(), nil)
	dev := hierarchy.MustNew("R", "C", "L", "S", "K", "d1")
	dev2 := hierarchy.MustNew("R2", "C", "L", "S", "K", "d2")
	l.Add(mk(alert.SourcePing, alert.TypePacketLoss, epoch, dev))
	l.Add(mk(alert.SourcePing, alert.TypeEndToEndICMP, epoch, dev2))
	created := l.Check(epoch.Add(time.Second))
	if len(created) != 1 {
		t.Errorf("nil-topology locator should merge all: %d", len(created))
	}
}
