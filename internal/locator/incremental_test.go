package locator

import (
	"math/rand"
	"slices"
	"testing"
	"time"

	"skynet/internal/experimentsutil"
	"skynet/internal/hierarchy"
	"skynet/internal/topology"
)

// scratchComponents is the historical from-scratch partition algorithm —
// collect every live location, sort, union alerting ancestors and
// adjacent devices, group by first-seen root — kept here as the
// reference the incremental union-find must match exactly.
func scratchComponents(l *Locator) [][]hierarchy.Path {
	var locs []hierarchy.Path
	for s := range l.shards {
		for _, pid := range l.shards[s].live {
			locs = append(locs, l.pt.Path(pid))
		}
	}
	slices.SortFunc(locs, hierarchy.Path.Compare)
	if l.cfg.DisableConnectivity {
		return [][]hierarchy.Path{locs}
	}
	idx := make(map[hierarchy.Path]int, len(locs))
	for i, p := range locs {
		idx[p] = i
	}
	parent := make([]int, len(locs))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for i, p := range locs {
		for _, anc := range p.Ancestors() {
			if j, ok := idx[anc]; ok {
				union(i, j)
			}
		}
		if d, ok := l.topo.DeviceByPath(p); ok {
			for _, nb := range l.topo.Neighbors(d.ID) {
				if j, ok := idx[l.topo.Device(nb).Path]; ok {
					union(i, j)
				}
			}
		}
	}
	groups := make(map[int][]hierarchy.Path)
	var order []int
	for i, p := range locs {
		r := find(i)
		if _, ok := groups[r]; !ok {
			order = append(order, r)
		}
		groups[r] = append(groups[r], p)
	}
	out := make([][]hierarchy.Path, 0, len(order))
	for _, r := range order {
		out = append(out, groups[r])
	}
	return out
}

func samePartition(t *testing.T, step int, got, want [][]hierarchy.Path) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("step %d: %d components, want %d", step, len(got), len(want))
	}
	for i := range got {
		if !slices.Equal(got[i], want[i]) {
			t.Fatalf("step %d: component %d mismatch:\n got %v\nwant %v", step, i, got[i], want[i])
		}
	}
}

// TestIncrementalComponentsMatchScratch drives randomized add / expire /
// incident-close sequences through the locator at several worker counts
// and asserts after every Check that the incrementally maintained
// partition — eager unions, cached groups, lazy rebuilds — is identical
// (same groups, same order, same sorted members) to the from-scratch
// reference.
func TestIncrementalComponentsMatchScratch(t *testing.T) {
	topo := topology.MustGenerate(topology.SmallConfig())
	for _, workers := range []int{1, 2, 4, 8} {
		for seed := int64(1); seed <= 3; seed++ {
			cfg := DefaultConfig()
			cfg.Workers = workers
			l := New(cfg, topo)
			r := rand.New(rand.NewSource(seed))
			now := epoch
			for step := 0; step < 60; step++ {
				switch r.Intn(10) {
				case 0:
					// Long gap: expire most of the tree and close incidents.
					now = now.Add(cfg.IncidentTTL + time.Minute)
				case 1, 2:
					// Medium gap: expire the older node streams.
					now = now.Add(cfg.NodeTTL/2 + time.Duration(r.Intn(90))*time.Second)
				default:
					batch := experimentsutil.RandomAlerts(topo, r, 5+r.Intn(40), now)
					l.AddBatch(batch)
					now = now.Add(time.Duration(r.Intn(30)) * time.Second)
				}
				l.Check(now)
				if l.NodeCount() == 0 {
					if len(l.members) != 0 {
						t.Fatalf("step %d: empty tree but %d members", step, len(l.members))
					}
					continue
				}
				samePartition(t, step, l.components(), scratchComponents(l))
			}
		}
	}
}

// TestIncrementalComponentsAblation covers the DisableConnectivity path:
// the cached single group must track the live set exactly.
func TestIncrementalComponentsAblation(t *testing.T) {
	topo := topology.MustGenerate(topology.SmallConfig())
	cfg := DefaultConfig()
	cfg.DisableConnectivity = true
	l := New(cfg, topo)
	r := rand.New(rand.NewSource(7))
	now := epoch
	for step := 0; step < 40; step++ {
		if r.Intn(5) == 0 {
			now = now.Add(cfg.NodeTTL + time.Minute)
		} else {
			l.AddBatch(experimentsutil.RandomAlerts(topo, r, 1+r.Intn(20), now))
			now = now.Add(time.Duration(r.Intn(20)) * time.Second)
		}
		l.Check(now)
		if l.NodeCount() == 0 {
			continue
		}
		samePartition(t, step, l.components(), scratchComponents(l))
	}
}
