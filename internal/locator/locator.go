// Package locator implements SkyNet's locator (§4.2): the hierarchical
// main alert tree, incident-tree generation, and their timeout handling —
// Algorithms 1, 2, and 3 of the paper.
//
// Key design points reproduced from the paper:
//
//   - Alerts live in a location-indexed tree and expire after 5 minutes,
//     a bound chosen because old SNMP agents deliver up to ~2 minutes
//     late and transmission gaps can double that.
//   - Counting is per alert TYPE, not per instance: a probe error that
//     spams a thousand identical "device down" alerts counts once.
//   - Counting is scoped to topologically connected areas: alerts from a
//     device with no link to the other alerting devices belong to a
//     different root cause (the two incident trees of Figure 5c).
//   - Incident thresholds — "2 failure | 1 failure + 2 other | 5 any" in
//     production — are uniform across hierarchy layers.
//   - Incident trees time out after 15 minutes without new alerts.
//
// # Sharded execution
//
// The main alert tree is partitioned into Config.Workers shards hashed by
// location, so AddBatch and expiry run one goroutine per shard, and the
// per-component type counting of Algorithm 2 fans out one goroutine per
// connected component. Everything order-sensitive — incident ID
// assignment, absorption of smaller incidents, the closed list — stays on
// the caller's goroutine, so incident sets, IDs, and ordering are
// identical for every worker count.
package locator

import (
	"fmt"
	"slices"
	"sort"
	"strconv"
	"strings"
	"time"

	"skynet/internal/alert"
	"skynet/internal/hierarchy"
	"skynet/internal/incident"
	"skynet/internal/par"
	"skynet/internal/provenance"
	"skynet/internal/span"
	"skynet/internal/topology"
)

// Thresholds is the incident-generation rule, written A/B+C/D in the
// paper's Figure 9: an area becomes an incident when it has at least A
// failure types, or at least B failure types and C other types, or at
// least D types of any kind. A zero field disables that clause.
type Thresholds struct {
	FailureOnly  int // A
	ComboFailure int // B
	ComboOther   int // C
	AnyAlerts    int // D
}

// ProductionThresholds is the deployed setting "2/1+2/5" (§6.3).
func ProductionThresholds() Thresholds {
	return Thresholds{FailureOnly: 2, ComboFailure: 1, ComboOther: 2, AnyAlerts: 5}
}

// Crossed reports whether an area with the given distinct failure-type and
// total-type counts qualifies as an incident.
func (t Thresholds) Crossed(failureTypes, allTypes int) bool {
	if t.FailureOnly > 0 && failureTypes >= t.FailureOnly {
		return true
	}
	if t.ComboFailure > 0 && t.ComboOther > 0 &&
		failureTypes >= t.ComboFailure && allTypes-failureTypes >= t.ComboOther {
		return true
	}
	if t.AnyAlerts > 0 && allTypes >= t.AnyAlerts {
		return true
	}
	return false
}

// Clause names the threshold clause the given counts satisfy, in the
// order Crossed evaluates them — the human-readable trigger rule of an
// incident's provenance record. Empty when no clause fires.
func (t Thresholds) Clause(failureTypes, allTypes int) string {
	if t.FailureOnly > 0 && failureTypes >= t.FailureOnly {
		return fmt.Sprintf("failure-only (%d failure types ≥ %d)", failureTypes, t.FailureOnly)
	}
	if t.ComboFailure > 0 && t.ComboOther > 0 &&
		failureTypes >= t.ComboFailure && allTypes-failureTypes >= t.ComboOther {
		return fmt.Sprintf("combo (%d failure ≥ %d and %d other ≥ %d)",
			failureTypes, t.ComboFailure, allTypes-failureTypes, t.ComboOther)
	}
	if t.AnyAlerts > 0 && allTypes >= t.AnyAlerts {
		return fmt.Sprintf("any (%d types ≥ %d)", allTypes, t.AnyAlerts)
	}
	return ""
}

// String renders the Figure 9 notation A/B+C/D.
func (t Thresholds) String() string {
	return fmt.Sprintf("%d/%d+%d/%d", t.FailureOnly, t.ComboFailure, t.ComboOther, t.AnyAlerts)
}

// ParseThresholds parses the Figure 9 notation "A/B+C/D".
func ParseThresholds(s string) (Thresholds, error) {
	var t Thresholds
	parts := strings.Split(s, "/")
	if len(parts) != 3 {
		return t, fmt.Errorf("locator: threshold %q: want A/B+C/D", s)
	}
	combo := strings.Split(parts[1], "+")
	if len(combo) != 2 {
		return t, fmt.Errorf("locator: threshold %q: middle term must be B+C", s)
	}
	var err error
	if t.FailureOnly, err = strconv.Atoi(parts[0]); err != nil {
		return t, fmt.Errorf("locator: threshold %q: %w", s, err)
	}
	if t.ComboFailure, err = strconv.Atoi(combo[0]); err != nil {
		return t, fmt.Errorf("locator: threshold %q: %w", s, err)
	}
	if t.ComboOther, err = strconv.Atoi(combo[1]); err != nil {
		return t, fmt.Errorf("locator: threshold %q: %w", s, err)
	}
	if t.AnyAlerts, err = strconv.Atoi(parts[2]); err != nil {
		return t, fmt.Errorf("locator: threshold %q: %w", s, err)
	}
	if t.FailureOnly < 0 || t.ComboFailure < 0 || t.ComboOther < 0 || t.AnyAlerts < 0 {
		return t, fmt.Errorf("locator: threshold %q: negative clause", s)
	}
	return t, nil
}

// Config tunes the locator.
type Config struct {
	// NodeTTL is the main-tree alert lifetime (5 minutes, Algorithm 3).
	NodeTTL time.Duration
	// IncidentTTL closes an incident after this long without new alerts
	// (15 minutes, §4.2).
	IncidentTTL time.Duration
	// Thresholds is the incident-generation rule.
	Thresholds Thresholds
	// TypeAndLocation switches to the Figure 9 baseline that counts
	// alerts of the same type at different locations as distinct —
	// shown in the paper to push false positives from <20 % to 70 %.
	TypeAndLocation bool
	// DisableConnectivity turns off topological component scoping (an
	// ablation; the paper's design has it on).
	DisableConnectivity bool
	// Workers bounds the shard fan-out of AddBatch, expiry, and component
	// counting. 0 means GOMAXPROCS; 1 runs fully serial. Incident sets,
	// IDs, and ordering are identical for every setting.
	Workers int
}

// DefaultConfig returns the production parameters.
func DefaultConfig() Config {
	return Config{
		NodeTTL:     5 * time.Minute,
		IncidentTTL: 15 * time.Minute,
		Thresholds:  ProductionThresholds(),
	}
}

// entry is one live (type) stream at one main-tree node.
type entry struct {
	a        alert.Alert
	lastSeen time.Time
	// lineage holds the provenance lineages waiting on this stream's fate:
	// attributed when an incident sweeps the node up, expired when the
	// stream ages out (empty when recording is off).
	lineage []uint64
}

// node is one main-tree location node. Entries are keyed per stream
// (source, type, circuit set); type-deduplicated counting collapses them
// back to (source, type).
type node struct {
	loc     hierarchy.Path
	entries map[alert.StreamKey]*entry
}

// locShard owns a disjoint, location-hashed subset of the main-tree
// nodes; exactly one goroutine touches a shard per parallel phase.
type locShard struct {
	nodes map[hierarchy.Path]*node
	// expLin stages lineages of streams deleted by the parallel expiry
	// phase, flushed to the recorder serially.
	expLin []uint64
}

// Locator is the streaming §4.2 stage. Add/AddBatch/Check must be called
// from one goroutine (the engine loop); the batch paths internally fan
// out to Config.Workers goroutines.
type Locator struct {
	cfg  Config
	topo *topology.Topology

	workers int
	shards  []locShard

	active []*incident.Incident
	closed []*incident.Incident

	nextID int

	// prov is the optional lineage recorder; nil keeps every provenance
	// branch off the hot path.
	prov *provenance.Recorder

	// spans is the tracing context of the current engine tick; the zero
	// Scope (tracing off) makes every span call a no-op.
	spans span.Scope

	// reused per-Check buffers
	locBuf []hierarchy.Path
	linBuf []uint64
}

// New builds a locator over a topology. The topology may be nil, which
// implies DisableConnectivity.
func New(cfg Config, topo *topology.Topology) *Locator {
	if topo == nil {
		cfg.DisableConnectivity = true
	}
	workers := par.Workers(cfg.Workers)
	l := &Locator{cfg: cfg, topo: topo, workers: workers, shards: make([]locShard, workers)}
	for i := range l.shards {
		l.shards[i].nodes = make(map[hierarchy.Path]*node)
	}
	return l
}

// Workers reports the resolved shard fan-out width.
func (l *Locator) Workers() int { return l.workers }

// EnableProvenance attaches a lineage recorder. Call before the first
// Add; with no recorder the pipeline runs exactly as before.
func (l *Locator) EnableProvenance(rec *provenance.Recorder) { l.prov = rec }

// SetSpans installs the span context for the next AddBatch/Check: the
// batch fan-out, expiry, and component-count phases appear as children
// of the scope's parent span. The engine refreshes it every tick; it
// never affects incident output.
func (l *Locator) SetSpans(sc span.Scope) { l.spans = sc }

// ShardNodes reports the live main-tree node count of one shard.
func (l *Locator) ShardNodes(i int) int { return len(l.shards[i].nodes) }

// shardOf routes a location to its owning shard with an FNV-1a hash over
// the path segments. Routing only affects which goroutine owns the node,
// never the output.
func (l *Locator) shardOf(p hierarchy.Path) int {
	if l.workers == 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 1; i <= p.Depth(); i++ {
		s := p.Segment(hierarchy.Level(i))
		for j := 0; j < len(s); j++ {
			h ^= uint64(s[j])
			h *= prime64
		}
		h ^= 0xff
		h *= prime64
	}
	return int(h % uint64(l.workers))
}

// nodeAt looks a location up across the shards.
func (l *Locator) nodeAt(p hierarchy.Path) (*node, bool) {
	n, ok := l.shards[l.shardOf(p)].nodes[p]
	return n, ok
}

// Add inserts one structured alert — Algorithm 1. The alert joins every
// active incident whose subtree contains its location, and always joins
// the main tree (so incident scopes can still grow).
func (l *Locator) Add(a alert.Alert) {
	var lid uint64
	if l.prov != nil {
		lid = l.takeLineage(&a)
	}
	for _, in := range l.active {
		if in.Root.Contains(a.Location) {
			in.Add(a)
		}
	}
	l.upsert(&l.shards[l.shardOf(a.Location)], a, lid)
}

// takeLineage claims the head lineage a structured alert carries and, if
// an active incident will absorb the alert, resolves it attributed right
// away (the first containing incident in ID-insertion order, matching the
// serial Add semantics). Returns the lineage still waiting on the main
// tree, or 0.
func (l *Locator) takeLineage(a *alert.Alert) uint64 {
	lid := l.prov.TakeEmitted(a.ID)
	if lid == 0 {
		return 0
	}
	for _, in := range l.active {
		if in.Root.Contains(a.Location) {
			l.prov.Attributed(lid, in.ID)
			return 0
		}
	}
	return lid
}

// AddBatch inserts one tick's structured alerts — Algorithm 1 over a
// batch. Active incidents absorb their alerts in batch order (one task
// per incident) while the main-tree shards consolidate theirs (one task
// per shard); both mutations are disjoint, so the result is identical to
// calling Add per alert.
func (l *Locator) AddBatch(batch []alert.Alert) {
	if len(batch) == 0 {
		return
	}
	if l.workers == 1 || len(batch) == 1 {
		for i := range batch {
			l.Add(batch[i])
		}
		return
	}
	// Claim lineages serially before the fan-out: attribution order (first
	// containing incident) and the emitted-map mutation must not depend on
	// worker scheduling.
	var lins []uint64
	if l.prov != nil {
		if cap(l.linBuf) < len(batch) {
			l.linBuf = make([]uint64, len(batch))
		}
		lins = l.linBuf[:len(batch)]
		for i := range batch {
			lins[i] = l.takeLineage(&batch[i])
		}
	}
	nInc := len(l.active)
	// Fork tasks mix kinds: task < nInc absorbs into one incident, the
	// rest consolidate one node shard each.
	f := l.spans.Fork("addbatch_fan", nInc+len(l.shards))
	par.DoTimed(l.workers, nInc+len(l.shards), f.Timer(), func(task int) {
		if task < nInc {
			in := l.active[task]
			for i := range batch {
				if in.Root.Contains(batch[i].Location) {
					in.Add(batch[i])
				}
			}
			return
		}
		shard := &l.shards[task-nInc]
		for i := range batch {
			if l.shardOf(batch[i].Location) == task-nInc {
				var lid uint64
				if lins != nil {
					lid = lins[i]
				}
				l.upsert(shard, batch[i], lid)
			}
		}
	})
}

// upsert consolidates one alert into its main-tree node within the owning
// shard. lid is the head lineage still waiting on this stream's fate
// (0 when recording is off or the lineage was already attributed).
func (l *Locator) upsert(shard *locShard, a alert.Alert, lid uint64) {
	n, ok := shard.nodes[a.Location]
	if !ok {
		n = &node{loc: a.Location, entries: make(map[alert.StreamKey]*entry)}
		shard.nodes[a.Location] = n
	}
	k := a.StreamKey()
	if e, ok := n.entries[k]; ok {
		if a.End.After(e.a.End) {
			e.a.End = a.End
		}
		if a.Value > e.a.Value {
			e.a.Value = a.Value
		}
		e.a.Count += countOf(a)
		if a.Time.After(e.lastSeen) {
			e.lastSeen = a.Time
		}
		if lid != 0 {
			e.lineage = append(e.lineage, lid)
		}
	} else {
		cp := a
		cp.Count = countOf(a)
		e := &entry{a: cp, lastSeen: a.Time}
		if lid != 0 {
			e.lineage = append(e.lineage, lid)
		}
		n.entries[k] = e
	}
}

func countOf(a alert.Alert) int {
	if a.Count > 0 {
		return a.Count
	}
	return 1
}

// Check runs Algorithms 2 and 3 at the given time: expires main-tree
// alerts past NodeTTL, closes incidents past IncidentTTL, and generates
// new incident trees for qualifying connected areas. It returns incidents
// newly created during this call.
func (l *Locator) Check(now time.Time) []*incident.Incident {
	l.expire(now)
	return l.generate(now)
}

// expire implements Algorithm 3: main-tree expiry fans out one task per
// node shard; incident timeout stays serial so the closed list keeps its
// insertion order.
func (l *Locator) expire(now time.Time) {
	f := l.spans.Fork("expire", len(l.shards))
	par.DoTimed(l.workers, len(l.shards), f.Timer(), func(s int) {
		sh := &l.shards[s]
		sh.expLin = sh.expLin[:0]
		for p, n := range sh.nodes {
			for k, e := range n.entries {
				if now.Sub(e.lastSeen) > l.cfg.NodeTTL {
					if len(e.lineage) > 0 {
						sh.expLin = append(sh.expLin, e.lineage...)
					}
					delete(n.entries, k)
				}
			}
			if len(n.entries) == 0 {
				delete(sh.nodes, p)
			}
		}
	})
	if l.prov != nil {
		for s := range l.shards {
			for _, lid := range l.shards[s].expLin {
				l.prov.Expired(lid)
			}
			l.shards[s].expLin = l.shards[s].expLin[:0]
		}
	}
	stillActive := l.active[:0]
	for _, in := range l.active {
		if now.Sub(in.UpdateTime) > l.cfg.IncidentTTL {
			in.Close(in.UpdateTime)
			l.closed = append(l.closed, in)
			if l.prov != nil {
				l.prov.IncidentClosed(in.ID, in.UpdateTime)
			}
		} else {
			stillActive = append(stillActive, in)
		}
	}
	l.active = stillActive
}

// generate implements Algorithm 2 with component scoping. Per-component
// type counting runs in parallel; incident creation — ID assignment and
// absorption — stays serial in component order.
func (l *Locator) generate(now time.Time) []*incident.Incident {
	if l.NodeCount() == 0 {
		return nil
	}
	cmR := l.spans.Begin("components")
	comps := l.components()
	l.spans.End(cmR, len(comps))
	type compCount struct{ failureTypes, allTypes int }
	counts := make([]compCount, len(comps))
	cf := l.spans.Fork("compcount", len(comps))
	par.DoTimed(l.workers, len(comps), cf.Timer(), func(i int) {
		counts[i].failureTypes, counts[i].allTypes = l.countTypes(comps[i])
	})
	var created []*incident.Incident
	for ci, comp := range comps {
		if !l.cfg.Thresholds.Crossed(counts[ci].failureTypes, counts[ci].allTypes) {
			continue
		}
		root := commonAncestor(comp)
		if l.coveredByActive(root) {
			continue
		}
		in := incident.New(l.nextID, root)
		l.nextID++
		// Absorb smaller active incidents inside the new subtree
		// (Algorithm 2, lines 7–9).
		remaining := l.active[:0]
		for _, old := range l.active {
			if root.Contains(old.Root) {
				in.Merge(old)
			} else {
				remaining = append(remaining, old)
			}
		}
		l.active = remaining
		if l.prov != nil {
			l.recordCreation(in, now, comp, counts[ci].failureTypes, counts[ci].allTypes)
		}
		// Copy the component's current alerts into the incident tree.
		for _, loc := range comp {
			if n, ok := l.nodeAt(loc); ok {
				for _, e := range n.entries {
					in.Add(e.a)
					if l.prov != nil && len(e.lineage) > 0 {
						for _, lid := range e.lineage {
							l.prov.Attributed(lid, in.ID)
						}
						e.lineage = e.lineage[:0]
					}
				}
			}
		}
		l.active = append(l.active, in)
		created = append(created, in)
	}
	sort.Slice(created, func(i, j int) bool { return created[i].ID < created[j].ID })
	return created
}

// provComponentCap bounds the component locations stored on an incident's
// provenance record; the true size is recorded separately.
const provComponentCap = 64

// recordCreation opens the incident's provenance record with the trigger
// decision — which threshold clause fired over which connected component.
func (l *Locator) recordCreation(in *incident.Incident, now time.Time, comp []hierarchy.Path, failureTypes, allTypes int) {
	locs := make([]string, 0, min(len(comp), provComponentCap))
	for _, p := range comp {
		if len(locs) == provComponentCap {
			break
		}
		locs = append(locs, p.String())
	}
	l.prov.IncidentCreated(provenance.IncidentInfo{
		ID:            in.ID,
		Root:          in.Root.String(),
		At:            now,
		Rule:          l.cfg.Thresholds.Clause(failureTypes, allTypes),
		Thresholds:    l.cfg.Thresholds.String(),
		FailureTypes:  failureTypes,
		AllTypes:      allTypes,
		Component:     locs,
		ComponentSize: len(comp),
		MergedFrom:    append([]int(nil), in.MergedFrom...),
	})
}

// coveredByActive reports whether an active incident already covers (or
// is rooted exactly at) the candidate root.
func (l *Locator) coveredByActive(root hierarchy.Path) bool {
	for _, in := range l.active {
		if in.Root.Contains(root) {
			return true
		}
	}
	return false
}

// components partitions the alerting locations into connected areas:
// device locations join via topology adjacency, and any location joins
// its alerting ancestors (an alert at a site node spans everything under
// the site).
func (l *Locator) components() [][]hierarchy.Path {
	locs := l.locBuf[:0]
	for s := range l.shards {
		for p := range l.shards[s].nodes {
			locs = append(locs, p)
		}
	}
	slices.SortFunc(locs, hierarchy.Path.Compare)
	l.locBuf = locs
	if l.cfg.DisableConnectivity {
		return [][]hierarchy.Path{locs}
	}
	idx := make(map[hierarchy.Path]int, len(locs))
	for i, p := range locs {
		idx[p] = i
	}
	parent := make([]int, len(locs))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for i, p := range locs {
		// Join alerting ancestors.
		for _, anc := range p.Ancestors() {
			if j, ok := idx[anc]; ok {
				union(i, j)
			}
		}
		// Join adjacent alerting devices.
		if d, ok := l.topo.DeviceByPath(p); ok {
			for _, nb := range l.topo.Neighbors(d.ID) {
				if j, ok := idx[l.topo.Device(nb).Path]; ok {
					union(i, j)
				}
			}
		}
	}
	groups := make(map[int][]hierarchy.Path)
	var order []int
	for i, p := range locs {
		r := find(i)
		if _, ok := groups[r]; !ok {
			order = append(order, r)
		}
		groups[r] = append(groups[r], p)
	}
	out := make([][]hierarchy.Path, 0, len(order))
	for _, r := range order {
		out = append(out, groups[r])
	}
	return out
}

// countTypes counts distinct failure types and total types over a
// component, honoring the TypeAndLocation baseline. Read-only; safe to
// run one goroutine per component.
func (l *Locator) countTypes(comp []hierarchy.Path) (failureTypes, allTypes int) {
	if l.cfg.TypeAndLocation {
		for _, loc := range comp {
			n, _ := l.nodeAt(loc)
			for _, e := range n.entries {
				switch e.a.Class {
				case alert.ClassFailure:
					failureTypes++
					allTypes++
				case alert.ClassAbnormal, alert.ClassRootCause:
					allTypes++
				}
			}
		}
		return failureTypes, allTypes
	}
	failures := map[alert.TypeKey]bool{}
	all := map[alert.TypeKey]bool{}
	for _, loc := range comp {
		n, _ := l.nodeAt(loc)
		for k, e := range n.entries {
			switch e.a.Class {
			case alert.ClassFailure:
				failures[k.TypeKey()] = true
				all[k.TypeKey()] = true
			case alert.ClassAbnormal, alert.ClassRootCause:
				all[k.TypeKey()] = true
			}
		}
	}
	return len(failures), len(all)
}

func commonAncestor(paths []hierarchy.Path) hierarchy.Path {
	if len(paths) == 0 {
		return hierarchy.Root()
	}
	ca := paths[0]
	for _, p := range paths[1:] {
		ca = ca.CommonAncestor(p)
	}
	return ca
}

// Active returns the open incidents ordered by ID. The slice is a fresh
// copy the caller may reorder or append to; the *incident.Incident
// elements are shared with the locator and must not be mutated.
func (l *Locator) Active() []*incident.Incident {
	out := make([]*incident.Incident, len(l.active))
	copy(out, l.active)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Closed returns incidents that have timed out, in closing order. Like
// Active, the slice is a fresh copy owned by the caller.
func (l *Locator) Closed() []*incident.Incident {
	out := make([]*incident.Incident, len(l.closed))
	copy(out, l.closed)
	return out
}

// ActiveCount reports the number of open incidents without copying.
func (l *Locator) ActiveCount() int { return len(l.active) }

// ClosedCount reports the number of timed-out incidents without copying.
func (l *Locator) ClosedCount() int { return len(l.closed) }

// ClosedSince returns closed incidents from index i on, in closing order
// — the telemetry layer's incremental view of Algorithm 3's output.
func (l *Locator) ClosedSince(i int) []*incident.Incident {
	if i < 0 {
		i = 0
	}
	if i >= len(l.closed) {
		return nil
	}
	out := make([]*incident.Incident, len(l.closed)-i)
	copy(out, l.closed[i:])
	return out
}

// NodeCount reports the number of live main-tree nodes (for tests and the
// Fig. 8c measurements).
func (l *Locator) NodeCount() int {
	n := 0
	for i := range l.shards {
		n += len(l.shards[i].nodes)
	}
	return n
}
