// Package locator implements SkyNet's locator (§4.2): the hierarchical
// main alert tree, incident-tree generation, and their timeout handling —
// Algorithms 1, 2, and 3 of the paper.
//
// Key design points reproduced from the paper:
//
//   - Alerts live in a location-indexed tree and expire after 5 minutes,
//     a bound chosen because old SNMP agents deliver up to ~2 minutes
//     late and transmission gaps can double that.
//   - Counting is per alert TYPE, not per instance: a probe error that
//     spams a thousand identical "device down" alerts counts once.
//   - Counting is scoped to topologically connected areas: alerts from a
//     device with no link to the other alerting devices belong to a
//     different root cause (the two incident trees of Figure 5c).
//   - Incident thresholds — "2 failure | 1 failure + 2 other | 5 any" in
//     production — are uniform across hierarchy layers.
//   - Incident trees time out after 15 minutes without new alerts.
//
// # Sharded execution
//
// The main alert tree is partitioned into Config.Workers shards hashed by
// location, so AddBatch and expiry run one goroutine per shard, and the
// per-component type counting of Algorithm 2 fans out one goroutine per
// connected component. Everything order-sensitive — incident ID
// assignment, absorption of smaller incidents, the closed list — stays on
// the caller's goroutine, so incident sets, IDs, and ordering are
// identical for every worker count.
//
// # Dense IDs and incremental connectivity
//
// Locations and type keys are interned into dense integer IDs
// (internal/intern) on the caller's goroutine, so every hot structure is
// an int-indexed slice: node lookup, shard routing, ancestor walks, and
// type deduplication never hash a Path or allocate. Connectivity is
// maintained incrementally: node additions eagerly union into a dynamic
// union-find (work proportional to the change, not the tree), node
// expiry marks the forest dirty for a lazy from-scratch re-link at the
// next Check, and a tick where the alerting set did not change reuses
// the cached component partition untouched — a steady-state Check does
// no connectivity work and allocates nothing.
//
// Scratch ownership: every per-ID table and reuse buffer on Locator is
// written only on the caller's goroutine, except slotOf and the
// per-shard slabs, which parallel phases write strictly for the IDs
// their shard owns (shardOfID routes each ID to exactly one shard).
package locator

import (
	"fmt"
	"slices"
	"strconv"
	"strings"
	"time"

	"skynet/internal/alert"
	"skynet/internal/hierarchy"
	"skynet/internal/incident"
	"skynet/internal/intern"
	"skynet/internal/par"
	"skynet/internal/prof"
	"skynet/internal/provenance"
	"skynet/internal/span"
	"skynet/internal/topology"
)

// Thresholds is the incident-generation rule, written A/B+C/D in the
// paper's Figure 9: an area becomes an incident when it has at least A
// failure types, or at least B failure types and C other types, or at
// least D types of any kind. A zero field disables that clause.
type Thresholds struct {
	FailureOnly  int // A
	ComboFailure int // B
	ComboOther   int // C
	AnyAlerts    int // D
}

// ProductionThresholds is the deployed setting "2/1+2/5" (§6.3).
func ProductionThresholds() Thresholds {
	return Thresholds{FailureOnly: 2, ComboFailure: 1, ComboOther: 2, AnyAlerts: 5}
}

// Crossed reports whether an area with the given distinct failure-type and
// total-type counts qualifies as an incident.
func (t Thresholds) Crossed(failureTypes, allTypes int) bool {
	if t.FailureOnly > 0 && failureTypes >= t.FailureOnly {
		return true
	}
	if t.ComboFailure > 0 && t.ComboOther > 0 &&
		failureTypes >= t.ComboFailure && allTypes-failureTypes >= t.ComboOther {
		return true
	}
	if t.AnyAlerts > 0 && allTypes >= t.AnyAlerts {
		return true
	}
	return false
}

// Clause names the threshold clause the given counts satisfy, in the
// order Crossed evaluates them — the human-readable trigger rule of an
// incident's provenance record. Empty when no clause fires.
func (t Thresholds) Clause(failureTypes, allTypes int) string {
	if t.FailureOnly > 0 && failureTypes >= t.FailureOnly {
		return fmt.Sprintf("failure-only (%d failure types ≥ %d)", failureTypes, t.FailureOnly)
	}
	if t.ComboFailure > 0 && t.ComboOther > 0 &&
		failureTypes >= t.ComboFailure && allTypes-failureTypes >= t.ComboOther {
		return fmt.Sprintf("combo (%d failure ≥ %d and %d other ≥ %d)",
			failureTypes, t.ComboFailure, allTypes-failureTypes, t.ComboOther)
	}
	if t.AnyAlerts > 0 && allTypes >= t.AnyAlerts {
		return fmt.Sprintf("any (%d types ≥ %d)", allTypes, t.AnyAlerts)
	}
	return ""
}

// String renders the Figure 9 notation A/B+C/D.
func (t Thresholds) String() string {
	return fmt.Sprintf("%d/%d+%d/%d", t.FailureOnly, t.ComboFailure, t.ComboOther, t.AnyAlerts)
}

// ParseThresholds parses the Figure 9 notation "A/B+C/D".
func ParseThresholds(s string) (Thresholds, error) {
	var t Thresholds
	parts := strings.Split(s, "/")
	if len(parts) != 3 {
		return t, fmt.Errorf("locator: threshold %q: want A/B+C/D", s)
	}
	combo := strings.Split(parts[1], "+")
	if len(combo) != 2 {
		return t, fmt.Errorf("locator: threshold %q: middle term must be B+C", s)
	}
	var err error
	if t.FailureOnly, err = strconv.Atoi(parts[0]); err != nil {
		return t, fmt.Errorf("locator: threshold %q: %w", s, err)
	}
	if t.ComboFailure, err = strconv.Atoi(combo[0]); err != nil {
		return t, fmt.Errorf("locator: threshold %q: %w", s, err)
	}
	if t.ComboOther, err = strconv.Atoi(combo[1]); err != nil {
		return t, fmt.Errorf("locator: threshold %q: %w", s, err)
	}
	if t.AnyAlerts, err = strconv.Atoi(parts[2]); err != nil {
		return t, fmt.Errorf("locator: threshold %q: %w", s, err)
	}
	if t.FailureOnly < 0 || t.ComboFailure < 0 || t.ComboOther < 0 || t.AnyAlerts < 0 {
		return t, fmt.Errorf("locator: threshold %q: negative clause", s)
	}
	return t, nil
}

// Config tunes the locator.
type Config struct {
	// NodeTTL is the main-tree alert lifetime (5 minutes, Algorithm 3).
	NodeTTL time.Duration
	// IncidentTTL closes an incident after this long without new alerts
	// (15 minutes, §4.2).
	IncidentTTL time.Duration
	// Thresholds is the incident-generation rule.
	Thresholds Thresholds
	// TypeAndLocation switches to the Figure 9 baseline that counts
	// alerts of the same type at different locations as distinct —
	// shown in the paper to push false positives from <20 % to 70 %.
	TypeAndLocation bool
	// DisableConnectivity turns off topological component scoping (an
	// ablation; the paper's design has it on).
	DisableConnectivity bool
	// Workers bounds the shard fan-out of AddBatch, expiry, and component
	// counting. 0 means GOMAXPROCS; 1 runs fully serial. Incident sets,
	// IDs, and ordering are identical for every setting.
	Workers int
}

// DefaultConfig returns the production parameters.
func DefaultConfig() Config {
	return Config{
		NodeTTL:     5 * time.Minute,
		IncidentTTL: 15 * time.Minute,
		Thresholds:  ProductionThresholds(),
	}
}

// entryArenaChunk is how many entry structs a shard arena allocates at
// once; 128 ≈ 45KB per chunk keeps chunk count low through a flood
// without pinning much idle memory afterwards.
const entryArenaChunk = 128

// entryPtrCap is the arena-backed initial capacity of a node's entries
// slice — locations rarely carry more than a handful of live streams.
const entryPtrCap = 4

// entry is one live (type) stream at one main-tree node.
type entry struct {
	a        alert.Alert
	lastSeen time.Time
	// tid is the interned (source, type) key — what per-component type
	// counting deduplicates on.
	tid intern.TypeID
	// lineage holds the provenance lineages waiting on this stream's fate:
	// attributed when an incident sweeps the node up, expired when the
	// stream ages out (empty when recording is off).
	lineage []uint64
}

// node is one main-tree location node. Entries are keyed per stream
// (source, type, circuit set) — a short linear scan, since a location
// rarely carries more than a handful of live streams — and
// type-deduplicated counting collapses them back to (source, type).
type node struct {
	pid     intern.PathID
	entries []*entry
}

// locShard owns a disjoint, location-hashed subset of the main-tree
// nodes; exactly one goroutine touches a shard per parallel phase. Nodes
// live in a slot slab addressed through Locator.slotOf; freed slots and
// entry structs are recycled so steady-state churn does not allocate.
type locShard struct {
	slots     []node
	free      []int32
	live      []intern.PathID
	entryFree []*entry
	// arena hands out entry structs in bulk chunks: fresh streams during
	// a flood would otherwise hit the allocator one ~350-byte struct at a
	// time (the dominant allocation in locator_addcheck). Recycled
	// entries still flow through entryFree first.
	arena []entry
	// ptrArena hands out the initial entries backing for brand-new node
	// slots (recycled slots keep theirs): fixed-cap sub-slices of one
	// bulk allocation, so slot creation never allocates a slice header.
	// The three-index slice caps each node at entryPtrCap; a node with
	// more live streams falls back to a normal append-grow.
	ptrArena []*entry
	// expLin stages lineages of streams deleted by the parallel expiry
	// phase, flushed to the recorder serially.
	expLin []uint64
	// newIDs / remIDs stage node creations and removals from the parallel
	// phases for the serial connectivity update.
	newIDs []intern.PathID
	remIDs []intern.PathID
}

// compCount is one component's distinct-type tally.
type compCount struct{ failureTypes, allTypes int }

// Locator is the streaming §4.2 stage. Add/AddBatch/Check must be called
// from one goroutine (the engine loop); the batch paths internally fan
// out to Config.Workers goroutines.
type Locator struct {
	cfg  Config
	topo *topology.Topology

	workers int
	shards  []locShard

	active []*incident.Incident
	closed []*incident.Incident

	nextID int

	// prov is the optional lineage recorder; nil keeps every provenance
	// branch off the hot path.
	prov *provenance.Recorder

	// spans is the tracing context of the current engine tick; the zero
	// Scope (tracing off) makes every span call a no-op.
	spans span.Scope

	// profL labels the expiry fan-out with its pprof stage; nil
	// (profiling off) makes every call a nil-receiver no-op.
	profL *prof.Labeler

	// Dense-ID layer. Interning happens only on the caller's goroutine
	// (Add, or the serial prologue of AddBatch); parallel phases only
	// read the tables.
	pt *intern.PathTable
	tt *intern.TypeTable

	// Per-PathID tables, grown in lockstep with pt by growTables.
	slotOf     []int32         // slot in the owning shard's slab, -1 when no live node
	shardOfID  []int32         // owning shard, hashed once per interned path
	devOf      []int32         // topology.DeviceID, -1 when not a device
	aliveUnder []int32         // live nodes strictly below this path
	ufParent   []intern.PathID // dynamic union-find over live node IDs
	rootGroup  []int32         // regroup scratch: component root -> group index
	rootEpoch  []uint64

	// pidOfDev maps a topology.DeviceID to its interned path ID (None
	// until the device's path is first interned) — the pre-resolved
	// adjacency bridge, so neighbor joins never touch a Path.
	pidOfDev []intern.PathID

	// Connectivity state. members is the live node IDs in path-sorted
	// order; comps/compIDs cache the current partition, rebuilt only when
	// setChanged and re-linked from scratch only when needRebuild (some
	// node expired — union-find cannot split).
	members     []intern.PathID
	needRebuild bool
	setChanged  bool
	comps       [][]hierarchy.Path
	compIDs     [][]intern.PathID
	compPathBuf []hierarchy.Path
	compIDBuf   []intern.PathID
	memberGroup []int32
	groupSize   []int32
	groupOff    []int32
	groupEpoch  uint64

	// Per-worker type-counting scratch: epoch-tagged dense sets indexed
	// by TypeID, so countTypes allocates nothing.
	seenAll  [][]uint64
	seenFail [][]uint64
	typeMark []uint64

	// Reused per-call buffers.
	linBuf   []uint64
	pidBuf   []intern.PathID
	tidBuf   []intern.TypeID
	addBuf   []intern.PathID
	countBuf []compCount

	// Prebuilt fan-out closures (built once in New, parameters passed
	// through fields), so the steady-state Check allocates nothing.
	expireNow time.Time
	expireFn  func(s int)
	counts    []compCount
	countFn   func(w, i int)
}

// New builds a locator over a topology. The topology may be nil, which
// implies DisableConnectivity.
func New(cfg Config, topo *topology.Topology) *Locator {
	if topo == nil {
		cfg.DisableConnectivity = true
	}
	workers := par.Workers(cfg.Workers)
	l := &Locator{
		cfg: cfg, topo: topo, workers: workers, shards: make([]locShard, workers),
		pt: intern.NewPathTable(), tt: intern.NewTypeTable(),
		seenAll: make([][]uint64, workers), seenFail: make([][]uint64, workers),
		typeMark: make([]uint64, workers),
	}
	if topo != nil {
		l.pidOfDev = make([]intern.PathID, topo.NumDevices())
		for i := range l.pidOfDev {
			l.pidOfDev[i] = intern.None
		}
	}
	l.expireFn = l.expireShard
	l.countFn = func(w, i int) { l.counts[i] = l.countTypes(w, l.compIDs[i]) }
	return l
}

// Workers reports the resolved shard fan-out width.
func (l *Locator) Workers() int { return l.workers }

// EnableProvenance attaches a lineage recorder. Call before the first
// Add; with no recorder the pipeline runs exactly as before.
func (l *Locator) EnableProvenance(rec *provenance.Recorder) { l.prov = rec }

// SetSpans installs the span context for the next AddBatch/Check: the
// batch fan-out, expiry, and component-count phases appear as children
// of the scope's parent span. The engine refreshes it every tick; it
// never affects incident output.
func (l *Locator) SetSpans(sc span.Scope) { l.spans = sc }

// SetProf installs the pprof stage labeler; the expiry fan-out then runs
// under its stage (and shard) labels. Never affects incident output.
func (l *Locator) SetProf(p *prof.Labeler) { l.profL = p }

// ShardNodes reports the live main-tree node count of one shard.
func (l *Locator) ShardNodes(i int) int { return len(l.shards[i].live) }

// shardOf routes a location to its owning shard with an FNV-1a hash over
// the path segments — computed once per interned path and cached in
// shardOfID. Routing only affects which goroutine owns the node, never
// the output.
func (l *Locator) shardOf(p hierarchy.Path) int {
	if l.workers == 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 1; i <= p.Depth(); i++ {
		s := p.Segment(hierarchy.Level(i))
		for j := 0; j < len(s); j++ {
			h ^= uint64(s[j])
			h *= prime64
		}
		h ^= 0xff
		h *= prime64
	}
	return int(h % uint64(l.workers))
}

// growTables extends every per-PathID table to cover newly interned
// paths. Caller's goroutine only, never during a parallel phase.
func (l *Locator) growTables() {
	for id := len(l.slotOf); id < l.pt.Len(); id++ {
		pid := intern.PathID(id)
		p := l.pt.Path(pid)
		l.slotOf = append(l.slotOf, -1)
		l.shardOfID = append(l.shardOfID, int32(l.shardOf(p)))
		l.aliveUnder = append(l.aliveUnder, 0)
		l.ufParent = append(l.ufParent, pid)
		l.rootGroup = append(l.rootGroup, 0)
		l.rootEpoch = append(l.rootEpoch, 0)
		dev := int32(-1)
		if l.topo != nil {
			if d, ok := l.topo.DeviceByPath(p); ok {
				dev = int32(d.ID)
				l.pidOfDev[d.ID] = pid
			}
		}
		l.devOf = append(l.devOf, dev)
	}
}

// nodeByID returns the live node for an ID; the caller must know the
// node is alive (slotOf >= 0).
func (l *Locator) nodeByID(pid intern.PathID) *node {
	return &l.shards[l.shardOfID[pid]].slots[l.slotOf[pid]]
}

// nodeAt looks a location up across the shards (tests and diagnostics).
func (l *Locator) nodeAt(p hierarchy.Path) (*node, bool) {
	pid, ok := l.pt.Lookup(p)
	if !ok || pid >= intern.PathID(len(l.slotOf)) || l.slotOf[pid] < 0 {
		return nil, false
	}
	return l.nodeByID(pid), true
}

// Add inserts one structured alert — Algorithm 1. The alert joins every
// active incident whose subtree contains its location, and always joins
// the main tree (so incident scopes can still grow).
func (l *Locator) Add(a alert.Alert) { l.addRef(&a) }

// addRef is Add without the argument copy — the serial ingest path.
func (l *Locator) addRef(a *alert.Alert) {
	pid := l.pt.Intern(a.Location)
	tid := l.tt.Intern(alert.TypeKey{Source: a.Source, Type: a.Type})
	if l.pt.Len() > len(l.slotOf) {
		l.growTables()
	}
	var lid uint64
	if l.prov != nil {
		lid = l.takeLineage(a)
	}
	for _, in := range l.active {
		if in.Root.Contains(a.Location) {
			in.AddRef(a)
		}
	}
	l.upsert(&l.shards[l.shardOfID[pid]], a, pid, tid, lid)
}

// takeLineage claims the head lineage a structured alert carries and, if
// an active incident will absorb the alert, resolves it attributed right
// away (the first containing incident in ID-insertion order, matching the
// serial Add semantics). Returns the lineage still waiting on the main
// tree, or 0.
func (l *Locator) takeLineage(a *alert.Alert) uint64 {
	lid := l.prov.TakeEmitted(a.ID)
	if lid == 0 {
		return 0
	}
	for _, in := range l.active {
		if in.Root.Contains(a.Location) {
			l.prov.Attributed(lid, in.ID)
			return 0
		}
	}
	return lid
}

// AddBatch inserts one tick's structured alerts — Algorithm 1 over a
// batch. The serial prologue interns every location and type key, so the
// fan-out below only reads the tables. Active incidents absorb their
// alerts in batch order (one task per incident) while the main-tree
// shards consolidate theirs (one task per shard); both mutations are
// disjoint, so the result is identical to calling Add per alert.
func (l *Locator) AddBatch(batch []alert.Alert) {
	if len(batch) == 0 {
		return
	}
	if l.workers == 1 || len(batch) == 1 {
		for i := range batch {
			l.addRef(&batch[i])
		}
		return
	}
	if cap(l.pidBuf) < len(batch) {
		l.pidBuf = make([]intern.PathID, len(batch))
		l.tidBuf = make([]intern.TypeID, len(batch))
	}
	pids := l.pidBuf[:len(batch)]
	tids := l.tidBuf[:len(batch)]
	for i := range batch {
		pids[i] = l.pt.Intern(batch[i].Location)
		tids[i] = l.tt.Intern(alert.TypeKey{Source: batch[i].Source, Type: batch[i].Type})
	}
	if l.pt.Len() > len(l.slotOf) {
		l.growTables()
	}
	// Claim lineages serially before the fan-out: attribution order (first
	// containing incident) and the emitted-map mutation must not depend on
	// worker scheduling.
	var lins []uint64
	if l.prov != nil {
		if cap(l.linBuf) < len(batch) {
			l.linBuf = make([]uint64, len(batch))
		}
		lins = l.linBuf[:len(batch)]
		for i := range batch {
			lins[i] = l.takeLineage(&batch[i])
		}
	}
	nInc := len(l.active)
	// Fork tasks mix kinds: task < nInc absorbs into one incident, the
	// rest consolidate one node shard each.
	f := l.spans.Fork("addbatch_fan", nInc+len(l.shards))
	par.DoTimed(l.workers, nInc+len(l.shards), f.Timer(), func(task int) {
		if task < nInc {
			in := l.active[task]
			for i := range batch {
				if in.Root.Contains(batch[i].Location) {
					in.AddRef(&batch[i])
				}
			}
			return
		}
		s := int32(task - nInc)
		shard := &l.shards[s]
		for i := range batch {
			if l.shardOfID[pids[i]] == s {
				var lid uint64
				if lins != nil {
					lid = lins[i]
				}
				l.upsert(shard, &batch[i], pids[i], tids[i], lid)
			}
		}
	})
}

// upsert consolidates one alert into its main-tree node within the owning
// shard. lid is the head lineage still waiting on this stream's fate
// (0 when recording is off or the lineage was already attributed).
func (l *Locator) upsert(shard *locShard, a *alert.Alert, pid intern.PathID, tid intern.TypeID, lid uint64) {
	slot := l.slotOf[pid]
	var n *node
	if slot < 0 {
		if k := len(shard.free); k > 0 {
			slot = shard.free[k-1]
			shard.free = shard.free[:k-1]
		} else {
			shard.slots = append(shard.slots, node{})
			slot = int32(len(shard.slots) - 1)
		}
		n = &shard.slots[slot]
		n.pid = pid
		if n.entries == nil {
			if len(shard.ptrArena) < entryPtrCap {
				shard.ptrArena = make([]*entry, entryPtrCap*entryArenaChunk)
			}
			n.entries = shard.ptrArena[:0:entryPtrCap]
			shard.ptrArena = shard.ptrArena[entryPtrCap:]
		}
		n.entries = n.entries[:0]
		l.slotOf[pid] = slot
		shard.live = append(shard.live, pid)
		shard.newIDs = append(shard.newIDs, pid)
	} else {
		n = &shard.slots[slot]
	}
	for _, e := range n.entries {
		if e.tid == tid && e.a.CircuitSet == a.CircuitSet {
			if a.End.After(e.a.End) {
				e.a.End = a.End
			}
			if a.Value > e.a.Value {
				e.a.Value = a.Value
			}
			e.a.Count += countOf(*a)
			if a.Time.After(e.lastSeen) {
				e.lastSeen = a.Time
			}
			if lid != 0 {
				e.lineage = append(e.lineage, lid)
			}
			return
		}
	}
	var e *entry
	if k := len(shard.entryFree); k > 0 {
		e = shard.entryFree[k-1]
		shard.entryFree = shard.entryFree[:k-1]
	} else {
		if len(shard.arena) == 0 {
			shard.arena = make([]entry, entryArenaChunk)
		}
		e = &shard.arena[0]
		shard.arena = shard.arena[1:]
	}
	e.a = *a
	e.a.Count = countOf(*a)
	e.lastSeen = a.Time
	e.tid = tid
	e.lineage = e.lineage[:0]
	if lid != 0 {
		e.lineage = append(e.lineage, lid)
	}
	n.entries = append(n.entries, e)
}

func countOf(a alert.Alert) int {
	if a.Count > 0 {
		return a.Count
	}
	return 1
}

// Check runs Algorithms 2 and 3 at the given time: expires main-tree
// alerts past NodeTTL, closes incidents past IncidentTTL, and generates
// new incident trees for qualifying connected areas. It returns incidents
// newly created during this call.
func (l *Locator) Check(now time.Time) []*incident.Incident {
	l.flushAdds()
	l.expire(now)
	return l.generate(now)
}

// expire implements Algorithm 3: main-tree expiry fans out one task per
// node shard; incident timeout stays serial so the closed list keeps its
// insertion order.
func (l *Locator) expire(now time.Time) {
	f := l.spans.Fork("expire", len(l.shards))
	l.expireNow = now
	l.profL.Enter(prof.StageLocatorExpire)
	par.DoTimed(l.workers, len(l.shards), f.Timer(), l.expireFn)
	l.profL.Exit()
	removed := false
	for s := range l.shards {
		sh := &l.shards[s]
		if l.prov != nil {
			for _, lid := range sh.expLin {
				l.prov.Expired(lid)
			}
		}
		sh.expLin = sh.expLin[:0]
		if len(sh.remIDs) > 0 {
			removed = true
			for _, pid := range sh.remIDs {
				for anc := l.pt.Parent(pid); anc != intern.None; anc = l.pt.Parent(anc) {
					l.aliveUnder[anc]--
				}
			}
			sh.remIDs = sh.remIDs[:0]
		}
	}
	if removed {
		// Union-find cannot split, so removals invalidate the forest; keep
		// the sorted member list current and re-link lazily at the next
		// components call.
		keep := l.members[:0]
		for _, pid := range l.members {
			if l.slotOf[pid] >= 0 {
				keep = append(keep, pid)
			}
		}
		l.members = keep
		l.needRebuild = true
		l.setChanged = true
	}
	stillActive := l.active[:0]
	for _, in := range l.active {
		if now.Sub(in.UpdateTime) > l.cfg.IncidentTTL {
			in.Close(in.UpdateTime)
			l.closed = append(l.closed, in)
			if l.prov != nil {
				l.prov.IncidentClosed(in.ID, in.UpdateTime)
			}
		} else {
			stillActive = append(stillActive, in)
		}
	}
	l.active = stillActive
}

// expireShard ages out one shard's streams at l.expireNow — the task
// body of expire's fan-out, prebuilt so the call allocates nothing.
func (l *Locator) expireShard(s int) {
	now := l.expireNow
	sh := &l.shards[s]
	sh.expLin = sh.expLin[:0]
	for li := 0; li < len(sh.live); {
		pid := sh.live[li]
		slot := l.slotOf[pid]
		n := &sh.slots[slot]
		keep := n.entries[:0]
		for _, e := range n.entries {
			if now.Sub(e.lastSeen) > l.cfg.NodeTTL {
				if len(e.lineage) > 0 {
					sh.expLin = append(sh.expLin, e.lineage...)
					e.lineage = e.lineage[:0]
				}
				sh.entryFree = append(sh.entryFree, e)
			} else {
				keep = append(keep, e)
			}
		}
		n.entries = keep
		if len(keep) == 0 {
			l.slotOf[pid] = -1
			sh.free = append(sh.free, slot)
			sh.remIDs = append(sh.remIDs, pid)
			last := len(sh.live) - 1
			sh.live[li] = sh.live[last]
			sh.live = sh.live[:last]
		} else {
			li++
		}
	}
}

// flushAdds folds node creations staged by Add/AddBatch into the
// connectivity state: sorted-merges the new IDs into the member list,
// bumps ancestor live-counts, and eagerly unions each new node with its
// nearest alive ancestor, its alive descendants, and its alive topology
// neighbors — work proportional to the change, never the tree.
func (l *Locator) flushAdds() {
	total := 0
	for s := range l.shards {
		total += len(l.shards[s].newIDs)
	}
	if total == 0 {
		return
	}
	l.setChanged = true
	buf := l.addBuf[:0]
	for s := range l.shards {
		sh := &l.shards[s]
		buf = append(buf, sh.newIDs...)
		sh.newIDs = sh.newIDs[:0]
	}
	l.addBuf = buf
	slices.SortFunc(buf, func(a, b intern.PathID) int {
		return l.pt.Path(a).Compare(l.pt.Path(b))
	})
	for _, pid := range buf {
		for anc := l.pt.Parent(pid); anc != intern.None; anc = l.pt.Parent(anc) {
			l.aliveUnder[anc]++
		}
	}
	l.mergeMembers(buf)
	if l.cfg.DisableConnectivity {
		return
	}
	for _, pid := range buf {
		l.ufParent[pid] = pid
	}
	for _, pid := range buf {
		l.linkNearestAncestor(pid)
		// A node arriving above already-alive descendants must adopt them:
		// they linked past it (or to nothing) when they arrived. The
		// descendants are the contiguous sorted-member run after pid.
		if l.aliveUnder[pid] > 0 {
			p := l.pt.Path(pid)
			i, _ := slices.BinarySearchFunc(l.members, pid, func(a, b intern.PathID) int {
				return l.pt.Path(a).Compare(l.pt.Path(b))
			})
			for j := i + 1; j < len(l.members); j++ {
				if !p.Contains(l.pt.Path(l.members[j])) {
					break
				}
				l.union(pid, l.members[j])
			}
		}
		l.linkNeighbors(pid)
	}
}

// mergeMembers merges the path-sorted new IDs into the path-sorted
// member list in place (back-to-front, like a merge step).
func (l *Locator) mergeMembers(add []intern.PathID) {
	old := len(l.members)
	l.members = append(l.members, add...)
	m := l.members
	i, j := old-1, len(add)-1
	for k := len(m) - 1; j >= 0; k-- {
		if i >= 0 && l.pt.Path(m[i]).Compare(l.pt.Path(add[j])) > 0 {
			m[k] = m[i]
			i--
		} else {
			m[k] = add[j]
			j--
		}
	}
}

// linkNearestAncestor unions a live node with its nearest alive ancestor.
// Chained over all members this connects every alive ancestor relation:
// the nearest alive ancestor's own up-link continues the chain.
func (l *Locator) linkNearestAncestor(pid intern.PathID) {
	for anc := l.pt.Parent(pid); anc != intern.None; anc = l.pt.Parent(anc) {
		if l.slotOf[anc] >= 0 {
			l.union(pid, anc)
			break
		}
	}
}

// linkNeighbors unions a live device node with its alive topology
// neighbors, through the pre-resolved DeviceID -> PathID bridge.
func (l *Locator) linkNeighbors(pid intern.PathID) {
	d := l.devOf[pid]
	if d < 0 {
		return
	}
	for _, nb := range l.topo.Neighbors(topology.DeviceID(d)) {
		np := l.pidOfDev[nb]
		if np != intern.None && l.slotOf[np] >= 0 {
			l.union(pid, np)
		}
	}
}

func (l *Locator) find(x intern.PathID) intern.PathID {
	for l.ufParent[x] != x {
		l.ufParent[x] = l.ufParent[l.ufParent[x]]
		x = l.ufParent[x]
	}
	return x
}

func (l *Locator) union(a, b intern.PathID) {
	ra, rb := l.find(a), l.find(b)
	if ra != rb {
		l.ufParent[rb] = ra
	}
}

// rebuild re-links the union-find from scratch over the current member
// list — the lazy answer to expiry, which union-find cannot express
// incrementally. Up-links alone suffice here: every member links its
// nearest alive ancestor, so no descendant adoption pass is needed.
func (l *Locator) rebuild() {
	for _, pid := range l.members {
		l.ufParent[pid] = pid
	}
	for _, pid := range l.members {
		l.linkNearestAncestor(pid)
		l.linkNeighbors(pid)
	}
}

// components returns the partition of alerting locations into connected
// areas: device locations join via topology adjacency, and any location
// joins its alerting ancestors (an alert at a site node spans everything
// under the site). The partition is cached — a Check where the alerting
// set did not change returns it untouched — and group order matches the
// historical from-scratch algorithm: groups by first-seen member in path
// order, members path-sorted.
func (l *Locator) components() [][]hierarchy.Path {
	if !l.setChanged {
		return l.comps
	}
	n := len(l.members)
	if cap(l.compPathBuf) < n {
		l.compPathBuf = make([]hierarchy.Path, 0, 2*n)
	}
	paths := l.compPathBuf[:n]
	if l.cfg.DisableConnectivity {
		for i, pid := range l.members {
			paths[i] = l.pt.Path(pid)
		}
		l.comps = append(l.comps[:0], paths)
		l.compIDs = append(l.compIDs[:0], l.members)
		l.setChanged = false
		l.needRebuild = false
		return l.comps
	}
	if l.needRebuild {
		l.rebuild()
		l.needRebuild = false
	}
	l.regroup()
	l.setChanged = false
	return l.comps
}

// regroup materializes the cached component lists from the union-find:
// epoch-tagged root scratch maps each component root to a dense group
// index in first-seen member order, then a counting pass carves the
// member list into per-group sub-slices of two reused backing arrays.
func (l *Locator) regroup() {
	n := len(l.members)
	l.groupEpoch++
	if cap(l.memberGroup) < n {
		l.memberGroup = make([]int32, 0, 2*n)
	}
	mg := l.memberGroup[:n]
	ng := int32(0)
	for i, pid := range l.members {
		r := l.find(pid)
		if l.rootEpoch[r] != l.groupEpoch {
			l.rootEpoch[r] = l.groupEpoch
			l.rootGroup[r] = ng
			ng++
		}
		mg[i] = l.rootGroup[r]
	}
	if cap(l.groupSize) < int(ng) {
		l.groupSize = make([]int32, 0, 2*ng)
		l.groupOff = make([]int32, 0, 2*ng)
	}
	sizes := l.groupSize[:ng]
	offs := l.groupOff[:ng]
	for g := range sizes {
		sizes[g] = 0
	}
	for _, g := range mg {
		sizes[g]++
	}
	off := int32(0)
	for g := range sizes {
		offs[g] = off
		off += sizes[g]
	}
	if cap(l.compIDBuf) < n {
		l.compIDBuf = make([]intern.PathID, 0, 2*n)
	}
	ids := l.compIDBuf[:n]
	paths := l.compPathBuf[:n]
	for i, pid := range l.members {
		g := mg[i]
		ids[offs[g]] = pid
		paths[offs[g]] = l.pt.Path(pid)
		offs[g]++
	}
	l.comps = l.comps[:0]
	l.compIDs = l.compIDs[:0]
	start := int32(0)
	for g := int32(0); g < ng; g++ {
		end := start + sizes[g]
		l.comps = append(l.comps, paths[start:end:end])
		l.compIDs = append(l.compIDs, ids[start:end:end])
		start = end
	}
}

// generate implements Algorithm 2 with component scoping. Per-component
// type counting runs in parallel; incident creation — ID assignment and
// absorption — stays serial in component order.
func (l *Locator) generate(now time.Time) []*incident.Incident {
	if len(l.members) == 0 {
		return nil
	}
	cmR := l.spans.Begin("components")
	comps := l.components()
	l.spans.End(cmR, len(comps))
	if cap(l.countBuf) < len(comps) {
		l.countBuf = make([]compCount, 0, 2*len(comps))
	}
	counts := l.countBuf[:len(comps)]
	l.counts = counts
	l.growTypeScratch()
	cf := l.spans.Fork("compcount", len(comps))
	par.DoTimedWorkers(l.workers, len(comps), cf.Timer(), l.countFn)
	var created []*incident.Incident
	for ci, comp := range comps {
		if !l.cfg.Thresholds.Crossed(counts[ci].failureTypes, counts[ci].allTypes) {
			continue
		}
		root := comp[0].CommonAncestor(comp[len(comp)-1])
		if l.coveredByActive(root) {
			continue
		}
		in := incident.New(l.nextID, root)
		l.nextID++
		// Pre-size the incident's entry slab and index for everything it
		// is about to receive — the entries of the active incidents it
		// absorbs plus the component's streams — so the merge and copy
		// below never reallocate either.
		nEntries := 0
		for _, old := range l.active {
			if root.Contains(old.Root) {
				nEntries += old.EntryCount()
			}
		}
		for _, pid := range l.compIDs[ci] {
			nEntries += len(l.nodeByID(pid).entries)
		}
		in.Grow(nEntries)
		// Absorb smaller active incidents inside the new subtree
		// (Algorithm 2, lines 7–9).
		remaining := l.active[:0]
		for _, old := range l.active {
			if root.Contains(old.Root) {
				in.Merge(old)
			} else {
				remaining = append(remaining, old)
			}
		}
		l.active = remaining
		if l.prov != nil {
			l.recordCreation(in, now, comp, counts[ci].failureTypes, counts[ci].allTypes)
		}
		// Copy the component's current alerts into the incident tree.
		for _, pid := range l.compIDs[ci] {
			n := l.nodeByID(pid)
			for _, e := range n.entries {
				in.AddRef(&e.a)
				if l.prov != nil && len(e.lineage) > 0 {
					for _, lid := range e.lineage {
						l.prov.Attributed(lid, in.ID)
					}
					e.lineage = e.lineage[:0]
				}
			}
		}
		l.active = append(l.active, in)
		created = append(created, in)
	}
	slices.SortFunc(created, func(a, b *incident.Incident) int { return a.ID - b.ID })
	return created
}

// growTypeScratch sizes the per-worker epoch sets to the type table.
func (l *Locator) growTypeScratch() {
	nt := l.tt.Len()
	for w := 0; w < l.workers; w++ {
		if len(l.seenAll[w]) < nt {
			l.seenAll[w] = append(l.seenAll[w], make([]uint64, nt-len(l.seenAll[w]))...)
			l.seenFail[w] = append(l.seenFail[w], make([]uint64, nt-len(l.seenFail[w]))...)
		}
	}
}

// provComponentCap bounds the component locations stored on an incident's
// provenance record; the true size is recorded separately.
const provComponentCap = 64

// recordCreation opens the incident's provenance record with the trigger
// decision — which threshold clause fired over which connected component.
func (l *Locator) recordCreation(in *incident.Incident, now time.Time, comp []hierarchy.Path, failureTypes, allTypes int) {
	locs := make([]string, 0, min(len(comp), provComponentCap))
	for _, p := range comp {
		if len(locs) == provComponentCap {
			break
		}
		locs = append(locs, p.String())
	}
	l.prov.IncidentCreated(provenance.IncidentInfo{
		ID:            in.ID,
		Root:          in.Root.String(),
		At:            now,
		Rule:          l.cfg.Thresholds.Clause(failureTypes, allTypes),
		Thresholds:    l.cfg.Thresholds.String(),
		FailureTypes:  failureTypes,
		AllTypes:      allTypes,
		Component:     locs,
		ComponentSize: len(comp),
		MergedFrom:    append([]int(nil), in.MergedFrom...),
	})
}

// coveredByActive reports whether an active incident already covers (or
// is rooted exactly at) the candidate root.
func (l *Locator) coveredByActive(root hierarchy.Path) bool {
	for _, in := range l.active {
		if in.Root.Contains(root) {
			return true
		}
	}
	return false
}

// countTypes counts distinct failure types and total types over a
// component through worker w's epoch-tagged scratch, honoring the
// TypeAndLocation baseline. Read-only on shared state; safe to run one
// goroutine per component as long as worker indexes are distinct.
func (l *Locator) countTypes(w int, comp []intern.PathID) (c compCount) {
	if l.cfg.TypeAndLocation {
		for _, pid := range comp {
			n := l.nodeByID(pid)
			for _, e := range n.entries {
				switch e.a.Class {
				case alert.ClassFailure:
					c.failureTypes++
					c.allTypes++
				case alert.ClassAbnormal, alert.ClassRootCause:
					c.allTypes++
				}
			}
		}
		return c
	}
	l.typeMark[w]++
	mark := l.typeMark[w]
	seenAll, seenFail := l.seenAll[w], l.seenFail[w]
	for _, pid := range comp {
		n := l.nodeByID(pid)
		for _, e := range n.entries {
			switch e.a.Class {
			case alert.ClassFailure:
				if seenFail[e.tid] != mark {
					seenFail[e.tid] = mark
					c.failureTypes++
				}
				if seenAll[e.tid] != mark {
					seenAll[e.tid] = mark
					c.allTypes++
				}
			case alert.ClassAbnormal, alert.ClassRootCause:
				if seenAll[e.tid] != mark {
					seenAll[e.tid] = mark
					c.allTypes++
				}
			}
		}
	}
	return c
}

// Active returns the open incidents ordered by ID. The slice is a fresh
// copy the caller may reorder or append to; the *incident.Incident
// elements are shared with the locator and must not be mutated.
func (l *Locator) Active() []*incident.Incident {
	return l.ActiveAppend(make([]*incident.Incident, 0, len(l.active)))
}

// ActiveAppend appends the open incidents to dst, oldest first, and
// returns the extended slice — the allocation-free variant of Active for
// per-tick callers that reuse a buffer.
func (l *Locator) ActiveAppend(dst []*incident.Incident) []*incident.Incident {
	n := len(dst)
	dst = append(dst, l.active...)
	slices.SortFunc(dst[n:], func(a, b *incident.Incident) int { return a.ID - b.ID })
	return dst
}

// Closed returns incidents that have timed out, in closing order. Like
// Active, the slice is a fresh copy owned by the caller.
func (l *Locator) Closed() []*incident.Incident {
	out := make([]*incident.Incident, len(l.closed))
	copy(out, l.closed)
	return out
}

// ActiveCount reports the number of open incidents without copying.
func (l *Locator) ActiveCount() int { return len(l.active) }

// ClosedCount reports the number of timed-out incidents without copying.
func (l *Locator) ClosedCount() int { return len(l.closed) }

// ClosedSince returns closed incidents from index i on, in closing order
// — the telemetry layer's incremental view of Algorithm 3's output.
func (l *Locator) ClosedSince(i int) []*incident.Incident {
	if i < 0 {
		i = 0
	}
	if i >= len(l.closed) {
		return nil
	}
	out := make([]*incident.Incident, len(l.closed)-i)
	copy(out, l.closed[i:])
	return out
}

// NodeCount reports the number of live main-tree nodes (for tests and the
// Fig. 8c measurements).
func (l *Locator) NodeCount() int {
	n := 0
	for i := range l.shards {
		n += len(l.shards[i].live)
	}
	return n
}
