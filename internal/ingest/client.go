package ingest

import (
	"context"
	"fmt"
	"net"
	"time"

	"skynet/internal/alert"
)

// TCPClient streams alerts to an ingest server as JSON Lines over one TCP
// connection. Not safe for concurrent use.
type TCPClient struct {
	conn net.Conn
	enc  *alert.Encoder
}

// DialTCP connects to a server's TCP listener.
func DialTCP(ctx context.Context, addr string) (*TCPClient, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ingest: dial tcp %s: %w", addr, err)
	}
	return &TCPClient{conn: conn, enc: alert.NewEncoder(conn)}, nil
}

// Send buffers one alert; call Flush to push buffered alerts to the wire.
func (c *TCPClient) Send(a *alert.Alert) error {
	return c.enc.Encode(a)
}

// Flush writes buffered alerts to the connection.
func (c *TCPClient) Flush() error { return c.enc.Flush() }

// Close flushes and closes the connection.
func (c *TCPClient) Close() error {
	flushErr := c.enc.Flush()
	closeErr := c.conn.Close()
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// UDPClient sends alerts as single compact-format datagrams — the
// fire-and-forget path device-local agents use. Safe for sequential use.
type UDPClient struct {
	conn net.Conn
	buf  []byte
}

// DialUDP creates a UDP client for the server's datagram listener.
func DialUDP(addr string) (*UDPClient, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("ingest: dial udp %s: %w", addr, err)
	}
	return &UDPClient{conn: conn, buf: make([]byte, 0, 512)}, nil
}

// Send transmits one alert as one datagram.
func (c *UDPClient) Send(a *alert.Alert) error {
	c.buf = alert.AppendWire(c.buf[:0], a)
	if len(c.buf) > alert.MaxLineBytes {
		return alert.ErrLineTooLong
	}
	if _, err := c.conn.Write(c.buf); err != nil {
		return fmt.Errorf("ingest: udp send: %w", err)
	}
	return nil
}

// Close closes the client socket.
func (c *UDPClient) Close() error { return c.conn.Close() }

// WaitForAccepted polls the server until at least n alerts were accepted
// or the deadline passes — a test/ops helper for UDP's fire-and-forget
// semantics.
func WaitForAccepted(s *Server, n int, deadline time.Duration) bool {
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		if s.Stats().AlertsAccepted >= n {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return s.Stats().AlertsAccepted >= n
}
