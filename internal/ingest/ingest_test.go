package ingest

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"skynet/internal/alert"
	"skynet/internal/hierarchy"
)

var epoch = time.Date(2024, 7, 2, 11, 0, 0, 0, time.UTC)

func testAlert(id uint64) alert.Alert {
	return alert.Alert{
		ID: id, Source: alert.SourcePing, Type: alert.TypePacketLoss,
		Class: alert.ClassFailure, Time: epoch, End: epoch,
		Location: hierarchy.MustNew("RG01", "CT01", "LS01", "ST01", "CL01", "dev"),
		Value:    0.3, Count: 1,
	}
}

// collector gathers handled alerts thread-safely.
type collector struct {
	mu  sync.Mutex
	got []alert.Alert
}

func (c *collector) handle(a alert.Alert) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.got = append(c.got, a)
}

func (c *collector) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.got)
}

// waitHandled blocks until n alerts have reached the handler or the
// deadline passes. Enqueue counts an alert as accepted before the
// dispatch goroutine delivers it, so accepted may run ahead of handled.
func (c *collector) waitHandled(n int, deadline time.Duration) int {
	end := time.Now().Add(deadline)
	for c.len() < n && time.Now().Before(end) {
		time.Sleep(2 * time.Millisecond)
	}
	return c.len()
}

func startServer(t *testing.T, cfg Config) (*Server, *collector) {
	t.Helper()
	col := &collector{}
	s, err := Listen(cfg, col.handle)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, col
}

func TestTCPRoundTrip(t *testing.T) {
	s, col := startServer(t, DefaultConfig())
	c, err := DialTCP(context.Background(), s.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 1; i <= 20; i++ {
		a := testAlert(uint64(i))
		if err := c.Send(&a); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if !WaitForAccepted(s, 20, 2*time.Second) {
		t.Fatalf("accepted %d of 20", s.Stats().AlertsAccepted)
	}
	if got := col.waitHandled(20, 2*time.Second); got != 20 {
		t.Errorf("handled %d of 20", got)
	}
	if s.Stats().TCPConnections != 1 {
		t.Errorf("connections = %d", s.Stats().TCPConnections)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	s, col := startServer(t, DefaultConfig())
	c, err := DialUDP(s.UDPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 1; i <= 10; i++ {
		a := testAlert(uint64(i))
		if err := c.Send(&a); err != nil {
			t.Fatal(err)
		}
	}
	if !WaitForAccepted(s, 10, 2*time.Second) {
		t.Fatalf("accepted %d of 10 (UDP loopback should not drop)", s.Stats().AlertsAccepted)
	}
	c.mustMatch(t, col)
}

func (c *UDPClient) mustMatch(t *testing.T, col *collector) {
	t.Helper()
	col.mu.Lock()
	defer col.mu.Unlock()
	for _, a := range col.got {
		if a.Source != alert.SourcePing || a.Type != alert.TypePacketLoss {
			t.Errorf("mangled alert: %+v", a)
		}
	}
}

func TestUDPRejectsGarbage(t *testing.T) {
	s, col := startServer(t, DefaultConfig())
	c, err := DialUDP(s.UDPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.conn.Write([]byte("not|a|valid|alert")); err != nil {
		t.Fatal(err)
	}
	good := testAlert(1)
	if err := c.Send(&good); err != nil {
		t.Fatal(err)
	}
	if !WaitForAccepted(s, 1, 2*time.Second) {
		t.Fatal("good alert not accepted")
	}
	st := s.Stats()
	if st.AlertsRejected != 1 {
		t.Errorf("rejected = %d, want 1", st.AlertsRejected)
	}
	if col.len() != 1 {
		t.Errorf("handled = %d, want 1", col.len())
	}
}

func TestTCPRejectsInvalidAlert(t *testing.T) {
	s, _ := startServer(t, DefaultConfig())
	c, err := DialTCP(context.Background(), s.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	bad := testAlert(1)
	bad.Location = hierarchy.Root() // invalid: root location
	if err := c.Send(&bad); err != nil {
		t.Fatal(err)
	}
	good := testAlert(2)
	if err := c.Send(&good); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if !WaitForAccepted(s, 1, 2*time.Second) {
		t.Fatal("good alert not accepted")
	}
	if st := s.Stats(); st.AlertsRejected != 1 {
		t.Errorf("rejected = %d, want 1", st.AlertsRejected)
	}
}

func TestConnectionLimit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxConns = 1
	s, _ := startServer(t, cfg)
	c1, err := DialTCP(context.Background(), s.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	a := testAlert(1)
	if err := c1.Send(&a); err != nil {
		t.Fatal(err)
	}
	if err := c1.Flush(); err != nil {
		t.Fatal(err)
	}
	if !WaitForAccepted(s, 1, 2*time.Second) {
		t.Fatal("first connection not serving")
	}
	// The second connection is accepted then closed by the server; reads
	// on it will hit EOF quickly.
	c2, err := DialTCP(context.Background(), s.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	deadline := time.Now().Add(2 * time.Second)
	closed := false
	buf := make([]byte, 1)
	c2.conn.SetReadDeadline(deadline)
	if _, err := c2.conn.Read(buf); err != nil {
		closed = true
	}
	if !closed {
		t.Error("second connection not closed by the limiter")
	}
}

func TestListenErrors(t *testing.T) {
	if _, err := Listen(DefaultConfig(), nil); err == nil {
		t.Error("nil handler accepted")
	}
	bad := DefaultConfig()
	bad.TCPAddr = "256.0.0.1:99999"
	if _, err := Listen(bad, func(alert.Alert) {}); err == nil {
		t.Error("bad TCP address accepted")
	}
	bad = DefaultConfig()
	bad.UDPAddr = "256.0.0.1:99999"
	if _, err := Listen(bad, func(alert.Alert) {}); err == nil {
		t.Error("bad UDP address accepted")
	}
}

func TestDisabledListeners(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UDPAddr = ""
	s, _ := startServer(t, cfg)
	if s.UDPAddr() != nil {
		t.Error("UDP should be disabled")
	}
	if s.TCPAddr() == nil {
		t.Error("TCP should be enabled")
	}
	cfg = DefaultConfig()
	cfg.TCPAddr = ""
	s2, _ := startServer(t, cfg)
	if s2.TCPAddr() != nil {
		t.Error("TCP should be disabled")
	}
}

func TestCloseIdempotentAndDrains(t *testing.T) {
	s, col := startServer(t, DefaultConfig())
	c, err := DialTCP(context.Background(), s.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	a := testAlert(1)
	c.Send(&a)
	c.Close()
	WaitForAccepted(s, 1, 2*time.Second)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second close errored:", err)
	}
	if col.len() != 1 {
		t.Errorf("handled %d after close", col.len())
	}
}

func TestConcurrentSenders(t *testing.T) {
	s, col := startServer(t, DefaultConfig())
	const senders, per = 8, 25
	var wg sync.WaitGroup
	for i := 0; i < senders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := DialTCP(context.Background(), s.TCPAddr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for j := 0; j < per; j++ {
				a := testAlert(uint64(i*per + j))
				if err := c.Send(&a); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if !WaitForAccepted(s, senders*per, 3*time.Second) {
		t.Fatalf("accepted %d of %d", s.Stats().AlertsAccepted, senders*per)
	}
	if got := col.waitHandled(senders*per, 3*time.Second); got != senders*per {
		t.Errorf("handled %d of %d", got, senders*per)
	}
}

func TestUDPGarbageFloodStaysUp(t *testing.T) {
	// Failure injection: a hostile or broken peer firehoses garbage
	// datagrams; the server must stay up, count rejections, and keep
	// serving valid traffic afterwards.
	s, col := startServer(t, DefaultConfig())
	c, err := DialUDP(s.UDPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	junk := [][]byte{
		[]byte(""),
		[]byte("\x00\x01\x02\x03"),
		[]byte("||||||||||"),
		[]byte(strings.Repeat("A", 1400)),
		[]byte("0|0|ping|t|bogusclass|R|R|0|1||"),          // parses fields but bad class
		[]byte("9999999999999999999999|x|y|z|w|v|u|t|s|r"), // wrong field count
	}
	for i := 0; i < 50; i++ {
		if _, err := c.conn.Write(junk[i%len(junk)]); err != nil {
			t.Fatal(err)
		}
	}
	good := testAlert(1)
	if err := c.Send(&good); err != nil {
		t.Fatal(err)
	}
	if !WaitForAccepted(s, 1, 2*time.Second) {
		t.Fatal("server stopped accepting after garbage flood")
	}
	st := s.Stats()
	if st.AlertsRejected == 0 {
		t.Error("garbage not counted as rejected")
	}
	if col.len() != 1 {
		t.Errorf("handled %d, want only the valid alert", col.len())
	}
}

func TestTCPPartialJSONThenDisconnect(t *testing.T) {
	// A relay dies mid-line: the decoder errors, the connection closes,
	// and the server remains healthy for the next client.
	s, _ := startServer(t, DefaultConfig())
	c1, err := DialTCP(context.Background(), s.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.conn.Write([]byte(`{"source":"ping","type":"packet`)); err != nil {
		t.Fatal(err)
	}
	c1.conn.Close()
	time.Sleep(50 * time.Millisecond)
	c2, err := DialTCP(context.Background(), s.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	a := testAlert(2)
	if err := c2.Send(&a); err != nil {
		t.Fatal(err)
	}
	if err := c2.Flush(); err != nil {
		t.Fatal(err)
	}
	if !WaitForAccepted(s, 1, 2*time.Second) {
		t.Fatal("server unhealthy after partial-JSON client")
	}
}

func TestQueueOverflowShedsNotBlocks(t *testing.T) {
	// With a tiny queue and a slow handler, excess alerts are shed (and
	// counted) rather than stalling the readers.
	cfg := DefaultConfig()
	cfg.QueueDepth = 1
	slow := make(chan struct{})
	s, err := Listen(cfg, func(alert.Alert) { <-slow })
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { close(slow); s.Close() })
	c, err := DialTCP(context.Background(), s.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 64; i++ {
		a := testAlert(uint64(i))
		if err := c.Send(&a); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		st := s.Stats()
		if st.AlertsAccepted+st.AlertsRejected >= 64 {
			if st.AlertsRejected == 0 {
				t.Error("no shedding under a stuffed queue")
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("server stalled instead of shedding")
}

// batchCollector gathers alerts delivered through the batch handler,
// copying rows out (the batch is reused after the handler returns).
type batchCollector struct {
	mu      sync.Mutex
	got     []alert.Alert
	batches int
}

func (c *batchCollector) handle(b *alert.Batch) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.batches++
	var a alert.Alert
	for i := 0; i < b.Len(); i++ {
		b.AlertAt(i, &a)
		c.got = append(c.got, a)
	}
}

func (c *batchCollector) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.got)
}

func (c *batchCollector) waitHandled(n int, deadline time.Duration) int {
	end := time.Now().Add(deadline)
	for c.len() < n && time.Now().Before(end) {
		time.Sleep(2 * time.Millisecond)
	}
	return c.len()
}

func startBatchServer(t *testing.T, cfg Config) (*Server, *batchCollector) {
	t.Helper()
	col := &batchCollector{}
	s, err := ListenBatch(cfg, col.handle)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, col
}

// TestBatchDispatchRoundTrip pushes alerts over both protocols in batch
// mode and checks that every one arrives intact, regardless of how the
// dispatcher chose to group them.
func TestBatchDispatchRoundTrip(t *testing.T) {
	s, col := startBatchServer(t, DefaultConfig())

	uc, err := DialUDP(s.UDPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer uc.Close()
	tc, err := DialTCP(context.Background(), s.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()

	const perProto = 50
	for i := 1; i <= perProto; i++ {
		// The wire carries no ID (the preprocessor assigns them), so rows
		// are tagged through Value: i for UDP, 1000+i for TCP.
		a := testAlert(uint64(i))
		a.Value = float64(i)
		if err := uc.Send(&a); err != nil {
			t.Fatal(err)
		}
		a = testAlert(uint64(1000 + i))
		a.Value = float64(1000 + i)
		if err := tc.Send(&a); err != nil {
			t.Fatal(err)
		}
	}
	if err := tc.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := col.waitHandled(2*perProto, 5*time.Second); got != 2*perProto {
		t.Fatalf("handled %d of %d", got, 2*perProto)
	}

	col.mu.Lock()
	defer col.mu.Unlock()
	seen := map[int]bool{}
	want := testAlert(1)
	for _, a := range col.got {
		tag := int(a.Value)
		if seen[tag] {
			t.Errorf("alert %d delivered twice", tag)
		}
		seen[tag] = true
		if a.Source != want.Source || a.Type != want.Type || a.Location != want.Location ||
			!a.Time.Equal(want.Time) || a.Count != want.Count {
			t.Errorf("mangled alert: %+v", a)
		}
	}
	for i := 1; i <= perProto; i++ {
		if !seen[i] || !seen[1000+i] {
			t.Fatalf("missing alert(s): udp[%d]=%v tcp[%d]=%v", i, seen[i], 1000+i, seen[1000+i])
		}
	}
	if col.batches >= 2*perProto {
		t.Logf("dispatcher never coalesced (batches=%d) — allowed but unexpected", col.batches)
	}
}

// TestBatchDispatchRejectsGarbage checks that malformed and invalid UDP
// frames are dropped from the batch without poisoning neighboring rows.
func TestBatchDispatchRejectsGarbage(t *testing.T) {
	s, col := startBatchServer(t, DefaultConfig())
	c, err := DialUDP(s.UDPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.conn.Write([]byte("not|a|valid|alert")); err != nil {
		t.Fatal(err)
	}
	good := testAlert(7)
	good.Value = 7
	if err := c.Send(&good); err != nil {
		t.Fatal(err)
	}
	if got := col.waitHandled(1, 2*time.Second); got != 1 {
		t.Fatalf("handled %d, want 1", got)
	}
	st := s.Stats()
	if st.UDPParseErrors != 1 {
		t.Errorf("UDPParseErrors = %d, want 1", st.UDPParseErrors)
	}
	col.mu.Lock()
	defer col.mu.Unlock()
	if col.got[0].Value != 7 {
		t.Errorf("surviving row = %+v, want Value 7", col.got[0])
	}
}

// TestBatchDispatchCloseDrains verifies queued alerts still reach the
// batch handler when the server closes right after they are accepted.
func TestBatchDispatchCloseDrains(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TCPAddr = ""
	s, col := startBatchServer(t, cfg)
	c, err := DialUDP(s.UDPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 1; i <= 25; i++ {
		a := testAlert(uint64(i))
		if err := c.Send(&a); err != nil {
			t.Fatal(err)
		}
	}
	if !WaitForAccepted(s, 25, 2*time.Second) {
		t.Fatalf("accepted %d of 25", s.Stats().AlertsAccepted)
	}
	s.Close()
	if got := col.len(); got != 25 {
		t.Fatalf("handled %d after Close, want 25", got)
	}
}
