// Package ingest is SkyNet's network front door: monitoring tools deliver
// raw alerts over TCP (JSON Lines) or UDP (the compact pipe-delimited
// format), and the listeners funnel them into a single handler — typically
// core.Engine.Ingest — serialized on one goroutine so the engine needs no
// internal locking.
//
// The production system sits behind collectors speaking exactly these two
// shapes of protocol: reliable streams from aggregating relays, and
// fire-and-forget datagrams from device-local agents.
package ingest

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"time"

	"skynet/internal/alert"
	"skynet/internal/telemetry"
)

// Handler consumes ingested alerts. Implementations are called from a
// single dispatch goroutine; they must not block for long.
type Handler func(alert.Alert)

// BatchHandler consumes batches of ingested alerts — the columnar fast
// path (core.Engine.IngestBatch). Called from a single dispatch
// goroutine. The batch is reset and reused once the call returns, so
// implementations must copy any rows they retain.
type BatchHandler func(*alert.Batch)

// maxIngestBatch caps how many alerts a dispatch batch accumulates
// before it is handed off; during a flood the dispatcher flushes at
// this size, otherwise as soon as the queue goes momentarily idle.
const maxIngestBatch = 512

// udpFlushInterval bounds how long a decoded-but-unflushed UDP batch can
// sit in the reader while no further datagrams arrive.
const udpFlushInterval = 2 * time.Millisecond

// Stats counts ingestion activity. Snapshot with Server.Stats. The same
// struct backs /api/stats and the /metrics exposition (via
// RegisterMetrics), so the two always agree.
type Stats struct {
	TCPConnections int
	AlertsAccepted int
	// AlertsRejected is the total across every reject reason below.
	AlertsRejected int
	// QueueHighWater is the deepest the dispatch queue has been — how
	// close a flood came to shedding.
	QueueHighWater int

	// Per-protocol reject reasons, summing to AlertsRejected.
	TCPDecodeErrors int // malformed JSON Lines stream (connection dropped)
	TCPInvalid      int // TCP alerts failing validation
	UDPParseErrors  int // malformed compact-format datagrams
	UDPInvalid      int // UDP alerts failing validation
	QueueFull       int // dropped because the dispatch queue was full
}

// rejectReason indexes the per-protocol reject counters.
type rejectReason int

const (
	rejectTCPDecode rejectReason = iota
	rejectTCPInvalid
	rejectUDPParse
	rejectUDPInvalid
	rejectQueueFull
)

// Config tunes a Server.
type Config struct {
	// TCPAddr and UDPAddr are listen addresses; empty disables that
	// listener. Use ":0" for an ephemeral port.
	TCPAddr string
	UDPAddr string
	// MaxConns bounds concurrent TCP connections; further dials are
	// accepted and immediately closed.
	MaxConns int
	// ReadTimeout closes idle TCP connections.
	ReadTimeout time.Duration
	// QueueDepth is the dispatch channel capacity between readers and the
	// handler goroutine.
	QueueDepth int
	// Logger receives operational events; nil means slog.Default().
	Logger *slog.Logger
}

// DefaultConfig returns sensible listener defaults on ephemeral ports.
func DefaultConfig() Config {
	return Config{
		TCPAddr:     "127.0.0.1:0",
		UDPAddr:     "127.0.0.1:0",
		MaxConns:    64,
		ReadTimeout: 2 * time.Minute,
		QueueDepth:  1024,
	}
}

// Server runs the listeners. Create with Listen or ListenBatch, stop
// with Close.
type Server struct {
	cfg      Config
	handler  Handler      // per-alert mode (Listen)
	bhandler BatchHandler // batch mode (ListenBatch)
	log      *slog.Logger

	tcpLn net.Listener
	udpPc net.PacketConn

	queue chan alert.Alert
	// batchQ carries whole UDP-decoded batches in batch mode; the wire
	// codec writes straight into their columns, so a datagram never
	// materializes an intermediate Alert on the hot path.
	batchQ chan *alert.Batch
	pool   sync.Pool // *alert.Batch

	mu    sync.Mutex
	stats Stats
	conns map[net.Conn]struct{}

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// Listen starts the configured listeners and the dispatch goroutine.
func Listen(cfg Config, handler Handler) (*Server, error) {
	if handler == nil {
		return nil, errors.New("ingest: nil handler")
	}
	return listen(cfg, handler, nil)
}

// ListenBatch is Listen with columnar dispatch: alerts are accumulated
// into a reused alert.Batch and handed to the handler in batches — at
// most maxIngestBatch rows, or whatever arrived when the queue goes
// idle. UDP datagrams are decoded by Batch.AppendWire directly into the
// batch columns on the reader goroutine; TCP alerts are batched at the
// dispatcher. Ordering within each protocol is preserved.
func ListenBatch(cfg Config, handler BatchHandler) (*Server, error) {
	if handler == nil {
		return nil, errors.New("ingest: nil batch handler")
	}
	return listen(cfg, nil, handler)
}

func listen(cfg Config, handler Handler, bhandler BatchHandler) (*Server, error) {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 64
	}
	log := cfg.Logger
	if log == nil {
		log = slog.Default()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		handler:  handler,
		bhandler: bhandler,
		log:      log,
		queue:    make(chan alert.Alert, cfg.QueueDepth),
		conns:    make(map[net.Conn]struct{}),
		ctx:      ctx,
		cancel:   cancel,
	}
	s.pool.New = func() any { return new(alert.Batch) }
	if bhandler != nil {
		s.batchQ = make(chan *alert.Batch, 64)
	}
	if cfg.TCPAddr != "" {
		ln, err := net.Listen("tcp", cfg.TCPAddr)
		if err != nil {
			cancel()
			return nil, fmt.Errorf("ingest: tcp listen: %w", err)
		}
		s.tcpLn = ln
		s.wg.Add(1)
		go s.acceptLoop()
	}
	if cfg.UDPAddr != "" {
		pc, err := net.ListenPacket("udp", cfg.UDPAddr)
		if err != nil {
			if s.tcpLn != nil {
				s.tcpLn.Close()
			}
			cancel()
			return nil, fmt.Errorf("ingest: udp listen: %w", err)
		}
		s.udpPc = pc
		s.wg.Add(1)
		if s.bhandler != nil {
			go s.udpBatchLoop()
		} else {
			go s.udpLoop()
		}
	}
	s.wg.Add(1)
	if s.bhandler != nil {
		go s.dispatchBatch()
	} else {
		go s.dispatch()
	}
	return s, nil
}

// TCPAddr returns the bound TCP address, or nil when TCP is disabled.
func (s *Server) TCPAddr() net.Addr {
	if s.tcpLn == nil {
		return nil
	}
	return s.tcpLn.Addr()
}

// UDPAddr returns the bound UDP address, or nil when UDP is disabled.
func (s *Server) UDPAddr() net.Addr {
	if s.udpPc == nil {
		return nil
	}
	return s.udpPc.LocalAddr()
}

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// QueueLoad returns the dispatch queue's current depth and capacity —
// the backpressure surface watched by the flight recorder.
func (s *Server) QueueLoad() (depth, capacity int) {
	return len(s.queue), cap(s.queue)
}

// Close stops the listeners, drains in-flight work, and returns when all
// goroutines have exited. It is idempotent.
func (s *Server) Close() error {
	s.cancel()
	if s.tcpLn != nil {
		s.tcpLn.Close()
	}
	if s.udpPc != nil {
		s.udpPc.Close()
	}
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// dispatch serializes alerts into the handler.
func (s *Server) dispatch() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			// Drain what readers already queued.
			for {
				select {
				case a := <-s.queue:
					s.handler(a)
				default:
					return
				}
			}
		case a := <-s.queue:
			s.handler(a)
		}
	}
}

// dispatchBatch serializes alerts into the batch handler. TCP alerts
// arrive one at a time on queue and are coalesced here; UDP batches
// arrive whole on batchQ and are forwarded as-is.
func (s *Server) dispatchBatch() {
	defer s.wg.Done()
	b := s.pool.Get().(*alert.Batch)
	b.Reset()
	flush := func() {
		if b.Len() > 0 {
			s.bhandler(b)
			b.Reset()
		}
	}
	forward := func(ub *alert.Batch) {
		flush() // keep rough arrival order between the two sources
		s.bhandler(ub)
		ub.Reset()
		s.pool.Put(ub)
	}
	for {
		select {
		case <-s.ctx.Done():
			// Drain what readers already queued.
			for {
				select {
				case a := <-s.queue:
					b.Append(&a)
				case ub := <-s.batchQ:
					forward(ub)
				default:
					flush()
					return
				}
			}
		case a := <-s.queue:
			b.Append(&a)
			more := true
			for more && b.Len() < maxIngestBatch {
				select {
				case a := <-s.queue:
					b.Append(&a)
				default:
					more = false
				}
			}
			flush()
		case ub := <-s.batchQ:
			forward(ub)
		}
	}
}

// flushBatch hands a UDP-decoded batch to the dispatcher, dropping (and
// counting) its rows when the batch queue is full, and returns a fresh
// batch for the reader to keep decoding into.
func (s *Server) flushBatch(b *alert.Batch) *alert.Batch {
	n := b.Len()
	if n == 0 {
		return b
	}
	select {
	case s.batchQ <- b:
		s.mu.Lock()
		s.stats.AlertsAccepted += n
		if depth := len(s.queue); depth > s.stats.QueueHighWater {
			s.stats.QueueHighWater = depth
		}
		s.mu.Unlock()
	default:
		s.mu.Lock()
		s.stats.AlertsRejected += n
		s.stats.QueueFull += n
		s.mu.Unlock()
		b.Reset()
		return b
	}
	nb := s.pool.Get().(*alert.Batch)
	nb.Reset()
	return nb
}

// enqueue hands an alert to the dispatcher, dropping (and counting) when
// the queue is full — backpressure must not stall the network readers
// during an alert flood.
func (s *Server) enqueue(a alert.Alert) {
	select {
	case s.queue <- a:
		depth := len(s.queue)
		s.mu.Lock()
		s.stats.AlertsAccepted++
		if depth > s.stats.QueueHighWater {
			s.stats.QueueHighWater = depth
		}
		s.mu.Unlock()
	default:
		s.reject(rejectQueueFull)
	}
}

func (s *Server) reject(why rejectReason) {
	s.mu.Lock()
	s.stats.AlertsRejected++
	switch why {
	case rejectTCPDecode:
		s.stats.TCPDecodeErrors++
	case rejectTCPInvalid:
		s.stats.TCPInvalid++
	case rejectUDPParse:
		s.stats.UDPParseErrors++
	case rejectUDPInvalid:
		s.stats.UDPInvalid++
	case rejectQueueFull:
		s.stats.QueueFull++
	}
	s.mu.Unlock()
}

// RegisterMetrics exposes the server's counters on a telemetry registry.
// The callbacks read the same Stats struct /api/stats serves, so the two
// surfaces can never drift apart.
func (s *Server) RegisterMetrics(reg *telemetry.Registry) {
	stat := func(pick func(Stats) int) func() float64 {
		return func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(pick(s.stats))
		}
	}
	reg.CounterFunc("skynet_ingest_tcp_connections_total",
		"TCP alert connections accepted.",
		stat(func(st Stats) int { return st.TCPConnections }))
	reg.CounterFunc("skynet_ingest_alerts_accepted_total",
		"Alerts accepted into the dispatch queue.",
		stat(func(st Stats) int { return st.AlertsAccepted }))
	reg.CounterFunc("skynet_ingest_alerts_rejected_total",
		"Alerts rejected across all reasons.",
		stat(func(st Stats) int { return st.AlertsRejected }))
	reg.CounterFunc("skynet_ingest_rejected_tcp_decode_total",
		"TCP streams dropped on a malformed JSON line.",
		stat(func(st Stats) int { return st.TCPDecodeErrors }))
	reg.CounterFunc("skynet_ingest_rejected_tcp_invalid_total",
		"TCP alerts failing validation.",
		stat(func(st Stats) int { return st.TCPInvalid }))
	reg.CounterFunc("skynet_ingest_rejected_udp_parse_total",
		"Malformed compact-format UDP datagrams.",
		stat(func(st Stats) int { return st.UDPParseErrors }))
	reg.CounterFunc("skynet_ingest_rejected_udp_invalid_total",
		"UDP alerts failing validation.",
		stat(func(st Stats) int { return st.UDPInvalid }))
	reg.CounterFunc("skynet_ingest_rejected_queue_full_total",
		"Alerts shed because the dispatch queue was full.",
		stat(func(st Stats) int { return st.QueueFull }))
	reg.GaugeFunc("skynet_ingest_queue_high_water",
		"Deepest the dispatch queue has been.",
		stat(func(st Stats) int { return st.QueueHighWater }))
	reg.GaugeFunc("skynet_ingest_queue_depth",
		"Current dispatch queue depth.",
		func() float64 { return float64(len(s.queue)) })
}

// acceptLoop accepts TCP connections up to MaxConns.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.tcpLn.Accept()
		if err != nil {
			if s.ctx.Err() != nil {
				return
			}
			s.log.Warn("ingest: accept", "err", err)
			continue
		}
		s.mu.Lock()
		if len(s.conns) >= s.cfg.MaxConns {
			s.mu.Unlock()
			s.log.Warn("ingest: connection limit reached, closing", "remote", conn.RemoteAddr())
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.stats.TCPConnections++
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// serveConn reads JSON Lines alerts from one TCP connection.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := alert.NewDecoder(&timeoutReader{conn: conn, timeout: s.cfg.ReadTimeout})
	for {
		var a alert.Alert
		err := dec.Decode(&a)
		if errors.Is(err, io.EOF) {
			return
		}
		if err != nil {
			if s.ctx.Err() == nil {
				s.log.Warn("ingest: tcp decode", "remote", conn.RemoteAddr(), "err", err)
			}
			s.reject(rejectTCPDecode)
			return
		}
		if verr := a.Validate(); verr != nil && a.Source != alert.SourceSyslog {
			s.reject(rejectTCPInvalid)
			continue
		}
		s.enqueue(a)
	}
}

// udpLoop reads one compact-format alert per datagram. The loop owns a
// WireScratch (single goroutine, no locking) so repeated field values
// across datagrams decode without allocating.
func (s *Server) udpLoop() {
	defer s.wg.Done()
	buf := make([]byte, alert.MaxLineBytes)
	var sc alert.WireScratch
	for {
		n, _, err := s.udpPc.ReadFrom(buf)
		if err != nil {
			if s.ctx.Err() != nil {
				return
			}
			s.log.Warn("ingest: udp read", "err", err)
			continue
		}
		a, err := sc.ParseWire(trimNewline(buf[:n]))
		if err != nil {
			s.reject(rejectUDPParse)
			continue
		}
		if verr := a.Validate(); verr != nil && a.Source != alert.SourceSyslog {
			s.reject(rejectUDPInvalid)
			continue
		}
		s.enqueue(a)
	}
}

// udpBatchLoop is udpLoop for batch mode: datagrams decode straight
// into batch columns (Batch.AppendWire), and the batch is flushed to the
// dispatcher when it reaches maxIngestBatch rows or when no further
// datagram arrives within udpFlushInterval.
func (s *Server) udpBatchLoop() {
	defer s.wg.Done()
	buf := make([]byte, alert.MaxLineBytes)
	var sc alert.WireScratch
	b := s.pool.Get().(*alert.Batch)
	b.Reset()
	for {
		// Block indefinitely while empty; with rows pending, wait only
		// the flush interval so a lull can't strand decoded alerts.
		var deadline time.Time
		if b.Len() > 0 {
			deadline = time.Now().Add(udpFlushInterval)
		}
		s.udpPc.SetReadDeadline(deadline)
		n, _, err := s.udpPc.ReadFrom(buf)
		if err != nil {
			if s.ctx.Err() != nil {
				s.flushBatch(b)
				return
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				b = s.flushBatch(b)
				continue
			}
			s.log.Warn("ingest: udp read", "err", err)
			continue
		}
		if err := b.AppendWireScratch(trimNewline(buf[:n]), &sc); err != nil {
			s.reject(rejectUDPParse)
			continue
		}
		if i := b.Len() - 1; b.Source[i] != alert.SourceSyslog {
			if verr := b.ValidateRow(i); verr != nil {
				b.DropLast()
				s.reject(rejectUDPInvalid)
				continue
			}
		}
		if b.Len() >= maxIngestBatch {
			b = s.flushBatch(b)
		}
	}
}

func trimNewline(b []byte) []byte {
	for len(b) > 0 && (b[len(b)-1] == '\n' || b[len(b)-1] == '\r') {
		b = b[:len(b)-1]
	}
	return b
}

// timeoutReader applies a fresh read deadline per Read call.
type timeoutReader struct {
	conn    net.Conn
	timeout time.Duration
}

func (r *timeoutReader) Read(p []byte) (int, error) {
	if r.timeout > 0 {
		if err := r.conn.SetReadDeadline(time.Now().Add(r.timeout)); err != nil {
			return 0, err
		}
	}
	return r.conn.Read(p)
}
