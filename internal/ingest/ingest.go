// Package ingest is SkyNet's network front door: monitoring tools deliver
// raw alerts over TCP (JSON Lines) or UDP (the compact pipe-delimited
// format), and the listeners funnel them into a single handler — typically
// core.Engine.Ingest — serialized on one goroutine so the engine needs no
// internal locking.
//
// The production system sits behind collectors speaking exactly these two
// shapes of protocol: reliable streams from aggregating relays, and
// fire-and-forget datagrams from device-local agents.
package ingest

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"time"

	"skynet/internal/alert"
)

// Handler consumes ingested alerts. Implementations are called from a
// single dispatch goroutine; they must not block for long.
type Handler func(alert.Alert)

// Stats counts ingestion activity. Snapshot with Server.Stats.
type Stats struct {
	TCPConnections int
	AlertsAccepted int
	AlertsRejected int
}

// Config tunes a Server.
type Config struct {
	// TCPAddr and UDPAddr are listen addresses; empty disables that
	// listener. Use ":0" for an ephemeral port.
	TCPAddr string
	UDPAddr string
	// MaxConns bounds concurrent TCP connections; further dials are
	// accepted and immediately closed.
	MaxConns int
	// ReadTimeout closes idle TCP connections.
	ReadTimeout time.Duration
	// QueueDepth is the dispatch channel capacity between readers and the
	// handler goroutine.
	QueueDepth int
	// Logger receives operational events; nil means slog.Default().
	Logger *slog.Logger
}

// DefaultConfig returns sensible listener defaults on ephemeral ports.
func DefaultConfig() Config {
	return Config{
		TCPAddr:     "127.0.0.1:0",
		UDPAddr:     "127.0.0.1:0",
		MaxConns:    64,
		ReadTimeout: 2 * time.Minute,
		QueueDepth:  1024,
	}
}

// Server runs the listeners. Create with Listen, stop with Close.
type Server struct {
	cfg     Config
	handler Handler
	log     *slog.Logger

	tcpLn net.Listener
	udpPc net.PacketConn

	queue chan alert.Alert

	mu    sync.Mutex
	stats Stats
	conns map[net.Conn]struct{}

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// Listen starts the configured listeners and the dispatch goroutine.
func Listen(cfg Config, handler Handler) (*Server, error) {
	if handler == nil {
		return nil, errors.New("ingest: nil handler")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 64
	}
	log := cfg.Logger
	if log == nil {
		log = slog.Default()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		handler: handler,
		log:     log,
		queue:   make(chan alert.Alert, cfg.QueueDepth),
		conns:   make(map[net.Conn]struct{}),
		ctx:     ctx,
		cancel:  cancel,
	}
	if cfg.TCPAddr != "" {
		ln, err := net.Listen("tcp", cfg.TCPAddr)
		if err != nil {
			cancel()
			return nil, fmt.Errorf("ingest: tcp listen: %w", err)
		}
		s.tcpLn = ln
		s.wg.Add(1)
		go s.acceptLoop()
	}
	if cfg.UDPAddr != "" {
		pc, err := net.ListenPacket("udp", cfg.UDPAddr)
		if err != nil {
			if s.tcpLn != nil {
				s.tcpLn.Close()
			}
			cancel()
			return nil, fmt.Errorf("ingest: udp listen: %w", err)
		}
		s.udpPc = pc
		s.wg.Add(1)
		go s.udpLoop()
	}
	s.wg.Add(1)
	go s.dispatch()
	return s, nil
}

// TCPAddr returns the bound TCP address, or nil when TCP is disabled.
func (s *Server) TCPAddr() net.Addr {
	if s.tcpLn == nil {
		return nil
	}
	return s.tcpLn.Addr()
}

// UDPAddr returns the bound UDP address, or nil when UDP is disabled.
func (s *Server) UDPAddr() net.Addr {
	if s.udpPc == nil {
		return nil
	}
	return s.udpPc.LocalAddr()
}

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close stops the listeners, drains in-flight work, and returns when all
// goroutines have exited. It is idempotent.
func (s *Server) Close() error {
	s.cancel()
	if s.tcpLn != nil {
		s.tcpLn.Close()
	}
	if s.udpPc != nil {
		s.udpPc.Close()
	}
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// dispatch serializes alerts into the handler.
func (s *Server) dispatch() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			// Drain what readers already queued.
			for {
				select {
				case a := <-s.queue:
					s.handler(a)
				default:
					return
				}
			}
		case a := <-s.queue:
			s.handler(a)
		}
	}
}

// enqueue hands an alert to the dispatcher, dropping (and counting) when
// the queue is full — backpressure must not stall the network readers
// during an alert flood.
func (s *Server) enqueue(a alert.Alert) {
	select {
	case s.queue <- a:
		s.mu.Lock()
		s.stats.AlertsAccepted++
		s.mu.Unlock()
	default:
		s.mu.Lock()
		s.stats.AlertsRejected++
		s.mu.Unlock()
	}
}

func (s *Server) reject() {
	s.mu.Lock()
	s.stats.AlertsRejected++
	s.mu.Unlock()
}

// acceptLoop accepts TCP connections up to MaxConns.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.tcpLn.Accept()
		if err != nil {
			if s.ctx.Err() != nil {
				return
			}
			s.log.Warn("ingest: accept", "err", err)
			continue
		}
		s.mu.Lock()
		if len(s.conns) >= s.cfg.MaxConns {
			s.mu.Unlock()
			s.log.Warn("ingest: connection limit reached, closing", "remote", conn.RemoteAddr())
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.stats.TCPConnections++
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// serveConn reads JSON Lines alerts from one TCP connection.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := alert.NewDecoder(&timeoutReader{conn: conn, timeout: s.cfg.ReadTimeout})
	for {
		var a alert.Alert
		err := dec.Decode(&a)
		if errors.Is(err, io.EOF) {
			return
		}
		if err != nil {
			if s.ctx.Err() == nil {
				s.log.Warn("ingest: tcp decode", "remote", conn.RemoteAddr(), "err", err)
			}
			s.reject()
			return
		}
		if verr := a.Validate(); verr != nil && a.Source != alert.SourceSyslog {
			s.reject()
			continue
		}
		s.enqueue(a)
	}
}

// udpLoop reads one compact-format alert per datagram.
func (s *Server) udpLoop() {
	defer s.wg.Done()
	buf := make([]byte, alert.MaxLineBytes)
	for {
		n, _, err := s.udpPc.ReadFrom(buf)
		if err != nil {
			if s.ctx.Err() != nil {
				return
			}
			s.log.Warn("ingest: udp read", "err", err)
			continue
		}
		a, err := alert.ParseWire(trimNewline(buf[:n]))
		if err != nil {
			s.reject()
			continue
		}
		if verr := a.Validate(); verr != nil && a.Source != alert.SourceSyslog {
			s.reject()
			continue
		}
		s.enqueue(a)
	}
}

func trimNewline(b []byte) []byte {
	for len(b) > 0 && (b[len(b)-1] == '\n' || b[len(b)-1] == '\r') {
		b = b[:len(b)-1]
	}
	return b
}

// timeoutReader applies a fresh read deadline per Read call.
type timeoutReader struct {
	conn    net.Conn
	timeout time.Duration
}

func (r *timeoutReader) Read(p []byte) (int, error) {
	if r.timeout > 0 {
		if err := r.conn.SetReadDeadline(time.Now().Add(r.timeout)); err != nil {
			return 0, err
		}
	}
	return r.conn.Read(p)
}
