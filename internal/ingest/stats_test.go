package ingest

import (
	"context"
	"strings"
	"testing"
	"time"

	"skynet/internal/alert"
	"skynet/internal/hierarchy"
	"skynet/internal/telemetry"
)

func TestRejectReasonsSumToTotal(t *testing.T) {
	s, _ := startServer(t, DefaultConfig())

	// UDP parse reject.
	cu, err := DialUDP(s.UDPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cu.Close()
	if _, err := cu.conn.Write([]byte("not|a|valid|alert")); err != nil {
		t.Fatal(err)
	}

	// TCP validation reject, then a good alert so we can sync.
	ct, err := DialTCP(context.Background(), s.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()
	bad := testAlert(1)
	bad.Location = hierarchy.Root()
	if err := ct.Send(&bad); err != nil {
		t.Fatal(err)
	}
	good := testAlert(2)
	if err := ct.Send(&good); err != nil {
		t.Fatal(err)
	}
	if err := ct.Flush(); err != nil {
		t.Fatal(err)
	}
	if !WaitForAccepted(s, 1, 2*time.Second) {
		t.Fatal("good alert not accepted")
	}

	deadline := time.Now().Add(2 * time.Second)
	var st Stats
	for time.Now().Before(deadline) {
		st = s.Stats()
		if st.AlertsRejected >= 2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.AlertsRejected != 2 {
		t.Fatalf("rejected = %d, want 2", st.AlertsRejected)
	}
	if st.UDPParseErrors != 1 || st.TCPInvalid != 1 {
		t.Errorf("reasons = %+v, want 1 UDP parse + 1 TCP invalid", st)
	}
	if sum := st.TCPDecodeErrors + st.TCPInvalid + st.UDPParseErrors + st.UDPInvalid + st.QueueFull; sum != st.AlertsRejected {
		t.Errorf("reasons sum to %d, total is %d", sum, st.AlertsRejected)
	}
	if st.QueueHighWater < 0 || st.QueueHighWater > DefaultConfig().QueueDepth {
		t.Errorf("queue high water out of range: %d", st.QueueHighWater)
	}
}

func TestQueueHighWaterTracksDepth(t *testing.T) {
	// A handler that blocks until released forces the queue to fill.
	release := make(chan struct{})
	cfg := DefaultConfig()
	cfg.QueueDepth = 4
	s, err := Listen(cfg, func(a alert.Alert) { <-release })
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(release)
		s.Close()
	}()
	c, err := DialUDP(s.UDPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 1; i <= 12; i++ {
		a := testAlert(uint64(i))
		if err := c.Send(&a); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		st := s.Stats()
		if st.QueueHighWater >= cfg.QueueDepth && st.QueueFull > 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := s.Stats()
	t.Errorf("flood never filled the queue: %+v", st)
}

func TestRegisterMetricsMatchesStats(t *testing.T) {
	s, _ := startServer(t, DefaultConfig())
	reg := telemetry.New()
	s.RegisterMetrics(reg)
	c, err := DialUDP(s.UDPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 1; i <= 5; i++ {
		a := testAlert(uint64(i))
		if err := c.Send(&a); err != nil {
			t.Fatal(err)
		}
	}
	if !WaitForAccepted(s, 5, 2*time.Second) {
		t.Fatal("alerts not accepted")
	}
	vals := map[string]float64{}
	for _, m := range reg.Snapshot() {
		vals[m.Name] = m.Value
	}
	st := s.Stats()
	if int(vals["skynet_ingest_alerts_accepted_total"]) != st.AlertsAccepted {
		t.Errorf("metrics accepted %v, stats %d — sources drifted",
			vals["skynet_ingest_alerts_accepted_total"], st.AlertsAccepted)
	}
	if int(vals["skynet_ingest_alerts_rejected_total"]) != st.AlertsRejected {
		t.Errorf("metrics rejected %v, stats %d", vals["skynet_ingest_alerts_rejected_total"], st.AlertsRejected)
	}
	if int(vals["skynet_ingest_queue_high_water"]) != st.QueueHighWater {
		t.Errorf("metrics hwm %v, stats %d", vals["skynet_ingest_queue_high_water"], st.QueueHighWater)
	}
	var b strings.Builder
	if err := reg.Expose(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "skynet_ingest_alerts_accepted_total 5") {
		t.Errorf("exposition missing accepted counter:\n%s", b.String())
	}
}
