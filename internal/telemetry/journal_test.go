package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

var epoch = time.Date(2024, 7, 2, 11, 0, 0, 0, time.UTC)

func TestJournalAppendAndSince(t *testing.T) {
	j := NewJournal(8)
	for i := 0; i < 5; i++ {
		e := j.Append(Event{Time: epoch.Add(time.Duration(i) * time.Second), Type: EventUpdated, Incident: i})
		if e.Seq != int64(i) {
			t.Errorf("seq = %d, want %d", e.Seq, i)
		}
	}
	all := j.Events()
	if len(all) != 5 || all[0].Seq != 0 || all[4].Seq != 4 {
		t.Fatalf("events = %+v", all)
	}
	since := j.Since(2)
	if len(since) != 2 || since[0].Seq != 3 {
		t.Errorf("since(2) = %+v", since)
	}
}

func TestJournalEviction(t *testing.T) {
	j := NewJournal(3)
	for i := 0; i < 10; i++ {
		j.Append(Event{Incident: i})
	}
	if j.Len() != 3 {
		t.Fatalf("len = %d, want 3", j.Len())
	}
	if j.Evicted() != 7 {
		t.Errorf("evicted = %d, want 7", j.Evicted())
	}
	got := j.Events()
	if got[0].Seq != 7 || got[2].Seq != 9 {
		t.Errorf("retained = %+v, want seqs 7..9", got)
	}
}

// TestJournalSinceAcrossWraparound exercises /api/journal?since=
// pagination once the ring has wrapped: a cursor older than the retained
// head returns everything retained (the gap in sequence numbers tells the
// consumer events were lost), and a cursor at or past the tail returns
// nothing.
func TestJournalSinceAcrossWraparound(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 10; i++ {
		j.Append(Event{Incident: i})
	}
	// Retained window is seqs 6..9.
	for _, tc := range []struct {
		after     int64
		wantFirst int64
		wantLen   int
	}{
		{-1, 6, 4}, // everything
		{0, 6, 4},  // cursor long evicted: full retained window
		{5, 6, 4},  // cursor exactly one before the head
		{6, 7, 3},  // cursor inside the window
		{8, 9, 1},  // penultimate
		{9, 0, 0},  // cursor at the tail: caught up
		{42, 0, 0}, // cursor beyond anything ever appended
	} {
		got := j.Since(tc.after)
		if len(got) != tc.wantLen {
			t.Errorf("Since(%d): %d events, want %d", tc.after, len(got), tc.wantLen)
			continue
		}
		if tc.wantLen > 0 && got[0].Seq != tc.wantFirst {
			t.Errorf("Since(%d): first seq %d, want %d", tc.after, got[0].Seq, tc.wantFirst)
		}
	}
	// A consumer resuming from a stale cursor can detect the loss: the
	// first returned seq minus the cursor exceeds one.
	if got := j.Since(0); got[0].Seq-0 <= 1 {
		t.Errorf("wraparound gap not visible: first retained seq %d after cursor 0", got[0].Seq)
	}
}

// TestJournalCapacityOne pins the degenerate ring: only the newest event
// is ever retained, and pagination still behaves.
func TestJournalCapacityOne(t *testing.T) {
	j := NewJournal(1)
	for i := 0; i < 3; i++ {
		j.Append(Event{Incident: i})
	}
	if j.Len() != 1 || j.Evicted() != 2 {
		t.Fatalf("len=%d evicted=%d, want 1/2", j.Len(), j.Evicted())
	}
	got := j.Events()
	if len(got) != 1 || got[0].Seq != 2 || got[0].Incident != 2 {
		t.Fatalf("retained = %+v, want only seq 2", got)
	}
	if got := j.Since(1); len(got) != 1 || got[0].Seq != 2 {
		t.Errorf("Since(1) = %+v", got)
	}
	if got := j.Since(2); len(got) != 0 {
		t.Errorf("Since(2) = %+v, want empty", got)
	}
}

func TestJournalConcurrent(t *testing.T) {
	j := NewJournal(128)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				j.Append(Event{Type: EventUpdated})
				j.Since(0)
			}
		}()
	}
	wg.Wait()
	if j.Len() != 128 {
		t.Errorf("len = %d, want full ring 128", j.Len())
	}
	// Sequence numbers must stay strictly increasing despite eviction.
	prev := int64(-1)
	for _, e := range j.Events() {
		if e.Seq <= prev {
			t.Fatalf("non-monotonic seq %d after %d", e.Seq, prev)
		}
		prev = e.Seq
	}
}

func TestJournalMetrics(t *testing.T) {
	r := New()
	j := NewJournal(2)
	j.RegisterMetrics(r)
	j.Append(Event{})
	j.Append(Event{})
	j.Append(Event{})
	var b strings.Builder
	if err := r.Expose(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"skynet_journal_events_total 3",
		"skynet_journal_events_evicted_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in\n%s", want, out)
		}
	}
}
