package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

var epoch = time.Date(2024, 7, 2, 11, 0, 0, 0, time.UTC)

func TestJournalAppendAndSince(t *testing.T) {
	j := NewJournal(8)
	for i := 0; i < 5; i++ {
		e := j.Append(Event{Time: epoch.Add(time.Duration(i) * time.Second), Type: EventUpdated, Incident: i})
		if e.Seq != int64(i) {
			t.Errorf("seq = %d, want %d", e.Seq, i)
		}
	}
	all := j.Events()
	if len(all) != 5 || all[0].Seq != 0 || all[4].Seq != 4 {
		t.Fatalf("events = %+v", all)
	}
	since := j.Since(2)
	if len(since) != 2 || since[0].Seq != 3 {
		t.Errorf("since(2) = %+v", since)
	}
}

func TestJournalEviction(t *testing.T) {
	j := NewJournal(3)
	for i := 0; i < 10; i++ {
		j.Append(Event{Incident: i})
	}
	if j.Len() != 3 {
		t.Fatalf("len = %d, want 3", j.Len())
	}
	if j.Evicted() != 7 {
		t.Errorf("evicted = %d, want 7", j.Evicted())
	}
	got := j.Events()
	if got[0].Seq != 7 || got[2].Seq != 9 {
		t.Errorf("retained = %+v, want seqs 7..9", got)
	}
}

func TestJournalConcurrent(t *testing.T) {
	j := NewJournal(128)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				j.Append(Event{Type: EventUpdated})
				j.Since(0)
			}
		}()
	}
	wg.Wait()
	if j.Len() != 128 {
		t.Errorf("len = %d, want full ring 128", j.Len())
	}
	// Sequence numbers must stay strictly increasing despite eviction.
	prev := int64(-1)
	for _, e := range j.Events() {
		if e.Seq <= prev {
			t.Fatalf("non-monotonic seq %d after %d", e.Seq, prev)
		}
		prev = e.Seq
	}
}

func TestJournalMetrics(t *testing.T) {
	r := New()
	j := NewJournal(2)
	j.RegisterMetrics(r)
	j.Append(Event{})
	j.Append(Event{})
	j.Append(Event{})
	var b strings.Builder
	if err := r.Expose(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"skynet_journal_events_total 3",
		"skynet_journal_events_evicted_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in\n%s", want, out)
		}
	}
}
