package telemetry

import (
	"sync"
	"time"
)

// EventType labels one incident lifecycle transition.
type EventType string

// Lifecycle event types, in the order they typically occur.
const (
	EventCreated EventType = "created" // incident tree generated (Algorithm 2)
	EventUpdated EventType = "updated" // new alerts joined the incident
	EventZoomed  EventType = "zoomed"  // location zoom-in refined the root
	EventScored  EventType = "scored"  // evaluator severity moved materially
	EventClosed  EventType = "closed"  // incident timed out (Algorithm 3)
)

// Event is one append-only journal entry: what happened to which incident
// when, with enough provenance (alert and location counts, severity) to
// reconstruct the funnel an operator saw.
type Event struct {
	// Seq is the monotonically increasing journal sequence number,
	// assigned at append time. Gaps mean the ring buffer evicted entries.
	Seq int64 `json:"seq"`
	// Time is the pipeline tick time the transition was observed at —
	// simulated time under replay, wall time in the daemon.
	Time time.Time `json:"time"`
	// Type is the lifecycle transition.
	Type EventType `json:"type"`
	// Incident is the incident ID.
	Incident int `json:"incident"`
	// Root is the incident's hierarchy root.
	Root string `json:"root"`
	// Zoomed is the refined location, when zoom-in succeeded.
	Zoomed string `json:"zoomed,omitempty"`
	// Severity is the evaluator score at event time.
	Severity float64 `json:"severity"`
	// Alerts is the raw alert instance count aggregated so far.
	Alerts int `json:"alerts"`
	// Locations is the number of distinct alerting locations.
	Locations int `json:"locations"`
}

// Journal is a bounded append-only event log. Appends and reads are safe
// from any goroutine; when the capacity is exceeded the oldest events are
// evicted (their sequence numbers are never reused, so consumers notice).
type Journal struct {
	mu      sync.Mutex
	buf     []Event // ring storage
	start   int     // index of oldest event
	n       int     // live events
	nextSeq int64
	evicted int64
	notify  func(Event)
}

// DefaultJournalCap bounds journal memory: at one event per incident
// transition this holds days of production churn.
const DefaultJournalCap = 4096

// NewJournal creates a journal holding at most capacity events
// (DefaultJournalCap when capacity <= 0).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCap
	}
	return &Journal{buf: make([]Event, capacity)}
}

// SetNotify installs a callback that receives every appended event (with
// its sequence number stamped). The callback runs on the appender's
// goroutine after the journal's lock is released, so it may safely call
// back into the journal or take other locks.
func (j *Journal) SetNotify(fn func(Event)) {
	j.mu.Lock()
	j.notify = fn
	j.mu.Unlock()
}

// Append records one event, stamping its sequence number, and returns it.
func (j *Journal) Append(e Event) Event {
	j.mu.Lock()
	e.Seq = j.nextSeq
	j.nextSeq++
	if j.n == len(j.buf) {
		j.start = (j.start + 1) % len(j.buf)
		j.n--
		j.evicted++
	}
	j.buf[(j.start+j.n)%len(j.buf)] = e
	j.n++
	notify := j.notify
	j.mu.Unlock()
	if notify != nil {
		notify(e)
	}
	return e
}

// Len returns the number of retained events.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// Evicted returns how many events the ring has dropped.
func (j *Journal) Evicted() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.evicted
}

// Events returns all retained events, oldest first.
func (j *Journal) Events() []Event { return j.Since(-1) }

// Since returns retained events with Seq > after, oldest first. Pass -1
// for everything.
func (j *Journal) Since(after int64) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, 0, j.n)
	for i := 0; i < j.n; i++ {
		e := j.buf[(j.start+i)%len(j.buf)]
		if e.Seq > after {
			out = append(out, e)
		}
	}
	return out
}

// RegisterMetrics exposes the journal's own health on a registry.
func (j *Journal) RegisterMetrics(reg *Registry) {
	reg.CounterFunc("skynet_journal_events_total",
		"Incident lifecycle events appended to the journal.",
		func() float64 {
			j.mu.Lock()
			defer j.mu.Unlock()
			return float64(j.nextSeq)
		})
	reg.CounterFunc("skynet_journal_events_evicted_total",
		"Journal events evicted by the ring buffer.",
		func() float64 { return float64(j.Evicted()) })
}
