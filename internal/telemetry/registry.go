// Package telemetry is SkyNet's runtime observability layer: a
// dependency-free, allocation-light metrics registry (atomic counters,
// gauges, and fixed-bucket histograms) with Prometheus text-format
// exposition, plus the incident lifecycle journal.
//
// The paper's premise is volume visibility — operators face O(10^4)–
// O(10^5) raw alerts and need to know what the funnel is doing to them
// (§4, Fig. 5a). This package makes the reproduction itself observable:
// every pipeline stage exports counters and latency histograms that the
// status server exposes on GET /metrics.
//
// Metric mutation is lock-free (single atomic op for counters and gauges,
// one atomic add per histogram bucket), so instrumented hot paths stay
// within noise of the uninstrumented ones. Registration takes a lock and
// is expected at setup time only.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored — counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down. Values are float64, stored
// as atomic bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetInt replaces the gauge value with an integer.
func (g *Gauge) SetInt(v int) { g.Set(float64(v)) }

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram in the Prometheus
// style: bucket i counts observations ≤ upper[i], plus an implicit +Inf
// bucket, a sum, and a count.
type Histogram struct {
	upper  []float64      // sorted upper bounds, exclusive of +Inf
	counts []atomic.Int64 // len(upper)+1; last is +Inf
	sum    Gauge          // atomic float64 accumulator
	count  atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket lists are short (≤ ~16) and the branch
	// predictor makes this cheaper than binary search at this size.
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Mean returns the average observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts,
// attributing each observation to its bucket's upper bound. Good enough
// for dashboards; exact for the bucket boundaries themselves.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(h.upper) {
				return h.upper[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// LatencyBuckets is the default upper-bound ladder for stage latencies in
// seconds: 10µs .. 10s, roughly ×3 steps.
func LatencyBuckets() []float64 {
	return []float64{
		1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1, 3, 10,
	}
}

// Kind labels the exposition type of a metric.
type Kind string

// Metric kinds, matching the Prometheus TYPE comment values.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// metric is one registered entry.
type metric struct {
	name, help string
	labels     string // rendered label pairs, e.g. `episode="3"`; "" for none
	kind       Kind
	counter    *Counter
	gauge      *Gauge
	hist       *Histogram
	fn         func() float64 // gauge-func / counter-func, read at expose time
}

// key returns the registry lookup key: the family name plus the label set,
// so one family may carry many labeled series.
func (m *metric) key() string { return metricKey(m.name, m.labels) }

func metricKey(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// Registry holds named metrics and renders them in Prometheus text
// exposition format. The zero value is not usable; call New.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byName  map[string]*metric
	rev     atomic.Uint64 // bumped on every new series registration
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// lookup returns an existing metric, verifying the kind, or registers a
// new slot.
func (r *Registry) lookup(name, help string, kind Kind) (*metric, bool) {
	return r.lookupLabeled(name, "", help, kind)
}

// lookupLabeled is lookup for one (family, label set) series.
func (r *Registry) lookupLabeled(name, labels, help string, kind Kind) (*metric, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := metricKey(name, labels)
	if m, ok := r.byName[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as %s (was %s)", key, kind, m.kind))
		}
		return m, true
	}
	m := &metric{name: name, labels: labels, help: help, kind: kind}
	r.byName[key] = m
	r.metrics = append(r.metrics, m)
	r.rev.Add(1)
	return m, false
}

// Rev returns the registration revision: it changes whenever a new series
// is registered, and never otherwise. Samplers that pre-resolve Handles
// compare it each cycle and re-resolve only when it moved — the steady
// state is one atomic load.
func (r *Registry) Rev() uint64 { return r.rev.Load() }

// Handle is a pre-resolved, lock-free reader for one exposition sample.
// Resolving handles once and reading them every tick is how the history
// sampler avoids Snapshot's per-scrape allocations.
type Handle struct {
	// Name is the series key: the family name plus the rendered label
	// set (`family{label="v"}`), or the bare family name when unlabeled.
	// Histograms expand to two handles, `family_count` and `family_sum`.
	Name string
	Kind Kind
	read func() float64
}

// Read returns the sample's current value. Safe to call concurrently
// with metric mutation; never takes the registry lock.
func (h Handle) Read() float64 { return h.read() }

// Handles resolves every registered series into lock-free readers, sorted
// by series key — the same stable order Snapshot uses. Counters and gauges
// yield one handle; histograms yield cumulative `_count` and `_sum`
// handles (bucket series are left to full exposition). Callers cache the
// result and re-resolve when Rev changes.
func (r *Registry) Handles() []Handle {
	r.mu.Lock()
	metrics := make([]*metric, len(r.metrics))
	copy(metrics, r.metrics)
	r.mu.Unlock()
	sort.Slice(metrics, func(i, j int) bool {
		if metrics[i].name != metrics[j].name {
			return metrics[i].name < metrics[j].name
		}
		return metrics[i].labels < metrics[j].labels
	})
	out := make([]Handle, 0, len(metrics))
	for _, m := range metrics {
		m := m
		if m.kind == KindHistogram {
			if m.hist == nil {
				continue
			}
			h := m.hist
			out = append(out,
				Handle{Name: metricKey(m.name+"_count", m.labels), Kind: KindCounter,
					read: func() float64 { return float64(h.Count()) }},
				Handle{Name: metricKey(m.name+"_sum", m.labels), Kind: KindCounter,
					read: func() float64 { return h.Sum() }},
			)
			continue
		}
		out = append(out, Handle{Name: m.key(), Kind: m.kind, read: func() float64 {
			// fn is re-read on every call: GaugeFunc may replace the
			// callback after this handle was resolved.
			switch {
			case m.fn != nil:
				return m.fn()
			case m.counter != nil:
				return float64(m.counter.Value())
			case m.gauge != nil:
				return m.gauge.Value()
			}
			return 0
		}})
	}
	return out
}

// Label renders one label pair for CounterWith/GaugeWith/HistogramWith,
// escaping the value per the Prometheus text format.
func Label(key, value string) string {
	return key + `="` + escapeLabelValue(value) + `"`
}

func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// CounterWith returns the counter series of one family carrying the given
// label set (built with Label), registering it on first use. Series of one
// family share a single HELP/TYPE header in the exposition; an exemplar-
// style label (episode="3") distinguishes the samples.
func (r *Registry) CounterWith(name, labels, help string) *Counter {
	m, existed := r.lookupLabeled(name, labels, help, KindCounter)
	if !existed {
		m.counter = &Counter{}
	}
	return m.counter
}

// GaugeWith returns the labeled gauge series of one family, registering it
// on first use.
func (r *Registry) GaugeWith(name, labels, help string) *Gauge {
	m, existed := r.lookupLabeled(name, labels, help, KindGauge)
	if !existed {
		m.gauge = &Gauge{}
	}
	return m.gauge
}

// HistogramWith returns the labeled histogram series of one family,
// registering it on first use; the label set joins le in the bucket
// samples.
func (r *Registry) HistogramWith(name, labels, help string, buckets []float64) *Histogram {
	m, existed := r.lookupLabeled(name, labels, help, KindHistogram)
	if !existed {
		up := make([]float64, len(buckets))
		copy(up, buckets)
		sort.Float64s(up)
		m.hist = &Histogram{upper: up, counts: make([]atomic.Int64, len(up)+1)}
	}
	return m.hist
}

// Counter returns the named counter, registering it on first use.
// Repeated calls with the same name return the same counter.
func (r *Registry) Counter(name, help string) *Counter {
	m, existed := r.lookup(name, help, KindCounter)
	if !existed {
		m.counter = &Counter{}
	}
	return m.counter
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	m, existed := r.lookup(name, help, KindGauge)
	if !existed {
		m.gauge = &Gauge{}
	}
	return m.gauge
}

// GaugeFunc registers a gauge whose value is read from fn at exposition
// time — the bridge for subsystems that already keep their own counters
// (one source of truth, no double accounting). Re-registering a name
// replaces its callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	m, _ := r.lookup(name, help, KindGauge)
	m.fn = fn
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time. fn must be monotonic.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	m, _ := r.lookup(name, help, KindCounter)
	m.fn = fn
}

// CounterFuncWith registers one labeled series of a counter family whose
// value is read from fn at exposition time — the bridge for subsystems
// keeping per-dimension counters of their own (e.g. per-kind fan-out
// drops). fn must be monotonic.
func (r *Registry) CounterFuncWith(name, labels, help string, fn func() float64) {
	m, _ := r.lookupLabeled(name, labels, help, KindCounter)
	m.fn = fn
}

// Histogram returns the named histogram, registering it on first use with
// the given upper bounds (sorted ascending; +Inf is implicit). Buckets
// are fixed at first registration; later calls ignore the argument.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	m, existed := r.lookup(name, help, KindHistogram)
	if !existed {
		up := make([]float64, len(buckets))
		copy(up, buckets)
		sort.Float64s(up)
		m.hist = &Histogram{upper: up, counts: make([]atomic.Int64, len(up)+1)}
	}
	return m.hist
}

// HistogramView is a point-in-time copy of one histogram.
type HistogramView struct {
	Upper  []float64 // bucket upper bounds (+Inf implicit)
	Counts []int64   // per-bucket (non-cumulative) counts; len(Upper)+1
	Sum    float64
	Count  int64
}

// Mean returns the view's average observed value (0 when empty).
func (h *HistogramView) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-quantile from the view's bucket counts, as
// Histogram.Quantile does.
func (h *HistogramView) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.Counts {
		cum += c
		if cum >= rank {
			if i < len(h.Upper) {
				return h.Upper[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// MetricSnapshot is a point-in-time copy of one metric.
type MetricSnapshot struct {
	Name   string
	Labels string // rendered label pairs ("" for unlabeled series)
	Help   string
	Kind   Kind
	Value  float64        // counters, gauges
	Hist   *HistogramView // histograms only
}

// Snapshot copies every metric, sorted by name then label set — a stable
// order no matter when each subsystem registered, so two scrapes of a
// quiescent registry are textually identical and diffs between scrapes are
// meaningful. Labeled series of one family are adjacent.
func (r *Registry) Snapshot() []MetricSnapshot {
	r.mu.Lock()
	metrics := make([]*metric, len(r.metrics))
	copy(metrics, r.metrics)
	r.mu.Unlock()
	sort.Slice(metrics, func(i, j int) bool {
		if metrics[i].name != metrics[j].name {
			return metrics[i].name < metrics[j].name
		}
		return metrics[i].labels < metrics[j].labels
	})
	out := make([]MetricSnapshot, 0, len(metrics))
	for _, m := range metrics {
		s := MetricSnapshot{Name: m.name, Labels: m.labels, Help: m.help, Kind: m.kind}
		switch {
		case m.fn != nil:
			s.Value = m.fn()
		case m.counter != nil:
			s.Value = float64(m.counter.Value())
		case m.gauge != nil:
			s.Value = m.gauge.Value()
		case m.hist != nil:
			hv := &HistogramView{
				Upper:  m.hist.upper,
				Counts: make([]int64, len(m.hist.counts)),
				Sum:    m.hist.Sum(),
				Count:  m.hist.Count(),
			}
			for i := range m.hist.counts {
				hv.Counts[i] = m.hist.counts[i].Load()
			}
			s.Hist = hv
		}
		out = append(out, s)
	}
	return out
}

// Expose writes the registry in Prometheus text exposition format
// (version 0.0.4): HELP/TYPE comments, cumulative histogram buckets with
// le labels, _sum and _count series.
func (r *Registry) Expose(w io.Writer) error {
	var b strings.Builder
	lastFamily := ""
	for _, s := range r.Snapshot() {
		// One HELP/TYPE header per family; labeled series follow as
		// additional samples of the same family.
		if s.Name != lastFamily {
			lastFamily = s.Name
			// Every family gets a HELP line, even with an empty docstring
			// (the text format allows it) — scrapers that key families off
			// HELP see a uniform stream.
			b.WriteString("# HELP ")
			b.WriteString(s.Name)
			if s.Help != "" {
				b.WriteByte(' ')
				b.WriteString(escapeHelp(s.Help))
			}
			b.WriteByte('\n')
			b.WriteString("# TYPE ")
			b.WriteString(s.Name)
			b.WriteByte(' ')
			b.WriteString(string(s.Kind))
			b.WriteByte('\n')
		}
		if s.Hist == nil {
			b.WriteString(s.Name)
			if s.Labels != "" {
				b.WriteByte('{')
				b.WriteString(s.Labels)
				b.WriteByte('}')
			}
			b.WriteByte(' ')
			b.WriteString(formatFloat(s.Value))
			b.WriteByte('\n')
			continue
		}
		lePrefix := "" // joins the label set with le in bucket samples
		suffix := ""
		if s.Labels != "" {
			lePrefix = s.Labels + ","
			suffix = "{" + s.Labels + "}"
		}
		var cum int64
		for i, ub := range s.Hist.Upper {
			cum += s.Hist.Counts[i]
			fmt.Fprintf(&b, "%s_bucket{%sle=%q} %d\n", s.Name, lePrefix, formatFloat(ub), cum)
		}
		cum += s.Hist.Counts[len(s.Hist.Counts)-1]
		fmt.Fprintf(&b, "%s_bucket{%sle=\"+Inf\"} %d\n", s.Name, lePrefix, cum)
		fmt.Fprintf(&b, "%s_sum%s %s\n", s.Name, suffix, formatFloat(s.Hist.Sum))
		fmt.Fprintf(&b, "%s_count%s %d\n", s.Name, suffix, s.Hist.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
