package telemetry

import (
	"math"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := New()
	c := r.Counter("skynet_test_total", "test counter")
	c.Inc()
	c.Add(4)
	c.Add(-2) // ignored: counters are monotonic
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("skynet_test_total", ""); again != c {
		t.Error("re-registration returned a different counter")
	}

	g := r.Gauge("skynet_test_gauge", "test gauge")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Errorf("gauge = %v, want 1.5", g.Value())
	}
	g.SetInt(7)
	if g.Value() != 7 {
		t.Errorf("gauge = %v, want 7", g.Value())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("skynet_dual", "")
	defer func() {
		if recover() == nil {
			t.Error("registering a gauge over a counter did not panic")
		}
	}()
	r.Gauge("skynet_dual", "")
}

func TestHistogram(t *testing.T) {
	r := New()
	h := r.Histogram("skynet_test_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if want := 0.005 + 0.05 + 0.05 + 0.5 + 5; math.Abs(h.Sum()-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", h.Sum(), want)
	}
	if got := h.Quantile(0.5); got != 0.1 {
		t.Errorf("p50 = %v, want 0.1 (bucket upper bound)", got)
	}
	if got := h.Quantile(1); !math.IsInf(got, 1) {
		t.Errorf("p100 = %v, want +Inf", got)
	}
	if got := h.Mean(); math.Abs(got-1.121) > 1e-9 {
		t.Errorf("mean = %v, want 1.121", got)
	}
}

func TestExposeFormat(t *testing.T) {
	r := New()
	r.Counter("skynet_raw_total", "Raw alerts ingested.").Add(42)
	r.Gauge("skynet_active", "Active incidents.").SetInt(3)
	r.GaugeFunc("skynet_func", "Callback gauge.", func() float64 { return 9 })
	h := r.Histogram("skynet_tick_seconds", "Tick latency.", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(7)

	var b strings.Builder
	if err := r.Expose(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP skynet_raw_total Raw alerts ingested.",
		"# TYPE skynet_raw_total counter",
		"skynet_raw_total 42",
		"# HELP skynet_active Active incidents.",
		"# TYPE skynet_active gauge",
		"skynet_active 3",
		"skynet_func 9",
		"# HELP skynet_tick_seconds Tick latency.",
		"# TYPE skynet_tick_seconds histogram",
		`skynet_tick_seconds_bucket{le="0.01"} 1`,
		`skynet_tick_seconds_bucket{le="0.1"} 2`,
		`skynet_tick_seconds_bucket{le="+Inf"} 3`,
		"skynet_tick_seconds_sum 7.055",
		"skynet_tick_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Prometheus text-format compliance: every family carries a HELP and a
	// TYPE comment, HELP first, exactly once per family — even families
	// registered with an empty docstring.
	families := map[string][2]int{} // family -> {help count, type count}
	lastHelp := ""
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			name := strings.Fields(line)[2]
			f := families[name]
			f[0]++
			families[name] = f
			lastHelp = name
		case strings.HasPrefix(line, "# TYPE "):
			name := strings.Fields(line)[2]
			f := families[name]
			f[1]++
			families[name] = f
			if lastHelp != name {
				t.Errorf("TYPE for %s not preceded by its HELP line", name)
			}
		}
	}
	for _, name := range []string{"skynet_raw_total", "skynet_active", "skynet_func", "skynet_tick_seconds"} {
		if f := families[name]; f[0] != 1 || f[1] != 1 {
			t.Errorf("family %s: %d HELP / %d TYPE lines, want exactly 1 of each", name, f[0], f[1])
		}
	}
}

func TestHandlesAndRev(t *testing.T) {
	r := New()
	rev0 := r.Rev()
	c := r.Counter("skynet_h_total", "")
	g := r.Gauge("skynet_h_gauge", "")
	h := r.Histogram("skynet_h_seconds", "", []float64{0.01, 0.1})
	r.GaugeFunc("skynet_h_func", "", func() float64 { return 11 })
	r.CounterWith("skynet_h_labeled_total", Label("shard", "2"), "")
	if r.Rev() == rev0 {
		t.Fatal("Rev did not advance on registration")
	}
	c.Add(5)
	g.Set(2.5)
	h.Observe(0.05)
	h.Observe(0.05)

	handles := r.Handles()
	byName := map[string]Handle{}
	for i, hd := range handles {
		byName[hd.Name] = hd
		if i > 0 && handles[i-1].Name > hd.Name {
			t.Fatalf("handles not sorted: %q before %q", handles[i-1].Name, hd.Name)
		}
	}
	for name, want := range map[string]float64{
		"skynet_h_total":                    5,
		"skynet_h_gauge":                    2.5,
		"skynet_h_func":                     11,
		"skynet_h_seconds_count":            2,
		"skynet_h_seconds_sum":              0.1,
		`skynet_h_labeled_total{shard="2"}`: 0,
	} {
		hd, ok := byName[name]
		if !ok {
			t.Fatalf("Handles missing %q (have %d handles)", name, len(handles))
		}
		if got := hd.Read(); math.Abs(got-want) > 1e-9 {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	// Handles are live readers, not snapshots.
	c.Add(5)
	if got := byName["skynet_h_total"].Read(); got != 10 {
		t.Errorf("handle after mutation = %v, want 10", got)
	}
	// Re-registering an existing series must not move Rev.
	rev1 := r.Rev()
	r.Counter("skynet_h_total", "")
	if r.Rev() != rev1 {
		t.Error("Rev advanced on repeat registration of an existing series")
	}
}

func TestSnapshotOrderAndContent(t *testing.T) {
	r := New()
	r.Counter("b_total", "").Inc()
	r.Gauge("a_gauge", "").Set(1)
	snaps := r.Snapshot()
	if len(snaps) != 2 || snaps[0].Name != "a_gauge" || snaps[1].Name != "b_total" {
		t.Fatalf("snapshot order = %+v, want name-sorted order", snaps)
	}
	if snaps[1].Kind != KindCounter || snaps[1].Value != 1 {
		t.Errorf("counter snapshot = %+v", snaps[1])
	}
}

// TestExposeStableAcrossScrapes is the scrape-stability regression test:
// at quiescence two consecutive scrapes must be byte-identical regardless
// of the order subsystems registered their metrics, so scrape diffs only
// ever show value changes.
func TestExposeStableAcrossScrapes(t *testing.T) {
	r := New()
	// Deliberately register out of name order, interleaving kinds.
	r.Counter("skynet_z_total", "last registered, first sorted? no — z").Add(3)
	r.Histogram("skynet_m_seconds", "a histogram", LatencyBuckets()).Observe(0.002)
	r.Gauge("skynet_a_gauge", "registered after z, exposed before it").Set(42)
	r.GaugeFunc("skynet_f_gauge", "func-backed", func() float64 { return 7 })

	scrape := func() string {
		var b strings.Builder
		if err := r.Expose(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	first, second := scrape(), scrape()
	if first != second {
		t.Fatalf("consecutive scrapes differ at quiescence:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
	// The series must appear in name order.
	var pos []int
	for _, name := range []string{"skynet_a_gauge", "skynet_f_gauge", "skynet_m_seconds", "skynet_z_total"} {
		i := strings.Index(first, "# TYPE "+name)
		if i < 0 {
			t.Fatalf("scrape missing %s:\n%s", name, first)
		}
		pos = append(pos, i)
	}
	if !sort.IntsAreSorted(pos) {
		t.Fatalf("metrics not name-sorted in exposition (offsets %v):\n%s", pos, first)
	}
}

func TestConcurrentMutation(t *testing.T) {
	r := New()
	c := r.Counter("skynet_conc_total", "")
	h := r.Histogram("skynet_conc_seconds", "", LatencyBuckets())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i) * 1e-5)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
}
