package flood

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"skynet/internal/alert"
	"skynet/internal/hierarchy"
	"skynet/internal/incident"
	"skynet/internal/telemetry"
	"skynet/internal/tsdb"
)

var epoch = time.Date(2024, 7, 2, 11, 0, 0, 0, time.UTC)

func tickTime(tick uint64) time.Time {
	return epoch.Add(time.Duration(tick) * 10 * time.Second)
}

// feed drives one detector tick: raw alerts through the inter-tick tap,
// the same alerts as the structured batch, and any created incidents
// (also reported active so severity tracking sees them).
func feed(r *Recorder, tick uint64, raw int, created ...*incident.Incident) TickOutcome {
	a := alert.Alert{
		Source:   alert.SourcePing,
		Type:     "packet loss",
		Time:     tickTime(tick),
		Location: hierarchy.MustNew("r1", "dc1", "pod1", "rack1", "dev1"),
	}
	structured := make([]alert.Alert, 0, raw)
	for i := 0; i < raw; i++ {
		r.ObserveRaw(a)
		structured = append(structured, a)
	}
	return r.ObserveTick(tickTime(tick), tick, structured, created, created, nil)
}

// quietThenBurst drives the canonical lifecycle: quiet background, a
// sustained burst, a fall-off, then silence until the episode closes.
// Returns the closed report.
func quietThenBurst(t *testing.T, r *Recorder) *Report {
	t.Helper()
	tick := uint64(0)
	for ; tick < 10; tick++ { // quiet baseline
		if out := feed(r, tick, 1); out.EpisodeID != 0 {
			t.Fatalf("tick %d: quiet background opened episode %d", tick, out.EpisodeID)
		}
	}
	for ; tick < 14; tick++ { // burst
		feed(r, tick, 100)
	}
	feed(r, tick, 50) // falling edge: rate below fast EWMA → peak
	tick++
	var closed *Report
	for ; tick < 40 && closed == nil; tick++ { // silence until close
		closed = feed(r, tick, 0).Closed
	}
	if closed == nil {
		t.Fatal("episode never closed after the burst ended")
	}
	return closed
}

func TestDetectorLifecycle(t *testing.T) {
	r := New(Config{})
	var events []Event
	r.SetNotify(func(ev Event) { events = append(events, ev) })

	rep := quietThenBurst(t, r)
	if rep.ID != 1 {
		t.Errorf("episode ID = %d, want 1", rep.ID)
	}
	if rep.Phase != PhaseClosed {
		t.Errorf("closed report phase = %s", rep.Phase)
	}
	// The burst starts at tick 10 and confirms at tick 11; the report
	// must be backdated to the first qualifying tick.
	if rep.StartTick != 10 {
		t.Errorf("StartTick = %d, want 10 (backdated to the onset rise)", rep.StartTick)
	}
	if !rep.Start.Equal(tickTime(10)) {
		t.Errorf("Start = %v, want %v", rep.Start, tickTime(10))
	}
	// Volume: 4 ticks at 100 plus the 50-alert falling edge, counted
	// from the backdated start, silence after.
	if want := int64(450); rep.RawTotal != want {
		t.Errorf("RawTotal = %d, want %d", rep.RawTotal, want)
	}
	if rep.StructuredTotal != rep.RawTotal {
		t.Errorf("StructuredTotal = %d, want %d (feed emits 1:1)", rep.StructuredTotal, rep.RawTotal)
	}
	if rep.ConsolidationRatio != 1 {
		t.Errorf("ConsolidationRatio = %v, want 1", rep.ConsolidationRatio)
	}
	if rep.PeakRate != 100 {
		t.Errorf("PeakRate = %d, want 100", rep.PeakRate)
	}
	if rep.DurationTicks != rep.EndTick-rep.StartTick+1 {
		t.Errorf("DurationTicks = %d, EndTick = %d, StartTick = %d",
			rep.DurationTicks, rep.EndTick, rep.StartTick)
	}
	if rep.RawBySource["ping"] != rep.RawTotal {
		t.Errorf("RawBySource = %v, want all %d under ping", rep.RawBySource, rep.RawTotal)
	}
	if len(rep.TopLocations) != 1 || rep.TopLocations[0].Count != rep.StructuredTotal {
		t.Errorf("TopLocations = %+v, want the single feed location", rep.TopLocations)
	}
	// The phase timeline must walk onset → peak → decay → closed.
	var names []string
	for _, pc := range rep.Timeline {
		names = append(names, pc.Phase.String())
	}
	if got := strings.Join(names, " "); got != "onset peak decay closed" {
		t.Errorf("timeline = %q, want \"onset peak decay closed\"", got)
	}
	// Notify saw the same transitions, all tagged with the episode ID.
	if len(events) != len(rep.Timeline) {
		t.Fatalf("notify fired %d events, timeline has %d transitions", len(events), len(rep.Timeline))
	}
	for i, ev := range events {
		if ev.Episode != rep.ID || ev.Phase != rep.Timeline[i].Phase {
			t.Errorf("event %d = %+v, want episode %d phase %s", i, ev, rep.ID, rep.Timeline[i].Phase)
		}
	}
	if r.CurrentID() != 0 || r.CurrentPhase() != PhaseIdle {
		t.Errorf("after close: CurrentID=%d CurrentPhase=%s, want idle", r.CurrentID(), r.CurrentPhase())
	}
	if r.ClosedCount() != 1 {
		t.Errorf("ClosedCount = %d, want 1", r.ClosedCount())
	}
}

func TestChurnOnsetAdoptsIncidents(t *testing.T) {
	r := New(Config{})
	root := hierarchy.MustNew("r1", "dc1")
	mk := func(id int, sev float64) *incident.Incident {
		in := incident.New(id, root)
		in.Severity = sev
		return in
	}
	// No rate at all — incident churn alone must confirm an episode.
	feed(r, 0, 0)
	out := feed(r, 1, 0, mk(1, 0.2), mk(2, 0.4), mk(3, 0.1))
	if out.EpisodeID != 0 {
		t.Fatalf("churn run confirmed after one tick (ConfirmTicks=2): %+v", out)
	}
	out = feed(r, 2, 0, mk(4, 0.9), mk(5, 0.3), mk(6, 0.5))
	if !out.Opened || out.EpisodeID != 1 {
		t.Fatalf("churn did not open an episode: %+v", out)
	}
	// The opening tick backfills the incidents created during the rise.
	if len(out.Adopted) != 6 {
		t.Fatalf("Adopted = %v, want the 6 incidents from both churn ticks", out.Adopted)
	}
	rep, ok := r.Report(1)
	if !ok {
		t.Fatal("open episode not reachable via Report")
	}
	if rep.IncidentsCreated != 6 || len(rep.Incidents) != 6 {
		t.Errorf("IncidentsCreated = %d, timeline %d, want 6", rep.IncidentsCreated, len(rep.Incidents))
	}
	if rep.MaxSeverity != 0.9 || rep.MaxSeverityIncident != 4 {
		t.Errorf("MaxSeverity = %v on %d, want 0.9 on 4", rep.MaxSeverity, rep.MaxSeverityIncident)
	}
}

func TestMinorBurstNeverConfirms(t *testing.T) {
	r := New(Config{})
	for tick := uint64(0); tick < 10; tick++ {
		feed(r, tick, 1)
	}
	// The benign "minor" shape: one 11-alert tick, then ~1/tick. The
	// single qualifying tick must not confirm (ConfirmTicks=2).
	feed(r, 10, 11)
	for tick := uint64(11); tick < 30; tick++ {
		if out := feed(r, tick, 1); out.EpisodeID != 0 {
			t.Fatalf("tick %d: minor burst opened episode %d", tick, out.EpisodeID)
		}
	}
	if got := r.Episodes(); len(got) != 0 {
		t.Fatalf("minor burst produced %d episodes", len(got))
	}
}

func TestEpisodeRetention(t *testing.T) {
	r := New(Config{MaxEpisodes: 2})
	for i := 0; i < 3; i++ {
		quietThenBurst(t, r)
	}
	eps := r.Episodes()
	if len(eps) != 2 {
		t.Fatalf("retained %d episodes, want 2", len(eps))
	}
	if eps[0].ID != 2 || eps[1].ID != 3 {
		t.Errorf("retained IDs %d,%d; want oldest evicted (2,3)", eps[0].ID, eps[1].ID)
	}
	if _, ok := r.Report(1); ok {
		t.Error("evicted episode 1 still reachable via Report")
	}
	if r.ClosedCount() != 3 {
		t.Errorf("ClosedCount = %d, want 3 (eviction must not rewind it)", r.ClosedCount())
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	r := New(Config{})
	rep := quietThenBurst(t, r)
	first, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Report
	if err := json.Unmarshal(first, &decoded); err != nil {
		t.Fatalf("report does not unmarshal into its own struct: %v", err)
	}
	second, err := json.Marshal(&decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("report JSON does not round-trip:\n first: %s\nsecond: %s", first, second)
	}
	if decoded.Phase != PhaseClosed || decoded.RawTotal != rep.RawTotal {
		t.Errorf("decoded report lost fields: %+v", decoded)
	}
}

func TestPerfExcludedFromFingerprint(t *testing.T) {
	a, b := New(Config{}), New(Config{})
	// Identical alert streams, but only a records wall-clock perf.
	tick := uint64(0)
	for ; tick < 12; tick++ {
		raw := 1
		if tick >= 10 {
			raw = 100
		}
		feed(a, tick, raw)
		feed(b, tick, raw)
		a.ObservePerf(time.Duration(tick+1)*time.Millisecond, int64(tick))
	}
	if a.CurrentID() != 1 || b.CurrentID() != 1 {
		t.Fatalf("episodes not open: a=%d b=%d", a.CurrentID(), b.CurrentID())
	}
	rep, _ := a.Report(1)
	if rep.Perf.Ticks == 0 {
		t.Error("ObservePerf recorded nothing on the open episode")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("wall-clock perf leaked into the deterministic fingerprint:\n%s\nvs\n%s",
			a.Fingerprint(), b.Fingerprint())
	}
}

func TestRegisterMetricsEpisodeLabels(t *testing.T) {
	reg := telemetry.New()
	r := New(Config{})
	r.RegisterMetrics(reg)
	quietThenBurst(t, r)
	var b strings.Builder
	if err := reg.Expose(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`skynet_flood_episode_raw_total{episode="1"} 450`,
		`skynet_flood_episodes_total 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestPhaseTextRoundTrip(t *testing.T) {
	for _, p := range []Phase{PhaseIdle, PhaseOnset, PhasePeak, PhaseDecay, PhaseClosed} {
		b, err := p.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var got Phase
		if err := got.UnmarshalText(b); err != nil {
			t.Fatal(err)
		}
		if got != p {
			t.Errorf("phase %s round-tripped to %s", p, got)
		}
	}
	var bad Phase
	if err := bad.UnmarshalText([]byte("nope")); err == nil {
		t.Error("unknown phase text silently accepted")
	}
}

// TestHistoryTapAttachesCurves wires a tick-indexed store behind the
// SetHistory tap: the closed report must carry the metric's samples over
// the episode window, unknown metrics are skipped, and the curves stay
// out of the determinism fingerprint.
func TestHistoryTapAttachesCurves(t *testing.T) {
	db := tsdb.New(tsdb.Config{})
	for tick := uint64(0); tick < 40; tick++ {
		db.Append("skynet_preprocess_pending", tick, float64(tick))
	}
	r := New(Config{})
	r.SetHistory(HistoryFromDB(db, "skynet_preprocess_pending", "skynet_no_such_metric"))
	rep := quietThenBurst(t, r)
	if len(rep.History) != 1 {
		t.Fatalf("History = %+v, want the one known metric", rep.History)
	}
	hc := rep.History[0]
	if hc.Metric != "skynet_preprocess_pending" || hc.FromTick != rep.StartTick || hc.Step != 1 {
		t.Fatalf("curve = %+v, want window starting at %d step 1", hc, rep.StartTick)
	}
	if want := int(rep.EndTick - rep.StartTick + 1); len(hc.Values) != want {
		t.Fatalf("curve has %d samples, want %d (one per episode tick)", len(hc.Values), want)
	}
	if hc.Values[0] != float64(rep.StartTick) {
		t.Fatalf("curve[0] = %v, want %v (the stored tick value)", hc.Values[0], rep.StartTick)
	}
	if fp := rep.Fingerprint(); strings.Contains(fp, "skynet_preprocess_pending") {
		t.Error("history curves leaked into the determinism fingerprint")
	}
	if !strings.Contains(rep.Render(), "history") {
		t.Error("Render omits the history curves")
	}
}
