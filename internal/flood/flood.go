// Package flood detects and documents alert-flood episodes: the severe
// failures of §2 that bury operators under O(10^4)–O(10^5) raw alerts.
// The rest of the observability stack sees ticks, spans, and individual
// incidents; this package adds the missing first-class object — "a flood
// happened from t1 to t2, here is what it looked like" — so metrics,
// traces, provenance, and postmortem reports can all join on one key,
// the episode ID.
//
// # Detection
//
// The detector is a hysteresis state machine over two EWMAs of the
// per-tick raw ingest rate, plus an incident-churn trigger:
//
//   - fast (α=0.5) tracks the current rate with a ~2-tick memory;
//   - slow (α=0.05) is the quiet baseline. It only absorbs ticks that do
//     not qualify toward onset, so a flood cannot raise its own
//     reference level, and it re-seeds after each episode so the next
//     comparison is against the post-flood quiet.
//
// A tick qualifies when fast ≥ OnsetRate AND fast ≥ OnsetFactor × the
// baseline (floored at BaselineFloor), or when the tick created at
// least ChurnOnset incidents. ConfirmTicks consecutive qualifying ticks
// open an episode, backdated to the first tick of the run; fast <
// ReleaseRate for HoldTicks consecutive ticks closes it. Within an
// episode the phase advances onset → peak when the rate stops rising,
// and peak → decay once the rate drops below the release level; the
// rates are calibrated so the weakest severe scenario (route leaks,
// ~4–16 alerts/tick on the small topology) confirms while benign minor
// events (one 11-alert tick decaying to ~1/tick) and background noise
// never do.
//
// # Determinism
//
// The state machine consumes only per-tick counts the pipeline already
// computes deterministically — raw ingested, structured emitted,
// incidents created/closed — never wall-clock latency. Episode IDs,
// boundaries, and every aggregate in a Report are therefore
// bit-identical across replays at any worker count; Fingerprint()
// asserts exactly that. Wall-clock tick latency and shed counts are
// still recorded per episode, but through ObservePerf into the Perf
// section, which the fingerprint excludes.
package flood

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"skynet/internal/alert"
	"skynet/internal/incident"
	"skynet/internal/intern"
	"skynet/internal/telemetry"
	"skynet/internal/tsdb"
)

// Defaults for Config's zero fields, calibrated against the small
// topology's scenario suite at the 10s tick (see DESIGN.md §8).
const (
	DefaultFastAlpha     = 0.5
	DefaultSlowAlpha     = 0.05
	DefaultOnsetRate     = 5.0
	DefaultOnsetFactor   = 8.0
	DefaultConfirmTicks  = 2
	DefaultChurnOnset    = 3
	DefaultReleaseRate   = 3.0
	DefaultHoldTicks     = 6
	DefaultBaselineFloor = 0.5
	DefaultTopK          = 5
	DefaultMaxEpisodes   = 16
	DefaultTrajectoryCap = 512
	DefaultIncidentCap   = 64
)

// Config tunes the detector. The zero value applies the defaults.
type Config struct {
	// FastAlpha is the EWMA weight of the current-rate tracker.
	FastAlpha float64
	// SlowAlpha is the EWMA weight of the quiet baseline.
	SlowAlpha float64
	// OnsetRate is the minimum fast EWMA (raw alerts/tick) for a tick to
	// qualify toward onset.
	OnsetRate float64
	// OnsetFactor is how far above the baseline the fast EWMA must sit
	// for a tick to qualify.
	OnsetFactor float64
	// ConfirmTicks is how many consecutive qualifying ticks open an
	// episode.
	ConfirmTicks int
	// ChurnOnset is the incident-churn trigger: a tick creating at least
	// this many incidents qualifies regardless of rate.
	ChurnOnset int
	// ReleaseRate is the fast-EWMA level below which a tick counts
	// toward release.
	ReleaseRate float64
	// HoldTicks is how many consecutive sub-release ticks close an
	// episode.
	HoldTicks int
	// BaselineFloor bounds the baseline from below so the onset factor
	// stays meaningful after silent stretches.
	BaselineFloor float64
	// TopK is how many top locations a report lists.
	TopK int
	// MaxEpisodes caps retained closed-episode reports (oldest evicted).
	MaxEpisodes int
	// TrajectoryCap caps per-episode trajectory points; later ticks are
	// dropped (counted in Report.TrajectoryDropped).
	TrajectoryCap int
	// IncidentCap caps per-episode incident-timeline entries; the
	// created counter keeps counting past the cap.
	IncidentCap int
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.FastAlpha <= 0 || c.FastAlpha > 1 {
		c.FastAlpha = DefaultFastAlpha
	}
	if c.SlowAlpha <= 0 || c.SlowAlpha > 1 {
		c.SlowAlpha = DefaultSlowAlpha
	}
	if c.OnsetRate <= 0 {
		c.OnsetRate = DefaultOnsetRate
	}
	if c.OnsetFactor <= 0 {
		c.OnsetFactor = DefaultOnsetFactor
	}
	if c.ConfirmTicks <= 0 {
		c.ConfirmTicks = DefaultConfirmTicks
	}
	if c.ChurnOnset <= 0 {
		c.ChurnOnset = DefaultChurnOnset
	}
	if c.ReleaseRate <= 0 {
		c.ReleaseRate = DefaultReleaseRate
	}
	if c.HoldTicks <= 0 {
		c.HoldTicks = DefaultHoldTicks
	}
	if c.BaselineFloor <= 0 {
		c.BaselineFloor = DefaultBaselineFloor
	}
	if c.TopK <= 0 {
		c.TopK = DefaultTopK
	}
	if c.MaxEpisodes <= 0 {
		c.MaxEpisodes = DefaultMaxEpisodes
	}
	if c.TrajectoryCap <= 0 {
		c.TrajectoryCap = DefaultTrajectoryCap
	}
	if c.IncidentCap <= 0 {
		c.IncidentCap = DefaultIncidentCap
	}
	return c
}

// Phase is an episode's lifecycle stage.
type Phase int

// The episode lifecycle: onset (rate rising past the trigger), peak
// (rate crested), decay (rate below release, hold running), closed.
const (
	PhaseIdle Phase = iota
	PhaseOnset
	PhasePeak
	PhaseDecay
	PhaseClosed
)

var phaseNames = [...]string{"idle", "onset", "peak", "decay", "closed"}

// String returns the lowercase phase name.
func (p Phase) String() string {
	if p < 0 || int(p) >= len(phaseNames) {
		return fmt.Sprintf("phase(%d)", int(p))
	}
	return phaseNames[p]
}

// MarshalText implements encoding.TextMarshaler.
func (p Phase) MarshalText() ([]byte, error) { return []byte(p.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (p *Phase) UnmarshalText(b []byte) error {
	for i, n := range phaseNames {
		if n == string(b) {
			*p = Phase(i)
			return nil
		}
	}
	return fmt.Errorf("flood: unknown phase %q", string(b))
}

// Event is one episode lifecycle notification, emitted on open, phase
// change, and close.
type Event struct {
	// Time is the pipeline time of the tick that made the transition.
	Time time.Time `json:"time"`
	// Episode is the episode ID.
	Episode uint64 `json:"episode"`
	// Phase is the phase just entered.
	Phase Phase `json:"phase"`
	// Detail describes the transition with its measured rates.
	Detail string `json:"detail"`
}

// TickOutcome tells the engine what one ObserveTick changed.
type TickOutcome struct {
	// EpisodeID is the open episode after the tick, 0 when idle.
	EpisodeID uint64
	// Opened is true when an episode was confirmed this tick.
	Opened bool
	// Adopted lists incident IDs newly attributed to the episode this
	// tick — on the opening tick it backfills incidents created during
	// the onset rise.
	Adopted []int
	// Closed is the finished report when an episode closed this tick.
	Closed *Report
	// Events are the lifecycle notifications fired this tick (also
	// delivered to the SetNotify callback).
	Events []Event
}

// cumulative is the recorder's running totals; snapshotting it when a
// qualifying run starts lets a confirmed episode's aggregates include
// the onset rise (the ticks before confirmation).
type cumulative struct {
	raw        int64
	structured int64
	bySource   []int64 // indexed by alert.Source
	byType     []int64 // indexed by intern.TypeID
	byLoc      []int64 // indexed by intern.PathID
	created    int64
	closed     int64
}

func (c *cumulative) clone() cumulative {
	cp := *c
	cp.bySource = append([]int64(nil), c.bySource...)
	cp.byType = append([]int64(nil), c.byType...)
	cp.byLoc = append([]int64(nil), c.byLoc...)
	return cp
}

// episodeMetrics are the per-episode labeled registry handles, resolved
// when an episode opens (nil when no registry is attached).
type episodeMetrics struct {
	raw        *telemetry.Counter
	structured *telemetry.Counter
	incidents  *telemetry.Counter
}

// pendingIncident is an incident created during a not-yet-confirmed
// qualifying run, adopted if the run confirms.
type pendingIncident struct {
	id   int
	root string
	at   time.Time
}

// Recorder is the flood detector plus forensics accumulator. ObserveRaw,
// ObserveTick, and ObservePerf must be called from one goroutine (the
// engine loop); every read accessor is safe from any goroutine.
type Recorder struct {
	cfg Config

	// Inter-tick raw tap, engine-goroutine only: written per alert by
	// ObserveRaw without locking, drained once per ObserveTick.
	pendingRaw int64
	pendingSrc []int64

	// mu guards everything below: the detector state and running totals
	// (written once per tick) and the episode reports (read by HTTP
	// handlers and renderers).
	mu      sync.Mutex
	paths   *intern.PathTable
	types   *intern.TypeTable
	cum     cumulative
	fast    float64
	slow    float64
	slowN   int // ticks absorbed into slow since the last re-seed
	runLen  int // consecutive qualifying ticks while idle
	runSnap cumulative
	runTick uint64
	runTime time.Time
	pending []pendingIncident
	holdLen int // consecutive sub-release ticks while open

	nextID  uint64
	open    *Report
	openEM  *episodeMetrics
	closed  []*Report
	nClosed int64

	reg        *telemetry.Registry
	phaseGauge *telemetry.Gauge
	curGauge   *telemetry.Gauge
	epCounter  *telemetry.Counter

	notify  func(Event)
	history func(fromTick, toTick uint64) []HistoryCurve
}

// New builds a recorder, applying defaults for zero Config fields.
func New(cfg Config) *Recorder {
	return &Recorder{
		cfg:        cfg.withDefaults(),
		paths:      intern.NewPathTable(),
		types:      intern.NewTypeTable(),
		pendingSrc: make([]int64, len(alert.Sources())+1),
	}
}

// SetNotify installs the episode event callback (the SSE bus tap and
// report archiver). The callback runs on the ObserveTick goroutine,
// outside the recorder's lock.
func (r *Recorder) SetNotify(fn func(Event)) {
	r.mu.Lock()
	r.notify = fn
	r.mu.Unlock()
}

// SetHistory installs the history-store tap: at episode close the
// recorder calls fn with the episode's tick window and attaches the
// returned curves to the report, so postmortems carry the pipeline's
// rate and latency trajectories through the flood. The callback runs
// under the recorder's lock on the ObserveTick goroutine — it must read
// the store and nothing else (HistoryFromDB qualifies).
func (r *Recorder) SetHistory(fn func(fromTick, toTick uint64) []HistoryCurve) {
	r.mu.Lock()
	r.history = fn
	r.mu.Unlock()
}

// HistoryFromDB builds a SetHistory tap reading the named metrics from
// the tick-indexed store. Metrics the store has never seen are skipped,
// so the list can name series that only appear under load.
func HistoryFromDB(db *tsdb.DB, metrics ...string) func(fromTick, toTick uint64) []HistoryCurve {
	return func(fromTick, toTick uint64) []HistoryCurve {
		out := make([]HistoryCurve, 0, len(metrics))
		for _, m := range metrics {
			res, err := db.Query(m, fromTick, toTick, 1)
			if err != nil || len(res.Points) == 0 {
				continue
			}
			hc := HistoryCurve{
				Metric:   m,
				FromTick: res.Points[0].Tick,
				Step:     res.Step,
				Values:   make([]float64, len(res.Points)),
			}
			for i := range res.Points {
				hc.Values[i] = res.Points[i].Value
			}
			out = append(out, hc)
		}
		return out
	}
}

// RegisterMetrics exposes detector state on a registry and arms the
// per-episode labeled counters: each episode's raw/structured/incident
// totals appear as skynet_flood_episode_* series carrying an episode
// label, the join key shared with spans, provenance, and reports.
func (r *Recorder) RegisterMetrics(reg *telemetry.Registry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.reg = reg
	r.phaseGauge = reg.Gauge("skynet_flood_phase",
		"Current flood phase: 0 idle, 1 onset, 2 peak, 3 decay.")
	r.curGauge = reg.Gauge("skynet_flood_current_episode",
		"ID of the open flood episode, 0 when idle.")
	r.epCounter = reg.Counter("skynet_flood_episodes_total",
		"Flood episodes detected over the recorder's lifetime.")
	reg.GaugeFunc("skynet_flood_ingest_rate",
		"Fast EWMA of the per-tick raw ingest rate watched by the flood detector.",
		func() float64 { r.mu.Lock(); defer r.mu.Unlock(); return r.fast })
}

// newEpisodeMetricsLocked resolves the labeled handles for one episode.
func (r *Recorder) newEpisodeMetricsLocked(id uint64) *episodeMetrics {
	if r.reg == nil {
		return nil
	}
	lbl := telemetry.Label("episode", fmt.Sprintf("%d", id))
	return &episodeMetrics{
		raw: r.reg.CounterWith("skynet_flood_episode_raw_total", lbl,
			"Raw alerts ingested during one flood episode, by episode ID."),
		structured: r.reg.CounterWith("skynet_flood_episode_structured_total", lbl,
			"Structured alerts emitted during one flood episode, by episode ID."),
		incidents: r.reg.CounterWith("skynet_flood_episode_incidents_total", lbl,
			"Incidents created during one flood episode, by episode ID."),
	}
}

// ObserveRaw taps one raw alert at ingest. Engine goroutine only; no
// locks — the tallies it touches are drained only by ObserveTick on the
// same goroutine, so the per-alert hot path stays allocation- and
// contention-free.
func (r *Recorder) ObserveRaw(a alert.Alert) {
	r.pendingRaw++
	s := a.Source
	if s < 0 || int(s) >= len(r.pendingSrc) {
		s = 0
	}
	r.pendingSrc[s]++
}

// ObserveTick advances the detector by one pipeline tick and folds the
// tick's output into the open episode (if any). structured is the
// preprocessor's output batch, created this tick's new incidents,
// active the open set after the tick, closedInc incidents closed this
// tick. now/tick must advance monotonically.
func (r *Recorder) ObserveTick(now time.Time, tick uint64, structured []alert.Alert, created, active, closedInc []*incident.Incident) TickOutcome {
	r.mu.Lock()
	out := r.observeTickLocked(now, tick, structured, created, active, closedInc)
	notify := r.notify
	r.mu.Unlock()
	if notify != nil {
		for _, ev := range out.Events {
			notify(ev)
		}
	}
	return out
}

func (r *Recorder) observeTickLocked(now time.Time, tick uint64, structured []alert.Alert, created, active, closedInc []*incident.Incident) TickOutcome {
	var out TickOutcome
	raw := r.pendingRaw
	r.pendingRaw = 0

	// Judge the tick against the PRE-tick baseline: the slow EWMA only
	// absorbs ticks that do not qualify, so a flood's own volume never
	// raises the level it is compared against.
	r.fast = r.cfg.FastAlpha*float64(raw) + (1-r.cfg.FastAlpha)*r.fast
	baseline := r.slow
	if r.slowN == 0 || baseline < r.cfg.BaselineFloor {
		baseline = r.cfg.BaselineFloor
	}
	qualifies := (r.fast >= r.cfg.OnsetRate && r.fast >= r.cfg.OnsetFactor*baseline) ||
		len(created) >= r.cfg.ChurnOnset
	// The slow EWMA grows from zero rather than seeding with the first
	// tick's count: a cold start is covered by BaselineFloor, while a
	// seed from one unlucky background burst would park the baseline in
	// the detection band for hundreds of ticks at this α.
	if r.open == nil && !qualifies {
		r.slow = r.cfg.SlowAlpha*float64(raw) + (1-r.cfg.SlowAlpha)*r.slow
		r.slowN++
	}

	// A qualifying run starting this tick backdates its ledger to the
	// totals before this tick, so the onset rise counts.
	if r.open == nil && qualifies && r.runLen == 0 {
		r.runSnap = r.cum.clone()
		r.runTick = tick
		r.runTime = now
	}

	// Fold the tick into the running totals.
	r.cum.raw += raw
	if r.cum.bySource == nil {
		r.cum.bySource = make([]int64, len(r.pendingSrc))
	}
	for i, n := range r.pendingSrc {
		r.cum.bySource[i] += n
		r.pendingSrc[i] = 0
	}
	r.cum.structured += int64(len(structured))
	for i := range structured {
		tid := r.types.Intern(structured[i].Key())
		for int(tid) >= len(r.cum.byType) {
			r.cum.byType = append(r.cum.byType, 0)
		}
		r.cum.byType[tid]++
		pid := r.paths.Intern(structured[i].Location)
		for int(pid) >= len(r.cum.byLoc) {
			r.cum.byLoc = append(r.cum.byLoc, 0)
		}
		r.cum.byLoc[pid]++
	}
	r.cum.created += int64(len(created))
	r.cum.closed += int64(len(closedInc))

	if r.open == nil {
		r.advanceIdleLocked(now, tick, qualifies, created, &out)
	}
	if r.open != nil {
		r.advanceOpenLocked(now, tick, raw, len(structured), created, active, &out)
	}
	if r.open != nil {
		out.EpisodeID = r.open.ID
	}
	if r.phaseGauge != nil {
		ph, cur := PhaseIdle, uint64(0)
		if r.open != nil {
			ph, cur = r.open.Phase, r.open.ID
		}
		r.phaseGauge.SetInt(int(ph))
		r.curGauge.SetInt(int(cur))
	}
	return out
}

// advanceIdleLocked advances the pending-onset run and opens an episode
// when it confirms. Caller holds mu.
func (r *Recorder) advanceIdleLocked(now time.Time, tick uint64, qualifies bool, created []*incident.Incident, out *TickOutcome) {
	if !qualifies {
		r.runLen = 0
		r.pending = r.pending[:0]
		return
	}
	r.runLen++
	for _, in := range created {
		if len(r.pending) < r.cfg.IncidentCap {
			r.pending = append(r.pending, pendingIncident{id: in.ID, root: in.Root.String(), at: now})
		}
	}
	if r.runLen < r.cfg.ConfirmTicks {
		return
	}
	r.nextID++
	rep := &Report{
		ID:        r.nextID,
		Phase:     PhaseOnset,
		StartTick: r.runTick,
		Start:     r.runTime,
		Baseline:  r.slow,
		Timeline:  []PhaseChange{{Phase: PhaseOnset, Tick: r.runTick, Time: r.runTime}},
		startSnap: r.runSnap,
	}
	for _, p := range r.pending {
		out.Adopted = append(out.Adopted, p.id)
		rep.Incidents = append(rep.Incidents, IncidentEvent{ID: p.id, Root: p.root, Created: p.at})
	}
	rep.IncidentsCreated = len(rep.Incidents)
	r.open = rep
	r.openEM = r.newEpisodeMetricsLocked(rep.ID)
	if r.epCounter != nil {
		r.epCounter.Inc()
	}
	r.pending = r.pending[:0]
	r.runLen = 0
	out.Opened = true
	out.Events = append(out.Events, Event{
		Time: now, Episode: rep.ID, Phase: PhaseOnset,
		Detail: fmt.Sprintf("flood onset: ingest %.1f/tick ≥ %.1f (baseline %.2f), confirmed over %d ticks",
			r.fast, r.cfg.OnsetRate, r.slow, r.cfg.ConfirmTicks),
	})
}

// advanceOpenLocked folds one tick into the open episode and advances
// its phase machine. Caller holds mu. The tick that confirms an episode
// flows through here too, so the confirm window's counts land in the
// report on the same tick it opens.
func (r *Recorder) advanceOpenLocked(now time.Time, tick uint64, raw int64, structured int, created, active []*incident.Incident, out *TickOutcome) {
	rep := r.open
	rep.EndTick = tick
	rep.RawTotal = r.cum.raw - rep.startSnap.raw
	rep.StructuredTotal = r.cum.structured - rep.startSnap.structured
	if rep.StructuredTotal > 0 {
		rep.ConsolidationRatio = float64(rep.RawTotal) / float64(rep.StructuredTotal)
	}
	if raw > rep.PeakRate {
		rep.PeakRate = raw
		rep.PeakTick = tick
		rep.PeakTime = now
	}

	// Incident timeline. The opening tick's backfill already put this
	// tick's created incidents in Adopted; only append the ones that
	// arrived after the open.
	if !out.Opened {
		for _, in := range created {
			out.Adopted = append(out.Adopted, in.ID)
			if len(rep.Incidents) < r.cfg.IncidentCap {
				rep.Incidents = append(rep.Incidents, IncidentEvent{ID: in.ID, Root: in.Root.String(), Created: now})
			}
			rep.IncidentsCreated++
		}
	}
	maxSev, maxID := 0.0, 0
	for _, in := range active {
		if in.Severity > maxSev {
			maxSev, maxID = in.Severity, in.ID
		}
	}
	for i := range rep.Incidents {
		for _, in := range active {
			if rep.Incidents[i].ID == in.ID {
				rep.Incidents[i].Severity = in.Severity
			}
		}
	}
	if maxSev > rep.MaxSeverity {
		rep.MaxSeverity = maxSev
		rep.MaxSeverityIncident = maxID
	}
	if len(rep.Trajectory) < r.cfg.TrajectoryCap {
		rep.Trajectory = append(rep.Trajectory, TrajectoryPoint{
			Tick: tick, Time: now, Raw: raw, Structured: int64(structured),
			Active: len(active), NewIncidents: len(created), MaxSeverity: maxSev,
		})
	} else {
		rep.TrajectoryDropped++
	}
	if em := r.openEM; em != nil {
		em.raw.Add(rep.RawTotal - em.raw.Value())
		em.structured.Add(rep.StructuredTotal - em.structured.Value())
		em.incidents.Add(int64(rep.IncidentsCreated) - em.incidents.Value())
	}

	// Phase machine: onset → peak when the rate stops rising; any phase
	// → decay on a sub-release tick; decay → closed after the hold, or
	// back to peak if the rate recovers.
	if r.fast < r.cfg.ReleaseRate {
		r.holdLen++
		if rep.Phase != PhaseDecay {
			r.transitionLocked(rep, PhaseDecay, tick, now, out,
				fmt.Sprintf("rate %.1f/tick fell below release %.1f", r.fast, r.cfg.ReleaseRate))
		}
		if r.holdLen >= r.cfg.HoldTicks {
			r.closeLocked(rep, tick, now, out)
		}
		return
	}
	r.holdLen = 0
	if rep.Phase == PhaseOnset && float64(raw) < r.fast {
		r.transitionLocked(rep, PhasePeak, tick, now, out,
			fmt.Sprintf("rate crested at %d/tick", rep.PeakRate))
	} else if rep.Phase == PhaseDecay {
		r.transitionLocked(rep, PhasePeak, tick, now, out,
			fmt.Sprintf("rate recovered to %.1f/tick above release %.1f", r.fast, r.cfg.ReleaseRate))
	}
}

// transitionLocked records a phase change. Caller holds mu; the notify
// callback fires later, outside the lock, from the queued out.Events.
func (r *Recorder) transitionLocked(rep *Report, p Phase, tick uint64, now time.Time, out *TickOutcome, detail string) {
	rep.Phase = p
	rep.Timeline = append(rep.Timeline, PhaseChange{Phase: p, Tick: tick, Time: now})
	out.Events = append(out.Events, Event{Time: now, Episode: rep.ID, Phase: p, Detail: detail})
}

// closeLocked finishes the open episode. Caller holds mu.
func (r *Recorder) closeLocked(rep *Report, tick uint64, now time.Time, out *TickOutcome) {
	rep.End = now
	rep.DurationTicks = tick - rep.StartTick + 1
	rep.RawBySource = r.sourceCountsLocked(rep)
	rep.ByType = r.typeCountsLocked(rep)
	rep.TopLocations = r.topLocationsLocked(rep)
	if r.history != nil {
		rep.History = r.history(rep.StartTick, tick)
	}
	r.transitionLocked(rep, PhaseClosed, tick, now, out,
		fmt.Sprintf("flood closed: %d raw alerts over %d ticks, peak %d/tick",
			rep.RawTotal, rep.DurationTicks, rep.PeakRate))
	r.open = nil
	r.openEM = nil
	r.holdLen = 0
	r.nClosed++
	// Re-seed the baseline from the post-flood quiet level rather than
	// carrying the pre-flood one across the episode.
	r.slowN = 0
	r.slow = 0
	r.closed = append(r.closed, rep)
	if len(r.closed) > r.cfg.MaxEpisodes {
		r.closed = append(r.closed[:0:0], r.closed[len(r.closed)-r.cfg.MaxEpisodes:]...)
	}
	cp := rep.clone()
	out.Closed = &cp
}

// sourceCountsLocked renders the episode's per-source raw deltas.
func (r *Recorder) sourceCountsLocked(rep *Report) map[string]int64 {
	out := make(map[string]int64)
	for i, n := range r.cum.bySource {
		var base int64
		if i < len(rep.startSnap.bySource) {
			base = rep.startSnap.bySource[i]
		}
		if d := n - base; d > 0 {
			out[alert.Source(i).String()] = d
		}
	}
	return out
}

// typeCountsLocked renders the episode's per-FT-type structured deltas.
func (r *Recorder) typeCountsLocked(rep *Report) map[string]int64 {
	out := make(map[string]int64)
	for i, n := range r.cum.byType {
		var base int64
		if i < len(rep.startSnap.byType) {
			base = rep.startSnap.byType[i]
		}
		if d := n - base; d > 0 {
			out[r.types.Key(intern.TypeID(i)).String()] = d
		}
	}
	return out
}

// topLocationsLocked ranks the episode's busiest interned locations,
// ties broken by interning order (first-seen) for determinism.
func (r *Recorder) topLocationsLocked(rep *Report) []LocationCount {
	var all []LocationCount
	for i, n := range r.cum.byLoc {
		var base int64
		if i < len(rep.startSnap.byLoc) {
			base = rep.startSnap.byLoc[i]
		}
		if d := n - base; d > 0 {
			all = append(all, LocationCount{
				Path:  r.paths.Path(intern.PathID(i)).String(),
				Count: d,
				id:    int32(i),
			})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].id < all[j].id
	})
	if len(all) > r.cfg.TopK {
		all = all[:r.cfg.TopK]
	}
	return all
}

// ObservePerf folds one tick's wall-clock latency and the cumulative
// shed count into the open episode's Perf section. Separate from
// ObserveTick because these inputs are wall-clock — nondeterministic —
// and must stay out of the deterministic aggregates; Fingerprint
// excludes everything recorded here. No-op while idle.
func (r *Recorder) ObservePerf(tickLatency time.Duration, shedTotal int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := r.open
	if rep == nil {
		return
	}
	p := &rep.Perf
	if p.Ticks == 0 {
		p.MinTick = tickLatency
		p.shedStart = shedTotal
	}
	p.Ticks++
	p.SumTick += tickLatency
	if tickLatency < p.MinTick {
		p.MinTick = tickLatency
	}
	if tickLatency > p.MaxTick {
		p.MaxTick = tickLatency
	}
	p.Shed = shedTotal - p.shedStart
}

// CurrentID returns the open episode's ID, 0 when idle.
func (r *Recorder) CurrentID() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.open == nil {
		return 0
	}
	return r.open.ID
}

// CurrentPhase returns the open episode's phase, PhaseIdle when none.
func (r *Recorder) CurrentPhase() Phase {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.open == nil {
		return PhaseIdle
	}
	return r.open.Phase
}

// ClosedCount reports episodes closed over the recorder's lifetime —
// the flight recorder's flood_close trigger tap.
func (r *Recorder) ClosedCount() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nClosed
}

// Episodes returns every retained episode report, oldest first, the
// open one (if any) last. Reports are deep copies the caller owns; the
// open episode's derived sections (per-source, per-type, top locations)
// are materialized so mid-flood reads see consistent data.
func (r *Recorder) Episodes() []Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Report, 0, len(r.closed)+1)
	for _, rep := range r.closed {
		out = append(out, rep.clone())
	}
	if r.open != nil {
		cp := r.open.clone()
		cp.RawBySource = r.sourceCountsLocked(r.open)
		cp.ByType = r.typeCountsLocked(r.open)
		cp.TopLocations = r.topLocationsLocked(r.open)
		out = append(out, cp)
	}
	return out
}

// Report returns one episode's report by ID.
func (r *Recorder) Report(id uint64) (Report, bool) {
	for _, rep := range r.Episodes() {
		if rep.ID == id {
			return rep, true
		}
	}
	return Report{}, false
}
