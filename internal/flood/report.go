package flood

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"skynet/internal/tsdb"
)

// PhaseChange is one entry of an episode's phase timeline.
type PhaseChange struct {
	Phase Phase     `json:"phase"`
	Tick  uint64    `json:"tick"`
	Time  time.Time `json:"time"`
}

// IncidentEvent is one incident attributed to an episode.
type IncidentEvent struct {
	ID      int       `json:"id"`
	Root    string    `json:"root"`
	Created time.Time `json:"created"`
	// Severity is the incident's latest observed score during the
	// episode window.
	Severity float64 `json:"severity,omitempty"`
}

// TrajectoryPoint is one tick of an episode's rate/severity curve.
type TrajectoryPoint struct {
	Tick         uint64    `json:"tick"`
	Time         time.Time `json:"time"`
	Raw          int64     `json:"raw"`
	Structured   int64     `json:"structured"`
	Active       int       `json:"active"`
	NewIncidents int       `json:"new_incidents,omitempty"`
	MaxSeverity  float64   `json:"max_severity,omitempty"`
}

// HistoryCurve is one store-sourced metric trajectory attached to a
// closed episode: the metric's samples over the episode window, read
// from the tick-indexed history store at close. Unlike Trajectory
// (which the recorder accumulates from the alert stream itself), curves
// cover whatever the sampler recorded — tick latency, ingest rates,
// queue depth — so a postmortem shows how the whole pipeline trended
// through the flood. Excluded from Fingerprint: latency series are
// wall-clock in production.
type HistoryCurve struct {
	Metric   string    `json:"metric"`
	FromTick uint64    `json:"from_tick"`
	Step     uint64    `json:"step"`
	Values   []float64 `json:"values"`
}

// LocationCount is one row of an episode's top-locations ranking.
type LocationCount struct {
	Path  string `json:"path"`
	Count int64  `json:"count"`

	id int32 // interning order, the deterministic tie-breaker
}

// PerfStats is the wall-clock view of an episode: how the pipeline
// itself fared while the flood was in progress. Nondeterministic by
// nature (latency varies run to run), so Fingerprint excludes it.
type PerfStats struct {
	// Ticks counts ObservePerf calls during the episode.
	Ticks int64 `json:"ticks"`
	// MinTick/MaxTick/SumTick aggregate the engine tick wall latency.
	MinTick time.Duration `json:"min_tick_ns"`
	MaxTick time.Duration `json:"max_tick_ns"`
	SumTick time.Duration `json:"sum_tick_ns"`
	// Shed is how many raw alerts the ingest layer dropped during the
	// episode (queue overflow).
	Shed int64 `json:"shed"`

	shedStart int64
}

// MeanTick is the average tick wall latency over the episode.
func (p PerfStats) MeanTick() time.Duration {
	if p.Ticks == 0 {
		return 0
	}
	return p.SumTick / time.Duration(p.Ticks)
}

// Report is one flood episode's postmortem: boundaries, phase timeline,
// volume aggregates, incident timeline, and pipeline health. Every
// field except Perf (and the ground-truth fields MatchScenarios fills
// in) is a pure function of the deterministic alert stream, so reports
// are bit-identical across replays at any worker count.
type Report struct {
	// ID is the monotonic episode identifier — the join key carried by
	// metric labels, span ring entries, and provenance records.
	ID uint64 `json:"id"`
	// Phase is the current lifecycle stage (PhaseClosed once finished).
	Phase Phase `json:"phase"`
	// StartTick/Start locate the onset: the first tick of the
	// qualifying run that later confirmed.
	StartTick uint64    `json:"start_tick"`
	Start     time.Time `json:"start"`
	// EndTick is the last tick folded in; End is set on close (zero
	// while the episode is open).
	EndTick uint64    `json:"end_tick"`
	End     time.Time `json:"end,omitempty"`
	// DurationTicks is EndTick − StartTick + 1, set on close.
	DurationTicks uint64 `json:"duration_ticks,omitempty"`
	// Baseline is the frozen slow-EWMA rate the onset was judged
	// against.
	Baseline float64 `json:"baseline"`
	// Timeline records every phase transition.
	Timeline []PhaseChange `json:"timeline"`

	// PeakRate is the highest single-tick raw count, at PeakTick.
	PeakRate int64     `json:"peak_rate"`
	PeakTick uint64    `json:"peak_tick,omitempty"`
	PeakTime time.Time `json:"peak_time,omitempty"`

	// RawTotal and StructuredTotal count the episode's alert volume
	// before and after preprocessing; ConsolidationRatio is raw per
	// structured (the §4.1 reduction under flood load).
	RawTotal           int64   `json:"raw_total"`
	StructuredTotal    int64   `json:"structured_total"`
	ConsolidationRatio float64 `json:"consolidation_ratio,omitempty"`
	// RawBySource breaks the raw volume down by monitoring source.
	RawBySource map[string]int64 `json:"raw_by_source,omitempty"`
	// ByType breaks the structured volume down by FT type key.
	ByType map[string]int64 `json:"by_type,omitempty"`
	// TopLocations ranks the busiest alert locations.
	TopLocations []LocationCount `json:"top_locations,omitempty"`

	// Incidents is the episode's incident timeline (capped);
	// IncidentsCreated keeps counting past the cap. MaxSeverity is the
	// highest severity observed on any active incident during the
	// episode, on MaxSeverityIncident.
	Incidents           []IncidentEvent `json:"incidents,omitempty"`
	IncidentsCreated    int             `json:"incidents_created"`
	MaxSeverity         float64         `json:"max_severity,omitempty"`
	MaxSeverityIncident int             `json:"max_severity_incident,omitempty"`

	// Trajectory is the per-tick rate/severity curve (capped at
	// TrajectoryCap; TrajectoryDropped counts the overflow).
	Trajectory        []TrajectoryPoint `json:"trajectory,omitempty"`
	TrajectoryDropped int64             `json:"trajectory_dropped,omitempty"`

	// History holds store-sourced metric trajectories over the episode
	// window, attached at close by the SetHistory tap (nil without one).
	// Excluded from Fingerprint.
	History []HistoryCurve `json:"history,omitempty"`

	// Scenario and DetectionLag are ground-truth annotations filled in
	// by MatchScenarios when the workload's injected scenarios are
	// known (replays and experiments; empty in production).
	Scenario     string        `json:"scenario,omitempty"`
	DetectionLag time.Duration `json:"detection_lag_ns,omitempty"`

	// Perf is the wall-clock pipeline health during the episode —
	// excluded from Fingerprint.
	Perf PerfStats `json:"perf"`

	startSnap cumulative
}

// clone deep-copies the report.
func (rep *Report) clone() Report {
	cp := *rep
	cp.Timeline = append([]PhaseChange(nil), rep.Timeline...)
	cp.Incidents = append([]IncidentEvent(nil), rep.Incidents...)
	cp.Trajectory = append([]TrajectoryPoint(nil), rep.Trajectory...)
	cp.TopLocations = append([]LocationCount(nil), rep.TopLocations...)
	cp.History = append([]HistoryCurve(nil), rep.History...)
	if rep.RawBySource != nil {
		cp.RawBySource = make(map[string]int64, len(rep.RawBySource))
		for k, v := range rep.RawBySource {
			cp.RawBySource[k] = v
		}
	}
	if rep.ByType != nil {
		cp.ByType = make(map[string]int64, len(rep.ByType))
		for k, v := range rep.ByType {
			cp.ByType[k] = v
		}
	}
	cp.startSnap = cumulative{}
	return cp
}

// Fingerprint renders the report's deterministic content — boundaries,
// phase timeline, volume aggregates, and incident attribution — as a
// stable string. Two replays of the same trace must produce identical
// fingerprints at any worker count; Perf and the ground-truth
// annotations are deliberately excluded.
func (rep *Report) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "episode %d phase=%s ticks=[%d,%d] peak=%d@%d raw=%d structured=%d created=%d maxsev=%.6f\n",
		rep.ID, rep.Phase, rep.StartTick, rep.EndTick, rep.PeakRate, rep.PeakTick,
		rep.RawTotal, rep.StructuredTotal, rep.IncidentsCreated, rep.MaxSeverity)
	for _, pc := range rep.Timeline {
		fmt.Fprintf(&b, "  %s@%d\n", pc.Phase, pc.Tick)
	}
	for _, src := range sortedKeys(rep.RawBySource) {
		fmt.Fprintf(&b, "  src %s=%d\n", src, rep.RawBySource[src])
	}
	for _, ft := range sortedKeys(rep.ByType) {
		fmt.Fprintf(&b, "  type %s=%d\n", ft, rep.ByType[ft])
	}
	for _, lc := range rep.TopLocations {
		fmt.Fprintf(&b, "  loc %s=%d\n", lc.Path, lc.Count)
	}
	for _, ie := range rep.Incidents {
		fmt.Fprintf(&b, "  incident %d root=%s\n", ie.ID, ie.Root)
	}
	return b.String()
}

func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Fingerprint renders every retained episode's fingerprint, oldest
// first — the whole-run determinism check used by the replay tests.
func (r *Recorder) Fingerprint() string {
	var b strings.Builder
	for _, rep := range r.Episodes() {
		b.WriteString(rep.Fingerprint())
	}
	return b.String()
}

// ScenarioRef is the ground-truth view of one injected scenario, kept
// local so this package does not import the scenario generator.
type ScenarioRef struct {
	Name   string
	Severe bool
	Start  time.Time
	End    time.Time
}

// MatchScenarios annotates episodes with scenario ground truth and
// reports the match census: for each severe scenario, how many episodes
// its activity window overlaps. A correctly calibrated detector maps
// every severe scenario to exactly one episode (Matches[name] == 1).
// Reports gain Scenario and DetectionLag on a first-match basis.
func MatchScenarios(eps []Report, refs []ScenarioRef) map[string]int {
	matches := make(map[string]int)
	for _, ref := range refs {
		if !ref.Severe {
			continue
		}
		matches[ref.Name] = 0
		for i := range eps {
			if !overlaps(&eps[i], ref) {
				continue
			}
			matches[ref.Name]++
			if eps[i].Scenario == "" {
				eps[i].Scenario = ref.Name
				eps[i].DetectionLag = eps[i].Start.Sub(ref.Start)
			}
		}
	}
	return matches
}

// overlaps reports whether an episode's window intersects a scenario's
// activity window. An open episode extends to infinity.
func overlaps(rep *Report, ref ScenarioRef) bool {
	if rep.Start.After(ref.End) {
		return false
	}
	return rep.End.IsZero() || !rep.End.Before(ref.Start)
}

// RenderTable renders a per-episode postmortem table — the
// `skynet-replay -floods` surface.
func RenderTable(eps []Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-3s %-8s %-19s %-9s %10s %10s %10s %7s %5s %9s  %s\n",
		"id", "phase", "start", "duration", "raw", "structured", "ratio", "peak/tk", "incs", "maxsev", "top location")
	for i := range eps {
		rep := &eps[i]
		dur := "open"
		if !rep.End.IsZero() {
			dur = rep.End.Sub(rep.Start).String()
		}
		top := "-"
		if len(rep.TopLocations) > 0 {
			top = fmt.Sprintf("%s (%d)", rep.TopLocations[0].Path, rep.TopLocations[0].Count)
		}
		fmt.Fprintf(&b, "%-3d %-8s %-19s %-9s %10d %10d %9.1fx %7d %5d %9.1f  %s\n",
			rep.ID, rep.Phase, rep.Start.Format("2006-01-02 15:04:05"), dur,
			rep.RawTotal, rep.StructuredTotal, rep.ConsolidationRatio,
			rep.PeakRate, rep.IncidentsCreated, rep.MaxSeverity, top)
		if rep.Scenario != "" {
			fmt.Fprintf(&b, "    ground truth: %s, detection lag %s\n", rep.Scenario, rep.DetectionLag)
		}
	}
	if len(eps) == 0 {
		b.WriteString("no flood episodes detected\n")
	}
	return b.String()
}

// Render renders one episode's full postmortem as text.
func (rep *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== flood episode %d (%s) ==\n", rep.ID, rep.Phase)
	fmt.Fprintf(&b, "  window      ticks %d–%d, %s", rep.StartTick, rep.EndTick, rep.Start.Format(time.RFC3339))
	if !rep.End.IsZero() {
		fmt.Fprintf(&b, " → %s (%s)", rep.End.Format(time.RFC3339), rep.End.Sub(rep.Start))
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "  onset       baseline %.2f/tick before the flood\n", rep.Baseline)
	fmt.Fprintf(&b, "  volume      %d raw → %d structured (%.1fx consolidation), peak %d/tick at %s\n",
		rep.RawTotal, rep.StructuredTotal, rep.ConsolidationRatio, rep.PeakRate, rep.PeakTime.Format(time.TimeOnly))
	for _, pc := range rep.Timeline {
		fmt.Fprintf(&b, "  phase       %-6s tick %d at %s\n", pc.Phase, pc.Tick, pc.Time.Format(time.TimeOnly))
	}
	for _, src := range sortedKeys(rep.RawBySource) {
		fmt.Fprintf(&b, "  source      %-20s %d\n", src, rep.RawBySource[src])
	}
	for _, lc := range rep.TopLocations {
		fmt.Fprintf(&b, "  location    %-28s %d\n", lc.Path, lc.Count)
	}
	fmt.Fprintf(&b, "  incidents   %d created, max severity %.1f (incident %d)\n",
		rep.IncidentsCreated, rep.MaxSeverity, rep.MaxSeverityIncident)
	for _, ie := range rep.Incidents {
		fmt.Fprintf(&b, "    #%-4d %-28s created %s  severity %.1f\n",
			ie.ID, ie.Root, ie.Created.Format(time.TimeOnly), ie.Severity)
	}
	for _, hc := range rep.History {
		if len(hc.Values) == 0 {
			continue
		}
		lo, hi := hc.Values[0], hc.Values[0]
		for _, v := range hc.Values {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		fmt.Fprintf(&b, "  history     %-34s %s  [%.3g, %.3g]\n",
			hc.Metric, tsdb.Sparkline(hc.Values, 40), lo, hi)
	}
	if rep.Scenario != "" {
		fmt.Fprintf(&b, "  truth       scenario %s, detection lag %s\n", rep.Scenario, rep.DetectionLag)
	}
	if rep.Perf.Ticks > 0 {
		fmt.Fprintf(&b, "  pipeline    tick wall latency min/mean/max %s/%s/%s over %d ticks, %d alerts shed\n",
			rep.Perf.MinTick.Round(time.Microsecond), rep.Perf.MeanTick().Round(time.Microsecond),
			rep.Perf.MaxTick.Round(time.Microsecond), rep.Perf.Ticks, rep.Perf.Shed)
	}
	return b.String()
}

// WriteReport archives one episode report as JSON under dir (created on
// demand), named flood-episode-<id>.json — next to the flight dumps, so
// one directory holds both anomaly evidence and flood postmortems.
func WriteReport(dir string, rep *Report) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("flood: report dir: %w", err)
	}
	path := filepath.Join(dir, fmt.Sprintf("flood-episode-%d.json", rep.ID))
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", fmt.Errorf("flood: marshal report %d: %w", rep.ID, err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("flood: write report: %w", err)
	}
	return path, nil
}
