package span

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"skynet/internal/par"
)

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	a := tr.StartTick(1, time.Now())
	if a != nil {
		t.Fatal("nil tracer must return nil Active")
	}
	r := a.Begin(Root, "stage")
	if r != None {
		t.Fatalf("Begin on nil Active = %d, want None", r)
	}
	a.End(r, 3) // must not panic
	sc := a.Scope(Root)
	if sc.Enabled() {
		t.Fatal("scope of nil Active must be inert")
	}
	if f := sc.Fork("shards", 4); f != nil {
		t.Fatal("Fork on inert scope must be nil")
	}
	var f *Fork
	if f.Timer() != nil {
		t.Fatal("Timer on nil Fork must be nil so DoTimed degrades to Do")
	}
	if a.Finish() != nil {
		t.Fatal("Finish on nil Active must return nil")
	}
}

func TestSpanTreeStructure(t *testing.T) {
	tr := NewTracer(4)
	now := time.Date(2024, 7, 2, 11, 0, 0, 0, time.UTC)
	a := tr.StartTick(7, now)
	pre := a.Begin(Root, "preprocess")
	cls := a.Scope(pre).Begin("classify")
	a.End(cls, 100)
	a.End(pre, 42)
	loc := a.Begin(Root, "locate")
	a.End(loc, 5)
	fin := a.Finish()
	if fin == nil {
		t.Fatal("Finish returned nil")
	}
	if fin.Tick != 7 || !fin.Time.Equal(now) {
		t.Errorf("trace header = tick %d time %v", fin.Tick, fin.Time)
	}
	if len(fin.Spans) != 4 {
		t.Fatalf("got %d spans, want 4 (tick, preprocess, classify, locate)", len(fin.Spans))
	}
	if fin.Spans[0].Name != "tick" || fin.Spans[0].Parent != -1 {
		t.Errorf("root span = %+v", fin.Spans[0])
	}
	if fin.Spans[1].Name != "preprocess" || fin.Spans[1].Parent != 0 {
		t.Errorf("preprocess span = %+v", fin.Spans[1])
	}
	if fin.Spans[2].Name != "classify" || fin.Spans[2].Parent != 1 {
		t.Errorf("classify span must parent the preprocess span: %+v", fin.Spans[2])
	}
	if fin.Spans[2].Items != 100 {
		t.Errorf("classify items = %d, want 100", fin.Spans[2].Items)
	}
	if fin.Spans[0].Dur != fin.Dur || fin.Dur <= 0 {
		t.Errorf("root dur %v vs trace dur %v", fin.Spans[0].Dur, fin.Dur)
	}
}

func TestForkRecordsShardSpansUnderPar(t *testing.T) {
	tr := NewTracer(4)
	a := tr.StartTick(1, time.Now())
	st := a.Begin(Root, "evaluate")
	const n = 16
	f := a.Scope(st).Fork("refine_score", n)
	par.DoTimed(4, n, f.Timer(), func(i int) {
		time.Sleep(time.Duration(i%3) * 100 * time.Microsecond)
	})
	a.End(st, n)
	fin := a.Finish()
	shards := 0
	for _, sp := range fin.Spans {
		if sp.Name != "refine_score" {
			continue
		}
		shards++
		if sp.Shard < 0 || sp.Shard >= n {
			t.Errorf("bad shard id %d", sp.Shard)
		}
		if sp.Dur <= 0 {
			t.Errorf("shard %d has zero duration", sp.Shard)
		}
		if sp.Wait < 0 {
			t.Errorf("shard %d negative queue wait %v", sp.Shard, sp.Wait)
		}
		if sp.Parent != 1 {
			t.Errorf("shard %d parent = %d, want 1 (evaluate)", sp.Shard, sp.Parent)
		}
	}
	if shards != n {
		t.Fatalf("recorded %d shard spans, want %d", shards, n)
	}
}

func TestRingEvictionAndSlowest(t *testing.T) {
	tr := NewTracer(2)
	for i := 0; i < 5; i++ {
		a := tr.StartTick(uint64(i), time.Now())
		if i == 2 {
			time.Sleep(2 * time.Millisecond) // the slow tick
		}
		a.Finish()
	}
	if got := tr.TickCount(); got != 5 {
		t.Fatalf("TickCount = %d, want 5", got)
	}
	last := tr.Last(0)
	if len(last) != 2 {
		t.Fatalf("ring holds %d traces, want 2", len(last))
	}
	if last[0].Tick != 3 || last[1].Tick != 4 {
		t.Errorf("ring ticks = %d,%d, want 3,4", last[0].Tick, last[1].Tick)
	}
	slow, ok := tr.Slowest()
	if !ok || slow.Tick != 2 {
		t.Errorf("Slowest = tick %d ok=%v, want tick 2 (survives eviction)", slow.Tick, ok)
	}
	if one := tr.Last(1); len(one) != 1 || one[0].Tick != 4 {
		t.Errorf("Last(1) = %+v, want just tick 4", one)
	}
}

func TestStageStatsAggregate(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 3; i++ {
		a := tr.StartTick(uint64(i), time.Now())
		r := a.Begin(Root, "preprocess")
		a.End(r, 10)
		a.Finish()
	}
	stats := tr.StageStats()
	byName := map[string]StageStat{}
	for _, s := range stats {
		byName[s.Name] = s
	}
	if byName["tick"].Count != 3 || byName["preprocess"].Count != 3 {
		t.Errorf("stage counts = %+v", byName)
	}
	if byName["tick"].Total < byName["preprocess"].Total {
		t.Errorf("tick total %v < preprocess total %v", byName["tick"].Total, byName["preprocess"].Total)
	}
	if stats[0].Name != "tick" {
		t.Errorf("stats not sorted by total desc: first = %q", stats[0].Name)
	}
	if byName["preprocess"].Mean() == 0 && byName["preprocess"].Total > 0 {
		t.Error("Mean() = 0 for non-empty stage")
	}
}

func TestTraceJSONAndRender(t *testing.T) {
	tr := NewTracer(4)
	a := tr.StartTick(9, time.Now())
	st := a.Begin(Root, "locate")
	f := a.Scope(st).Fork("addbatch", 8)
	par.DoTimed(2, 8, f.Timer(), func(i int) {})
	a.End(st, 12)
	fin := a.Finish()

	raw, err := json.Marshal(fin)
	if err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Spans) != len(fin.Spans) || back.Tick != 9 {
		t.Errorf("JSON round trip lost spans: %d vs %d", len(back.Spans), len(fin.Spans))
	}

	out := fin.Render()
	for _, want := range []string{"tick 9", "locate", "addbatch", "×8 shards", "skew"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	table := RenderStageStats(tr.StageStats())
	if !strings.Contains(table, "locate") || !strings.Contains(table, "mean") {
		t.Errorf("stage table malformed:\n%s", table)
	}
}

func TestConcurrentFinishAndRead(t *testing.T) {
	// The tracer is read by HTTP handlers while the engine loop finishes
	// ticks; this must be race-clean (run under -race in CI).
	tr := NewTracer(8)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			a := tr.StartTick(uint64(i), time.Now())
			r := a.Begin(Root, "stage")
			a.End(r, i)
			a.Finish()
		}
	}()
	for i := 0; i < 50; i++ {
		tr.Last(4)
		tr.Slowest()
		tr.StageStats()
		tr.TickCount()
	}
	<-done
}
