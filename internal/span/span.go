// Package span is SkyNet's stage-level tracing layer: a low-overhead
// span tree recorded per engine tick, in the spirit of Dapper-style
// distributed tracers scaled down to one process. Where the telemetry
// registry answers "how long do ticks take on average", spans answer
// "where did THIS tick's time go" — every pipeline stage (preprocess,
// locate, evaluate, sop) and every parallel shard fan-out inside them
// becomes a timed node in a tree the operator can read back.
//
// Design constraints, in order:
//
//  1. Zero overhead when off. Instrumentation sites hold a nil *Active
//     or a zero Scope; every method is nil-safe and returns immediately,
//     so the uninstrumented pipeline takes one predictable branch per
//     site and no clock reads.
//  2. Race-free under the par fan-out. Shard spans are pre-allocated by
//     the owning goroutine before the fork; each worker writes only its
//     own slot (see Fork), so recording needs no locks on the hot path.
//  3. Bounded memory. Finished traces land in a fixed-size ring; the
//     slowest trace seen and per-stage aggregates are retained across
//     ring evictions so `skynet-replay -spans` can render the worst
//     tick of an arbitrarily long run.
//
// The Tracer is the retention side (ring, slowest, stage stats); Active
// is the single-tick builder the engine drives; Scope threads a (trace,
// parent) pair into pipeline stages so their internal phases appear as
// children; Fork carries a span group through par.DoTimed so parallel
// shards appear as child spans with shard ids and queue-wait times.
package span

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Region identifies one span within an Active trace. The zero value is
// the root; None marks "no span" (returned by no-op calls when tracing
// is disabled).
type Region int32

// Root is the region of the tick's root span.
const Root Region = 0

// None is the invalid region returned by disabled instrumentation.
const None Region = -1

// Span is one timed region of a pipeline tick. Offsets are nanoseconds
// from the owning Trace's Start so a dumped ring stays meaningful
// without absolute clocks.
type Span struct {
	// Name labels the stage or phase ("preprocess", "classify", ...).
	Name string `json:"name"`
	// Shard is the task index within a parallel fork, or -1 for serial
	// spans. For forks that mix task kinds (the locator's incident+shard
	// fan-out) it is the raw task id; the fork's name says how to read it.
	Shard int `json:"shard"`
	// Parent is the index of the parent span in Trace.Spans (-1 for the
	// root).
	Parent int32 `json:"parent"`
	// Start is the offset from Trace.Start when the span began.
	Start time.Duration `json:"start_ns"`
	// Dur is the span's wall time.
	Dur time.Duration `json:"duration_ns"`
	// Wait, for fork shards, is how long the task sat queued between the
	// fork opening and a worker picking it up.
	Wait time.Duration `json:"wait_ns,omitempty"`
	// Items counts the units the span processed (alerts, incidents,
	// components...), when the instrumentation site reports one.
	Items int `json:"items,omitempty"`
}

// Trace is the finished span tree of one pipeline tick.
type Trace struct {
	// Tick is the engine's tick counter.
	Tick uint64 `json:"tick"`
	// Episode is the flood episode the tick belonged to (0 outside any
	// flood) — the join key between traces, metrics, and flood reports.
	Episode uint64 `json:"episode,omitempty"`
	// Time is the pipeline time of the tick (simulated under replay).
	Time time.Time `json:"time"`
	// Start is the wall-clock instant the tick began.
	Start time.Time `json:"start"`
	// Dur is the root span's wall time.
	Dur time.Duration `json:"duration_ns"`
	// Spans holds the tree in creation order; Spans[0] is the root.
	Spans []Span `json:"spans"`
}

// StageStat aggregates every span of one name across finished traces.
type StageStat struct {
	Name  string        `json:"name"`
	Count int64         `json:"count"`
	Total time.Duration `json:"total_ns"`
	Max   time.Duration `json:"max_ns"`
}

// Mean returns the average span duration (0 when empty).
func (s StageStat) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}

// DefaultRingCap is the default number of recent tick traces retained —
// at the daemon's 10 s tick this is ~10 minutes of history, and it is
// what a flight-recorder dump preserves.
const DefaultRingCap = 64

// Tracer retains finished traces: a fixed ring of the most recent ones,
// the slowest trace ever finished, and per-stage aggregates. Safe for
// concurrent use; recording into an Active trace is lock-free and the
// lock is taken once per finished tick.
type Tracer struct {
	mu      sync.Mutex
	ring    []Trace
	start   int
	n       int
	slowest Trace
	hasSlow bool
	stages  map[string]*StageStat
	total   int64
}

// NewTracer creates a tracer retaining the last ringCap traces
// (DefaultRingCap when ringCap <= 0).
func NewTracer(ringCap int) *Tracer {
	if ringCap <= 0 {
		ringCap = DefaultRingCap
	}
	return &Tracer{ring: make([]Trace, ringCap), stages: make(map[string]*StageStat)}
}

// StartTick opens the span tree for one tick. A nil tracer returns a nil
// *Active, on which every method is a no-op — instrumentation sites need
// no guards. The caller must Finish the returned trace before starting
// the next one.
func (t *Tracer) StartTick(tick uint64, now time.Time) *Active {
	if t == nil {
		return nil
	}
	a := &Active{tr: t}
	a.t.Tick = tick
	a.t.Time = now
	a.t.Start = time.Now()
	a.t.Spans = append(a.t.Spans, Span{Name: "tick", Shard: -1, Parent: -1})
	return a
}

// TickCount reports how many traces have been finished over the
// tracer's lifetime (not just those still in the ring).
func (t *Tracer) TickCount() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Last returns up to n of the most recent finished traces, oldest
// first. The traces are deep-copied; callers own them.
func (t *Tracer) Last(n int) []Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 || n > t.n {
		n = t.n
	}
	out := make([]Trace, 0, n)
	for i := t.n - n; i < t.n; i++ {
		out = append(out, copyTrace(t.ring[(t.start+i)%len(t.ring)]))
	}
	return out
}

// Slowest returns the trace with the largest root duration ever
// finished, surviving ring eviction. ok is false before the first
// Finish.
func (t *Tracer) Slowest() (Trace, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.hasSlow {
		return Trace{}, false
	}
	return copyTrace(t.slowest), true
}

// StageStats returns the per-name span aggregates, largest total time
// first (name as tiebreaker, so the order is deterministic).
func (t *Tracer) StageStats() []StageStat {
	t.mu.Lock()
	out := make([]StageStat, 0, len(t.stages))
	for _, s := range t.stages {
		out = append(out, *s)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// finish retires one completed trace into the ring and the aggregates.
func (t *Tracer) finish(tr Trace) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total++
	if t.n == len(t.ring) {
		t.start = (t.start + 1) % len(t.ring)
		t.n--
	}
	t.ring[(t.start+t.n)%len(t.ring)] = tr
	t.n++
	if !t.hasSlow || tr.Dur > t.slowest.Dur {
		// Copy: the ring slot may be overwritten in place on wraparound.
		t.slowest = copyTrace(tr)
		t.hasSlow = true
	}
	for i := range tr.Spans {
		sp := &tr.Spans[i]
		st, ok := t.stages[sp.Name]
		if !ok {
			st = &StageStat{Name: sp.Name}
			t.stages[sp.Name] = st
		}
		st.Count++
		st.Total += sp.Dur
		if sp.Dur > st.Max {
			st.Max = sp.Dur
		}
	}
}

func copyTrace(tr Trace) Trace {
	cp := tr
	cp.Spans = make([]Span, len(tr.Spans))
	copy(cp.Spans, tr.Spans)
	return cp
}

// Active is the span tree of the tick in flight. All methods are
// nil-safe; Begin/End/Fork must be called from the tick's owner
// goroutine (shard slots inside a Fork are written by workers, but the
// slice itself only grows between forks).
type Active struct {
	tr *Tracer
	t  Trace
}

// Begin opens a child span under parent and returns its region.
func (a *Active) Begin(parent Region, name string) Region {
	if a == nil {
		return None
	}
	r := Region(len(a.t.Spans))
	a.t.Spans = append(a.t.Spans, Span{
		Name:   name,
		Shard:  -1,
		Parent: int32(parent),
		Start:  time.Since(a.t.Start),
	})
	return r
}

// End seals a span opened by Begin, recording its duration and item
// count. Ending None is a no-op.
func (a *Active) End(r Region, items int) {
	if a == nil || r <= None || int(r) >= len(a.t.Spans) {
		return
	}
	sp := &a.t.Spans[r]
	sp.Dur = time.Since(a.t.Start) - sp.Start
	sp.Items = items
}

// SetEpisode tags the in-flight trace with a flood episode ID (0 for
// none). Nil-safe, like every Active method.
func (a *Active) SetEpisode(id uint64) {
	if a == nil {
		return
	}
	a.t.Episode = id
}

// Scope packages this trace with a parent region for handing to a
// pipeline stage. A nil Active yields the inert zero Scope.
func (a *Active) Scope(parent Region) Scope {
	if a == nil {
		return Scope{}
	}
	return Scope{a: a, parent: parent}
}

// Finish seals the root span, retires the trace into the tracer, and
// returns the finished trace (nil when tracing is off). The Active must
// not be used afterwards.
func (a *Active) Finish() *Trace {
	if a == nil {
		return nil
	}
	a.t.Dur = time.Since(a.t.Start)
	a.t.Spans[0].Dur = a.t.Dur
	a.tr.finish(a.t)
	return &a.t
}

// Scope is the span context a stage receives: new spans open under the
// stage's own span in the engine's tree. The zero Scope is inert — every
// method returns immediately — so stages hold one unconditionally.
type Scope struct {
	a      *Active
	parent Region
}

// Enabled reports whether the scope records anything.
func (s Scope) Enabled() bool { return s.a != nil }

// Begin opens a child span under the scope's parent.
func (s Scope) Begin(name string) Region {
	if s.a == nil {
		return None
	}
	return s.a.Begin(s.parent, name)
}

// End seals a span opened by this scope's Begin.
func (s Scope) End(r Region, items int) { s.a.End(r, items) }

// Fork pre-allocates n shard spans under the scope's parent, one per
// task of an imminent par fan-out, and returns the group. Returns nil
// when the scope is inert; Fork.Timer on a nil group returns a nil
// callback, which par.DoTimed treats as plain par.Do — so the composed
// call site costs nothing when tracing is off.
func (s Scope) Fork(name string, n int) *Fork {
	if s.a == nil || n <= 0 {
		return nil
	}
	f := &Fork{a: s.a, base: int32(len(s.a.t.Spans)), n: n, start: time.Since(s.a.t.Start)}
	for i := 0; i < n; i++ {
		s.a.t.Spans = append(s.a.t.Spans, Span{
			Name:   name,
			Shard:  i,
			Parent: int32(s.parent),
			Start:  f.start,
		})
	}
	return f
}

// Fork is a group of shard spans covering one parallel fan-out. Each
// task writes only its pre-allocated slot, so recording is race-free
// without locks.
type Fork struct {
	a     *Active
	base  int32
	n     int
	start time.Duration // fork-open offset, for queue-wait accounting
}

// Timer returns the per-task completion callback for par.DoTimed, or
// nil when the fork is disabled (nil receiver).
func (f *Fork) Timer() func(i int, start time.Time, d time.Duration) {
	if f == nil {
		return nil
	}
	return f.record
}

// record fills task i's span slot. Called concurrently by par workers;
// each i is distinct, so slots never race.
func (f *Fork) record(i int, start time.Time, d time.Duration) {
	if i < 0 || i >= f.n {
		return
	}
	sp := &f.a.t.Spans[f.base+int32(i)]
	sp.Start = start.Sub(f.a.t.Start)
	sp.Dur = d
	sp.Wait = sp.Start - f.start
	if sp.Wait < 0 {
		sp.Wait = 0
	}
}

// Render formats the trace as an indented tree for terminal output:
// each span's duration, share of the tick, and item count, with shard
// spans of one fork collapsed into a single summary line when they
// number more than a handful.
func (tr Trace) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tick %d @ %s — %s total, %d spans\n",
		tr.Tick, tr.Time.Format(time.TimeOnly), fmtDur(tr.Dur), len(tr.Spans))
	children := make(map[int32][]int32)
	for i := 1; i < len(tr.Spans); i++ {
		p := tr.Spans[i].Parent
		children[p] = append(children[p], int32(i))
	}
	var walk func(idx int32, depth int)
	walk = func(idx int32, depth int) {
		kids := children[idx]
		i := 0
		for i < len(kids) {
			sp := &tr.Spans[kids[i]]
			// Collapse a run of same-name shard siblings into one line.
			j := i
			for sp.Shard >= 0 && j+1 < len(kids) &&
				tr.Spans[kids[j+1]].Shard >= 0 && tr.Spans[kids[j+1]].Name == sp.Name {
				j++
			}
			indent := strings.Repeat("  ", depth+1)
			if j > i {
				group := kids[i : j+1]
				var minD, maxD, sumW time.Duration
				minD = tr.Spans[group[0]].Dur
				for _, k := range group {
					d := tr.Spans[k].Dur
					if d < minD {
						minD = d
					}
					if d > maxD {
						maxD = d
					}
					sumW += tr.Spans[k].Wait
				}
				fmt.Fprintf(&b, "%s%s ×%d shards  max %s  min %s  skew %s  queue-wait Σ%s\n",
					indent, sp.Name, len(group), fmtDur(maxD), fmtDur(minD),
					fmtDur(maxD-minD), fmtDur(sumW))
			} else {
				fmt.Fprintf(&b, "%s%s  %s", indent, sp.Name, fmtDur(sp.Dur))
				if tr.Dur > 0 {
					fmt.Fprintf(&b, "  (%.1f%%)", 100*float64(sp.Dur)/float64(tr.Dur))
				}
				if sp.Items > 0 {
					fmt.Fprintf(&b, "  items=%d", sp.Items)
				}
				if sp.Shard >= 0 {
					fmt.Fprintf(&b, "  shard=%d", sp.Shard)
				}
				b.WriteByte('\n')
				walk(kids[i], depth+1)
			}
			i = j + 1
		}
	}
	walk(0, 0)
	return b.String()
}

// RenderStageStats formats per-stage aggregates as an aligned table.
func RenderStageStats(stats []StageStat) string {
	var b strings.Builder
	fmt.Fprintf(&b, "  %-16s %8s %10s %10s %12s\n", "span", "count", "mean", "max", "total")
	for _, s := range stats {
		fmt.Fprintf(&b, "  %-16s %8d %10s %10s %12s\n",
			s.Name, s.Count, fmtDur(s.Mean()), fmtDur(s.Max), fmtDur(s.Total))
	}
	return b.String()
}

func fmtDur(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}
