// Feed shapes: the snapshot and delta documents the serving layer
// publishes once per engine tick. Both are encoded exactly once — by
// appendJSON below, reflection-free into a pooled buffer — and fanned
// out to every subscriber as a shared refcounted frame. The JSON field
// names mirror status.IncidentSummary so dashboard code can reuse its
// decoders.

package fanout

import (
	"time"

	"skynet/internal/hierarchy"
	"skynet/internal/incident"
)

// IncidentInfo is one incident's row in a snapshot or delta. Locations
// stay as hierarchy.Path values so building a row never allocates; the
// canonical "|"-joined form is rendered at encode time.
type IncidentInfo struct {
	ID        int
	Root      hierarchy.Path
	Zoomed    hierarchy.Path
	Severity  float64
	Active    bool
	Alerts    int
	Locations int
	Start     time.Time
	Update    time.Time
	End       time.Time
}

// NewIncidentInfo captures the feed view of one incident.
func NewIncidentInfo(in *incident.Incident) IncidentInfo {
	return IncidentInfo{
		ID:        in.ID,
		Root:      in.Root,
		Zoomed:    in.Zoomed,
		Severity:  in.Severity,
		Active:    in.Active(),
		Alerts:    in.AlertCount(),
		Locations: in.LocationCount(),
		Start:     in.Start,
		Update:    in.UpdateTime,
		End:       in.End,
	}
}

// FeedSnapshot is the full incident-feed state as of one tick: what a
// fresh or resyncing subscriber needs to render a dashboard from
// nothing. Incidents are the active set in ID order (deterministic
// across worker counts).
type FeedSnapshot struct {
	Tick         uint64
	Time         time.Time
	RawTotal     int
	Structured   int // structured alerts produced by this tick
	ClosedTotal  int
	FloodPhase   string // "" when no flood detector is attached or idle
	FloodEpisode uint64
	SLOFiring    int
	Incidents    []IncidentInfo
}

// FeedDelta is what changed during one tick (or, after coalescing, a
// contiguous run of ticks): incidents opened, updated (re-scored or
// re-zoomed), and closed, plus the flood phase and SLO burn state.
type FeedDelta struct {
	Tick     uint64
	FromTick uint64 // == Tick for a raw delta; < Tick after a merge
	Time     time.Time
	// Structured sums the structured alerts of the covered ticks.
	Structured   int
	Opened       []IncidentInfo
	Updated      []IncidentInfo
	Closed       []IncidentInfo
	FloodPhase   string
	FloodEpisode uint64
	SLOFiring    int
	// Coalesced counts the raw deltas merged into this one (1 for an
	// unmerged delta).
	Coalesced int
}

// reset empties s for reuse, keeping slice capacity.
func (s *FeedSnapshot) reset() {
	s.Incidents = s.Incidents[:0]
	*s = FeedSnapshot{Incidents: s.Incidents}
}

// copyFrom deep-copies src into s (reusing s's slice capacity). The hub
// copies the published snapshot structurally so the engine may reuse its
// scratch immediately; the JSON render is deferred until a subscriber
// actually reads the frame.
func (s *FeedSnapshot) copyFrom(src *FeedSnapshot) {
	inc := s.Incidents[:0]
	*s = *src
	s.Incidents = append(inc, src.Incidents...)
}

// reset empties d for reuse, keeping slice capacity.
func (d *FeedDelta) reset() {
	d.Opened = d.Opened[:0]
	d.Updated = d.Updated[:0]
	d.Closed = d.Closed[:0]
	*d = FeedDelta{Opened: d.Opened, Updated: d.Updated, Closed: d.Closed}
}

// copyFrom deep-copies src into d (reusing d's slice capacity). The hub
// keeps its own copy of every published delta so the publisher may reuse
// its scratch immediately while frames stay immutable.
func (d *FeedDelta) copyFrom(src *FeedDelta) {
	opened, updated, closed := d.Opened[:0], d.Updated[:0], d.Closed[:0]
	*d = *src
	d.Opened = append(opened, src.Opened...)
	d.Updated = append(updated, src.Updated...)
	d.Closed = append(closed, src.Closed...)
}

// mergeDelta folds a newer delta (src) into an accumulating one (dst).
// Rules: an incident that opened in the window and then updated stays
// "opened" with the newest row; one that opened and closed inside the
// window is reported only as closed (the subscriber never saw it open);
// updates collapse to the newest row. Counts (Structured, Coalesced)
// sum; phase/SLO state comes from the newest delta. Output lists stay in
// ascending-ID order, so a merged delta is bit-identical regardless of
// which subscriber built it.
func mergeDelta(dst, src *FeedDelta) {
	dst.Structured += src.Structured
	dst.Coalesced += src.Coalesced
	dst.Tick = src.Tick
	dst.Time = src.Time
	dst.FloodPhase = src.FloodPhase
	dst.FloodEpisode = src.FloodEpisode
	dst.SLOFiring = src.SLOFiring

	for i := range src.Opened {
		dst.Opened = upsertInfo(dst.Opened, &src.Opened[i])
	}
	for i := range src.Updated {
		// An update supersedes the opened row when the open happened
		// inside the merge window; otherwise it is an update.
		if j := findInfo(dst.Opened, src.Updated[i].ID); j >= 0 {
			dst.Opened[j] = src.Updated[i]
			continue
		}
		dst.Updated = upsertInfo(dst.Updated, &src.Updated[i])
	}
	for i := range src.Closed {
		id := src.Closed[i].ID
		if j := findInfo(dst.Opened, id); j >= 0 {
			dst.Opened = append(dst.Opened[:j], dst.Opened[j+1:]...)
		}
		if j := findInfo(dst.Updated, id); j >= 0 {
			dst.Updated = append(dst.Updated[:j], dst.Updated[j+1:]...)
		}
		dst.Closed = upsertInfo(dst.Closed, &src.Closed[i])
	}
}

// findInfo locates id in an ID-sorted info list (-1 when absent).
func findInfo(list []IncidentInfo, id int) int {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := (lo + hi) / 2
		if list[mid].ID < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(list) && list[lo].ID == id {
		return lo
	}
	return -1
}

// upsertInfo inserts or replaces info in an ID-sorted list.
func upsertInfo(list []IncidentInfo, info *IncidentInfo) []IncidentInfo {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := (lo + hi) / 2
		if list[mid].ID < info.ID {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(list) && list[lo].ID == info.ID {
		list[lo] = *info
		return list
	}
	list = append(list, IncidentInfo{})
	copy(list[lo+1:], list[lo:])
	list[lo] = *info
	return list
}

// --- reflection-free JSON encoding -----------------------------------

// appendJSONString appends s as a JSON string literal. The feed's
// strings (hierarchy segments, flood phases) are plain ASCII, but the
// escaper is complete for control characters, quotes, and backslashes
// so hostile alert content can never tear a frame.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x20 && c != '"' && c != '\\' {
			continue
		}
		dst = append(dst, s[start:i]...)
		switch c {
		case '"':
			dst = append(dst, '\\', '"')
		case '\\':
			dst = append(dst, '\\', '\\')
		case '\n':
			dst = append(dst, '\\', 'n')
		case '\r':
			dst = append(dst, '\\', 'r')
		case '\t':
			dst = append(dst, '\\', 't')
		default:
			const hex = "0123456789abcdef"
			dst = append(dst, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		}
		start = i + 1
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// appendJSONPath appends a hierarchy path as a JSON string in its
// canonical "|"-joined form without materializing the string.
func appendJSONPath(dst []byte, p hierarchy.Path) []byte {
	dst = append(dst, '"')
	// Path segments are operator-controlled identifiers, but escape
	// anyway — segment-wise, via Segment (Segments() would copy).
	for l := 1; l <= p.Depth(); l++ {
		if l > 1 {
			dst = append(dst, '|')
		}
		dst = appendJSONStringBody(dst, p.Segment(hierarchy.Level(l)))
	}
	return append(dst, '"')
}

// appendJSONStringBody escapes s without the surrounding quotes.
func appendJSONStringBody(dst []byte, s string) []byte {
	quoted := appendJSONString(dst, s)
	// Drop the quotes appendJSONString added: move the body left over
	// the opening quote and trim the closing one.
	body := quoted[len(dst)+1 : len(quoted)-1]
	copy(quoted[len(dst):], body)
	return quoted[:len(dst)+len(body)]
}

func appendJSONTime(dst []byte, t time.Time) []byte {
	dst = append(dst, '"')
	dst = t.AppendFormat(dst, time.RFC3339Nano)
	return append(dst, '"')
}

func appendUint(dst []byte, v uint64) []byte {
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return append(dst, tmp[i:]...)
}

func appendInt(dst []byte, v int64) []byte {
	if v < 0 {
		dst = append(dst, '-')
		return appendUint(dst, uint64(-v))
	}
	return appendUint(dst, uint64(v))
}

// appendFloat renders severity-style floats with fixed 4-digit
// precision — stable, short, and enough for a dashboard.
func appendFloat(dst []byte, v float64) []byte {
	if v < 0 {
		dst = append(dst, '-')
		v = -v
	}
	scaled := uint64(v*10000 + 0.5)
	dst = appendUint(dst, scaled/10000)
	frac := scaled % 10000
	if frac == 0 {
		return dst
	}
	dst = append(dst, '.')
	digits := []byte{byte('0' + frac/1000), byte('0' + frac/100%10), byte('0' + frac/10%10), byte('0' + frac%10)}
	for len(digits) > 1 && digits[len(digits)-1] == '0' {
		digits = digits[:len(digits)-1]
	}
	return append(dst, digits...)
}

func appendIncidentInfo(dst []byte, in *IncidentInfo) []byte {
	dst = append(dst, `{"id":`...)
	dst = appendInt(dst, int64(in.ID))
	dst = append(dst, `,"root":`...)
	dst = appendJSONPath(dst, in.Root)
	if !in.Zoomed.IsRoot() && in.Zoomed != in.Root {
		dst = append(dst, `,"zoomed":`...)
		dst = appendJSONPath(dst, in.Zoomed)
	}
	dst = append(dst, `,"severity":`...)
	dst = appendFloat(dst, in.Severity)
	dst = append(dst, `,"active":`...)
	if in.Active {
		dst = append(dst, "true"...)
	} else {
		dst = append(dst, "false"...)
	}
	dst = append(dst, `,"alert_count":`...)
	dst = appendInt(dst, int64(in.Alerts))
	dst = append(dst, `,"locations":`...)
	dst = appendInt(dst, int64(in.Locations))
	dst = append(dst, `,"start":`...)
	dst = appendJSONTime(dst, in.Start)
	dst = append(dst, `,"update_time":`...)
	dst = appendJSONTime(dst, in.Update)
	if !in.End.IsZero() {
		dst = append(dst, `,"end":`...)
		dst = appendJSONTime(dst, in.End)
	}
	return append(dst, '}')
}

func appendInfoList(dst []byte, key string, list []IncidentInfo) []byte {
	if len(list) == 0 {
		return dst
	}
	dst = append(dst, ',', '"')
	dst = append(dst, key...)
	dst = append(dst, `":[`...)
	for i := range list {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendIncidentInfo(dst, &list[i])
	}
	return append(dst, ']')
}

// appendJSON renders the snapshot document. pubNanos > 0 adds the
// wall-clock publish stamp (daemon mode; deterministic replays leave it
// off so frames stay bit-identical across runs).
func (s *FeedSnapshot) appendJSON(dst []byte, pubNanos int64) []byte {
	dst = append(dst, `{"tick":`...)
	dst = appendUint(dst, s.Tick)
	dst = append(dst, `,"time":`...)
	dst = appendJSONTime(dst, s.Time)
	dst = append(dst, `,"raw_total":`...)
	dst = appendInt(dst, int64(s.RawTotal))
	dst = append(dst, `,"structured":`...)
	dst = appendInt(dst, int64(s.Structured))
	dst = append(dst, `,"closed_total":`...)
	dst = appendInt(dst, int64(s.ClosedTotal))
	if s.FloodPhase != "" {
		dst = append(dst, `,"flood_phase":`...)
		dst = appendJSONString(dst, s.FloodPhase)
		dst = append(dst, `,"flood_episode":`...)
		dst = appendUint(dst, s.FloodEpisode)
	}
	dst = append(dst, `,"slo_firing":`...)
	dst = appendInt(dst, int64(s.SLOFiring))
	if pubNanos > 0 {
		dst = append(dst, `,"pub_unix_ns":`...)
		dst = appendInt(dst, pubNanos)
	}
	dst = append(dst, `,"incidents":[`...)
	for i := range s.Incidents {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendIncidentInfo(dst, &s.Incidents[i])
	}
	return append(dst, ']', '}')
}

// AppendJSON renders the snapshot wire document into dst — the exact
// bytes a subscriber's snapshot frame carries (minus the SSE header).
// Exported for the encode microbenchmarks.
func (s *FeedSnapshot) AppendJSON(dst []byte, pubNanos int64) []byte {
	return s.appendJSON(dst, pubNanos)
}

// AppendJSON renders the delta wire document into dst. Exported for the
// encode microbenchmarks.
func (d *FeedDelta) AppendJSON(dst []byte, pubNanos int64) []byte {
	return d.appendJSON(dst, pubNanos)
}

// appendJSON renders the delta document.
func (d *FeedDelta) appendJSON(dst []byte, pubNanos int64) []byte {
	dst = append(dst, `{"tick":`...)
	dst = appendUint(dst, d.Tick)
	if d.FromTick != 0 && d.FromTick != d.Tick {
		dst = append(dst, `,"from_tick":`...)
		dst = appendUint(dst, d.FromTick)
	}
	dst = append(dst, `,"time":`...)
	dst = appendJSONTime(dst, d.Time)
	dst = append(dst, `,"structured":`...)
	dst = appendInt(dst, int64(d.Structured))
	if d.FloodPhase != "" {
		dst = append(dst, `,"flood_phase":`...)
		dst = appendJSONString(dst, d.FloodPhase)
		dst = append(dst, `,"flood_episode":`...)
		dst = appendUint(dst, d.FloodEpisode)
	}
	dst = append(dst, `,"slo_firing":`...)
	dst = appendInt(dst, int64(d.SLOFiring))
	if d.Coalesced > 1 {
		dst = append(dst, `,"coalesced":`...)
		dst = appendInt(dst, int64(d.Coalesced))
	}
	if pubNanos > 0 {
		dst = append(dst, `,"pub_unix_ns":`...)
		dst = appendInt(dst, pubNanos)
	}
	dst = appendInfoList(dst, "opened", d.Opened)
	dst = appendInfoList(dst, "updated", d.Updated)
	dst = appendInfoList(dst, "closed", d.Closed)
	return append(dst, '}')
}
