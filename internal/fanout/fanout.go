// Package fanout is the snapshot+delta serving core: the layer between
// the incident engine and an arbitrary number of live feed consumers
// (SSE dashboards, consoles, benchmark harnesses).
//
// The design rule is encode once, fan out pointers. Each tick the
// engine publishes one immutable pre-encoded feed snapshot plus one
// compact delta into the hub; journal chatter (incident lifecycle
// events, flood phase changes, SLO transitions, anomalies) rides the
// same path. Every published frame is rendered exactly once into a
// refcounted byte buffer and placed in a shared ring; subscribers hold
// cursors into the ring and retain/release frames — there is never a
// per-subscriber copy, a per-subscriber goroutine on the publish path,
// or a per-subscriber channel send.
//
// Publishing is O(ring maintenance), independent of the subscriber
// count: the only broadcast primitive is closing a shared wake channel.
// A subscriber that falls off the ring is resynced — it receives a
// drop-accounted "resync" event, then the latest snapshot, then the
// live tail — instead of blocking the publisher or buffering without
// bound. A subscriber that stops polling entirely is evicted after a
// bounded lag. Consecutive deltas pending for one subscriber are
// coalesced into a single merged delta at poll time.
//
// Concurrency contract: a Subscriber's Poll/Wait/Close methods must be
// called from one consumer goroutine at a time (successive calls from
// different goroutines are fine when externally ordered, e.g. a worker
// pool with channel handoff). The Hub itself is fully concurrent.
package fanout

import (
	"encoding/json"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// SSE event names on the wire. The first four match the EventBus-era
// /api/events types, so pre-fanout clients keep working; snapshot,
// delta, and resync are new.
const (
	EventIncident = "incident"
	EventAnomaly  = "anomaly"
	EventFlood    = "flood"
	EventSLO      = "slo"
	EventDelta    = "delta"
	EventSnapshot = "snapshot"
	EventResync   = "resync"
)

// Kind classifies a frame for per-kind drop accounting — the fix for
// the EventBus era's single aggregate drop counter, where a lost flood
// transition was indistinguishable from lost journal chatter.
type Kind uint8

const (
	KindOther Kind = iota
	KindIncident
	KindAnomaly
	KindFlood
	KindSLO
	KindDelta
	KindSnapshot
	KindResync
	numKinds
)

var kindNames = [numKinds]string{"other", "incident", "anomaly", "flood", "slo", "delta", "snapshot", "resync"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "other"
}

// KindOf maps an SSE event name to its accounting kind.
func KindOf(event string) Kind {
	switch event {
	case EventIncident:
		return KindIncident
	case EventAnomaly:
		return KindAnomaly
	case EventFlood:
		return KindFlood
	case EventSLO:
		return KindSLO
	case EventDelta:
		return KindDelta
	case EventSnapshot:
		return KindSnapshot
	case EventResync:
		return KindResync
	}
	return KindOther
}

var (
	// ErrClosed is returned by subscriber calls after Hub.Close.
	ErrClosed = errors.New("fanout: hub closed")
	// ErrEvicted is returned to a subscriber removed as a slow consumer.
	ErrEvicted = errors.New("fanout: subscriber evicted (slow consumer)")
)

// Frame is one immutable, pre-rendered SSE frame shared by reference.
// Ownership follows the refcount: the hub holds one reference while the
// frame sits in the ring (or the snapshot slot), and each subscriber
// batch holds one taken at poll time. Release drops a reference; the
// final release returns the buffer to the hub's pool. Bytes must not be
// used after Release.
type Frame struct {
	seq   uint64
	kind  Kind
	pubAt time.Time // publish instant, for latency accounting; never serialized
	buf   []byte
	delta *FeedDelta // structured delta for KindDelta frames (enables merge)
	// pending marks a tick frame that has not been rendered yet:
	// PublishTick stores structural copies only, keeping the tick path
	// free of JSON encoding, and the first Bytes caller pays the render
	// once for every reader. A snapshot lapped by the next tick before
	// anyone resyncs is never rendered at all. The render state lives
	// inline (pendSnap holds the snapshot copy to render, nil for delta
	// frames, which render their own delta; pendStamp the wall stamp to
	// encode with) so deferring costs the publisher no allocation.
	pending   atomic.Bool
	renderMu  sync.Mutex
	pendSnap  *FeedSnapshot
	pendStamp int64
	refs      atomic.Int32
	hub       *Hub
}

// Seq returns the frame's ring sequence number. For a snapshot frame it
// is the "as-of" sequence: the last ring frame folded into the snapshot,
// so resuming with Last-Event-ID = Seq continues exactly after it.
func (f *Frame) Seq() uint64 { return f.seq }

// Kind returns the frame's accounting kind.
func (f *Frame) Kind() Kind { return f.kind }

// Bytes returns the rendered SSE frame ("id: ...\nevent: ...\ndata:
// ...\n\n"). Valid until Release.
func (f *Frame) Bytes() []byte {
	if f.pending.Load() {
		f.renderPending()
	}
	return f.buf
}

// renderPending encodes a deferred tick frame exactly once. Concurrent
// callers serialize on renderMu; once the flag clears every later Bytes
// call takes the atomic-load fast path.
func (f *Frame) renderPending() {
	f.renderMu.Lock()
	defer f.renderMu.Unlock()
	if !f.pending.Load() {
		return
	}
	if f.pendSnap != nil {
		f.buf = renderHeader(f.buf, f.seq, true, EventSnapshot)
		f.buf = f.pendSnap.appendJSON(f.buf, f.pendStamp)
	} else {
		f.buf = renderHeader(f.buf, f.seq, true, EventDelta)
		f.buf = f.delta.appendJSON(f.buf, f.pendStamp)
	}
	f.buf = append(f.buf, '\n', '\n')
	f.pending.Store(false)
	if s := f.pendSnap; s != nil {
		f.pendSnap = nil
		s.reset()
		f.hub.snapPool.Put(s)
	}
}

// PubAt returns when the frame (for a merged delta: its oldest source)
// was published — the basis for publish→write latency accounting.
func (f *Frame) PubAt() time.Time { return f.pubAt }

// Release drops the caller's reference.
func (f *Frame) Release() {
	if n := f.refs.Add(-1); n == 0 {
		f.hub.recycle(f)
	} else if n < 0 {
		panic("fanout: frame over-released")
	}
}

func (f *Frame) retain() { f.refs.Add(1) }

// Config tunes a Hub. The zero value gives a 256-frame ring, no rate
// limit, eviction after ring+4096 frames of lag, and no wall-clock
// stamps (deterministic output).
type Config struct {
	// Ring is the shared buffer capacity in frames; rounded up to a
	// power of two. Default 256.
	Ring int
	// Rate caps each subscriber's Wait deliveries per second with a
	// token bucket (coalescing absorbs the backlog). <= 0 disables.
	Rate float64
	// Burst is the token bucket capacity. Default max(8, ceil(Rate)).
	Burst int
	// EvictAfter is how many frames beyond the ring capacity a
	// subscriber may lag (i.e. stop polling) before it is evicted.
	// 0 means the default 4096; negative disables eviction.
	EvictAfter int
	// SnapshotEvery is the full-snapshot cadence in ticks: the engine
	// publishes the complete feed state on every Nth tick and deltas on
	// all of them. A fresh subscriber starts from the latest snapshot's
	// as-of point and replays the deltas since, so a higher cadence
	// costs attach latency only, never correctness — and it keeps the
	// per-tick publish cost proportional to what changed, not to the
	// active-incident population. 0 means the default 8; 1 snapshots
	// every tick.
	SnapshotEvery int
	// WallStamp adds a pub_unix_ns wall-clock field to snapshot and
	// delta JSON. Leave off for deterministic replays.
	WallStamp bool
	// Now injects a clock for rate limiting and latency stamps
	// (tests). Default time.Now.
	Now func() time.Time
}

// Hub is the shared fan-out core. One per engine.
type Hub struct {
	cfg  Config
	now  func() time.Time
	mask uint64

	// mu orders ring mutation (write lock: publish, subscribe,
	// unsubscribe, evict, close) against ring reads (read lock: poll).
	// Everything reachable from the ring is immutable while any read
	// lock is held, so 100K pollers share slots without copying.
	mu       sync.RWMutex
	ring     []*Frame
	head     uint64 // next sequence to publish; live frames are [tail, head)
	tail     uint64
	snapshot *Frame // latest snapshot; not part of the ring
	subs     []*Subscriber
	wake     chan struct{} // closed and replaced on every publish
	scanAt   int           // eviction scan cursor (round-robin)
	closed   bool
	cum      [numKinds]uint64 // ring frames ever published, by kind

	framePool sync.Pool
	deltaPool sync.Pool
	snapPool  sync.Pool

	// Lifetime accounting, exported as skynet_fanout_* metrics.
	published   atomic.Uint64 // ring frames published
	ticks       atomic.Uint64 // PublishTick calls (snapshot+delta pairs)
	resyncs     atomic.Uint64
	coalesced   atomic.Uint64 // deltas folded away by merges
	evictions   atomic.Uint64
	dropped     [numKinds]atomic.Uint64
	droppedUnkn atomic.Uint64 // drops whose kind fell off the ring unobserved
	queueHW     atomic.Uint64 // high-water subscriber lag, in frames
	subCount    atomic.Int64
}

// evictScanChunk bounds the slow-consumer scan done per publish, so the
// tick path stays O(1) in the subscriber count.
const evictScanChunk = 64

// NewHub creates a hub with the given configuration.
func NewHub(cfg Config) *Hub {
	if cfg.Ring <= 0 {
		cfg.Ring = 256
	}
	size := 1
	for size < cfg.Ring {
		size <<= 1
	}
	if cfg.EvictAfter == 0 {
		cfg.EvictAfter = 4096
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 8
	}
	if cfg.Burst <= 0 {
		cfg.Burst = 8
		if cfg.Rate > float64(cfg.Burst) {
			cfg.Burst = int(cfg.Rate + 1)
		}
	}
	h := &Hub{
		cfg:  cfg,
		now:  cfg.Now,
		mask: uint64(size - 1),
		ring: make([]*Frame, size),
		wake: make(chan struct{}),
	}
	if h.now == nil {
		h.now = time.Now
	}
	h.framePool.New = func() any { return &Frame{} }
	h.deltaPool.New = func() any { return &FeedDelta{} }
	h.snapPool.New = func() any { return &FeedSnapshot{} }
	return h
}

// newFrame builds a frame with one reference, owned by the caller. The
// byte buffer travels with the pooled Frame across lives (recycle keeps
// it), so the steady-state publish path allocates nothing for buffers —
// and avoids the slice-header boxing a dedicated []byte pool would pay
// on every Put.
func (h *Hub) newFrame(kind Kind) *Frame {
	f := h.framePool.Get().(*Frame)
	buf := f.buf
	*f = Frame{kind: kind, hub: h, buf: buf[:0], pubAt: h.now()}
	f.refs.Store(1)
	return f
}

// recycle returns a fully released frame's resources to the pools.
func (h *Hub) recycle(f *Frame) {
	if f.delta != nil {
		f.delta.reset()
		h.deltaPool.Put(f.delta)
	}
	if f.pending.Load() && f.pendSnap != nil {
		// Released without ever being read: the render never happened.
		f.pendSnap.reset()
		h.snapPool.Put(f.pendSnap)
	}
	buf := f.buf
	*f = Frame{buf: buf[:0]}
	h.framePool.Put(f)
}

// renderHeader appends "id: <seq>\nevent: <name>\ndata: " to f.buf.
func renderHeader(dst []byte, seq uint64, withID bool, event string) []byte {
	if withID {
		dst = append(dst, "id: "...)
		dst = appendUint(dst, seq)
		dst = append(dst, '\n')
	}
	dst = append(dst, "event: "...)
	dst = append(dst, event...)
	dst = append(dst, "\ndata: "...)
	return dst
}

// appendLocked places f in the ring as the next sequence, releasing the
// hub's reference on the frame it overwrites. Caller holds mu.
func (h *Hub) appendLocked(f *Frame) {
	if h.head-h.tail == uint64(len(h.ring)) {
		old := h.ring[h.tail&h.mask]
		h.ring[h.tail&h.mask] = nil
		h.tail++
		old.Release()
	}
	f.seq = h.head
	h.ring[h.head&h.mask] = f
	h.head++
	h.cum[f.kind]++
	h.published.Add(1)
}

// wakeAllLocked arms the next wake channel and returns the old one for
// the caller to close outside useful work. Caller holds mu.
func (h *Hub) wakeAllLocked() chan struct{} {
	old := h.wake
	h.wake = make(chan struct{})
	return old
}

// Publish renders v as one JSON SSE frame of the given event type and
// appends it to the ring. This is the EventBus-compatible path for
// journal chatter; the tick path uses PublishTick. Publish never
// blocks on subscribers.
func (h *Hub) Publish(event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	h.PublishEncoded(event, data)
}

// PublishEncoded appends a frame whose data payload is already JSON.
// The bytes are copied into a pooled frame buffer; the caller keeps
// ownership of data.
func (h *Hub) PublishEncoded(event string, data []byte) {
	kind := KindOf(event)
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	f := h.newFrame(kind)
	f.buf = renderHeader(f.buf, h.head, true, event)
	f.buf = append(f.buf, data...)
	f.buf = append(f.buf, '\n', '\n')
	h.appendLocked(f)
	h.evictScanLocked()
	wake := h.wakeAllLocked()
	h.mu.Unlock()
	close(wake)
}

// PublishTick is the once-per-tick publish: one delta frame into the
// ring plus, when snap is non-nil, a replacement of the latest-snapshot
// slot (the engine passes nil on off-cadence ticks — see
// Config.SnapshotEvery). The hub deep-copies both documents (so the
// caller may reuse its scratch immediately) and each is rendered to
// JSON exactly once, by the first subscriber that reads it. Cost is
// independent of the subscriber count; subscribers are notified by a
// single channel close. Callers that can build into hub-owned documents
// should use AcquireDelta/AcquireSnapshot + PublishTickOwned instead
// and skip the copies entirely.
func (h *Hub) PublishTick(snap *FeedSnapshot, delta *FeedDelta) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	d := h.deltaPool.Get().(*FeedDelta)
	d.copyFrom(delta)
	var s *FeedSnapshot
	if snap != nil {
		s = h.snapPool.Get().(*FeedSnapshot)
		s.copyFrom(snap)
	}
	h.publishTickLocked(s, d)
}

// AcquireDelta returns a reset hub-owned delta document for the zero-copy
// publish path: fill it and hand it back through PublishTickOwned. The
// document's slices keep their capacity across lives, so a steady-state
// publisher allocates nothing.
func (h *Hub) AcquireDelta() *FeedDelta {
	d := h.deltaPool.Get().(*FeedDelta)
	d.reset()
	return d
}

// AcquireSnapshot is AcquireDelta for full-feed snapshot documents.
func (h *Hub) AcquireSnapshot() *FeedSnapshot {
	s := h.snapPool.Get().(*FeedSnapshot)
	s.reset()
	return s
}

// PublishTickOwned is PublishTick without the structural copies: both
// documents must come from AcquireDelta/AcquireSnapshot (snap may be
// nil), ownership transfers to the hub, and the caller must not touch
// them afterwards. This is the engine's tick path — during a flood the
// delta spans most of the active set, so skipping the copy keeps the
// publish cost flat instead of O(changed incidents).
func (h *Hub) PublishTickOwned(snap *FeedSnapshot, delta *FeedDelta) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.publishTickLocked(snap, delta)
}

// publishTickLocked appends the tick's delta frame and swaps the
// snapshot slot. Takes ownership of both documents (snap may be nil);
// caller holds mu, which this releases. The frames store the documents
// unrendered: the JSON encode is deferred to the first reader
// (Frame.Bytes). During a flood the delta covers most of the active
// set, so rendering here would put tens of kilobytes of encoding on
// the tick path — deferring keeps the publisher's cost flat, and the
// encode still happens exactly once, shared by every subscriber.
func (h *Hub) publishTickLocked(snap *FeedSnapshot, delta *FeedDelta) {
	var stamp int64
	if h.cfg.WallStamp {
		stamp = h.now().UnixNano()
	}

	df := h.newFrame(KindDelta)
	df.delta = delta
	if df.delta.Coalesced <= 0 {
		df.delta.Coalesced = 1
	}
	if df.delta.FromTick == 0 {
		df.delta.FromTick = df.delta.Tick
	}
	df.pendStamp = stamp
	df.pending.Store(true)
	h.appendLocked(df)

	var old *Frame
	if snap != nil {
		sf := h.newFrame(KindSnapshot)
		sf.seq = h.head - 1 // as-of: resuming after this seq continues the stream
		sf.pendSnap = snap
		sf.pendStamp = stamp
		sf.pending.Store(true)
		old = h.snapshot
		h.snapshot = sf
	}

	h.ticks.Add(1)
	h.evictScanLocked()
	wake := h.wakeAllLocked()
	h.mu.Unlock()
	close(wake)
	if old != nil {
		old.Release()
	}
}

// SnapshotEvery returns the hub's full-snapshot cadence in ticks. The
// engine reads it so off-cadence ticks skip building the snapshot
// document entirely.
func (h *Hub) SnapshotEvery() uint64 { return uint64(h.cfg.SnapshotEvery) }

// evictScanLocked checks a bounded chunk of subscribers for hopeless
// lag and evicts them. Round-robin, so every subscriber is visited at
// least once per len(subs)/evictScanChunk publishes. Caller holds mu.
func (h *Hub) evictScanLocked() {
	n := len(h.subs)
	if n == 0 {
		return
	}
	limit := uint64(len(h.ring)) + uint64(h.cfg.EvictAfter)
	chunk := evictScanChunk
	if chunk > n {
		chunk = n
	}
	var hw uint64
	for i := 0; i < chunk && len(h.subs) > 0; i++ {
		if h.scanAt >= len(h.subs) {
			h.scanAt = 0
		}
		sub := h.subs[h.scanAt]
		lag := h.head - sub.cursor.Load()
		if lag > hw {
			hw = lag
		}
		if h.cfg.EvictAfter >= 0 && lag > limit {
			h.removeLocked(sub)
			sub.evicted.Store(true)
			h.evictions.Add(1)
			continue // the slot now holds the swapped-in subscriber
		}
		h.scanAt++
	}
	for {
		cur := h.queueHW.Load()
		if hw <= cur || h.queueHW.CompareAndSwap(cur, hw) {
			break
		}
	}
}

// removeLocked swap-removes sub from the subscriber list. Caller holds
// mu; sub must be present.
func (h *Hub) removeLocked(sub *Subscriber) {
	last := len(h.subs) - 1
	h.subs[sub.idx] = h.subs[last]
	h.subs[sub.idx].idx = sub.idx
	h.subs[last] = nil
	h.subs = h.subs[:last]
	sub.idx = -1
	h.subCount.Add(-1)
}

// cumAtLocked returns per-kind counts of ring frames with sequence
// < seq, derived from the lifetime counts minus a scan of the live
// frames at or beyond seq. seq must be >= tail. Caller holds mu (read
// or write).
func (h *Hub) cumAtLocked(seq uint64) [numKinds]uint64 {
	counts := h.cum
	for s := seq; s < h.head; s++ {
		counts[h.ring[s&h.mask].kind]--
	}
	return counts
}

// Close shuts the hub down: ring and snapshot references are released,
// subscribers are woken and see ErrClosed, and later publishes are
// dropped. Idempotent. Frames already retained by subscribers stay
// valid until they release them.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	for s := h.tail; s < h.head; s++ {
		f := h.ring[s&h.mask]
		h.ring[s&h.mask] = nil
		f.Release()
	}
	h.tail = h.head
	if h.snapshot != nil {
		old := h.snapshot
		h.snapshot = nil
		old.Release()
	}
	for _, sub := range h.subs {
		sub.idx = -1
	}
	h.subs = nil
	h.subCount.Store(0)
	wake := h.wakeAllLocked()
	h.mu.Unlock()
	close(wake)
}

// Stats is a point-in-time view of the hub's accounting.
type Stats struct {
	Subscribers    int64             `json:"subscribers"`
	RingSize       int               `json:"ring_size"`
	HeadSeq        uint64            `json:"head_seq"`
	Published      uint64            `json:"published_total"`
	Ticks          uint64            `json:"ticks_total"`
	Resyncs        uint64            `json:"resyncs_total"`
	Coalesced      uint64            `json:"deltas_coalesced_total"`
	Evictions      uint64            `json:"evictions_total"`
	Dropped        map[string]uint64 `json:"dropped_by_kind,omitempty"`
	DroppedTotal   uint64            `json:"dropped_total"`
	QueueHighWater uint64            `json:"queue_depth_high_water"`
	SnapshotSeq    uint64            `json:"snapshot_seq"`
	SnapshotBytes  int               `json:"snapshot_bytes"`
}

// StatsSnapshot returns the hub's current accounting.
func (h *Hub) StatsSnapshot() Stats {
	st := Stats{
		Subscribers:    h.subCount.Load(),
		RingSize:       len(h.ring),
		Published:      h.published.Load(),
		Ticks:          h.ticks.Load(),
		Resyncs:        h.resyncs.Load(),
		Coalesced:      h.coalesced.Load(),
		Evictions:      h.evictions.Load(),
		QueueHighWater: h.queueHW.Load(),
		Dropped:        make(map[string]uint64),
	}
	var total uint64
	for k := Kind(0); k < numKinds; k++ {
		if v := h.dropped[k].Load(); v > 0 {
			st.Dropped[kindNames[k]] = v
			total += v
		}
	}
	if v := h.droppedUnkn.Load(); v > 0 {
		st.Dropped["unknown"] = v
		total += v
	}
	st.DroppedTotal = total
	h.mu.RLock()
	st.HeadSeq = h.head
	if h.snapshot != nil {
		st.SnapshotSeq = h.snapshot.seq
		// Bytes forces a deferred render, so the reported size is the
		// real serving payload even when no subscriber has read it yet.
		st.SnapshotBytes = len(h.snapshot.Bytes())
	}
	h.mu.RUnlock()
	return st
}
