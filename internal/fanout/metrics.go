package fanout

import "skynet/internal/telemetry"

// RegisterMetrics exposes the hub's accounting as skynet_fanout_*
// series. The hub's own atomics stay the single source of truth; the
// registry reads them at exposition time. Drops are a labeled family —
// kind="flood" losses are distinguishable from kind="incident" journal
// chatter, which the EventBus-era aggregate counter could not show.
func (h *Hub) RegisterMetrics(reg *telemetry.Registry) {
	reg.GaugeFunc("skynet_fanout_subscribers",
		"Current feed subscribers attached to the fan-out hub.",
		func() float64 { return float64(h.subCount.Load()) })
	reg.CounterFunc("skynet_fanout_frames_total",
		"Frames published into the fan-out ring (deltas plus event chatter).",
		func() float64 { return float64(h.published.Load()) })
	reg.CounterFunc("skynet_fanout_ticks_total",
		"Snapshot+delta tick publishes into the fan-out hub.",
		func() float64 { return float64(h.ticks.Load()) })
	reg.CounterFunc("skynet_fanout_resyncs_total",
		"Subscribers resynced from a snapshot after falling off the ring.",
		func() float64 { return float64(h.resyncs.Load()) })
	reg.CounterFunc("skynet_fanout_deltas_coalesced_total",
		"Delta frames folded into merged deltas for lagging subscribers.",
		func() float64 { return float64(h.coalesced.Load()) })
	reg.CounterFunc("skynet_fanout_evictions_total",
		"Subscribers evicted for lagging beyond the ring plus the configured slack.",
		func() float64 { return float64(h.evictions.Load()) })
	reg.GaugeFunc("skynet_fanout_queue_depth_high_water",
		"Worst per-subscriber backlog observed, in frames.",
		func() float64 { return float64(h.queueHW.Load()) })
	const dropHelp = "Frames skipped past subscribers during resyncs, by frame kind."
	for k := Kind(0); k < numKinds; k++ {
		c := &h.dropped[k]
		reg.CounterFuncWith("skynet_fanout_dropped_total",
			telemetry.Label("kind", kindNames[k]), dropHelp,
			func() float64 { return float64(c.Load()) })
	}
	reg.CounterFuncWith("skynet_fanout_dropped_total",
		telemetry.Label("kind", "unknown"), dropHelp,
		func() float64 { return float64(h.droppedUnkn.Load()) })
}
