package fanout

import (
	"context"
	"sync/atomic"
	"time"
)

// SubscribeOptions positions a new subscriber in the stream.
type SubscribeOptions struct {
	// Cursor resumes delivery after the given sequence (the SSE
	// Last-Event-ID contract: the client has seen frames up to and
	// including Cursor). Negative means a fresh subscriber: it is
	// served the latest snapshot first, then the live tail.
	Cursor int64
}

// Subscriber is one consumer's cursor into the hub. All delivery state
// lives here; the hub's publish path never touches it beyond the
// bounded eviction scan.
type Subscriber struct {
	hub *Hub

	// cursor is the next ring sequence wanted. Written by the consumer
	// under the hub's read lock, read by the eviction scan and stats
	// under the write lock — atomic so lock-free readers (Stats) stay
	// exact.
	cursor  atomic.Uint64
	evicted atomic.Bool
	idx     int // position in hub.subs; -1 once removed

	// Consumer-owned state (see the package concurrency contract).
	needSnapshot bool
	seen         [numKinds]uint64 // ring frames < cursor delivered or drop-accounted
	tb           tokenBucket
	out          []*Frame // reused result slice
}

// Subscribe registers a consumer. A fresh subscriber (Cursor < 0) gets
// the latest snapshot on its first poll; a resuming one continues after
// its Last-Event-ID, resynced if that position has fallen off the ring.
func (h *Hub) Subscribe(opt SubscribeOptions) (*Subscriber, error) {
	s := &Subscriber{hub: h, idx: -1}
	if h.cfg.Rate > 0 {
		s.tb = tokenBucket{rate: h.cfg.Rate, burst: float64(h.cfg.Burst), tokens: float64(h.cfg.Burst)}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, ErrClosed
	}
	var cursor uint64
	if opt.Cursor < 0 {
		// Fresh: state comes from the snapshot; the stream continues
		// right after the snapshot's as-of point. Before the first
		// tick there is no snapshot — start at the head and keep
		// waiting for one.
		s.needSnapshot = true
		cursor = h.head
		if h.snapshot != nil && h.snapshot.seq+1 >= h.tail {
			cursor = h.snapshot.seq + 1
		}
	} else {
		cursor = uint64(opt.Cursor) + 1
		if cursor > h.head {
			// Ahead of this hub's stream (e.g. a daemon restart):
			// treat as fresh so the client's stale state is replaced.
			cursor = h.head
			s.needSnapshot = true
		}
	}
	// Baseline the per-kind accounting at the cursor. For an off-ring
	// resume the kinds between cursor and tail are unobservable; they
	// are charged to the "unknown" drop counter at resync time.
	base := cursor
	if base < h.tail {
		base = h.tail
	}
	s.seen = h.cumAtLocked(base)
	s.cursor.Store(cursor)
	s.idx = len(h.subs)
	h.subs = append(h.subs, s)
	h.subCount.Add(1)
	return s, nil
}

// Close unregisters the subscriber. Frames already returned by
// Poll/Wait stay valid until released. Idempotent.
func (s *Subscriber) Close() {
	h := s.hub
	h.mu.Lock()
	if s.idx >= 0 {
		h.removeLocked(s)
	}
	h.mu.Unlock()
}

// Cursor returns the next sequence this subscriber wants — the value a
// client would present as Last-Event-ID minus one.
func (s *Subscriber) Cursor() uint64 { return s.cursor.Load() }

// Poll returns every frame pending for this subscriber without
// blocking: a resync event and/or snapshot when needed, then the ring
// tail with consecutive deltas merged into one frame. The returned
// slice is reused by the next Poll/Wait call; the caller must Release
// every frame (ReleaseAll) before that. Returns (nil, nil, nil) when
// nothing is pending; the returned channel (when non-nil) is closed at
// the next publish.
func (s *Subscriber) Poll() ([]*Frame, <-chan struct{}, error) {
	h := s.hub
	if s.evicted.Load() {
		return nil, nil, ErrEvicted
	}
	h.mu.RLock()
	if h.closed {
		h.mu.RUnlock()
		return nil, nil, ErrClosed
	}
	if s.evicted.Load() {
		h.mu.RUnlock()
		return nil, nil, ErrEvicted
	}
	out := s.out[:0]
	cursor := s.cursor.Load()
	head, tail, snap := h.head, h.tail, h.snapshot

	// Track the worst backlog the hub has seen, measured at poll time.
	if lag := head - cursor; lag > 0 {
		for {
			cur := h.queueHW.Load()
			if lag <= cur || h.queueHW.CompareAndSwap(cur, lag) {
				break
			}
		}
	}

	// 1. Fallen off the ring: resync. Jump to the snapshot's as-of
	// point when the snapshot is still in range, else to the ring tail
	// (the next tick's snapshot completes the resync). Every skipped
	// frame is accounted, by kind where the ring still knows it.
	if cursor < tail {
		target := tail
		useSnap := snap != nil && snap.seq+1 >= tail
		if useSnap {
			target = snap.seq + 1
		}
		skipped := target - cursor
		cumT := h.cumAtLocked(target)
		var byKind [numKinds]uint64
		var known uint64
		for k := range cumT {
			byKind[k] = cumT[k] - s.seen[k]
			known += byKind[k]
		}
		unknown := uint64(0)
		if skipped > known {
			unknown = skipped - known
		}
		for k := range byKind {
			if byKind[k] > 0 {
				h.dropped[k].Add(byKind[k])
			}
		}
		if unknown > 0 {
			h.droppedUnkn.Add(unknown)
		}
		h.resyncs.Add(1)
		s.seen = cumT
		cursor = target
		out = append(out, h.makeResyncFrame(target, skipped, &byKind, unknown))
		if useSnap {
			snap.retain()
			out = append(out, snap)
			s.needSnapshot = false
		} else {
			s.needSnapshot = true
		}
	}

	// 2. Initial (or post-resync) snapshot, once one that is current
	// enough exists: at or ahead of the cursor so delivery never moves
	// backwards.
	if s.needSnapshot && snap != nil && snap.seq+1 >= cursor && snap.seq+1 >= tail {
		// Frames between the cursor and the snapshot's as-of point
		// are already folded into the snapshot; skip them, accounted.
		if target := snap.seq + 1; cursor < target {
			cumT := h.cumAtLocked(target)
			for k := range cumT {
				if d := cumT[k] - s.seen[k]; d > 0 {
					h.dropped[k].Add(d)
				}
			}
			s.seen = cumT
			cursor = target
		}
		snap.retain()
		out = append(out, snap)
		s.needSnapshot = false
	}

	// 3. The live tail, coalescing runs of consecutive deltas into one
	// merged frame. Ring slots in [tail, head) are immutable while the
	// read lock is held.
	var run []*Frame
	flush := func() {
		switch len(run) {
		case 0:
		case 1:
			run[0].retain()
			out = append(out, run[0])
		default:
			out = append(out, h.mergeRun(run))
			h.coalesced.Add(uint64(len(run) - 1))
		}
		run = run[:0]
	}
	for seq := cursor; seq < head; seq++ {
		f := h.ring[seq&h.mask]
		s.seen[f.kind]++
		if f.kind == KindDelta {
			run = append(run, f)
			continue
		}
		flush()
		f.retain()
		out = append(out, f)
	}
	flush()
	cursor = head
	s.cursor.Store(cursor)

	var wake <-chan struct{}
	if len(out) == 0 {
		wake = h.wake
	}
	h.mu.RUnlock()
	s.out = out
	if len(out) == 0 {
		return nil, wake, nil
	}
	return out, nil, nil
}

// Wait blocks until frames are pending (or ctx is done / the hub
// closes / the subscriber is evicted), honouring the hub's per-client
// rate limit: delivery waits for a token, and everything published in
// the meantime arrives as one coalesced batch. The returned slice is
// reused by the next call; Release every frame first.
func (s *Subscriber) Wait(ctx context.Context) ([]*Frame, error) {
	h := s.hub
	if s.tb.rate > 0 {
		if d := s.tb.reserve(h.now()); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				s.tb.refund()
				return nil, ctx.Err()
			}
		}
	}
	for {
		frames, wake, err := s.Poll()
		if err != nil {
			return nil, err
		}
		if len(frames) > 0 {
			return frames, nil
		}
		select {
		case <-wake:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// ReleaseAll releases every frame in a batch returned by Poll or Wait.
func (s *Subscriber) ReleaseAll(frames []*Frame) {
	for _, f := range frames {
		f.Release()
	}
}

// mergeRun builds a subscriber-owned frame merging a run of >= 2
// consecutive delta frames: one decode-free structural merge, one
// encode, one write — a client that missed N deltas gets 1 frame.
// Called under the hub read lock (pools are concurrency-safe; source
// deltas are immutable).
func (h *Hub) mergeRun(run []*Frame) *Frame {
	f := h.framePool.Get().(*Frame)
	last := run[len(run)-1]
	buf := f.buf
	*f = Frame{kind: KindDelta, hub: h, seq: last.seq, pubAt: run[0].pubAt, buf: buf[:0]}
	f.refs.Store(1)
	d := h.deltaPool.Get().(*FeedDelta)
	d.copyFrom(run[0].delta)
	for _, src := range run[1:] {
		mergeDelta(d, src.delta)
	}
	f.delta = d
	var stamp int64
	if h.cfg.WallStamp {
		stamp = h.now().UnixNano()
	}
	f.buf = renderHeader(f.buf, last.seq, true, EventDelta)
	f.buf = d.appendJSON(f.buf, stamp)
	f.buf = append(f.buf, '\n', '\n')
	return f
}

// makeResyncFrame builds the drop-accounted gap notice delivered before
// a resync. It carries no id line: resuming from a resync re-presents
// the previous position, which is exactly what triggered the resync.
func (h *Hub) makeResyncFrame(resumeSeq, skipped uint64, byKind *[numKinds]uint64, unknown uint64) *Frame {
	f := h.framePool.Get().(*Frame)
	buf := f.buf
	*f = Frame{kind: KindResync, hub: h, seq: resumeSeq, pubAt: h.now(), buf: buf[:0]}
	f.refs.Store(1)
	f.buf = renderHeader(f.buf, 0, false, EventResync)
	f.buf = append(f.buf, `{"skipped":`...)
	f.buf = appendUint(f.buf, skipped)
	f.buf = append(f.buf, `,"resume_seq":`...)
	f.buf = appendUint(f.buf, resumeSeq)
	first := true
	for k := Kind(0); k < numKinds; k++ {
		if byKind[k] == 0 {
			continue
		}
		if first {
			f.buf = append(f.buf, `,"dropped":{`...)
			first = false
		} else {
			f.buf = append(f.buf, ',')
		}
		f.buf = appendJSONString(f.buf, kindNames[k])
		f.buf = append(f.buf, ':')
		f.buf = appendUint(f.buf, byKind[k])
	}
	if !first {
		f.buf = append(f.buf, '}')
	}
	if unknown > 0 {
		f.buf = append(f.buf, `,"unknown":`...)
		f.buf = appendUint(f.buf, unknown)
	}
	f.buf = append(f.buf, '}', '\n', '\n')
	return f
}

// tokenBucket rate-limits one subscriber's deliveries. Consumer-owned;
// no locking.
type tokenBucket struct {
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

// reserve takes one token, returning how long the caller must wait
// before acting on it (0 when a token was available).
func (tb *tokenBucket) reserve(now time.Time) time.Duration {
	if !tb.last.IsZero() {
		tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
	}
	tb.last = now
	tb.tokens--
	if tb.tokens >= 0 {
		return 0
	}
	return time.Duration(-tb.tokens / tb.rate * float64(time.Second))
}

// refund returns a reserved token (the caller gave up waiting).
func (tb *tokenBucket) refund() {
	tb.tokens++
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
}
