package fanout

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"skynet/internal/hierarchy"
)

var testEpoch = time.Date(2024, 7, 2, 11, 0, 0, 0, time.UTC)

func testDelta(tick uint64, opened ...int) *FeedDelta {
	d := &FeedDelta{Tick: tick, FromTick: tick, Time: testEpoch.Add(time.Duration(tick) * time.Second),
		Structured: 10, FloodPhase: "onset", FloodEpisode: 1, Coalesced: 1}
	for _, id := range opened {
		d.Opened = append(d.Opened, IncidentInfo{
			ID: id, Root: hierarchy.MustNew("r1", "dc1"), Severity: 0.5,
			Active: true, Alerts: 3, Locations: 2,
			Start: testEpoch, Update: d.Time,
		})
	}
	return d
}

func testSnap(tick uint64) *FeedSnapshot {
	return &FeedSnapshot{Tick: tick, Time: testEpoch.Add(time.Duration(tick) * time.Second),
		RawTotal: int(tick) * 100, Structured: 10, FloodPhase: "onset", FloodEpisode: 1}
}

// parseFrames splits raw SSE bytes into (event, id, data) records.
func parseFrames(t *testing.T, raw []byte) []map[string]string {
	t.Helper()
	var out []map[string]string
	for _, block := range bytes.Split(raw, []byte("\n\n")) {
		if len(bytes.TrimSpace(block)) == 0 {
			continue
		}
		rec := map[string]string{}
		for _, line := range bytes.Split(block, []byte("\n")) {
			k, v, ok := bytes.Cut(line, []byte(": "))
			if !ok {
				t.Fatalf("malformed SSE line %q", line)
			}
			rec[string(k)] = string(v)
		}
		out = append(out, rec)
	}
	return out
}

func collect(t *testing.T, s *Subscriber) []map[string]string {
	t.Helper()
	frames, _, err := s.Poll()
	if err != nil {
		t.Fatalf("poll: %v", err)
	}
	var buf bytes.Buffer
	for _, f := range frames {
		buf.Write(f.Bytes())
	}
	s.ReleaseAll(frames)
	return parseFrames(t, buf.Bytes())
}

func TestFreshSubscriberGetsSnapshotThenDeltas(t *testing.T) {
	h := NewHub(Config{Ring: 8})
	defer h.Close()
	h.PublishTick(testSnap(1), testDelta(1, 1))

	sub, err := h.Subscribe(SubscribeOptions{Cursor: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	recs := collect(t, sub)
	if len(recs) != 1 || recs[0]["event"] != EventSnapshot {
		t.Fatalf("want one snapshot frame, got %+v", recs)
	}
	var snap struct {
		Tick     uint64 `json:"tick"`
		RawTotal int    `json:"raw_total"`
	}
	if err := json.Unmarshal([]byte(recs[0]["data"]), &snap); err != nil {
		t.Fatalf("snapshot data not JSON: %v\n%s", err, recs[0]["data"])
	}
	if snap.Tick != 1 || snap.RawTotal != 100 {
		t.Fatalf("snapshot content: %+v", snap)
	}

	h.PublishTick(testSnap(2), testDelta(2, 2))
	recs = collect(t, sub)
	if len(recs) != 1 || recs[0]["event"] != EventDelta {
		t.Fatalf("want one delta frame, got %+v", recs)
	}
	var delta struct {
		Tick   uint64 `json:"tick"`
		Opened []struct {
			ID   int    `json:"id"`
			Root string `json:"root"`
		} `json:"opened"`
	}
	if err := json.Unmarshal([]byte(recs[0]["data"]), &delta); err != nil {
		t.Fatalf("delta data not JSON: %v\n%s", err, recs[0]["data"])
	}
	if delta.Tick != 2 || len(delta.Opened) != 1 || delta.Opened[0].ID != 2 || delta.Opened[0].Root != "r1|dc1" {
		t.Fatalf("delta content: %+v", delta)
	}
}

func TestSubscriberBeforeFirstTickWaitsForSnapshot(t *testing.T) {
	h := NewHub(Config{Ring: 8})
	defer h.Close()
	sub, err := h.Subscribe(SubscribeOptions{Cursor: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if frames, wake, err := sub.Poll(); err != nil || frames != nil || wake == nil {
		t.Fatalf("empty poll: frames=%v wake=%v err=%v", frames, wake, err)
	}
	h.PublishTick(testSnap(1), testDelta(1))
	recs := collect(t, sub)
	if len(recs) != 1 || recs[0]["event"] != EventSnapshot {
		t.Fatalf("want snapshot after first tick, got %+v", recs)
	}
}

func TestChatterEventsCarryIDsAndKinds(t *testing.T) {
	h := NewHub(Config{Ring: 8})
	defer h.Close()
	h.PublishTick(testSnap(1), testDelta(1))
	sub, _ := h.Subscribe(SubscribeOptions{Cursor: -1})
	defer sub.Close()
	collect(t, sub) // drain the snapshot

	h.Publish(EventFlood, map[string]any{"phase": "onset"})
	h.Publish(EventIncident, map[string]any{"id": 7})
	recs := collect(t, sub)
	if len(recs) != 2 || recs[0]["event"] != EventFlood || recs[1]["event"] != EventIncident {
		t.Fatalf("chatter: %+v", recs)
	}
	if recs[0]["id"] == "" || recs[1]["id"] == "" {
		t.Fatalf("chatter frames must carry SSE ids: %+v", recs)
	}
}

func TestLastEventIDResume(t *testing.T) {
	h := NewHub(Config{Ring: 16})
	defer h.Close()
	h.PublishTick(testSnap(1), testDelta(1, 1))
	sub, _ := h.Subscribe(SubscribeOptions{Cursor: -1})
	recs := collect(t, sub)
	lastID := recs[len(recs)-1]["id"]
	sub.Close()

	h.PublishTick(testSnap(2), testDelta(2, 2))
	h.PublishTick(testSnap(3), testDelta(3, 3))

	var cursor int64
	if _, err := json.Number(lastID).Int64(); err != nil {
		t.Fatalf("id not numeric: %q", lastID)
	}
	v, _ := json.Number(lastID).Int64()
	cursor = v
	resumed, err := h.Subscribe(SubscribeOptions{Cursor: cursor})
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	recs = collect(t, resumed)
	// Two pending deltas coalesce into one merged frame; no snapshot
	// (the client's state is current as of its Last-Event-ID).
	if len(recs) != 1 || recs[0]["event"] != EventDelta {
		t.Fatalf("resume: %+v", recs)
	}
	var delta struct {
		Tick      uint64 `json:"tick"`
		FromTick  uint64 `json:"from_tick"`
		Coalesced int    `json:"coalesced"`
		Opened    []struct {
			ID int `json:"id"`
		} `json:"opened"`
	}
	if err := json.Unmarshal([]byte(recs[0]["data"]), &delta); err != nil {
		t.Fatal(err)
	}
	if delta.Tick != 3 || delta.FromTick != 2 || delta.Coalesced != 2 || len(delta.Opened) != 2 {
		t.Fatalf("merged delta: %+v", delta)
	}
	if h.StatsSnapshot().Coalesced != 1 {
		t.Fatalf("coalesced counter: %+v", h.StatsSnapshot())
	}
}

func TestLaggardResyncWithDropAccounting(t *testing.T) {
	h := NewHub(Config{Ring: 4, EvictAfter: 1 << 20})
	defer h.Close()
	h.PublishTick(testSnap(1), testDelta(1))
	sub, _ := h.Subscribe(SubscribeOptions{Cursor: -1})
	defer sub.Close()
	collect(t, sub) // synced at snapshot 1

	// 8 ring frames while the subscriber sleeps: its cursor falls off
	// the 4-slot ring.
	for tick := uint64(2); tick <= 5; tick++ {
		h.PublishTick(testSnap(tick), testDelta(tick))
		h.Publish(EventIncident, map[string]any{"tick": tick})
	}
	recs := collect(t, sub)
	if len(recs) < 2 || recs[0]["event"] != EventResync || recs[1]["event"] != EventSnapshot {
		t.Fatalf("resync sequence: %+v", recs)
	}
	var rs struct {
		Skipped   uint64            `json:"skipped"`
		ResumeSeq uint64            `json:"resume_seq"`
		Dropped   map[string]uint64 `json:"dropped"`
		Unknown   uint64            `json:"unknown"`
	}
	if err := json.Unmarshal([]byte(recs[0]["data"]), &rs); err != nil {
		t.Fatal(err)
	}
	var acct uint64
	for _, v := range rs.Dropped {
		acct += v
	}
	acct += rs.Unknown
	if rs.Skipped == 0 || acct != rs.Skipped {
		t.Fatalf("drop accounting does not balance: %+v", rs)
	}
	st := h.StatsSnapshot()
	if st.Resyncs != 1 || st.DroppedTotal != rs.Skipped {
		t.Fatalf("hub accounting: %+v vs resync %+v", st, rs)
	}
	if _, ok := rs.Dropped["incident"]; !ok {
		t.Fatalf("per-kind drops must name incident chatter: %+v", rs)
	}

	// The frames after the resync continue seamlessly from the snapshot.
	h.PublishTick(testSnap(6), testDelta(6))
	recs = collect(t, sub)
	if len(recs) != 1 || recs[0]["event"] != EventDelta {
		t.Fatalf("post-resync: %+v", recs)
	}
}

func TestNeverPollingSubscriberIsEvicted(t *testing.T) {
	h := NewHub(Config{Ring: 4, EvictAfter: 2})
	defer h.Close()
	h.PublishTick(testSnap(1), testDelta(1))
	sub, _ := h.Subscribe(SubscribeOptions{Cursor: -1})
	collect(t, sub)

	// Eviction threshold is ring+EvictAfter = 6 frames of lag.
	for tick := uint64(2); tick <= 10; tick++ {
		h.PublishTick(testSnap(tick), testDelta(tick))
	}
	if _, _, err := sub.Poll(); err != ErrEvicted {
		t.Fatalf("want ErrEvicted, got %v", err)
	}
	st := h.StatsSnapshot()
	if st.Evictions != 1 || st.Subscribers != 0 {
		t.Fatalf("eviction accounting: %+v", st)
	}
}

func TestWaitRateLimitCoalesces(t *testing.T) {
	clock := testEpoch
	var mu sync.Mutex
	now := func() time.Time { mu.Lock(); defer mu.Unlock(); return clock }
	h := NewHub(Config{Ring: 64, Rate: 1000, Burst: 1, Now: now})
	defer h.Close()
	h.PublishTick(testSnap(1), testDelta(1))
	sub, _ := h.Subscribe(SubscribeOptions{Cursor: -1})
	defer sub.Close()

	ctx := context.Background()
	frames, err := sub.Wait(ctx) // burst token: immediate
	if err != nil || len(frames) != 1 {
		t.Fatalf("first wait: %v %v", frames, err)
	}
	sub.ReleaseAll(frames)

	for tick := uint64(2); tick <= 4; tick++ {
		h.PublishTick(testSnap(tick), testDelta(tick))
	}
	mu.Lock()
	clock = clock.Add(10 * time.Millisecond) // 10 tokens at 1000/s
	mu.Unlock()
	frames, err = sub.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Three deltas pending, one merged frame delivered.
	if len(frames) != 1 || frames[0].Kind() != KindDelta {
		t.Fatalf("rate-limited wait: %d frames", len(frames))
	}
	sub.ReleaseAll(frames)
}

func TestHubCloseWakesWaiters(t *testing.T) {
	h := NewHub(Config{Ring: 8})
	sub, _ := h.Subscribe(SubscribeOptions{Cursor: -1})
	done := make(chan error, 1)
	go func() {
		_, err := sub.Wait(context.Background())
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	h.Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Fatalf("want ErrClosed, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wait did not return after Close")
	}
}

func TestPublishAfterCloseIsNoop(t *testing.T) {
	h := NewHub(Config{Ring: 8})
	h.Close()
	h.PublishTick(testSnap(1), testDelta(1)) // must not panic
	h.Publish(EventFlood, "x")
	if _, err := h.Subscribe(SubscribeOptions{Cursor: -1}); err != ErrClosed {
		t.Fatalf("subscribe after close: %v", err)
	}
}

func TestSnapshotFrameSharedNotCopied(t *testing.T) {
	h := NewHub(Config{Ring: 8})
	defer h.Close()
	h.PublishTick(testSnap(1), testDelta(1))
	a, _ := h.Subscribe(SubscribeOptions{Cursor: -1})
	b, _ := h.Subscribe(SubscribeOptions{Cursor: -1})
	defer a.Close()
	defer b.Close()
	fa, _, _ := a.Poll()
	fb, _, _ := b.Poll()
	if len(fa) != 1 || len(fb) != 1 || &fa[0].Bytes()[0] != &fb[0].Bytes()[0] {
		t.Fatal("subscribers must share the same snapshot buffer")
	}
	a.ReleaseAll(fa)
	b.ReleaseAll(fb)
}

func TestMergeDeltaLifecycleRules(t *testing.T) {
	mk := func(id int, sev float64) IncidentInfo {
		return IncidentInfo{ID: id, Root: hierarchy.MustNew("r1"), Severity: sev, Active: true}
	}
	closed := func(id int) IncidentInfo {
		in := mk(id, 0.9)
		in.Active = false
		in.End = testEpoch
		return in
	}
	dst := &FeedDelta{Tick: 1, FromTick: 1, Coalesced: 1,
		Opened:  []IncidentInfo{mk(1, 0.1), mk(2, 0.1)},
		Updated: []IncidentInfo{mk(9, 0.4)}}
	src := &FeedDelta{Tick: 2, FromTick: 2, Coalesced: 1,
		Opened:  []IncidentInfo{mk(3, 0.2)},
		Updated: []IncidentInfo{mk(1, 0.7), mk(9, 0.6)},
		Closed:  []IncidentInfo{closed(2), closed(8)}}
	mergeDelta(dst, src)
	if dst.Tick != 2 || dst.FromTick != 1 || dst.Coalesced != 2 {
		t.Fatalf("window: %+v", dst)
	}
	// 1 opened+updated => opened with new severity; 2 opened+closed =>
	// closed only; 3 newly opened; 9 updated twice => newest; 8 closed.
	if len(dst.Opened) != 2 || dst.Opened[0].ID != 1 || dst.Opened[0].Severity != 0.7 || dst.Opened[1].ID != 3 {
		t.Fatalf("opened: %+v", dst.Opened)
	}
	if len(dst.Updated) != 1 || dst.Updated[0].ID != 9 || dst.Updated[0].Severity != 0.6 {
		t.Fatalf("updated: %+v", dst.Updated)
	}
	if len(dst.Closed) != 2 || dst.Closed[0].ID != 2 || dst.Closed[1].ID != 8 {
		t.Fatalf("closed: %+v", dst.Closed)
	}
}

func TestJSONEscaping(t *testing.T) {
	got := string(appendJSONString(nil, "a\"b\\c\nd\x01e"))
	want := `"a\"b\\c\nd\u0001e"`
	if got != want {
		t.Fatalf("escape: %s != %s", got, want)
	}
	var s string
	if err := json.Unmarshal([]byte(got), &s); err != nil {
		t.Fatal(err)
	}
	if s != "a\"b\\c\nd\x01e" {
		t.Fatalf("round-trip: %q", s)
	}
}

func TestFloatRendering(t *testing.T) {
	for _, tc := range []struct {
		v    float64
		want string
	}{{0, "0"}, {1, "1"}, {0.5, "0.5"}, {0.1234, "0.1234"}, {0.99995, "1"}, {-2.25, "-2.25"}, {12.3, "12.3"}} {
		if got := string(appendFloat(nil, tc.v)); got != tc.want {
			t.Errorf("appendFloat(%v) = %s, want %s", tc.v, got, tc.want)
		}
	}
}

func TestStatsAndMetricsNames(t *testing.T) {
	h := NewHub(Config{Ring: 8})
	defer h.Close()
	h.PublishTick(testSnap(1), testDelta(1))
	st := h.StatsSnapshot()
	if st.Published != 1 || st.Ticks != 1 || st.SnapshotBytes == 0 {
		t.Fatalf("stats: %+v", st)
	}
	if !strings.Contains(string(mustJSON(t, st)), "queue_depth_high_water") {
		t.Fatal("stats JSON shape changed")
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
