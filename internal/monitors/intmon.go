package monitors

import (
	"fmt"
	"math/rand"
	"time"

	"skynet/internal/alert"
	"skynet/internal/netsim"
	"skynet/internal/topology"
)

// INTMonitor models in-band network telemetry: test flows with designated
// DSCP values traverse devices and compare per-device input and output
// rates (§4.3). A rate discrepancy pins loss to the exact device — the
// sharpest localizer in the fleet — but INT "is not universally supported
// across all devices" (§2.1): only INTCoverage of devices participate.
type INTMonitor struct {
	topo *topology.Topology
	cfg  Config
	cad  cadence

	// supported marks INT-capable devices, fixed at construction.
	supported []bool
}

// NewINTMonitor builds the INT monitor.
func NewINTMonitor(topo *topology.Topology, cfg Config) *INTMonitor {
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x696e7421))
	sup := make([]bool, topo.NumDevices())
	for i := range sup {
		sup[i] = rng.Float64() < cfg.INTCoverage
	}
	return &INTMonitor{topo: topo, cfg: cfg, cad: cadence{interval: cfg.INTInterval}, supported: sup}
}

// Source implements Monitor.
func (m *INTMonitor) Source() alert.Source { return alert.SourceINT }

// Supports reports whether a device participates in INT.
func (m *INTMonitor) Supports(id topology.DeviceID) bool { return m.supported[id] }

// Poll implements Monitor.
func (m *INTMonitor) Poll(sim *netsim.Simulator, now time.Time) []alert.Alert {
	if !m.cad.due(now) {
		return nil
	}
	var out []alert.Alert
	for i := range m.topo.Devices {
		d := &m.topo.Devices[i]
		if !m.supported[d.ID] {
			continue
		}
		st := sim.DeviceState(d.ID)
		if !st.Up {
			continue // test flows route around dead devices
		}
		if st.SilentLoss >= m.cfg.LossThreshold {
			out = append(out, mkAlert(alert.SourceINT, alert.TypeINTRateMismatch, now, d.Path,
				st.SilentLoss,
				fmt.Sprintf("%s DSCP test flow out/in rate mismatch %.1f%%", d.Name, st.SilentLoss*100)))
			out = append(out, mkAlert(alert.SourceINT, alert.TypePacketLoss, now, d.Path,
				st.SilentLoss, fmt.Sprintf("%s dropping test packets", d.Name)))
		}
		if st.BitFlip > 0 {
			out = append(out, mkAlert(alert.SourceINT, alert.TypeBitFlip, now, d.Path,
				st.BitFlip, fmt.Sprintf("%s corrupting test packets", d.Name)))
		}
	}
	return out
}
