package monitors

import (
	"fmt"
	"math/rand"
	"time"

	"skynet/internal/alert"
	"skynet/internal/netsim"
	"skynet/internal/topology"
)

// TrafficMonitor models the sFlow traffic statistics pipeline: per-link
// utilization, abrupt traffic changes, and sampled packet-loss ratios per
// device. Traffic-behaviour alerts are ClassAbnormal on their own — an
// abrupt traffic decrease "might be expected due to user behavior" (§4.2)
// — which is exactly why the preprocessor's cross-source consolidation
// exists.
type TrafficMonitor struct {
	topo  *topology.Topology
	cfg   Config
	cad   cadence
	rng   *rand.Rand
	noise *noiseGate

	// prevRate remembers each link's previous carried rate so abrupt
	// drops and surges are detectable as deltas.
	prevRate []float64
	primed   bool
}

// NewTrafficMonitor builds the sFlow monitor.
func NewTrafficMonitor(topo *topology.Topology, cfg Config) *TrafficMonitor {
	return &TrafficMonitor{
		topo:     topo,
		cfg:      cfg,
		cad:      cadence{interval: cfg.TrafficInterval},
		rng:      rand.New(rand.NewSource(cfg.Seed ^ 0x73666c6f)),
		noise:    newNoiseGate(cfg.Seed^0x73666c31, cfg.NoisePerHour),
		prevRate: make([]float64, topo.NumLinks()),
	}
}

// Source implements Monitor.
func (m *TrafficMonitor) Source() alert.Source { return alert.SourceTraffic }

// carriedRate computes the traffic a link actually carries now: offered
// demand clipped by surviving capacity and endpoint health.
func (m *TrafficMonitor) carriedRate(sim *netsim.Simulator, lid topology.LinkID) float64 {
	l := m.topo.Link(lid)
	ls := sim.LinkState(lid)
	aUp := sim.DeviceState(l.A)
	bUp := sim.DeviceState(l.B)
	if !aUp.Up || !bUp.Up || aUp.Isolated || bUp.Isolated {
		return 0
	}
	availFrac := 1 - float64(ls.CircuitsDown)/float64(l.Circuits)
	offered := l.CapacityGbps * sim.BaselineUtil(lid) * ls.DemandMultiplier
	// Blackholed internet-bound traffic vanishes from the entry links:
	// the visible egress volume shrinks even though nothing broke here.
	if l.InternetEntry {
		bh := aUp.RouteBlackhole
		if bUp.RouteBlackhole > bh {
			bh = bUp.RouteBlackhole
		}
		offered *= 1 - bh
	}
	capacity := l.CapacityGbps * availFrac
	if offered > capacity {
		return capacity
	}
	return offered
}

// Poll implements Monitor.
func (m *TrafficMonitor) Poll(sim *netsim.Simulator, now time.Time) []alert.Alert {
	if !m.cad.due(now) {
		return nil
	}
	var out []alert.Alert
	for i := range m.topo.Links {
		lid := topology.LinkID(i)
		l := m.topo.Link(lid)
		rate := m.carriedRate(sim, lid)
		prev := m.prevRate[i]
		m.prevRate[i] = rate
		if !m.primed {
			continue
		}
		a := m.topo.Device(l.A)
		b := m.topo.Device(l.B)
		ls := sim.LinkState(lid)
		availFrac := 1 - float64(ls.CircuitsDown)/float64(l.Circuits)
		util := 0.0
		if availFrac > 0 {
			util = rate / (l.CapacityGbps * availFrac)
		}
		switch {
		case prev > 0 && rate < prev*0.5:
			for _, dev := range []*topology.Device{a, b} {
				al := mkAlert(alert.SourceTraffic, alert.TypeTrafficDrop, now, dev.Path,
					rate/maxNonZero(prev), fmt.Sprintf("traffic on %s fell %.0f→%.0f Gbps", l.CircuitSet, prev, rate))
				al.CircuitSet = l.CircuitSet
				out = append(out, al)
			}
		case prev > 0 && rate > prev*1.6:
			for _, dev := range []*topology.Device{a, b} {
				al := mkAlert(alert.SourceTraffic, alert.TypeTrafficSurge, now, dev.Path,
					rate/maxNonZero(prev), fmt.Sprintf("traffic on %s rose %.0f→%.0f Gbps", l.CircuitSet, prev, rate))
				al.CircuitSet = l.CircuitSet
				out = append(out, al)
			}
		}
		if util > 0.95 {
			al := mkAlert(alert.SourceTraffic, alert.TypeTrafficCongestion, now, a.Path, util,
				fmt.Sprintf("%s saturated at %.0f%%", l.CircuitSet, util*100))
			al.CircuitSet = l.CircuitSet
			out = append(out, al)
		}
	}
	// Sampled loss ratios per device: sFlow sees silent loss that
	// device logs never mention.
	for i := range m.topo.Devices {
		d := &m.topo.Devices[i]
		st := sim.DeviceState(d.ID)
		if st.Up && st.SilentLoss >= m.cfg.LossThreshold {
			out = append(out, mkAlert(alert.SourceTraffic, alert.TypePacketLoss, now, d.Path,
				st.SilentLoss, fmt.Sprintf("%s sampled loss ratio %.1f%%", d.Name, st.SilentLoss*100)))
		}
	}
	if m.noise.fire(m.cfg.TrafficInterval) {
		l := m.topo.Link(topology.LinkID(m.rng.Intn(m.topo.NumLinks())))
		d := m.topo.Device(l.A)
		al := mkAlert(alert.SourceTraffic, alert.TypeTrafficSurge, now, d.Path, 1.7,
			"transient flow burst")
		al.CircuitSet = l.CircuitSet
		out = append(out, al)
	}
	m.primed = true
	return out
}

func maxNonZero(v float64) float64 {
	if v <= 0 {
		return 1
	}
	return v
}
