package monitors

import (
	"strings"
	"testing"
	"time"

	"skynet/internal/alert"
	"skynet/internal/hierarchy"
	"skynet/internal/netsim"
	"skynet/internal/topology"
)

var epoch = time.Date(2024, 7, 2, 11, 0, 0, 0, time.UTC)

func smallTopo() *topology.Topology {
	return topology.MustGenerate(topology.SmallConfig())
}

func quietConfig() Config {
	cfg := DefaultConfig()
	cfg.NoisePerHour = 0
	return cfg
}

func firstRole(topo *topology.Topology, role topology.Role) *topology.Device {
	for i := range topo.Devices {
		if topo.Devices[i].Role == role {
			return &topo.Devices[i]
		}
	}
	return nil
}

// runWindow drives a fleet over a window and returns all alerts.
func runWindow(t *testing.T, topo *topology.Topology, faults []netsim.Fault, cfg Config,
	window time.Duration, sources ...alert.Source) []alert.Alert {
	t.Helper()
	sim := netsim.New(topo, 1)
	for _, f := range faults {
		sim.MustInject(f)
	}
	fleet := NewFleet(topo, cfg, sources...)
	out, err := fleet.Run(sim, epoch, epoch.Add(window), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func countBy(alerts []alert.Alert, src alert.Source, typ string) int {
	n := 0
	for i := range alerts {
		if alerts[i].Source == src && (typ == "" || alerts[i].Type == typ) {
			n++
		}
	}
	return n
}

func TestHealthyNetworkIsQuiet(t *testing.T) {
	topo := smallTopo()
	out := runWindow(t, topo, nil, quietConfig(), time.Minute)
	if len(out) != 0 {
		t.Errorf("healthy network produced %d alerts: first %v", len(out), out[0])
	}
}

func TestNoiseFloorExists(t *testing.T) {
	topo := smallTopo()
	cfg := DefaultConfig()
	cfg.NoisePerHour = 3600 // force noise so the short test window sees it
	out := runWindow(t, topo, nil, cfg, time.Minute)
	if len(out) == 0 {
		t.Error("noise configured but no noise alerts emitted")
	}
}

func TestDeviceDownFlood(t *testing.T) {
	topo := smallTopo()
	isr := firstRole(topo, topology.RoleISR)
	faults := []netsim.Fault{{Kind: netsim.FaultDeviceDown, Device: isr.ID, Start: epoch.Add(10 * time.Second)}}
	out := runWindow(t, topo, faults, quietConfig(), 3*time.Minute)
	if len(out) == 0 {
		t.Fatal("device down produced no alerts")
	}
	if n := countBy(out, alert.SourceOutOfBand, alert.TypeDeviceInaccessible); n == 0 {
		t.Error("out-of-band did not notice the dead device")
	}
	// Neighbors' syslog link-down lines arrive as raw unclassified text.
	sysRaw := 0
	for i := range out {
		if out[i].Source == alert.SourceSyslog {
			if out[i].Type != "" {
				t.Fatal("syslog alerts must be unclassified")
			}
			if strings.Contains(out[i].Raw, "changed state to down") {
				sysRaw++
			}
		}
	}
	if sysRaw == 0 {
		t.Error("no neighbor link-down syslog lines")
	}
}

func TestSilentLossSeenOnlyByBehaviourTools(t *testing.T) {
	topo := smallTopo()
	isr := firstRole(topo, topology.RoleISR)
	faults := []netsim.Fault{{Kind: netsim.FaultSilentLoss, Device: isr.ID, Magnitude: 0.5, Start: epoch}}
	out := runWindow(t, topo, faults, quietConfig(), 2*time.Minute)
	if countBy(out, alert.SourceSyslog, "") != 0 {
		t.Error("syslog should be blind to silent loss")
	}
	if countBy(out, alert.SourceSNMP, "") != 0 {
		t.Error("SNMP should be blind to silent loss")
	}
	if countBy(out, alert.SourceTraffic, alert.TypePacketLoss) == 0 {
		t.Error("sFlow should see silent loss")
	}
	if countBy(out, alert.SourcePing, alert.TypePacketLoss) == 0 {
		t.Error("ping should see silent loss")
	}
}

func TestPingBlamesSingleBadDevice(t *testing.T) {
	topo := smallTopo()
	isr := firstRole(topo, topology.RoleISR)
	faults := []netsim.Fault{{Kind: netsim.FaultSilentLoss, Device: isr.ID, Magnitude: 0.6, Start: epoch}}
	out := runWindow(t, topo, faults, quietConfig(), time.Minute, alert.SourcePing)
	blamed := 0
	for i := range out {
		if out[i].Type == alert.TypePacketLoss && out[i].Location == isr.Path {
			blamed++
		}
	}
	if blamed == 0 {
		t.Error("ping never triangulated the single bad device")
	}
}

func TestSNMPDelayOnOldDevices(t *testing.T) {
	topo := smallTopo()
	cfg := quietConfig()
	cfg.OldDeviceRatio = 1.0 // every device is old
	m := NewSNMPMonitor(topo, cfg)
	var old topology.DeviceID = -1
	for i := 0; i < topo.NumDevices(); i++ {
		if m.DelayOf(topology.DeviceID(i)) > 0 {
			old = topology.DeviceID(i)
			break
		}
	}
	if old < 0 {
		t.Fatal("no old devices with OldDeviceRatio=1")
	}
	if d := m.DelayOf(old); d < cfg.SNMPMaxDelay/2 || d > cfg.SNMPMaxDelay {
		t.Errorf("old-device delay %v outside [max/2, max]", d)
	}
	// A link cut observed at t must not be delivered before t+delay.
	sim := netsim.New(topo, 1)
	lid := topo.LinksOf(old)[0]
	sim.MustInject(netsim.Fault{Kind: netsim.FaultLinkCut, Link: lid, Circuits: 1, Start: epoch})
	if err := sim.Step(epoch); err != nil {
		t.Fatal(err)
	}
	if got := m.Poll(sim, epoch); len(got) != 0 {
		t.Errorf("alerts delivered immediately despite delay: %d", len(got))
	}
	// After the max delay everything pending must flush.
	late := epoch.Add(cfg.SNMPMaxDelay + time.Second)
	if err := sim.Step(late); err != nil {
		t.Fatal(err)
	}
	got := m.Poll(sim, late)
	if len(got) == 0 {
		t.Error("delayed alerts never delivered")
	}
	for i := range got {
		if !got[i].Time.Equal(epoch) {
			t.Errorf("delivered alert timestamp %v, want observation time %v", got[i].Time, epoch)
		}
		if !got[i].End.Equal(got[i].Time) {
			t.Error("End must be reset to observation time on delivery")
		}
	}
}

func TestSNMPRepeatsWhileConditionHolds(t *testing.T) {
	topo := smallTopo()
	lid := topology.LinkID(0)
	faults := []netsim.Fault{{Kind: netsim.FaultLinkCut, Link: lid, Circuits: topo.Link(lid).Circuits, Start: epoch}}
	cfg := quietConfig()
	cfg.OldDeviceRatio = 0
	out := runWindow(t, topo, faults, cfg, 3*time.Minute, alert.SourceSNMP)
	if n := countBy(out, alert.SourceSNMP, alert.TypeLinkDown); n < 4 {
		t.Errorf("SNMP link down reported %d times over 3 min; duplicates expected", n)
	}
}

func TestINTCoverageLimit(t *testing.T) {
	topo := smallTopo()
	cfg := quietConfig()
	cfg.INTCoverage = 0
	m := NewINTMonitor(topo, cfg)
	for i := 0; i < topo.NumDevices(); i++ {
		if m.Supports(topology.DeviceID(i)) {
			t.Fatal("INTCoverage=0 but device supported")
		}
	}
	sim := netsim.New(topo, 1)
	isr := firstRole(topo, topology.RoleISR)
	sim.MustInject(netsim.Fault{Kind: netsim.FaultSilentLoss, Device: isr.ID, Magnitude: 0.5, Start: epoch})
	if err := sim.Step(epoch); err != nil {
		t.Fatal(err)
	}
	if got := m.Poll(sim, epoch); len(got) != 0 {
		t.Error("INT with zero coverage produced alerts")
	}
}

func TestRouteMonitorSeesOnlyControlPlane(t *testing.T) {
	topo := smallTopo()
	city := topo.Clusters()[0].Truncate(hierarchy.LevelCity)
	faults := []netsim.Fault{{Kind: netsim.FaultRouteError, Location: city, Magnitude: 0.4, Start: epoch}}
	out := runWindow(t, topo, faults, quietConfig(), time.Minute, alert.SourceRouteMonitoring)
	if countBy(out, alert.SourceRouteMonitoring, alert.TypeRouteLoss) == 0 {
		t.Error("route monitor missed the route error")
	}
	// Data-plane-only fault: invisible to route monitoring.
	faults = []netsim.Fault{{Kind: netsim.FaultSilentLoss, Device: 0, Magnitude: 0.5, Start: epoch}}
	out = runWindow(t, topo, faults, quietConfig(), time.Minute, alert.SourceRouteMonitoring)
	if len(out) != 0 {
		t.Error("route monitor saw a data-plane fault")
	}
}

func TestModificationEvents(t *testing.T) {
	topo := smallTopo()
	csr := firstRole(topo, topology.RoleCSR)
	faults := []netsim.Fault{{
		Kind: netsim.FaultModification, Device: csr.ID, Magnitude: 0.5,
		Start: epoch.Add(10 * time.Second), End: epoch.Add(40 * time.Second),
	}}
	out := runWindow(t, topo, faults, quietConfig(), 2*time.Minute, alert.SourceModificationEvents)
	if countBy(out, alert.SourceModificationEvents, alert.TypeModificationFailed) != 1 {
		t.Errorf("want exactly 1 modification-failed event, got %d",
			countBy(out, alert.SourceModificationEvents, alert.TypeModificationFailed))
	}
	if countBy(out, alert.SourceModificationEvents, alert.TypeModificationDone) != 1 {
		t.Error("rollback completion not reported")
	}
}

func TestPTPSeesOnlyClockDrift(t *testing.T) {
	topo := smallTopo()
	faults := []netsim.Fault{{Kind: netsim.FaultClockDrift, Device: 3, Magnitude: 2, Start: epoch}}
	out := runWindow(t, topo, faults, quietConfig(), 2*time.Minute, alert.SourcePTP)
	if countBy(out, alert.SourcePTP, alert.TypeClockUnsync) == 0 {
		t.Error("PTP missed the drift")
	}
	faults = []netsim.Fault{{Kind: netsim.FaultDeviceDown, Device: 3, Start: epoch}}
	out = runWindow(t, topo, faults, quietConfig(), 2*time.Minute, alert.SourcePTP)
	if len(out) != 0 {
		t.Error("PTP should not see a device death")
	}
}

func TestPatrolFindsPersistentAnomalies(t *testing.T) {
	topo := smallTopo()
	csr := firstRole(topo, topology.RoleCSR)
	faults := []netsim.Fault{{Kind: netsim.FaultDeviceHardware, Device: csr.ID, Start: epoch}}
	cfg := quietConfig()
	cfg.PatrolInterval = 30 * time.Second // speed the patrol up for the test
	out := runWindow(t, topo, faults, cfg, 2*time.Minute, alert.SourcePatrolInspection)
	if countBy(out, alert.SourcePatrolInspection, alert.TypePatrolAnomaly) == 0 {
		t.Error("patrol missed the hardware anomaly")
	}
}

func TestFiberCutAlertFlood(t *testing.T) {
	// The §2.2 reproduction: a fiber bundle cut must trigger a
	// multi-source alert flood — syslog link downs, SNMP congestion,
	// internet telemetry loss — with the root cause buried inside.
	topo := smallTopo()
	city := topo.Clusters()[0].Truncate(hierarchy.LevelCity)
	faults := []netsim.Fault{{Kind: netsim.FaultFiberBundleCut, Location: city, Magnitude: 0.5, Start: epoch.Add(10 * time.Second)}}
	out := runWindow(t, topo, faults, quietConfig(), 3*time.Minute)
	srcs := map[alert.Source]int{}
	for i := range out {
		srcs[out[i].Source]++
	}
	for _, want := range []alert.Source{alert.SourceSyslog, alert.SourceSNMP, alert.SourceInternetTelemetry} {
		if srcs[want] == 0 {
			t.Errorf("fiber cut invisible to %v (flood sources: %v)", want, srcs)
		}
	}
	if len(out) < 50 {
		t.Errorf("expected an alert flood, got only %d alerts", len(out))
	}
}

func TestPingMatrixPopulated(t *testing.T) {
	topo := smallTopo()
	sim := netsim.New(topo, 1)
	fleet := NewFleet(topo, quietConfig())
	if fleet.Ping() == nil {
		t.Fatal("fleet should expose ping monitor")
	}
	if _, err := fleet.Run(sim, epoch, epoch.Add(30*time.Second), 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if len(fleet.Ping().Matrix()) == 0 {
		t.Error("ping matrix empty after run")
	}
}

func TestFleetSourceFiltering(t *testing.T) {
	topo := smallTopo()
	fleet := NewFleet(topo, quietConfig(), alert.SourcePing, alert.SourceSyslog)
	if len(fleet.Monitors()) != 2 {
		t.Errorf("filtered fleet has %d monitors, want 2", len(fleet.Monitors()))
	}
	full := NewFleet(topo, quietConfig())
	if len(full.Monitors()) != 13 {
		t.Errorf("full fleet has %d monitors, want 13 (Table 2)", len(full.Monitors()))
	}
	noPing := NewFleet(topo, quietConfig(), alert.SourceSyslog)
	if noPing.Ping() != nil {
		t.Error("ping accessor should be nil when ping is disabled")
	}
}

func TestAlertsAreValidAndOrdered(t *testing.T) {
	topo := smallTopo()
	city := topo.Clusters()[0].Truncate(hierarchy.LevelCity)
	faults := []netsim.Fault{
		{Kind: netsim.FaultFiberBundleCut, Location: city, Magnitude: 0.5, Start: epoch.Add(10 * time.Second)},
		{Kind: netsim.FaultDeviceSoftware, Device: 5, Start: epoch.Add(20 * time.Second)},
	}
	out := runWindow(t, topo, faults, quietConfig(), 2*time.Minute)
	for i := range out {
		a := &out[i]
		if a.Source != alert.SourceSyslog { // syslog is unclassified by design
			if err := a.Validate(); err != nil {
				t.Fatalf("invalid alert %v: %v", a, err)
			}
		}
		if i > 0 && out[i].Time.Before(out[i-1].Time) {
			t.Fatal("alerts not time-ordered")
		}
	}
}

func TestPathOfDeviceHelper(t *testing.T) {
	topo := smallTopo()
	if pathOfDevice(topo, 0) != topo.Device(0).Path {
		t.Error("helper mismatch")
	}
}
