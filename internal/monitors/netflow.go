package monitors

import (
	"fmt"
	"time"

	"skynet/internal/alert"
	"skynet/internal/netsim"
	"skynet/internal/topology"
)

// NetFlowMonitor models the per-customer flow accounting the evaluator
// consumes: it watches each circuit set's SLA flows and raises an alert
// when flows exceed their contracted limits because capacity shrank
// (l_i and L_k in Table 3 come from these observations).
type NetFlowMonitor struct {
	topo *topology.Topology
	cfg  Config
	cad  cadence
}

// NewNetFlowMonitor builds the NetFlow monitor.
func NewNetFlowMonitor(topo *topology.Topology, cfg Config) *NetFlowMonitor {
	return &NetFlowMonitor{topo: topo, cfg: cfg, cad: cadence{interval: cfg.TrafficInterval}}
}

// Source implements Monitor.
func (m *NetFlowMonitor) Source() alert.Source { return alert.SourceNetFlow }

// Poll implements Monitor.
func (m *NetFlowMonitor) Poll(sim *netsim.Simulator, now time.Time) []alert.Alert {
	if !m.cad.due(now) {
		return nil
	}
	var out []alert.Alert
	for i := range m.topo.Links {
		lid := topology.LinkID(i)
		l := m.topo.Link(lid)
		ls := sim.LinkState(lid)
		availFrac := 1 - float64(ls.CircuitsDown)/float64(l.Circuits)
		offered := sim.BaselineUtil(lid) * ls.DemandMultiplier
		if availFrac <= 0 || offered/availFrac > 1 {
			over := 1.0
			if availFrac > 0 {
				over = offered / availFrac
			}
			cs := m.topo.CircuitSet(l.CircuitSet)
			d := m.topo.Device(l.A)
			al := mkAlert(alert.SourceNetFlow, alert.TypeSLAFlowOverLimit, now, d.Path, over,
				fmt.Sprintf("%d SLA flows on %s beyond limit", len(cs.Customers), cs.Name))
			al.CircuitSet = cs.Name
			out = append(out, al)
		}
	}
	// SLA flows crossing a lossy device miss their contracted delivery
	// rate: the accounting sees delivered < contracted on every circuit
	// set touching the device. Value uses the same demand/capacity-style
	// ratio as overload, so a 50 % loss reads as 2× beyond limit.
	for i := range m.topo.Devices {
		d := &m.topo.Devices[i]
		st := sim.DeviceState(d.ID)
		if !st.Up || st.SilentLoss < m.cfg.LossThreshold || st.SilentLoss >= 1 {
			continue
		}
		ratio := 1 / (1 - st.SilentLoss)
		for _, lid := range m.topo.LinksOf(d.ID) {
			cs := m.topo.CircuitSet(m.topo.Link(lid).CircuitSet)
			al := mkAlert(alert.SourceNetFlow, alert.TypeSLAFlowOverLimit, now, d.Path, ratio,
				fmt.Sprintf("%d SLA flows on %s under-delivering through %s", len(cs.Customers), cs.Name, d.Name))
			al.CircuitSet = cs.Name
			out = append(out, al)
		}
	}
	return out
}
