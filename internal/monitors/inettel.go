package monitors

import (
	"fmt"
	"time"

	"skynet/internal/alert"
	"skynet/internal/netsim"
	"skynet/internal/topology"
)

// InternetTelemetryMonitor pings Internet addresses from DC servers
// (Table 2): each round it evaluates the internet path of a rotating
// subset of clusters and reports unreachability or degradation. It only
// sees the DC↔Internet direction — intra-DC failures that do not touch
// the entry path are invisible.
type InternetTelemetryMonitor struct {
	topo  *topology.Topology
	cfg   Config
	cad   cadence
	round int
}

// NewInternetTelemetryMonitor builds the internet telemetry monitor.
func NewInternetTelemetryMonitor(topo *topology.Topology, cfg Config) *InternetTelemetryMonitor {
	return &InternetTelemetryMonitor{topo: topo, cfg: cfg, cad: cadence{interval: cfg.InternetInterval}}
}

// Source implements Monitor.
func (m *InternetTelemetryMonitor) Source() alert.Source { return alert.SourceInternetTelemetry }

// Poll implements Monitor.
func (m *InternetTelemetryMonitor) Poll(sim *netsim.Simulator, now time.Time) []alert.Alert {
	if !m.cad.due(now) {
		return nil
	}
	m.round++
	clusters := m.topo.Clusters()
	var out []alert.Alert
	for i, cl := range clusters {
		// Sample a third of clusters per round, rotating.
		if (i+m.round)%3 != 0 {
			continue
		}
		r, err := sim.EvalInternet(cl)
		if err != nil {
			continue
		}
		if r.Loss >= m.cfg.LossThreshold {
			loc := cl
			if w := r.WorstStage(); w >= 0 && r.Stages[w].Loss > 0 {
				loc = blameStage(sim, m.topo, &r.Stages[w])
			}
			a := mkAlert(alert.SourceInternetTelemetry, alert.TypeInternetLoss, now, loc, r.Loss,
				fmt.Sprintf("internet probes from %s losing %.1f%%", cl, r.Loss*100))
			a.Peer = cl
			out = append(out, a)
		} else if r.LatencySeconds > 0.02 {
			out = append(out, mkAlert(alert.SourceInternetTelemetry, alert.TypeHighLatency, now, cl,
				r.LatencySeconds, fmt.Sprintf("internet rtt %.1fms", r.LatencySeconds*1000)))
		}
	}
	return out
}
