package monitors

import (
	"fmt"
	"math/rand"
	"time"

	"skynet/internal/alert"
	"skynet/internal/hierarchy"
	"skynet/internal/netsim"
	"skynet/internal/topology"
)

// PingMonitor models the end-to-end ping mesh (Pingmesh/NetNORAD style):
// every PingInterval each cluster probes PingFanout peer clusters. Loss
// above the threshold produces a "packet loss" alert attributed to the
// worst stage along the path (the intermediary link/group the probes
// blame, §4.1), plus end-to-end flavor alerts at the source cluster.
// High latency and jitter produce their own alert types.
//
// Blind spots: ping cannot see partial link failures that redundancy
// absorbs, bit flips, or anything that does not move loss or latency.
type PingMonitor struct {
	topo  *topology.Topology
	cfg   Config
	cad   cadence
	rng   *rand.Rand
	noise *noiseGate

	// round rotates the probe fanout so the mesh eventually covers all
	// pairs.
	round int

	// sim is the simulator of the current Poll, used by blameStage's
	// triangulation.
	sim *netsim.Simulator

	// matrix is the most recent cluster×cluster loss observation,
	// consumed by the evaluator's location zoom-in.
	matrix map[PairKey]float64
}

// PairKey identifies a directed cluster pair.
type PairKey struct {
	Src, Dst hierarchy.Path
}

// PairSample is one ping mesh observation.
type PairSample struct {
	Src, Dst hierarchy.Path
	Loss     float64
	Latency  float64
}

// NewPingMonitor builds the ping mesh monitor.
func NewPingMonitor(topo *topology.Topology, cfg Config) *PingMonitor {
	return &PingMonitor{
		topo:   topo,
		cfg:    cfg,
		cad:    cadence{interval: cfg.PingInterval},
		rng:    rand.New(rand.NewSource(cfg.Seed ^ 0x70696e67)),
		noise:  newNoiseGate(cfg.Seed^0x6e6f6973, cfg.NoisePerHour),
		matrix: make(map[PairKey]float64),
	}
}

// Source implements Monitor.
func (m *PingMonitor) Source() alert.Source { return alert.SourcePing }

// Matrix returns the latest loss observations. The map is live until the
// next Poll; callers needing a snapshot must copy.
func (m *PingMonitor) Matrix() map[PairKey]float64 { return m.matrix }

// Poll implements Monitor.
func (m *PingMonitor) Poll(sim *netsim.Simulator, now time.Time) []alert.Alert {
	if !m.cad.due(now) {
		return nil
	}
	clusters := m.topo.Clusters()
	if len(clusters) < 2 {
		return nil
	}
	m.sim = sim
	var out []alert.Alert
	m.round++
	for i, src := range clusters {
		for k := 0; k < m.cfg.PingFanout; k++ {
			j := (i + 1 + (m.round+k)*7919%len(clusters)) % len(clusters)
			if j == i {
				j = (j + 1) % len(clusters)
			}
			dst := clusters[j]
			r, err := sim.EvalPath(src, dst)
			if err != nil {
				continue
			}
			m.matrix[PairKey{src, dst}] = r.Loss
			out = append(out, m.pairAlerts(src, dst, &r, now)...)
		}
	}
	// Background glitches: a sporadic one-round loss blip on a random
	// pair, the noise floor that real ping meshes never quite lose.
	if m.noise.fire(m.cfg.PingInterval) {
		src := clusters[m.rng.Intn(len(clusters))]
		dst := clusters[m.rng.Intn(len(clusters))]
		if src != dst {
			a := mkAlert(alert.SourcePing, alert.TypePacketLoss, now, src,
				0.01+0.02*m.rng.Float64(), "sporadic probe loss")
			a.Peer = dst
			out = append(out, a)
		}
	}
	return out
}

func (m *PingMonitor) pairAlerts(src, dst hierarchy.Path, r *netsim.PathReport, now time.Time) []alert.Alert {
	var out []alert.Alert
	if r.Loss >= m.cfg.LossThreshold {
		// All loss-derived alerts are attributed to the blamed stage, not
		// the (healthy) probing cluster: the production mesh triangulates
		// across paths before alerting.
		loc := src
		if w := r.WorstStage(); w >= 0 && r.Stages[w].Loss > 0 {
			loc = blameStage(m.sim, m.topo, &r.Stages[w])
		}
		a := mkAlert(alert.SourcePing, alert.TypePacketLoss, now, loc, r.Loss,
			fmt.Sprintf("Packet loss %.1f%% to %s", r.Loss*100, dst))
		a.Peer = dst
		out = append(out, a)
		// The mesh runs ICMP, TCP and source-routed probe flavors; heavy
		// loss trips all of them (the Figure 6 incident listing).
		if r.Loss >= 0.10 {
			e := mkAlert(alert.SourcePing, alert.TypeEndToEndICMP, now, loc, r.Loss, "e2e icmp probe failure")
			e.Peer = dst
			out = append(out, e)
		}
		if r.Loss >= 0.25 {
			e := mkAlert(alert.SourcePing, alert.TypeEndToEndTCP, now, loc, r.Loss, "e2e tcp probe failure")
			e.Peer = dst
			out = append(out, e)
		}
		if r.Loss >= 0.5 {
			e := mkAlert(alert.SourcePing, alert.TypeEndToEndSource, now, loc, r.Loss, "e2e source-routed probe failure")
			e.Peer = dst
			out = append(out, e)
		}
	}
	if r.LatencySeconds > 0.015 {
		loc := src
		if w := r.WorstStage(); w >= 0 && r.Stages[w].EffUtil > 1 {
			loc = blameStage(m.sim, m.topo, &r.Stages[w])
		}
		a := mkAlert(alert.SourcePing, alert.TypeHighLatency, now, loc, r.LatencySeconds,
			fmt.Sprintf("rtt %.1fms to %s", r.LatencySeconds*1000, dst))
		a.Peer = dst
		out = append(out, a)
	}
	return out
}
