package monitors

import (
	"fmt"
	"math/rand"
	"time"

	"skynet/internal/alert"
	"skynet/internal/netsim"
	"skynet/internal/topology"
)

// OutOfBandMonitor polls every device through the management network:
// liveness, CPU, RAM, temperature (Redfish-Nagios style). It covers
// predominantly infrastructure issues (§2.1) — a device that is up but
// silently dropping packets looks perfectly healthy here.
type OutOfBandMonitor struct {
	topo  *topology.Topology
	cfg   Config
	cad   cadence
	rng   *rand.Rand
	noise *noiseGate
	storm *noiseGate
}

// NewOutOfBandMonitor builds the out-of-band monitor.
func NewOutOfBandMonitor(topo *topology.Topology, cfg Config) *OutOfBandMonitor {
	return &OutOfBandMonitor{
		topo:  topo,
		cfg:   cfg,
		cad:   cadence{interval: cfg.OOBInterval},
		rng:   rand.New(rand.NewSource(cfg.Seed ^ 0x6f6f6221)),
		noise: newNoiseGate(cfg.Seed^0x6f6f6222, cfg.NoisePerHour),
		storm: newNoiseGate(cfg.Seed^0x6f6f6223, cfg.NoisePerHour),
	}
}

// Source implements Monitor.
func (m *OutOfBandMonitor) Source() alert.Source { return alert.SourceOutOfBand }

// Poll implements Monitor.
func (m *OutOfBandMonitor) Poll(sim *netsim.Simulator, now time.Time) []alert.Alert {
	if !m.cad.due(now) {
		return nil
	}
	var out []alert.Alert
	for i := range m.topo.Devices {
		d := &m.topo.Devices[i]
		st := sim.DeviceState(d.ID)
		if !st.Up {
			// The management probe times out: the device is
			// "inaccessible". During a facility power failure this fires
			// for every device at once — the probe-error alert storm the
			// same-type consolidation of §4.2 exists to contain.
			out = append(out, mkAlert(alert.SourceOutOfBand, alert.TypeDeviceInaccessible, now,
				d.Path, 0, fmt.Sprintf("%s management probe timeout", d.Name)))
			continue
		}
		if st.CPUUtil > 0.85 {
			out = append(out, mkAlert(alert.SourceOutOfBand, alert.TypeHighCPU, now,
				d.Path, st.CPUUtil, fmt.Sprintf("%s cpu %.0f%%", d.Name, st.CPUUtil*100)))
		}
		if st.MemUtil > 0.85 {
			out = append(out, mkAlert(alert.SourceOutOfBand, alert.TypeHighMemory, now,
				d.Path, st.MemUtil, fmt.Sprintf("%s mem %.0f%%", d.Name, st.MemUtil*100)))
		}
	}
	// Management-network glitches: a random device looks briefly
	// unreachable.
	if m.noise.fire(m.cfg.OOBInterval) {
		d := &m.topo.Devices[m.rng.Intn(len(m.topo.Devices))]
		out = append(out, mkAlert(alert.SourceOutOfBand, alert.TypeDeviceInaccessible, now,
			d.Path, 0, fmt.Sprintf("%s transient mgmt probe loss", d.Name)))
	}
	// Probe-error storms: when the liveness prober itself glitches, every
	// device in a cluster reports inaccessible at once — the §4.2 false-
	// alarm generator that type-deduplicated counting exists to defuse.
	if m.storm.fire(m.cfg.OOBInterval) {
		cls := m.topo.Clusters()
		cl := cls[m.rng.Intn(len(cls))]
		for _, id := range m.topo.DevicesUnder(cl) {
			d := m.topo.Device(id)
			out = append(out, mkAlert(alert.SourceOutOfBand, alert.TypeDeviceInaccessible, now,
				d.Path, 0, fmt.Sprintf("%s probe agent error", d.Name)))
		}
	}
	return out
}
