// Package monitors models the network monitoring tools of Table 2. Each
// monitor samples the netsim.Simulator with its real-world cadence, delay,
// and — critically — its real-world blind spots (§2.1): ping only sees
// reachability, syslog only sees what devices log, SNMP is delayed on old
// devices, INT is not universally deployed, route monitoring only sees the
// control plane. The union of their outputs is the raw alert flood SkyNet
// ingests.
package monitors

import (
	"math/rand"
	"sort"
	"time"

	"skynet/internal/alert"
	"skynet/internal/hierarchy"
	"skynet/internal/netsim"
	"skynet/internal/topology"
)

// Monitor is one monitoring data source. Poll is called by the Fleet on
// every simulation tick; the monitor decides internally whether a sampling
// round is due and which alerts are ready for delivery (modeling per-tool
// reporting delay). Monitors are not safe for concurrent use.
type Monitor interface {
	// Source identifies the data source.
	Source() alert.Source
	// Poll returns the alerts delivered at or before now. The simulator
	// reflects the network state at now.
	Poll(sim *netsim.Simulator, now time.Time) []alert.Alert
}

// Config tunes the monitor fleet. The zero value is not usable; start from
// DefaultConfig.
type Config struct {
	// PingInterval is the probe cadence ("Ping outputs one data point
	// every 2 seconds", §4.1).
	PingInterval time.Duration
	// PingFanout is how many destination clusters each cluster probes per
	// round (the production mesh is sampled, not full).
	PingFanout int
	// TracerouteInterval, SNMPInterval, OOBInterval, TrafficInterval,
	// InternetInterval, INTInterval, PTPInterval, RouteInterval and
	// PatrolInterval are the remaining cadences.
	TracerouteInterval time.Duration
	SNMPInterval       time.Duration
	OOBInterval        time.Duration
	TrafficInterval    time.Duration
	InternetInterval   time.Duration
	INTInterval        time.Duration
	PTPInterval        time.Duration
	RouteInterval      time.Duration
	PatrolInterval     time.Duration

	// OldDeviceRatio is the fraction of devices whose SNMP agent delivers
	// with up to SNMPMaxDelay latency (the CPU-limited old devices that
	// motivated the 5-minute tree threshold, §4.2).
	OldDeviceRatio float64
	// SNMPMaxDelay is the worst-case SNMP delivery delay (~2 minutes in
	// the paper).
	SNMPMaxDelay time.Duration

	// INTCoverage is the fraction of devices supporting in-band telemetry
	// ("INT is not universally supported across all devices").
	INTCoverage float64

	// NoisePerHour is the expected number of unrelated glitch alerts each
	// noisy monitor emits per hour ("unrelated glitches continued to
	// produce alerts", §2.2).
	NoisePerHour float64

	// LossThreshold is the minimum path loss ratio that registers as
	// packet loss.
	LossThreshold float64

	// Seed fixes all monitor randomness.
	Seed int64
}

// DefaultConfig returns production-like cadences at simulation-friendly
// scale.
func DefaultConfig() Config {
	return Config{
		PingInterval:       2 * time.Second,
		PingFanout:         6,
		TracerouteInterval: 30 * time.Second,
		SNMPInterval:       30 * time.Second,
		OOBInterval:        30 * time.Second,
		TrafficInterval:    60 * time.Second,
		InternetInterval:   10 * time.Second,
		INTInterval:        15 * time.Second,
		PTPInterval:        60 * time.Second,
		RouteInterval:      30 * time.Second,
		PatrolInterval:     10 * time.Minute,
		OldDeviceRatio:     0.2,
		SNMPMaxDelay:       2 * time.Minute,
		INTCoverage:        0.6,
		NoisePerHour:       6,
		LossThreshold:      0.01,
		Seed:               1,
	}
}

// Fleet owns one monitor per data source and drives them against a
// simulator.
type Fleet struct {
	monitors []Monitor
	ping     *PingMonitor
}

// NewFleet constructs all Table 2 monitors over the topology. Passing a
// subset of sources restricts the fleet (the Fig. 8a coverage ablation);
// a nil or empty sources slice enables everything.
func NewFleet(topo *topology.Topology, cfg Config, sources ...alert.Source) *Fleet {
	enabled := func(s alert.Source) bool {
		if len(sources) == 0 {
			return true
		}
		for _, e := range sources {
			if e == s {
				return true
			}
		}
		return false
	}
	f := &Fleet{}
	add := func(m Monitor) {
		if enabled(m.Source()) {
			f.monitors = append(f.monitors, m)
		}
	}
	ping := NewPingMonitor(topo, cfg)
	add(ping)
	if enabled(alert.SourcePing) {
		f.ping = ping
	}
	add(NewTracerouteMonitor(topo, cfg))
	add(NewOutOfBandMonitor(topo, cfg))
	add(NewTrafficMonitor(topo, cfg))
	add(NewNetFlowMonitor(topo, cfg))
	add(NewInternetTelemetryMonitor(topo, cfg))
	add(NewSyslogMonitor(topo, cfg))
	add(NewSNMPMonitor(topo, cfg))
	add(NewINTMonitor(topo, cfg))
	add(NewPTPMonitor(topo, cfg))
	add(NewRouteMonitor(topo, cfg))
	add(NewModificationMonitor(topo, cfg))
	add(NewPatrolMonitor(topo, cfg))
	return f
}

// Monitors returns the enabled monitors.
func (f *Fleet) Monitors() []Monitor { return f.monitors }

// Ping returns the fleet's ping monitor when enabled, for reachability-
// matrix queries; nil otherwise.
func (f *Fleet) Ping() *PingMonitor { return f.ping }

// Poll polls every monitor and returns all delivered alerts sorted by
// timestamp.
func (f *Fleet) Poll(sim *netsim.Simulator, now time.Time) []alert.Alert {
	var out []alert.Alert
	for _, m := range f.monitors {
		out = append(out, m.Poll(sim, now)...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out
}

// Run steps the simulator from 'from' to 'to' at the given tick, polling
// the fleet at every step, and returns all alerts in timestamp order.
// It is the standard way to produce a raw alert trace for a scenario.
func (f *Fleet) Run(sim *netsim.Simulator, from, to time.Time, tick time.Duration) ([]alert.Alert, error) {
	if tick <= 0 {
		tick = 2 * time.Second
	}
	var out []alert.Alert
	for now := from; now.Before(to); now = now.Add(tick) {
		if err := sim.Step(now); err != nil {
			return out, err
		}
		out = append(out, f.Poll(sim, now)...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out, nil
}

// cadence gates a monitor to its sampling interval.
type cadence struct {
	interval time.Duration
	last     time.Time
}

// due reports whether a sampling round should run at now, and records it.
func (c *cadence) due(now time.Time) bool {
	if !c.last.IsZero() && now.Sub(c.last) < c.interval {
		return false
	}
	c.last = now
	return true
}

// noiseGate produces the background glitch alerts. Each call to fire at a
// sampling round returns true with probability interval*rate.
type noiseGate struct {
	rng  *rand.Rand
	rate float64 // expected events per hour
}

func newNoiseGate(seed int64, perHour float64) *noiseGate {
	return &noiseGate{rng: rand.New(rand.NewSource(seed)), rate: perHour}
}

// fire reports whether a noise event occurs within a window of the given
// length.
func (n *noiseGate) fire(window time.Duration) bool {
	if n.rate <= 0 {
		return false
	}
	p := n.rate * window.Hours()
	return n.rng.Float64() < p
}

// blameStage maps a lossy path stage to the location a behaviour monitor
// blames. When exactly one group member is unhealthy, the many probe paths
// crossing the group triangulate the loss onto that device (how the
// production mesh reports "Packet loss at Device i!", Figure 6); otherwise
// blame lands on the group's location node — the "intermediary link"
// attribution of §4.1.
func blameStage(sim *netsim.Simulator, topo *topology.Topology, st *netsim.Stage) hierarchy.Path {
	bad := -1
	for i, id := range st.Devices {
		ds := sim.DeviceState(id)
		if !ds.Healthy() {
			if bad >= 0 {
				return st.Location // more than one suspect: stay coarse
			}
			bad = i
		}
	}
	if bad >= 0 {
		return topo.Device(st.Devices[bad]).Path
	}
	return st.Location
}

// mkAlert assembles a raw alert with Class filled from the catalog. Raw
// monitors other than syslog know their types; syslog leaves Type empty
// for FT-tree classification in the preprocessor.
func mkAlert(src alert.Source, typ string, t time.Time, loc hierarchy.Path, value float64, raw string) alert.Alert {
	return alert.Alert{
		Source:   src,
		Type:     typ,
		Class:    alert.Classify(src, typ),
		Time:     t,
		End:      t,
		Location: loc,
		Value:    value,
		Count:    1,
		Raw:      raw,
	}
}
