package monitors

import (
	"fmt"
	"time"

	"skynet/internal/alert"
	"skynet/internal/netsim"
	"skynet/internal/topology"
)

// PTPMonitor watches device clock synchronization (PTPmesh style). Its
// coverage is the narrowest in the fleet — it sees only time-domain
// problems — which makes it the canonical "3 %" bar of Figure 3.
type PTPMonitor struct {
	topo *topology.Topology
	cfg  Config
	cad  cadence
}

// NewPTPMonitor builds the PTP monitor.
func NewPTPMonitor(topo *topology.Topology, cfg Config) *PTPMonitor {
	return &PTPMonitor{topo: topo, cfg: cfg, cad: cadence{interval: cfg.PTPInterval}}
}

// Source implements Monitor.
func (m *PTPMonitor) Source() alert.Source { return alert.SourcePTP }

// Poll implements Monitor.
func (m *PTPMonitor) Poll(sim *netsim.Simulator, now time.Time) []alert.Alert {
	if !m.cad.due(now) {
		return nil
	}
	var out []alert.Alert
	for i := range m.topo.Devices {
		d := &m.topo.Devices[i]
		st := sim.DeviceState(d.ID)
		if st.Up && st.ClockDriftSeconds > 0.001 {
			out = append(out, mkAlert(alert.SourcePTP, alert.TypeClockUnsync, now, d.Path,
				st.ClockDriftSeconds,
				fmt.Sprintf("%s system time out of synchronization by %.3fs", d.Name, st.ClockDriftSeconds)))
		}
	}
	return out
}
