package monitors

import (
	"fmt"
	"math/rand"
	"time"

	"skynet/internal/alert"
	"skynet/internal/netsim"
	"skynet/internal/topology"
)

// This file implements the two data sources the paper's future work (§9)
// says are being integrated next, demonstrating the extensibility claim of
// §5.2 — "after being structured, the alerts raised by these tools can be
// simply injected into SkyNet":
//
//   - user-side telemetry, which transmits telemetry packets from users'
//     clients to the data center, and
//   - a label-based testing tool for the SRTE network that periodically
//     verifies link reachability.
//
// Neither is part of the default Table 2 fleet; enable them with
// Fleet.Extend.

// Extend adds an extension monitor to the fleet — the §5.2 integration
// path for new data sources.
func (f *Fleet) Extend(m Monitor) { f.monitors = append(f.monitors, m) }

// UserTelemetryMonitor models user-side telemetry: clients on the Internet
// send telemetry packets toward the data centers, measuring the inbound
// half of the entry path. It sees what internet-telemetry (outbound
// probing) sees plus client-perceived latency, and it is the only tool
// whose vantage point is outside the provider's network entirely.
type UserTelemetryMonitor struct {
	topo  *topology.Topology
	cfg   Config
	cad   cadence
	rng   *rand.Rand
	round int
}

// UserTelemetryInterval is the client reporting cadence.
const UserTelemetryInterval = 15 * time.Second

// NewUserTelemetryMonitor builds the user-side telemetry extension.
func NewUserTelemetryMonitor(topo *topology.Topology, cfg Config) *UserTelemetryMonitor {
	return &UserTelemetryMonitor{
		topo: topo,
		cfg:  cfg,
		cad:  cadence{interval: UserTelemetryInterval},
		rng:  rand.New(rand.NewSource(cfg.Seed ^ 0x75736572)),
	}
}

// Source implements Monitor. User telemetry reports through the internet-
// telemetry ingestion channel (same structured source, client vantage).
func (m *UserTelemetryMonitor) Source() alert.Source { return alert.SourceInternetTelemetry }

// Poll implements Monitor.
func (m *UserTelemetryMonitor) Poll(sim *netsim.Simulator, now time.Time) []alert.Alert {
	if !m.cad.due(now) {
		return nil
	}
	m.round++
	var out []alert.Alert
	for i, cl := range m.topo.Clusters() {
		// Client populations report against half the clusters per round.
		if (i+m.round)%2 != 0 {
			continue
		}
		r, err := sim.EvalInternet(cl)
		if err != nil {
			continue
		}
		if r.Loss >= m.cfg.LossThreshold {
			loc := cl
			if w := r.WorstStage(); w >= 0 && r.Stages[w].Loss > 0 {
				loc = blameStage(sim, m.topo, &r.Stages[w])
			}
			a := mkAlert(alert.SourceInternetTelemetry, alert.TypeInternetLoss, now, loc, r.Loss,
				fmt.Sprintf("user clients report %.1f%% telemetry loss toward %s", r.Loss*100, cl))
			a.Peer = cl
			out = append(out, a)
		} else if r.LatencySeconds > 0.025 {
			out = append(out, mkAlert(alert.SourceInternetTelemetry, alert.TypeHighLatency, now, cl,
				r.LatencySeconds,
				fmt.Sprintf("user-perceived rtt %.1fms toward %s", r.LatencySeconds*1000, cl)))
		}
	}
	return out
}

// SRTEProbeMonitor models the label-based testing tool for the SRTE
// network: it sends labeled probes over every individual link bundle,
// verifying reachability per circuit set — exactly the blind spot plain
// traceroute has on tunneled paths (§2.1). A failed bundle produces a
// link-down style alert naming the circuit set directly.
type SRTEProbeMonitor struct {
	topo *topology.Topology
	cfg  Config
	cad  cadence
}

// SRTEProbeInterval is the label-probe cadence.
const SRTEProbeInterval = 30 * time.Second

// NewSRTEProbeMonitor builds the SRTE label-probe extension.
func NewSRTEProbeMonitor(topo *topology.Topology, cfg Config) *SRTEProbeMonitor {
	return &SRTEProbeMonitor{topo: topo, cfg: cfg, cad: cadence{interval: SRTEProbeInterval}}
}

// Source implements Monitor. SRTE probes are an in-band telemetry flavor.
func (m *SRTEProbeMonitor) Source() alert.Source { return alert.SourceINT }

// Poll implements Monitor.
func (m *SRTEProbeMonitor) Poll(sim *netsim.Simulator, now time.Time) []alert.Alert {
	if !m.cad.due(now) {
		return nil
	}
	var out []alert.Alert
	for i := range m.topo.Links {
		lid := topology.LinkID(i)
		l := m.topo.Link(lid)
		ls := sim.LinkState(lid)
		if ls.CircuitsDown == 0 {
			continue
		}
		frac := float64(ls.CircuitsDown) / float64(l.Circuits)
		for _, end := range []topology.DeviceID{l.A, l.B} {
			st := sim.DeviceState(end)
			if !st.Up {
				continue
			}
			a := mkAlert(alert.SourceINT, alert.TypeLinkDown, now, m.topo.Device(end).Path, frac,
				fmt.Sprintf("labeled probes fail on %d of %d circuits of %s",
					ls.CircuitsDown, l.Circuits, l.CircuitSet))
			a.CircuitSet = l.CircuitSet
			out = append(out, a)
		}
	}
	return out
}
