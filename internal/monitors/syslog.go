package monitors

import (
	"fmt"
	"math/rand"
	"time"

	"skynet/internal/alert"
	"skynet/internal/hierarchy"
	"skynet/internal/netsim"
	"skynet/internal/topology"
)

// SyslogMonitor turns the simulator's device-visible journal into raw
// vendor-style syslog lines. Unlike every other monitor it does NOT assign
// alert types: lines arrive as free text and the preprocessor classifies
// them through FT-tree templates (§4.1), exactly as the production system
// handles the thousands of CLI output formats.
//
// Blind spots (§2.1): syslog only contains what devices notice about
// themselves — silent loss, congestion, and route errors produce nothing.
// A dead device cannot log its own death; its neighbors log link-down.
type SyslogMonitor struct {
	topo  *topology.Topology
	cfg   Config
	cad   cadence
	rng   *rand.Rand
	noise *noiseGate

	lastRead time.Time
}

// NewSyslogMonitor builds the syslog collector model.
func NewSyslogMonitor(topo *topology.Topology, cfg Config) *SyslogMonitor {
	return &SyslogMonitor{
		topo:  topo,
		cfg:   cfg,
		cad:   cadence{interval: 2 * time.Second},
		rng:   rand.New(rand.NewSource(cfg.Seed ^ 0x7379736c)),
		noise: newNoiseGate(cfg.Seed^0x7379736d, cfg.NoisePerHour),
	}
}

// Source implements Monitor.
func (m *SyslogMonitor) Source() alert.Source { return alert.SourceSyslog }

// Poll implements Monitor.
func (m *SyslogMonitor) Poll(sim *netsim.Simulator, now time.Time) []alert.Alert {
	if !m.cad.due(now) {
		return nil
	}
	since := m.lastRead
	if since.IsZero() {
		since = now.Add(-2 * time.Second)
	}
	m.lastRead = now
	var out []alert.Alert
	for _, e := range sim.Journal(since, now) {
		if !e.Up {
			continue // recovery transitions log at severity levels SkyNet filters upstream
		}
		if e.Kind == "device down" {
			continue // a dead device cannot emit its own obituary
		}
		line := m.renderLine(e.Kind, e.Detail)
		if line == "" {
			continue
		}
		a := rawSyslog(m.topo.Device(e.Device).Path, e.Time, line)
		out = append(out, a)
	}
	// Devices with active software faults keep flapping: each poll they
	// spew fresh BGP churn lines, building the alert flood of Figure 2b.
	for i := range m.topo.Devices {
		d := &m.topo.Devices[i]
		st := sim.DeviceState(d.ID)
		if st.SoftwareError && st.Up && m.rng.Float64() < 0.5 {
			out = append(out, rawSyslog(d.Path, now, m.renderLine("bgp link jitter", "")))
		}
		if st.HardwareError && st.Up && m.rng.Float64() < 0.2 {
			out = append(out, rawSyslog(d.Path, now, m.renderLine("hardware error", "")))
		}
	}
	// Background noise: a lone CRC complaint somewhere.
	if m.noise.fire(2 * time.Second) {
		d := &m.topo.Devices[m.rng.Intn(len(m.topo.Devices))]
		out = append(out, rawSyslog(d.Path, now, m.renderLine("crc error", "")))
	}
	return out
}

// rawSyslog builds an unclassified syslog alert: Type is empty, Class is
// ClassInfo, and the preprocessor owns classification.
func rawSyslog(loc hierarchy.Path, t time.Time, line string) alert.Alert {
	return alert.Alert{
		Source:   alert.SourceSyslog,
		Class:    alert.ClassInfo,
		Time:     t,
		End:      t,
		Location: loc,
		Count:    1,
		Raw:      line,
	}
}

// renderLine synthesizes a vendor-style log line for a journal event kind,
// with randomized variable fields (interfaces, addresses, counters) so the
// FT-tree has real work to do.
func (m *SyslogMonitor) renderLine(kind, detail string) string {
	iface := m.iface()
	ip := m.ip()
	n := m.rng.Intn(9000) + 100
	switch kind {
	case "link down":
		return fmt.Sprintf("%%LINK-3-UPDOWN: Interface %s, changed state to down (%s)", iface, detail)
	case "port down":
		return fmt.Sprintf("%%LINEPROTO-5-UPDOWN: Line protocol on Interface %s, changed state to down", iface)
	case "bgp peer down":
		return fmt.Sprintf("%%BGP-5-ADJCHANGE: neighbor %s Down - Hold timer expired", ip)
	case "bgp link jitter":
		return fmt.Sprintf("%%BGP-4-FLAP: neighbor %s session flapping, count %d", ip, n)
	case "hardware error":
		return fmt.Sprintf("%%PLATFORM-2-HW_ERROR: Linecard %d parity error detected at 0x%x", m.rng.Intn(8), n)
	case "software error":
		return fmt.Sprintf("%%SYSMGR-3-PROC_RESTART: Process rpd restarted, pid %d", n)
	case "out of memory":
		return fmt.Sprintf("%%SYSTEM-2-MEMORY: Out of memory in process rpd, requested %d bytes", n*64)
	case "crc error":
		return fmt.Sprintf("%%IF-3-CRC: Interface %s CRC errors %d", iface, n)
	case "modification failed":
		return fmt.Sprintf("%%CONFIG-3-COMMIT: configuration commit %d rejected: %s", n, detail)
	case "clock out of sync":
		return fmt.Sprintf("%%PTP-4-OFFSET: clock offset %d us beyond threshold", n)
	default:
		return ""
	}
}

func (m *SyslogMonitor) iface() string {
	kinds := []string{"TenGigE", "HundredGigE", "FortyGigE"}
	return fmt.Sprintf("%s%d/%d/%d/%d", kinds[m.rng.Intn(len(kinds))],
		m.rng.Intn(2), m.rng.Intn(4), m.rng.Intn(2), m.rng.Intn(36))
}

func (m *SyslogMonitor) ip() string {
	return fmt.Sprintf("10.%d.%d.%d", m.rng.Intn(256), m.rng.Intn(256), 1+m.rng.Intn(254))
}
