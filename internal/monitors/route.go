package monitors

import (
	"fmt"
	"time"

	"skynet/internal/alert"
	"skynet/internal/hierarchy"
	"skynet/internal/netsim"
	"skynet/internal/topology"
)

// RouteMonitor watches the control plane: loss of default/aggregate
// routes, hijacks, and leaks (Table 2). It is the only tool that sees
// route errors — and the only thing it sees; data-plane failures are
// invisible to it (§2.1).
//
// Modeling note: real route monitors diff BGP tables. The simulator does
// not carry full tables, so this model observes the control-plane faults
// directly — the moral equivalent of noticing the missing aggregate; it
// still fires only for fault kinds a route collector could genuinely see.
type RouteMonitor struct {
	topo *topology.Topology
	cfg  Config
	cad  cadence
}

// NewRouteMonitor builds the route monitoring model.
func NewRouteMonitor(topo *topology.Topology, cfg Config) *RouteMonitor {
	return &RouteMonitor{topo: topo, cfg: cfg, cad: cadence{interval: cfg.RouteInterval}}
}

// Source implements Monitor.
func (m *RouteMonitor) Source() alert.Source { return alert.SourceRouteMonitoring }

// Poll implements Monitor.
func (m *RouteMonitor) Poll(sim *netsim.Simulator, now time.Time) []alert.Alert {
	if !m.cad.due(now) {
		return nil
	}
	var out []alert.Alert
	for _, f := range sim.ActiveFaultsAt(now) {
		switch f.Kind {
		case netsim.FaultRouteError, netsim.FaultRouteHijack:
			// The aggregate route for the area is gone or hijacked: blame
			// the area's border routers, where the table change shows up.
			typ := alert.TypeRouteLoss
			detail := "withdrew aggregate routes for"
			if f.Kind == netsim.FaultRouteHijack {
				typ = alert.TypeRouteHijack
				detail = "sees hijacked prefixes for"
			}
			for _, id := range m.topo.DevicesUnder(f.Location) {
				d := m.topo.Device(id)
				if d.Role != topology.RoleBSR && d.Role != topology.RoleDCBR {
					continue
				}
				out = append(out, mkAlert(alert.SourceRouteMonitoring, typ, now,
					d.Path, f.Magnitude,
					fmt.Sprintf("%s %s %s", d.Name, detail, f.Location)))
				if f.Kind == netsim.FaultRouteHijack {
					// The hijack displaces the legitimate route: the
					// collector reports the loss too.
					out = append(out, mkAlert(alert.SourceRouteMonitoring, alert.TypeRouteLoss, now,
						d.Path, f.Magnitude,
						fmt.Sprintf("%s legitimate route displaced for %s", d.Name, f.Location)))
				}
			}
		case netsim.FaultDeviceSoftware:
			// Routing process churn shows as route-table instability at
			// the speaker itself when it is a border device.
			d := m.topo.Device(f.Device)
			if d.Role == topology.RoleBSR || d.Role == topology.RoleDCBR || d.Role == topology.RoleReflector {
				out = append(out, mkAlert(alert.SourceRouteMonitoring, alert.TypeRouteLoss, now,
					d.Path, 0, fmt.Sprintf("%s route table churn", d.Name)))
			}
		}
	}
	return out
}

// ModificationMonitor reports failures of network modifications triggered
// automatically or manually (Table 2). It reads the journal, so only
// modifications the automation system knows about appear.
type ModificationMonitor struct {
	topo     *topology.Topology
	cfg      Config
	cad      cadence
	lastRead time.Time
}

// NewModificationMonitor builds the modification-events monitor.
func NewModificationMonitor(topo *topology.Topology, cfg Config) *ModificationMonitor {
	return &ModificationMonitor{topo: topo, cfg: cfg, cad: cadence{interval: 5 * time.Second}}
}

// Source implements Monitor.
func (m *ModificationMonitor) Source() alert.Source { return alert.SourceModificationEvents }

// Poll implements Monitor.
func (m *ModificationMonitor) Poll(sim *netsim.Simulator, now time.Time) []alert.Alert {
	if !m.cad.due(now) {
		return nil
	}
	since := m.lastRead
	if since.IsZero() {
		since = now.Add(-5 * time.Second)
	}
	m.lastRead = now
	var out []alert.Alert
	for _, e := range sim.Journal(since, now) {
		if e.Kind != "modification failed" {
			continue
		}
		d := m.topo.Device(e.Device)
		typ := alert.TypeModificationFailed
		if !e.Up {
			typ = alert.TypeModificationDone // rollback completed
		}
		out = append(out, mkAlert(alert.SourceModificationEvents, typ, e.Time, d.Path, 0,
			fmt.Sprintf("%s modification event: %s", d.Name, e.Detail)))
	}
	return out
}

// PatrolMonitor runs operator-defined commands on devices periodically
// (Table 2) — the slow catch-all. It notices persistent hardware or
// modification anomalies on its 10-minute rounds, far too late for
// detection but valuable for root-cause display.
type PatrolMonitor struct {
	topo *topology.Topology
	cfg  Config
	cad  cadence
}

// NewPatrolMonitor builds the patrol-inspection monitor.
func NewPatrolMonitor(topo *topology.Topology, cfg Config) *PatrolMonitor {
	return &PatrolMonitor{topo: topo, cfg: cfg, cad: cadence{interval: cfg.PatrolInterval}}
}

// Source implements Monitor.
func (m *PatrolMonitor) Source() alert.Source { return alert.SourcePatrolInspection }

// Poll implements Monitor.
func (m *PatrolMonitor) Poll(sim *netsim.Simulator, now time.Time) []alert.Alert {
	if !m.cad.due(now) {
		return nil
	}
	var out []alert.Alert
	for i := range m.topo.Devices {
		d := &m.topo.Devices[i]
		st := sim.DeviceState(d.ID)
		if !st.Up {
			continue
		}
		if st.HardwareError || st.ModificationError {
			out = append(out, mkAlert(alert.SourcePatrolInspection, alert.TypePatrolAnomaly, now,
				d.Path, 0, fmt.Sprintf("%s patrol command output anomalous", d.Name)))
		}
	}
	return out
}

// pathOfDevice is a small helper shared by monitor tests.
func pathOfDevice(topo *topology.Topology, id topology.DeviceID) hierarchy.Path {
	return topo.Device(id).Path
}
