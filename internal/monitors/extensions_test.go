package monitors

import (
	"testing"
	"time"

	"skynet/internal/alert"
	"skynet/internal/netsim"
)

func TestFleetExtend(t *testing.T) {
	topo := smallTopo()
	fleet := NewFleet(topo, quietConfig())
	before := len(fleet.Monitors())
	fleet.Extend(NewUserTelemetryMonitor(topo, quietConfig()))
	fleet.Extend(NewSRTEProbeMonitor(topo, quietConfig()))
	if len(fleet.Monitors()) != before+2 {
		t.Fatalf("extend did not add monitors: %d → %d", before, len(fleet.Monitors()))
	}
}

func TestUserTelemetrySeesEntryFailure(t *testing.T) {
	topo := smallTopo()
	sim := netsim.New(topo, 1)
	city := topo.Clusters()[0].Parent().Parent().Parent()
	sim.MustInject(netsim.Fault{Kind: netsim.FaultFiberBundleCut, Location: city, Magnitude: 0.5, Start: epoch})
	m := NewUserTelemetryMonitor(topo, quietConfig())
	var got []alert.Alert
	for i := 0; i < 4; i++ {
		now := epoch.Add(time.Duration(i) * UserTelemetryInterval)
		if err := sim.Step(now); err != nil {
			t.Fatal(err)
		}
		got = append(got, m.Poll(sim, now)...)
	}
	loss := 0
	for i := range got {
		if got[i].Type == alert.TypeInternetLoss {
			loss++
		}
	}
	if loss == 0 {
		t.Error("user telemetry missed the entry failure")
	}
}

func TestUserTelemetryQuietOnHealthy(t *testing.T) {
	topo := smallTopo()
	sim := netsim.New(topo, 1)
	if err := sim.Step(epoch); err != nil {
		t.Fatal(err)
	}
	m := NewUserTelemetryMonitor(topo, quietConfig())
	if got := m.Poll(sim, epoch); len(got) != 0 {
		t.Errorf("healthy network produced %d user-telemetry alerts", len(got))
	}
}

func TestSRTEProbesNameTheCircuitSet(t *testing.T) {
	// The SRTE probe covers traceroute's tunnel blind spot: a partial cut
	// that plain redundancy absorbs still produces a per-circuit-set
	// alert.
	topo := smallTopo()
	sim := netsim.New(topo, 1)
	l := topo.Link(0)
	sim.MustInject(netsim.Fault{Kind: netsim.FaultLinkCut, Link: l.ID, Circuits: 1, Start: epoch})
	if err := sim.Step(epoch); err != nil {
		t.Fatal(err)
	}
	m := NewSRTEProbeMonitor(topo, quietConfig())
	got := m.Poll(sim, epoch)
	if len(got) == 0 {
		t.Fatal("SRTE probes missed the cut")
	}
	for i := range got {
		if got[i].CircuitSet != l.CircuitSet {
			t.Errorf("alert names circuit set %q, want %q", got[i].CircuitSet, l.CircuitSet)
		}
		if got[i].Class != alert.ClassRootCause {
			t.Errorf("SRTE link down class = %v, want rootcause", got[i].Class)
		}
	}
	// Second poll before the interval: cadence-gated.
	if got := m.Poll(sim, epoch.Add(time.Second)); len(got) != 0 {
		t.Error("cadence gating broken")
	}
}

func TestExtensionsImproveDetection(t *testing.T) {
	// The §5.2 claim end to end: a 1-circuit cut that the base fleet
	// under-reports becomes detectable once the SRTE extension injects
	// its structured alerts — "simply injected into SkyNet".
	topo := smallTopo()
	l := topo.Link(0)
	run := func(extend bool) int {
		sim := netsim.New(topo, 1)
		sim.MustInject(netsim.Fault{Kind: netsim.FaultLinkCut, Link: l.ID, Circuits: 1, Start: epoch.Add(10 * time.Second)})
		fleet := NewFleet(topo, quietConfig())
		if extend {
			fleet.Extend(NewSRTEProbeMonitor(topo, quietConfig()))
		}
		raw, err := fleet.Run(sim, epoch, epoch.Add(2*time.Minute), 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		types := map[alert.TypeKey]bool{}
		for i := range raw {
			if raw[i].Class != alert.ClassInfo || raw[i].Source == alert.SourceSyslog {
				types[raw[i].Key()] = true
			}
		}
		return len(types)
	}
	base := run(false)
	extended := run(true)
	if extended <= base {
		t.Errorf("extension added no evidence: %d → %d distinct types", base, extended)
	}
}
