package monitors

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"skynet/internal/alert"
	"skynet/internal/netsim"
	"skynet/internal/topology"
)

// SNMPMonitor models the SNMP/GRPC counter pipeline: interface status,
// traffic counters, RX/CRC errors, CPU and RAM. Two production quirks are
// reproduced faithfully because the paper's locator design depends on
// them:
//
//   - Old devices with weak CPUs deliver counters with up to ~2 minutes of
//     delay (the reason the alert-tree timeout is 5 minutes, §4.2).
//     OldDeviceRatio of the fleet is "old"; their alerts sit in a pending
//     queue until the delay elapses.
//   - SNMP repeats itself: an interface that stays down re-reports every
//     round, producing the duplicate stream the preprocessor's identical-
//     alert consolidation collapses.
type SNMPMonitor struct {
	topo  *topology.Topology
	cfg   Config
	cad   cadence
	rng   *rand.Rand
	noise *noiseGate

	// delay is each device's delivery delay (0 for modern devices).
	delay []time.Duration

	pending []alert.Alert
}

// NewSNMPMonitor builds the SNMP monitor.
func NewSNMPMonitor(topo *topology.Topology, cfg Config) *SNMPMonitor {
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x736e6d70))
	delay := make([]time.Duration, topo.NumDevices())
	for i := range delay {
		if rng.Float64() < cfg.OldDeviceRatio {
			frac := 0.5 + 0.5*rng.Float64()
			delay[i] = time.Duration(float64(cfg.SNMPMaxDelay) * frac)
		}
	}
	return &SNMPMonitor{
		topo:  topo,
		cfg:   cfg,
		cad:   cadence{interval: cfg.SNMPInterval},
		rng:   rng,
		noise: newNoiseGate(cfg.Seed^0x736e6d71, cfg.NoisePerHour),
		delay: delay,
	}
}

// Source implements Monitor.
func (m *SNMPMonitor) Source() alert.Source { return alert.SourceSNMP }

// DelayOf exposes a device's SNMP delivery delay (for tests and the
// preprocessing experiments).
func (m *SNMPMonitor) DelayOf(id topology.DeviceID) time.Duration { return m.delay[id] }

// Poll implements Monitor.
func (m *SNMPMonitor) Poll(sim *netsim.Simulator, now time.Time) []alert.Alert {
	if m.cad.due(now) {
		m.sample(sim, now)
	}
	return m.deliver(now)
}

// sample reads counters and enqueues alerts with per-device delays.
func (m *SNMPMonitor) sample(sim *netsim.Simulator, now time.Time) {
	enqueue := func(dev *topology.Device, a alert.Alert) {
		// Alert timestamp is the observation time; delivery is deferred
		// by the device's agent delay.
		a.End = a.Time.Add(m.delay[dev.ID])
		m.pending = append(m.pending, a)
	}
	for i := range m.topo.Links {
		lid := topology.LinkID(i)
		l := m.topo.Link(lid)
		ls := sim.LinkState(lid)
		a, b := m.topo.Device(l.A), m.topo.Device(l.B)
		// A link is counter-visibly broken when circuits are cut or the
		// far endpoint is dead (ifOperStatus drops on the survivor).
		downFrac := float64(ls.CircuitsDown) / float64(l.Circuits)
		if !sim.DeviceState(l.A).Up || !sim.DeviceState(l.B).Up {
			downFrac = 1
		}
		if downFrac > 0 {
			for _, dev := range []*topology.Device{a, b} {
				if !sim.DeviceState(dev.ID).Up {
					continue // dead devices answer no queries
				}
				al := mkAlert(alert.SourceSNMP, alert.TypeLinkDown, now, dev.Path,
					downFrac,
					fmt.Sprintf("ifOperStatus down on %.0f%% of circuits (%s)", downFrac*100, l.CircuitSet))
				al.CircuitSet = l.CircuitSet
				enqueue(dev, al)
				// Every downed circuit's member port reports down too.
				pd := mkAlert(alert.SourceSNMP, alert.TypePortDown, now, dev.Path, downFrac,
					fmt.Sprintf("ports down on %s", l.CircuitSet))
				pd.CircuitSet = l.CircuitSet
				enqueue(dev, pd)
			}
		}
		// Congestion: counters show utilization beyond the drop point.
		availFrac := 1 - float64(ls.CircuitsDown)/float64(l.Circuits)
		if availFrac > 0 {
			util := sim.BaselineUtil(lid) * ls.DemandMultiplier / availFrac
			if util > 1.0 {
				for _, dev := range []*topology.Device{a, b} {
					if !sim.DeviceState(dev.ID).Up {
						continue
					}
					al := mkAlert(alert.SourceSNMP, alert.TypeTrafficCongestion, now, dev.Path, util,
						fmt.Sprintf("output drops rising on %s, util %.0f%%", l.CircuitSet, util*100))
					al.CircuitSet = l.CircuitSet
					enqueue(dev, al)
				}
			}
		}
	}
	for i := range m.topo.Devices {
		d := &m.topo.Devices[i]
		st := sim.DeviceState(d.ID)
		if !st.Up {
			continue
		}
		if st.BitFlip > 0 {
			enqueue(d, mkAlert(alert.SourceSNMP, alert.TypeRXError, now, d.Path, st.BitFlip,
				fmt.Sprintf("%s rx error counter rising", d.Name)))
			enqueue(d, mkAlert(alert.SourceSNMP, alert.TypeCRCError, now, d.Path, st.BitFlip,
				fmt.Sprintf("%s crc error counter rising", d.Name)))
		}
		if st.CPUUtil > 0.85 {
			enqueue(d, mkAlert(alert.SourceSNMP, alert.TypeHighCPU, now, d.Path, st.CPUUtil,
				fmt.Sprintf("%s cpu %.0f%%", d.Name, st.CPUUtil*100)))
		}
		if st.MemUtil > 0.85 {
			enqueue(d, mkAlert(alert.SourceSNMP, alert.TypeHighMemory, now, d.Path, st.MemUtil,
				fmt.Sprintf("%s mem %.0f%%", d.Name, st.MemUtil*100)))
		}
	}
	if m.noise.fire(m.cfg.SNMPInterval) {
		d := &m.topo.Devices[m.rng.Intn(len(m.topo.Devices))]
		al := mkAlert(alert.SourceSNMP, alert.TypeHighCPU, now, d.Path, 0.9, "transient cpu spike")
		al.End = al.Time.Add(m.delay[d.ID])
		m.pending = append(m.pending, al)
	}
}

// deliver releases pending alerts whose delay has elapsed. The End field
// temporarily carries the delivery deadline; it is reset to the
// observation time on release.
func (m *SNMPMonitor) deliver(now time.Time) []alert.Alert {
	var out []alert.Alert
	rest := m.pending[:0]
	for _, a := range m.pending {
		if !a.End.After(now) {
			a.End = a.Time
			out = append(out, a)
		} else {
			rest = append(rest, a)
		}
	}
	m.pending = rest
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out
}
