package monitors

import (
	"fmt"
	"math/rand"
	"time"

	"skynet/internal/alert"
	"skynet/internal/netsim"
	"skynet/internal/topology"
)

// TracerouteMonitor records per-hop latency between sampled cluster pairs
// every TracerouteInterval. It attributes anomalies to specific stages —
// finer than ping — but, per §2.1, it is blind on asymmetric or tunneled
// (SRTE) paths: a deterministic fraction of pairs is simply invisible
// to it.
type TracerouteMonitor struct {
	topo  *topology.Topology
	cfg   Config
	cad   cadence
	rng   *rand.Rand
	round int
}

// NewTracerouteMonitor builds the traceroute monitor.
func NewTracerouteMonitor(topo *topology.Topology, cfg Config) *TracerouteMonitor {
	return &TracerouteMonitor{
		topo: topo,
		cfg:  cfg,
		cad:  cadence{interval: cfg.TracerouteInterval},
		rng:  rand.New(rand.NewSource(cfg.Seed ^ 0x74726163)),
	}
}

// Source implements Monitor.
func (m *TracerouteMonitor) Source() alert.Source { return alert.SourceTraceroute }

// Poll implements Monitor.
func (m *TracerouteMonitor) Poll(sim *netsim.Simulator, now time.Time) []alert.Alert {
	if !m.cad.due(now) {
		return nil
	}
	clusters := m.topo.Clusters()
	if len(clusters) < 2 {
		return nil
	}
	m.round++
	var out []alert.Alert
	for i, src := range clusters {
		// One traced pair per cluster per round.
		j := (i + 1 + m.round) % len(clusters)
		if j == i {
			continue
		}
		// SRTE blind spot: a third of pairs ride tunnels traceroute
		// cannot resolve.
		if (i+j+m.round)%3 == 0 {
			continue
		}
		dst := clusters[j]
		r, err := sim.EvalPath(src, dst)
		if err != nil {
			continue
		}
		for k := range r.Stages {
			st := &r.Stages[k]
			if st.Loss >= m.cfg.LossThreshold {
				out = append(out, mkAlert(alert.SourceTraceroute, alert.TypePacketLoss, now,
					blameStage(sim, m.topo, st), st.Loss,
					fmt.Sprintf("hop %d (%s) drops %.1f%% of probes", k, st.Name, st.Loss*100)))
			}
			if st.EffUtil > 1.2 {
				out = append(out, mkAlert(alert.SourceTraceroute, alert.TypeHopLatency, now,
					blameStage(sim, m.topo, st), st.EffUtil,
					fmt.Sprintf("hop %d (%s) latency inflated, util %.2f", k, st.Name, st.EffUtil)))
			}
		}
	}
	return out
}
