// Package ftree implements FT-tree syslog template extraction (Zhang et
// al., IWQoS'17 [56]), the mechanism SkyNet's preprocessor uses to turn
// free-text device logs into alert types (§4.1):
//
//  1. Command-line outputs are broken into words.
//  2. Variable words — addresses, interface names, numbers — are removed
//     with predefined regular expressions.
//  3. The remaining "detailed" words, ordered by corpus frequency
//     (frequent first), form a path inserted into a tree.
//  4. Subtrees with low support are pruned; every surviving path is a
//     template.
//
// Classification walks a new line's frequency-ordered words down the tree;
// the deepest matching node identifies the template.
package ftree

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
)

// DefaultVarPatterns are the predefined variable-word regexps of step 2:
// IPv4 addresses, interface names, hex constants, and bare numbers.
func DefaultVarPatterns() []*regexp.Regexp {
	return []*regexp.Regexp{
		regexp.MustCompile(`^\d+\.\d+\.\d+\.\d+$`),                 // IPv4
		regexp.MustCompile(`^(Ten|Forty|Hundred)?GigE\d+(/\d+)*$`), // interfaces
		regexp.MustCompile(`^0x[0-9a-fA-F]+$`),                     // hex
		regexp.MustCompile(`^\d+$`),                                // numbers
		regexp.MustCompile(`^[0-9]+(us|ms|s|%)$`),                  // magnitudes
	}
}

// Config tunes training.
type Config struct {
	// MaxDepth bounds template length; deeper words are dropped. The
	// FT-tree paper uses small depths because the first few frequent
	// words identify the message type.
	MaxDepth int
	// MinSupport prunes nodes observed fewer than this many times.
	MinSupport int
	// VarPatterns are the variable-word regexps; nil means
	// DefaultVarPatterns.
	VarPatterns []*regexp.Regexp
}

// DefaultConfig returns the training defaults.
func DefaultConfig() Config {
	return Config{MaxDepth: 6, MinSupport: 2}
}

// node is one FT-tree node.
type node struct {
	word     string
	count    int
	children map[string]*node
	// templateID is set on nodes that terminate a surviving template,
	// -1 otherwise.
	templateID int
}

func newNode(word string) *node {
	return &node{word: word, children: make(map[string]*node), templateID: -1}
}

// Template is one learned syslog template.
type Template struct {
	ID int
	// Words are the template's detail words, frequency order.
	Words []string
	// Support is how many training lines matched.
	Support int
}

// String renders the template words joined by spaces.
func (t Template) String() string { return strings.Join(t.Words, " ") }

// Tree is a trained FT-tree. It is immutable after Train and safe for
// concurrent readers.
type Tree struct {
	cfg       Config
	freq      map[string]int
	root      *node
	templates []Template
}

// Train builds an FT-tree from a corpus of raw log lines.
func Train(lines []string, cfg Config) (*Tree, error) {
	if cfg.MaxDepth <= 0 {
		return nil, fmt.Errorf("ftree: MaxDepth must be positive, got %d", cfg.MaxDepth)
	}
	if cfg.MinSupport < 1 {
		return nil, fmt.Errorf("ftree: MinSupport must be ≥ 1, got %d", cfg.MinSupport)
	}
	if cfg.VarPatterns == nil {
		cfg.VarPatterns = DefaultVarPatterns()
	}
	t := &Tree{cfg: cfg, freq: make(map[string]int), root: newNode("")}

	// Pass 1: global word frequencies over detail words.
	tokenized := make([][]string, 0, len(lines))
	for _, line := range lines {
		words := t.detailWords(line)
		tokenized = append(tokenized, words)
		for _, w := range words {
			t.freq[w]++
		}
	}
	// Pass 2: insert frequency-ordered word paths.
	for _, words := range tokenized {
		path := t.orderWords(words)
		t.insert(path)
	}
	// Pass 3: prune and number templates.
	t.prune(t.root)
	t.collect(t.root, nil)
	return t, nil
}

// MustTrain is Train but panics on error.
func MustTrain(lines []string, cfg Config) *Tree {
	t, err := Train(lines, cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Templates returns the learned templates, by ID.
func (t *Tree) Templates() []Template {
	out := make([]Template, len(t.templates))
	copy(out, t.templates)
	return out
}

// NumTemplates returns the template count.
func (t *Tree) NumTemplates() int { return len(t.templates) }

// Classify maps a raw line to its template. ok is false when no template
// prefix matches (an unseen message shape).
func (t *Tree) Classify(line string) (Template, bool) {
	words := t.orderWords(t.detailWords(line))
	cur := t.root
	best := -1
	for _, w := range words {
		next, ok := cur.children[w]
		if !ok {
			break
		}
		cur = next
		if cur.templateID >= 0 {
			best = cur.templateID
		}
	}
	if best < 0 {
		return Template{}, false
	}
	return t.templates[best], true
}

// detailWords tokenizes a line and strips variable words.
func (t *Tree) detailWords(line string) []string {
	raw := strings.FieldsFunc(line, func(r rune) bool {
		switch r {
		case ' ', '\t', ',', ':', ';', '(', ')', '[', ']', '"':
			return true
		}
		return false
	})
	out := make([]string, 0, len(raw))
	for _, w := range raw {
		if w == "" || t.isVariable(w) {
			continue
		}
		out = append(out, w)
	}
	return out
}

func (t *Tree) isVariable(w string) bool {
	for _, re := range t.cfg.VarPatterns {
		if re.MatchString(w) {
			return true
		}
	}
	return false
}

// orderWords sorts words by global frequency (descending), breaking ties
// lexicographically, dedups, and truncates to MaxDepth. Words unseen in
// training have frequency 0 and sort last.
func (t *Tree) orderWords(words []string) []string {
	uniq := make([]string, 0, len(words))
	seen := make(map[string]bool, len(words))
	for _, w := range words {
		if !seen[w] {
			seen[w] = true
			uniq = append(uniq, w)
		}
	}
	sort.SliceStable(uniq, func(i, j int) bool {
		fi, fj := t.freq[uniq[i]], t.freq[uniq[j]]
		if fi != fj {
			return fi > fj
		}
		return uniq[i] < uniq[j]
	})
	if len(uniq) > t.cfg.MaxDepth {
		uniq = uniq[:t.cfg.MaxDepth]
	}
	return uniq
}

func (t *Tree) insert(path []string) {
	cur := t.root
	cur.count++
	for _, w := range path {
		next, ok := cur.children[w]
		if !ok {
			next = newNode(w)
			cur.children[w] = next
		}
		next.count++
		cur = next
	}
}

// prune removes children with support below MinSupport.
func (t *Tree) prune(n *node) {
	for w, c := range n.children {
		if c.count < t.cfg.MinSupport {
			delete(n.children, w)
			continue
		}
		t.prune(c)
	}
}

// collect numbers every surviving leaf (and internal nodes whose children
// were pruned away) as a template, in deterministic word order.
func (t *Tree) collect(n *node, prefix []string) {
	if len(n.children) == 0 {
		if len(prefix) > 0 {
			n.templateID = len(t.templates)
			words := make([]string, len(prefix))
			copy(words, prefix)
			t.templates = append(t.templates, Template{ID: n.templateID, Words: words, Support: n.count})
		}
		return
	}
	words := make([]string, 0, len(n.children))
	for w := range n.children {
		words = append(words, w)
	}
	sort.Strings(words)
	for _, w := range words {
		c := n.children[w]
		t.collect(c, append(prefix, c.word))
	}
}
