package ftree

import (
	"strings"
	"sync"

	"skynet/internal/alert"
)

// Classifier combines a trained FT-tree with the manually curated
// template→type assignments of §4.1 ("The classification process starts
// with manually assigning types to existing alerts... we prioritize the
// most critical"). Keyword rules stand in for months of operator labeling:
// each rule recognizes the distinguishing detail words of a message family
// and names its alert type.
type Classifier struct {
	tree *Tree
	// typeOf maps template ID → alert type, precomputed at construction
	// by running the keyword rules over every learned template.
	typeOf []string

	// cache memoizes ClassifyLine by raw line. Real feeds repeat a small
	// set of message shapes at enormous rates (§3: floods are dominated by
	// a few types), so the hit rate is high and a hit skips the tokenize +
	// frequency-sort + tree walk entirely. Bounded at classifyCacheCap;
	// once full, new lines are classified but not inserted, so a hostile
	// feed of unique lines cannot grow it without bound.
	mu    sync.RWMutex
	cache map[string]cacheEntry
}

// classifyCacheCap bounds the ClassifyLine memo cache.
const classifyCacheCap = 8192

type cacheEntry struct {
	typ string
	ok  bool
}

// keywordRule maps template content to an alert type. All words must be
// present (case-insensitively) in the template.
type keywordRule struct {
	allOf []string
	typ   string
}

// rules are ordered most-specific first; the first full match wins. The
// vendor message tag (e.g. "%LINEPROTO") is the most reliable key: it is
// rare enough to survive frequency ordering and depth truncation.
var rules = []keywordRule{
	{[]string{"%LINEPROTO"}, alert.TypePortDown},
	{[]string{"line", "protocol", "down"}, alert.TypePortDown},
	{[]string{"%LINK-3-UPDOWN"}, alert.TypeLinkDown},
	{[]string{"%BGP-4-FLAP"}, alert.TypeBGPLinkJitter},
	{[]string{"%BGP-5-ADJCHANGE", "down"}, alert.TypeBGPPeerDown},
	{[]string{"%PLATFORM-2-HW_ERROR"}, alert.TypeHardwareError},
	{[]string{"%SYSMGR-3-PROC_RESTART"}, alert.TypeSoftwareError},
	{[]string{"%SYSTEM-2-MEMORY"}, alert.TypeOutOfMemory},
	{[]string{"%IF-3-CRC"}, alert.TypeCRCError},
	{[]string{"%CONFIG-3-COMMIT", "rejected"}, alert.TypeModificationFailed},
	{[]string{"%PTP-4-OFFSET"}, alert.TypeClockUnsync},
	{[]string{"blackhole"}, alert.TypeTrafficBlackhole},
	{[]string{"flapping"}, alert.TypeLinkFlapping},
	{[]string{"parity", "error"}, alert.TypeHardwareError},
	{[]string{"memory"}, alert.TypeOutOfMemory},
	{[]string{"crc"}, alert.TypeCRCError},
	{[]string{"down"}, alert.TypeLinkDown},
}

// NewClassifier trains an FT-tree over the corpus and labels its
// templates.
func NewClassifier(corpus []string, cfg Config) (*Classifier, error) {
	tree, err := Train(corpus, cfg)
	if err != nil {
		return nil, err
	}
	c := &Classifier{
		tree:   tree,
		typeOf: make([]string, tree.NumTemplates()),
		cache:  make(map[string]cacheEntry, 256),
	}
	for _, tpl := range tree.Templates() {
		c.typeOf[tpl.ID] = matchRules(tpl.Words)
	}
	return c, nil
}

// matchRules labels one template; unlabeled templates get the empty type.
func matchRules(words []string) string {
	lower := make([]string, len(words))
	for i, w := range words {
		lower[i] = strings.ToLower(w)
	}
	has := func(want string) bool {
		want = strings.ToLower(want)
		for _, w := range lower {
			if strings.Contains(w, want) {
				return true
			}
		}
		return false
	}
	for _, r := range rules {
		ok := true
		for _, k := range r.allOf {
			if !has(k) {
				ok = false
				break
			}
		}
		if ok {
			return r.typ
		}
	}
	return ""
}

// Tree exposes the underlying FT-tree.
func (c *Classifier) Tree() *Tree { return c.tree }

// ClassifyLine maps a raw syslog line to an alert type. ok is false when
// the line matches no template or an unlabeled one; such alerts stay
// informational (ClassInfo) so they can never trip incident thresholds.
// Safe for concurrent use.
func (c *Classifier) ClassifyLine(line string) (typ string, ok bool) {
	c.mu.RLock()
	e, hit := c.cache[line]
	c.mu.RUnlock()
	if hit {
		return e.typ, e.ok
	}
	tpl, matched := c.tree.Classify(line)
	if matched {
		typ = c.typeOf[tpl.ID]
		ok = typ != ""
	}
	c.mu.Lock()
	if len(c.cache) < classifyCacheCap {
		c.cache[line] = cacheEntry{typ: typ, ok: ok}
	}
	c.mu.Unlock()
	return typ, ok
}
