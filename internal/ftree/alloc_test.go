package ftree

import "testing"

// A cache-hit classification must not allocate: the memo lookup is one
// read-locked map access keyed by the raw line.
func TestClassifyLineCacheHitZeroAllocs(t *testing.T) {
	corpus := []string{
		"%LINEPROTO-5-UPDOWN: Line protocol on Interface TenGigE0/1, changed state to down",
		"%LINEPROTO-5-UPDOWN: Line protocol on Interface TenGigE0/2, changed state to down",
		"%LINK-3-UPDOWN: Interface TenGigE0/1, changed state to down",
		"%LINK-3-UPDOWN: Interface TenGigE0/3, changed state to down",
		"%BGP-5-ADJCHANGE: neighbor 10.0.0.1 Down - holdtimer expired",
		"%BGP-5-ADJCHANGE: neighbor 10.0.0.2 Down - holdtimer expired",
	}
	c, err := NewClassifier(corpus, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	line := corpus[0]
	typ, ok := c.ClassifyLine(line) // warm the cache
	if !ok {
		t.Fatalf("ClassifyLine(%q) not classified", line)
	}
	sink := 0
	if avg := testing.AllocsPerRun(200, func() {
		got, _ := c.ClassifyLine(line)
		sink += len(got)
	}); avg != 0 {
		t.Errorf("cache-hit ClassifyLine allocates %.1f times per call, want 0", avg)
	}
	if got, _ := c.ClassifyLine(line); got != typ {
		t.Errorf("cached type = %q, want %q", got, typ)
	}
	_ = sink
}

// The cache must stop growing at its cap: misses beyond the cap are still
// classified correctly, just not memoized.
func TestClassifyCacheBounded(t *testing.T) {
	corpus := []string{
		"%LINK-3-UPDOWN: Interface TenGigE0/1, changed state to down",
		"%LINK-3-UPDOWN: Interface TenGigE0/2, changed state to down",
	}
	c, err := NewClassifier(corpus, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a full cache and verify inserts stop but answers keep coming.
	c.mu.Lock()
	for i := 0; len(c.cache) < classifyCacheCap; i++ {
		c.cache[string(rune('a'+i%26))+string(rune('0'+i%10))+string(rune(i))] = cacheEntry{}
	}
	c.mu.Unlock()
	typ, ok := c.ClassifyLine("%LINK-3-UPDOWN: Interface TenGigE0/9, changed state to down")
	if !ok || typ == "" {
		t.Fatalf("ClassifyLine with full cache: typ=%q ok=%v", typ, ok)
	}
	c.mu.RLock()
	n := len(c.cache)
	c.mu.RUnlock()
	if n > classifyCacheCap {
		t.Errorf("cache grew past cap: %d > %d", n, classifyCacheCap)
	}
}
