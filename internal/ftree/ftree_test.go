package ftree

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"skynet/internal/alert"
)

// corpus synthesizes vendor-style lines with randomized variable fields,
// mirroring what the syslog monitor emits.
func corpus(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	iface := func() string {
		return fmt.Sprintf("TenGigE%d/%d/%d/%d", rng.Intn(2), rng.Intn(4), rng.Intn(2), rng.Intn(36))
	}
	ip := func() string {
		return fmt.Sprintf("10.%d.%d.%d", rng.Intn(256), rng.Intn(256), 1+rng.Intn(254))
	}
	gens := []func() string{
		func() string {
			return fmt.Sprintf("%%LINK-3-UPDOWN: Interface %s, changed state to down (cable)", iface())
		},
		func() string {
			return fmt.Sprintf("%%LINEPROTO-5-UPDOWN: Line protocol on Interface %s, changed state to down", iface())
		},
		func() string {
			return fmt.Sprintf("%%BGP-5-ADJCHANGE: neighbor %s Down - Hold timer expired", ip())
		},
		func() string {
			return fmt.Sprintf("%%BGP-4-FLAP: neighbor %s session flapping, count %d", ip(), rng.Intn(100))
		},
		func() string {
			return fmt.Sprintf("%%PLATFORM-2-HW_ERROR: Linecard %d parity error detected at 0x%x", rng.Intn(8), rng.Intn(65536))
		},
		func() string {
			return fmt.Sprintf("%%SYSMGR-3-PROC_RESTART: Process rpd restarted, pid %d", rng.Intn(30000))
		},
		func() string {
			return fmt.Sprintf("%%SYSTEM-2-MEMORY: Out of memory in process rpd, requested %d bytes", rng.Intn(1<<20))
		},
		func() string {
			return fmt.Sprintf("%%IF-3-CRC: Interface %s CRC errors %d", iface(), rng.Intn(10000))
		},
	}
	out := make([]string, n)
	for i := range out {
		out[i] = gens[i%len(gens)]()
	}
	return out
}

func TestTrainBasics(t *testing.T) {
	tree := MustTrain(corpus(400, 1), DefaultConfig())
	n := tree.NumTemplates()
	// Eight message families; variable stripping must collapse each to a
	// handful of templates, not hundreds.
	if n < 8 || n > 24 {
		t.Errorf("templates = %d, want ≈8 families", n)
	}
	for _, tpl := range tree.Templates() {
		if tpl.Support < 2 {
			t.Errorf("template %q survived with support %d < MinSupport", tpl, tpl.Support)
		}
		if len(tpl.Words) == 0 {
			t.Error("empty template")
		}
	}
}

func TestTrainConfigValidation(t *testing.T) {
	if _, err := Train(nil, Config{MaxDepth: 0, MinSupport: 1}); err == nil {
		t.Error("MaxDepth=0 accepted")
	}
	if _, err := Train(nil, Config{MaxDepth: 4, MinSupport: 0}); err == nil {
		t.Error("MinSupport=0 accepted")
	}
}

func TestClassifyKnownShapes(t *testing.T) {
	tree := MustTrain(corpus(400, 1), DefaultConfig())
	// A fresh line with unseen variable values must classify.
	line := "%LINK-3-UPDOWN: Interface TenGigE1/3/1/35, changed state to down (cable)"
	tpl, ok := tree.Classify(line)
	if !ok {
		t.Fatal("known shape did not classify")
	}
	joined := tpl.String()
	if !strings.Contains(joined, "%LINK-3-UPDOWN") && !strings.Contains(joined, "down") {
		t.Errorf("template %q does not look like a link-down family", joined)
	}
}

func TestClassifyUnknownShape(t *testing.T) {
	tree := MustTrain(corpus(200, 1), DefaultConfig())
	if _, ok := tree.Classify("utterly novel message shape xyzzy grue"); ok {
		t.Error("unknown shape classified")
	}
}

func TestVariableStripping(t *testing.T) {
	tree := MustTrain(corpus(100, 2), DefaultConfig())
	for _, tpl := range tree.Templates() {
		for _, w := range tpl.Words {
			if tree.isVariable(w) {
				t.Errorf("template %q contains variable word %q", tpl, w)
			}
		}
	}
}

func TestPruningRemovesRareShapes(t *testing.T) {
	lines := corpus(100, 3)
	lines = append(lines, "one-off weird line qux")
	cfg := DefaultConfig()
	cfg.MinSupport = 2
	tree := MustTrain(lines, cfg)
	if _, ok := tree.Classify("one-off weird line qux"); ok {
		t.Error("singleton shape survived pruning")
	}
}

func TestMaxDepthBoundsTemplates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxDepth = 3
	tree := MustTrain(corpus(200, 4), cfg)
	for _, tpl := range tree.Templates() {
		if len(tpl.Words) > 3 {
			t.Errorf("template %q longer than MaxDepth", tpl)
		}
	}
}

func TestPropertyTrainingLinesClassify(t *testing.T) {
	// Every line family present ≥ MinSupport times in training must
	// classify afterwards, for any seed.
	f := func(seed int64) bool {
		lines := corpus(160, seed)
		tree := MustTrain(lines, DefaultConfig())
		for _, l := range lines {
			if _, ok := tree.Classify(l); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPropertyClassificationDeterministic(t *testing.T) {
	tree := MustTrain(corpus(300, 5), DefaultConfig())
	f := func(seed int64) bool {
		l := corpus(1, seed)[0]
		a, okA := tree.Classify(l)
		b, okB := tree.Classify(l)
		return okA == okB && a.ID == b.ID
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestClassifierTypes(t *testing.T) {
	c, err := NewClassifier(corpus(400, 6), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		line string
		want string
	}{
		{"%LINK-3-UPDOWN: Interface TenGigE0/0/0/1, changed state to down (x)", alert.TypeLinkDown},
		{"%LINEPROTO-5-UPDOWN: Line protocol on Interface TenGigE0/0/0/2, changed state to down", alert.TypePortDown},
		{"%BGP-5-ADJCHANGE: neighbor 10.1.2.3 Down - Hold timer expired", alert.TypeBGPPeerDown},
		{"%BGP-4-FLAP: neighbor 10.1.2.4 session flapping, count 12", alert.TypeBGPLinkJitter},
		{"%PLATFORM-2-HW_ERROR: Linecard 2 parity error detected at 0xdead", alert.TypeHardwareError},
		{"%SYSMGR-3-PROC_RESTART: Process rpd restarted, pid 99", alert.TypeSoftwareError},
		{"%SYSTEM-2-MEMORY: Out of memory in process rpd, requested 4096 bytes", alert.TypeOutOfMemory},
		{"%IF-3-CRC: Interface TenGigE0/0/0/3 CRC errors 17", alert.TypeCRCError},
	}
	for _, tc := range cases {
		got, ok := c.ClassifyLine(tc.line)
		if !ok {
			t.Errorf("line %q did not classify", tc.line)
			continue
		}
		if got != tc.want {
			t.Errorf("line %q → %q, want %q", tc.line, got, tc.want)
		}
	}
	if _, ok := c.ClassifyLine("novel xyzzy"); ok {
		t.Error("unknown line got a type")
	}
	if c.Tree() == nil {
		t.Error("tree accessor nil")
	}
}

func TestClassifierTypesAreCataloged(t *testing.T) {
	// Every type a rule can produce must be a cataloged syslog type, so
	// classified alerts get a real Class.
	for _, r := range rules {
		if alert.Classify(alert.SourceSyslog, r.typ) == alert.ClassInfo &&
			r.typ != alert.TypeModificationFailed && r.typ != alert.TypeClockUnsync {
			t.Errorf("rule type %q not cataloged for syslog", r.typ)
		}
	}
}
