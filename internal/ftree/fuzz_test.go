package ftree

import "testing"

// FuzzClassify hardens the syslog path: arbitrary log lines must never
// panic the classifier, and classification must be idempotent.
func FuzzClassify(f *testing.F) {
	tree := MustTrain(corpus(200, 1), DefaultConfig())
	f.Add("%LINK-3-UPDOWN: Interface TenGigE0/0/0/1, changed state to down")
	f.Add("")
	f.Add("::::][((")
	f.Add("%SYSTEM-2-MEMORY: Out of memory in process rpd, requested 1 bytes")
	f.Fuzz(func(t *testing.T, line string) {
		a, okA := tree.Classify(line)
		b, okB := tree.Classify(line)
		if okA != okB || (okA && a.ID != b.ID) {
			t.Fatalf("classification not idempotent for %q", line)
		}
	})
}
