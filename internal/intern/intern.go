// Package intern maps the pipeline's repeated composite keys —
// hierarchy paths and alert type keys — to small dense integer IDs, so
// hot loops can replace map[hierarchy.Path]T lookups and per-call
// Ancestors() allocations with array indexing and O(1) parent-chain
// walks over prebuilt lookup tables.
//
// Tables are single-writer: Intern may only be called from the owning
// goroutine (the engine loop). All read accessors (Path, Parent, Depth,
// Key, Len) are safe to call concurrently with each other as long as no
// Intern call is in flight — the locator interns serially before every
// parallel fan-out, so its workers only ever read.
package intern

import (
	"unsafe"

	"skynet/internal/alert"
	"skynet/internal/hierarchy"
)

// PathID is a dense index into a PathTable. IDs are assigned in first-
// seen order and are never reused or invalidated.
type PathID int32

// TypeID is a dense index into a TypeTable.
type TypeID int32

// None marks "no path": the parent of the interned root, or an
// unresolved lookup.
const None PathID = -1

// PathTable interns hierarchy.Path values. Interning a path interns its
// whole ancestor chain (root included), so Parent always resolves to an
// in-table ID and ancestor walks never touch the Path itself.
//
// The index is bucketed by the path's leaf segment rather than keyed by
// the whole Path: hashing a map key then costs one short string instead
// of six (a Path is a [6]string under the hood, and hashing it dominated
// warm Intern calls). Device names embed their full path slug, so device
// buckets — the overwhelming majority of lookups — hold a single entry;
// interior segments ("CL01") repeat across sites but are interned orders
// of magnitude less often, and their bucket scans fail fast on the first
// differing segment.
type PathTable struct {
	buckets map[string][]PathID // leaf segment → IDs; "" holds the root
	paths   []hierarchy.Path
	parent  []PathID
	depth   []uint8
	// cache is a direct-mapped front cache indexed by a hash of the leaf
	// segment. Batches re-intern the same locations every tick, and their
	// Paths carry string headers copied from a stable source (a topology,
	// or the previous tick's batch), so a probe can verify a hit by
	// header identity alone (Path.HeaderEq) — no byte compares. Paths
	// that are equal but differently backed miss here and fall through
	// to the bucketed map, which refreshes the slot with the caller's
	// backing. A slot holds id+1 so the zero value means empty.
	cache [pathCacheSize]pathCacheEnt
}

const pathCacheSize = 2048 // power of two; must exceed the working set of hot locations

type pathCacheEnt struct {
	p  hierarchy.Path
	id PathID // stored id+1; 0 = empty
}

// quickHash hashes a string word-at-a-time — the memhash technique,
// reading 8 bytes per multiply instead of one. Slugs are 25-30 bytes, so
// this is 4 rounds where byte-wise FNV was 30; the final overlapping
// load covers the tail without a byte loop. Hash quality only affects
// the front-cache hit rate — a collision falls through to the bucketed
// map, never changing results.
func quickHash(s string) uint32 {
	n := len(s)
	if n < 8 {
		h := uint32(2166136261) + uint32(n)
		for i := 0; i < n; i++ {
			h = (h ^ uint32(s[i])) * 16777619
		}
		return h ^ h>>15
	}
	p := unsafe.StringData(s)
	h := uint64(n) * 0x9E3779B185EBCA87
	for off := 0; off+8 <= n; off += 8 {
		w := *(*uint64)(unsafe.Add(unsafe.Pointer(p), off))
		h = (h ^ w) * 0xff51afd7ed558ccd
		h ^= h >> 33
	}
	w := *(*uint64)(unsafe.Add(unsafe.Pointer(p), n-8))
	h ^= w
	// fmix64 finalizer; slugs differ in a handful of digit nibbles, and a
	// single multiply leaves the table's low index bits nearly constant
	// across them. Taking the high word after full mixing is what spreads
	// 171 real device slugs over ~165 of 2048 slots instead of 66.
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return uint32(h >> 32)
}

// NewPathTable returns an empty table.
func NewPathTable() *PathTable {
	return &PathTable{buckets: make(map[string][]PathID)}
}

// Len reports how many paths have been interned. Valid PathIDs are
// exactly [0, Len).
func (t *PathTable) Len() int { return len(t.paths) }

// Intern returns p's dense ID, assigning one — and interning every
// ancestor of p up to the root — on first sight.
func (t *PathTable) Intern(p hierarchy.Path) PathID {
	leaf := p.Leaf()
	slot := quickHash(leaf) & (pathCacheSize - 1)
	if e := &t.cache[slot]; e.id != 0 && e.p.HeaderEq(&p) {
		return e.id - 1
	}
	id := t.internSlow(p, leaf)
	t.cache[slot] = pathCacheEnt{p: p, id: id + 1}
	return id
}

func (t *PathTable) internSlow(p hierarchy.Path, leaf string) PathID {
	for _, id := range t.buckets[leaf] {
		if t.paths[id] == p {
			return id
		}
	}
	par := None
	if p.Depth() > 0 {
		par = t.Intern(p.Parent())
	}
	id := PathID(len(t.paths))
	t.buckets[leaf] = append(t.buckets[leaf], id)
	t.paths = append(t.paths, p)
	t.parent = append(t.parent, par)
	t.depth = append(t.depth, uint8(p.Depth()))
	return id
}

// Lookup returns p's ID without interning. The second result is false
// when p has never been interned.
func (t *PathTable) Lookup(p hierarchy.Path) (PathID, bool) {
	for _, id := range t.buckets[p.Leaf()] {
		if t.paths[id] == p {
			return id, true
		}
	}
	return None, false
}

// Path returns the path for a valid ID.
func (t *PathTable) Path(id PathID) hierarchy.Path { return t.paths[id] }

// Parent returns the ID of id's parent path, or None for the root.
func (t *PathTable) Parent(id PathID) PathID { return t.parent[id] }

// Depth returns the path depth for a valid ID (0 for the root).
func (t *PathTable) Depth(id PathID) int { return int(t.depth[id]) }

// TypeTable interns alert.TypeKey values — the (source, type) pairs the
// locator's per-component type counting deduplicates on. Buckets are
// keyed by the type string alone (a type string almost never appears
// under two sources), so hashing skips the struct wrapper.
type TypeTable struct {
	buckets map[string][]TypeID // Type → IDs, discriminated by Source
	keys    []alert.TypeKey
	// cache mirrors PathTable's front cache: direct-mapped on the type
	// string's hash, id stored +1 so zero means empty.
	cache [typeCacheSize]typeCacheEnt
}

const typeCacheSize = 256 // power of two; type vocabularies are small

type typeCacheEnt struct {
	k  alert.TypeKey
	id TypeID // stored id+1; 0 = empty
}

// NewTypeTable returns an empty table.
func NewTypeTable() *TypeTable {
	return &TypeTable{buckets: make(map[string][]TypeID)}
}

// Len reports how many type keys have been interned. Valid TypeIDs are
// exactly [0, Len).
func (t *TypeTable) Len() int { return len(t.keys) }

// Intern returns k's dense ID, assigning one on first sight.
func (t *TypeTable) Intern(k alert.TypeKey) TypeID {
	slot := quickHash(k.Type) & (typeCacheSize - 1)
	if e := &t.cache[slot]; e.id != 0 && e.k == k {
		return e.id - 1
	}
	id := t.internSlow(k)
	t.cache[slot] = typeCacheEnt{k: k, id: id + 1}
	return id
}

func (t *TypeTable) internSlow(k alert.TypeKey) TypeID {
	for _, id := range t.buckets[k.Type] {
		if t.keys[id].Source == k.Source {
			return id
		}
	}
	id := TypeID(len(t.keys))
	t.buckets[k.Type] = append(t.buckets[k.Type], id)
	t.keys = append(t.keys, k)
	return id
}

// Key returns the type key for a valid ID.
func (t *TypeTable) Key(id TypeID) alert.TypeKey { return t.keys[id] }
