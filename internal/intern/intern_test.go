package intern

import (
	"testing"

	"skynet/internal/alert"
	"skynet/internal/hierarchy"
)

func mustPath(t *testing.T, segs ...string) hierarchy.Path {
	t.Helper()
	p, err := hierarchy.New(segs...)
	if err != nil {
		t.Fatalf("New(%v): %v", segs, err)
	}
	return p
}

func TestPathTableInternsAncestorChain(t *testing.T) {
	pt := NewPathTable()
	dev := mustPath(t, "r1", "c1", "ls1", "s1", "cl1", "d1")
	id := pt.Intern(dev)

	// Interning a device path interns all 7 prefixes (root..device).
	if got := pt.Len(); got != 7 {
		t.Fatalf("Len = %d, want 7", got)
	}
	if pt.Path(id) != dev {
		t.Fatalf("Path(%d) = %v, want %v", id, pt.Path(id), dev)
	}
	if pt.Depth(id) != 6 {
		t.Fatalf("Depth = %d, want 6", pt.Depth(id))
	}

	// Walking Parent from the device ID retraces Path.Parent exactly
	// and terminates at None.
	p, cur := dev, id
	for steps := 0; ; steps++ {
		if steps > hierarchy.NumLevels {
			t.Fatal("parent chain did not terminate")
		}
		par := pt.Parent(cur)
		if p.Depth() == 0 {
			if par != None {
				t.Fatalf("root parent = %d, want None", par)
			}
			break
		}
		p = p.Parent()
		if pt.Path(par) != p {
			t.Fatalf("Parent path = %v, want %v", pt.Path(par), p)
		}
		cur = par
	}
}

func TestPathTableStableIDs(t *testing.T) {
	pt := NewPathTable()
	a := mustPath(t, "r1", "c1")
	b := mustPath(t, "r1", "c2")
	ida, idb := pt.Intern(a), pt.Intern(b)
	if ida == idb {
		t.Fatalf("distinct paths share ID %d", ida)
	}
	if got := pt.Intern(a); got != ida {
		t.Fatalf("re-Intern = %d, want %d", got, ida)
	}
	if got, ok := pt.Lookup(a); !ok || got != ida {
		t.Fatalf("Lookup = %d,%v, want %d,true", got, ok, ida)
	}
	if got, ok := pt.Lookup(mustPath(t, "r9")); ok || got != None {
		t.Fatalf("Lookup(unseen) = %d,%v, want None,false", got, ok)
	}
}

func TestPathTableInternHitZeroAllocs(t *testing.T) {
	pt := NewPathTable()
	p := mustPath(t, "r1", "c1", "ls1", "s1", "cl1", "d1")
	pt.Intern(p)
	if avg := testing.AllocsPerRun(200, func() {
		pt.Intern(p)
		pt.Parent(pt.parent[len(pt.parent)-1])
	}); avg != 0 {
		t.Fatalf("warm Intern allocates %.1f/op, want 0", avg)
	}
}

func TestTypeTable(t *testing.T) {
	tt := NewTypeTable()
	k1 := alert.TypeKey{Source: alert.SourceSyslog, Type: "link_down"}
	k2 := alert.TypeKey{Source: alert.SourceSyslog, Type: "ospf_down"}
	id1, id2 := tt.Intern(k1), tt.Intern(k2)
	if id1 == id2 {
		t.Fatalf("distinct keys share ID %d", id1)
	}
	if got := tt.Intern(k1); got != id1 {
		t.Fatalf("re-Intern = %d, want %d", got, id1)
	}
	if tt.Key(id2) != k2 {
		t.Fatalf("Key = %+v, want %+v", tt.Key(id2), k2)
	}
	if tt.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tt.Len())
	}
	if avg := testing.AllocsPerRun(200, func() { tt.Intern(k2) }); avg != 0 {
		t.Fatalf("warm Intern allocates %.1f/op, want 0", avg)
	}
}
