// Package evaluator implements SkyNet's evaluator (§4.3): the quantitative
// severity assessment of Equations 1–3 that lets operators address the
// most critical incident first, plus the severity filter that keeps the
// daily incident feed below one per day (§6.4).
//
// Severity y_k = I_k · T_k, where
//
//	I_k = max(1, Σ d_i·g_i·u_i + Σ l_j·g_j·u_j)        (Eq. 1)
//	T_k = max(log_{1/R_k}(ΔT_k + Sig(U_k)),
//	          log_{1/L_k}(ΔT_k + Sig(U_k)))            (Eq. 2)
//
// d_i is a circuit set's break ratio, l_i the ratio of its SLA flows
// beyond limit, g_i/u_i the importance factor and count of its customers,
// R_k the average ping loss, L_k the max SLA overload ratio, ΔT_k the
// alert lasting time, and U_k the number of important customers affected.
// The impact factor measures who is hurt; the time factor escalates with
// duration so no incident can be ignored forever, growing faster when
// loss is heavier.
package evaluator

import (
	"math"
	"sort"
	"time"

	"skynet/internal/alert"
	"skynet/internal/incident"
	"skynet/internal/topology"
)

// Config tunes the evaluator.
type Config struct {
	// SeverityThreshold filters trivial incidents; the paper sets 10,
	// chosen so nine months of failure incidents all score above it
	// (Fig. 10a/b).
	SeverityThreshold float64
	// SeverityCap bounds reported scores. The paper caps scores at 100
	// only when PRESENTING distributions (Fig. 10a); ranking uses raw
	// scores, so the default is no cap. Set a finite value to clamp.
	SeverityCap float64
	// DurationUnit is the unit ΔT_k is measured in (minutes in the
	// production deployment).
	DurationUnit time.Duration
	// MaxLossBase clamps R_k and L_k away from 1 so log_{1/R} stays
	// finite.
	MaxLossBase float64
}

// DefaultConfig returns the production parameters.
func DefaultConfig() Config {
	return Config{
		SeverityThreshold: 10,
		SeverityCap:       math.Inf(1),
		DurationUnit:      time.Minute,
		MaxLossBase:       0.99,
	}
}

// CircuitImpact is the per-circuit-set term of Equation 1, kept for
// operator display.
type CircuitImpact struct {
	Name string
	// BreakRatio is d_i.
	BreakRatio float64
	// SLAOverRatio is l_i.
	SLAOverRatio float64
	// Importance is g_i (mean customer importance factor).
	Importance float64
	// Customers is u_i.
	Customers int
	// Contribution is (d_i + l_i)·g_i·u_i.
	Contribution float64
}

// Breakdown is a scored incident with its intermediate quantities
// (Table 3 symbols), so reports can explain the number.
type Breakdown struct {
	// Impact is I_k.
	Impact float64
	// TimeFactor is T_k.
	TimeFactor float64
	// Severity is y_k, capped at SeverityCap.
	Severity float64
	// R is R_k, the average ping loss rate.
	R float64
	// L is L_k, the max SLA overload ratio mapped into (0,1).
	L float64
	// DurationUnits is ΔT_k in DurationUnit units.
	DurationUnits float64
	// ImportantCustomers is U_k.
	ImportantCustomers int
	// Sigmoid is Sig(U_k), the saturating important-customer term.
	Sigmoid float64
	// TimeArg is the Eq. 2 log argument ΔT_k + Sig(U_k).
	TimeArg float64
	// Circuits are the per-set Equation 1 terms, sorted by contribution.
	Circuits []CircuitImpact
}

// Evaluator scores incidents against topology customer data.
type Evaluator struct {
	cfg  Config
	topo *topology.Topology
}

// New builds an evaluator. The topology provides circuit-set membership
// and customer importance (the "Traffic Info"/"Device Info" stores of
// Figure 6).
func New(cfg Config, topo *topology.Topology) *Evaluator {
	return &Evaluator{cfg: cfg, topo: topo}
}

// Score computes the Equations 1–3 severity of an incident at the given
// evaluation time, and stores it on the incident.
func (e *Evaluator) Score(in *incident.Incident, now time.Time) Breakdown {
	var b Breakdown

	// One linear pass over the entry slab collects every per-alert input
	// of Equations 1–2: the break/SLA ratios per named circuit set, the
	// ping-tool loss observations for R_k, and the max SLA overload for
	// L_k. The slab is first-seen ordered and cache-linear, so this
	// replaces three walks over the old nested location→stream maps.
	breakRatio := map[string]float64{}
	slaOver := map[string]float64{}
	var lossVals []float64
	var maxOver float64
	slab := in.EntrySlab()
	for i := range slab {
		a := &slab[i].Alert
		if a.CircuitSet != "" {
			switch a.Type {
			case alert.TypeLinkDown, alert.TypePortDown:
				if a.Value > breakRatio[a.CircuitSet] {
					breakRatio[a.CircuitSet] = a.Value
				}
			case alert.TypeSLAFlowOverLimit:
				if over := overloadRatio(a.Value); over > slaOver[a.CircuitSet] {
					slaOver[a.CircuitSet] = over
				}
			}
		}
		lossy := (a.Type == alert.TypePacketLoss &&
			(a.Source == alert.SourcePing || a.Source == alert.SourceTraffic)) ||
			(a.Type == alert.TypeInternetLoss && a.Source == alert.SourceInternetTelemetry)
		if lossy {
			lossVals = append(lossVals, a.Value)
		}
		if a.Type == alert.TypeSLAFlowOverLimit {
			if over := overloadRatio(a.Value); over > maxOver {
				maxOver = over
			}
		}
	}

	// Equation 1: impact factor over the related circuit sets. Only sets
	// with a positive break or SLA-over ratio can contribute: a set with
	// d=0 and l=0 has Contribution (d+l)·g·u = 0 exactly, adds +0.0 to
	// the (non-negative) impact sum without changing a bit of it, and is
	// excluded from both b.Circuits and the important-customer count. So
	// the historical sweep over every set under the zoomed scope
	// (topology.CircuitSetsUnder) is a provable no-op and is skipped —
	// severity bits are unchanged while the dominant Score cost is gone.
	// Iterate in sorted name order: float accumulation is not
	// associative, so a map-order walk would let severity bits vary run
	// to run, breaking the engine's exact-replay guarantee.
	names := make([]string, 0, len(breakRatio)+len(slaOver))
	for name := range breakRatio {
		names = append(names, name)
	}
	for name := range slaOver {
		if _, dup := breakRatio[name]; !dup {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	importantCustomers := map[topology.CustomerID]bool{}
	var impact float64
	for _, name := range names {
		d := breakRatio[name]
		l := slaOver[name]
		ci := CircuitImpact{Name: name, BreakRatio: d, SLAOverRatio: l}
		if e.topo != nil {
			if cs := e.topo.CircuitSet(name); cs != nil {
				ci.Customers = len(cs.Customers)
				var g float64
				for _, c := range cs.Customers {
					cust := e.topo.Customer(c)
					g += cust.Importance
					if cust.Important && (d > 0 || l > 0) {
						importantCustomers[c] = true
					}
				}
				if ci.Customers > 0 {
					ci.Importance = g / float64(ci.Customers)
				}
			}
		}
		ci.Contribution = (ci.BreakRatio + ci.SLAOverRatio) * ci.Importance * float64(ci.Customers)
		if ci.Contribution > 0 {
			b.Circuits = append(b.Circuits, ci)
		}
		impact += ci.Contribution
	}
	sort.Slice(b.Circuits, func(i, j int) bool {
		if b.Circuits[i].Contribution != b.Circuits[j].Contribution {
			return b.Circuits[i].Contribution > b.Circuits[j].Contribution
		}
		return b.Circuits[i].Name < b.Circuits[j].Name
	})
	b.Impact = math.Max(1, impact)
	b.ImportantCustomers = len(importantCustomers)

	// Table 3 inputs for Equation 2, from the slab pass above.
	b.R = meanSorted(lossVals)
	b.L = maxOver
	end := in.UpdateTime
	if !in.End.IsZero() {
		end = in.End
	}
	if end.After(now) {
		end = now
	}
	dur := end.Sub(in.Start)
	if dur < 0 {
		dur = 0
	}
	b.DurationUnits = float64(dur) / float64(e.cfg.DurationUnit)

	// Equation 2: the time factor.
	b.Sigmoid = sigmoid(float64(b.ImportantCustomers))
	arg := b.DurationUnits + b.Sigmoid
	b.TimeArg = arg
	b.TimeFactor = math.Max(logBaseInvLoss(b.R, arg, e.cfg.MaxLossBase),
		logBaseInvLoss(b.L, arg, e.cfg.MaxLossBase))

	// Equation 3.
	y := b.Impact * b.TimeFactor
	if y > e.cfg.SeverityCap {
		y = e.cfg.SeverityCap
	}
	if y < 0 {
		y = 0
	}
	b.Severity = y
	in.Severity = y
	return b
}

// Severe reports whether an incident's stored severity clears the filter
// threshold.
func (e *Evaluator) Severe(in *incident.Incident) bool {
	return in.Severity >= e.cfg.SeverityThreshold
}

// Filter returns the incidents whose severity clears the threshold,
// highest first — the ranked feed operators actually see (§6.4 reduces
// hundreds of monthly events to under one per day this way).
func (e *Evaluator) Filter(ins []*incident.Incident) []*incident.Incident {
	var out []*incident.Incident
	for _, in := range ins {
		if e.Severe(in) {
			out = append(out, in)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Severity > out[j].Severity })
	return out
}

// Rank orders incidents by severity, highest first, without filtering.
func Rank(ins []*incident.Incident) []*incident.Incident {
	out := make([]*incident.Incident, len(ins))
	copy(out, ins)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Severity > out[j].Severity })
	return out
}

// meanSorted computes R_k: the mean of the collected loss ratios. The
// values are summed in sorted order so that the collection order (slab
// insertion order, or historically a map walk) cannot perturb the
// non-associative float mean between runs.
func meanSorted(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sort.Float64s(vals)
	var sum float64
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// overloadRatio maps a demand/capacity ratio (≥1 when overloaded) to the
// fraction of traffic beyond the limit, in [0,1).
func overloadRatio(demandOverCapacity float64) float64 {
	if demandOverCapacity <= 1 {
		return 0
	}
	return 1 - 1/demandOverCapacity
}

// sigmoid is Sig in Equation 2: steep for the first few important
// customers, saturating at 1 so mass outages do not explode the argument.
func sigmoid(u float64) float64 { return 1 / (1 + math.Exp(-u)) }

// logBaseInvLoss computes log_{1/loss}(arg) with the conventions of
// Equation 2: zero loss contributes nothing (the base is infinite), loss
// is clamped below maxBase, and arguments ≤ 1 contribute nothing (the
// incident just started).
func logBaseInvLoss(loss, arg, maxBase float64) float64 {
	if loss <= 0 || arg <= 1 {
		return 0
	}
	if loss > maxBase {
		loss = maxBase
	}
	return math.Log(arg) / -math.Log(loss)
}
