package evaluator

import (
	"math"
	"testing"
	"time"

	"skynet/internal/alert"
	"skynet/internal/hierarchy"
	"skynet/internal/incident"
	"skynet/internal/topology"
)

var epoch = time.Date(2024, 7, 2, 11, 0, 0, 0, time.UTC)

func smallTopo() *topology.Topology { return topology.MustGenerate(topology.SmallConfig()) }

func mkAlert(src alert.Source, typ string, at time.Time, loc hierarchy.Path, val float64, cs string) alert.Alert {
	return alert.Alert{
		Source: src, Type: typ, Class: alert.Classify(src, typ),
		Time: at, End: at, Location: loc, Value: val, Count: 1, CircuitSet: cs,
	}
}

// buildIncident assembles an incident at a device with ping loss and a
// broken circuit set, lasting the given duration.
func buildIncident(topo *topology.Topology, loss float64, dur time.Duration) *incident.Incident {
	l := topo.Link(0)
	dev := topo.Device(l.A)
	in := incident.New(1, dev.Path)
	in.Add(mkAlert(alert.SourcePing, alert.TypePacketLoss, epoch, dev.Path, loss, ""))
	in.Add(mkAlert(alert.SourceSNMP, alert.TypeLinkDown, epoch, dev.Path, 1.0, l.CircuitSet))
	in.Add(mkAlert(alert.SourcePing, alert.TypeEndToEndICMP, epoch.Add(dur), dev.Path, loss, ""))
	return in
}

func TestScoreBasics(t *testing.T) {
	topo := smallTopo()
	e := New(DefaultConfig(), topo)
	in := buildIncident(topo, 0.5, 10*time.Minute)
	b := e.Score(in, epoch.Add(10*time.Minute))
	if b.Impact < 1 {
		t.Errorf("impact = %v, must be ≥ 1", b.Impact)
	}
	if b.R != 0.5 {
		t.Errorf("R = %v, want 0.5", b.R)
	}
	if b.TimeFactor <= 0 {
		t.Errorf("time factor = %v", b.TimeFactor)
	}
	if b.Severity <= 0 || math.IsInf(b.Severity, 1) {
		t.Errorf("severity = %v out of range", b.Severity)
	}
	if in.Severity != b.Severity {
		t.Error("severity not stored on incident")
	}
	if b.DurationUnits != 10 {
		t.Errorf("duration = %v units, want 10", b.DurationUnits)
	}
}

func TestSeverityGrowsWithDuration(t *testing.T) {
	topo := smallTopo()
	cfg := DefaultConfig()
	cfg.SeverityCap = math.Inf(1) // uncapped to observe growth
	e := New(cfg, topo)
	short := e.Score(buildIncident(topo, 0.3, 2*time.Minute), epoch.Add(2*time.Minute))
	long := e.Score(buildIncident(topo, 0.3, 60*time.Minute), epoch.Add(60*time.Minute))
	if long.Severity <= short.Severity {
		t.Errorf("severity must escalate with duration: %v → %v", short.Severity, long.Severity)
	}
}

func TestSeverityGrowsWithLossRate(t *testing.T) {
	topo := smallTopo()
	cfg := DefaultConfig()
	cfg.SeverityCap = math.Inf(1)
	e := New(cfg, topo)
	mild := e.Score(buildIncident(topo, 0.05, 10*time.Minute), epoch.Add(10*time.Minute))
	heavy := e.Score(buildIncident(topo, 0.50, 10*time.Minute), epoch.Add(10*time.Minute))
	if heavy.TimeFactor <= mild.TimeFactor {
		t.Errorf("heavier loss must accelerate the time factor: %v vs %v",
			mild.TimeFactor, heavy.TimeFactor)
	}
}

func TestZeroLossZeroTimeFactor(t *testing.T) {
	topo := smallTopo()
	e := New(DefaultConfig(), topo)
	dev := topo.Device(0)
	in := incident.New(1, dev.Path)
	in.Add(mkAlert(alert.SourceSyslog, alert.TypeLinkDown, epoch, dev.Path, 0, ""))
	b := e.Score(in, epoch.Add(10*time.Minute))
	if b.TimeFactor != 0 || b.Severity != 0 {
		t.Errorf("no loss anywhere should score 0: %+v", b)
	}
}

func TestSLAOverloadDrivesTimeFactor(t *testing.T) {
	// An incident with no ping loss but overloaded SLA flows must still
	// escalate (the second term of Eq. 2's max).
	topo := smallTopo()
	e := New(DefaultConfig(), topo)
	l := topo.Link(0)
	dev := topo.Device(l.A)
	in := incident.New(1, dev.Path)
	in.Add(mkAlert(alert.SourceNetFlow, alert.TypeSLAFlowOverLimit, epoch, dev.Path, 2.0, l.CircuitSet))
	late := mkAlert(alert.SourceNetFlow, alert.TypeSLAFlowOverLimit, epoch.Add(20*time.Minute), dev.Path, 2.0, l.CircuitSet)
	in.Add(late)
	b := e.Score(in, epoch.Add(20*time.Minute))
	if b.L != 0.5 { // demand 2× capacity → half the traffic beyond limit
		t.Errorf("L = %v, want 0.5", b.L)
	}
	if b.TimeFactor <= 0 {
		t.Error("SLA overload alone should still produce a time factor")
	}
}

func TestImpactCountsCustomers(t *testing.T) {
	topo := smallTopo()
	e := New(DefaultConfig(), topo)
	in := buildIncident(topo, 0.5, 10*time.Minute)
	b := e.Score(in, epoch.Add(10*time.Minute))
	if len(b.Circuits) == 0 {
		t.Fatal("no circuit impacts recorded")
	}
	top := b.Circuits[0]
	if top.Customers == 0 || top.Importance <= 0 || top.Contribution <= 0 {
		t.Errorf("degenerate circuit impact: %+v", top)
	}
	for i := 1; i < len(b.Circuits); i++ {
		if b.Circuits[i].Contribution > b.Circuits[i-1].Contribution {
			t.Error("circuit impacts not sorted by contribution")
		}
	}
}

func TestZoomedScopeNarrowsCircuitSets(t *testing.T) {
	topo := smallTopo()
	e := New(DefaultConfig(), topo)
	city := topo.Clusters()[0].Truncate(hierarchy.LevelCity)
	in := incident.New(1, city)
	in.Add(mkAlert(alert.SourcePing, alert.TypePacketLoss, epoch, city, 0.4, ""))
	in.Add(mkAlert(alert.SourcePing, alert.TypeEndToEndICMP, epoch.Add(10*time.Minute), city, 0.4, ""))
	wide := e.Score(in, epoch.Add(10*time.Minute))
	in.Zoomed = topo.Device(0).Path
	narrow := e.Score(in, epoch.Add(10*time.Minute))
	// Severity is capped, so compare the raw impact factors.
	if narrow.Impact > wide.Impact {
		t.Errorf("zoomed scope should not widen impact: %v > %v", narrow.Impact, wide.Impact)
	}
}

func TestSevereAndFilter(t *testing.T) {
	topo := smallTopo()
	e := New(DefaultConfig(), topo)
	big := buildIncident(topo, 0.6, 30*time.Minute)
	e.Score(big, epoch.Add(30*time.Minute))
	small := incident.New(2, topo.Device(0).Path)
	small.Add(mkAlert(alert.SourceSyslog, alert.TypeLinkDown, epoch, topo.Device(0).Path, 0, ""))
	e.Score(small, epoch.Add(time.Minute))
	if !e.Severe(big) {
		t.Errorf("big incident severity %v under threshold", big.Severity)
	}
	if e.Severe(small) {
		t.Errorf("trivial incident severity %v over threshold", small.Severity)
	}
	filtered := e.Filter([]*incident.Incident{small, big})
	if len(filtered) != 1 || filtered[0].ID != big.ID {
		t.Errorf("filter result wrong: %v", filtered)
	}
	ranked := Rank([]*incident.Incident{small, big})
	if ranked[0].ID != big.ID {
		t.Error("rank order wrong")
	}
}

func TestScoreCapped(t *testing.T) {
	topo := smallTopo()
	cfg := DefaultConfig()
	cfg.SeverityCap = 100 // the Fig. 10a presentation cap
	e := New(cfg, topo)
	// A city-scope, hour-long, heavy-loss incident: the raw product far
	// exceeds the cap.
	city := topo.Clusters()[0].Truncate(hierarchy.LevelCity)
	in := incident.New(1, city)
	in.Add(mkAlert(alert.SourcePing, alert.TypePacketLoss, epoch, city, 0.8, ""))
	for _, lid := range topo.LinksUnder(city)[:20] {
		l := topo.Link(lid)
		in.Add(mkAlert(alert.SourceSNMP, alert.TypeLinkDown, epoch, topo.Device(l.A).Path, 1, l.CircuitSet))
	}
	in.Add(mkAlert(alert.SourcePing, alert.TypeEndToEndICMP, epoch.Add(time.Hour), city, 0.8, ""))
	b := e.Score(in, epoch.Add(time.Hour))
	if b.Severity != 100 {
		t.Errorf("severity = %v, want capped at 100", b.Severity)
	}
}

func TestRankingReproducesSceneRankingCase(t *testing.T) {
	// §5.1 "Scene ranking": the incident with more alerts but less
	// customer impact must rank below the one hurting critical traffic.
	topo := smallTopo()
	e := New(DefaultConfig(), topo)

	// Big: many alerts, but no broken circuit sets and mild loss.
	cl := topo.Clusters()[0]
	big := incident.New(1, cl)
	for _, id := range topo.DevicesUnder(cl) {
		big.Add(mkAlert(alert.SourceOutOfBand, alert.TypeDeviceInaccessible, epoch, topo.Device(id).Path, 0, ""))
	}
	big.Add(mkAlert(alert.SourcePing, alert.TypePacketLoss, epoch, cl, 0.02, ""))
	big.Add(mkAlert(alert.SourcePing, alert.TypePacketLoss, epoch.Add(5*time.Minute), cl, 0.02, ""))

	// Critical: few alerts, heavy loss, broken SLA circuit.
	var bsr *topology.Device
	for i := range topo.Devices {
		if topo.Devices[i].Role == topology.RoleBSR {
			bsr = &topo.Devices[i]
			break
		}
	}
	lid := topo.LinksOf(bsr.ID)[0]
	l := topo.Link(lid)
	critical := incident.New(2, bsr.Path)
	critical.Add(mkAlert(alert.SourcePing, alert.TypePacketLoss, epoch, bsr.Path, 0.6, ""))
	critical.Add(mkAlert(alert.SourceSNMP, alert.TypeLinkDown, epoch, bsr.Path, 1, l.CircuitSet))
	critical.Add(mkAlert(alert.SourceNetFlow, alert.TypeSLAFlowOverLimit, epoch.Add(8*time.Minute), bsr.Path, 2.5, l.CircuitSet))

	now := epoch.Add(10 * time.Minute)
	e.Score(big, now)
	e.Score(critical, now)
	if big.AlertCount() <= critical.AlertCount() {
		t.Fatal("test setup: big incident should have more alerts")
	}
	if critical.Severity <= big.Severity {
		t.Errorf("critical (%.1f) must outrank big (%.1f)", critical.Severity, big.Severity)
	}
}

func TestNilTopology(t *testing.T) {
	e := New(DefaultConfig(), nil)
	dev := hierarchy.MustNew("R", "C", "L", "S", "K", "d")
	in := incident.New(1, dev)
	in.Add(mkAlert(alert.SourcePing, alert.TypePacketLoss, epoch, dev, 0.5, ""))
	in.Add(mkAlert(alert.SourcePing, alert.TypeEndToEndICMP, epoch.Add(10*time.Minute), dev, 0.5, ""))
	b := e.Score(in, epoch.Add(10*time.Minute))
	if b.Impact != 1 {
		t.Errorf("impact without topology = %v, want the max(1, ...) floor", b.Impact)
	}
	if b.Severity <= 0 {
		t.Error("time factor alone should still produce severity")
	}
}

func TestOverloadRatio(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0.5, 0}, {1, 0}, {2, 0.5}, {4, 0.75},
	}
	for _, c := range cases {
		if got := overloadRatio(c.in); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("overloadRatio(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestLogBaseInvLoss(t *testing.T) {
	// log_{1/0.5}(4) = ln4/ln2 = 2.
	if got := logBaseInvLoss(0.5, 4, 0.99); math.Abs(got-2) > 1e-9 {
		t.Errorf("logBaseInvLoss(0.5, 4) = %v, want 2", got)
	}
	if logBaseInvLoss(0, 10, 0.99) != 0 {
		t.Error("zero loss must contribute 0")
	}
	if logBaseInvLoss(0.5, 0.5, 0.99) != 0 {
		t.Error("arg ≤ 1 must contribute 0")
	}
	// Loss ≥ 1 clamps rather than exploding.
	if v := logBaseInvLoss(1.5, 10, 0.99); math.IsInf(v, 0) || v < 0 {
		t.Errorf("clamped loss misbehaved: %v", v)
	}
}

func TestSigmoidShape(t *testing.T) {
	if s := sigmoid(0); math.Abs(s-0.5) > 1e-9 {
		t.Errorf("sigmoid(0) = %v", s)
	}
	if sigmoid(10) < 0.99 {
		t.Error("sigmoid should saturate")
	}
	if !(sigmoid(1) > sigmoid(0)) {
		t.Error("sigmoid not increasing")
	}
}
