package llmctx

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"skynet/internal/alert"
	"skynet/internal/hierarchy"
	"skynet/internal/incident"
)

var epoch = time.Date(2024, 7, 2, 11, 0, 0, 0, time.UTC)

func bigIncident(entries int) *incident.Incident {
	root := hierarchy.MustNew("RG01", "CT01", "LS01")
	in := incident.New(7, root)
	in.Severity = 42.5
	in.Zoomed = root.MustChild("ST01")
	for i := 0; i < entries; i++ {
		loc := root.MustChild("ST01").MustChild("CL01").MustChild("dev-" + string(rune('a'+i%20)) + string(rune('0'+i/20%10)))
		src := alert.SourcePing
		typ := alert.TypePacketLoss
		switch i % 3 {
		case 1:
			src, typ = alert.SourceSyslog, alert.TypeLinkDown
		case 2:
			src, typ = alert.SourceSNMP, alert.TypeTrafficCongestion
		}
		in.Add(alert.Alert{
			Source: src, Type: typ, Class: alert.Classify(src, typ),
			Time: epoch, End: epoch.Add(3 * time.Minute), Location: loc,
			Value: 0.25, Count: 3 + i,
			Raw: "%LINK-3-UPDOWN: Interface TenGigE0/0/0/1, changed state to down",
		})
	}
	return in
}

func TestBuildIncludesCoreSections(t *testing.T) {
	b := Build(DefaultConfig(), bigIncident(9))
	for _, want := range []string{
		"NETWORK INCIDENT 7",
		"location: RG01|CT01|LS01",
		"refined location (zoom-in): RG01|CT01|LS01|ST01",
		"severity: 42.5",
		"ROOT-CAUSE EVIDENCE:",
		"FAILURE BEHAVIOUR:",
		"QUESTION:",
	} {
		if !strings.Contains(b.Text, want) {
			t.Errorf("bundle missing %q:\n%s", want, b.Text)
		}
	}
	if b.Tokens <= 0 || b.Tokens > DefaultConfig().TokenBudget {
		t.Errorf("tokens = %d, budget %d", b.Tokens, DefaultConfig().TokenBudget)
	}
}

func TestRootCauseBeforeFailureBeforeAbnormal(t *testing.T) {
	b := Build(DefaultConfig(), bigIncident(9))
	rc := strings.Index(b.Text, "ROOT-CAUSE EVIDENCE:")
	fb := strings.Index(b.Text, "FAILURE BEHAVIOUR:")
	ab := strings.Index(b.Text, "ABNORMAL CONTEXT:")
	if rc < 0 || fb < 0 || ab < 0 {
		t.Fatalf("sections missing: %d %d %d", rc, fb, ab)
	}
	if !(rc < fb && fb < ab) {
		t.Error("sections out of diagnostic-value order")
	}
}

func TestBudgetEnforced(t *testing.T) {
	cfg := Config{TokenBudget: 120, MaxRawSamples: 2}
	b := Build(cfg, bigIncident(200))
	if b.Tokens > cfg.TokenBudget {
		t.Errorf("bundle %d tokens exceeds budget %d", b.Tokens, cfg.TokenBudget)
	}
	if !b.Truncated {
		t.Error("a 200-entry incident under 120 tokens must truncate")
	}
	// Scope always survives: it is the most valuable line.
	if !strings.Contains(b.Text, "NETWORK INCIDENT") {
		t.Error("scope section lost under truncation")
	}
}

func TestSmallIncidentNotTruncated(t *testing.T) {
	b := Build(DefaultConfig(), bigIncident(3))
	if b.Truncated {
		t.Error("small incident should fit whole")
	}
}

func TestRawSamplesBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxRawSamples = 1
	b := Build(cfg, bigIncident(30))
	// One sample per source at most.
	if n := strings.Count(b.Text, "[syslog] %LINK"); n > 1 {
		t.Errorf("syslog samples = %d, want ≤ 1", n)
	}
}

func TestDeterministic(t *testing.T) {
	a := Build(DefaultConfig(), bigIncident(25))
	b := Build(DefaultConfig(), bigIncident(25))
	if a.Text != b.Text {
		t.Error("bundle not deterministic")
	}
}

func TestZeroConfigFallsBack(t *testing.T) {
	b := Build(Config{}, bigIncident(3))
	if b.Tokens == 0 {
		t.Error("zero config produced empty bundle")
	}
}

func TestPropertyBudgetNeverExceeded(t *testing.T) {
	f := func(seed int64) bool {
		budget := 60 + int(seed%400+400)%400
		cfg := Config{TokenBudget: budget, MaxRawSamples: 2}
		entries := 1 + int(seed%97+97)%97
		b := Build(cfg, bigIncident(entries))
		return b.Tokens <= budget
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEstimateTokens(t *testing.T) {
	if EstimateTokens("") != 0 {
		t.Error("empty string should be 0 tokens")
	}
	if EstimateTokens("one two three") != 3 {
		t.Errorf("3 short words = %d tokens", EstimateTokens("one two three"))
	}
	long := strings.Repeat("x", 40)
	if EstimateTokens(long) < 5 {
		t.Error("long words should count as multiple tokens")
	}
}
