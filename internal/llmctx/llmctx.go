// Package llmctx implements the paper's LLM-integration future work (§9):
// "the time and location data extracted from incidents identified by
// SkyNet can serve as valuable inputs for LLMs. In theory, SkyNet
// truncates the monitoring results to maintain compliance with the LLM
// input length constraints without sacrificing valuable information."
//
// Build produces a deterministic plain-text diagnostic bundle for one
// incident under a hard token budget. Content is admitted in value order —
// scope and timing first, then root-cause evidence, then failure
// behaviour, then abnormal context, then raw message samples — so
// truncation removes the least diagnostic material first. §2.3's
// motivation is baked in: the raw feed (10M syslog lines / 15 min) can
// never fit a context window; an incident's distilled evidence can.
package llmctx

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"skynet/internal/alert"
	"skynet/internal/incident"
)

// Config bounds the bundle.
type Config struct {
	// TokenBudget is the hard limit, in estimated tokens.
	TokenBudget int
	// MaxRawSamples caps verbatim raw-message samples per source.
	MaxRawSamples int
}

// DefaultConfig targets a small prompt slice, leaving the window to the
// caller's instructions and other incidents.
func DefaultConfig() Config {
	return Config{TokenBudget: 1500, MaxRawSamples: 3}
}

// Bundle is the produced context.
type Bundle struct {
	// Text is the prompt-ready content.
	Text string
	// Tokens is the estimated token count of Text.
	Tokens int
	// Truncated reports whether the budget forced omissions.
	Truncated bool
	// Sections lists the included section names, in order.
	Sections []string
}

// EstimateTokens approximates LLM tokenization: one token per word piece,
// counting words and splitting long words. Deterministic and
// provider-agnostic — a budget guard, not an exact count.
func EstimateTokens(s string) int {
	n := 0
	for _, w := range strings.Fields(s) {
		n += 1 + len(w)/8
	}
	return n
}

// Build assembles the bundle for an incident.
func Build(cfg Config, in *incident.Incident) Bundle {
	if cfg.TokenBudget <= 0 {
		cfg = DefaultConfig()
	}
	b := builder{cfg: cfg}

	// Section 1: scope and timing — the §9 "time and location data".
	end := in.UpdateTime
	if !in.End.IsZero() {
		end = in.End
	}
	head := fmt.Sprintf(
		"NETWORK INCIDENT %d\nlocation: %s\nwindow: %s to %s (%s)\nseverity: %.1f\n",
		in.ID, in.Root,
		in.Start.Format(time.RFC3339), end.Format(time.RFC3339),
		end.Sub(in.Start).Round(time.Second), in.Severity)
	if !in.Zoomed.IsRoot() && in.Zoomed != in.Root {
		head += fmt.Sprintf("refined location (zoom-in): %s\n", in.Zoomed)
	}
	b.add("scope", head)

	// Sections 2–4: evidence by diagnostic value.
	b.add("root-cause evidence", classSection(in, alert.ClassRootCause))
	b.add("failure behaviour", classSection(in, alert.ClassFailure))
	b.add("abnormal context", classSection(in, alert.ClassAbnormal))

	// Section 5: verbatim raw samples, a few per source.
	b.add("raw samples", rawSamples(in, cfg.MaxRawSamples))

	// Closing instruction context.
	b.add("question", "task: identify the most likely root cause and the entity to repair.\n")
	return b.finish()
}

// classSection renders one evidence tier as compact lines:
// "syslog/link down at <loc>: 8 alerts over 4m30s (max 0.50)".
func classSection(in *incident.Incident, c alert.Class) string {
	type row struct {
		line string
		// weight orders rows within the section: more observations first.
		weight int
	}
	var rows []row
	slab := in.EntrySlab()
	for i := range slab {
		a := &slab[i].Alert
		if a.Class != c {
			continue
		}
		line := fmt.Sprintf("- %s/%s at %s: %d alerts over %s",
			a.Source, a.Type, a.Location, a.Count, a.Duration().Round(time.Second))
		if a.Value > 0 {
			line += fmt.Sprintf(" (max %.3g)", a.Value)
		}
		if a.CircuitSet != "" {
			line += " circuitset=" + a.CircuitSet
		}
		rows = append(rows, row{line: line + "\n", weight: a.Count})
	}
	if len(rows) == 0 {
		return ""
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].weight != rows[j].weight {
			return rows[i].weight > rows[j].weight
		}
		return rows[i].line < rows[j].line
	})
	var sb strings.Builder
	for _, r := range rows {
		sb.WriteString(r.line)
	}
	return sb.String()
}

// rawSamples extracts up to n verbatim raw messages per source, giving the
// model the exact vendor wording for the highest-count streams.
func rawSamples(in *incident.Incident, n int) string {
	perSource := map[alert.Source][]string{}
	counts := map[alert.Source][]int{}
	slab := in.EntrySlab()
	for i := range slab {
		a := &slab[i].Alert
		if a.Raw == "" {
			continue
		}
		perSource[a.Source] = append(perSource[a.Source], a.Raw)
		counts[a.Source] = append(counts[a.Source], a.Count)
	}
	if len(perSource) == 0 {
		return ""
	}
	srcs := make([]alert.Source, 0, len(perSource))
	for s := range perSource {
		srcs = append(srcs, s)
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	var sb strings.Builder
	for _, s := range srcs {
		lines := perSource[s]
		ws := counts[s]
		idx := make([]int, len(lines))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			if ws[idx[a]] != ws[idx[b]] {
				return ws[idx[a]] > ws[idx[b]]
			}
			return lines[idx[a]] < lines[idx[b]]
		})
		for i := 0; i < len(idx) && i < n; i++ {
			fmt.Fprintf(&sb, "[%s] %s\n", s, lines[idx[i]])
		}
	}
	return sb.String()
}

// builder accumulates sections under the budget.
type builder struct {
	cfg      Config
	out      strings.Builder
	tokens   int
	sections []string
	trunc    bool
}

// add appends a section, truncating line-wise when the budget runs short.
// Empty sections are skipped.
func (b *builder) add(name, content string) {
	if content == "" {
		return
	}
	header := strings.ToUpper(name) + ":\n"
	headerTokens := EstimateTokens(header)
	if b.tokens+headerTokens >= b.cfg.TokenBudget {
		b.trunc = true
		return
	}
	var kept []string
	budgetLeft := b.cfg.TokenBudget - b.tokens - headerTokens
	for _, line := range strings.SplitAfter(content, "\n") {
		if line == "" {
			continue
		}
		lt := EstimateTokens(line)
		if lt > budgetLeft {
			b.trunc = true
			break
		}
		kept = append(kept, line)
		budgetLeft -= lt
	}
	if len(kept) == 0 {
		b.trunc = true
		return
	}
	b.out.WriteString(header)
	for _, l := range kept {
		b.out.WriteString(l)
	}
	b.out.WriteString("\n")
	b.tokens = EstimateTokens(b.out.String())
	b.sections = append(b.sections, name)
}

func (b *builder) finish() Bundle {
	return Bundle{
		Text:      b.out.String(),
		Tokens:    EstimateTokens(b.out.String()),
		Truncated: b.trunc,
		Sections:  b.sections,
	}
}
