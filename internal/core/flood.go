package core

import (
	"time"

	"skynet/internal/alert"
	"skynet/internal/flood"
	"skynet/internal/incident"
	"skynet/internal/span"
)

// EnableFlood attaches a flood-episode recorder to the engine: every
// raw alert feeds the detector's rate tap, and every tick advances its
// episode state machine. While an episode is open the engine threads
// its ID through the other observability layers — the tick's span trace
// and the provenance records of incidents attributed to the episode —
// so metrics, traces, lineage, and flood reports all join on one key.
// Call before the first Ingest/Tick; with no recorder the pipeline
// takes no flood branches.
func (e *Engine) EnableFlood(r *flood.Recorder) {
	e.flood = r
}

// Flood returns the attached flood recorder (nil when disabled).
func (e *Engine) Flood() *flood.Recorder { return e.flood }

// observeFlood runs the flood detector for one tick and tags the
// tick's telemetry with the resulting episode ID. Called near the end
// of Tick, once the incident population has settled, with the tick's
// still-open span builder so the trace carries the episode.
func (e *Engine) observeFlood(now time.Time, structured []alert.Alert, created, active []*incident.Incident, act *span.Active) {
	closedInc := e.loc.ClosedSince(e.floodClosedSeen)
	e.floodClosedSeen = e.loc.ClosedCount()
	out := e.flood.ObserveTick(now, e.tickCount, structured, created, active, closedInc)
	// Keep the profiler's episode label in lockstep with the detector:
	// tag label contexts when an episode opens, untag when it closes —
	// the close transition is why this runs before the idle early-return.
	if e.profL != nil && out.EpisodeID != e.profEpisode {
		e.profL.SetEpisode(out.EpisodeID)
		e.profEpisode = out.EpisodeID
	}
	if out.EpisodeID == 0 {
		return
	}
	act.SetEpisode(out.EpisodeID)
	if e.prov != nil {
		for _, id := range out.Adopted {
			e.prov.SetEpisode(id, out.EpisodeID)
		}
	}
}
