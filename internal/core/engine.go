// Package core wires SkyNet's three modules — preprocessor, locator,
// evaluator — into the streaming analysis engine of Figure 5a, together
// with location zoom-in and the automatic-SOP hook for known failures.
//
// The engine is clock-driven: Ingest accepts raw alerts from any source
// (monitor fleets, network listeners, trace replays) and Tick advances the
// pipeline, returning what changed. All times are explicit; the engine
// never reads the wall clock, which makes replays and simulations exact.
package core

import (
	"sort"
	"time"

	"skynet/internal/alert"
	"skynet/internal/evaluator"
	"skynet/internal/ftree"
	"skynet/internal/incident"
	"skynet/internal/locator"
	"skynet/internal/preprocess"
	"skynet/internal/sop"
	"skynet/internal/telemetry"
	"skynet/internal/topology"
	"skynet/internal/zoomin"
)

// Config aggregates the per-module configurations.
type Config struct {
	Preprocess preprocess.Config
	Locator    locator.Config
	Evaluator  evaluator.Config
	Zoom       zoomin.Config
	// EnableSOP turns on automatic mitigation of known failures.
	EnableSOP bool
}

// DefaultConfig returns the production parameters of every module.
func DefaultConfig() Config {
	return Config{
		Preprocess: preprocess.DefaultConfig(),
		Locator:    locator.DefaultConfig(),
		Evaluator:  evaluator.DefaultConfig(),
		Zoom:       zoomin.DefaultConfig(),
		EnableSOP:  true,
	}
}

// TickResult reports what one pipeline tick produced.
type TickResult struct {
	// Structured is the number of preprocessed alerts that entered the
	// locator this tick.
	Structured int
	// NewIncidents are incidents created this tick, already zoomed and
	// scored.
	NewIncidents []*incident.Incident
	// SOPExecutions are automatic mitigations applied this tick.
	SOPExecutions []*sop.Execution
}

// Engine is the SkyNet pipeline. Not safe for concurrent use; callers
// serialize Ingest/Tick (the ingest layer does this).
type Engine struct {
	cfg  Config
	topo *topology.Topology

	pre     *preprocess.Preprocessor
	loc     *locator.Locator
	eval    *evaluator.Evaluator
	refiner *zoomin.Refiner
	sopEng  *sop.Engine

	samples []zoomin.Sample

	rawIn int

	// Telemetry is optional; all fields below are nil/zero until
	// EnableTelemetry, and the pipeline takes no telemetry branches then.
	tel        *pipelineMetrics
	journal    *telemetry.Journal
	lastState  map[int]incidentState
	closedSeen int
}

// NewEngine assembles a pipeline. classifier may be nil (raw syslog is
// then dropped); topo may be nil (connectivity scoping and SOP disabled);
// sopExec may be nil (SOP disabled).
func NewEngine(cfg Config, topo *topology.Topology, classifier *ftree.Classifier, sopExec sop.Executor, sopUtil sop.TrafficOracle) *Engine {
	e := &Engine{
		cfg:     cfg,
		topo:    topo,
		pre:     preprocess.New(cfg.Preprocess, topo, classifier),
		loc:     locator.New(cfg.Locator, topo),
		eval:    evaluator.New(cfg.Evaluator, topo),
		refiner: zoomin.NewRefiner(cfg.Zoom),
	}
	if cfg.EnableSOP && topo != nil && sopExec != nil {
		e.sopEng = sop.NewEngine(topo, sopExec, sopUtil)
	}
	return e
}

// Ingest feeds one raw alert into the preprocessor.
func (e *Engine) Ingest(a alert.Alert) {
	e.rawIn++
	if e.tel != nil {
		e.tel.rawIngested.Inc()
	}
	e.pre.Add(a)
}

// SetReachability installs the latest end-to-end ping observations used by
// location zoom-in's reachability matrix.
func (e *Engine) SetReachability(samples []zoomin.Sample) {
	e.samples = samples
}

// Tick advances the pipeline to now: flushes the preprocessor into the
// locator, runs incident generation and expiry, refines and scores
// incidents, and applies automatic SOPs to new ones.
func (e *Engine) Tick(now time.Time) TickResult {
	var res TickResult
	tel := e.tel
	var start, mark time.Time
	if tel != nil {
		start = time.Now()
		mark = start
	}
	structured := e.pre.Tick(now)
	res.Structured = len(structured)
	if tel != nil {
		mark = tel.observe(tel.stagePreprocess, mark)
	}
	for i := range structured {
		e.loc.Add(structured[i])
	}
	res.NewIncidents = e.loc.Check(now)
	if tel != nil {
		mark = tel.observe(tel.stageLocate, mark)
	}
	// Refine and (re)score every active incident so severity escalates
	// with duration (Eq. 2's ΔT term).
	active := e.loc.Active()
	for _, in := range active {
		e.refiner.Refine(in, e.samples)
		e.eval.Score(in, now)
	}
	if tel != nil {
		mark = tel.observe(tel.stageEvaluate, mark)
	}
	if e.sopEng != nil {
		for _, in := range res.NewIncidents {
			if exec, ok := e.sopEng.Consider(in, now); ok {
				res.SOPExecutions = append(res.SOPExecutions, exec)
			}
		}
	}
	if tel != nil {
		tel.observe(tel.stageSOP, mark)
		tel.tickSeconds.Observe(time.Since(start).Seconds())
		tel.ticks.Inc()
		tel.structured.Add(int64(res.Structured))
		tel.structuredLast.SetInt(res.Structured)
		tel.incidentsCreated.Add(int64(len(res.NewIncidents)))
		tel.sopExecutions.Add(int64(len(res.SOPExecutions)))
		tel.activeIncidents.SetInt(e.loc.ActiveCount())
		tel.closedIncidents.SetInt(e.loc.ClosedCount())
	}
	if e.journal != nil {
		e.observeLifecycle(now, res.NewIncidents, active)
	}
	return res
}

// Active returns the open incidents, oldest first.
func (e *Engine) Active() []*incident.Incident { return e.loc.Active() }

// Closed returns timed-out incidents.
func (e *Engine) Closed() []*incident.Incident { return e.loc.Closed() }

// AllIncidents returns every incident the engine has produced, by ID.
func (e *Engine) AllIncidents() []*incident.Incident {
	out := append(e.loc.Closed(), e.loc.Active()...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Severe returns the active incidents clearing the severity filter,
// highest severity first — the ranked feed of §6.4.
func (e *Engine) Severe() []*incident.Incident {
	return e.eval.Filter(e.loc.Active())
}

// PreprocessStats exposes the preprocessor's volume counters.
func (e *Engine) PreprocessStats() preprocess.Stats { return e.pre.Stats() }

// RawIngested reports the number of raw alerts seen.
func (e *Engine) RawIngested() int { return e.rawIn }

// SOP exposes the SOP engine (nil when disabled).
func (e *Engine) SOP() *sop.Engine { return e.sopEng }

// Evaluator exposes the evaluator for ad-hoc scoring.
func (e *Engine) Evaluator() *evaluator.Evaluator { return e.eval }
