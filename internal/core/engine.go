// Package core wires SkyNet's three modules — preprocessor, locator,
// evaluator — into the streaming analysis engine of Figure 5a, together
// with location zoom-in and the automatic-SOP hook for known failures.
//
// The engine is clock-driven: Ingest accepts raw alerts from any source
// (monitor fleets, network listeners, trace replays) and Tick advances the
// pipeline, returning what changed. All times are explicit; the engine
// never reads the wall clock, which makes replays and simulations exact.
//
// # Parallel execution
//
// Config.Workers fans the heavy stages out across goroutines: FT-tree
// classification and aggregation shards in the preprocessor, the
// location-sharded main alert tree in the locator, and per-incident
// zoom-in plus severity scoring in the evaluation stage. Every parallel
// phase writes only single-owner state and merges serially, so incident
// sets, IDs, and severities are bit-identical for every worker count —
// replays stay exact. Scoring is additionally incremental: an incident is
// only re-refined and re-scored when its content revision, the
// reachability samples, or the Eq. 2 time clamp could have changed its
// result.
package core

import (
	"slices"
	"sort"
	"sync/atomic"
	"time"

	"skynet/internal/alert"
	"skynet/internal/evaluator"
	"skynet/internal/fanout"
	"skynet/internal/flood"
	"skynet/internal/ftree"
	"skynet/internal/hierarchy"
	"skynet/internal/incident"
	"skynet/internal/locator"
	"skynet/internal/par"
	"skynet/internal/preprocess"
	"skynet/internal/prof"
	"skynet/internal/provenance"
	"skynet/internal/slo"
	"skynet/internal/sop"
	"skynet/internal/span"
	"skynet/internal/telemetry"
	"skynet/internal/topology"
	"skynet/internal/tsdb"
	"skynet/internal/zoomin"
)

// evalStatePruneInterval is how many ticks pass between sweeps of the
// incremental evaluator's per-incident state map (entries for incidents
// that left the active set — closed or absorbed — are dropped).
const evalStatePruneInterval = 64

// Config aggregates the per-module configurations.
type Config struct {
	Preprocess preprocess.Config
	Locator    locator.Config
	Evaluator  evaluator.Config
	Zoom       zoomin.Config
	// EnableSOP turns on automatic mitigation of known failures.
	EnableSOP bool
	// Workers bounds the goroutine fan-out of every parallel stage.
	// 0 means GOMAXPROCS, 1 runs the whole pipeline serially. It is
	// copied into Preprocess.Workers and Locator.Workers unless those
	// are set explicitly. Output is identical for every setting.
	Workers int
}

// DefaultConfig returns the production parameters of every module.
func DefaultConfig() Config {
	return Config{
		Preprocess: preprocess.DefaultConfig(),
		Locator:    locator.DefaultConfig(),
		Evaluator:  evaluator.DefaultConfig(),
		Zoom:       zoomin.DefaultConfig(),
		EnableSOP:  true,
	}
}

// TickResult reports what one pipeline tick produced.
type TickResult struct {
	// Structured is the number of preprocessed alerts that entered the
	// locator this tick.
	Structured int
	// NewIncidents are incidents created this tick, already zoomed and
	// scored.
	NewIncidents []*incident.Incident
	// SOPExecutions are automatic mitigations applied this tick.
	SOPExecutions []*sop.Execution
}

// evalState is the incremental evaluator's memory of the inputs the last
// Refine+Score of one incident saw.
type evalState struct {
	rev  uint64    // incident content revision
	gen  uint64    // reachability-sample generation
	now  time.Time // evaluation time of the last scoring
	seen uint64    // last tick the incident was active (for pruning)
}

// Engine is the SkyNet pipeline. Not safe for concurrent use; callers
// serialize Ingest/Tick (the ingest layer does this). Tick internally
// fans out to Config.Workers goroutines.
type Engine struct {
	cfg     Config
	topo    *topology.Topology
	workers int

	pre     *preprocess.Preprocessor
	loc     *locator.Locator
	eval    *evaluator.Evaluator
	refiner *zoomin.Refiner
	sopEng  *sop.Engine

	samples   []zoomin.Sample
	sampleGen uint64

	evalStates map[int]evalState
	evalDirty  []*incident.Incident
	activeBuf  []*incident.Incident
	tickCount  uint64

	rawIn int

	// Telemetry is optional; all fields below are nil/zero until
	// EnableTelemetry, and the pipeline takes no telemetry branches then.
	tel        *pipelineMetrics
	reg        *telemetry.Registry
	journal    *telemetry.Journal
	lastState  map[int]incidentState
	closedSeen int

	// Tracing is optional; nil until EnableTracing.
	tracer  *span.Tracer
	spanTel *spanMetrics

	// Provenance is optional; nil until EnableProvenance.
	prov    *provenance.Recorder
	provBds []evaluator.Breakdown

	// Flood detection is optional; nil until EnableFlood.
	flood           *flood.Recorder
	floodClosedSeen int

	// Telemetry history + self-SLO are optional; nil until EnableHistory
	// and EnableSLO. latModel, when set, replaces the measured tick
	// latency with a deterministic function of the tick index.
	hist        *tsdb.Sampler
	sloEng      *slo.Engine
	sloLocs     []hierarchy.Path
	selfMon     bool
	selfAlertsN atomic.Int64
	latModel    func(tick uint64) time.Duration

	// Continuous profiling + runtime sampling are optional; nil until
	// EnableProfiling / EnableRuntimeMetrics. profL's methods are
	// nil-receiver safe, so the hot path calls them unconditionally.
	profL       *prof.Labeler
	profEpisode uint64
	rtm         *prof.Runtime

	// Fan-out serving is optional; nil until EnableFanout. The tick's
	// snapshot and delta documents are built directly into hub-pooled
	// scratch (AcquireDelta/AcquireSnapshot) and ownership transfers on
	// publish; only the seen set is engine-owned.
	fan           *fanout.Hub
	fanSeen       map[int]struct{}
	fanClosedSeen int
}

// NewEngine assembles a pipeline. classifier may be nil (raw syslog is
// then dropped); topo may be nil (connectivity scoping and SOP disabled);
// sopExec may be nil (SOP disabled).
func NewEngine(cfg Config, topo *topology.Topology, classifier *ftree.Classifier, sopExec sop.Executor, sopUtil sop.TrafficOracle) *Engine {
	if cfg.Workers != 0 {
		if cfg.Preprocess.Workers == 0 {
			cfg.Preprocess.Workers = cfg.Workers
		}
		if cfg.Locator.Workers == 0 {
			cfg.Locator.Workers = cfg.Workers
		}
	}
	e := &Engine{
		cfg:        cfg,
		topo:       topo,
		workers:    par.Workers(cfg.Workers),
		pre:        preprocess.New(cfg.Preprocess, topo, classifier),
		loc:        locator.New(cfg.Locator, topo),
		eval:       evaluator.New(cfg.Evaluator, topo),
		refiner:    zoomin.NewRefiner(cfg.Zoom),
		evalStates: make(map[int]evalState),
	}
	if cfg.EnableSOP && topo != nil && sopExec != nil {
		e.sopEng = sop.NewEngine(topo, sopExec, sopUtil)
	}
	return e
}

// Workers reports the resolved evaluation-stage fan-out width.
func (e *Engine) Workers() int { return e.workers }

// PreprocessShards reports the preprocessor's resolved shard count.
func (e *Engine) PreprocessShards() int { return e.pre.Workers() }

// LocatorShards reports the locator's resolved shard count.
func (e *Engine) LocatorShards() int { return e.loc.Workers() }

// Ingest feeds one raw alert into the preprocessor.
func (e *Engine) Ingest(a alert.Alert) {
	e.rawIn++
	if e.tel != nil {
		e.tel.rawIngested.Inc()
	}
	if e.flood != nil {
		e.flood.ObserveRaw(a)
	}
	e.pre.Add(a)
}

// IngestBatch feeds a columnar batch of raw alerts into the preprocessor
// in one call — the bulk twin of Ingest, avoiding a per-alert struct copy
// through the call chain. The batch is consumed by value into the
// preprocessor's pending columns; the caller may Reset and refill it
// immediately.
func (e *Engine) IngestBatch(b *alert.Batch) {
	n := b.Len()
	if n == 0 {
		return
	}
	e.rawIn += n
	if e.tel != nil {
		e.tel.rawIngested.Add(int64(n))
	}
	if e.flood != nil {
		var a alert.Alert
		for i := 0; i < n; i++ {
			b.AlertAt(i, &a)
			e.flood.ObserveRaw(a)
		}
	}
	e.pre.AddBatch(b)
}

// SetReachability installs the latest end-to-end ping observations used by
// location zoom-in's reachability matrix. Installing an identical sample
// set is free; a changed set marks every active incident for re-refining.
func (e *Engine) SetReachability(samples []zoomin.Sample) {
	if !slices.Equal(samples, e.samples) {
		e.sampleGen++
	}
	e.samples = samples
}

// Tick advances the pipeline to now: flushes the preprocessor into the
// locator, runs incident generation and expiry, refines and scores
// incidents, and applies automatic SOPs to new ones.
func (e *Engine) Tick(now time.Time) TickResult {
	var res TickResult
	e.tickCount++
	tel := e.tel
	var start, mark time.Time
	if tel != nil || e.hist != nil {
		start = time.Now()
		mark = start
	}
	if tel != nil {
		tel.prePending.SetInt(e.pre.PendingDepth())
	}
	act := e.tracer.StartTick(e.tickCount, now) // nil when tracing is off
	preR := act.Begin(span.Root, "preprocess")
	if act != nil {
		e.pre.SetSpans(act.Scope(preR))
	}
	structured := e.pre.Tick(now)
	res.Structured = len(structured)
	act.End(preR, len(structured))
	if tel != nil {
		mark = tel.observe(tel.stagePreprocess, mark)
	}
	locR := act.Begin(span.Root, "locate")
	abR := act.Begin(locR, "addbatch")
	if act != nil {
		e.loc.SetSpans(act.Scope(abR))
	}
	e.profL.Enter(prof.StageLocatorAdd)
	e.loc.AddBatch(structured)
	e.profL.Exit()
	act.End(abR, len(structured))
	ckR := act.Begin(locR, "check")
	if act != nil {
		e.loc.SetSpans(act.Scope(ckR))
	}
	res.NewIncidents = e.loc.Check(now)
	act.End(ckR, len(res.NewIncidents))
	act.End(locR, len(structured))
	if tel != nil {
		mark = tel.observe(tel.stageLocate, mark)
	}
	// Refine and (re)score active incidents so severity escalates with
	// duration (Eq. 2's ΔT term). An incident is dirty — needs the full
	// Refine+Score — when its content changed (rev), the reachability
	// samples changed (gen), or the previous scoring clamped Eq. 2's
	// duration at the evaluation time (now < UpdateTime), so a later now
	// yields a different ΔT. Otherwise both are pure functions of
	// unchanged inputs and the stored Severity/Zoomed are already exact.
	active := e.loc.ActiveAppend(e.activeBuf[:0])
	e.activeBuf = active
	evR := act.Begin(span.Root, "evaluate")
	dirty := e.evalDirty[:0]
	for _, in := range active {
		st, ok := e.evalStates[in.ID]
		if !ok || st.rev != in.Rev() || st.gen != e.sampleGen || st.now.Before(in.UpdateTime) {
			dirty = append(dirty, in)
		}
	}
	rf := act.Scope(evR).Fork("refine_score", len(dirty))
	e.profL.Enter(prof.StageRefineScore)
	if e.prov != nil {
		if cap(e.provBds) < len(dirty) {
			e.provBds = make([]evaluator.Breakdown, len(dirty))
		}
		bds := e.provBds[:len(dirty)]
		par.DoTimed(e.workers, len(dirty), rf.Timer(), func(i int) {
			in := dirty[i]
			e.refiner.Refine(in, e.samples)
			bds[i] = e.eval.Score(in, now)
		})
		e.recordScores(now, dirty, bds)
	} else {
		par.DoTimed(e.workers, len(dirty), rf.Timer(), func(i int) {
			in := dirty[i]
			e.refiner.Refine(in, e.samples)
			e.eval.Score(in, now)
		})
	}
	e.profL.Exit()
	for _, in := range dirty {
		e.evalStates[in.ID] = evalState{rev: in.Rev(), gen: e.sampleGen, now: now, seen: e.tickCount}
	}
	e.evalDirty = dirty
	if e.tickCount%evalStatePruneInterval == 0 {
		e.pruneEvalStates(active)
	}
	act.End(evR, len(dirty))
	if tel != nil {
		mark = tel.observe(tel.stageEvaluate, mark)
		tel.evalRescored.Add(int64(len(dirty)))
		tel.evalSkipped.Add(int64(len(active) - len(dirty)))
	}
	sopR := act.Begin(span.Root, "sop")
	if e.sopEng != nil {
		e.profL.Enter(prof.StageSOP)
		for _, in := range res.NewIncidents {
			if exec, ok := e.sopEng.Consider(in, now); ok {
				res.SOPExecutions = append(res.SOPExecutions, exec)
			}
		}
		e.profL.Exit()
	}
	act.End(sopR, len(res.SOPExecutions))
	if tel != nil {
		tel.observe(tel.stageSOP, mark)
		tel.tickSeconds.Observe(time.Since(start).Seconds())
		tel.ticks.Inc()
		tel.structured.Add(int64(res.Structured))
		tel.structuredLast.SetInt(res.Structured)
		tel.incidentsCreated.Add(int64(len(res.NewIncidents)))
		tel.sopExecutions.Add(int64(len(res.SOPExecutions)))
		tel.activeIncidents.SetInt(e.loc.ActiveCount())
		tel.closedIncidents.SetInt(e.loc.ClosedCount())
		tel.observeShards(e.pre, e.loc)
	}
	if e.journal != nil {
		e.observeLifecycle(now, res.NewIncidents, active)
	}
	if e.flood != nil {
		e.observeFlood(now, structured, res.NewIncidents, active, act)
	}
	if tr := act.Finish(); tr != nil && e.spanTel != nil {
		e.spanTel.observe(tr)
	}
	// Runtime sampling refreshes the skynet_runtime_ gauges before the
	// history sample is cut, so each tick's history row carries the GC /
	// scheduler state as of that tick. Nil-safe no-op when disabled.
	e.rtm.Refresh()
	// History sampling runs last so this tick's counters, gauges, and
	// span aggregates are all final before the sample is cut. It may
	// inject self-alerts, which enter the preprocessor's pending buffer
	// for the NEXT tick — nothing this tick already computed moves.
	if e.hist != nil {
		e.observeHistory(now, start)
	}
	// Fan-out publish is the true tail of the tick: one snapshot + one
	// delta, encoded once, pushed into the serving hub's ring. Cost is
	// independent of the subscriber count.
	if e.fan != nil {
		e.observeFanout(now, &res, active)
	}
	return res
}

// pruneEvalStates drops incremental-evaluator state for incidents no
// longer active (closed, or absorbed into a larger incident).
func (e *Engine) pruneEvalStates(active []*incident.Incident) {
	for _, in := range active {
		st := e.evalStates[in.ID]
		st.seen = e.tickCount
		e.evalStates[in.ID] = st
	}
	for id, st := range e.evalStates {
		if st.seen != e.tickCount {
			delete(e.evalStates, id)
		}
	}
}

// Active returns the open incidents, oldest first. The slice is a fresh
// copy the caller owns; the incidents themselves are shared.
func (e *Engine) Active() []*incident.Incident { return e.loc.Active() }

// Closed returns timed-out incidents. The slice is a fresh copy the
// caller owns.
func (e *Engine) Closed() []*incident.Incident { return e.loc.Closed() }

// AllIncidents returns every incident the engine has produced, by ID. The
// returned slice is freshly allocated on every call — callers may sort,
// filter, or append to it without affecting the engine.
func (e *Engine) AllIncidents() []*incident.Incident {
	closed := e.loc.Closed()
	active := e.loc.Active()
	out := make([]*incident.Incident, 0, len(closed)+len(active))
	out = append(out, closed...)
	out = append(out, active...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Severe returns the active incidents clearing the severity filter,
// highest severity first — the ranked feed of §6.4.
func (e *Engine) Severe() []*incident.Incident {
	return e.eval.Filter(e.loc.Active())
}

// PreprocessStats exposes the preprocessor's volume counters.
func (e *Engine) PreprocessStats() preprocess.Stats { return e.pre.Stats() }

// RawIngested reports the number of raw alerts seen.
func (e *Engine) RawIngested() int { return e.rawIn }

// SOP exposes the SOP engine (nil when disabled).
func (e *Engine) SOP() *sop.Engine { return e.sopEng }

// Evaluator exposes the evaluator for ad-hoc scoring.
func (e *Engine) Evaluator() *evaluator.Evaluator { return e.eval }
