package core

import (
	"strings"
	"testing"
	"time"

	"skynet/internal/scenario"
	"skynet/internal/telemetry"
)

// instrumentedRunner is newRunner with a registry and journal attached.
func instrumentedRunner(t *testing.T) (*Runner, *telemetry.Registry, *telemetry.Journal) {
	t.Helper()
	topo := smallTopo()
	r := newRunner(t, topo)
	reg := telemetry.New()
	j := telemetry.NewJournal(0)
	r.Engine.EnableTelemetry(reg, j)
	return r, reg, j
}

func findMetric(t *testing.T, reg *telemetry.Registry, name string) telemetry.MetricSnapshot {
	t.Helper()
	for _, s := range reg.Snapshot() {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("metric %s not registered", name)
	return telemetry.MetricSnapshot{}
}

func TestTelemetryCountersTrackPipeline(t *testing.T) {
	r, reg, _ := instrumentedRunner(t)
	sc := scenario.FiberCutSevere(r.Sim.Topology(), epoch.Add(time.Minute))
	if err := sc.Inject(r.Sim); err != nil {
		t.Fatal(err)
	}
	stats, err := r.Run(epoch, epoch.Add(8*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if got := findMetric(t, reg, "skynet_raw_alerts_total").Value; int(got) != stats.RawAlerts {
		t.Errorf("raw counter = %v, runner saw %d", got, stats.RawAlerts)
	}
	if got := findMetric(t, reg, "skynet_structured_alerts_total").Value; int(got) != stats.Structured {
		t.Errorf("structured counter = %v, runner saw %d", got, stats.Structured)
	}
	if got := findMetric(t, reg, "skynet_incidents_created_total").Value; int(got) != stats.NewIncidents {
		t.Errorf("created counter = %v, runner saw %d", got, stats.NewIncidents)
	}
	if got := findMetric(t, reg, "skynet_active_incidents").Value; int(got) != len(r.Engine.Active()) {
		t.Errorf("active gauge = %v, engine has %d", got, len(r.Engine.Active()))
	}
	ticks := findMetric(t, reg, "skynet_ticks_total").Value
	if ticks == 0 {
		t.Fatal("no ticks counted")
	}
	// Every stage histogram must have one observation per tick, and the
	// full-tick histogram must dominate each stage's sum.
	tick := findMetric(t, reg, "skynet_tick_seconds").Hist
	if tick == nil || tick.Count != int64(ticks) {
		t.Fatalf("tick histogram = %+v, want count %v", tick, ticks)
	}
	for _, name := range []string{
		"skynet_stage_preprocess_seconds",
		"skynet_stage_locate_seconds",
		"skynet_stage_evaluate_seconds",
		"skynet_stage_sop_seconds",
	} {
		h := findMetric(t, reg, name).Hist
		if h == nil || h.Count != int64(ticks) {
			t.Errorf("%s count = %+v, want %v", name, h, ticks)
		}
		if h != nil && h.Sum > tick.Sum {
			t.Errorf("%s sum %v exceeds whole-tick sum %v", name, h.Sum, tick.Sum)
		}
	}
	// The exposition must render without error and carry the counters.
	var b strings.Builder
	if err := reg.Expose(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "skynet_raw_alerts_total") {
		t.Error("exposition missing raw counter")
	}
}

func TestJournalLifecycleForSevereFailure(t *testing.T) {
	r, _, j := instrumentedRunner(t)
	sc := scenario.FiberCutSevere(r.Sim.Topology(), epoch.Add(time.Minute))
	if err := sc.Inject(r.Sim); err != nil {
		t.Fatal(err)
	}
	// Run past the 15-minute incident TTL so the incident closes.
	if _, err := r.Run(epoch, epoch.Add(6*time.Minute)); err != nil {
		t.Fatal(err)
	}
	for now := epoch.Add(6 * time.Minute); now.Before(epoch.Add(25 * time.Minute)); now = now.Add(time.Minute) {
		r.Engine.Tick(now)
	}
	events := j.Events()
	if len(events) == 0 {
		t.Fatal("journal empty after severe failure")
	}
	byType := map[telemetry.EventType]int{}
	created := map[int]bool{}
	var prevSeq int64 = -1
	var prevTime time.Time
	for _, e := range events {
		byType[e.Type]++
		if e.Seq <= prevSeq {
			t.Fatalf("journal out of order: seq %d after %d", e.Seq, prevSeq)
		}
		if e.Time.Before(prevTime) {
			t.Fatalf("journal time regressed at seq %d", e.Seq)
		}
		prevSeq, prevTime = e.Seq, e.Time
		switch e.Type {
		case telemetry.EventCreated:
			created[e.Incident] = true
			if e.Alerts == 0 {
				t.Errorf("created event %d has no alert provenance", e.Incident)
			}
		case telemetry.EventClosed:
			if !created[e.Incident] {
				t.Errorf("incident %d closed without a created event", e.Incident)
			}
		}
	}
	if byType[telemetry.EventCreated] == 0 {
		t.Error("no created events")
	}
	if byType[telemetry.EventClosed] == 0 {
		t.Error("no closed events (incident never timed out)")
	}
	if byType[telemetry.EventUpdated]+byType[telemetry.EventScored] == 0 {
		t.Error("no updated/scored events during the flood")
	}
	if len(r.Engine.Active()) != 0 {
		t.Errorf("%d incidents still active after TTL", len(r.Engine.Active()))
	}
}

func TestUninstrumentedEngineUnchanged(t *testing.T) {
	// Two engines fed identically — one instrumented — must produce the
	// same incidents: telemetry observes, never steers.
	topoA := smallTopo()
	a := newRunner(t, topoA)
	b := newRunner(t, smallTopo())
	b.Engine.EnableTelemetry(telemetry.New(), telemetry.NewJournal(0))
	sc := scenario.FiberCutSevere(topoA, epoch.Add(time.Minute))
	if err := sc.Inject(a.Sim); err != nil {
		t.Fatal(err)
	}
	scB := scenario.FiberCutSevere(b.Sim.Topology(), epoch.Add(time.Minute))
	if err := scB.Inject(b.Sim); err != nil {
		t.Fatal(err)
	}
	sa, err := a.Run(epoch, epoch.Add(6*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Run(epoch, epoch.Add(6*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if sa != sb {
		t.Errorf("instrumented run diverged: %+v vs %+v", sa, sb)
	}
	if len(a.Engine.Active()) != len(b.Engine.Active()) {
		t.Errorf("active incidents diverged: %d vs %d",
			len(a.Engine.Active()), len(b.Engine.Active()))
	}
}
