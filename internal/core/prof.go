package core

import (
	"skynet/internal/prof"
)

// EnableProfiling attaches pprof stage labels to the pipeline: the
// engine's refine_score/sop/locator-add sections and the preprocessor's
// and locator's internal fan-outs run under the labeler's precomputed
// `stage` (+ `shard`, + flood `episode`) label contexts, so CPU, mutex,
// and block profiles attribute their samples to pipeline stages. Call
// before the first Tick; one labeler per process (it owns the par spawn
// hook). With no labeler the hot path takes only nil-receiver calls.
func (e *Engine) EnableProfiling(l *prof.Labeler) {
	e.profL = l
	e.pre.SetProf(l)
	e.loc.SetProf(l)
}

// MaxShards reports the widest fan-out any stage runs — the shard-label
// capacity a prof.Labeler for this engine needs.
func (e *Engine) MaxShards() int {
	n := e.workers
	if s := e.pre.Workers(); s > n {
		n = s
	}
	if s := e.loc.Workers(); s > n {
		n = s
	}
	return n
}

// EnableRuntimeMetrics attaches a runtime/metrics sampler: each Tick
// refreshes the skynet_runtime_ gauges (GC pauses, heap, goroutines,
// scheduler latency) right before the history sample is cut. The series
// are host-dependent and therefore excluded from deterministic replay
// snapshots by tsdb.DeterministicFilter.
func (e *Engine) EnableRuntimeMetrics(r *prof.Runtime) {
	e.rtm = r
}
