package core

import (
	"time"

	"skynet/internal/evaluator"
	"skynet/internal/incident"
	"skynet/internal/provenance"
)

// EnableProvenance attaches a lineage recorder to the engine and both
// stateful pipeline stages. Call before the first Ingest/Tick; with no
// recorder the pipeline takes no provenance branches.
func (e *Engine) EnableProvenance(rec *provenance.Recorder) {
	e.prov = rec
	e.pre.EnableProvenance(rec)
	e.loc.EnableProvenance(rec)
}

// Provenance returns the attached lineage recorder (nil when disabled).
func (e *Engine) Provenance() *provenance.Recorder { return e.prov }

// recordScores publishes the §4.3 evidence behind this tick's re-scored
// incidents onto their provenance records. Runs serially after the
// parallel Refine+Score phase; bds[i] belongs to dirty[i].
func (e *Engine) recordScores(now time.Time, dirty []*incident.Incident, bds []evaluator.Breakdown) {
	for i, in := range dirty {
		b := &bds[i]
		sr := &provenance.ScoreRecord{
			At:                 now,
			Severity:           b.Severity,
			Impact:             b.Impact,
			TimeFactor:         b.TimeFactor,
			R:                  b.R,
			L:                  b.L,
			DurationUnits:      b.DurationUnits,
			ImportantCustomers: b.ImportantCustomers,
			Sigmoid:            b.Sigmoid,
			TimeArg:            b.TimeArg,
		}
		if !in.Zoomed.IsRoot() && in.Zoomed != in.Root {
			sr.Zoomed = in.Zoomed.String()
		}
		if len(b.Circuits) > 0 {
			sr.Circuits = make([]provenance.CircuitTerm, len(b.Circuits))
			for j, c := range b.Circuits {
				sr.Circuits[j] = provenance.CircuitTerm{
					Name:         c.Name,
					BreakRatio:   c.BreakRatio,
					SLAOverRatio: c.SLAOverRatio,
					Importance:   c.Importance,
					Customers:    c.Customers,
					Contribution: c.Contribution,
				}
			}
		}
		e.prov.RecordScore(in.ID, sr)
	}
}
