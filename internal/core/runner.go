package core

import (
	"fmt"
	"slices"
	"time"

	"skynet/internal/alert"
	"skynet/internal/monitors"
	"skynet/internal/netsim"
	"skynet/internal/preprocess"
	"skynet/internal/sop"
	"skynet/internal/topology"
	"skynet/internal/zoomin"
)

// Runner binds a simulator, a monitor fleet, and an engine into one
// closed loop: the standard harness for scenarios, examples, and the
// evaluation experiments. Mitigations the engine's SOP performs (device
// isolation) feed back into the simulator, so automatic mitigation is
// observable end to end.
type Runner struct {
	Sim    *netsim.Simulator
	Fleet  *monitors.Fleet
	Engine *Engine

	// SimTick is the simulator step (default: the ping cadence).
	SimTick time.Duration
	// EngineTick is the pipeline cadence (default 10 s).
	EngineTick time.Duration
	// Tap, when set, observes every raw alert as it is ingested —
	// experiments use it to retain the raw flood for coverage analyses.
	Tap func(alert.Alert)
}

// NewRunner builds the closed loop over a topology with the bootstrap
// syslog classifier and the simulator as SOP executor. A non-empty
// sources list restricts the monitor fleet (the Fig. 8a coverage
// ablation).
func NewRunner(topo *topology.Topology, engineCfg Config, monCfg monitors.Config, simSeed int64, sources ...alert.Source) (*Runner, error) {
	classifier, err := preprocess.BootstrapClassifier()
	if err != nil {
		return nil, fmt.Errorf("core: bootstrap classifier: %w", err)
	}
	sim := netsim.New(topo, simSeed)
	fleet := monitors.NewFleet(topo, monCfg, sources...)
	util := groupUtilOracle(sim, topo)
	eng := NewEngine(engineCfg, topo, classifier, sim, util)
	return &Runner{
		Sim:        sim,
		Fleet:      fleet,
		Engine:     eng,
		SimTick:    monCfg.PingInterval,
		EngineTick: 10 * time.Second,
	}, nil
}

// groupUtilOracle derives a device group's aggregate utilization from the
// simulator — the SOP engine's traffic-threshold input.
func groupUtilOracle(sim *netsim.Simulator, topo *topology.Topology) sop.TrafficOracle {
	return func(group string) float64 {
		ids := topo.Group(group)
		if len(ids) == 0 {
			return 0
		}
		var capTotal, demand float64
		seen := map[topology.LinkID]bool{}
		for _, id := range ids {
			for _, lid := range topo.LinksOf(id) {
				if seen[lid] {
					continue
				}
				seen[lid] = true
				l := topo.Link(lid)
				ls := sim.LinkState(lid)
				availFrac := 1 - float64(ls.CircuitsDown)/float64(l.Circuits)
				capTotal += l.CapacityGbps * availFrac
				demand += l.CapacityGbps * sim.BaselineUtil(lid) * ls.DemandMultiplier
			}
		}
		if capTotal <= 0 {
			return 1
		}
		return demand / capTotal
	}
}

// RunStats summarizes one Run window.
type RunStats struct {
	RawAlerts     int
	Structured    int
	NewIncidents  int
	SOPExecutions int
}

// Run drives the loop from 'from' to 'to'. Faults must already be injected
// into r.Sim.
func (r *Runner) Run(from, to time.Time) (RunStats, error) {
	var stats RunStats
	simTick := r.SimTick
	if simTick <= 0 {
		simTick = 2 * time.Second
	}
	engTick := r.EngineTick
	if engTick <= 0 {
		engTick = 10 * time.Second
	}
	nextEngine := from.Add(engTick)
	for now := from; now.Before(to); now = now.Add(simTick) {
		if err := r.Sim.Step(now); err != nil {
			return stats, err
		}
		raw := r.Fleet.Poll(r.Sim, now)
		stats.RawAlerts += len(raw)
		for i := range raw {
			if r.Tap != nil {
				r.Tap(raw[i])
			}
			r.Engine.Ingest(raw[i])
		}
		if !now.Before(nextEngine) {
			r.pushReachability()
			res := r.Engine.Tick(now)
			stats.Structured += res.Structured
			stats.NewIncidents += len(res.NewIncidents)
			stats.SOPExecutions += len(res.SOPExecutions)
			nextEngine = now.Add(engTick)
		}
	}
	// Final tick so trailing alerts are processed.
	r.pushReachability()
	res := r.Engine.Tick(to)
	stats.Structured += res.Structured
	stats.NewIncidents += len(res.NewIncidents)
	stats.SOPExecutions += len(res.SOPExecutions)
	return stats, nil
}

// pushReachability converts the ping monitor's latest matrix into zoom-in
// samples.
func (r *Runner) pushReachability() {
	ping := r.Fleet.Ping()
	if ping == nil {
		return
	}
	m := ping.Matrix()
	if len(m) == 0 {
		return
	}
	samples := make([]zoomin.Sample, 0, len(m))
	for k, loss := range m {
		samples = append(samples, zoomin.Sample{Src: k.Src, Dst: k.Dst, Loss: loss})
	}
	// The matrix is a map; sort so the sample order — which zoom-in's
	// float accumulation and tie-breaking observe — is identical across
	// runs. Without this, Zoomed can flap between equal-loss candidates
	// from run to run (and SetReachability would see every refresh as a
	// change).
	slices.SortFunc(samples, func(a, b zoomin.Sample) int {
		if c := a.Src.Compare(b.Src); c != 0 {
			return c
		}
		return a.Dst.Compare(b.Dst)
	})
	r.Engine.SetReachability(samples)
}
