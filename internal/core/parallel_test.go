package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"skynet/internal/provenance"
	"skynet/internal/scenario"
)

// engineFingerprint renders the engine's complete incident population —
// IDs, roots, spans, entries, and exact severity bits — so runs at
// different worker counts can be compared for strict equality.
func engineFingerprint(e *Engine) string {
	var b strings.Builder
	for _, in := range e.AllIncidents() {
		fmt.Fprintf(&b, "#%d sev=%x active=%v zoomed=%s\n%s",
			in.ID, in.Severity, in.Active(), in.Zoomed, in.Render())
	}
	return b.String()
}

// severeRunAtWorkers replays the §2.2 fiber-cut scenario through a full
// closed loop with the given pipeline fan-out.
func severeRunAtWorkers(t *testing.T, workers int) (RunStats, string) {
	t.Helper()
	topo := smallTopo()
	cfg := DefaultConfig()
	cfg.Workers = workers
	r, err := NewRunner(topo, cfg, quietMonitors(), 1)
	if err != nil {
		t.Fatal(err)
	}
	sc := scenario.FiberCutSevere(topo, epoch.Add(time.Minute))
	if err := sc.Inject(r.Sim); err != nil {
		t.Fatal(err)
	}
	stats, err := r.Run(epoch, epoch.Add(8*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	return stats, engineFingerprint(r.Engine)
}

// TestEngineDeterministicAcrossWorkers is the PR's core guarantee: the
// sharded parallel pipeline — parallel preprocessing, location-sharded
// locator, incremental parallel scoring — produces incident sets, IDs,
// and severities bit-identical to the serial engine at every worker
// count. Run under -race this also exercises the shard ownership
// discipline at real concurrency.
func TestEngineDeterministicAcrossWorkers(t *testing.T) {
	refStats, refFP := severeRunAtWorkers(t, 1)
	if refStats.NewIncidents == 0 || refFP == "" {
		t.Fatal("serial reference run produced no incidents to compare")
	}
	for _, workers := range []int{2, 4, 8} {
		stats, fp := severeRunAtWorkers(t, workers)
		if stats != refStats {
			t.Errorf("workers=%d: run stats diverged: %+v vs serial %+v", workers, stats, refStats)
		}
		if fp != refFP {
			t.Errorf("workers=%d: incident population diverged from serial:\n--- parallel ---\n%s--- serial ---\n%s",
				workers, fp, refFP)
		}
	}
}

// severeRunAtWorkersProv is severeRunAtWorkers with full-detail lineage
// recording attached, returning the conservation ledger alongside.
func severeRunAtWorkersProv(t *testing.T, workers int) (RunStats, string, provenance.Counters) {
	t.Helper()
	topo := smallTopo()
	cfg := DefaultConfig()
	cfg.Workers = workers
	r, err := NewRunner(topo, cfg, quietMonitors(), 1)
	if err != nil {
		t.Fatal(err)
	}
	rec := provenance.New(provenance.Config{SampleEvery: 1})
	r.Engine.EnableProvenance(rec)
	sc := scenario.FiberCutSevere(topo, epoch.Add(time.Minute))
	if err := sc.Inject(r.Sim); err != nil {
		t.Fatal(err)
	}
	stats, err := r.Run(epoch, epoch.Add(8*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	return stats, engineFingerprint(r.Engine), rec.Counters()
}

// TestEngineDeterministicAcrossWorkersWithProvenance re-proves the
// bit-equality guarantee with the lineage recorder attached: provenance
// must neither perturb the pipeline's output nor itself diverge — the
// ledger (and hence every lineage resolution) is identical at every
// worker count, and matches the provenance-free run exactly.
func TestEngineDeterministicAcrossWorkersWithProvenance(t *testing.T) {
	_, plainFP := severeRunAtWorkers(t, 1)
	refStats, refFP, refC := severeRunAtWorkersProv(t, 1)
	if refFP != plainFP {
		t.Errorf("enabling provenance changed the serial engine's output:\n--- with ---\n%s--- without ---\n%s",
			refFP, plainFP)
	}
	if refC.Ingested == 0 || refC.Attributed == 0 {
		t.Fatalf("vacuous run: ledger %+v", refC)
	}
	for _, workers := range []int{2, 4, 8} {
		stats, fp, c := severeRunAtWorkersProv(t, workers)
		if stats != refStats {
			t.Errorf("workers=%d: run stats diverged: %+v vs serial %+v", workers, stats, refStats)
		}
		if fp != refFP {
			t.Errorf("workers=%d: incident population diverged from serial:\n--- parallel ---\n%s--- serial ---\n%s",
				workers, fp, refFP)
		}
		if c != refC {
			t.Errorf("workers=%d: conservation ledger diverged: %+v vs serial %+v", workers, c, refC)
		}
	}
}

// TestAllIncidentsReturnsFreshSlice pins the engine-level aliasing
// contract: AllIncidents (and Active/Closed) hand back slices the caller
// owns outright.
func TestAllIncidentsReturnsFreshSlice(t *testing.T) {
	topo := smallTopo()
	r := newRunner(t, topo)
	sc := scenario.FiberCutSevere(topo, epoch.Add(time.Minute))
	if err := sc.Inject(r.Sim); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(epoch, epoch.Add(8*time.Minute)); err != nil {
		t.Fatal(err)
	}
	all := r.Engine.AllIncidents()
	if len(all) == 0 {
		t.Fatal("no incidents produced")
	}
	// Vandalize the returned slice every way a caller might.
	for i := range all {
		all[i] = nil
	}
	_ = append(all, nil)
	again := r.Engine.AllIncidents()
	if len(again) != len(all) {
		t.Fatalf("AllIncidents length changed: %d vs %d", len(again), len(all))
	}
	for i, in := range again {
		if in == nil {
			t.Fatalf("AllIncidents[%d] is nil after caller mutation — slice aliased engine state", i)
		}
	}
	act := r.Engine.Active()
	for i := range act {
		act[i] = nil
	}
	for i, in := range r.Engine.Active() {
		if in == nil {
			t.Fatalf("Active[%d] aliased engine state", i)
		}
	}
}
