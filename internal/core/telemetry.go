package core

import (
	"fmt"
	"time"

	"skynet/internal/incident"
	"skynet/internal/locator"
	"skynet/internal/preprocess"
	"skynet/internal/telemetry"
)

// journalSeverityDelta is how far an incident's severity must move before
// a "scored" event is journaled. Severity grows every tick through the
// ΔT term of Eq. 2, so journaling every change would flood the ring.
const journalSeverityDelta = 1.0

// pipelineMetrics holds the engine's pre-resolved metric handles so the
// hot path never touches the registry's lock.
type pipelineMetrics struct {
	rawIngested      *telemetry.Counter
	structured       *telemetry.Counter
	ticks            *telemetry.Counter
	incidentsCreated *telemetry.Counter
	sopExecutions    *telemetry.Counter

	tickSeconds     *telemetry.Histogram
	stagePreprocess *telemetry.Histogram
	stageLocate     *telemetry.Histogram
	stageEvaluate   *telemetry.Histogram
	stageSOP        *telemetry.Histogram

	activeIncidents *telemetry.Gauge
	closedIncidents *telemetry.Gauge
	structuredLast  *telemetry.Gauge

	// Incremental-evaluator and shard telemetry (PR: sharded pipeline).
	evalRescored *telemetry.Counter
	evalSkipped  *telemetry.Counter
	workers      *telemetry.Gauge
	prePending   *telemetry.Gauge

	// Per-shard gauges, indexed by shard; set serially at the end of
	// Tick so scrapes never race the worker goroutines.
	preShardAggs   []*telemetry.Gauge
	preShardRouted []*telemetry.Gauge
	locShardNodes  []*telemetry.Gauge
}

func newPipelineMetrics(reg *telemetry.Registry) *pipelineMetrics {
	lb := telemetry.LatencyBuckets()
	return &pipelineMetrics{
		rawIngested: reg.Counter("skynet_raw_alerts_total",
			"Raw alerts ingested into the preprocessor."),
		structured: reg.Counter("skynet_structured_alerts_total",
			"Structured alerts emitted by the preprocessor into the locator."),
		ticks: reg.Counter("skynet_ticks_total",
			"Pipeline ticks executed."),
		incidentsCreated: reg.Counter("skynet_incidents_created_total",
			"Incident trees generated (Algorithm 2)."),
		sopExecutions: reg.Counter("skynet_sop_executions_total",
			"Automatic SOP mitigations applied."),
		tickSeconds: reg.Histogram("skynet_tick_seconds",
			"Wall time of one full pipeline tick.", lb),
		stagePreprocess: reg.Histogram("skynet_stage_preprocess_seconds",
			"Wall time of the preprocessor flush stage (§4.1).", lb),
		stageLocate: reg.Histogram("skynet_stage_locate_seconds",
			"Wall time of locator add/check (Algorithms 1-3).", lb),
		stageEvaluate: reg.Histogram("skynet_stage_evaluate_seconds",
			"Wall time of zoom-in refine plus severity scoring (Eq. 1-3).", lb),
		stageSOP: reg.Histogram("skynet_stage_sop_seconds",
			"Wall time of the automatic-SOP stage (§5.1).", lb),
		activeIncidents: reg.Gauge("skynet_active_incidents",
			"Currently open incidents."),
		closedIncidents: reg.Gauge("skynet_closed_incidents",
			"Incidents closed over the engine's lifetime."),
		structuredLast: reg.Gauge("skynet_structured_last_tick",
			"Structured alerts produced by the most recent tick."),
		evalRescored: reg.Counter("skynet_eval_rescored_total",
			"Incidents re-refined and re-scored (dirty inputs)."),
		evalSkipped: reg.Counter("skynet_eval_skipped_total",
			"Incidents whose Refine+Score was skipped (inputs unchanged)."),
		workers: reg.Gauge("skynet_pipeline_workers",
			"Resolved worker fan-out of the parallel pipeline stages."),
		prePending: reg.Gauge("skynet_preprocess_pending_depth",
			"Raw alerts queued for the preprocessor at the start of the last tick."),
	}
}

// initShardMetrics registers the per-shard gauges once the shard counts
// are known (they depend on the resolved worker setting).
func (m *pipelineMetrics) initShardMetrics(reg *telemetry.Registry, preShards, locShards int) {
	m.preShardAggs = make([]*telemetry.Gauge, preShards)
	m.preShardRouted = make([]*telemetry.Gauge, preShards)
	for i := range m.preShardAggs {
		m.preShardAggs[i] = reg.Gauge(
			fmt.Sprintf("skynet_preprocess_shard_%d_aggregates", i),
			"Live aggregation groups owned by one preprocessor shard.")
		m.preShardRouted[i] = reg.Gauge(
			fmt.Sprintf("skynet_preprocess_shard_%d_routed", i),
			"Alerts routed to one preprocessor shard during the last tick.")
	}
	m.locShardNodes = make([]*telemetry.Gauge, locShards)
	for i := range m.locShardNodes {
		m.locShardNodes[i] = reg.Gauge(
			fmt.Sprintf("skynet_locator_shard_%d_nodes", i),
			"Live main-alert-tree nodes owned by one locator shard.")
	}
}

// observeShards publishes the per-shard occupancy gauges. Called serially
// at the end of Tick, after every parallel phase has joined.
func (m *pipelineMetrics) observeShards(pre *preprocess.Preprocessor, loc *locator.Locator) {
	for i, g := range m.preShardAggs {
		g.SetInt(pre.ShardAggregates(i))
	}
	for i, g := range m.preShardRouted {
		g.SetInt(pre.ShardRouted(i))
	}
	for i, g := range m.locShardNodes {
		g.SetInt(loc.ShardNodes(i))
	}
}

// observe records the elapsed time since mark on h and returns a fresh
// mark for the next stage.
func (m *pipelineMetrics) observe(h *telemetry.Histogram, mark time.Time) time.Time {
	now := time.Now()
	h.Observe(now.Sub(mark).Seconds())
	return now
}

// incidentState is the journal differ's last-known view of one incident.
type incidentState struct {
	alerts   int
	severity float64
	zoomed   string
	updated  time.Time
}

// EnableTelemetry attaches a metrics registry and/or a lifecycle journal
// to the engine. Either argument may be nil. Call before the first Tick;
// with neither attached the pipeline runs exactly as before (no clock
// reads, no atomic traffic).
func (e *Engine) EnableTelemetry(reg *telemetry.Registry, j *telemetry.Journal) {
	if reg != nil {
		e.reg = reg
		e.tel = newPipelineMetrics(reg)
		e.tel.workers.SetInt(e.workers)
		e.tel.initShardMetrics(reg, e.pre.Workers(), e.loc.Workers())
		if e.tracer != nil && e.spanTel == nil {
			e.spanTel = newSpanMetrics(reg)
		}
	}
	if j != nil {
		e.journal = j
		e.lastState = make(map[int]incidentState)
	}
}

// Journal returns the attached lifecycle journal (nil when disabled).
func (e *Engine) Journal() *telemetry.Journal { return e.journal }

// snapshotState captures the differ's view of an incident.
func snapshotState(in *incident.Incident) incidentState {
	return incidentState{
		alerts:   in.AlertCount(),
		severity: in.Severity,
		zoomed:   in.Zoomed.String(),
		updated:  in.UpdateTime,
	}
}

func lifecycleEvent(now time.Time, typ telemetry.EventType, in *incident.Incident, st incidentState) telemetry.Event {
	ev := telemetry.Event{
		Time:      now,
		Type:      typ,
		Incident:  in.ID,
		Root:      in.Root.String(),
		Severity:  st.severity,
		Alerts:    st.alerts,
		Locations: in.LocationCount(),
	}
	if !in.Zoomed.IsRoot() && in.Zoomed != in.Root {
		ev.Zoomed = st.zoomed
	}
	return ev
}

// observeLifecycle diffs the incident population against the last tick
// and appends created/updated/zoomed/scored/closed events to the journal.
// created is this tick's new incidents; active is the current open set.
func (e *Engine) observeLifecycle(now time.Time, created, active []*incident.Incident) {
	isNew := make(map[int]bool, len(created))
	for _, in := range created {
		isNew[in.ID] = true
		st := snapshotState(in)
		e.journal.Append(lifecycleEvent(now, telemetry.EventCreated, in, st))
		e.lastState[in.ID] = st
		// Incidents absorbed into this one (Algorithm 2, lines 7-9) left
		// the active set without closing; their history continues here.
		for _, id := range in.MergedFrom {
			delete(e.lastState, id)
		}
	}
	for _, in := range active {
		if isNew[in.ID] {
			continue
		}
		prev, known := e.lastState[in.ID]
		st := snapshotState(in)
		if !known {
			// Engine attached mid-flight: adopt without fabricating a
			// created event at the wrong time.
			e.lastState[in.ID] = st
			continue
		}
		if st.zoomed != prev.zoomed {
			e.journal.Append(lifecycleEvent(now, telemetry.EventZoomed, in, st))
		}
		if diff := st.severity - prev.severity; diff >= journalSeverityDelta || diff <= -journalSeverityDelta {
			e.journal.Append(lifecycleEvent(now, telemetry.EventScored, in, st))
		} else if st.alerts != prev.alerts || !st.updated.Equal(prev.updated) {
			e.journal.Append(lifecycleEvent(now, telemetry.EventUpdated, in, st))
		}
		if st != prev {
			e.lastState[in.ID] = st
		}
	}
	for _, in := range e.loc.ClosedSince(e.closedSeen) {
		st := snapshotState(in)
		e.journal.Append(lifecycleEvent(now, telemetry.EventClosed, in, st))
		delete(e.lastState, in.ID)
	}
	e.closedSeen = e.loc.ClosedCount()
}
