package core

import (
	"slices"
	"time"

	"skynet/internal/fanout"
	"skynet/internal/flood"
	"skynet/internal/incident"
)

// EnableFanout attaches the snapshot+delta serving hub: every Tick then
// publishes one immutable feed snapshot plus one compact delta (opened,
// updated, closed incidents, flood phase, SLO burn state) into the
// hub's shared ring. The engine's cost is building and encoding the two
// documents exactly once — fan-out to any number of subscribers happens
// on the hub's side by reference and never touches the tick path.
// Call before the first Tick.
func (e *Engine) EnableFanout(h *fanout.Hub) {
	e.fan = h
	e.fanSeen = make(map[int]struct{})
}

// observeFanout publishes this tick's snapshot and delta. Runs at the
// very end of Tick, after every observer has settled, so both documents
// reflect the tick's final state. Both documents are built directly
// into hub-owned pooled scratch and handed over without a copy
// (PublishTickOwned); only the seen set stays engine-owned.
func (e *Engine) observeFanout(now time.Time, res *TickResult, active []*incident.Incident) {
	d := e.fan.AcquireDelta()
	d.Tick = e.tickCount
	d.FromTick = e.tickCount
	d.Time = now
	d.Structured = res.Structured
	d.Coalesced = 1

	clear(e.fanSeen)
	for _, in := range res.NewIncidents {
		e.fanSeen[in.ID] = struct{}{}
		d.Opened = append(d.Opened, fanout.NewIncidentInfo(in))
	}
	// Updated = re-scored this tick but not newly created. evalDirty is
	// in active-set order, which is deterministic across worker counts.
	for _, in := range e.evalDirty {
		if _, isNew := e.fanSeen[in.ID]; !isNew {
			d.Updated = append(d.Updated, fanout.NewIncidentInfo(in))
		}
	}
	for _, in := range e.loc.ClosedSince(e.fanClosedSeen) {
		d.Closed = append(d.Closed, fanout.NewIncidentInfo(in))
	}
	e.fanClosedSeen = e.loc.ClosedCount()
	// Delta lists are ID-sorted: the hub's coalescing merge relies on
	// it, and it makes merged deltas bit-identical for every subscriber.
	// Opened/Updated arrive nearly sorted (creation/active order);
	// Closed is in close order, which need not be.
	byID := func(a, b fanout.IncidentInfo) int { return a.ID - b.ID }
	slices.SortFunc(d.Opened, byID)
	slices.SortFunc(d.Updated, byID)
	slices.SortFunc(d.Closed, byID)

	phase, episode := "", uint64(0)
	if e.flood != nil {
		if p := e.flood.CurrentPhase(); p != flood.PhaseIdle {
			phase = p.String()
			episode = e.flood.CurrentID()
		}
	}
	firing := 0
	if e.sloEng != nil {
		firing = int(e.sloEng.FiringCount())
	}
	d.FloodPhase, d.FloodEpisode, d.SLOFiring = phase, episode, firing

	// The full snapshot — O(active incidents) to build and copy — goes
	// out on the hub's cadence only; the per-tick publish stays
	// proportional to what changed. Tick 1 always snapshots so fresh
	// subscribers have a starting point immediately.
	var s *fanout.FeedSnapshot
	if (e.tickCount-1)%e.fan.SnapshotEvery() == 0 {
		s = e.fan.AcquireSnapshot()
		s.Tick = e.tickCount
		s.Time = now
		s.RawTotal = e.rawIn
		s.Structured = res.Structured
		s.ClosedTotal = e.fanClosedSeen
		for _, in := range active {
			s.Incidents = append(s.Incidents, fanout.NewIncidentInfo(in))
		}
		s.FloodPhase, s.FloodEpisode, s.SLOFiring = phase, episode, firing
	}

	e.fan.PublishTickOwned(s, d)
}
