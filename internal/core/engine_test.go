package core

import (
	"testing"
	"time"

	"skynet/internal/alert"
	"skynet/internal/hierarchy"
	"skynet/internal/monitors"
	"skynet/internal/netsim"
	"skynet/internal/scenario"
	"skynet/internal/topology"
)

var epoch = time.Date(2024, 7, 2, 11, 0, 0, 0, time.UTC)

func smallTopo() *topology.Topology { return topology.MustGenerate(topology.SmallConfig()) }

func quietMonitors() monitors.Config {
	cfg := monitors.DefaultConfig()
	cfg.NoisePerHour = 0
	return cfg
}

func newRunner(t *testing.T, topo *topology.Topology) *Runner {
	t.Helper()
	r, err := NewRunner(topo, DefaultConfig(), quietMonitors(), 1)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestHealthyRunNoIncidents(t *testing.T) {
	topo := smallTopo()
	r := newRunner(t, topo)
	stats, err := r.Run(epoch, epoch.Add(3*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if stats.NewIncidents != 0 {
		t.Errorf("healthy network produced %d incidents", stats.NewIncidents)
	}
	if stats.RawAlerts != 0 {
		t.Errorf("healthy network produced %d raw alerts", stats.RawAlerts)
	}
}

func TestFiberCutDetectedAsSingleSevereIncident(t *testing.T) {
	// The §2.2 war story end to end: the alert flood must collapse into
	// one incident at the affected city, severe enough to clear the
	// filter, with the entry-congestion evidence inside.
	topo := smallTopo()
	r := newRunner(t, topo)
	sc := scenario.FiberCutSevere(topo, epoch.Add(time.Minute))
	if err := sc.Inject(r.Sim); err != nil {
		t.Fatal(err)
	}
	stats, err := r.Run(epoch, epoch.Add(8*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if stats.RawAlerts < 100 {
		t.Fatalf("expected an alert flood, got %d raw alerts", stats.RawAlerts)
	}
	active := r.Engine.Active()
	if len(active) == 0 {
		t.Fatal("fiber cut produced no incident")
	}
	city := sc.Truth[0]
	matched := 0
	for _, in := range active {
		if city.Contains(in.Root) || in.Root.Contains(city) {
			matched++
		}
	}
	if matched == 0 {
		t.Errorf("no incident at the cut city; roots: %v", rootsOf(r))
	}
	severe := r.Engine.Severe()
	if len(severe) == 0 {
		t.Error("fiber cut incident did not clear the severity filter")
	}
	// The distilled view must be operator-sized: a handful of incidents,
	// not thousands of alerts (§2.4's "~10 messages").
	if len(active) > 5 {
		t.Errorf("too many incidents for one failure: %d", len(active))
	}
}

func rootsOf(r *Runner) []hierarchy.Path {
	var out []hierarchy.Path
	for _, in := range r.Engine.Active() {
		out = append(out, in.Root)
	}
	return out
}

func TestKnownDeviceFailureAutoSOP(t *testing.T) {
	// §5.1 case 1: a lone device failure matches the SOP rule, gets
	// isolated automatically, and the isolation feeds back into the
	// simulator.
	topo := smallTopo()
	r := newRunner(t, topo)
	sc := scenario.KnownDeviceFailure(topo, epoch.Add(time.Minute))
	if err := sc.Inject(r.Sim); err != nil {
		t.Fatal(err)
	}
	stats, err := r.Run(epoch, epoch.Add(6*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if stats.SOPExecutions == 0 {
		t.Fatal("no automatic SOP executed")
	}
	dev, _ := topo.DeviceByPath(sc.Truth[0])
	if !r.Sim.DeviceState(dev.ID).Isolated {
		t.Error("faulty device not isolated in the simulator")
	}
	hist := r.Engine.SOP().History()
	if len(hist) == 0 || hist[0].Plan.Rule != "device-loss-isolation" {
		t.Errorf("unexpected SOP history: %+v", hist)
	}
}

func TestDDoSMultiSiteSeparateIncidents(t *testing.T) {
	// §5.1 case 2: simultaneous DDoS at multiple sites must produce
	// separate incidents, proving the attacks unrelated.
	topo := smallTopo()
	r := newRunner(t, topo)
	scs := scenario.DDoSMultiSite(topo, 3, epoch.Add(time.Minute))
	for _, sc := range scs {
		if err := sc.Inject(r.Sim); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Run(epoch, epoch.Add(8*time.Minute)); err != nil {
		t.Fatal(err)
	}
	matchedScenarios := 0
	for _, sc := range scs {
		for _, in := range r.Engine.Active() {
			if sc.Matches(in.Root, in.Start, in.UpdateTime) {
				matchedScenarios++
				break
			}
		}
	}
	if matchedScenarios < len(scs) {
		t.Errorf("only %d of %d DDoS sites have incidents; roots: %v",
			matchedScenarios, len(scs), rootsOf(r))
	}
}

func TestSceneRankingCriticalFirst(t *testing.T) {
	// §5.1 case 3: the big-but-mild incident must rank below the small-
	// but-critical one.
	topo := smallTopo()
	r := newRunner(t, topo)
	big, critical := scenario.ConcurrentIncidents(topo, epoch.Add(time.Minute))
	for _, sc := range []scenario.Scenario{big, critical} {
		if err := sc.Inject(r.Sim); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Run(epoch, epoch.Add(10*time.Minute)); err != nil {
		t.Fatal(err)
	}
	var bigIn, critIn *hierarchy.Path
	var bigSev, critSev float64
	for _, in := range r.Engine.Active() {
		root := in.Root
		if big.Matches(root, in.Start, in.UpdateTime) {
			bigIn, bigSev = &root, in.Severity
		}
		if critical.Matches(root, in.Start, in.UpdateTime) {
			critIn, critSev = &root, in.Severity
		}
	}
	if bigIn == nil || critIn == nil {
		t.Fatalf("missing incidents (big=%v crit=%v); roots: %v", bigIn, critIn, rootsOf(r))
	}
	if critSev <= 0 || bigSev <= 0 {
		t.Fatalf("severities not computed: big=%v crit=%v", bigSev, critSev)
	}
}

func TestFineGrainedZoomIn(t *testing.T) {
	// §5.1 case 4: the repeat cable cut is zoomed to the data-center
	// entrance via the reachability matrix (or traceback).
	topo := smallTopo()
	r := newRunner(t, topo)
	sc := scenario.FiberCutSevere(topo, epoch.Add(time.Minute))
	if err := sc.Inject(r.Sim); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(epoch, epoch.Add(8*time.Minute)); err != nil {
		t.Fatal(err)
	}
	for _, in := range r.Engine.Active() {
		if sc.Truth[0].Contains(in.Root) || in.Root.Contains(sc.Truth[0]) {
			// Zoom-in is best effort; when it fires it must stay inside
			// the incident scope.
			if !in.Zoomed.IsRoot() && !in.Root.Contains(in.Zoomed) {
				t.Errorf("zoomed %v escapes root %v", in.Zoomed, in.Root)
			}
			return
		}
	}
	t.Fatal("no matching incident found")
}

func TestEngineAccessors(t *testing.T) {
	topo := smallTopo()
	r := newRunner(t, topo)
	sc := scenario.KnownDeviceFailure(topo, epoch.Add(time.Minute))
	if err := sc.Inject(r.Sim); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(epoch, epoch.Add(5*time.Minute)); err != nil {
		t.Fatal(err)
	}
	eng := r.Engine
	if eng.RawIngested() == 0 {
		t.Error("RawIngested = 0")
	}
	if eng.PreprocessStats().In == 0 {
		t.Error("preprocess stats empty")
	}
	all := eng.AllIncidents()
	if len(all) != len(eng.Active())+len(eng.Closed()) {
		t.Error("AllIncidents inconsistent")
	}
	for i := 1; i < len(all); i++ {
		if all[i].ID < all[i-1].ID {
			t.Error("AllIncidents not ID-ordered")
		}
	}
	if eng.Evaluator() == nil {
		t.Error("evaluator accessor nil")
	}
}

func TestIncidentClosesAfterScenario(t *testing.T) {
	topo := smallTopo()
	r := newRunner(t, topo)
	// Short fault, long run: the incident must time out and close.
	sc := scenario.KnownDeviceFailure(topo, epoch.Add(time.Minute))
	sc.Faults[0].End = epoch.Add(3 * time.Minute)
	if err := sc.Inject(r.Sim); err != nil {
		t.Fatal(err)
	}
	// Disable SOP so the incident isn't mitigated before it times out
	// naturally.
	cfg := DefaultConfig()
	cfg.EnableSOP = false
	r2, err := NewRunner(topo, cfg, quietMonitors(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Inject(r2.Sim); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Run(epoch, epoch.Add(25*time.Minute)); err != nil {
		t.Fatal(err)
	}
	if len(r2.Engine.Closed()) == 0 {
		t.Errorf("incident never closed; active=%d", len(r2.Engine.Active()))
	}
}

func TestRunnerSourceRestriction(t *testing.T) {
	// The Fig. 8a mechanism at the runner level: a silent-loss failure is
	// invisible to a syslog-only fleet but caught with behaviour tools.
	topo := smallTopo()
	var isr *topology.Device
	for i := range topo.Devices {
		if topo.Devices[i].Role == topology.RoleISR {
			isr = &topo.Devices[i]
			break
		}
	}
	fault := netsim.Fault{Kind: netsim.FaultSilentLoss, Device: isr.ID, Magnitude: 0.5, Start: epoch.Add(30 * time.Second)}

	blind, err := NewRunner(topo, DefaultConfig(), quietMonitors(), 1, alert.SourceSyslog, alert.SourceSNMP)
	if err != nil {
		t.Fatal(err)
	}
	blind.Sim.MustInject(fault)
	if _, err := blind.Run(epoch, epoch.Add(4*time.Minute)); err != nil {
		t.Fatal(err)
	}
	if n := len(blind.Engine.AllIncidents()); n != 0 {
		t.Errorf("syslog+SNMP fleet detected a silent loss: %d incidents", n)
	}

	seeing, err := NewRunner(topo, DefaultConfig(), quietMonitors(), 1, alert.SourcePing, alert.SourceTraffic, alert.SourceINT)
	if err != nil {
		t.Fatal(err)
	}
	seeing.Sim.MustInject(fault)
	if _, err := seeing.Run(epoch, epoch.Add(4*time.Minute)); err != nil {
		t.Fatal(err)
	}
	if n := len(seeing.Engine.AllIncidents()); n == 0 {
		t.Error("behaviour fleet missed the silent loss")
	}
}

func TestProductionScalePipeline(t *testing.T) {
	// Scale smoke: the closed loop over the O(10^4)-device topology
	// holds up — a severe failure is detected and the per-tick cost stays
	// within the paper's minute-level SLA by orders of magnitude.
	if testing.Short() {
		t.Skip("production-scale pipeline skipped in -short mode")
	}
	topo := topology.MustGenerate(topology.ProductionConfig())
	r, err := NewRunner(topo, DefaultConfig(), quietMonitors(), 1)
	if err != nil {
		t.Fatal(err)
	}
	sc := scenario.FiberCutSevere(topo, epoch.Add(30*time.Second))
	if err := sc.Inject(r.Sim); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	stats, err := r.Run(epoch, epoch.Add(2*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if stats.RawAlerts == 0 {
		t.Fatal("no raw alerts at production scale")
	}
	matched := false
	for _, in := range r.Engine.Active() {
		if sc.Matches(in.Root, in.Start, in.UpdateTime) {
			matched = true
			break
		}
	}
	if !matched {
		t.Errorf("severe failure undetected at production scale (%d incidents)", len(r.Engine.Active()))
	}
	// 2 simulated minutes must process in well under real time on any
	// modern machine; this guards against accidental quadratic blowups.
	if elapsed > 90*time.Second {
		t.Errorf("2 simulated minutes took %v wall clock", elapsed)
	}
	t.Logf("production scale: %d devices, %d raw alerts, %d incidents, wall %v",
		topo.NumDevices(), stats.RawAlerts, len(r.Engine.Active()), elapsed)
}
