// Telemetry history and the self-monitoring loop: once per tick the
// engine samples every registry metric into the embedded tsdb store,
// evaluates the SLO burn-rate rules over it, and — when a rule burns —
// injects synthetic alerts for itself through its own ingest path under
// the reserved meta/skynetd hierarchy subtree. A degrading pipeline
// thereby surfaces as a first-class incident with provenance, exactly
// like a network failure would.

package core

import (
	"fmt"
	"time"

	"skynet/internal/alert"
	"skynet/internal/hierarchy"
	"skynet/internal/slo"
	"skynet/internal/tsdb"
)

// Self-alert types injected by the self-monitoring loop. Two distinct
// failure-class types at one meta location cross the locator's
// distinct-failure threshold (A = 2), so a sustained burn becomes an
// incident on the very next tick.
const (
	SelfAlertTypeFast = "slo burn fast"
	SelfAlertTypeSlow = "slo burn slow"
)

// EnableHistory attaches the per-tick history sampler: every Tick the
// engine's (measured or modeled) latency and every registry metric are
// appended to the sampler's store at the current tick index. Call before
// the first Tick.
func (e *Engine) EnableHistory(sp *tsdb.Sampler) { e.hist = sp }

// EnableSLO attaches the burn-rate rule engine, evaluated at the end of
// every Tick against the history store — EnableHistory must be on, or
// the rules see no data. With selfMonitor set, burn verdicts feed the
// self-monitoring loop: every tick a rule is firing, the engine ingests
// two synthetic failure-class alerts at meta|skynetd|<rule>, which the
// pipeline consolidates, locates, and scores like any other alerts.
func (e *Engine) EnableSLO(eng *slo.Engine, selfMonitor bool) {
	e.sloEng = eng
	e.selfMon = selfMonitor
	e.sloLocs = e.sloLocs[:0]
	for _, r := range eng.Rules() {
		p, err := hierarchy.MetaComponent(r.Name)
		if err != nil {
			p = hierarchy.MetaRoot()
		}
		e.sloLocs = append(e.sloLocs, p)
	}
	if e.reg != nil {
		e.reg.CounterFunc("skynet_self_alerts_total",
			"Synthetic meta/skynetd alerts injected by the self-monitoring loop.",
			func() float64 { return float64(e.selfAlertsN.Load()) })
	}
}

// SetTickLatencyModel overrides the measured tick latency fed to the
// history store and SLO engine with a deterministic function of the tick
// index. This is the forced-breach scenario hook: replays install a
// model instead of perturbing the real clock, so breach runs stay
// bit-identical across worker counts.
func (e *Engine) SetTickLatencyModel(fn func(tick uint64) time.Duration) { e.latModel = fn }

// SLOEngine returns the attached burn-rate engine (nil when disabled).
func (e *Engine) SLOEngine() *slo.Engine { return e.sloEng }

// SelfAlerts reports how many synthetic self-alerts the monitoring loop
// has injected.
func (e *Engine) SelfAlerts() int64 { return e.selfAlertsN.Load() }

// observeHistory runs at the end of Tick: sample, evaluate, self-inject.
// start is the tick's wall start (zero only if both telemetry and
// history were off, in which case this is never called).
func (e *Engine) observeHistory(now, start time.Time) {
	dur := time.Since(start)
	if e.latModel != nil {
		dur = e.latModel(e.tickCount)
	}
	e.hist.ObserveTick(e.tickCount, dur.Seconds())
	if e.sloEng == nil {
		return
	}
	verdicts := e.sloEng.Evaluate(e.tickCount)
	if !e.selfMon {
		return
	}
	for i := range verdicts {
		v := &verdicts[i]
		if !v.Firing || i >= len(e.sloLocs) {
			continue
		}
		// The alerts enter the preprocessor's pending buffer and are
		// consolidated on the next Tick — the same path and latency any
		// external alert has.
		base := alert.Alert{
			Source:   alert.SourcePatrolInspection,
			Class:    alert.ClassFailure,
			Time:     now,
			End:      now,
			Location: e.sloLocs[i],
			Count:    1,
			Raw: fmt.Sprintf("self-slo %s burning: fast %.2f slow %.2f",
				v.Rule.Name, v.FastBurn, v.SlowBurn),
		}
		fast := base
		fast.Type = SelfAlertTypeFast
		fast.Value = v.FastBurn
		slow := base
		slow.Type = SelfAlertTypeSlow
		slow.Value = v.SlowBurn
		e.Ingest(fast)
		e.Ingest(slow)
		e.selfAlertsN.Add(2)
	}
}
