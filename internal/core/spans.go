package core

import (
	"skynet/internal/span"
	"skynet/internal/telemetry"
)

// spanMetrics bridges finished span trees into the telemetry registry:
// one latency histogram per span name, plus fork-level shard-skew and
// queue-wait histograms. Registered lazily because span names surface as
// they are first recorded; the per-name handle cache keeps the hot path
// off the registry lock after the first tick.
type spanMetrics struct {
	reg    *telemetry.Registry
	byName map[string]*telemetry.Histogram
	skew   *telemetry.Histogram
	wait   *telemetry.Histogram
}

func newSpanMetrics(reg *telemetry.Registry) *spanMetrics {
	lb := telemetry.LatencyBuckets()
	return &spanMetrics{
		reg:    reg,
		byName: make(map[string]*telemetry.Histogram),
		skew: reg.Histogram("skynet_span_fork_skew_seconds",
			"Per-fork shard imbalance: slowest minus fastest shard of one parallel fan-out.", lb),
		wait: reg.Histogram("skynet_span_queue_wait_seconds",
			"Time a fan-out task waited between fork open and a worker picking it up.", lb),
	}
}

// hist returns the latency histogram for one span name, registering
// skynet_span_<name>_seconds on first use.
func (m *spanMetrics) hist(name string) *telemetry.Histogram {
	if h, ok := m.byName[name]; ok {
		return h
	}
	h := m.reg.Histogram("skynet_span_"+name+"_seconds",
		"Wall time of one "+name+" span.", telemetry.LatencyBuckets())
	m.byName[name] = h
	return h
}

// observe feeds one finished trace into the histograms. Called serially
// at the end of Tick, off the parallel path. The root span is skipped —
// skynet_tick_seconds already covers it.
func (m *spanMetrics) observe(tr *span.Trace) {
	// Fork groups are runs of same-parent same-name shard spans; spans
	// are recorded fork-contiguously, so one linear pass finds them.
	groupStart := -1
	var groupMin, groupMax float64
	flush := func() {
		if groupStart >= 0 && groupMax > groupMin {
			m.skew.Observe(groupMax - groupMin)
		}
		groupStart = -1
	}
	for i := 1; i < len(tr.Spans); i++ {
		sp := &tr.Spans[i]
		secs := sp.Dur.Seconds()
		m.hist(sp.Name).Observe(secs)
		if sp.Shard < 0 {
			flush()
			continue
		}
		m.wait.Observe(sp.Wait.Seconds())
		prev := &tr.Spans[i-1]
		if groupStart < 0 || prev.Shard < 0 || prev.Name != sp.Name || prev.Parent != sp.Parent {
			flush()
			groupStart = i
			groupMin, groupMax = secs, secs
			continue
		}
		if secs < groupMin {
			groupMin = secs
		}
		if secs > groupMax {
			groupMax = secs
		}
	}
	flush()
}

// EnableTracing attaches a span tracer to the engine: every Tick records
// a span tree (stages, sub-phases, and parallel shard fan-outs) into the
// tracer's ring. When a telemetry registry is also attached (see
// EnableTelemetry), finished spans additionally feed per-stage latency,
// shard-skew, and queue-wait histograms. Call before the first Tick;
// with no tracer the pipeline takes a single nil-check per tick.
//
// Tracing never touches pipeline data: incident sets, IDs, and severity
// bits are bit-identical with and without it, at every worker count.
func (e *Engine) EnableTracing(tr *span.Tracer) {
	e.tracer = tr
	if tr != nil && e.reg != nil && e.spanTel == nil {
		e.spanTel = newSpanMetrics(e.reg)
	}
}

// Tracer returns the attached span tracer (nil when disabled).
func (e *Engine) Tracer() *span.Tracer { return e.tracer }
