package netsim

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"skynet/internal/hierarchy"
	"skynet/internal/topology"
)

// DeviceState is the derived condition of one device at the current
// simulation time.
type DeviceState struct {
	// Up is false when the device is dead (device-down, power failure).
	Up bool
	// Isolated is set by SOP actions: the device carries no traffic but
	// is administratively alive.
	Isolated bool
	// SilentLoss is the fraction of traffic the device drops without
	// logging (gray failures, partial hardware faults).
	SilentLoss float64
	// BitFlip is the packet corruption ratio.
	BitFlip float64
	// SoftwareError is true while a software fault is active (processes
	// flapping, BGP churn).
	SoftwareError bool
	// HardwareError is true while a partial hardware fault is active.
	HardwareError bool
	// ModificationError is true while a failed modification is applied.
	ModificationError bool
	// RouteBlackhole is the fraction of INTERNET-BOUND traffic this
	// border device drops because of a route error or hijack. Internal
	// paths are unaffected — route errors are invisible to the internal
	// ping mesh and sFlow, which is exactly the §2.1 coverage gap route
	// monitoring and internet telemetry exist to fill.
	RouteBlackhole float64
	// ClockDriftSeconds is the PTP desynchronization magnitude.
	ClockDriftSeconds float64
	// CPUUtil and MemUtil are 0..1 utilizations, elevated under faults.
	CPUUtil float64
	MemUtil float64
}

// Healthy reports whether the device carries traffic normally.
func (s *DeviceState) Healthy() bool {
	return s.Up && !s.Isolated && s.SilentLoss == 0 && !s.SoftwareError &&
		!s.HardwareError && !s.ModificationError && s.RouteBlackhole == 0
}

// LinkState is the derived condition of one link bundle.
type LinkState struct {
	// CircuitsDown counts severed circuits, ≤ the bundle's total.
	CircuitsDown int
	// DemandMultiplier scales the bundle's baseline traffic (congestion).
	DemandMultiplier float64
}

// Simulator derives network state over time from a topology and a set of
// injected faults. It is driven by Step; all state queries refer to the
// time of the last Step. Simulator is not safe for concurrent mutation;
// concurrent readers are safe between Steps.
type Simulator struct {
	topo *topology.Topology
	rng  *rand.Rand

	now    time.Time
	faults []Fault

	devices []DeviceState
	links   []LinkState

	// baseUtil is each link's baseline utilization (0..1), fixed at
	// construction to make runs deterministic.
	baseUtil []float64

	journal []Event

	// prevActive tracks which faults were active at the previous Step so
	// transitions emit journal events exactly once.
	prevActive []bool

	// roleIdx caches (attach path, role) → device IDs for path evaluation.
	roleIdx map[roleKey][]topology.DeviceID
}

// New creates a simulator over the topology. The seed fixes baseline
// utilization noise.
func New(topo *topology.Topology, seed int64) *Simulator {
	s := &Simulator{
		topo:     topo,
		rng:      rand.New(rand.NewSource(seed)),
		devices:  make([]DeviceState, topo.NumDevices()),
		links:    make([]LinkState, topo.NumLinks()),
		baseUtil: make([]float64, topo.NumLinks()),
	}
	for i := range s.baseUtil {
		// Links run at 35–65 % baseline utilization: enough headroom that
		// single failures are absorbed by redundancy, little enough that
		// losing half the capacity congests — matching the paper's war
		// stories.
		s.baseUtil[i] = 0.35 + 0.30*s.rng.Float64()
	}
	s.resetState()
	return s
}

// Topology returns the underlying topology.
func (s *Simulator) Topology() *topology.Topology { return s.topo }

// Now returns the time of the last Step.
func (s *Simulator) Now() time.Time { return s.now }

// Inject adds a fault. Faults may be added at any point; activation is
// evaluated per Step.
func (s *Simulator) Inject(f Fault) error {
	if err := f.Validate(s.topo); err != nil {
		return err
	}
	s.faults = append(s.faults, f)
	s.prevActive = append(s.prevActive, false)
	return nil
}

// MustInject is Inject but panics on error; for tests and scenarios.
func (s *Simulator) MustInject(f Fault) {
	if err := s.Inject(f); err != nil {
		panic(err)
	}
}

// Faults returns a copy of the injected faults.
func (s *Simulator) Faults() []Fault {
	out := make([]Fault, len(s.faults))
	copy(out, s.faults)
	return out
}

// Isolate administratively removes a device from service (the SOP
// mitigation action). It takes effect at the next Step.
func (s *Simulator) Isolate(id topology.DeviceID) {
	s.devices[id].Isolated = true
}

// Deisolate reverts an isolation (the SOP rollback plan).
func (s *Simulator) Deisolate(id topology.DeviceID) {
	s.devices[id].Isolated = false
}

// DeviceState returns the state of a device at the current time.
func (s *Simulator) DeviceState(id topology.DeviceID) DeviceState { return s.devices[id] }

// LinkState returns the state of a link at the current time.
func (s *Simulator) LinkState(id topology.LinkID) LinkState { return s.links[id] }

// BaselineUtil returns a link's baseline utilization.
func (s *Simulator) BaselineUtil(id topology.LinkID) float64 { return s.baseUtil[id] }

// resetState recomputes all derived state to "everything healthy",
// preserving isolation flags.
func (s *Simulator) resetState() {
	for i := range s.devices {
		iso := s.devices[i].Isolated
		s.devices[i] = DeviceState{
			Up:      true,
			CPUUtil: 0.15,
			MemUtil: 0.30,
		}
		s.devices[i].Isolated = iso
	}
	for i := range s.links {
		s.links[i] = LinkState{DemandMultiplier: 1}
	}
}

// Step advances the simulation to now, recomputing state and journaling
// fault activation/deactivation transitions. Steps must be monotonically
// non-decreasing in time.
func (s *Simulator) Step(now time.Time) error {
	if !s.now.IsZero() && now.Before(s.now) {
		return fmt.Errorf("netsim: time went backwards: %v < %v", now, s.now)
	}
	s.now = now
	s.resetState()
	for i := range s.faults {
		f := &s.faults[i]
		active := f.ActiveAt(now)
		if active != s.prevActive[i] {
			s.journalTransition(f, active)
			s.prevActive[i] = active
		}
		if active {
			s.applyFault(f)
		}
	}
	return nil
}

func (s *Simulator) applyFault(f *Fault) {
	switch f.Kind {
	case FaultDeviceDown:
		s.devices[f.Device].Up = false
	case FaultDeviceHardware:
		d := &s.devices[f.Device]
		d.HardwareError = true
		d.SilentLoss = maxf(d.SilentLoss, defaultMag(f.Magnitude, 0.3))
		d.CPUUtil = maxf(d.CPUUtil, 0.6)
	case FaultDeviceSoftware:
		d := &s.devices[f.Device]
		d.SoftwareError = true
		d.SilentLoss = maxf(d.SilentLoss, defaultMag(f.Magnitude, 0.2))
		d.CPUUtil = maxf(d.CPUUtil, 0.9)
		d.MemUtil = maxf(d.MemUtil, 0.9)
	case FaultLinkCut:
		l := &s.links[f.Link]
		cut := f.Circuits
		if max := s.topo.Link(f.Link).Circuits; cut > max {
			cut = max
		}
		if cut > l.CircuitsDown {
			l.CircuitsDown = cut
		}
	case FaultFiberBundleCut:
		frac := defaultMag(f.Magnitude, 0.5)
		for _, lid := range s.topo.LinksUnder(f.Location) {
			link := s.topo.Link(lid)
			if !link.InternetEntry {
				continue
			}
			cut := int(frac * float64(link.Circuits))
			if cut < 1 {
				cut = 1
			}
			if cut > s.links[lid].CircuitsDown {
				s.links[lid].CircuitsDown = cut
			}
		}
	case FaultCongestion:
		mult := defaultMag(f.Magnitude, 2.5)
		for _, lid := range s.topo.LinksUnder(f.Location) {
			if mult > s.links[lid].DemandMultiplier {
				s.links[lid].DemandMultiplier = mult
			}
		}
	case FaultRouteError, FaultRouteHijack:
		// Route errors blackhole internet-bound traffic at the area's
		// border devices. Internal reachability is untouched.
		frac := defaultMag(f.Magnitude, 0.4)
		for _, id := range s.topo.DevicesUnder(f.Location) {
			d := s.topo.Device(id)
			if d.Role == topology.RoleBSR || d.Role == topology.RoleDCBR {
				if frac > s.devices[id].RouteBlackhole {
					s.devices[id].RouteBlackhole = frac
				}
			}
		}
	case FaultModification:
		d := &s.devices[f.Device]
		d.ModificationError = true
		d.SilentLoss = maxf(d.SilentLoss, defaultMag(f.Magnitude, 0.5))
	case FaultPowerFailure:
		for _, id := range s.topo.DevicesUnder(f.Location) {
			s.devices[id].Up = false
		}
	case FaultSilentLoss:
		d := &s.devices[f.Device]
		d.SilentLoss = maxf(d.SilentLoss, defaultMag(f.Magnitude, 0.25))
	case FaultBitFlip:
		d := &s.devices[f.Device]
		d.BitFlip = maxf(d.BitFlip, defaultMag(f.Magnitude, 0.01))
	case FaultClockDrift:
		d := &s.devices[f.Device]
		d.ClockDriftSeconds = maxf(d.ClockDriftSeconds, defaultMag(f.Magnitude, 1.5))
	}
}

func defaultMag(m, def float64) float64 {
	if m <= 0 {
		return def
	}
	return m
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// DevicesDownUnder returns how many devices under a path are down.
func (s *Simulator) DevicesDownUnder(p hierarchy.Path) int {
	n := 0
	for _, id := range s.topo.DevicesUnder(p) {
		if !s.devices[id].Up {
			n++
		}
	}
	return n
}

// groupState summarizes a device redundancy group for path evaluation.
type groupState struct {
	total     int
	effective float64 // healthy carrying capacity in device units
	silent    float64 // average silent loss over carrying members
	bitflip   float64
	// deadFrac is the fraction of members that are down or isolated.
	// For ECMP groups traffic reroutes around them; for the rack layer,
	// where each server homes on exactly one ToR, it is outright loss.
	deadFrac float64
}

// groupStateOf aggregates the state of a set of devices.
func (s *Simulator) groupStateOf(ids []topology.DeviceID) groupState {
	g := groupState{total: len(ids)}
	for _, id := range ids {
		st := &s.devices[id]
		if !st.Up || st.Isolated {
			continue
		}
		g.effective++
		g.silent += st.SilentLoss
		g.bitflip += st.BitFlip
	}
	if g.effective > 0 {
		g.silent /= g.effective
		g.bitflip /= g.effective
	}
	if g.total > 0 {
		g.deadFrac = (float64(g.total) - g.effective) / float64(g.total)
	}
	return g
}

// ActiveFaultsAt returns the faults active at the given time, in injection
// order.
func (s *Simulator) ActiveFaultsAt(t time.Time) []Fault {
	var out []Fault
	for i := range s.faults {
		if s.faults[i].ActiveAt(t) {
			out = append(out, s.faults[i])
		}
	}
	return out
}

// SortFaultsByStart orders a fault slice by start time (stable helper for
// scenario reporting).
func SortFaultsByStart(fs []Fault) {
	sort.SliceStable(fs, func(i, j int) bool { return fs[i].Start.Before(fs[j].Start) })
}
