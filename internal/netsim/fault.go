// Package netsim simulates the failing network underneath SkyNet's
// monitoring tools. It substitutes for Alibaba's production network: faults
// are injected into a topology.Topology, the simulator derives device,
// link, and end-to-end path state over time, and the monitor models in
// internal/monitors sample that state to produce raw alerts with each
// tool's characteristic cadence, delay, and blind spots.
package netsim

import (
	"fmt"
	"time"

	"skynet/internal/hierarchy"
	"skynet/internal/topology"
)

// FaultKind enumerates the failure mechanisms of Figure 1 plus the gray
// failures the paper's tools disagree about.
type FaultKind int

// Fault kinds. Comments note the Figure 1 root-cause category each models.
const (
	// FaultDeviceDown kills a device outright (device hardware error).
	FaultDeviceDown FaultKind = iota
	// FaultDeviceHardware is a partial hardware fault: the device stays
	// up but silently drops a fraction of traffic and logs hardware
	// errors (device hardware error).
	FaultDeviceHardware
	// FaultDeviceSoftware is a software crash/flap: BGP sessions flap and
	// a fraction of traffic is lost while processes restart (device
	// software error).
	FaultDeviceSoftware
	// FaultLinkCut severs Circuits circuits of one link bundle
	// (link error).
	FaultLinkCut
	// FaultFiberBundleCut severs a fraction of every internet-entry
	// bundle in a city — the §2.2 severe-failure war story
	// (link error / infrastructure error).
	FaultFiberBundleCut
	// FaultCongestion multiplies traffic demand under a location, e.g. a
	// DDoS attack or a flash crowd (security error).
	FaultCongestion
	// FaultRouteError blackholes a fraction of internet-bound traffic at
	// a location's border routers without any device-visible error —
	// loss of a default/aggregate route (route error).
	FaultRouteError
	// FaultRouteHijack is an external prefix hijack: same internet-bound
	// blackhole, but the control-plane signature is a hijack rather than
	// a withdrawal (route error / security error).
	FaultRouteHijack
	// FaultModification is a failed network modification on a device:
	// misconfiguration drops traffic until rolled back
	// (network modification error / configuration error).
	FaultModification
	// FaultPowerFailure takes down every device under a location
	// (infrastructure error).
	FaultPowerFailure
	// FaultSilentLoss is a gray failure: silent packet loss with no
	// device-side logging at all.
	FaultSilentLoss
	// FaultBitFlip corrupts packets traversing a device (detectable by
	// INT/CRC, invisible to ping loss counters at low rates).
	FaultBitFlip
	// FaultClockDrift desynchronizes a device's PTP clock.
	FaultClockDrift

	numFaultKinds
)

var faultKindNames = [...]string{
	FaultDeviceDown:     "device-down",
	FaultDeviceHardware: "device-hardware",
	FaultDeviceSoftware: "device-software",
	FaultLinkCut:        "link-cut",
	FaultFiberBundleCut: "fiber-bundle-cut",
	FaultCongestion:     "congestion",
	FaultRouteError:     "route-error",
	FaultRouteHijack:    "route-hijack",
	FaultModification:   "modification",
	FaultPowerFailure:   "power-failure",
	FaultSilentLoss:     "silent-loss",
	FaultBitFlip:        "bit-flip",
	FaultClockDrift:     "clock-drift",
}

// String names the fault kind.
func (k FaultKind) String() string {
	if k < 0 || int(k) >= len(faultKindNames) {
		return fmt.Sprintf("fault(%d)", int(k))
	}
	return faultKindNames[k]
}

// Fault is one injected failure with an activation window. Which target
// field matters depends on Kind: device faults use Device, link faults use
// Link, and area faults (congestion, power, route error, fiber bundle)
// use Location.
type Fault struct {
	Kind     FaultKind
	Device   topology.DeviceID
	Link     topology.LinkID
	Location hierarchy.Path

	// Circuits is how many circuits a FaultLinkCut severs (clamped to the
	// bundle size).
	Circuits int

	// Magnitude is kind-specific: silent/hardware loss ratio (0..1),
	// congestion demand multiplier (≥1), route-error blackhole fraction
	// (0..1), or fiber-bundle cut fraction (0..1).
	Magnitude float64

	Start time.Time
	End   time.Time
}

// ActiveAt reports whether the fault is active at t (Start inclusive, End
// exclusive; a zero End means the fault never self-heals).
func (f *Fault) ActiveAt(t time.Time) bool {
	if t.Before(f.Start) {
		return false
	}
	return f.End.IsZero() || t.Before(f.End)
}

// Validate checks the fault against a topology.
func (f *Fault) Validate(topo *topology.Topology) error {
	if f.Kind < 0 || f.Kind >= numFaultKinds {
		return fmt.Errorf("netsim: invalid fault kind %d", int(f.Kind))
	}
	if f.Start.IsZero() {
		return fmt.Errorf("netsim: fault %v has zero start", f.Kind)
	}
	if !f.End.IsZero() && f.End.Before(f.Start) {
		return fmt.Errorf("netsim: fault %v ends before it starts", f.Kind)
	}
	switch f.Kind {
	case FaultDeviceDown, FaultDeviceHardware, FaultDeviceSoftware,
		FaultModification, FaultSilentLoss, FaultBitFlip, FaultClockDrift:
		if int(f.Device) < 0 || int(f.Device) >= topo.NumDevices() {
			return fmt.Errorf("netsim: fault %v targets unknown device %d", f.Kind, f.Device)
		}
	case FaultLinkCut:
		if int(f.Link) < 0 || int(f.Link) >= topo.NumLinks() {
			return fmt.Errorf("netsim: fault %v targets unknown link %d", f.Kind, f.Link)
		}
		if f.Circuits <= 0 {
			return fmt.Errorf("netsim: link cut with %d circuits", f.Circuits)
		}
	case FaultCongestion, FaultRouteError, FaultRouteHijack, FaultPowerFailure, FaultFiberBundleCut:
		if f.Location.IsRoot() {
			return fmt.Errorf("netsim: area fault %v with root location", f.Kind)
		}
	}
	if f.Magnitude < 0 {
		return fmt.Errorf("netsim: negative magnitude %v", f.Magnitude)
	}
	return nil
}
