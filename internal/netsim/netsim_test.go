package netsim

import (
	"math"
	"testing"
	"time"

	"skynet/internal/hierarchy"
	"skynet/internal/topology"
)

var epoch = time.Date(2024, 7, 2, 11, 0, 0, 0, time.UTC)

func newSim(t *testing.T) *Simulator {
	t.Helper()
	return New(topology.MustGenerate(topology.SmallConfig()), 7)
}

func firstOfRole(topo *topology.Topology, role topology.Role) *topology.Device {
	for i := range topo.Devices {
		if topo.Devices[i].Role == role {
			return &topo.Devices[i]
		}
	}
	return nil
}

func TestHealthyBaseline(t *testing.T) {
	s := newSim(t)
	if err := s.Step(epoch); err != nil {
		t.Fatal(err)
	}
	topo := s.Topology()
	cls := topo.Clusters()
	r, err := s.EvalPath(cls[0], cls[len(cls)-1])
	if err != nil {
		t.Fatal(err)
	}
	if r.Loss != 0 {
		t.Errorf("healthy path loss = %v, want 0", r.Loss)
	}
	if r.LatencySeconds <= 0 {
		t.Error("latency should be positive")
	}
	ri, err := s.EvalInternet(cls[0])
	if err != nil {
		t.Fatal(err)
	}
	if ri.Loss != 0 {
		t.Errorf("healthy internet loss = %v, want 0", ri.Loss)
	}
}

func TestEvalPathArgValidation(t *testing.T) {
	s := newSim(t)
	if _, err := s.EvalPath(hierarchy.MustNew("RG01"), s.Topology().Clusters()[0]); err == nil {
		t.Error("non-cluster arg accepted")
	}
	if _, err := s.EvalInternet(hierarchy.MustNew("RG01")); err == nil {
		t.Error("non-cluster internet arg accepted")
	}
}

func TestDeviceDown(t *testing.T) {
	s := newSim(t)
	topo := s.Topology()
	isr := firstOfRole(topo, topology.RoleISR)
	s.MustInject(Fault{Kind: FaultDeviceDown, Device: isr.ID, Start: epoch})
	if err := s.Step(epoch.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if s.DeviceState(isr.ID).Up {
		t.Error("device should be down")
	}
	// Path through the device's cluster should see elevated utilization
	// (traffic shifted to the surviving ISR) but not total loss.
	cluster := isr.Attach
	other := topo.Clusters()[len(topo.Clusters())-1]
	r, err := s.EvalPath(cluster, other)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stages[1].EffUtil <= s.healthyStageUtil(t, cluster) {
		t.Errorf("utilization did not rise after device down")
	}
	if r.Loss >= 1 {
		t.Error("single device down should not cause total loss")
	}
}

// healthyStageUtil computes the first-stage utilization with no faults.
func (s *Simulator) healthyStageUtil(t *testing.T, cluster hierarchy.Path) float64 {
	t.Helper()
	clean := New(s.Topology(), 7)
	if err := clean.Step(epoch); err != nil {
		t.Fatal(err)
	}
	other := s.Topology().Clusters()[len(s.Topology().Clusters())-1]
	r, err := clean.EvalPath(cluster, other)
	if err != nil {
		t.Fatal(err)
	}
	return r.Stages[1].EffUtil
}

func TestWholeGroupDownIsTotalLoss(t *testing.T) {
	s := newSim(t)
	topo := s.Topology()
	cluster := topo.Clusters()[0]
	for _, id := range topo.DevicesUnder(cluster) {
		if topo.Device(id).Role == topology.RoleISR {
			s.MustInject(Fault{Kind: FaultDeviceDown, Device: id, Start: epoch})
		}
	}
	if err := s.Step(epoch.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	r, err := s.EvalPath(cluster, topo.Clusters()[1])
	if err != nil {
		t.Fatal(err)
	}
	if r.Loss != 1 {
		t.Errorf("loss = %v, want 1 with all ISRs dead", r.Loss)
	}
	if !math.IsInf(r.Stages[1].EffUtil, 1) {
		t.Error("dead stage should report infinite utilization")
	}
}

func TestSilentLoss(t *testing.T) {
	s := newSim(t)
	topo := s.Topology()
	isr := firstOfRole(topo, topology.RoleISR)
	s.MustInject(Fault{Kind: FaultSilentLoss, Device: isr.ID, Magnitude: 0.5, Start: epoch})
	if err := s.Step(epoch.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	r, err := s.EvalPath(isr.Attach, topo.Clusters()[len(topo.Clusters())-1])
	if err != nil {
		t.Fatal(err)
	}
	// Two ISRs share the load; one drops 50 % → ~25 % stage loss.
	if got := r.Stages[1].Loss; got < 0.2 || got > 0.3 {
		t.Errorf("silent loss stage = %v, want ≈0.25", got)
	}
	// No journal events: silent loss is device-invisible.
	if n := len(s.Journal(epoch, epoch.Add(time.Hour))); n != 0 {
		t.Errorf("silent loss journaled %d events, want 0", n)
	}
}

func TestFiberBundleCutCongestsInternet(t *testing.T) {
	s := newSim(t)
	topo := s.Topology()
	city := topo.Clusters()[0].Truncate(hierarchy.LevelCity)
	s.MustInject(Fault{Kind: FaultFiberBundleCut, Location: city, Magnitude: 0.5, Start: epoch})
	if err := s.Step(epoch.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	r, err := s.EvalInternet(topo.Clusters()[0])
	if err != nil {
		t.Fatal(err)
	}
	last := r.Stages[len(r.Stages)-1]
	if last.Name != "internet-entry" {
		t.Fatalf("last stage = %q", last.Name)
	}
	if last.EffUtil <= 1 {
		t.Errorf("entry stage utilization = %v, want > 1 (congested)", last.EffUtil)
	}
	if r.Loss <= 0 {
		t.Error("cut entry bundles should cause loss via congestion")
	}
	// The cut generates link-down journal events on both ends.
	evs := s.Journal(epoch, epoch.Add(time.Minute))
	if len(evs) == 0 {
		t.Fatal("fiber cut produced no journal events")
	}
	for _, e := range evs {
		if e.Kind != "link down" {
			t.Errorf("unexpected event kind %q", e.Kind)
		}
		if !e.Up {
			t.Error("activation events should have Up=true")
		}
	}
}

func TestCongestionFault(t *testing.T) {
	s := newSim(t)
	topo := s.Topology()
	site := topo.Clusters()[0].Parent()
	s.MustInject(Fault{Kind: FaultCongestion, Location: site, Magnitude: 3, Start: epoch})
	if err := s.Step(epoch.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	r, err := s.EvalPath(topo.Clusters()[0], topo.Clusters()[len(topo.Clusters())-1])
	if err != nil {
		t.Fatal(err)
	}
	if r.Loss <= 0 {
		t.Error("3x demand should exceed capacity and cause loss")
	}
	if len(s.Journal(epoch, epoch.Add(time.Hour))) != 0 {
		t.Error("congestion should be device-invisible")
	}
}

func TestPowerFailure(t *testing.T) {
	s := newSim(t)
	topo := s.Topology()
	cluster := topo.Clusters()[0]
	s.MustInject(Fault{Kind: FaultPowerFailure, Location: cluster, Start: epoch})
	if err := s.Step(epoch.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if got := s.DevicesDownUnder(cluster); got != len(topo.DevicesUnder(cluster)) {
		t.Errorf("devices down = %d, want all %d", got, len(topo.DevicesUnder(cluster)))
	}
}

func TestFaultWindowAndHealing(t *testing.T) {
	s := newSim(t)
	topo := s.Topology()
	isr := firstOfRole(topo, topology.RoleISR)
	s.MustInject(Fault{
		Kind: FaultDeviceDown, Device: isr.ID,
		Start: epoch.Add(time.Minute), End: epoch.Add(2 * time.Minute),
	})
	if err := s.Step(epoch); err != nil {
		t.Fatal(err)
	}
	if !s.DeviceState(isr.ID).Up {
		t.Error("fault active before start")
	}
	if err := s.Step(epoch.Add(90 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if s.DeviceState(isr.ID).Up {
		t.Error("fault not active in window")
	}
	if err := s.Step(epoch.Add(3 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	if !s.DeviceState(isr.ID).Up {
		t.Error("fault still active after end")
	}
	// Journal has both onset and clear events for the device itself.
	var on, off int
	for _, e := range s.Journal(epoch, epoch.Add(time.Hour)) {
		if e.Device == isr.ID && e.Kind == "device down" {
			if e.Up {
				on++
			} else {
				off++
			}
		}
	}
	if on != 1 || off != 1 {
		t.Errorf("device down events on=%d off=%d, want 1/1", on, off)
	}
}

func TestStepMonotonic(t *testing.T) {
	s := newSim(t)
	if err := s.Step(epoch); err != nil {
		t.Fatal(err)
	}
	if err := s.Step(epoch.Add(-time.Second)); err == nil {
		t.Error("time going backwards should error")
	}
}

func TestIsolation(t *testing.T) {
	s := newSim(t)
	topo := s.Topology()
	isr := firstOfRole(topo, topology.RoleISR)
	s.MustInject(Fault{Kind: FaultSilentLoss, Device: isr.ID, Magnitude: 0.5, Start: epoch})
	if err := s.Step(epoch.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	far := topo.Clusters()[len(topo.Clusters())-1]
	before, _ := s.EvalPath(isr.Attach, far)
	// Isolating the lossy device removes the silent loss (remaining ISR
	// carries everything, congested but clean).
	s.Isolate(isr.ID)
	if err := s.Step(epoch.Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	after, _ := s.EvalPath(isr.Attach, far)
	if after.Stages[1].Loss >= before.Stages[1].Loss && before.Stages[1].Loss > 0 {
		t.Errorf("isolation did not reduce stage loss: before=%v after=%v",
			before.Stages[1].Loss, after.Stages[1].Loss)
	}
	s.Deisolate(isr.ID)
	if err := s.Step(epoch.Add(3 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if s.DeviceState(isr.ID).Isolated {
		t.Error("deisolate did not stick")
	}
}

func TestInjectValidation(t *testing.T) {
	s := newSim(t)
	bad := []Fault{
		{Kind: FaultKind(99), Start: epoch},
		{Kind: FaultDeviceDown, Device: -1, Start: epoch},
		{Kind: FaultDeviceDown, Device: topology.DeviceID(s.Topology().NumDevices()), Start: epoch},
		{Kind: FaultLinkCut, Link: -1, Circuits: 1, Start: epoch},
		{Kind: FaultLinkCut, Link: 0, Circuits: 0, Start: epoch},
		{Kind: FaultCongestion, Start: epoch}, // root location
		{Kind: FaultDeviceDown},               // zero start
		{Kind: FaultDeviceDown, Start: epoch, End: epoch.Add(-time.Minute)},
		{Kind: FaultSilentLoss, Magnitude: -1, Start: epoch},
	}
	for i, f := range bad {
		if err := s.Inject(f); err == nil {
			t.Errorf("fault %d accepted: %+v", i, f)
		}
	}
}

func TestLinkCutClamped(t *testing.T) {
	s := newSim(t)
	l := s.Topology().Link(0)
	s.MustInject(Fault{Kind: FaultLinkCut, Link: l.ID, Circuits: l.Circuits * 10, Start: epoch})
	if err := s.Step(epoch.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if got := s.LinkState(l.ID).CircuitsDown; got != l.Circuits {
		t.Errorf("CircuitsDown = %d, want clamped to %d", got, l.Circuits)
	}
}

func TestRouteErrorHitsBorderOnly(t *testing.T) {
	s := newSim(t)
	topo := s.Topology()
	city := topo.Clusters()[0].Truncate(hierarchy.LevelCity)
	s.MustInject(Fault{Kind: FaultRouteError, Location: city, Magnitude: 0.4, Start: epoch})
	if err := s.Step(epoch.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	for _, id := range topo.DevicesUnder(city) {
		d := topo.Device(id)
		st := s.DeviceState(id)
		isBorder := d.Role == topology.RoleBSR || d.Role == topology.RoleDCBR
		if isBorder && st.RouteBlackhole == 0 {
			t.Errorf("border device %s unaffected by route error", d.Name)
		}
		if !isBorder && st.RouteBlackhole != 0 {
			t.Errorf("non-border device %s affected by route error", d.Name)
		}
	}
	// Internal paths are untouched; the internet path bleeds.
	internal, err := s.EvalPath(topo.Clusters()[0], topo.Clusters()[len(topo.Clusters())-1])
	if err != nil {
		t.Fatal(err)
	}
	if internal.Loss != 0 {
		t.Errorf("route error leaked into internal path: loss=%v", internal.Loss)
	}
	inet, err := s.EvalInternet(topo.Clusters()[0])
	if err != nil {
		t.Fatal(err)
	}
	if inet.Loss <= 0 {
		t.Error("route error invisible on the internet path")
	}
}

func TestFaultKindStrings(t *testing.T) {
	for k := FaultKind(0); k < numFaultKinds; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
	if FaultKind(99).String() != "fault(99)" {
		t.Error("out of range kind name")
	}
}

func TestActiveFaultsAt(t *testing.T) {
	s := newSim(t)
	s.MustInject(Fault{Kind: FaultDeviceDown, Device: 0, Start: epoch, End: epoch.Add(time.Minute)})
	s.MustInject(Fault{Kind: FaultDeviceDown, Device: 1, Start: epoch.Add(time.Hour)})
	if got := len(s.ActiveFaultsAt(epoch.Add(30 * time.Second))); got != 1 {
		t.Errorf("active at +30s = %d, want 1", got)
	}
	if got := len(s.ActiveFaultsAt(epoch.Add(2 * time.Hour))); got != 1 {
		t.Errorf("active at +2h = %d, want 1", got)
	}
	if got := len(s.ActiveFaultsAt(epoch.Add(90 * time.Second))); got != 0 {
		t.Errorf("active at +90s = %d, want 0", got)
	}
	fs := s.Faults()
	SortFaultsByStart(fs)
	if !fs[0].Start.Before(fs[1].Start) {
		t.Error("sort by start failed")
	}
}

func TestWorstStage(t *testing.T) {
	s := newSim(t)
	topo := s.Topology()
	isr := firstOfRole(topo, topology.RoleISR)
	s.MustInject(Fault{Kind: FaultSilentLoss, Device: isr.ID, Magnitude: 0.8, Start: epoch})
	if err := s.Step(epoch.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	r, err := s.EvalPath(isr.Attach, topo.Clusters()[len(topo.Clusters())-1])
	if err != nil {
		t.Fatal(err)
	}
	w := r.WorstStage()
	if w != 1 {
		t.Errorf("worst stage = %d, want 1 (the faulty ISR group)", w)
	}
	empty := PathReport{}
	if empty.WorstStage() != -1 {
		t.Error("empty report worst stage should be -1")
	}
}

func TestBitFlipPropagates(t *testing.T) {
	s := newSim(t)
	topo := s.Topology()
	isr := firstOfRole(topo, topology.RoleISR)
	s.MustInject(Fault{Kind: FaultBitFlip, Device: isr.ID, Magnitude: 0.02, Start: epoch})
	if err := s.Step(epoch.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	r, _ := s.EvalPath(isr.Attach, topo.Clusters()[len(topo.Clusters())-1])
	if r.Corrupt <= 0 {
		t.Error("bit flips should propagate to path corruption")
	}
	if r.Loss > 0 {
		t.Error("bit flips alone should not register as loss")
	}
}

func TestSameClusterPath(t *testing.T) {
	s := newSim(t)
	cl := s.Topology().Clusters()[0]
	if err := s.Step(epoch); err != nil {
		t.Fatal(err)
	}
	r, err := s.EvalPath(cl, cl)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Stages) != 2 || r.Stages[0].Name != "ToR" || r.Stages[1].Name != "ISR" {
		t.Errorf("same-cluster path stages = %+v", r.Stages)
	}
}
