package netsim

import (
	"sort"
	"time"

	"skynet/internal/hierarchy"
	"skynet/internal/topology"
)

// Event is a journaled state transition: the device-visible trace of a
// fault activating or healing. The syslog, SNMP, and modification-event
// monitor models read the journal — they only see what a device would
// itself notice, which is exactly the coverage limitation §2.1 describes
// (silent loss and route errors produce no events here).
type Event struct {
	Time   time.Time
	Device topology.DeviceID
	// Kind is the alert-type string the device-side tooling would log,
	// e.g. "link down", "hardware error".
	Kind string
	// Up distinguishes onset (true at fault activation) from clearing.
	Up bool
	// Detail carries extra context for raw-message synthesis.
	Detail string
}

// Journal returns events in [since, until), ordered by time then device.
func (s *Simulator) Journal(since, until time.Time) []Event {
	var out []Event
	for _, e := range s.journal {
		if !e.Time.Before(since) && e.Time.Before(until) {
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if !out[i].Time.Equal(out[j].Time) {
			return out[i].Time.Before(out[j].Time)
		}
		return out[i].Device < out[j].Device
	})
	return out
}

// journalTransition records the device-visible events of one fault
// activating (active=true) or deactivating.
func (s *Simulator) journalTransition(f *Fault, active bool) {
	at := f.Start
	if !active {
		at = f.End
	}
	add := func(dev topology.DeviceID, kind, detail string) {
		s.journal = append(s.journal, Event{Time: at, Device: dev, Kind: kind, Up: active, Detail: detail})
	}
	switch f.Kind {
	case FaultDeviceDown:
		add(f.Device, "device down", "chassis power lost")
		// Neighbors see their link to the dead device drop: physical
		// layer, line protocol, and the routing session riding it.
		for _, lid := range s.topo.LinksOf(f.Device) {
			l := s.topo.Link(lid)
			other, _ := l.Other(f.Device)
			peer := "peer " + s.topo.Device(f.Device).Name
			add(other, "link down", peer)
			add(other, "port down", peer)
			add(other, "bgp peer down", peer)
		}
	case FaultDeviceHardware:
		add(f.Device, "hardware error", "linecard parity error")
	case FaultDeviceSoftware:
		add(f.Device, "software error", "routing process restarted")
		add(f.Device, "bgp peer down", "hold timer expired")
		add(f.Device, "out of memory", "process rpd")
	case FaultLinkCut:
		l := s.topo.Link(f.Link)
		detail := "circuit failure on " + l.CircuitSet
		add(l.A, "link down", detail)
		add(l.B, "link down", detail)
		add(l.A, "port down", detail)
		add(l.B, "port down", detail)
		// BGP sessions ride the member circuits; cutting circuits drops
		// sessions on both speakers.
		add(l.A, "bgp peer down", detail)
		add(l.B, "bgp peer down", detail)
	case FaultFiberBundleCut:
		for _, lid := range s.topo.LinksUnder(f.Location) {
			l := s.topo.Link(lid)
			if !l.InternetEntry {
				continue
			}
			add(l.A, "link down", "entry fiber cut "+l.CircuitSet)
			add(l.B, "link down", "entry fiber cut "+l.CircuitSet)
		}
	case FaultModification:
		add(f.Device, "modification failed", "config commit rejected")
	case FaultPowerFailure:
		for _, id := range s.topo.DevicesUnder(f.Location) {
			add(id, "device down", "facility power failure")
		}
	case FaultBitFlip:
		add(f.Device, "crc error", "interface CRC counter rising")
	case FaultClockDrift:
		add(f.Device, "clock out of sync", "ptp offset beyond threshold")
	case FaultCongestion, FaultRouteError, FaultRouteHijack, FaultSilentLoss:
		// Deliberately silent: nothing device-visible happens. These
		// faults are only observable through behaviour monitors (ping,
		// sFlow, route monitoring), which is what makes them the hard
		// cases of §2.1.
	}
}

// roleMembers returns the device IDs with the given role attached at the
// location, using a lazily built index.
func (s *Simulator) roleMembers(loc hierarchy.Path, role topology.Role) []topology.DeviceID {
	if s.roleIdx == nil {
		s.roleIdx = make(map[roleKey][]topology.DeviceID)
		for i := range s.topo.Devices {
			d := &s.topo.Devices[i]
			k := roleKey{d.Attach, d.Role}
			s.roleIdx[k] = append(s.roleIdx[k], d.ID)
		}
	}
	return s.roleIdx[roleKey{loc, role}]
}

type roleKey struct {
	loc  hierarchy.Path
	role topology.Role
}
