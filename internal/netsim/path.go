package netsim

import (
	"fmt"
	"math"

	"skynet/internal/hierarchy"
	"skynet/internal/topology"
)

// This file evaluates end-to-end paths through the simulated network. The
// generated topology routes hierarchically — up from the source cluster
// through its ISR/CSR/BSR/DCBR aggregation groups to the common ancestor,
// then down again — so a path is a chain of redundancy-group "stages".
// Per-stage loss combines three mechanisms:
//
//   - total loss when every member of a stage's group is dead,
//   - silent loss averaged over surviving members (gray failures,
//     route blackholes, failed modifications),
//   - congestion loss when the surviving capacity cannot carry the
//     offered demand (traffic shifted from dead members and cut circuits,
//     possibly inflated by a congestion fault's demand multiplier). This
//     reproduces the §2.2 insight that cut entry cables manifest as
//     congestion loss on the survivors, not as loss on the cut cables.

// Stage is one redundancy group along a path, with its evaluated state.
type Stage struct {
	// Name describes the stage ("ISR", "CSR", "internet-entry", ...).
	Name string
	// Location is the hierarchy node the stage belongs to; alerts blaming
	// this stage are attributed here.
	Location hierarchy.Path
	// Devices are the group members.
	Devices []topology.DeviceID
	// Loss is the stage's packet-loss contribution (0..1).
	Loss float64
	// Corrupt is the stage's bit-flip contribution (0..1).
	Corrupt float64
	// EffUtil is the effective utilization of the stage's link capacity;
	// values above 1 mean congestion.
	EffUtil float64
}

// PathReport is the evaluation of one end-to-end path.
type PathReport struct {
	Stages []Stage
	// Loss is end-to-end packet loss (0..1).
	Loss float64
	// Corrupt is end-to-end corruption ratio (0..1).
	Corrupt float64
	// LatencySeconds is the modeled one-way latency.
	LatencySeconds float64
}

// WorstStage returns the index of the stage with the highest loss, or -1
// for an empty path.
func (r *PathReport) WorstStage() int {
	best, idx := -1.0, -1
	for i := range r.Stages {
		if r.Stages[i].Loss > best {
			best, idx = r.Stages[i].Loss, i
		}
	}
	return idx
}

// EvalPath evaluates the path between two cluster locations. Both
// arguments must be cluster-level paths from the simulator's topology.
func (s *Simulator) EvalPath(a, b hierarchy.Path) (PathReport, error) {
	if a.Level() != hierarchy.LevelCluster || b.Level() != hierarchy.LevelCluster {
		return PathReport{}, fmt.Errorf("netsim: EvalPath wants cluster paths, got %q, %q", a, b)
	}
	var stages []Stage
	// Server traffic enters through the rack layer: a bad ToR hurts the
	// fraction of flows behind it, which is how Pingmesh-style server
	// probing sees rack-level gray failures.
	stages = append(stages, s.roleStage("ToR", a, topology.RoleToR))
	stages = append(stages, s.roleStage("ISR", a, topology.RoleISR))
	if a == b {
		return s.finishReport(stages, 0), nil
	}
	ca := a.CommonAncestor(b)
	up := s.upChain(a, ca.Level())
	down := s.upChain(b, ca.Level())
	stages = append(stages, up...)
	// Reverse the down chain so the path reads source → destination.
	for i := len(down) - 1; i >= 0; i-- {
		stages = append(stages, down[i])
	}
	stages = append(stages, s.roleStage("ISR", b, topology.RoleISR))
	stages = append(stages, s.roleStage("ToR", b, topology.RoleToR))
	return s.finishReport(stages, wanHops(a, b)), nil
}

// EvalInternet evaluates the path from a cluster out to the Internet
// through its city's entry bundles.
func (s *Simulator) EvalInternet(c hierarchy.Path) (PathReport, error) {
	if c.Level() != hierarchy.LevelCluster {
		return PathReport{}, fmt.Errorf("netsim: EvalInternet wants a cluster path, got %q", c)
	}
	stages := []Stage{s.roleStage("ToR", c, topology.RoleToR), s.roleStage("ISR", c, topology.RoleISR)}
	stages = append(stages, s.upChain(c, hierarchy.LevelRegion)...)
	stages = append(stages, s.internetStage(c.Truncate(hierarchy.LevelCity)))
	// Route errors blackhole internet-bound traffic at the border stages;
	// the internal mesh never sees this loss.
	for i := range stages {
		if bh := s.meanBlackhole(stages[i].Devices); bh > 0 {
			stages[i].Loss = 1 - (1-stages[i].Loss)*(1-bh)
		}
	}
	return s.finishReport(stages, 1), nil
}

// upChain builds the aggregation stages from a cluster up to (exclusive)
// the given ancestor level: CSR at the site, BSR at the logic site, DCBR
// at the city.
func (s *Simulator) upChain(c hierarchy.Path, stop hierarchy.Level) []Stage {
	var out []Stage
	if stop <= hierarchy.LevelSite {
		out = append(out, s.roleStage("CSR", c.Truncate(hierarchy.LevelSite), topology.RoleCSR))
	}
	if stop <= hierarchy.LevelLogicSite {
		out = append(out, s.roleStage("BSR", c.Truncate(hierarchy.LevelLogicSite), topology.RoleBSR))
	}
	if stop <= hierarchy.LevelCity {
		out = append(out, s.roleStage("DCBR", c.Truncate(hierarchy.LevelCity), topology.RoleDCBR))
	}
	return out
}

// roleStage evaluates the redundancy group of the given role at the
// location.
func (s *Simulator) roleStage(name string, loc hierarchy.Path, role topology.Role) Stage {
	ids := s.roleMembers(loc, role)
	st := Stage{Name: name, Location: loc, Devices: ids}
	s.evalStage(&st, nil)
	return st
}

// internetStage evaluates a city's internet-entry bundles as one stage.
func (s *Simulator) internetStage(city hierarchy.Path) Stage {
	var linkIDs []topology.LinkID
	devs := map[topology.DeviceID]bool{}
	for _, lid := range s.topo.LinksUnder(city) {
		l := s.topo.Link(lid)
		if !l.InternetEntry {
			continue
		}
		linkIDs = append(linkIDs, lid)
		devs[l.A] = true
		devs[l.B] = true
	}
	ids := make([]topology.DeviceID, 0, len(devs))
	for id := range devs {
		ids = append(ids, id)
	}
	sortDeviceIDs(ids)
	st := Stage{Name: "internet-entry", Location: city, Devices: ids}
	s.evalStage(&st, linkIDs)
	return st
}

// evalStage fills Loss/Corrupt/EffUtil. If links is nil the stage uses all
// links incident to its member devices.
func (s *Simulator) evalStage(st *Stage, links []topology.LinkID) {
	g := s.groupStateOf(st.Devices)
	if g.total == 0 {
		// No such group at this location (degenerate topologies): the
		// stage is transparent.
		st.Loss, st.EffUtil = 0, 0
		return
	}
	if g.effective == 0 {
		st.Loss = 1
		st.EffUtil = math.Inf(1)
		return
	}
	if links == nil {
		seen := map[topology.LinkID]bool{}
		for _, id := range st.Devices {
			for _, lid := range s.topo.LinksOf(id) {
				if !seen[lid] {
					seen[lid] = true
					links = append(links, lid)
				}
			}
		}
	}
	shift := float64(g.total) / g.effective
	var capAvail, demand, hotspot float64
	for _, lid := range links {
		l := s.topo.Link(lid)
		ls := &s.links[lid]
		availFrac := 1 - float64(ls.CircuitsDown)/float64(l.Circuits)
		linkCap := l.CapacityGbps * availFrac
		linkDemand := l.CapacityGbps * s.baseUtil[lid] * ls.DemandMultiplier
		capAvail += linkCap
		demand += linkDemand
		// Hotspot loss: ECMP hashing is not perfectly balanced (the §7.3
		// unbalanced-hash incident), so a bundle driven beyond its
		// surviving capacity drops the flows hashed onto it even when the
		// stage as a whole has headroom. Loss is weighted by the share of
		// traffic crossing the bundle.
		if linkCap > 0 && linkDemand*shift > linkCap {
			hotspot += linkDemand * (1 - linkCap/(linkDemand*shift))
		}
	}
	// Traffic from dead/isolated group members shifts onto survivors.
	demand *= shift
	var congLoss float64
	switch {
	case capAvail <= 0:
		st.Loss = 1
		st.EffUtil = math.Inf(1)
		return
	default:
		st.EffUtil = demand / capAvail
		if st.EffUtil > 1 {
			congLoss = 1 - 1/st.EffUtil
		}
	}
	hotspotLoss := 0.0
	if demand > 0 {
		hotspotLoss = minf(hotspot*shift/demand, 1)
	}
	if hotspotLoss > congLoss {
		congLoss = hotspotLoss
	}
	st.Loss = 1 - (1-g.silent)*(1-congLoss)
	// The rack layer has no rerouting: servers home on exactly one ToR,
	// so a dead ToR black-holes its rack's share of the cluster traffic.
	if st.Name == "ToR" && g.deadFrac > 0 {
		st.Loss = 1 - (1-st.Loss)*(1-g.deadFrac)
	}
	st.Corrupt = g.bitflip
}

// finishReport combines stages into end-to-end figures.
func (s *Simulator) finishReport(stages []Stage, wan int) PathReport {
	r := PathReport{Stages: stages}
	pass, passCorrupt := 1.0, 1.0
	latency := 0.0005 * float64(len(stages)+1) // per-hop base
	latency += 0.002 * float64(wan)            // inter-city/region distance
	for i := range stages {
		pass *= 1 - stages[i].Loss
		passCorrupt *= 1 - stages[i].Corrupt
		if u := stages[i].EffUtil; u > 0.8 && !math.IsInf(u, 1) {
			// Queueing delay grows as utilization approaches saturation.
			latency += 0.0005 * minf(u*u*4, 20)
		}
	}
	r.Loss = 1 - pass
	r.Corrupt = 1 - passCorrupt
	r.LatencySeconds = latency
	return r
}

// wanHops counts the WAN distance between two clusters: 0 within a city,
// 1 across cities, 2 across regions.
func wanHops(a, b hierarchy.Path) int {
	ca := a.CommonAncestor(b)
	switch {
	case ca.Level() >= hierarchy.LevelCity:
		return 0
	case ca.Level() == hierarchy.LevelRegion:
		return 1
	default:
		return 2
	}
}

// meanBlackhole averages the internet-bound blackhole ratio over the
// carrying members of a device set.
func (s *Simulator) meanBlackhole(ids []topology.DeviceID) float64 {
	var sum float64
	n := 0
	for _, id := range ids {
		st := &s.devices[id]
		if !st.Up || st.Isolated {
			continue
		}
		sum += st.RouteBlackhole
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func sortDeviceIDs(ids []topology.DeviceID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
