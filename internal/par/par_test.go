package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoRunsEveryTaskExactlyOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 1000
		counts := make([]atomic.Int32, n)
		Do(workers, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestDoSerialRunsInOrderOnCallerGoroutine(t *testing.T) {
	var order []int
	Do(1, 5, func(i int) { order = append(order, i) }) // no synchronization: must be inline
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order broken: %v", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("ran %d of 5 tasks", len(order))
	}
}

func TestDoZeroAndNegativeTasks(t *testing.T) {
	ran := false
	Do(4, 0, func(int) { ran = true })
	Do(4, -3, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran for n <= 0")
	}
}

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-2); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-2) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}

func TestDoTimedReportsEveryTask(t *testing.T) {
	const n = 32
	var mu sync.Mutex
	seen := make(map[int]time.Duration)
	var ran [n]bool
	DoTimed(4, n, func(i int, start time.Time, d time.Duration) {
		if start.IsZero() || d < 0 {
			t.Errorf("task %d: start=%v d=%v", i, start, d)
		}
		mu.Lock()
		seen[i] = d
		mu.Unlock()
	}, func(i int) {
		ran[i] = true
	})
	if len(seen) != n {
		t.Fatalf("done called for %d of %d tasks", len(seen), n)
	}
	for i := range ran {
		if !ran[i] {
			t.Fatalf("task %d never ran", i)
		}
	}
}

func TestDoTimedNilDoneIsDo(t *testing.T) {
	var order []int
	DoTimed(1, 4, nil, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("nil-done serial order broken: %v", order)
		}
	}
	if len(order) != 4 {
		t.Fatalf("ran %d of 4 tasks", len(order))
	}
}
