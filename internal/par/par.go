// Package par is the pipeline's tiny fan-out helper: a bounded,
// allocation-light parallel-for used by the sharded preprocessor, locator,
// and evaluator stages.
//
// Determinism contract: Do runs independent tasks on up to `workers`
// goroutines. Each task must write only to state it owns (its shard map,
// its incident, its slot of a pre-sized result slice); because no two
// tasks share mutable state and all merging happens serially after Do
// returns, results are identical for every worker count — including 1,
// where everything runs inline on the caller's goroutine with zero
// scheduling overhead.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Workers normalizes a worker-count setting: n > 0 is used as given,
// anything else (the zero value of a config field) means "all cores",
// i.e. GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// spawnHook, when installed, runs first on every worker goroutine Do and
// DoWorkers spawn, with the worker's index in [0, workers). internal/prof
// installs it to stamp worker goroutines with their shard identity as a
// pprof label (the stage and episode labels are inherited from the
// spawning goroutine automatically). When unset the cost is one atomic
// load per fan-out, so the uninstrumented hot path is unchanged.
var spawnHook atomic.Pointer[func(worker int)]

// SetSpawnHook installs fn as the worker-goroutine spawn hook. It runs
// concurrently on every spawned worker and must be safe for that; nil
// uninstalls. Installation is expected once at setup time.
func SetSpawnHook(fn func(worker int)) {
	if fn == nil {
		spawnHook.Store(nil)
		return
	}
	spawnHook.Store(&fn)
}

// Do runs fn(i) for every i in [0, n), spread over at most `workers`
// goroutines, and returns when all calls have completed. Tasks are
// claimed from a shared counter so uneven task costs balance out. With
// workers <= 1 or n <= 1 the calls run inline, in order, on the caller's
// goroutine — the serial reference path the parallel one must match.
func Do(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	hook := spawnHook.Load()
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			if hook != nil {
				(*hook)(worker)
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}(w)
	}
	wg.Wait()
}

// DoWorkers is Do with the claiming worker's index passed alongside the
// task index — for fan-outs whose tasks share per-worker scratch buffers
// (the locator's type-counting epoch arrays). Worker indexes are in
// [0, workers); with workers <= 1 or n <= 1 every task runs inline, in
// order, as worker 0.
func DoWorkers(workers, n int, fn func(worker, task int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	hook := spawnHook.Load()
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			if hook != nil {
				(*hook)(worker)
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
}

// DoTimedWorkers is DoWorkers with DoTimed's per-task timing callback.
// A nil done is exactly DoWorkers.
func DoTimedWorkers(workers, n int, done func(i int, start time.Time, d time.Duration), fn func(worker, task int)) {
	if done == nil {
		DoWorkers(workers, n, fn)
		return
	}
	DoWorkers(workers, n, func(worker, task int) {
		start := time.Now()
		fn(worker, task)
		done(task, start, time.Since(start))
	})
}

// DoTimed is Do with per-task timing: after each task completes, done is
// called with the task index, the instant a worker picked it up, and how
// long it ran. done is invoked on the worker's goroutine, concurrently
// with other tasks' callbacks — callers pass callbacks that write only
// task-owned state (a span tracer's pre-allocated shard slots). A nil
// done is exactly Do: no clock reads, no extra work.
func DoTimed(workers, n int, done func(i int, start time.Time, d time.Duration), fn func(i int)) {
	if done == nil {
		Do(workers, n, fn)
		return
	}
	Do(workers, n, func(i int) {
		start := time.Now()
		fn(i)
		done(i, start, time.Since(start))
	})
}
