package experiments

import (
	"fmt"
	"sort"
	"time"

	"skynet/internal/alert"
	"skynet/internal/metrics"
)

// Fig10a regenerates the severity-score comparison over a mixed
// operational load — mostly benign events that redundancy absorbs, a few
// genuinely harmful failures — matching the §6.4 population where
// "hundreds of network events occur monthly, though only a few truly
// constitute harmful network failures". Following the paper's operator
// labeling, an incident is a FAILURE incident when its failure caused
// customer-visible behaviour breakage (failure-class evidence present).
// Scores are capped at 100 for presentation, as in the paper.
func Fig10a(opts Options) (*Result, error) {
	records, err := mixedCorpus(opts)
	if err != nil {
		return nil, err
	}
	all, failure := severityGroups(records)
	res := &Result{
		Name:       "fig10a",
		Title:      "Severity score of network incidents (cap 100)",
		PaperShape: "failure incidents score visibly higher than the all-incident distribution; threshold 10 keeps all failures",
		Header:     []string{"group", "n", "min", "median", "p90", "max"},
	}
	res.Rows = append(res.Rows, distRow("all incidents", all))
	res.Rows = append(res.Rows, distRow("failure incidents", failure))
	// The filter property that justifies threshold 10: no HARMFUL
	// incident below it.
	missed := 0
	for _, s := range failure {
		if s < opts.Engine.Evaluator.SeverityThreshold {
			missed++
		}
	}
	res.Notes = append(res.Notes, fmt.Sprintf("failure incidents below threshold %.0f: %d of %d",
		opts.Engine.Evaluator.SeverityThreshold, missed, len(failure)))
	return res, nil
}

// severityGroups splits a corpus's incidents into the all/failure
// populations with the presentation cap applied. "Failure incidents"
// follows the paper's operator labeling: incidents of non-benign failures
// with customer-visible breakage that the automation did not already
// mitigate — the ones a human must act on.
func severityGroups(records []runRecord) (all, failure []float64) {
	cap100 := func(v float64) float64 {
		if v > 100 {
			return 100
		}
		return v
	}
	for i := range records {
		rec := &records[i]
		for _, in := range rec.Incidents {
			all = append(all, cap100(in.Severity))
			harmful := !rec.Scenario.Benign && !rec.SOP &&
				rec.Scenario.Matches(in.Root, in.Start, in.UpdateTime) &&
				in.TypeCount(alert.ClassFailure) > 0
			if harmful {
				failure = append(failure, cap100(in.Severity))
			}
		}
	}
	return all, failure
}

func distRow(label string, vals []float64) []string {
	if len(vals) == 0 {
		return []string{label, "0", "-", "-", "-", "-"}
	}
	sorted := make([]float64, len(vals))
	copy(sorted, vals)
	sort.Float64s(sorted)
	q := func(f float64) string {
		idx := int(f * float64(len(sorted)-1))
		return fmt.Sprintf("%.1f", sorted[idx])
	}
	return []string{label, fmt.Sprintf("%d", len(vals)), q(0), q(0.5), q(0.9), q(1)}
}

// Fig10b regenerates the monthly incident counts before and after the
// severity filter: months 4–12, each month an independent corpus slice;
// the filter should cut volume by one to two orders of magnitude with no
// failure incident lost.
func Fig10b(opts Options) (*Result, error) {
	res := &Result{
		Name:       "fig10b",
		Title:      "Incident count per month before/after severity filter",
		PaperShape: "filter reduces incidents by ~2 orders of magnitude; after filtering, <1/day with zero false negatives",
		Header:     []string{"month", "all incidents", "severe incidents"},
	}
	monthOpts := opts
	// Each month carries a few harmful failures plus 3x benign events;
	// bound the per-month harmful count so the nine-month sweep stays
	// tractable at large corpus settings.
	monthOpts.Scenarios = opts.Scenarios / 8
	if monthOpts.Scenarios < 2 {
		monthOpts.Scenarios = 2
	}
	totalAll, totalSevere := 0, 0
	for month := 4; month <= 12; month++ {
		monthOpts.Seed = opts.Seed + int64(month)*1000
		records, err := mixedCorpus(monthOpts)
		if err != nil {
			return nil, err
		}
		all, severe := 0, 0
		for i := range records {
			all += len(records[i].Incidents)
			severe += records[i].Severe
		}
		totalAll += all
		totalSevere += severe
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", month), fmt.Sprintf("%d", all), fmt.Sprintf("%d", severe),
		})
	}
	if totalSevere > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"overall reduction factor %.1fx at this corpus scale (the paper's ~2 orders come from production event rates)",
			float64(totalAll)/float64(totalSevere)))
	}
	return res, nil
}

// Fig10c regenerates the mitigation-time comparison via the operator
// model. The paper's claim is about SEVERE failures — "the average
// mitigation time for severe failures decreased by 80%" — so the corpus
// here is the severe-scenario set (the §2.2/§5.1 families), not the mixed
// background corpus.
func Fig10c(opts Options) (*Result, error) {
	records, err := severeCorpus(opts)
	if err != nil {
		return nil, err
	}
	model := metrics.DefaultOperatorModel()
	var before, after []time.Duration
	for i := range records {
		rec := &records[i]
		if rec.Outcome.TruePositives == 0 {
			continue // undetected (should not happen at production settings)
		}
		before = append(before, model.ManualMitigation(len(rec.Raw)))
		after = append(after, model.SkyNetMitigation(rec.Severe, rec.Zoomed, rec.SOP))
	}
	b := metrics.Summarize(before)
	a := metrics.Summarize(after)
	res := &Result{
		Name:       "fig10c",
		Title:      "Mitigation time before vs after SkyNet (operator model)",
		PaperShape: "median and maximum both reduced by >80% (median 736s→147s, max 14028s→1920s)",
		Header:     []string{"stat", "before", "after", "reduction"},
	}
	res.Rows = [][]string{
		{"median", b.Median.Round(time.Second).String(), a.Median.Round(time.Second).String(), pct(metrics.Reduction(b.Median, a.Median))},
		{"p90", b.P90.Round(time.Second).String(), a.P90.Round(time.Second).String(), pct(metrics.Reduction(b.P90, a.P90))},
		{"max", b.Max.Round(time.Second).String(), a.Max.Round(time.Second).String(), pct(metrics.Reduction(b.Max, a.Max))},
	}
	res.Notes = append(res.Notes, fmt.Sprintf("%d mitigated failures", len(before)))
	return res, nil
}
