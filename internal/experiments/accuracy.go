package experiments

import (
	"fmt"
	"sort"
	"time"

	"skynet/internal/alert"
	"skynet/internal/baseline"
	"skynet/internal/locator"
	"skynet/internal/metrics"
	"skynet/internal/scenario"
	"skynet/internal/trace"
)

// Fig8a regenerates the data-source ablation: run the same corpus with
// All/6/4/3 data sources (removing low-coverage tools first) and measure
// false positives and negatives.
func Fig8a(opts Options) (*Result, error) {
	// Establish per-tool coverage to order the removal.
	full, err := corpus(opts)
	if err != nil {
		return nil, err
	}
	runs := make([]baseline.Run, len(full))
	for i := range full {
		runs[i] = baseline.Run{Raw: full[i].Raw, Scenario: &full[i].Scenario}
	}
	cov := baseline.Coverage(runs)
	srcs := alert.Sources()
	sort.Slice(srcs, func(i, j int) bool { return cov[srcs[i]] > cov[srcs[j]] }) // high coverage first

	res := &Result{
		Name:       "fig8a",
		Title:      "Locating accuracy vs number of data sources",
		PaperShape: "removing sources barely moves FP but steadily raises FN (missed failures)",
		Header:     []string{"sources", "false positive", "false negative"},
	}
	evaluateSet := func(label string, keep []alert.Source) error {
		var recs []runRecord
		if len(keep) == 0 {
			recs = full
		} else {
			var err error
			recs, err = corpus(opts, keep...)
			if err != nil {
				return err
			}
		}
		var outs []metrics.Outcome
		for i := range recs {
			outs = append(outs, recs[i].Outcome)
		}
		total := metrics.Merge(outs...)
		res.Rows = append(res.Rows, []string{label, pct(total.FPRatio()), pct(total.FNRatio())})
		return nil
	}
	if err := evaluateSet(fmt.Sprintf("All (%d)", len(srcs)), nil); err != nil {
		return nil, err
	}
	for _, n := range []int{6, 4, 3} {
		if n > len(srcs) {
			continue
		}
		if err := evaluateSet(fmt.Sprintf("%d", n), srcs[:n]); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Fig9ParameterSets is the x-axis of Figure 9, in paper order. The first
// entry is the per-(type,location) counting baseline at production
// thresholds.
var Fig9ParameterSets = []string{
	"type+location",
	"0/1+2/5",
	"2/0+0/5",
	"2/1+2/0",
	"1/1+2/5",
	"2/1+2/4",
	"2/1+1/5",
	"2/1+2/5",
	"2/1+3/5",
	"2/1+2/6",
}

// Fig9 regenerates the threshold sweep: replay the same raw corpus through
// locators configured with each parameter set and measure FP/FN.
func Fig9(opts Options) (*Result, error) {
	records, err := corpus(opts)
	if err != nil {
		return nil, err
	}
	topo, err := topoGen(opts.Topology)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Name:       "fig9",
		Title:      "Accuracy with different incident thresholds (A/B+C/D)",
		PaperShape: "production 2/1+2/5 gives 0 FN with the lowest FP; type+location counting explodes FP to ~70%; disabling clauses raises FN",
		Header:     []string{"threshold", "false positive", "false negative"},
	}
	for _, setting := range Fig9ParameterSets {
		engCfg := opts.Engine
		engCfg.EnableSOP = false
		if setting == "type+location" {
			engCfg.Locator.Thresholds = locator.ProductionThresholds()
			engCfg.Locator.TypeAndLocation = true
		} else {
			th, err := locator.ParseThresholds(setting)
			if err != nil {
				return nil, err
			}
			engCfg.Locator.Thresholds = th
			engCfg.Locator.TypeAndLocation = false
		}
		var outs []metrics.Outcome
		for i := range records {
			eng, err := trace.Replay(records[i].Raw, topo, engCfg, 10*time.Second)
			if err != nil {
				return nil, err
			}
			outs = append(outs, metrics.Evaluate(eng.AllIncidents(),
				[]scenario.Scenario{records[i].Scenario}))
		}
		total := metrics.Merge(outs...)
		res.Rows = append(res.Rows, []string{setting, pct(total.FPRatio()), pct(total.FNRatio())})
	}
	return res, nil
}
