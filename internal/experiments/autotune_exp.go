package experiments

import (
	"fmt"

	"skynet/internal/autotune"
	"skynet/internal/locator"
)

// Autotune runs the §9 "better thresholds" future-work experiment: sweep
// the incident-threshold space over a labeled corpus and compare the
// selected setting with the hand-tuned production "2/1+2/5".
func Autotune(opts Options) (*Result, error) {
	topo, err := topoGen(opts.Topology)
	if err != nil {
		return nil, err
	}
	n := opts.Scenarios / 2
	if n > 10 {
		n = 10 // the sweep is quadratic in corpus x candidates; 10 labeled traces suffice
	}
	if n < 4 {
		n = 4
	}
	corpus, err := autotune.BuildCorpus(topo, opts.Monitors, n, opts.Window, opts.Seed)
	if err != nil {
		return nil, err
	}
	cfg := autotune.DefaultConfig()
	cfg.Engine = opts.Engine
	// Sweep a space that still contains every Figure 9 setting but trims
	// clause maxima the data never reaches.
	cfg.MaxFailureOnly, cfg.MaxComboFail, cfg.MaxComboOther, cfg.MaxAny = 3, 1, 3, 6
	res0, err := autotune.Tune(cfg, topo, corpus)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Name:       "autotune",
		Title:      "Threshold auto-tuning (§9 future work)",
		PaperShape: "production hand-tuned 2/1+2/5: zero FN with lowest FP; the tuner should land on a setting at least as good",
		Header:     []string{"setting", "false positive", "false negative"},
	}
	// Show the tuner's pick, the production setting, and the extremes of
	// the candidate list for context.
	prod := locator.ProductionThresholds()
	var prodCand *autotune.Candidate
	for i := range res0.Candidates {
		if res0.Candidates[i].Thresholds == prod {
			prodCand = &res0.Candidates[i]
			break
		}
	}
	res.Rows = append(res.Rows, []string{
		"tuned: " + res0.Best.Thresholds.String(),
		pct(res0.Best.FPRatio()), pct(res0.Best.FNRatio()),
	})
	if prodCand != nil {
		res.Rows = append(res.Rows, []string{
			"production: " + prod.String(),
			pct(prodCand.FPRatio()), pct(prodCand.FNRatio()),
		})
	}
	worst := res0.Candidates[len(res0.Candidates)-1]
	res.Rows = append(res.Rows, []string{
		"worst candidate: " + worst.Thresholds.String(),
		pct(worst.FPRatio()), pct(worst.FNRatio()),
	})
	res.Notes = append(res.Notes, fmt.Sprintf("%d candidates swept over %d labeled traces; zero-FN achievable: %v",
		len(res0.Candidates), len(corpus), res0.ZeroFN))
	return res, nil
}
