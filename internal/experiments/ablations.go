package experiments

import (
	"fmt"
	"time"

	"skynet/internal/alert"
	"skynet/internal/baseline"
	"skynet/internal/core"
	"skynet/internal/locator"
	"skynet/internal/scenario"
	"skynet/internal/trace"
)

// Ablations evaluates the design choices DESIGN.md calls out. Each
// ablation uses the workload that actually exercises the mechanism:
//
//   - connectivity scoping — two CONCURRENT failures in different cities:
//     scoping keeps them separate incidents; disabling it merges them into
//     one blurred scope (the Figure 5c failure mode).
//   - alert-tree timeout — a failure whose corroborating evidence arrives
//     ~2.5 minutes late (the old-device SNMP delay of §4.2): a 1-minute
//     tree forgets the first alert before the evidence lands; the paper's
//     5-minute choice holds the pieces together.
//   - cross-source consolidation — over the scenario corpus, how many
//     uncorroborated traffic-drop alerts reach the locator when the rule
//     is off.
//   - first-alert time-series causality (§7.3) — how often the earliest
//     alert is NOT root-cause-class evidence.
func Ablations(opts Options) (*Result, error) {
	res := &Result{
		Name:       "ablations",
		Title:      "Design-choice ablations",
		PaperShape: "connectivity scoping separates concurrent incidents; the 5-minute tree tolerates delayed SNMP; the cross-source rule suppresses benign drops; time ordering is not causality",
		Header:     []string{"ablation", "variant", "result"},
	}
	if err := connectivityAblation(opts, res); err != nil {
		return nil, err
	}
	timeoutAblation(opts, res)
	if err := crossSourceAblation(opts, res); err != nil {
		return nil, err
	}
	return res, nil
}

// connectivityAblation replays one raw trace containing two simultaneous
// failures in different cities under scoping on/off.
func connectivityAblation(opts Options, res *Result) error {
	topo, err := topoGen(opts.Topology)
	if err != nil {
		return err
	}
	r, err := core.NewRunner(topo, opts.Engine, opts.Monitors, opts.Seed)
	if err != nil {
		return err
	}
	var raw []alert.Alert
	r.Tap = func(a alert.Alert) { raw = append(raw, a) }
	scs := scenario.DDoSMultiSite(topo, 2, epoch.Add(time.Minute))
	for i := range scs {
		if err := scs[i].Inject(r.Sim); err != nil {
			return err
		}
	}
	if _, err := r.Run(epoch, epoch.Add(8*time.Minute)); err != nil {
		return err
	}
	replayWith := func(disable bool) (int, error) {
		cfg := opts.Engine
		cfg.EnableSOP = false
		cfg.Locator.DisableConnectivity = disable
		eng, err := trace.Replay(raw, topo, cfg, 10*time.Second)
		if err != nil {
			return 0, err
		}
		return len(eng.AllIncidents()), nil
	}
	on, err := replayWith(false)
	if err != nil {
		return err
	}
	off, err := replayWith(true)
	if err != nil {
		return err
	}
	res.Rows = append(res.Rows,
		[]string{"connectivity scoping", "ON (paper design)",
			fmt.Sprintf("%d incidents for 2 concurrent failures", on)},
		[]string{"connectivity scoping", "OFF",
			fmt.Sprintf("%d incident(s) — unrelated failures merged", off)},
	)
	return nil
}

// timeoutAblation feeds the locator a failure whose second piece of
// evidence arrives after the worst-case SNMP delay.
func timeoutAblation(opts Options, res *Result) {
	topo, err := topoGen(opts.Topology)
	if err != nil {
		return
	}
	dev := topo.Device(0).Path
	delayed := []alert.Alert{
		{Source: alert.SourcePing, Type: alert.TypePacketLoss, Class: alert.ClassFailure,
			Time: epoch, End: epoch, Location: dev, Value: 0.3, Count: 1},
		// The old device's SNMP agent reports 2.5 minutes late (§4.2).
		{Source: alert.SourceSNMP, Type: alert.TypeLinkDown, Class: alert.ClassRootCause,
			Time: epoch.Add(150 * time.Second), End: epoch.Add(150 * time.Second), Location: dev, Value: 1, Count: 1},
		{Source: alert.SourceSNMP, Type: alert.TypePortDown, Class: alert.ClassRootCause,
			Time: epoch.Add(150 * time.Second), End: epoch.Add(150 * time.Second), Location: dev, Value: 1, Count: 1},
	}
	for _, ttl := range []time.Duration{time.Minute, 5 * time.Minute, 15 * time.Minute} {
		cfg := opts.Engine.Locator
		cfg.NodeTTL = ttl
		loc := locator.New(cfg, topo)
		detected := false
		for _, a := range delayed {
			// The periodic check between alerts expires short-TTL nodes,
			// exactly as Algorithm 3 would in production.
			loc.Check(a.Time)
			loc.Add(a)
			if len(loc.Check(a.Time.Add(time.Second))) > 0 {
				detected = true
			}
		}
		verdict := "MISSED — evidence expired before the delayed SNMP arrived"
		if detected {
			verdict = "detected — tree held the early evidence"
		}
		res.Rows = append(res.Rows, []string{"tree timeout (delayed SNMP)", ttl.String(), verdict})
	}
}

// crossSourceAblation measures the uncorroborated-drop volume over the
// corpus, plus the §7.3 mislead rate.
func crossSourceAblation(opts Options, res *Result) error {
	records, err := corpus(opts)
	if err != nil {
		return err
	}
	topo, err := topoGen(opts.Topology)
	if err != nil {
		return err
	}
	structuredWith := func(disable bool) (int, error) {
		cfg := opts.Engine
		cfg.EnableSOP = false
		cfg.Preprocess.DisableCrossSource = disable
		total := 0
		for i := range records {
			eng, err := trace.Replay(records[i].Raw, topo, cfg, 10*time.Second)
			if err != nil {
				return 0, err
			}
			total += eng.PreprocessStats().Out
		}
		return total, nil
	}
	on, err := structuredWith(false)
	if err != nil {
		return err
	}
	off, err := structuredWith(true)
	if err != nil {
		return err
	}
	res.Rows = append(res.Rows,
		[]string{"cross-source rule", "ON (paper design)", fmt.Sprintf("%d structured alerts", on)},
		[]string{"cross-source rule", "OFF", fmt.Sprintf("%d structured alerts (+%d uncorroborated drops admitted)", off, off-on)},
	)
	misleadInputs := make([][]alert.Alert, 0, len(records))
	for i := range records {
		misleadInputs = append(misleadInputs, records[i].Raw)
	}
	rate := baseline.MisleadRate(misleadInputs)
	res.Rows = append(res.Rows, []string{"§7.3 time ordering", "first alert = root cause",
		fmt.Sprintf("misleads in %s of traces — behaviour alerts precede root-cause logs", pct(rate))})
	return nil
}
