package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// tinyOptions keeps experiment tests fast: a handful of scenarios on the
// small topology.
func tinyOptions() Options {
	opts := DefaultOptions()
	opts.Scenarios = 6
	opts.Window = 8 * time.Minute
	return opts
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("bad percent %q: %v", s, err)
	}
	return v / 100
}

func TestFig1MatchesPaperMix(t *testing.T) {
	res, err := Fig1(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 categories", len(res.Rows))
	}
	// Device hardware must dominate, as in Figure 1.
	top := res.Rows[0]
	if top[0] != "device hardware error" {
		t.Errorf("first category = %q", top[0])
	}
	if got := parsePct(t, top[2]); got < 0.35 || got > 0.50 {
		t.Errorf("hardware share drawn = %v, want ≈0.42", got)
	}
}

func TestFig3CoverageShape(t *testing.T) {
	res, err := Fig3(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 13 {
		t.Fatalf("rows = %d, want 13 tools", len(res.Rows))
	}
	// Shape: sorted descending with a wide spread and several weak tools.
	// (On this tiny random corpus the strongest tool can legitimately hit
	// 100% — rare ping-blind categories like route errors carry only
	// 1.9% weight. The full bench corpus shows the <100% ceiling; the
	// per-blind-spot guarantees are tested in internal/baseline.)
	first := parsePct(t, res.Rows[0][1])
	last := parsePct(t, res.Rows[len(res.Rows)-1][1])
	if first <= last {
		t.Error("coverage not sorted")
	}
	if first-last < 0.3 {
		t.Errorf("coverage spread too small: %.2f..%.2f", last, first)
	}
	weak := 0
	for _, row := range res.Rows {
		if parsePct(t, row[1]) < 0.5 {
			weak++
		}
	}
	if weak < 3 {
		t.Errorf("only %d tools below 50%% coverage; blind spots missing", weak)
	}
}

func TestTable2ListsAllSources(t *testing.T) {
	res := Table2()
	if len(res.Rows) != 13 {
		t.Errorf("rows = %d, want 13", len(res.Rows))
	}
}

func TestFig5dShape(t *testing.T) {
	res, err := Fig5d(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]string{}
	for _, r := range res.Rows {
		rows[r[0]] = r[1]
	}
	// Nearly all failure incidents carry failure alerts.
	if v := parsePct(t, rows["failure incidents with failure alerts"]); v < 0.8 {
		t.Errorf("failure incidents with failure alerts = %v, want ≥ 0.8", v)
	}
	// Failure alerts are not the majority of the alert mass.
	if v := parsePct(t, rows["failure alerts share of all alerts"]); v > 0.8 {
		t.Errorf("failure alert share = %v, suspiciously high", v)
	}
}

func TestFig8aShape(t *testing.T) {
	res, err := Fig8a(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want All/6/4/3", len(res.Rows))
	}
	// Shape: FN with all sources ≤ FN with 3 sources.
	fnAll := parsePct(t, res.Rows[0][2])
	fn3 := parsePct(t, res.Rows[len(res.Rows)-1][2])
	if fnAll > fn3 {
		t.Errorf("FN should not decrease when sources are removed: all=%v three=%v", fnAll, fn3)
	}
	if fnAll > 0.2 {
		t.Errorf("FN with all sources = %v, want near 0", fnAll)
	}
}

func TestFig8bReduction(t *testing.T) {
	res, err := Fig8b(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range res.Rows {
		before, _ := strconv.Atoi(row[0])
		after, _ := strconv.Atoi(row[1])
		if after >= before {
			t.Errorf("no reduction: %d → %d", before, after)
		}
		if r := 1 - float64(after)/float64(before); r < 0.5 {
			t.Errorf("reduction only %.0f%% at volume %d", r*100, before)
		}
	}
}

func TestFig8cWithinSLA(t *testing.T) {
	opts := tinyOptions()
	res, err := Fig8c(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	last := res.Rows[len(res.Rows)-1]
	d, err := time.ParseDuration(last[1])
	if err != nil {
		t.Fatal(err)
	}
	if d > 10*time.Second {
		t.Errorf("40k alerts located in %v, paper SLA is <10s", d)
	}
	for _, n := range res.Notes {
		if strings.Contains(n, "WARNING") {
			t.Error(n)
		}
	}
}

func TestFig9Shape(t *testing.T) {
	res, err := Fig9(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(Fig9ParameterSets) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(Fig9ParameterSets))
	}
	byName := map[string][]string{}
	for _, r := range res.Rows {
		byName[r[0]] = r
	}
	prod := byName["2/1+2/5"]
	if prod == nil {
		t.Fatal("production setting missing")
	}
	// Production setting: zero false negatives.
	if fn := parsePct(t, prod[2]); fn != 0 {
		t.Errorf("production FN = %v, want 0", fn)
	}
	// type+location explodes FP relative to production.
	tl := byName["type+location"]
	if parsePct(t, tl[1]) <= parsePct(t, prod[1]) {
		t.Errorf("type+location FP (%s) should exceed production FP (%s)", tl[1], prod[1])
	}
}

func TestFig10aShape(t *testing.T) {
	res, err := Fig10a(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatal("want two distribution rows")
	}
	// Failure incidents' median severity ≥ all incidents' median.
	allMed, _ := strconv.ParseFloat(res.Rows[0][3], 64)
	failMed, _ := strconv.ParseFloat(res.Rows[1][3], 64)
	if failMed < allMed {
		t.Errorf("failure median %v < all median %v", failMed, allMed)
	}
}

func TestFig10cShape(t *testing.T) {
	res, err := Fig10c(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if r := parsePct(t, row[3]); r < 0.5 {
			t.Errorf("%s reduction = %v, want large (paper >80%%)", row[0], r)
		}
	}
}

func TestSec62(t *testing.T) {
	res, err := Sec62(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if v := parsePct(t, res.Rows[2][1]); v < 0.5 {
		t.Errorf("stream reduction = %v, want ≥ 50%%", v)
	}
}

func TestCases(t *testing.T) {
	res, err := Cases(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 case studies", len(res.Rows))
	}
	byCase := map[string]string{}
	for _, r := range res.Rows {
		byCase[r[0]] = r[1]
	}
	if !strings.Contains(byCase["automatic SOP"], "isolated=true") {
		t.Errorf("SOP case: %s", byCase["automatic SOP"])
	}
	if !strings.Contains(byCase["multiple scene detection"], "attack sites") {
		t.Errorf("DDoS case: %s", byCase["multiple scene detection"])
	}
	if strings.Contains(byCase["fine-grained localization"], "no incident") {
		t.Errorf("cable cut case: %s", byCase["fine-grained localization"])
	}
}

func TestByNameAndNames(t *testing.T) {
	if _, err := ByName("bogus", tinyOptions()); err == nil {
		t.Error("unknown name accepted")
	}
	r, err := ByName("table2", tinyOptions())
	if err != nil || r.Name != "table2" {
		t.Errorf("table2 by name: %v %v", r, err)
	}
	if len(Names()) != 15 {
		t.Errorf("Names() = %d entries", len(Names()))
	}
	for _, n := range Names() {
		found := n == "table2"
		if !found {
			// Every name must dispatch (we don't run them all here; the
			// per-experiment tests above cover execution).
			if n == "" {
				t.Error("empty name")
			}
		}
	}
}

func TestResultPrint(t *testing.T) {
	r := &Result{
		Name: "x", Title: "t", PaperShape: "p",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"n"},
	}
	out := r.String()
	for _, want := range []string{"== x: t ==", "paper: p", "a", "1", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("print missing %q:\n%s", want, out)
		}
	}
}

func TestAblations(t *testing.T) {
	res, err := Ablations(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]map[string]string{}
	for _, r := range res.Rows {
		if rows[r[0]] == nil {
			rows[r[0]] = map[string]string{}
		}
		rows[r[0]][r[1]] = r[2]
	}
	// Connectivity scoping: ON keeps two concurrent failures separate,
	// OFF merges them.
	on := rows["connectivity scoping"]["ON (paper design)"]
	off := rows["connectivity scoping"]["OFF"]
	if !strings.HasPrefix(on, "2 ") {
		t.Errorf("scoping ON: %q, want 2 incidents", on)
	}
	if !strings.HasPrefix(off, "1 ") {
		t.Errorf("scoping OFF: %q, want merged into 1", off)
	}
	// Tree timeout: 1m misses the delayed evidence, 5m and 15m hold it.
	if !strings.Contains(rows["tree timeout (delayed SNMP)"]["1m0s"], "MISSED") {
		t.Errorf("1m TTL: %q", rows["tree timeout (delayed SNMP)"]["1m0s"])
	}
	for _, ttl := range []string{"5m0s", "15m0s"} {
		if !strings.Contains(rows["tree timeout (delayed SNMP)"][ttl], "detected") {
			t.Errorf("%s TTL: %q", ttl, rows["tree timeout (delayed SNMP)"][ttl])
		}
	}
	// Cross-source rule OFF admits at least as many structured alerts.
	if !strings.Contains(rows["cross-source rule"]["OFF"], "+") {
		t.Errorf("cross-source OFF: %q", rows["cross-source rule"]["OFF"])
	}
	// The §7.3 note row exists.
	if _, ok := rows["§7.3 time ordering"]; !ok {
		t.Error("missing §7.3 row")
	}
	if _, err := ByName("ablations", tinyOptions()); err != nil {
		t.Error("ablations not dispatchable by name")
	}
}
