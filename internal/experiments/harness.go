// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) plus the §5.1 case studies, on the synthetic substrate.
// Each experiment returns a Result — a printable table with the measured
// rows and a note recalling the paper's shape — and the skynet-bench
// binary and bench_test.go drive them.
//
// Absolute numbers differ from the paper (their substrate is a production
// network, ours a simulator); the experiments are judged on shape: who
// wins, by roughly what factor, where the crossovers fall.
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"time"

	"skynet/internal/alert"
	"skynet/internal/core"
	"skynet/internal/incident"
	"skynet/internal/metrics"
	"skynet/internal/monitors"
	"skynet/internal/scenario"
	"skynet/internal/topology"
)

// Options configures the experiment corpus.
type Options struct {
	// Topology is the substrate scale.
	Topology topology.Config
	// Monitors configures the fleet (noise included — the paper's corpus
	// has unrelated glitches).
	Monitors monitors.Config
	// Engine is the pipeline configuration (production defaults).
	Engine core.Config
	// Scenarios is the corpus size: independent failure runs drawn with
	// the Figure 1 category mix.
	Scenarios int
	// Window is the observation window per scenario run.
	Window time.Duration
	// Seed drives every random choice.
	Seed int64
}

// DefaultOptions returns a corpus that runs in tens of seconds on a
// laptop. Benchmarks may scale it up.
func DefaultOptions() Options {
	return Options{
		Topology:  topology.SmallConfig(),
		Monitors:  monitors.DefaultConfig(),
		Engine:    core.DefaultConfig(),
		Scenarios: 24,
		Window:    12 * time.Minute,
		Seed:      1,
	}
}

// epoch anchors simulated time for all experiments.
var epoch = time.Date(2024, 7, 2, 11, 0, 0, 0, time.UTC)

// Result is one experiment's measured output.
type Result struct {
	// Name is the experiment ID ("fig8a", "table2", ...).
	Name string
	// Title describes what is being reproduced.
	Title string
	// PaperShape recalls what the paper reports, for side-by-side
	// comparison in EXPERIMENTS.md.
	PaperShape string
	// Header and Rows are the table.
	Header []string
	Rows   [][]string
	// Notes carries free-form observations.
	Notes []string
}

// Print renders the result as an aligned text table.
func (r *Result) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.Name, r.Title)
	if r.PaperShape != "" {
		fmt.Fprintf(w, "paper: %s\n", r.PaperShape)
	}
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (r *Result) String() string {
	var b strings.Builder
	r.Print(&b)
	return b.String()
}

// runRecord is one scenario run through the full pipeline.
type runRecord struct {
	Scenario  scenario.Scenario
	Raw       []alert.Alert
	Stats     core.RunStats
	Incidents []*incident.Incident
	// Severe counts incidents clearing the severity filter.
	Severe int
	// Zoomed reports whether any matching incident was zoomed.
	Zoomed bool
	// SOP reports whether an automatic SOP fired.
	SOP bool
	// Outcome is the FP/FN evaluation against this run's scenario.
	Outcome metrics.Outcome
}

// corpus runs every scenario independently (own simulator, fleet, engine)
// and in parallel across CPUs. Seeds are per-index, so results are
// deterministic regardless of parallelism.
func corpus(opts Options, sources ...alert.Source) ([]runRecord, error) {
	topo, err := topology.Generate(opts.Topology)
	if err != nil {
		return nil, err
	}
	gen := scenario.NewGenerator(topo, opts.Seed)
	scs := make([]scenario.Scenario, opts.Scenarios)
	for i := range scs {
		scs[i] = gen.Random(gen.DrawCategory(), epoch.Add(90*time.Second))
		scs[i].Name = fmt.Sprintf("%03d-%s", i, scs[i].Name)
	}
	records := make([]runRecord, len(scs))
	errs := make([]error, len(scs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := range scs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			records[i], errs[i] = runOne(topo, opts, scs[i], opts.Seed+int64(i), sources...)
		}(i)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	return records, nil
}

// runOne executes a single scenario end to end.
func runOne(topo *topology.Topology, opts Options, sc scenario.Scenario, seed int64, sources ...alert.Source) (runRecord, error) {
	rec := runRecord{Scenario: sc}
	mon := opts.Monitors
	mon.Seed = seed
	r, err := core.NewRunner(topo, opts.Engine, mon, seed, sources...)
	if err != nil {
		return rec, err
	}
	// Capture raw alerts by wrapping the run: the runner ingests
	// directly, so we re-poll stats afterwards and keep raw volume from
	// RunStats; for per-alert analyses (coverage) we run the fleet
	// separately below only when needed. To keep one simulation per run,
	// we instead record raw alerts through the engine's counter and a
	// fleet tap.
	if err := sc.Inject(r.Sim); err != nil {
		return rec, err
	}
	tap := &rawTap{}
	r.Tap = tap.add
	stats, err := r.Run(epoch, epoch.Add(opts.Window))
	if err != nil {
		return rec, err
	}
	rec.Raw = tap.alerts
	rec.Stats = stats
	rec.Incidents = r.Engine.AllIncidents()
	rec.Severe = len(r.Engine.Severe())
	rec.SOP = stats.SOPExecutions > 0
	for _, in := range rec.Incidents {
		end := in.UpdateTime
		if sc.Matches(in.Root, in.Start, end) && !in.Zoomed.IsRoot() {
			rec.Zoomed = true
		}
	}
	rec.Outcome = metrics.Evaluate(rec.Incidents, []scenario.Scenario{sc})
	return rec, nil
}

// rawTap collects the raw alerts a runner ingests.
type rawTap struct {
	alerts []alert.Alert
}

func (t *rawTap) add(a alert.Alert) { t.alerts = append(t.alerts, a) }

func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// topoGen wraps topology.Generate for experiment files.
func topoGen(cfg topology.Config) (*topology.Topology, error) { return topology.Generate(cfg) }

// mixedCorpus models a month of operations: for every genuinely harmful
// failure (Figure 1 draw) there are three benign events redundancy
// absorbs — the §6.4 population whose severity filter cuts the operator
// feed. opts.Scenarios counts the harmful draws.
func mixedCorpus(opts Options) ([]runRecord, error) {
	topo, err := topoGen(opts.Topology)
	if err != nil {
		return nil, err
	}
	gen := scenario.NewGenerator(topo, opts.Seed)
	var scs []scenario.Scenario
	start := epoch.Add(90 * time.Second)
	for i := 0; i < opts.Scenarios; i++ {
		sc := gen.Random(gen.DrawCategory(), start)
		sc.Name = fmt.Sprintf("%03d-%s", len(scs), sc.Name)
		scs = append(scs, sc)
		for j := 0; j < 3; j++ {
			m := gen.Minor(start)
			m.Name = fmt.Sprintf("%03d-%s", len(scs), m.Name)
			scs = append(scs, m)
		}
	}
	records := make([]runRecord, len(scs))
	errs := make([]error, len(scs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := range scs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			records[i], errs[i] = runOne(topo, opts, scs[i], opts.Seed+int64(i))
		}(i)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	return records, nil
}

// severeCorpus runs the severe-failure families the paper's headline
// numbers are about: the §2.2 fiber cut, cluster power failures, DDoS,
// route errors, the §7.3 compound hardware case, and the §5.1 known
// device failure (mitigated by automatic SOP).
func severeCorpus(opts Options) ([]runRecord, error) {
	topo, err := topoGen(opts.Topology)
	if err != nil {
		return nil, err
	}
	gen := scenario.NewGenerator(topo, opts.Seed)
	start := epoch.Add(90 * time.Second)
	scs := []scenario.Scenario{
		scenario.FiberCutSevere(topo, start),
		scenario.UnbalancedHashCase(topo, start),
		scenario.KnownDeviceFailure(topo, start),
		gen.Random(scenario.CatInfrastructure, start),
		gen.Random(scenario.CatRoute, start),
		gen.Random(scenario.CatSecurity, start),
	}
	big, critical := scenario.ConcurrentIncidents(topo, start)
	scs = append(scs, big, critical)
	records := make([]runRecord, len(scs))
	errs := make([]error, len(scs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := range scs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			records[i], errs[i] = runOne(topo, opts, scs[i], opts.Seed+int64(i))
		}(i)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	return records, nil
}
