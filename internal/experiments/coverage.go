package experiments

import (
	"fmt"
	"sort"

	"skynet/internal/alert"
	"skynet/internal/baseline"
	"skynet/internal/scenario"
)

// Fig1 regenerates the root-cause mix of Figure 1 by drawing a large
// scenario sample and tabulating category frequencies against the paper's
// printed proportions.
func Fig1(opts Options) (*Result, error) {
	topoCfg := opts.Topology
	topo, err := topoGen(topoCfg)
	if err != nil {
		return nil, err
	}
	gen := scenario.NewGenerator(topo, opts.Seed)
	n := opts.Scenarios * 50
	if n < 1000 {
		n = 1000
	}
	counts := make([]int, scenario.NumCategories)
	for i := 0; i < n; i++ {
		counts[gen.DrawCategory()]++
	}
	res := &Result{
		Name:       "fig1",
		Title:      "Proportion of network failure root causes",
		PaperShape: "device hardware 42.6%, link 18.5%, modification 16.7%, software 9.3%, infra 9.3%, route/security/config 1.9% each",
		Header:     []string{"category", "paper", "drawn"},
	}
	var totalW float64
	for _, w := range scenario.Weights {
		totalW += w
	}
	for c := scenario.Category(0); c < scenario.NumCategories; c++ {
		res.Rows = append(res.Rows, []string{
			c.String(),
			pct(scenario.Weights[c] / totalW),
			pct(float64(counts[c]) / float64(n)),
		})
	}
	return res, nil
}

// Fig3 regenerates the per-tool failure coverage bars: each monitoring
// tool alone, over the mixed scenario corpus, what fraction of failures
// would it have noticed at all?
func Fig3(opts Options) (*Result, error) {
	records, err := corpus(opts)
	if err != nil {
		return nil, err
	}
	runs := make([]baseline.Run, len(records))
	for i := range records {
		runs[i] = baseline.Run{Raw: records[i].Raw, Scenario: &records[i].Scenario}
	}
	cov := baseline.Coverage(runs)
	res := &Result{
		Name:       "fig3",
		Title:      "Network failure coverage of monitoring tools",
		PaperShape: "coverage ranges ~3% to ~84%; no single tool detects all failures",
		Header:     []string{"tool", "coverage"},
	}
	srcs := alert.Sources()
	sort.Slice(srcs, func(i, j int) bool { return cov[srcs[i]] > cov[srcs[j]] })
	lo, hi := 1.0, 0.0
	for _, s := range srcs {
		res.Rows = append(res.Rows, []string{s.String(), pct(cov[s])})
		if cov[s] < lo {
			lo = cov[s]
		}
		if cov[s] > hi {
			hi = cov[s]
		}
	}
	note := fmt.Sprintf("coverage spread %.0f%%–%.0f%% over %d scenarios", lo*100, hi*100, len(records))
	if hi >= 0.9999 {
		note += "; the top tool saturates at this corpus size — its structural blind spots" +
			" (route errors, clock drift) are rare categories that need a larger corpus to appear"
	} else {
		note += "; no tool reaches 100%"
	}
	res.Notes = append(res.Notes, note)
	return res, nil
}

// Table2 lists the implemented data sources against Table 2 of the paper.
func Table2() *Result {
	res := &Result{
		Name:       "table2",
		Title:      "Network monitoring tools used by SkyNet (Table 2)",
		PaperShape: "12 data sources from ping to patrol inspection",
		Header:     []string{"data source", "modeled cadence/behavior"},
	}
	rows := [][]string{
		{"ping", "cluster mesh probes every 2s; blames triangulated stage"},
		{"traceroute", "per-hop stats every 30s; blind on 1/3 of (SRTE) paths"},
		{"out-of-band", "liveness/CPU/RAM every 30s via management network"},
		{"traffic", "sFlow link rates + sampled loss every 60s"},
		{"netflow", "per-customer SLA flow accounting every 60s"},
		{"internet-telemetry", "DC→Internet probing every 10s, 1/3 cluster rotation"},
		{"syslog", "event-driven raw vendor lines; FT-tree classified"},
		{"snmp", "counters every 30s; old devices delayed up to 2min"},
		{"int", "DSCP test flows every 15s; ~60% device coverage"},
		{"ptp", "clock sync checks every 60s"},
		{"route-monitoring", "control-plane aggregate/hijack/leak watch every 30s"},
		{"modification-events", "automation feed of failed/rolled-back changes"},
		{"patrol-inspection", "operator CLI command sweeps every 10min"},
	}
	res.Rows = rows
	return res
}

// Fig5d regenerates the incident/alert-class correlation: failure alerts
// are rare overall, yet (nearly) all real failure incidents contain them.
func Fig5d(opts Options) (*Result, error) {
	records, err := corpus(opts)
	if err != nil {
		return nil, err
	}
	var allIncidents, failureIncidents, failureIncWithFailureAlert, allIncWithFailureAlert int
	classCounts := map[alert.Class]int{}
	totalAlerts := 0
	for i := range records {
		rec := &records[i]
		for _, in := range rec.Incidents {
			allIncidents++
			end := in.UpdateTime
			isFailure := rec.Scenario.Matches(in.Root, in.Start, end)
			hasFailureAlert := in.TypeCount(alert.ClassFailure) > 0
			if isFailure {
				failureIncidents++
				if hasFailureAlert {
					failureIncWithFailureAlert++
				}
			}
			if hasFailureAlert {
				allIncWithFailureAlert++
			}
			// Count aggregated alert streams, not raw instances: the
			// preprocessor already normalized per-tool cadence (§4.1), so
			// one persistent condition is one alert here.
			slab := in.EntrySlab()
			for i := range slab {
				classCounts[slab[i].Alert.Class]++
				totalAlerts++
			}
		}
	}
	res := &Result{
		Name:       "fig5d",
		Title:      "Correlation between incidents and alert classes",
		PaperShape: "failure alerts are a small share of all alerts, but nearly all failure incidents contain one",
		Header:     []string{"quantity", "ratio"},
	}
	ratio := func(a, b int) string {
		if b == 0 {
			return "n/a"
		}
		return pct(float64(a) / float64(b))
	}
	res.Rows = [][]string{
		{"failure incidents with failure alerts", ratio(failureIncWithFailureAlert, failureIncidents)},
		{"all incidents with failure alerts", ratio(allIncWithFailureAlert, allIncidents)},
		{"failure alerts share of all alerts", ratio(classCounts[alert.ClassFailure], totalAlerts)},
		{"abnormal (behavior) alerts share", ratio(classCounts[alert.ClassAbnormal], totalAlerts)},
		{"root cause alerts share", ratio(classCounts[alert.ClassRootCause], totalAlerts)},
	}
	res.Notes = append(res.Notes, fmt.Sprintf("%d incidents over %d scenario runs", allIncidents, len(records)))
	return res, nil
}
