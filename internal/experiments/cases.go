package experiments

import (
	"fmt"
	"time"

	"skynet/internal/core"
	"skynet/internal/scenario"
	"skynet/internal/viz"
)

// Cases reruns the four §5.1 case studies end to end and reports what
// SkyNet did in each.
func Cases(opts Options) (*Result, error) {
	topo, err := topoGen(opts.Topology)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Name:       "cases",
		Title:      "§5.1 case studies",
		PaperShape: "auto-SOP in ~1 minute; 5 separate DDoS incidents; critical-first ranking; cable cut zoomed to the DC entrance",
		Header:     []string{"case", "outcome"},
	}

	newRun := func() (*core.Runner, error) {
		return core.NewRunner(topo, opts.Engine, opts.Monitors, opts.Seed)
	}

	// Case 1: automatic SOP for a known failure.
	{
		r, err := newRun()
		if err != nil {
			return nil, err
		}
		sc := scenario.KnownDeviceFailure(topo, epoch.Add(time.Minute))
		if err := sc.Inject(r.Sim); err != nil {
			return nil, err
		}
		stats, err := r.Run(epoch, epoch.Add(6*time.Minute))
		if err != nil {
			return nil, err
		}
		dev, _ := topo.DeviceByPath(sc.Truth[0])
		isolated := dev != nil && r.Sim.DeviceState(dev.ID).Isolated
		res.Rows = append(res.Rows, []string{"automatic SOP",
			fmt.Sprintf("SOP executions=%d, device isolated=%v", stats.SOPExecutions, isolated)})
	}

	// Case 2: multi-site DDoS → separate incidents.
	{
		r, err := newRun()
		if err != nil {
			return nil, err
		}
		scs := scenario.DDoSMultiSite(topo, 5, epoch.Add(time.Minute))
		for i := range scs {
			if err := scs[i].Inject(r.Sim); err != nil {
				return nil, err
			}
		}
		if _, err := r.Run(epoch, epoch.Add(8*time.Minute)); err != nil {
			return nil, err
		}
		matched, distinct := 0, map[int]bool{}
		for i := range scs {
			for _, in := range r.Engine.Active() {
				if scs[i].Matches(in.Root, in.Start, in.UpdateTime) {
					matched++
					distinct[in.ID] = true
					break
				}
			}
		}
		res.Rows = append(res.Rows, []string{"multiple scene detection",
			fmt.Sprintf("%d attack sites, %d matched, %d distinct incidents", len(scs), matched, len(distinct))})
	}

	// Case 3: scene ranking.
	{
		r, err := newRun()
		if err != nil {
			return nil, err
		}
		big, critical := scenario.ConcurrentIncidents(topo, epoch.Add(time.Minute))
		if err := big.Inject(r.Sim); err != nil {
			return nil, err
		}
		if err := critical.Inject(r.Sim); err != nil {
			return nil, err
		}
		if _, err := r.Run(epoch, epoch.Add(10*time.Minute)); err != nil {
			return nil, err
		}
		var bigSev, critSev float64
		var bigLocs, critLocs int
		for _, in := range r.Engine.Active() {
			if big.Matches(in.Root, in.Start, in.UpdateTime) {
				bigSev, bigLocs = in.Severity, len(in.Locations())
			} else if critical.Matches(in.Root, in.Start, in.UpdateTime) {
				critSev, critLocs = in.Severity, len(in.Locations())
			}
		}
		res.Rows = append(res.Rows, []string{"scene ranking",
			fmt.Sprintf("big: %d alerting locations sev=%.1f; critical: %d alerting locations sev=%.1f",
				bigLocs, bigSev, critLocs, critSev)})
	}

	// Case 4: fine-grained localization of the repeat cable cut.
	{
		r, err := newRun()
		if err != nil {
			return nil, err
		}
		sc := scenario.FiberCutSevere(topo, epoch.Add(time.Minute))
		if err := sc.Inject(r.Sim); err != nil {
			return nil, err
		}
		stats, err := r.Run(epoch, epoch.Add(8*time.Minute))
		if err != nil {
			return nil, err
		}
		outcome := "no incident"
		for _, in := range r.Engine.Active() {
			if sc.Matches(in.Root, in.Start, in.UpdateTime) {
				zoom := "not refined"
				if !in.Zoomed.IsRoot() {
					zoom = "zoomed to " + in.Zoomed.String()
				}
				suspect := "-"
				if s := viz.Build(topo, in).PrimeSuspect(); s != nil {
					suspect = s.Name
				}
				outcome = fmt.Sprintf("flood of %d raw alerts → 1 incident at %s (%s); top-voted device %s",
					stats.RawAlerts, in.Root, zoom, suspect)
				break
			}
		}
		res.Rows = append(res.Rows, []string{"fine-grained localization", outcome})
	}
	return res, nil
}

// All runs every experiment at the given options and returns the results
// in presentation order. Table2 needs no corpus and is included as-is.
func All(opts Options) ([]*Result, error) {
	type job struct {
		name string
		fn   func(Options) (*Result, error)
	}
	jobs := []job{
		{"fig1", Fig1},
		{"fig3", Fig3},
		{"fig5d", Fig5d},
		{"fig8a", Fig8a},
		{"fig8b", Fig8b},
		{"fig8c", Fig8c},
		{"fig9", Fig9},
		{"fig10a", Fig10a},
		{"fig10b", Fig10b},
		{"fig10c", Fig10c},
		{"preprocessing", Sec62},
		{"ablations", Ablations},
		{"autotune", Autotune},
		{"cases", Cases},
	}
	out := []*Result{Table2()}
	for _, j := range jobs {
		r, err := j.fn(opts)
		if err != nil {
			return out, fmt.Errorf("experiment %s: %w", j.name, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// ByName runs a single experiment by its figure/table identifier.
func ByName(name string, opts Options) (*Result, error) {
	switch name {
	case "table2":
		return Table2(), nil
	case "fig1":
		return Fig1(opts)
	case "fig3":
		return Fig3(opts)
	case "fig5d":
		return Fig5d(opts)
	case "fig8a":
		return Fig8a(opts)
	case "fig8b":
		return Fig8b(opts)
	case "fig8c":
		return Fig8c(opts)
	case "fig9":
		return Fig9(opts)
	case "fig10a":
		return Fig10a(opts)
	case "fig10b":
		return Fig10b(opts)
	case "fig10c":
		return Fig10c(opts)
	case "preprocessing":
		return Sec62(opts)
	case "ablations":
		return Ablations(opts)
	case "autotune":
		return Autotune(opts)
	case "cases":
		return Cases(opts)
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q", name)
	}
}

// Names lists the runnable experiment identifiers.
func Names() []string {
	return []string{"table2", "fig1", "fig3", "fig5d", "fig8a", "fig8b", "fig8c",
		"fig9", "fig10a", "fig10b", "fig10c", "preprocessing", "ablations", "autotune", "cases"}
}
