package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"skynet/internal/alert"
	"skynet/internal/hierarchy"
	"skynet/internal/locator"
	"skynet/internal/preprocess"
	"skynet/internal/topology"
)

// Fig8b regenerates the before/after preprocessing scatter: raw alert
// volumes of increasing size pushed through the preprocessor, reporting
// the structured output count.
func Fig8b(opts Options) (*Result, error) {
	records, err := corpus(opts)
	if err != nil {
		return nil, err
	}
	topo, err := topoGen(opts.Topology)
	if err != nil {
		return nil, err
	}
	classifier, err := preprocess.BootstrapClassifier()
	if err != nil {
		return nil, err
	}
	// Pool all raw alerts, then take growing prefixes as workloads.
	var pool []alert.Alert
	for i := range records {
		pool = append(pool, records[i].Raw...)
	}
	res := &Result{
		Name:       "fig8b",
		Title:      "Alert count before and after preprocessing",
		PaperShape: "~100k raw alerts/hour shrink to <10k normally, <50k in extremes — roughly an order of magnitude",
		Header:     []string{"before", "after", "reduction"},
	}
	if len(pool) == 0 {
		return res, nil
	}
	fractions := []float64{0.25, 0.5, 0.75, 1.0}
	for _, f := range fractions {
		n := int(float64(len(pool)) * f)
		if n == 0 {
			continue
		}
		out, _ := preprocess.Process(opts.Engine.Preprocess, topo, classifier, pool[:n], 10*time.Second)
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", len(out)),
			pct(1 - float64(len(out))/float64(n)),
		})
	}
	return res, nil
}

// Fig8c regenerates the locating-time curve: structured alert batches of
// growing size fed to a fresh locator, measuring wall-clock Check time.
// The paper's bar is <10 s at 40k alerts.
func Fig8c(opts Options) (*Result, error) {
	topo, err := topoGen(opts.Topology)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Name:       "fig8c",
		Title:      "Time cost of locating vs alert count",
		PaperShape: "positively correlated; worst case <10s at tens of thousands of alerts",
		Header:     []string{"alerts", "locate time"},
	}
	for _, n := range []int{5000, 10000, 20000, 40000} {
		alerts := SyntheticStructuredAlerts(topo, n, opts.Seed)
		loc := locator.New(opts.Engine.Locator, topo)
		start := time.Now()
		for i := range alerts {
			loc.Add(alerts[i])
		}
		loc.Check(epoch.Add(time.Minute))
		elapsed := time.Since(start)
		res.Rows = append(res.Rows, []string{fmt.Sprintf("%d", n), elapsed.Round(time.Microsecond).String()})
		if elapsed > 10*time.Second {
			res.Notes = append(res.Notes, fmt.Sprintf("WARNING: %d alerts exceeded the 10s SLA (%v)", n, elapsed))
		}
	}
	return res, nil
}

// SyntheticStructuredAlerts fabricates a structured-alert batch spread
// over the topology — the locator stress workload for Fig. 8c and the
// benchmarks. Alerts cluster around hotspots the way preprocessed floods
// do.
func SyntheticStructuredAlerts(topo *topology.Topology, n int, seed int64) []alert.Alert {
	rng := rand.New(rand.NewSource(seed))
	types := []struct {
		src alert.Source
		typ string
	}{
		{alert.SourcePing, alert.TypePacketLoss},
		{alert.SourcePing, alert.TypeEndToEndICMP},
		{alert.SourceSyslog, alert.TypeLinkDown},
		{alert.SourceSyslog, alert.TypeBGPPeerDown},
		{alert.SourceSNMP, alert.TypeTrafficCongestion},
		{alert.SourceOutOfBand, alert.TypeDeviceInaccessible},
		{alert.SourceTraffic, alert.TypeTrafficDrop},
		{alert.SourceSNMP, alert.TypeLinkDown},
	}
	// Hotspots: a handful of clusters receive most alerts (a severe
	// failure), the rest is background.
	clusters := topo.Clusters()
	hot := clusters[rng.Intn(len(clusters))]
	hotDevices := topo.DevicesUnder(hot)
	out := make([]alert.Alert, n)
	for i := range out {
		tt := types[rng.Intn(len(types))]
		var loc hierarchy.Path
		if rng.Float64() < 0.7 && len(hotDevices) > 0 {
			loc = topo.Device(hotDevices[rng.Intn(len(hotDevices))]).Path
		} else {
			loc = topo.Device(topology.DeviceID(rng.Intn(topo.NumDevices()))).Path
		}
		at := epoch.Add(time.Duration(rng.Intn(240)) * time.Second)
		out[i] = alert.Alert{
			ID: uint64(i + 1), Source: tt.src, Type: tt.typ,
			Class: alert.Classify(tt.src, tt.typ),
			Time:  at, End: at, Location: loc,
			Value: rng.Float64() * 0.5, Count: 1,
		}
	}
	return out
}

// Sec62 regenerates the §6.2 stream-processing summary on the corpus:
// raw rate, post-preprocessing rate, and worst locating time.
func Sec62(opts Options) (*Result, error) {
	records, err := corpus(opts)
	if err != nil {
		return nil, err
	}
	var rawTotal, structTotal int
	var window time.Duration
	for i := range records {
		rawTotal += len(records[i].Raw)
		structTotal += records[i].Stats.Structured
		window += opts.Window
	}
	hours := window.Hours()
	res := &Result{
		Name:       "preprocessing",
		Title:      "Stream preprocessing summary (§6.2)",
		PaperShape: "~100k alerts/hour before, <10k after under normal conditions; locate <10s worst case",
		Header:     []string{"metric", "value"},
	}
	res.Rows = [][]string{
		{"raw alerts/hour", fmt.Sprintf("%.0f", float64(rawTotal)/hours)},
		{"structured alerts/hour", fmt.Sprintf("%.0f", float64(structTotal)/hours)},
		{"reduction", pct(1 - float64(structTotal)/maxf(float64(rawTotal), 1))},
	}
	return res, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
