package hierarchy

// The meta subtree is the reserved corner of the hierarchy where SkyNet
// files alerts about itself: the self-monitoring loop injects synthetic
// alerts for SLO burn events at meta|skynetd|<rule>, so a degrading
// pipeline surfaces as a first-class incident alongside real network
// failures. No topology generator produces locations under MetaRegion —
// the subtree is disjoint from every real fault domain by construction.
const (
	// MetaRegion is the reserved region segment of the meta subtree.
	MetaRegion = "meta"
	// MetaDaemon is the reserved second segment naming the pipeline
	// itself.
	MetaDaemon = "skynetd"
)

// MetaRoot returns the root of the self-monitoring subtree,
// meta|skynetd.
func MetaRoot() Path { return MustNew(MetaRegion, MetaDaemon) }

// MetaComponent returns the location for one self-monitored component —
// in practice an SLO rule name: meta|skynetd|<component>. The component
// must be non-empty and separator-free, which rule names guarantee.
func MetaComponent(component string) (Path, error) {
	return MetaRoot().Child(component)
}

// MustMetaComponent is MetaComponent but panics on error.
func MustMetaComponent(component string) Path {
	p, err := MetaComponent(component)
	if err != nil {
		panic(err)
	}
	return p
}

// IsMeta reports whether p lies in the self-monitoring subtree.
func IsMeta(p Path) bool {
	return p.depth >= 2 && p.seg[0] == MetaRegion && p.seg[1] == MetaDaemon
}
