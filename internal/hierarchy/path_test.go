package hierarchy

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewAndString(t *testing.T) {
	cases := []struct {
		segs []string
		want string
	}{
		{nil, ""},
		{[]string{"RegionA"}, "RegionA"},
		{[]string{"RegionA", "Citya"}, "RegionA|Citya"},
		{[]string{"RegionA", "Citya", "Logic site 2", "Site I", "Cluster ii", "Device i"},
			"RegionA|Citya|Logic site 2|Site I|Cluster ii|Device i"},
	}
	for _, c := range cases {
		p, err := New(c.segs...)
		if err != nil {
			t.Fatalf("New(%v): %v", c.segs, err)
		}
		if got := p.String(); got != c.want {
			t.Errorf("New(%v).String() = %q, want %q", c.segs, got, c.want)
		}
		if p.Depth() != len(c.segs) {
			t.Errorf("Depth() = %d, want %d", p.Depth(), len(c.segs))
		}
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New("a", "b", "c", "d", "e", "f", "g"); err == nil {
		t.Error("New with 7 segments: want error")
	}
	if _, err := New("a", "", "c"); err == nil {
		t.Error("New with empty segment: want error")
	}
	if _, err := New("a|b"); err == nil {
		t.Error("New with separator in segment: want error")
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, s := range []string{"", "R", "R|C", "R|C|L|S|K|D"} {
		p, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if p.String() != s {
			t.Errorf("Parse(%q).String() = %q", s, p.String())
		}
	}
	if _, err := Parse("a||b"); err == nil {
		t.Error("Parse with empty segment: want error")
	}
}

func TestLevels(t *testing.T) {
	p := MustNew("R", "C", "L", "S", "K", "D")
	if p.Level() != LevelDevice || !p.IsDevice() {
		t.Errorf("full path level = %v", p.Level())
	}
	if Root().Level() != LevelRoot || !Root().IsRoot() {
		t.Error("root level mismatch")
	}
	if got := p.Segment(LevelCity); got != "C" {
		t.Errorf("Segment(City) = %q", got)
	}
	if got := p.Segment(LevelRoot); got != "" {
		t.Errorf("Segment(Root) = %q, want empty", got)
	}
	if got := MustNew("R").Segment(LevelCity); got != "" {
		t.Errorf("Segment beyond depth = %q, want empty", got)
	}
	if Level(99).String() == "" || Level(99).Valid() {
		t.Error("invalid level should stringify and report invalid")
	}
	for l := LevelRoot; l <= LevelDevice; l++ {
		if !l.Valid() {
			t.Errorf("level %d should be valid", l)
		}
	}
}

func TestParentChildLeaf(t *testing.T) {
	p := MustNew("R", "C")
	if p.Parent() != MustNew("R") {
		t.Errorf("Parent = %v", p.Parent())
	}
	if Root().Parent() != Root() {
		t.Error("root parent should be root")
	}
	if p.Leaf() != "C" {
		t.Errorf("Leaf = %q", p.Leaf())
	}
	if Root().Leaf() != "" {
		t.Error("root leaf should be empty")
	}
	q, err := p.Child("L")
	if err != nil || q.String() != "R|C|L" {
		t.Errorf("Child: %v %v", q, err)
	}
	full := MustNew("R", "C", "L", "S", "K", "D")
	if _, err := full.Child("x"); err == nil {
		t.Error("Child beyond device: want error")
	}
	if _, err := p.Child(""); err == nil {
		t.Error("empty child: want error")
	}
	if _, err := p.Child("a|b"); err == nil {
		t.Error("child with separator: want error")
	}
}

func TestTruncate(t *testing.T) {
	p := MustNew("R", "C", "L", "S", "K", "D")
	if got := p.Truncate(LevelCity); got != MustNew("R", "C") {
		t.Errorf("Truncate(City) = %v", got)
	}
	if got := p.Truncate(LevelDevice); got != p {
		t.Errorf("Truncate(Device) = %v", got)
	}
	if got := MustNew("R").Truncate(LevelCluster); got != MustNew("R") {
		t.Errorf("Truncate deeper than path = %v", got)
	}
	if got := p.Truncate(LevelRoot); !got.IsRoot() {
		t.Errorf("Truncate(Root) = %v", got)
	}
}

func TestContains(t *testing.T) {
	r := MustNew("R")
	rc := MustNew("R", "C")
	rx := MustNew("R", "X")
	if !Root().Contains(rc) || !r.Contains(rc) || !rc.Contains(rc) {
		t.Error("expected containment")
	}
	if rc.Contains(r) {
		t.Error("child should not contain parent")
	}
	if rx.Contains(rc) || rc.Contains(rx) {
		t.Error("siblings should not contain each other")
	}
	if !r.StrictlyContains(rc) || rc.StrictlyContains(rc) {
		t.Error("strict containment mismatch")
	}
}

func TestCommonAncestor(t *testing.T) {
	a := MustNew("R", "C", "L1")
	b := MustNew("R", "C", "L2")
	if got := a.CommonAncestor(b); got != MustNew("R", "C") {
		t.Errorf("CommonAncestor = %v", got)
	}
	if got := a.CommonAncestor(MustNew("Z")); !got.IsRoot() {
		t.Errorf("disjoint CommonAncestor = %v", got)
	}
	if got := a.CommonAncestor(a); got != a {
		t.Errorf("self CommonAncestor = %v", got)
	}
}

func TestAncestors(t *testing.T) {
	p := MustNew("R", "C", "L")
	anc := p.Ancestors()
	want := []Path{Root(), MustNew("R"), MustNew("R", "C")}
	if !reflect.DeepEqual(anc, want) {
		t.Errorf("Ancestors = %v, want %v", anc, want)
	}
	if len(Root().Ancestors()) != 0 {
		t.Error("root should have no ancestors")
	}
}

func TestCompareOrdering(t *testing.T) {
	paths := []Path{
		MustNew("B"),
		MustNew("A", "b"),
		Root(),
		MustNew("A"),
		MustNew("A", "a"),
	}
	sort.Slice(paths, func(i, j int) bool { return paths[i].Compare(paths[j]) < 0 })
	var got []string
	for _, p := range paths {
		got = append(got, p.String())
	}
	want := []string{"", "A", "A|a", "A|b", "B"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("sorted = %v, want %v", got, want)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := MustNew("R", "C", "L")
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var q Path
	if err := json.Unmarshal(b, &q); err != nil {
		t.Fatal(err)
	}
	if q != p {
		t.Errorf("round trip = %v, want %v", q, p)
	}
	var bad Path
	if err := json.Unmarshal([]byte(`"a||b"`), &bad); err == nil {
		t.Error("unmarshal invalid path: want error")
	}
}

// randPath produces a random valid path for property tests.
func randPath(r *rand.Rand) Path {
	depth := r.Intn(NumLevels + 1)
	segs := make([]string, depth)
	for i := range segs {
		segs[i] = string(rune('a'+r.Intn(4))) + string(rune('0'+r.Intn(10)))
	}
	return MustNew(segs...)
}

func TestPropertyParseStringInverse(t *testing.T) {
	f := func(seed int64) bool {
		p := randPath(rand.New(rand.NewSource(seed)))
		q, err := Parse(p.String())
		return err == nil && q == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyContainsTransitive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randPath(r)
		// b is a random ancestor of c; a is a random ancestor of b.
		b := c
		for i := r.Intn(NumLevels); i > 0 && !b.IsRoot(); i-- {
			b = b.Parent()
		}
		a := b
		for i := r.Intn(NumLevels); i > 0 && !a.IsRoot(); i-- {
			a = a.Parent()
		}
		return a.Contains(b) && b.Contains(c) && a.Contains(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyCommonAncestorContainsBoth(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randPath(r), randPath(r)
		ca := a.CommonAncestor(b)
		if !ca.Contains(a) || !ca.Contains(b) {
			return false
		}
		// Maximality: the next-deeper prefix of a must not contain b
		// (unless ca already equals a).
		if ca != a {
			deeper := a.Truncate(Level(ca.Depth() + 1))
			if deeper.Contains(b) {
				return false
			}
		}
		return ca.CommonAncestor(a) == ca
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyTruncateIsPrefix(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randPath(r)
		l := Level(r.Intn(NumLevels + 1))
		q := p.Truncate(l)
		return q.Contains(p) && strings.HasPrefix(p.String(), q.String())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyCompareAntisymmetric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randPath(r), randPath(r)
		c1, c2 := a.Compare(b), b.Compare(a)
		if a == b {
			return c1 == 0 && c2 == 0
		}
		return c1 == -c2 && c1 != 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
