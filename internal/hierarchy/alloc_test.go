package hierarchy

import "testing"

// Allocation caps for the Path operations on the locator's hot paths.
// Compare, Truncate, Contains, CommonAncestor, and AppendString are pure
// value manipulation and must never allocate; Ancestors materializes one
// slice and must never exceed it.
func TestPathOpAllocCaps(t *testing.T) {
	p := MustNew("RG01", "CT01", "LS01", "ST01", "CL01", "dev-1")
	q := MustNew("RG01", "CT01", "LS01", "ST02", "CL09", "dev-7")
	sink := 0
	if avg := testing.AllocsPerRun(100, func() {
		sink += p.Compare(q)
	}); avg != 0 {
		t.Errorf("Compare allocates %.1f times per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		sink += p.Truncate(LevelSite).Depth()
	}); avg != 0 {
		t.Errorf("Truncate allocates %.1f times per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if p.Contains(q) {
			sink++
		}
	}); avg != 0 {
		t.Errorf("Contains allocates %.1f times per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		sink += p.CommonAncestor(q).Depth()
	}); avg != 0 {
		t.Errorf("CommonAncestor allocates %.1f times per call, want 0", avg)
	}
	buf := make([]byte, 0, 128)
	if avg := testing.AllocsPerRun(100, func() {
		buf = p.AppendString(buf[:0], '|')
	}); avg != 0 {
		t.Errorf("AppendString allocates %.1f times per call, want 0", avg)
	}
	if string(buf) != p.String() {
		t.Errorf("AppendString = %q, want %q", buf, p.String())
	}
	if avg := testing.AllocsPerRun(100, func() {
		sink += len(p.Ancestors())
	}); avg > 1 {
		t.Errorf("Ancestors allocates %.1f times per call, want <= 1", avg)
	}
	_ = sink
}
