// Package hierarchy models the location hierarchy of a global cloud
// network as used by SkyNet: Region → City → LogicSite → Site → Cluster →
// Device (Figure 5b of the paper). Every alert carries a Path into this
// hierarchy, and the locator's alert trees are indexed by Path.
//
// Paths are value types: comparable, usable as map keys, and cheap to copy.
package hierarchy

import (
	"fmt"
	"strings"
	"unsafe"
)

// Level identifies one layer of the network location hierarchy.
// Lower numeric values are closer to the root.
type Level int

// The hierarchy levels, ordered from the global root down to a single
// network device. LevelRoot is the virtual root of the main alert tree.
const (
	LevelRoot Level = iota
	LevelRegion
	LevelCity
	LevelLogicSite
	LevelSite
	LevelCluster
	LevelDevice

	// NumLevels counts the addressable levels below the root.
	NumLevels = int(LevelDevice)
)

var levelNames = [...]string{
	LevelRoot:      "root",
	LevelRegion:    "region",
	LevelCity:      "city",
	LevelLogicSite: "logicsite",
	LevelSite:      "site",
	LevelCluster:   "cluster",
	LevelDevice:    "device",
}

// String returns the lowercase level name ("region", "cluster", ...).
func (l Level) String() string {
	if l < LevelRoot || l > LevelDevice {
		return fmt.Sprintf("level(%d)", int(l))
	}
	return levelNames[l]
}

// Valid reports whether l names a real hierarchy level (root included).
func (l Level) Valid() bool { return l >= LevelRoot && l <= LevelDevice }

// Sep separates path segments in the canonical textual form, matching the
// "Region A|City a|Logic site 2|Site I|Cluster ii" rendering in the paper.
const Sep = "|"

// Path is a location in the hierarchy: a prefix of
// [region, city, logicsite, site, cluster, device]. The zero Path is the
// root. Path is comparable and safe to use as a map key.
type Path struct {
	seg   [NumLevels]string
	depth uint8
}

// Root returns the root path (the zero value).
func Root() Path { return Path{} }

// New builds a Path from the given segments, region first. It returns an
// error if more than NumLevels segments are given, if any segment is empty,
// or if a segment contains the separator.
func New(segments ...string) (Path, error) {
	var p Path
	if len(segments) > NumLevels {
		return Path{}, fmt.Errorf("hierarchy: too many segments: %d > %d", len(segments), NumLevels)
	}
	for i, s := range segments {
		if s == "" {
			return Path{}, fmt.Errorf("hierarchy: empty segment at depth %d", i+1)
		}
		if strings.Contains(s, Sep) {
			return Path{}, fmt.Errorf("hierarchy: segment %q contains separator %q", s, Sep)
		}
		p.seg[i] = s
	}
	p.depth = uint8(len(segments))
	return p, nil
}

// MustNew is New but panics on error. Intended for tests and literals.
func MustNew(segments ...string) Path {
	p, err := New(segments...)
	if err != nil {
		panic(err)
	}
	return p
}

// Parse parses the canonical textual form produced by String:
// segments joined by "|". An empty string parses to the root.
func Parse(s string) (Path, error) {
	if s == "" {
		return Path{}, nil
	}
	return New(strings.Split(s, Sep)...)
}

// String renders the canonical textual form: segments joined by "|".
// The root renders as "".
func (p Path) String() string {
	if p.depth == 0 {
		return ""
	}
	return strings.Join(p.Segments(), Sep)
}

// Depth returns the number of segments (0 for the root, NumLevels for a
// device path).
func (p Path) Depth() int { return int(p.depth) }

// Level returns the hierarchy level this path addresses. The root path is
// LevelRoot, a one-segment path LevelRegion, and so on.
func (p Path) Level() Level { return Level(p.depth) }

// IsRoot reports whether p is the root path.
func (p Path) IsRoot() bool { return p.depth == 0 }

// IsDevice reports whether p addresses a single device (full depth).
func (p Path) IsDevice() bool { return int(p.depth) == NumLevels }

// Segments returns a copy of the path segments, region first.
func (p Path) Segments() []string {
	out := make([]string, p.depth)
	copy(out, p.seg[:p.depth])
	return out
}

// Segment returns the segment at the given level, or "" if the path does
// not reach that level. Segment(LevelRoot) is always "".
func (p Path) Segment(l Level) string {
	if l <= LevelRoot || int(l) > int(p.depth) {
		return ""
	}
	return p.seg[int(l)-1]
}

// HeaderEq reports whether q is byte-header-identical to p: same depth
// and every segment sharing the exact same string header (data pointer
// and length). Header identity implies equality, but not vice versa —
// equal paths built from different string backings compare false. It is
// the O(1) fast path for caches that fall back to a full compare on
// mismatch.
func (p *Path) HeaderEq(q *Path) bool {
	if p.depth != q.depth {
		return false
	}
	for i := range p.seg {
		if len(p.seg[i]) != len(q.seg[i]) {
			return false
		}
		if len(p.seg[i]) > 0 && unsafe.StringData(p.seg[i]) != unsafe.StringData(q.seg[i]) {
			return false
		}
	}
	return true
}

// Leaf returns the last segment, or "" for the root.
func (p Path) Leaf() string {
	if p.depth == 0 {
		return ""
	}
	return p.seg[p.depth-1]
}

// Parent returns the path one level up. The parent of the root is the root.
func (p Path) Parent() Path {
	if p.depth == 0 {
		return p
	}
	q := p
	q.seg[q.depth-1] = ""
	q.depth--
	return q
}

// Child returns p extended by one segment. It returns an error if p is
// already at device depth or the segment is invalid.
func (p Path) Child(segment string) (Path, error) {
	if int(p.depth) >= NumLevels {
		return Path{}, fmt.Errorf("hierarchy: cannot extend device path %q", p)
	}
	if segment == "" {
		return Path{}, fmt.Errorf("hierarchy: empty child segment under %q", p)
	}
	if strings.Contains(segment, Sep) {
		return Path{}, fmt.Errorf("hierarchy: segment %q contains separator %q", segment, Sep)
	}
	q := p
	q.seg[q.depth] = segment
	q.depth++
	return q, nil
}

// MustChild is Child but panics on error.
func (p Path) MustChild(segment string) Path {
	q, err := p.Child(segment)
	if err != nil {
		panic(err)
	}
	return q
}

// Truncate returns the prefix of p at the given level. Truncating to a
// level deeper than p returns p unchanged.
func (p Path) Truncate(l Level) Path {
	if !l.Valid() || int(l) >= int(p.depth) {
		return p
	}
	var q Path
	for i := 0; i < int(l); i++ {
		q.seg[i] = p.seg[i]
	}
	q.depth = uint8(l)
	return q
}

// Contains reports whether p is an ancestor of q or equal to q: every
// location is contained in itself, and the root contains everything.
func (p Path) Contains(q Path) bool {
	if p.depth > q.depth {
		return false
	}
	for i := 0; i < int(p.depth); i++ {
		if p.seg[i] != q.seg[i] {
			return false
		}
	}
	return true
}

// StrictlyContains reports whether p is a proper ancestor of q.
func (p Path) StrictlyContains(q Path) bool {
	return p.depth < q.depth && p.Contains(q)
}

// CommonAncestor returns the deepest path that contains both p and q.
func (p Path) CommonAncestor(q Path) Path {
	var out Path
	n := int(p.depth)
	if int(q.depth) < n {
		n = int(q.depth)
	}
	for i := 0; i < n; i++ {
		if p.seg[i] != q.seg[i] {
			break
		}
		out.seg[i] = p.seg[i]
		out.depth++
	}
	return out
}

// Compare orders paths lexicographically by segment, with ancestors before
// descendants. It returns -1, 0, or +1.
func (p Path) Compare(q Path) int {
	n := int(p.depth)
	if int(q.depth) < n {
		n = int(q.depth)
	}
	for i := 0; i < n; i++ {
		if c := strings.Compare(p.seg[i], q.seg[i]); c != 0 {
			return c
		}
	}
	switch {
	case p.depth < q.depth:
		return -1
	case p.depth > q.depth:
		return 1
	default:
		return 0
	}
}

// Ancestors returns all proper ancestors of p from the root (exclusive of p
// itself), shallowest first. The root path returns an empty slice.
func (p Path) Ancestors() []Path {
	if p.depth == 0 {
		return nil
	}
	out := make([]Path, 0, p.depth)
	q := Root()
	for i := 0; i < int(p.depth); i++ {
		out = append(out, q)
		q.seg[i] = p.seg[i]
		q.depth++
	}
	return out
}

// AppendString appends the canonical textual form (segments joined by
// sep) to dst and returns the extended slice — the zero-allocation
// variant of String for codecs writing into reused buffers.
func (p Path) AppendString(dst []byte, sep byte) []byte {
	for i := 0; i < int(p.depth); i++ {
		if i > 0 {
			dst = append(dst, sep)
		}
		dst = append(dst, p.seg[i]...)
	}
	return dst
}

// MarshalText implements encoding.TextMarshaler using the canonical form.
func (p Path) MarshalText() ([]byte, error) { return []byte(p.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (p *Path) UnmarshalText(b []byte) error {
	q, err := Parse(string(b))
	if err != nil {
		return err
	}
	*p = q
	return nil
}
