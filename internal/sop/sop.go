// Package sop implements the heuristic-rule engine that predates SkyNet
// and still handles "known failures" beside it (§7.2, §5.1 case 1):
// operator-authored rules match well-understood incident shapes and
// trigger Standard Operating Procedures automatically, always preparing a
// rollback plan so a wrong mitigation can be reverted manually.
//
// The canonical rule — the paper's worked example — isolates a device
// when:
//
//   - a device within a group is detected to be losing packets,
//   - other devices within this group do not generate alerts,
//   - the total traffic through this group is below a threshold.
package sop

import (
	"fmt"
	"time"

	"skynet/internal/alert"
	"skynet/internal/incident"
	"skynet/internal/topology"
)

// ActionKind enumerates mitigation primitives.
type ActionKind int

// The supported mitigation actions.
const (
	// ActionNone is a no-op (used as a rollback for observe-only rules).
	ActionNone ActionKind = iota
	// ActionIsolate removes a device from service.
	ActionIsolate
	// ActionDeisolate returns a device to service.
	ActionDeisolate
)

var actionNames = [...]string{
	ActionNone:      "none",
	ActionIsolate:   "isolate",
	ActionDeisolate: "deisolate",
}

// String names the action kind.
func (k ActionKind) String() string {
	if k < 0 || int(k) >= len(actionNames) {
		return fmt.Sprintf("action(%d)", int(k))
	}
	return actionNames[k]
}

// Action is one executable mitigation step.
type Action struct {
	Kind   ActionKind
	Device topology.DeviceID
}

// Plan is a matched rule's mitigation: the action plus the prepared
// rollback ("a rollback plan is prepared, enabling network operators to
// manually revert actions", §7.2).
type Plan struct {
	Rule     string
	Action   Action
	Rollback Action
	// Reason explains the match for the operator audit trail.
	Reason string
}

// Executor applies mitigation actions to the network. netsim.Simulator
// satisfies it; production would wrap the automation system.
type Executor interface {
	Isolate(topology.DeviceID)
	Deisolate(topology.DeviceID)
}

// TrafficOracle reports the current utilization of a device group's
// aggregate capacity (0..1+). The isolation rule refuses to isolate when
// the survivors could not carry the traffic.
type TrafficOracle func(group string) float64

// Rule matches incidents and produces plans.
type Rule interface {
	// Name identifies the rule.
	Name() string
	// Match returns a plan when the incident fits the rule.
	Match(topo *topology.Topology, in *incident.Incident, util TrafficOracle) (Plan, bool)
}

// Execution records an applied plan.
type Execution struct {
	Plan       Plan
	IncidentID int
	At         time.Time
	RolledBack bool
}

// Engine evaluates rules against incidents and executes matching plans.
// Not safe for concurrent use.
type Engine struct {
	topo  *topology.Topology
	exec  Executor
	util  TrafficOracle
	rules []Rule

	history []*Execution
	// handled remembers incident IDs already mitigated so a rule fires
	// once per incident.
	handled map[int]bool
}

// NewEngine builds an engine with the default rule set. util may be nil
// (treated as zero utilization — isolation always traffic-safe).
func NewEngine(topo *topology.Topology, exec Executor, util TrafficOracle) *Engine {
	if util == nil {
		util = func(string) float64 { return 0 }
	}
	return &Engine{
		topo:    topo,
		exec:    exec,
		util:    util,
		rules:   []Rule{DeviceLossIsolationRule{MaxGroupUtil: 0.5}},
		handled: make(map[int]bool),
	}
}

// AddRule appends an operator-authored rule (the production system
// accumulated nearly 1,000 of these).
func (e *Engine) AddRule(r Rule) { e.rules = append(e.rules, r) }

// Rules returns the installed rules.
func (e *Engine) Rules() []Rule { return e.rules }

// Consider evaluates an incident against the rules. On the first match it
// executes the plan and returns the execution record. Incidents already
// handled are skipped.
func (e *Engine) Consider(in *incident.Incident, now time.Time) (*Execution, bool) {
	if e.handled[in.ID] {
		return nil, false
	}
	for _, r := range e.rules {
		plan, ok := r.Match(e.topo, in, e.util)
		if !ok {
			continue
		}
		e.apply(plan.Action)
		exec := &Execution{Plan: plan, IncidentID: in.ID, At: now}
		e.history = append(e.history, exec)
		e.handled[in.ID] = true
		return exec, true
	}
	return nil, false
}

// Rollback reverts an execution using its prepared rollback action.
func (e *Engine) Rollback(exec *Execution) {
	if exec.RolledBack {
		return
	}
	e.apply(exec.Plan.Rollback)
	exec.RolledBack = true
}

// History returns all executions, oldest first.
func (e *Engine) History() []*Execution {
	out := make([]*Execution, len(e.history))
	copy(out, e.history)
	return out
}

func (e *Engine) apply(a Action) {
	switch a.Kind {
	case ActionIsolate:
		e.exec.Isolate(a.Device)
	case ActionDeisolate:
		e.exec.Deisolate(a.Device)
	}
}

// DeviceLossIsolationRule is the §7.2 worked example.
type DeviceLossIsolationRule struct {
	// MaxGroupUtil is the traffic threshold: above it, isolating a group
	// member would congest the survivors, so the rule stands down.
	MaxGroupUtil float64
}

// Name implements Rule.
func (DeviceLossIsolationRule) Name() string { return "device-loss-isolation" }

// Match implements Rule.
func (r DeviceLossIsolationRule) Match(topo *topology.Topology, in *incident.Incident, util TrafficOracle) (Plan, bool) {
	if topo == nil {
		return Plan{}, false
	}
	// Condition 0: the incident is scoped to exactly one device.
	dev, ok := topo.DeviceByPath(in.Root)
	if !ok {
		return Plan{}, false
	}
	// Condition 1: that device is losing packets.
	losing := false
	slab := in.EntrySlab()
	for i := range slab {
		a := &slab[i].Alert
		if a.Location == dev.Path && a.Type == alert.TypePacketLoss {
			losing = true
		}
	}
	if !losing {
		return Plan{}, false
	}
	// Condition 2: no other device in the group generates alerts.
	group := topo.Group(dev.Group)
	if len(group) < 2 {
		return Plan{}, false // lone device: isolation would black-hole the location
	}
	for _, loc := range in.Locations() {
		other, ok := topo.DeviceByPath(loc)
		if !ok || other.ID == dev.ID {
			continue
		}
		if other.Group == dev.Group {
			return Plan{}, false
		}
	}
	// Condition 3: group traffic is manageable.
	if util(dev.Group) > r.MaxGroupUtil {
		return Plan{}, false
	}
	return Plan{
		Rule:     r.Name(),
		Action:   Action{Kind: ActionIsolate, Device: dev.ID},
		Rollback: Action{Kind: ActionDeisolate, Device: dev.ID},
		Reason: fmt.Sprintf("device %s losing packets, group %s otherwise quiet, traffic below %.0f%%",
			dev.Name, dev.Group, r.MaxGroupUtil*100),
	}, true
}
