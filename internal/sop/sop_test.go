package sop

import (
	"testing"
	"time"

	"skynet/internal/alert"
	"skynet/internal/hierarchy"
	"skynet/internal/incident"
	"skynet/internal/topology"
)

var epoch = time.Date(2024, 7, 2, 11, 0, 0, 0, time.UTC)

// fakeExec records actions.
type fakeExec struct {
	isolated map[topology.DeviceID]bool
}

func newFakeExec() *fakeExec { return &fakeExec{isolated: map[topology.DeviceID]bool{}} }

func (f *fakeExec) Isolate(id topology.DeviceID)   { f.isolated[id] = true }
func (f *fakeExec) Deisolate(id topology.DeviceID) { delete(f.isolated, id) }

func smallTopo() *topology.Topology { return topology.MustGenerate(topology.SmallConfig()) }

func csr(topo *topology.Topology) *topology.Device {
	for i := range topo.Devices {
		if topo.Devices[i].Role == topology.RoleCSR {
			return &topo.Devices[i]
		}
	}
	return nil
}

func lossIncident(dev *topology.Device) *incident.Incident {
	in := incident.New(1, dev.Path)
	in.Add(alert.Alert{
		Source: alert.SourcePing, Type: alert.TypePacketLoss, Class: alert.ClassFailure,
		Time: epoch, End: epoch, Location: dev.Path, Value: 0.4, Count: 3,
	})
	in.Add(alert.Alert{
		Source: alert.SourceSyslog, Type: alert.TypeHardwareError, Class: alert.ClassRootCause,
		Time: epoch, End: epoch, Location: dev.Path, Count: 1,
	})
	return in
}

func TestIsolationRuleFires(t *testing.T) {
	topo := smallTopo()
	exec := newFakeExec()
	e := NewEngine(topo, exec, nil)
	dev := csr(topo)
	in := lossIncident(dev)
	got, ok := e.Consider(in, epoch)
	if !ok {
		t.Fatal("rule did not fire")
	}
	if got.Plan.Action.Kind != ActionIsolate || got.Plan.Action.Device != dev.ID {
		t.Errorf("plan = %+v", got.Plan)
	}
	if got.Plan.Rollback.Kind != ActionDeisolate {
		t.Error("rollback not prepared")
	}
	if !exec.isolated[dev.ID] {
		t.Error("device not actually isolated")
	}
	if len(e.History()) != 1 {
		t.Error("history missing")
	}
}

func TestRuleFiresOncePerIncident(t *testing.T) {
	topo := smallTopo()
	e := NewEngine(topo, newFakeExec(), nil)
	in := lossIncident(csr(topo))
	if _, ok := e.Consider(in, epoch); !ok {
		t.Fatal("first consider failed")
	}
	if _, ok := e.Consider(in, epoch.Add(time.Minute)); ok {
		t.Error("rule fired twice for the same incident")
	}
}

func TestRollback(t *testing.T) {
	topo := smallTopo()
	exec := newFakeExec()
	e := NewEngine(topo, exec, nil)
	dev := csr(topo)
	got, _ := e.Consider(lossIncident(dev), epoch)
	e.Rollback(got)
	if exec.isolated[dev.ID] {
		t.Error("rollback did not deisolate")
	}
	if !got.RolledBack {
		t.Error("execution not marked rolled back")
	}
	e.Rollback(got) // idempotent
}

func TestNoMatchGroupPeerAlerting(t *testing.T) {
	// Condition 2: a second group member alerting blocks the rule —
	// that's a group-level problem, not a lone bad device.
	topo := smallTopo()
	e := NewEngine(topo, newFakeExec(), nil)
	dev := csr(topo)
	in := lossIncident(dev)
	var peer *topology.Device
	for _, id := range topo.Group(dev.Group) {
		if id != dev.ID {
			peer = topo.Device(id)
			break
		}
	}
	in.Add(alert.Alert{
		Source: alert.SourceSyslog, Type: alert.TypeLinkDown, Class: alert.ClassRootCause,
		Time: epoch, End: epoch, Location: peer.Path, Count: 1,
	})
	if _, ok := e.Consider(in, epoch); ok {
		t.Error("rule fired despite alerting group peer")
	}
}

func TestNoMatchHighTraffic(t *testing.T) {
	// Condition 3: heavy group traffic blocks isolation.
	topo := smallTopo()
	e := NewEngine(topo, newFakeExec(), func(string) float64 { return 0.9 })
	if _, ok := e.Consider(lossIncident(csr(topo)), epoch); ok {
		t.Error("rule fired despite high group traffic")
	}
}

func TestNoMatchWithoutLoss(t *testing.T) {
	topo := smallTopo()
	e := NewEngine(topo, newFakeExec(), nil)
	dev := csr(topo)
	in := incident.New(1, dev.Path)
	in.Add(alert.Alert{
		Source: alert.SourceSyslog, Type: alert.TypeLinkDown, Class: alert.ClassRootCause,
		Time: epoch, End: epoch, Location: dev.Path, Count: 1,
	})
	if _, ok := e.Consider(in, epoch); ok {
		t.Error("rule fired without packet loss")
	}
}

func TestNoMatchAreaIncident(t *testing.T) {
	// Incidents rooted above device level are unknown territory: SkyNet's
	// job, not the SOP engine's.
	topo := smallTopo()
	e := NewEngine(topo, newFakeExec(), nil)
	site := topo.Clusters()[0].Parent()
	in := incident.New(1, site)
	in.Add(alert.Alert{
		Source: alert.SourcePing, Type: alert.TypePacketLoss, Class: alert.ClassFailure,
		Time: epoch, End: epoch, Location: site, Value: 0.5, Count: 10,
	})
	if _, ok := e.Consider(in, epoch); ok {
		t.Error("rule fired for an area-scoped incident")
	}
}

func TestNoMatchLoneDeviceInGroup(t *testing.T) {
	// Isolating the only member of a group would black-hole the location.
	topo := smallTopo()
	var lone *topology.Device
	for i := range topo.Devices {
		if len(topo.Group(topo.Devices[i].Group)) == 1 {
			lone = &topo.Devices[i]
			break
		}
	}
	if lone == nil {
		t.Skip("no singleton group in this topology")
	}
	e := NewEngine(topo, newFakeExec(), nil)
	if _, ok := e.Consider(lossIncident(lone), epoch); ok {
		t.Error("rule isolated a lone group member")
	}
}

func TestCustomRule(t *testing.T) {
	topo := smallTopo()
	e := NewEngine(topo, newFakeExec(), nil)
	e.AddRule(observeRule{})
	if len(e.Rules()) != 2 {
		t.Fatal("rule not added")
	}
	// An incident the default rule rejects but the custom one accepts.
	site := topo.Clusters()[0].Parent()
	in := incident.New(9, site)
	in.Add(alert.Alert{
		Source: alert.SourceRouteMonitoring, Type: alert.TypeRouteHijack, Class: alert.ClassRootCause,
		Time: epoch, End: epoch, Location: site, Count: 1,
	})
	got, ok := e.Consider(in, epoch)
	if !ok || got.Plan.Rule != "observe-route-hijack" {
		t.Errorf("custom rule did not fire: %+v", got)
	}
}

// observeRule is a no-action rule used to test extensibility.
type observeRule struct{}

func (observeRule) Name() string { return "observe-route-hijack" }

func (o observeRule) Match(topo *topology.Topology, in *incident.Incident, util TrafficOracle) (Plan, bool) {
	for _, entries := range in.Entries() {
		for k := range entries {
			if k.Type == alert.TypeRouteHijack {
				return Plan{Rule: o.Name(), Reason: "hijack observed"}, true
			}
		}
	}
	return Plan{}, false
}

func TestActionKindStrings(t *testing.T) {
	for k := ActionNone; k <= ActionDeisolate; k++ {
		if k.String() == "" {
			t.Error("empty action name")
		}
	}
	if ActionKind(9).String() != "action(9)" {
		t.Error("out of range action name")
	}
}

func TestNilTopologyNeverMatches(t *testing.T) {
	e := NewEngine(nil, newFakeExec(), nil)
	dev := hierarchy.MustNew("R", "C", "L", "S", "K", "d")
	in := incident.New(1, dev)
	in.Add(alert.Alert{
		Source: alert.SourcePing, Type: alert.TypePacketLoss, Class: alert.ClassFailure,
		Time: epoch, End: epoch, Location: dev, Count: 1,
	})
	if _, ok := e.Consider(in, epoch); ok {
		t.Error("rule matched without a topology")
	}
}
