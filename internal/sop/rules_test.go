package sop

import (
	"strings"
	"testing"

	"skynet/internal/alert"
	"skynet/internal/hierarchy"
	"skynet/internal/incident"
	"skynet/internal/topology"
)

func mkAlert(typ string, class alert.Class, count int, cs string) alert.Alert {
	return alert.Alert{
		Source: alert.SourceSyslog, Type: typ, Class: class,
		Time: epoch, End: epoch, Count: count, CircuitSet: cs,
	}
}

func TestCommonRulesInventory(t *testing.T) {
	rules := CommonRules()
	if len(rules) != 3 {
		t.Fatalf("rules = %d", len(rules))
	}
	desc := DescribeRules(rules)
	for _, want := range []string{"interface-flap-dampening", "entry-fiber-repair-ticket", "bgp-peer-reset"} {
		if !strings.Contains(desc, want) {
			t.Errorf("describe missing %s", want)
		}
	}
}

func TestFlapDampeningRule(t *testing.T) {
	topo := smallTopo()
	dev := csr(topo)
	in := incident.New(1, dev.Path)
	a := mkAlert(alert.TypeBGPLinkJitter, alert.ClassRootCause, 8, "")
	a.Location = dev.Path
	in.Add(a)
	rule := FlapDampeningRule{MinFlapCount: 5}
	plan, ok := rule.Match(topo, in, nil)
	if !ok {
		t.Fatal("flap rule did not match")
	}
	if plan.Action.Kind != ActionNone || !strings.Contains(plan.Reason, "dampening") {
		t.Errorf("plan = %+v", plan)
	}
	// Below the flap volume: no match.
	in2 := incident.New(2, dev.Path)
	b := mkAlert(alert.TypeLinkFlapping, alert.ClassAbnormal, 2, "")
	b.Location = dev.Path
	in2.Add(b)
	if _, ok := rule.Match(topo, in2, nil); ok {
		t.Error("matched below MinFlapCount")
	}
	// Group peer alerting: shared cause, no match.
	in3 := incident.New(3, dev.Path)
	c := mkAlert(alert.TypeBGPLinkJitter, alert.ClassRootCause, 8, "")
	c.Location = dev.Path
	in3.Add(c)
	var peer *topology.Device
	for _, id := range topo.Group(dev.Group) {
		if id != dev.ID {
			peer = topo.Device(id)
			break
		}
	}
	d := mkAlert(alert.TypeLinkDown, alert.ClassRootCause, 1, "")
	d.Location = peer.Path
	in3.Add(d)
	if _, ok := rule.Match(topo, in3, nil); ok {
		t.Error("matched despite alerting group peer")
	}
}

func TestEntryFiberTicketRule(t *testing.T) {
	topo := smallTopo()
	// Find two internet-entry links in the same city.
	var entries []*topology.Link
	for i := range topo.Links {
		if topo.Links[i].InternetEntry {
			entries = append(entries, &topo.Links[i])
		}
		if len(entries) == 2 {
			break
		}
	}
	city := topo.Device(entries[0].A).Path.Truncate(2)
	in := incident.New(1, city)
	for _, l := range entries {
		a := mkAlert(alert.TypeLinkDown, alert.ClassRootCause, 4, l.CircuitSet)
		a.Location = topo.Device(l.A).Path
		in.Add(a)
	}
	rule := EntryFiberTicketRule{}
	plan, ok := rule.Match(topo, in, nil)
	if !ok {
		t.Fatal("fiber ticket rule did not match")
	}
	if !strings.Contains(plan.Reason, "fiber-repair ticket") {
		t.Errorf("reason = %s", plan.Reason)
	}
	// A single aggregation link down does not look like a fiber cut.
	var agg *topology.Link
	for i := range topo.Links {
		if !topo.Links[i].InternetEntry {
			agg = &topo.Links[i]
			break
		}
	}
	in2 := incident.New(2, city)
	b := mkAlert(alert.TypeLinkDown, alert.ClassRootCause, 1, agg.CircuitSet)
	b.Location = topo.Device(agg.A).Path
	in2.Add(b)
	if _, ok := rule.Match(topo, in2, nil); ok {
		t.Error("matched a non-entry link cut")
	}
}

func TestBGPPeerResetRule(t *testing.T) {
	topo := smallTopo()
	dev := csr(topo)
	in := incident.New(1, dev.Path)
	a := mkAlert(alert.TypeBGPPeerDown, alert.ClassAbnormal, 1, "")
	a.Location = dev.Path
	in.Add(a)
	rule := BGPPeerResetRule{}
	if _, ok := rule.Match(topo, in, nil); !ok {
		t.Fatal("bgp reset rule did not match a lone session failure")
	}
	// Physical evidence disqualifies.
	b := mkAlert(alert.TypePortDown, alert.ClassRootCause, 1, "")
	b.Location = dev.Path
	in.Add(b)
	if _, ok := rule.Match(topo, in, nil); ok {
		t.Error("matched despite physical-layer evidence")
	}
}

func TestCommonRulesViaEngine(t *testing.T) {
	topo := smallTopo()
	e := NewEngine(topo, newFakeExec(), nil)
	for _, r := range CommonRules() {
		e.AddRule(r)
	}
	dev := csr(topo)
	in := incident.New(42, dev.Path)
	a := mkAlert(alert.TypeBGPPeerDown, alert.ClassAbnormal, 1, "")
	a.Location = dev.Path
	in.Add(a)
	exec, ok := e.Consider(in, epoch)
	if !ok {
		t.Fatal("no rule fired through the engine")
	}
	if exec.Plan.Rule != "bgp-peer-reset" {
		t.Errorf("rule = %s", exec.Plan.Rule)
	}
}

func TestNilTopologyCommonRules(t *testing.T) {
	in := incident.New(1, hierarchy.MustNew("R", "C", "L", "S", "K", "d"))
	for _, r := range CommonRules() {
		if _, ok := r.Match(nil, in, nil); ok {
			t.Errorf("rule %s matched with nil topology", r.Name())
		}
	}
}
