package sop

import (
	"fmt"
	"strings"

	"skynet/internal/alert"
	"skynet/internal/incident"
	"skynet/internal/topology"
)

// CommonRules returns additional operator-authored rules modeled on the
// kinds of SOPs the paper says accumulated in production ("nearly 1,000
// rules", §7.2). They are NOT installed by default: each deployment picks
// the rules matching its operational policy with Engine.AddRule.
//
// Unlike the isolation rule, most of these are observe-and-annotate: they
// match a known pattern and record the prescribed procedure without
// touching the network, leaving execution to the automation system that
// owns the runbook.
func CommonRules() []Rule {
	return []Rule{
		FlapDampeningRule{MinFlapCount: 5},
		EntryFiberTicketRule{},
		BGPPeerResetRule{},
	}
}

// FlapDampeningRule matches a device whose interfaces are flapping (link/
// port flapping or BGP churn) while its group peers are quiet: the known
// procedure is to dampen the flapping interfaces rather than isolate the
// device.
type FlapDampeningRule struct {
	// MinFlapCount is the flap-alert volume needed before dampening.
	MinFlapCount int
}

// Name implements Rule.
func (FlapDampeningRule) Name() string { return "interface-flap-dampening" }

// Match implements Rule.
func (r FlapDampeningRule) Match(topo *topology.Topology, in *incident.Incident, util TrafficOracle) (Plan, bool) {
	if topo == nil {
		return Plan{}, false
	}
	dev, ok := topo.DeviceByPath(in.Root)
	if !ok {
		return Plan{}, false
	}
	flaps := 0
	slab := in.EntrySlab()
	for i := range slab {
		a := &slab[i].Alert
		if a.Location != dev.Path {
			continue
		}
		switch a.Type {
		case alert.TypeLinkFlapping, alert.TypePortFlapping, alert.TypeBGPLinkJitter:
			flaps += a.Count
		}
	}
	if flaps < r.MinFlapCount {
		return Plan{}, false
	}
	// Other group members alerting means a shared cause, not a local
	// flap: stand down.
	for _, loc := range in.Locations() {
		other, ok := topo.DeviceByPath(loc)
		if !ok || other.ID == dev.ID {
			continue
		}
		if other.Group == dev.Group {
			return Plan{}, false
		}
	}
	return Plan{
		Rule:     r.Name(),
		Action:   Action{Kind: ActionNone},
		Rollback: Action{Kind: ActionNone},
		Reason: fmt.Sprintf("%d flap alerts on %s, group quiet: apply interface dampening per runbook",
			flaps, dev.Name),
	}, true
}

// EntryFiberTicketRule matches incidents whose root-cause evidence is
// dominated by link-down alerts on internet-entry circuit sets — the §2.2
// signature. The procedure is a repair-technician dispatch plus traffic
// drain, neither of which software can perform; the rule annotates the
// incident with the runbook so the on-call loses no time rediscovering it.
type EntryFiberTicketRule struct{}

// Name implements Rule.
func (EntryFiberTicketRule) Name() string { return "entry-fiber-repair-ticket" }

// Match implements Rule.
func (r EntryFiberTicketRule) Match(topo *topology.Topology, in *incident.Incident, util TrafficOracle) (Plan, bool) {
	if topo == nil {
		return Plan{}, false
	}
	entrySets := 0
	slab := in.EntrySlab()
	for i := range slab {
		a := &slab[i].Alert
		if a.Type != alert.TypeLinkDown || a.CircuitSet == "" {
			continue
		}
		cs := topo.CircuitSet(a.CircuitSet)
		if cs == nil {
			continue
		}
		if topo.Link(cs.Link).InternetEntry {
			entrySets++
		}
	}
	if entrySets < 2 {
		return Plan{}, false
	}
	return Plan{
		Rule:     r.Name(),
		Action:   Action{Kind: ActionNone},
		Rollback: Action{Kind: ActionNone},
		Reason: fmt.Sprintf("%d internet-entry circuit sets down: open fiber-repair ticket, drain entry traffic per runbook",
			entrySets),
	}, true
}

// BGPPeerResetRule matches a lone BGP session failure with no underlying
// physical evidence: the known first response is a session reset on the
// affected speaker. Physical evidence (link/port down) disqualifies the
// rule — resetting BGP on a dead link is noise.
type BGPPeerResetRule struct{}

// Name implements Rule.
func (BGPPeerResetRule) Name() string { return "bgp-peer-reset" }

// Match implements Rule.
func (r BGPPeerResetRule) Match(topo *topology.Topology, in *incident.Incident, util TrafficOracle) (Plan, bool) {
	if topo == nil {
		return Plan{}, false
	}
	dev, ok := topo.DeviceByPath(in.Root)
	if !ok {
		return Plan{}, false
	}
	hasBGPDown, hasPhysical := false, false
	slab := in.EntrySlab()
	for i := range slab {
		switch slab[i].Alert.Type {
		case alert.TypeBGPPeerDown:
			hasBGPDown = true
		case alert.TypeLinkDown, alert.TypePortDown, alert.TypeInterfaceDown, alert.TypeDeviceDown:
			hasPhysical = true
		}
	}
	if !hasBGPDown || hasPhysical {
		return Plan{}, false
	}
	return Plan{
		Rule:     r.Name(),
		Action:   Action{Kind: ActionNone},
		Rollback: Action{Kind: ActionNone},
		Reason:   "bgp session down without physical-layer evidence on " + dev.Name + ": soft-reset the session per runbook",
	}, true
}

// DescribeRules renders a one-line-per-rule summary for operator review.
func DescribeRules(rules []Rule) string {
	var b strings.Builder
	for _, r := range rules {
		fmt.Fprintf(&b, "- %s\n", r.Name())
	}
	return b.String()
}
