package topology

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	orig := MustGenerate(SmallConfig())
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumDevices() != orig.NumDevices() || got.NumLinks() != orig.NumLinks() {
		t.Fatalf("sizes differ: %d/%d vs %d/%d",
			got.NumDevices(), got.NumLinks(), orig.NumDevices(), orig.NumLinks())
	}
	for i := range orig.Devices {
		a, b := orig.Devices[i], got.Devices[i]
		if a != b {
			t.Fatalf("device %d differs:\n a=%+v\n b=%+v", i, a, b)
		}
	}
	for i := range orig.Links {
		if orig.Links[i] != got.Links[i] {
			t.Fatalf("link %d differs", i)
		}
	}
	for name, cs := range orig.Sets {
		gcs := got.Sets[name]
		if gcs == nil || len(gcs.Customers) != len(cs.Customers) {
			t.Fatalf("circuit set %s customers differ", name)
		}
		for i := range cs.Customers {
			if cs.Customers[i] != gcs.Customers[i] {
				t.Fatalf("circuit set %s customer %d differs", name, i)
			}
		}
	}
	// Derived indexes work: adjacency and groups intact.
	l := got.Link(0)
	if !got.Adjacent(got.Device(l.A).Path, got.Device(l.B).Path) {
		t.Error("adjacency lost through serialization")
	}
	if len(got.Clusters()) != len(orig.Clusters()) {
		t.Error("cluster index lost")
	}
	if len(got.Group(got.Device(0).Group)) == 0 {
		t.Error("groups lost")
	}
}

func TestFileRoundTrip(t *testing.T) {
	orig := MustGenerate(SmallConfig())
	path := filepath.Join(t.TempDir(), "topo.json")
	if err := orig.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumDevices() != orig.NumDevices() {
		t.Error("file round trip lost devices")
	}
	if _, err := LoadFile("/nonexistent.json"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{"not json", `{`},
		{"bad version", `{"version":99}`},
		{"empty device name", `{"version":1,"devices":[{"name":"","role":"ToR","attach":"R|C|L|S|K"}]}`},
		{"duplicate device", `{"version":1,"devices":[
			{"name":"d","role":"ToR","attach":"R|C|L|S|K"},
			{"name":"d","role":"ToR","attach":"R|C|L|S|K"}]}`},
		{"unknown role", `{"version":1,"devices":[{"name":"d","role":"XXX","attach":"R|C|L|S|K"}]}`},
		{"device past depth", `{"version":1,"devices":[{"name":"d","role":"ToR","attach":"R|C|L|S|K|x"}]}`},
		{"unknown link endpoint", `{"version":1,"devices":[{"name":"d","role":"ToR","attach":"R|C|L|S|K"}],
			"links":[{"a":"d","b":"nope","circuitset":"cs","circuits":1,"capacity_gbps":10}]}`},
		{"empty circuit set", `{"version":1,"devices":[
			{"name":"d1","role":"ToR","attach":"R|C|L|S|K"},
			{"name":"d2","role":"ToR","attach":"R|C|L|S|K"}],
			"links":[{"a":"d1","b":"d2","circuitset":"","circuits":1,"capacity_gbps":10}]}`},
		{"duplicate circuit set", `{"version":1,"devices":[
			{"name":"d1","role":"ToR","attach":"R|C|L|S|K"},
			{"name":"d2","role":"ToR","attach":"R|C|L|S|K"}],
			"links":[
			  {"a":"d1","b":"d2","circuitset":"cs","circuits":1,"capacity_gbps":10},
			  {"a":"d2","b":"d1","circuitset":"cs","circuits":1,"capacity_gbps":10}]}`},
		{"unknown customer", `{"version":1,"devices":[
			{"name":"d1","role":"ToR","attach":"R|C|L|S|K"},
			{"name":"d2","role":"ToR","attach":"R|C|L|S|K"}],
			"links":[{"a":"d1","b":"d2","circuitset":"cs","circuits":1,"capacity_gbps":10,"customers":["nope"]}]}`},
		{"duplicate customer", `{"version":1,"customers":[
			{"name":"c","importance":1},{"name":"c","importance":1}]}`},
		{"empty customer name", `{"version":1,"customers":[{"name":"","importance":1}]}`},
	}
	for _, c := range cases {
		if _, err := ReadJSON(strings.NewReader(c.body)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestHandAuthoredMinimalTopology(t *testing.T) {
	// The format works for operator-authored inventories, not only
	// exports: a two-device toy network with one customer.
	body := `{
	  "version": 1,
	  "customers": [{"name": "acme", "importance": 3, "important": true}],
	  "devices": [
	    {"name": "tor-1", "role": "ToR", "attach": "R|C|L|S|K1"},
	    {"name": "tor-2", "role": "ToR", "attach": "R|C|L|S|K2"}
	  ],
	  "links": [
	    {"a": "tor-1", "b": "tor-2", "circuitset": "cs-1", "circuits": 2,
	     "capacity_gbps": 100, "customers": ["acme"]}
	  ]
	}`
	topo, err := ReadJSON(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumDevices() != 2 || topo.NumLinks() != 1 {
		t.Fatalf("sizes: %d devices %d links", topo.NumDevices(), topo.NumLinks())
	}
	cs := topo.CircuitSet("cs-1")
	if cs == nil || len(cs.Customers) != 1 {
		t.Fatal("circuit set customers missing")
	}
	if !topo.Customer(cs.Customers[0]).Important {
		t.Error("importance flag lost")
	}
	d, ok := topo.DeviceByName("tor-1")
	if !ok || d.Group == "" {
		t.Error("default group not assigned")
	}
}
