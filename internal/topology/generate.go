package topology

import (
	"fmt"
	"math/rand"
	"sort"

	"skynet/internal/hierarchy"
)

// Config controls the synthetic topology generator. The zero value is not
// usable; start from SmallConfig or ProductionConfig.
type Config struct {
	Regions           int
	CitiesPerRegion   int
	LogicSitesPerCity int
	SitesPerLogicSite int
	ClustersPerSite   int
	ToRsPerCluster    int

	// CSRsPerSite is the size of the site router redundancy group.
	CSRsPerSite int
	// BSRsPerLogicSite is the size of the border router group.
	BSRsPerLogicSite int
	// DCBRsPerCity is the size of the city border group.
	DCBRsPerCity int
	// InternetEntriesPerCity is the number of internet-entry link bundles
	// from the city's DCBRs to the ISP peer (the cables of §2.2).
	InternetEntriesPerCity int

	// Customers is the total tenant population; each circuit set is
	// assigned a handful of them.
	Customers int
	// ImportantCustomerRatio is the fraction of customers marked
	// "important" (their count is U_k in the evaluator).
	ImportantCustomerRatio float64

	// Seed makes generation deterministic.
	Seed int64
}

// SmallConfig returns a laptop-scale topology (a few hundred devices),
// suitable for unit tests and examples.
func SmallConfig() Config {
	return Config{
		Regions:                1,
		CitiesPerRegion:        2,
		LogicSitesPerCity:      2,
		SitesPerLogicSite:      2,
		ClustersPerSite:        3,
		ToRsPerCluster:         4,
		CSRsPerSite:            2,
		BSRsPerLogicSite:       2,
		DCBRsPerCity:           2,
		InternetEntriesPerCity: 4,
		Customers:              64,
		ImportantCustomerRatio: 0.15,
		Seed:                   1,
	}
}

// ProductionConfig returns a bench-scale topology on the order of 10^4
// devices, the shape (not the size) of the paper's O(10^5) network.
func ProductionConfig() Config {
	return Config{
		Regions:                4,
		CitiesPerRegion:        3,
		LogicSitesPerCity:      3,
		SitesPerLogicSite:      3,
		ClustersPerSite:        6,
		ToRsPerCluster:         16,
		CSRsPerSite:            4,
		BSRsPerLogicSite:       2,
		DCBRsPerCity:           4,
		InternetEntriesPerCity: 8,
		Customers:              4096,
		ImportantCustomerRatio: 0.1,
		Seed:                   1,
	}
}

// Validate checks that the configuration can generate a connected network.
func (c *Config) Validate() error {
	checks := []struct {
		name string
		v    int
		min  int
	}{
		{"Regions", c.Regions, 1},
		{"CitiesPerRegion", c.CitiesPerRegion, 1},
		{"LogicSitesPerCity", c.LogicSitesPerCity, 1},
		{"SitesPerLogicSite", c.SitesPerLogicSite, 1},
		{"ClustersPerSite", c.ClustersPerSite, 1},
		{"ToRsPerCluster", c.ToRsPerCluster, 1},
		{"CSRsPerSite", c.CSRsPerSite, 1},
		{"BSRsPerLogicSite", c.BSRsPerLogicSite, 1},
		{"DCBRsPerCity", c.DCBRsPerCity, 1},
		{"InternetEntriesPerCity", c.InternetEntriesPerCity, 1},
		{"Customers", c.Customers, 1},
	}
	for _, ch := range checks {
		if ch.v < ch.min {
			return fmt.Errorf("topology: config %s = %d, need ≥ %d", ch.name, ch.v, ch.min)
		}
	}
	if c.ImportantCustomerRatio < 0 || c.ImportantCustomerRatio > 1 {
		return fmt.Errorf("topology: ImportantCustomerRatio = %v out of [0,1]", c.ImportantCustomerRatio)
	}
	return nil
}

// builder accumulates a topology during generation.
type builder struct {
	t   *Topology
	rng *rand.Rand
}

// Generate builds a deterministic topology from the configuration.
func Generate(cfg Config) (*Topology, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b := &builder{
		t: &Topology{
			Sets:   make(map[string]*CircuitSet),
			byPath: make(map[hierarchy.Path]DeviceID),
			byName: make(map[string]DeviceID),
			groups: make(map[string][]DeviceID),
		},
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
	b.makeCustomers(cfg)

	var allDCBRs [][]DeviceID // per region: that region's DCBRs
	for r := 0; r < cfg.Regions; r++ {
		regionPath := hierarchy.MustNew(fmt.Sprintf("RG%02d", r+1))
		var regionDCBRs []DeviceID
		var prevCityDCBRs []DeviceID
		for c := 0; c < cfg.CitiesPerRegion; c++ {
			cityPath := regionPath.MustChild(fmt.Sprintf("CT%02d", c+1))
			cityDCBRs := b.addGroup(cityPath, RoleDCBR, cfg.DCBRsPerCity)
			regionDCBRs = append(regionDCBRs, cityDCBRs...)
			// Intra-region WAN: pairwise bundles between consecutive
			// cities' border routers.
			for i, d := range cityDCBRs {
				if len(prevCityDCBRs) > 0 {
					b.addLink(prevCityDCBRs[i%len(prevCityDCBRs)], d, 8, 800, false)
				}
			}
			prevCityDCBRs = cityDCBRs

			// Internet entry: an ISP peer device plus entry bundles.
			isp := b.addDevice(cityPath, RoleISP, 1, 1)
			for e := 0; e < cfg.InternetEntriesPerCity; e++ {
				dcbr := cityDCBRs[e%len(cityDCBRs)]
				b.addLink(dcbr, isp, 4, 400, true)
			}

			for ls := 0; ls < cfg.LogicSitesPerCity; ls++ {
				lsPath := cityPath.MustChild(fmt.Sprintf("LS%02d", ls+1))
				bsrs := b.addGroup(lsPath, RoleBSR, cfg.BSRsPerLogicSite)
				// A route reflector in the first logic site of each city
				// (the unusual logic-site-level device from §7.1).
				if ls == 0 {
					rr := b.addDevice(lsPath, RoleReflector, 1, 1)
					for _, bsr := range bsrs {
						b.addLink(rr, bsr, 2, 100, false)
					}
				}
				// BSR ↔ DCBR full bipartite.
				for _, bsr := range bsrs {
					for _, dcbr := range cityDCBRs {
						b.addLink(bsr, dcbr, 4, 400, false)
					}
				}
				for s := 0; s < cfg.SitesPerLogicSite; s++ {
					sitePath := lsPath.MustChild(fmt.Sprintf("ST%02d", s+1))
					csrs := b.addGroup(sitePath, RoleCSR, cfg.CSRsPerSite)
					for _, csr := range csrs {
						for _, bsr := range bsrs {
							b.addLink(csr, bsr, 4, 400, false)
						}
					}
					for k := 0; k < cfg.ClustersPerSite; k++ {
						clPath := sitePath.MustChild(fmt.Sprintf("CL%02d", k+1))
						isrs := b.addGroup(clPath, RoleISR, 2)
						for _, isr := range isrs {
							for _, csr := range csrs {
								b.addLink(isr, csr, 2, 200, false)
							}
						}
						tors := b.addGroup(clPath, RoleToR, cfg.ToRsPerCluster)
						for _, tor := range tors {
							for _, isr := range isrs {
								b.addLink(tor, isr, 2, 100, false)
							}
						}
					}
				}
			}
		}
		allDCBRs = append(allDCBRs, regionDCBRs)
	}

	// WAN backbone: chain regions through their first DCBRs, plus a ring
	// closure when there are more than two regions.
	for r := 1; r < len(allDCBRs); r++ {
		b.addLink(allDCBRs[r-1][0], allDCBRs[r][0], 8, 800, false)
	}
	if len(allDCBRs) > 2 {
		b.addLink(allDCBRs[len(allDCBRs)-1][0], allDCBRs[0][0], 8, 800, false)
	}

	b.finish()
	if err := b.t.Validate(); err != nil {
		return nil, fmt.Errorf("topology: generated invalid topology: %w", err)
	}
	return b.t, nil
}

// MustGenerate is Generate but panics on error; for tests and examples.
func MustGenerate(cfg Config) *Topology {
	t, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

func (b *builder) makeCustomers(cfg Config) {
	b.t.Customers = make([]Customer, cfg.Customers)
	for i := range b.t.Customers {
		important := b.rng.Float64() < cfg.ImportantCustomerRatio
		imp := 1.0
		if important {
			imp = 2.0 + 3.0*b.rng.Float64()
		}
		b.t.Customers[i] = Customer{
			ID:         CustomerID(i),
			Name:       fmt.Sprintf("cust-%04d", i),
			Importance: imp,
			Important:  important,
		}
	}
}

// addDevice creates count devices of the role at the attachment path and
// returns the last one (convenience for singletons).
func (b *builder) addDevice(attach hierarchy.Path, role Role, index, count int) DeviceID {
	_ = count
	id := DeviceID(len(b.t.Devices))
	name := fmt.Sprintf("%s-%s-%d", pathSlug(attach), role, index)
	d := Device{
		ID:     id,
		Name:   name,
		Role:   role,
		Attach: attach,
		Path:   attach.MustChild(name),
		Group:  fmt.Sprintf("%s/%s", attach, role),
	}
	b.t.Devices = append(b.t.Devices, d)
	b.t.byPath[d.Path] = id
	b.t.byName[d.Name] = id
	b.t.groups[d.Group] = append(b.t.groups[d.Group], id)
	return id
}

// addGroup creates a redundancy group of count devices.
func (b *builder) addGroup(attach hierarchy.Path, role Role, count int) []DeviceID {
	out := make([]DeviceID, count)
	for i := range out {
		out[i] = b.addDevice(attach, role, i+1, count)
	}
	return out
}

func (b *builder) addLink(a, c DeviceID, circuits int, capacityGbps float64, internet bool) LinkID {
	id := LinkID(len(b.t.Links))
	csName := fmt.Sprintf("cs-%05d", id)
	b.t.Links = append(b.t.Links, Link{
		ID:            id,
		A:             a,
		B:             c,
		CircuitSet:    csName,
		Circuits:      circuits,
		CapacityGbps:  capacityGbps,
		InternetEntry: internet,
	})
	cs := &CircuitSet{Name: csName, Link: id, Circuits: circuits}
	// Assign a handful of customers to the circuit set. Aggregation links
	// (higher capacity) carry more customers.
	n := 1 + int(capacityGbps/100)
	for i := 0; i < n && len(b.t.Customers) > 0; i++ {
		cs.Customers = append(cs.Customers, CustomerID(b.rng.Intn(len(b.t.Customers))))
	}
	sort.Slice(cs.Customers, func(i, j int) bool { return cs.Customers[i] < cs.Customers[j] })
	b.t.Sets[csName] = cs
	return id
}

// finish builds the derived indexes.
func (b *builder) finish() {
	t := b.t
	t.adj = make([][]DeviceID, len(t.Devices))
	t.devLinks = make([][]LinkID, len(t.Devices))
	for i := range t.Links {
		l := &t.Links[i]
		t.adj[l.A] = append(t.adj[l.A], l.B)
		t.adj[l.B] = append(t.adj[l.B], l.A)
		t.devLinks[l.A] = append(t.devLinks[l.A], l.ID)
		t.devLinks[l.B] = append(t.devLinks[l.B], l.ID)
	}
	seen := make(map[hierarchy.Path]bool)
	for i := range t.Devices {
		cl := t.Devices[i].Attach
		if cl.Level() == hierarchy.LevelCluster && !seen[cl] {
			seen[cl] = true
			t.clusters = append(t.clusters, cl)
		}
	}
	sort.Slice(t.clusters, func(i, j int) bool { return t.clusters[i].Compare(t.clusters[j]) < 0 })
}

// pathSlug compresses a hierarchy path into a device-name prefix, e.g.
// "RG01|CT02|LS01|ST01|CL03" → "RG01.CT02.LS01.ST01.CL03".
func pathSlug(p hierarchy.Path) string {
	segs := p.Segments()
	out := ""
	for i, s := range segs {
		if i > 0 {
			out += "."
		}
		out += s
	}
	return out
}
