package topology

import (
	"math/rand"
	"testing"
	"testing/quick"

	"skynet/internal/hierarchy"
)

func small(t *testing.T) *Topology {
	t.Helper()
	topo, err := Generate(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestGenerateSmall(t *testing.T) {
	topo := small(t)
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := SmallConfig()
	// 1 region × 2 cities: per city 2 DCBR + 1 ISP; per logic site 2 BSR
	// (+1 RR in first LS); per site 2 CSR; per cluster 2 ISR + 4 ToR.
	cities := cfg.Regions * cfg.CitiesPerRegion
	ls := cities * cfg.LogicSitesPerCity
	sites := ls * cfg.SitesPerLogicSite
	clusters := sites * cfg.ClustersPerSite
	want := cities*(cfg.DCBRsPerCity+1) + ls*cfg.BSRsPerLogicSite + cities /*RRs*/ +
		sites*cfg.CSRsPerSite + clusters*(2+cfg.ToRsPerCluster)
	if topo.NumDevices() != want {
		t.Errorf("NumDevices = %d, want %d", topo.NumDevices(), want)
	}
	if len(topo.Clusters()) != clusters {
		t.Errorf("Clusters = %d, want %d", len(topo.Clusters()), clusters)
	}
	if topo.NumLinks() == 0 {
		t.Fatal("no links")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(SmallConfig())
	b := MustGenerate(SmallConfig())
	if a.NumDevices() != b.NumDevices() || a.NumLinks() != b.NumLinks() {
		t.Fatal("same seed produced different sizes")
	}
	for i := range a.Devices {
		if a.Devices[i] != b.Devices[i] {
			t.Fatalf("device %d differs", i)
		}
	}
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			t.Fatalf("link %d differs", i)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	bad := SmallConfig()
	bad.Regions = 0
	if _, err := Generate(bad); err == nil {
		t.Error("Regions=0: want error")
	}
	bad = SmallConfig()
	bad.ImportantCustomerRatio = 1.5
	if _, err := Generate(bad); err == nil {
		t.Error("ratio>1: want error")
	}
}

func TestLookups(t *testing.T) {
	topo := small(t)
	d := topo.Device(0)
	if got, ok := topo.DeviceByPath(d.Path); !ok || got.ID != d.ID {
		t.Error("DeviceByPath failed")
	}
	if got, ok := topo.DeviceByName(d.Name); !ok || got.ID != d.ID {
		t.Error("DeviceByName failed")
	}
	if _, ok := topo.DeviceByPath(hierarchy.MustNew("nope")); ok {
		t.Error("unknown path resolved")
	}
	if _, ok := topo.DeviceByName("nope"); ok {
		t.Error("unknown name resolved")
	}
}

func TestConnectivity(t *testing.T) {
	topo := small(t)
	// BFS from device 0 must reach every device: the generated network is
	// a single connected component.
	visited := make([]bool, topo.NumDevices())
	queue := []DeviceID{0}
	visited[0] = true
	count := 1
	for len(queue) > 0 {
		d := queue[0]
		queue = queue[1:]
		for _, n := range topo.Neighbors(d) {
			if !visited[n] {
				visited[n] = true
				count++
				queue = append(queue, n)
			}
		}
	}
	if count != topo.NumDevices() {
		t.Errorf("connected component has %d of %d devices", count, topo.NumDevices())
	}
}

func TestGroups(t *testing.T) {
	topo := small(t)
	cfg := SmallConfig()
	found := 0
	for i := range topo.Devices {
		d := &topo.Devices[i]
		members := topo.Group(d.Group)
		if len(members) == 0 {
			t.Fatalf("device %s has empty group %q", d.Name, d.Group)
		}
		if d.Role == RoleCSR && len(members) != cfg.CSRsPerSite {
			t.Errorf("CSR group size = %d, want %d", len(members), cfg.CSRsPerSite)
		}
		if d.Role == RoleToR {
			found++
			if len(members) != cfg.ToRsPerCluster {
				t.Errorf("ToR group size = %d, want %d", len(members), cfg.ToRsPerCluster)
			}
		}
	}
	if found == 0 {
		t.Error("no ToR devices found")
	}
}

func TestAttachLevels(t *testing.T) {
	topo := small(t)
	for i := range topo.Devices {
		d := &topo.Devices[i]
		if d.Attach.Level() != d.Role.AttachLevel() {
			t.Errorf("device %s (%v) attached at %v, want %v",
				d.Name, d.Role, d.Attach.Level(), d.Role.AttachLevel())
		}
		if !d.Attach.Contains(d.Path) {
			t.Errorf("device %s path not under attach", d.Name)
		}
	}
}

func TestInternetEntries(t *testing.T) {
	topo := small(t)
	cfg := SmallConfig()
	entries := 0
	for i := range topo.Links {
		if topo.Links[i].InternetEntry {
			entries++
		}
	}
	want := cfg.Regions * cfg.CitiesPerRegion * cfg.InternetEntriesPerCity
	if entries != want {
		t.Errorf("internet entries = %d, want %d", entries, want)
	}
}

func TestAdjacent(t *testing.T) {
	topo := small(t)
	l := topo.Link(0)
	a, b := topo.Device(l.A), topo.Device(l.B)
	if !topo.Adjacent(a.Path, b.Path) || !topo.Adjacent(b.Path, a.Path) {
		t.Error("linked devices not adjacent")
	}
	if topo.Adjacent(a.Path, a.Path) {
		t.Error("device adjacent to itself")
	}
	if topo.Adjacent(a.Path, hierarchy.MustNew("nope")) {
		t.Error("unknown path adjacent")
	}
}

func TestLinkOther(t *testing.T) {
	topo := small(t)
	l := topo.Link(0)
	if got, ok := l.Other(l.A); !ok || got != l.B {
		t.Error("Other(A) != B")
	}
	if got, ok := l.Other(l.B); !ok || got != l.A {
		t.Error("Other(B) != A")
	}
	if _, ok := l.Other(DeviceID(999999)); ok {
		t.Error("Other of non-endpoint resolved")
	}
}

func TestCircuitSets(t *testing.T) {
	topo := small(t)
	for i := range topo.Links {
		l := &topo.Links[i]
		cs := topo.CircuitSet(l.CircuitSet)
		if cs == nil {
			t.Fatalf("link %d has no circuit set", i)
		}
		if cs.Circuits != l.Circuits {
			t.Errorf("circuit count mismatch on %s", cs.Name)
		}
		if len(cs.Customers) == 0 {
			t.Errorf("circuit set %s has no customers", cs.Name)
		}
	}
	if topo.CircuitSet("nope") != nil {
		t.Error("unknown circuit set resolved")
	}
}

func TestUnderQueries(t *testing.T) {
	topo := small(t)
	cl := topo.Clusters()[0]
	devs := topo.DevicesUnder(cl)
	if len(devs) != 2+SmallConfig().ToRsPerCluster {
		t.Errorf("devices under cluster = %d", len(devs))
	}
	for _, id := range devs {
		if !cl.Contains(topo.Device(id).Path) {
			t.Errorf("device %v not under %v", topo.Device(id).Path, cl)
		}
	}
	links := topo.LinksUnder(cl)
	if len(links) == 0 {
		t.Error("no links under cluster")
	}
	sets := topo.CircuitSetsUnder(cl)
	if len(sets) != len(links) {
		t.Errorf("circuit sets under = %d, links under = %d", len(sets), len(links))
	}
	if n := topo.DevicesUnder(hierarchy.Root()); len(n) != topo.NumDevices() {
		t.Errorf("DevicesUnder(root) = %d", len(n))
	}
}

func TestComponentsSplitsIsolated(t *testing.T) {
	topo := small(t)
	// Take two ToRs in one cluster (connected via their shared ISR only if
	// the ISR is in the set — they are NOT directly linked) and one ToR in
	// a cluster of a different city: expect the far ToR isolated.
	cl0 := topo.Clusters()[0]
	var tor0, isr0 hierarchy.Path
	for _, id := range topo.DevicesUnder(cl0) {
		d := topo.Device(id)
		if d.Role == RoleToR && tor0.IsRoot() {
			tor0 = d.Path
		}
		if d.Role == RoleISR && isr0.IsRoot() {
			isr0 = d.Path
		}
	}
	clFar := topo.Clusters()[len(topo.Clusters())-1]
	var torFar hierarchy.Path
	for _, id := range topo.DevicesUnder(clFar) {
		if d := topo.Device(id); d.Role == RoleToR {
			torFar = d.Path
			break
		}
	}
	comps := topo.Components([]hierarchy.Path{tor0, isr0, torFar})
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2: %v", len(comps), comps)
	}
	sizes := map[int]int{}
	for _, c := range comps {
		sizes[len(c)]++
	}
	if sizes[2] != 1 || sizes[1] != 1 {
		t.Errorf("component sizes wrong: %v", comps)
	}
}

func TestComponentsNonDeviceSingleton(t *testing.T) {
	topo := small(t)
	sitePath := topo.Clusters()[0].Parent()
	comps := topo.Components([]hierarchy.Path{sitePath})
	if len(comps) != 1 || len(comps[0]) != 1 || comps[0][0] != sitePath {
		t.Errorf("non-device path should be a singleton component: %v", comps)
	}
}

func TestComponentsDedup(t *testing.T) {
	topo := small(t)
	p := topo.Device(0).Path
	comps := topo.Components([]hierarchy.Path{p, p, p})
	if len(comps) != 1 || len(comps[0]) != 1 {
		t.Errorf("duplicates should collapse: %v", comps)
	}
}

func TestPropertyComponentsPartition(t *testing.T) {
	topo := MustGenerate(SmallConfig())
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		paths := make([]hierarchy.Path, n)
		uniq := make(map[hierarchy.Path]bool)
		for i := range paths {
			paths[i] = topo.Device(DeviceID(r.Intn(topo.NumDevices()))).Path
			uniq[paths[i]] = true
		}
		comps := topo.Components(paths)
		total := 0
		seen := make(map[hierarchy.Path]bool)
		for _, c := range comps {
			total += len(c)
			for _, p := range c {
				if seen[p] {
					return false // appears in two components
				}
				seen[p] = true
				if !uniq[p] {
					return false // invented a member
				}
			}
		}
		return total == len(uniq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyAdjacentDevicesSameComponent(t *testing.T) {
	topo := MustGenerate(SmallConfig())
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := topo.Link(LinkID(r.Intn(topo.NumLinks())))
		a, b := topo.Device(l.A).Path, topo.Device(l.B).Path
		comps := topo.Components([]hierarchy.Path{a, b})
		return len(comps) == 1 && len(comps[0]) == 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRoleStrings(t *testing.T) {
	for r := RoleToR; r < numRoles; r++ {
		if r.String() == "" {
			t.Errorf("role %d has empty name", r)
		}
		if !r.AttachLevel().Valid() {
			t.Errorf("role %v has invalid attach level", r)
		}
	}
	if Role(99).String() != "role(99)" {
		t.Error("out of range role name")
	}
}

func TestCustomers(t *testing.T) {
	topo := small(t)
	importantCount := 0
	for i := range topo.Customers {
		c := topo.Customer(CustomerID(i))
		if c.Importance < 1 {
			t.Errorf("customer %d importance %v < 1", i, c.Importance)
		}
		if c.Important {
			importantCount++
			if c.Importance <= 1 {
				t.Errorf("important customer %d has importance %v", i, c.Importance)
			}
		}
	}
	if importantCount == 0 {
		t.Error("no important customers generated")
	}
}

func TestProductionScale(t *testing.T) {
	if testing.Short() {
		t.Skip("production-scale generation skipped in -short mode")
	}
	topo := MustGenerate(ProductionConfig())
	// The paper's network is O(10^5) devices; the bench substrate is one
	// order down but must stay in O(10^4).
	if topo.NumDevices() < 10000 || topo.NumDevices() > 50000 {
		t.Errorf("production topology = %d devices, want O(10^4)", topo.NumDevices())
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	// Connectivity at scale: BFS reaches everything.
	visited := make([]bool, topo.NumDevices())
	queue := []DeviceID{0}
	visited[0] = true
	count := 1
	for len(queue) > 0 {
		d := queue[0]
		queue = queue[1:]
		for _, n := range topo.Neighbors(d) {
			if !visited[n] {
				visited[n] = true
				count++
				queue = append(queue, n)
			}
		}
	}
	if count != topo.NumDevices() {
		t.Errorf("connected %d of %d devices", count, topo.NumDevices())
	}
}
