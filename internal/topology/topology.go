// Package topology models the network substrate SkyNet operates on: a
// hierarchical global cloud network (Figure 5b) of regions, cities, logic
// sites, sites, and clusters, populated with devices of different roles
// attached at different hierarchy levels, links grouped into redundant
// circuit sets, and customers whose traffic rides those circuit sets.
//
// The paper runs on Alibaba Cloud's production network (O(10^5) devices).
// This package is the faithful synthetic substitute: SkyNet's algorithms
// only consume the hierarchy, device adjacency, circuit-set membership,
// and customer weights — all of which the generator reproduces at
// configurable scale.
package topology

import (
	"fmt"
	"sort"
	"sync"

	"skynet/internal/hierarchy"
)

// Role describes a device's function, which determines the hierarchy level
// it attaches to ("Each device is assigned a level in this hierarchy",
// §4.1). Role names follow the visualization in Figure 11.
type Role int

// Device roles, from the network edge inward.
const (
	RoleToR       Role = iota // top-of-rack switch, attached at cluster level
	RoleISR                   // intra-site router, attached at cluster level
	RoleCSR                   // cluster/site router, attached at site level
	RoleBSR                   // border site router, attached at logic-site level
	RoleDCBR                  // data-center border router, attached at city level
	RoleReflector             // route reflector, attached at logic-site level
	RoleISP                   // internet-entry peer, attached at city level

	numRoles
)

var roleNames = [...]string{
	RoleToR:       "ToR",
	RoleISR:       "ISR",
	RoleCSR:       "CSR",
	RoleBSR:       "BSR",
	RoleDCBR:      "DCBR",
	RoleReflector: "RR",
	RoleISP:       "ISP",
}

// String returns the conventional role abbreviation.
func (r Role) String() string {
	if r < 0 || int(r) >= len(roleNames) {
		return fmt.Sprintf("role(%d)", int(r))
	}
	return roleNames[r]
}

// AttachLevel returns the hierarchy level a role's devices attach to.
func (r Role) AttachLevel() hierarchy.Level {
	switch r {
	case RoleToR, RoleISR:
		return hierarchy.LevelCluster
	case RoleCSR:
		return hierarchy.LevelSite
	case RoleBSR, RoleReflector:
		return hierarchy.LevelLogicSite
	case RoleDCBR, RoleISP:
		return hierarchy.LevelCity
	default:
		return hierarchy.LevelCluster
	}
}

// DeviceID indexes a device within a Topology. IDs are dense, starting at 0.
type DeviceID int32

// LinkID indexes a link within a Topology. IDs are dense, starting at 0.
type LinkID int32

// CustomerID indexes a customer within a Topology.
type CustomerID int32

// Device is one network element.
type Device struct {
	ID   DeviceID
	Name string
	Role Role
	// Attach is the hierarchy node the device belongs to (its level).
	Attach hierarchy.Path
	// Path is Attach extended with the device name: the location alerts
	// from this device are attributed to.
	Path hierarchy.Path
	// Group names the redundancy group of devices sharing the same role
	// at the same attachment node; the SOP engine's "other devices within
	// this group" checks use it (§7.2).
	Group string
}

// Link is a logical adjacency between two devices. Physically it consists
// of Circuits parallel circuits; the whole bundle is one circuit set for
// the evaluator's redundancy accounting (§4.3: "all links connecting
// network devices consist of multiple circuits, each is called a circuit
// set").
type Link struct {
	ID         LinkID
	A, B       DeviceID
	CircuitSet string
	Circuits   int
	// CapacityGbps is the total bundle capacity.
	CapacityGbps float64
	// InternetEntry marks links carrying traffic in and out of a data
	// center (the cable bundles of §2.2's severe-failure war story).
	InternetEntry bool
}

// Other returns the far endpoint of the link relative to d, and whether d
// is an endpoint at all.
func (l *Link) Other(d DeviceID) (DeviceID, bool) {
	switch d {
	case l.A:
		return l.B, true
	case l.B:
		return l.A, true
	default:
		return 0, false
	}
}

// CircuitSet groups the circuits of one link bundle together with the
// customers whose SLA traffic rides it.
type CircuitSet struct {
	Name      string
	Link      LinkID
	Circuits  int
	Customers []CustomerID
}

// Customer is a cloud tenant with an importance factor (g_i in Table 3).
type Customer struct {
	ID   CustomerID
	Name string
	// Importance is the factor g_i: how heavily this customer weighs in
	// the evaluator's impact factor. Important customers have values > 1.
	Importance float64
	// Important mirrors the paper's "important customers" (U_k counts
	// them); true when Importance crosses the importance threshold.
	Important bool
}

// Topology is an immutable network instance. Build one with Generate; all
// accessors are safe for concurrent readers.
type Topology struct {
	Devices   []Device
	Links     []Link
	Sets      map[string]*CircuitSet
	Customers []Customer

	byPath   map[hierarchy.Path]DeviceID
	byName   map[string]DeviceID
	adj      [][]DeviceID
	devLinks [][]LinkID
	groups   map[string][]DeviceID
	clusters []hierarchy.Path

	// csUnder memoizes CircuitSetsUnder per scope path. The topology is
	// immutable after construction, so entries never invalidate; the
	// evaluator calls this once per scored incident, and a full
	// Sets-scan-plus-sort per call dominated scoring on wide scopes.
	csUnderMu sync.RWMutex
	csUnder   map[hierarchy.Path][]string
}

// NumDevices returns the device count.
func (t *Topology) NumDevices() int { return len(t.Devices) }

// NumLinks returns the link count.
func (t *Topology) NumLinks() int { return len(t.Links) }

// Device returns the device with the given ID.
func (t *Topology) Device(id DeviceID) *Device { return &t.Devices[id] }

// Link returns the link with the given ID.
func (t *Topology) Link(id LinkID) *Link { return &t.Links[id] }

// DeviceByPath resolves a device location path to the device.
func (t *Topology) DeviceByPath(p hierarchy.Path) (*Device, bool) {
	id, ok := t.byPath[p]
	if !ok {
		return nil, false
	}
	return &t.Devices[id], true
}

// DeviceByName resolves a globally unique device name.
func (t *Topology) DeviceByName(name string) (*Device, bool) {
	id, ok := t.byName[name]
	if !ok {
		return nil, false
	}
	return &t.Devices[id], true
}

// Neighbors returns the adjacent device IDs of d. The returned slice is
// shared; callers must not modify it.
func (t *Topology) Neighbors(d DeviceID) []DeviceID { return t.adj[d] }

// LinksOf returns the link IDs incident to d. The returned slice is
// shared; callers must not modify it.
func (t *Topology) LinksOf(d DeviceID) []LinkID { return t.devLinks[d] }

// Group returns the members of a device redundancy group, or nil.
func (t *Topology) Group(name string) []DeviceID { return t.groups[name] }

// Clusters returns the paths of all cluster nodes, sorted. The returned
// slice is shared; callers must not modify it.
func (t *Topology) Clusters() []hierarchy.Path { return t.clusters }

// Customer returns the customer with the given ID.
func (t *Topology) Customer(id CustomerID) *Customer { return &t.Customers[id] }

// CircuitSet returns the named circuit set, or nil.
func (t *Topology) CircuitSet(name string) *CircuitSet { return t.Sets[name] }

// CircuitSetsUnder returns the names of circuit sets with at least one
// endpoint device located under the given hierarchy path, sorted. The
// returned slice is shared and memoized; callers must not modify it.
func (t *Topology) CircuitSetsUnder(p hierarchy.Path) []string {
	t.csUnderMu.RLock()
	out, ok := t.csUnder[p]
	t.csUnderMu.RUnlock()
	if ok {
		return out
	}
	for name, cs := range t.Sets {
		l := &t.Links[cs.Link]
		if p.Contains(t.Devices[l.A].Path) || p.Contains(t.Devices[l.B].Path) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	t.csUnderMu.Lock()
	if t.csUnder == nil {
		t.csUnder = make(map[hierarchy.Path][]string)
	}
	t.csUnder[p] = out
	t.csUnderMu.Unlock()
	return out
}

// DevicesUnder returns the IDs of devices located under the given path,
// in ID order.
func (t *Topology) DevicesUnder(p hierarchy.Path) []DeviceID {
	var out []DeviceID
	for i := range t.Devices {
		if p.Contains(t.Devices[i].Path) {
			out = append(out, t.Devices[i].ID)
		}
	}
	return out
}

// LinksUnder returns the IDs of links with at least one endpoint under the
// given path, in ID order.
func (t *Topology) LinksUnder(p hierarchy.Path) []LinkID {
	var out []LinkID
	for i := range t.Links {
		l := &t.Links[i]
		if p.Contains(t.Devices[l.A].Path) || p.Contains(t.Devices[l.B].Path) {
			out = append(out, l.ID)
		}
	}
	return out
}

// Adjacent reports whether two device locations are topologically adjacent
// (directly linked). Unknown paths are never adjacent.
func (t *Topology) Adjacent(a, b hierarchy.Path) bool {
	da, ok := t.byPath[a]
	if !ok {
		return false
	}
	db, ok := t.byPath[b]
	if !ok {
		return false
	}
	for _, n := range t.adj[da] {
		if n == db {
			return true
		}
	}
	return false
}

// Components partitions a set of device location paths into connected
// components under the topology's adjacency relation. Paths that do not
// resolve to devices each form their own singleton component. Components
// and their members are returned in deterministic order.
//
// This is the "area connected to the root node of the incident tree"
// notion of §4.2: alerts from device n, isolated from the other alerting
// nodes, belong to a different component and hence a different incident.
func (t *Topology) Components(paths []hierarchy.Path) [][]hierarchy.Path {
	idx := make(map[DeviceID]int, len(paths))
	order := make([]hierarchy.Path, 0, len(paths))
	var nonDevices []hierarchy.Path
	ids := make([]DeviceID, 0, len(paths))
	seen := make(map[hierarchy.Path]bool, len(paths))
	for _, p := range paths {
		if seen[p] {
			continue
		}
		seen[p] = true
		order = append(order, p)
		if id, ok := t.byPath[p]; ok {
			idx[id] = len(ids)
			ids = append(ids, id)
		} else {
			nonDevices = append(nonDevices, p)
		}
	}
	// Union-find over the present devices.
	parent := make([]int, len(ids))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for i, id := range ids {
		for _, n := range t.adj[id] {
			if j, ok := idx[n]; ok {
				union(i, j)
			}
		}
	}
	compOf := make(map[int][]hierarchy.Path)
	var roots []int
	for i, id := range ids {
		r := find(i)
		if _, ok := compOf[r]; !ok {
			roots = append(roots, r)
		}
		compOf[r] = append(compOf[r], t.Devices[id].Path)
	}
	out := make([][]hierarchy.Path, 0, len(roots)+len(nonDevices))
	for _, r := range roots {
		members := compOf[r]
		sort.Slice(members, func(i, j int) bool { return members[i].Compare(members[j]) < 0 })
		out = append(out, members)
	}
	for _, p := range nonDevices {
		out = append(out, []hierarchy.Path{p})
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0].Compare(out[j][0]) < 0 })
	return out
}

// Validate checks the structural invariants of the topology. Generate
// always produces a valid topology; Validate exists for tests and for
// externally loaded instances.
func (t *Topology) Validate() error {
	for i := range t.Devices {
		d := &t.Devices[i]
		if d.ID != DeviceID(i) {
			return fmt.Errorf("topology: device %d has ID %d", i, d.ID)
		}
		if d.Name == "" {
			return fmt.Errorf("topology: device %d has empty name", i)
		}
		if !d.Attach.Contains(d.Path) || d.Path.Depth() != d.Attach.Depth()+1 {
			return fmt.Errorf("topology: device %s path %q not directly under attach %q", d.Name, d.Path, d.Attach)
		}
		if got, ok := t.byPath[d.Path]; !ok || got != d.ID {
			return fmt.Errorf("topology: byPath missing device %s", d.Name)
		}
	}
	for i := range t.Links {
		l := &t.Links[i]
		if l.ID != LinkID(i) {
			return fmt.Errorf("topology: link %d has ID %d", i, l.ID)
		}
		if l.A == l.B {
			return fmt.Errorf("topology: link %d is a self-loop on %d", i, l.A)
		}
		if int(l.A) >= len(t.Devices) || int(l.B) >= len(t.Devices) || l.A < 0 || l.B < 0 {
			return fmt.Errorf("topology: link %d has out-of-range endpoint", i)
		}
		if l.Circuits <= 0 {
			return fmt.Errorf("topology: link %d has %d circuits", i, l.Circuits)
		}
		cs, ok := t.Sets[l.CircuitSet]
		if !ok {
			return fmt.Errorf("topology: link %d references unknown circuit set %q", i, l.CircuitSet)
		}
		if cs.Link != l.ID {
			return fmt.Errorf("topology: circuit set %q does not point back at link %d", l.CircuitSet, i)
		}
	}
	for name, cs := range t.Sets {
		if cs.Name != name {
			return fmt.Errorf("topology: circuit set map key %q != name %q", name, cs.Name)
		}
		for _, c := range cs.Customers {
			if int(c) >= len(t.Customers) || c < 0 {
				return fmt.Errorf("topology: circuit set %q references unknown customer %d", name, c)
			}
		}
	}
	return nil
}
