package topology

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"skynet/internal/hierarchy"
)

// JSON serialization of topologies, so deployments can feed SkyNet their
// real network instead of a generated one: skynetd loads the file, and
// connectivity scoping, SOP groups, and evaluator customer data all work
// against the operator's inventory.

// fileFormat is the on-disk shape. It mirrors the public structs but keys
// devices by name (stable across exports) rather than dense IDs.
type fileFormat struct {
	Version   int            `json:"version"`
	Devices   []fileDevice   `json:"devices"`
	Links     []fileLink     `json:"links"`
	Customers []fileCustomer `json:"customers"`
}

type fileDevice struct {
	Name   string         `json:"name"`
	Role   string         `json:"role"`
	Attach hierarchy.Path `json:"attach"`
	Group  string         `json:"group,omitempty"`
}

type fileLink struct {
	A             string   `json:"a"`
	B             string   `json:"b"`
	CircuitSet    string   `json:"circuitset"`
	Circuits      int      `json:"circuits"`
	CapacityGbps  float64  `json:"capacity_gbps"`
	InternetEntry bool     `json:"internet_entry,omitempty"`
	Customers     []string `json:"customers,omitempty"`
}

type fileCustomer struct {
	Name       string  `json:"name"`
	Importance float64 `json:"importance"`
	Important  bool    `json:"important,omitempty"`
}

const fileVersion = 1

// WriteJSON serializes the topology.
func (t *Topology) WriteJSON(w io.Writer) error {
	f := fileFormat{Version: fileVersion}
	for i := range t.Devices {
		d := &t.Devices[i]
		f.Devices = append(f.Devices, fileDevice{
			Name: d.Name, Role: d.Role.String(), Attach: d.Attach, Group: d.Group,
		})
	}
	for i := range t.Links {
		l := &t.Links[i]
		fl := fileLink{
			A: t.Devices[l.A].Name, B: t.Devices[l.B].Name,
			CircuitSet: l.CircuitSet, Circuits: l.Circuits,
			CapacityGbps: l.CapacityGbps, InternetEntry: l.InternetEntry,
		}
		if cs := t.Sets[l.CircuitSet]; cs != nil {
			for _, c := range cs.Customers {
				fl.Customers = append(fl.Customers, t.Customers[c].Name)
			}
		}
		f.Links = append(f.Links, fl)
	}
	for i := range t.Customers {
		c := &t.Customers[i]
		f.Customers = append(f.Customers, fileCustomer{
			Name: c.Name, Importance: c.Importance, Important: c.Important,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(f); err != nil {
		return fmt.Errorf("topology: encode: %w", err)
	}
	return nil
}

// ReadJSON loads a topology written by WriteJSON (or hand-authored in the
// same format) and rebuilds all derived indexes. The result is validated.
func ReadJSON(r io.Reader) (*Topology, error) {
	var f fileFormat
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("topology: decode: %w", err)
	}
	if f.Version != fileVersion {
		return nil, fmt.Errorf("topology: unsupported file version %d (want %d)", f.Version, fileVersion)
	}
	t := &Topology{
		Sets:   make(map[string]*CircuitSet),
		byPath: make(map[hierarchy.Path]DeviceID),
		byName: make(map[string]DeviceID),
		groups: make(map[string][]DeviceID),
	}
	custByName := map[string]CustomerID{}
	for i, fc := range f.Customers {
		if fc.Name == "" {
			return nil, fmt.Errorf("topology: customer %d has empty name", i)
		}
		if _, dup := custByName[fc.Name]; dup {
			return nil, fmt.Errorf("topology: duplicate customer %q", fc.Name)
		}
		id := CustomerID(len(t.Customers))
		custByName[fc.Name] = id
		t.Customers = append(t.Customers, Customer{
			ID: id, Name: fc.Name, Importance: fc.Importance, Important: fc.Important,
		})
	}
	roleByName := map[string]Role{}
	for r := RoleToR; r < numRoles; r++ {
		roleByName[r.String()] = r
	}
	for i, fd := range f.Devices {
		if fd.Name == "" {
			return nil, fmt.Errorf("topology: device %d has empty name", i)
		}
		if _, dup := t.byName[fd.Name]; dup {
			return nil, fmt.Errorf("topology: duplicate device %q", fd.Name)
		}
		role, ok := roleByName[fd.Role]
		if !ok {
			return nil, fmt.Errorf("topology: device %q has unknown role %q", fd.Name, fd.Role)
		}
		path, err := fd.Attach.Child(fd.Name)
		if err != nil {
			return nil, fmt.Errorf("topology: device %q: %w", fd.Name, err)
		}
		group := fd.Group
		if group == "" {
			group = fmt.Sprintf("%s/%s", fd.Attach, role)
		}
		id := DeviceID(len(t.Devices))
		t.Devices = append(t.Devices, Device{
			ID: id, Name: fd.Name, Role: role, Attach: fd.Attach, Path: path, Group: group,
		})
		t.byName[fd.Name] = id
		t.byPath[path] = id
		t.groups[group] = append(t.groups[group], id)
	}
	for i, fl := range f.Links {
		a, ok := t.byName[fl.A]
		if !ok {
			return nil, fmt.Errorf("topology: link %d references unknown device %q", i, fl.A)
		}
		b, ok := t.byName[fl.B]
		if !ok {
			return nil, fmt.Errorf("topology: link %d references unknown device %q", i, fl.B)
		}
		if fl.CircuitSet == "" {
			return nil, fmt.Errorf("topology: link %d has empty circuit set", i)
		}
		if _, dup := t.Sets[fl.CircuitSet]; dup {
			return nil, fmt.Errorf("topology: duplicate circuit set %q", fl.CircuitSet)
		}
		id := LinkID(len(t.Links))
		t.Links = append(t.Links, Link{
			ID: id, A: a, B: b, CircuitSet: fl.CircuitSet,
			Circuits: fl.Circuits, CapacityGbps: fl.CapacityGbps,
			InternetEntry: fl.InternetEntry,
		})
		cs := &CircuitSet{Name: fl.CircuitSet, Link: id, Circuits: fl.Circuits}
		for _, name := range fl.Customers {
			cid, ok := custByName[name]
			if !ok {
				return nil, fmt.Errorf("topology: link %d references unknown customer %q", i, name)
			}
			cs.Customers = append(cs.Customers, cid)
		}
		sort.Slice(cs.Customers, func(x, y int) bool { return cs.Customers[x] < cs.Customers[y] })
		t.Sets[fl.CircuitSet] = cs
	}
	// Derived indexes.
	t.adj = make([][]DeviceID, len(t.Devices))
	t.devLinks = make([][]LinkID, len(t.Devices))
	for i := range t.Links {
		l := &t.Links[i]
		t.adj[l.A] = append(t.adj[l.A], l.B)
		t.adj[l.B] = append(t.adj[l.B], l.A)
		t.devLinks[l.A] = append(t.devLinks[l.A], l.ID)
		t.devLinks[l.B] = append(t.devLinks[l.B], l.ID)
	}
	seen := map[hierarchy.Path]bool{}
	for i := range t.Devices {
		cl := t.Devices[i].Attach
		if cl.Level() == hierarchy.LevelCluster && !seen[cl] {
			seen[cl] = true
			t.clusters = append(t.clusters, cl)
		}
	}
	sort.Slice(t.clusters, func(i, j int) bool { return t.clusters[i].Compare(t.clusters[j]) < 0 })
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// SaveFile writes the topology to a JSON file.
func (t *Topology) SaveFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("topology: create %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return t.WriteJSON(f)
}

// LoadFile reads a topology from a JSON file.
func LoadFile(path string) (*Topology, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("topology: open %s: %w", path, err)
	}
	defer f.Close()
	return ReadJSON(f)
}
