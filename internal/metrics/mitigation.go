package metrics

import (
	"math"
	"sort"
	"time"
)

// The operator model behind the Fig. 10c mitigation-time comparison.
//
// The paper attributes SkyNet's >80 % mitigation-time reduction to one
// mechanism: before SkyNet, on-call operators sifted a raw alert flood to
// assemble a mental incident (slow, error-prone, sometimes mitigating the
// wrong thing first); after SkyNet, they read ~10 incident digests with
// scope, classes, and a zoomed location. This model prices those two
// workflows. Absolute seconds are a calibration, not a claim — the shape
// (who wins, roughly how much, and that the worst case shrinks most) is
// what carries over.

// OperatorModel prices manual work.
type OperatorModel struct {
	// TriagePerAlert is the time to scan one raw alert during a flood.
	TriagePerAlert time.Duration
	// TriageCap bounds total sifting: beyond it the operator samples and
	// guesses — modeled as paying the cap plus a wrong-lead penalty.
	TriageCap time.Duration
	// WrongLeadPenalty is the cost of acting on a wrong hypothesis first
	// (the §2.2 story: isolating healthy devices, suspecting cables).
	WrongLeadPenalty time.Duration
	// DigestPerIncident is the time to read one SkyNet incident report.
	DigestPerIncident time.Duration
	// LocalizeManual is diagnosis time when the location must be found by
	// hand (device-by-device inspection).
	LocalizeManual time.Duration
	// LocalizeZoomed is diagnosis time when zoom-in pinned the location.
	LocalizeZoomed time.Duration
	// Repair is the physical/config mitigation itself, common to both.
	Repair time.Duration
}

// DefaultOperatorModel is calibrated so a severe failure lands near the
// paper's reported magnitudes (median 736 s → 147 s).
func DefaultOperatorModel() OperatorModel {
	return OperatorModel{
		TriagePerAlert:    120 * time.Millisecond,
		TriageCap:         8 * time.Minute,
		WrongLeadPenalty:  15 * time.Minute,
		DigestPerIncident: 20 * time.Second,
		LocalizeManual:    6 * time.Minute,
		LocalizeZoomed:    45 * time.Second,
		Repair:            90 * time.Second,
	}
}

// ManualMitigation prices the pre-SkyNet workflow for a failure that
// produced rawAlerts raw alerts.
func (m OperatorModel) ManualMitigation(rawAlerts int) time.Duration {
	triage := time.Duration(rawAlerts) * m.TriagePerAlert
	wrongLead := time.Duration(0)
	if triage > m.TriageCap {
		// The flood exceeds human bandwidth: the operator samples and
		// follows wrong leads before converging — the §2.2 incident
		// burned several: devices were isolated to no effect, then cables
		// suspected, before congestion was identified. The expected
		// number of wrong leads grows with the flood's excess over human
		// bandwidth, saturating at three.
		excess := float64(triage-m.TriageCap) / float64(m.TriageCap)
		expectedLeads := 3 * (1 - math.Exp(-excess/1.5))
		wrongLead = time.Duration(expectedLeads * float64(m.WrongLeadPenalty))
		triage = m.TriageCap
	}
	return triage + wrongLead + m.LocalizeManual + m.Repair
}

// SkyNetMitigation prices the post-SkyNet workflow: reading the severe-
// incident digests, then localizing (fast when zoom-in fired, manual
// otherwise). SOP-mitigated incidents cost only the automation delay.
func (m OperatorModel) SkyNetMitigation(severeIncidents int, zoomed, autoSOP bool) time.Duration {
	if autoSOP {
		// §5.1 case 1: "completed in approximately one minute without
		// manual intervention".
		return time.Minute
	}
	if severeIncidents < 1 {
		severeIncidents = 1
	}
	digest := time.Duration(severeIncidents) * m.DigestPerIncident
	localize := m.LocalizeManual
	if zoomed {
		localize = m.LocalizeZoomed
	}
	return digest + localize + m.Repair
}

// Summary reduces a set of durations to the Fig. 10c box-plot stats.
type Summary struct {
	Median time.Duration
	P90    time.Duration
	Max    time.Duration
}

// Summarize computes median/p90/max.
func Summarize(ds []time.Duration) Summary {
	if len(ds) == 0 {
		return Summary{}
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return Summary{
		Median: sorted[len(sorted)/2],
		P90:    sorted[(len(sorted)*9)/10],
		Max:    sorted[len(sorted)-1],
	}
}

// Reduction returns 1 - after/before, the headline "reduced by X %".
func Reduction(before, after time.Duration) float64 {
	if before <= 0 {
		return 0
	}
	return 1 - float64(after)/float64(before)
}
