// Package metrics scores SkyNet runs the way the paper's operators scored
// the production deployment: incidents are matched against injected-
// failure ground truth to count false positives and negatives (§6.1,
// §6.3), and an operator model converts alert/incident volumes into
// mitigation times (Fig. 10c).
package metrics

import (
	"time"

	"skynet/internal/incident"
	"skynet/internal/scenario"
)

// Outcome is the confusion summary of one run.
type Outcome struct {
	// TruePositives counts incidents attributable to an injected failure.
	TruePositives int
	// FalsePositives counts incidents with no matching injected failure.
	FalsePositives int
	// FalseNegatives counts injected failures with no matching incident.
	FalseNegatives int
	// Scenarios is the ground-truth count.
	Scenarios int
	// DetectionDelay records, per detected scenario index, how long after
	// the failure started its first matching incident appeared.
	DetectionDelay map[int]time.Duration
}

// FPRatio is FP / (FP + TP): the fraction of reported incidents that waste
// operator time (the y-axis of Figures 8a and 9).
func (o Outcome) FPRatio() float64 {
	total := o.FalsePositives + o.TruePositives
	if total == 0 {
		return 0
	}
	return float64(o.FalsePositives) / float64(total)
}

// FNRatio is FN / scenarios: the fraction of real failures missed.
func (o Outcome) FNRatio() float64 {
	if o.Scenarios == 0 {
		return 0
	}
	return float64(o.FalseNegatives) / float64(o.Scenarios)
}

// Evaluate matches incidents to scenarios. An incident is a true positive
// when any scenario matches its root and activity window; a scenario is
// detected when any incident matches it.
func Evaluate(incidents []*incident.Incident, scenarios []scenario.Scenario) Outcome {
	o := Outcome{Scenarios: len(scenarios), DetectionDelay: make(map[int]time.Duration)}
	detected := make([]bool, len(scenarios))
	for _, in := range incidents {
		end := in.UpdateTime
		if !in.End.IsZero() {
			end = in.End
		}
		matchedAny := false
		for i := range scenarios {
			if scenarios[i].Matches(in.Root, in.Start, end) {
				matchedAny = true
				if !detected[i] {
					detected[i] = true
					delay := in.Start.Sub(scenarios[i].Start)
					if delay < 0 {
						delay = 0
					}
					o.DetectionDelay[i] = delay
				}
			}
		}
		if matchedAny {
			o.TruePositives++
		} else {
			o.FalsePositives++
		}
	}
	for i := range detected {
		if !detected[i] {
			o.FalseNegatives++
		}
	}
	return o
}

// Merge combines outcomes from independent runs.
func Merge(outs ...Outcome) Outcome {
	var total Outcome
	total.DetectionDelay = make(map[int]time.Duration)
	base := 0
	for _, o := range outs {
		total.TruePositives += o.TruePositives
		total.FalsePositives += o.FalsePositives
		total.FalseNegatives += o.FalseNegatives
		for i, d := range o.DetectionDelay {
			total.DetectionDelay[base+i] = d
		}
		base += o.Scenarios
		total.Scenarios += o.Scenarios
	}
	return total
}
