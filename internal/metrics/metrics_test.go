package metrics

import (
	"testing"
	"time"

	"skynet/internal/alert"
	"skynet/internal/hierarchy"
	"skynet/internal/incident"
	"skynet/internal/netsim"
	"skynet/internal/scenario"
)

var epoch = time.Date(2024, 7, 2, 11, 0, 0, 0, time.UTC)

func mkScenario(truth hierarchy.Path, start time.Time) scenario.Scenario {
	return scenario.Scenario{
		Name:     "t-" + truth.Leaf(),
		Category: scenario.CatDeviceHardware,
		Faults:   []netsim.Fault{{Kind: netsim.FaultDeviceDown, Start: start}},
		Truth:    []hierarchy.Path{truth},
		Start:    start,
		End:      start.Add(10 * time.Minute),
	}
}

func mkIncident(id int, root hierarchy.Path, start time.Time) *incident.Incident {
	in := incident.New(id, root)
	in.Add(alert.Alert{
		Source: alert.SourcePing, Type: alert.TypePacketLoss, Class: alert.ClassFailure,
		Time: start, End: start, Location: root, Count: 1,
	})
	return in
}

func TestEvaluateAllDetected(t *testing.T) {
	dev := hierarchy.MustNew("R", "C", "L", "S", "K", "d1")
	scs := []scenario.Scenario{mkScenario(dev, epoch)}
	ins := []*incident.Incident{mkIncident(1, dev.Parent(), epoch.Add(time.Minute))}
	o := Evaluate(ins, scs)
	if o.TruePositives != 1 || o.FalsePositives != 0 || o.FalseNegatives != 0 {
		t.Errorf("outcome = %+v", o)
	}
	if o.FPRatio() != 0 || o.FNRatio() != 0 {
		t.Errorf("rates = %v %v", o.FPRatio(), o.FNRatio())
	}
	if d := o.DetectionDelay[0]; d != time.Minute {
		t.Errorf("delay = %v", d)
	}
}

func TestEvaluateFalsePositive(t *testing.T) {
	dev := hierarchy.MustNew("R", "C", "L", "S", "K", "d1")
	other := hierarchy.MustNew("R2", "C", "L", "S", "K", "d9")
	scs := []scenario.Scenario{mkScenario(dev, epoch)}
	ins := []*incident.Incident{
		mkIncident(1, dev, epoch.Add(time.Minute)),
		mkIncident(2, other, epoch.Add(time.Minute)), // unrelated
	}
	o := Evaluate(ins, scs)
	if o.FalsePositives != 1 || o.TruePositives != 1 {
		t.Errorf("outcome = %+v", o)
	}
	if o.FPRatio() != 0.5 {
		t.Errorf("FPRatio = %v", o.FPRatio())
	}
}

func TestEvaluateFalseNegative(t *testing.T) {
	dev := hierarchy.MustNew("R", "C", "L", "S", "K", "d1")
	scs := []scenario.Scenario{mkScenario(dev, epoch)}
	o := Evaluate(nil, scs)
	if o.FalseNegatives != 1 || o.FNRatio() != 1 {
		t.Errorf("outcome = %+v", o)
	}
}

func TestEvaluateTimeWindowMatters(t *testing.T) {
	dev := hierarchy.MustNew("R", "C", "L", "S", "K", "d1")
	scs := []scenario.Scenario{mkScenario(dev, epoch)}
	// Incident at the right place but hours later: a false positive AND a
	// false negative.
	ins := []*incident.Incident{mkIncident(1, dev, epoch.Add(3*time.Hour))}
	o := Evaluate(ins, scs)
	if o.FalsePositives != 1 || o.FalseNegatives != 1 {
		t.Errorf("outcome = %+v", o)
	}
}

func TestEvaluateDelayClampsToZero(t *testing.T) {
	dev := hierarchy.MustNew("R", "C", "L", "S", "K", "d1")
	scs := []scenario.Scenario{mkScenario(dev, epoch)}
	// Incident that technically starts just before the scenario clock
	// (alert delay skew): delay clamps to zero.
	ins := []*incident.Incident{mkIncident(1, dev, epoch.Add(-10*time.Second))}
	o := Evaluate(ins, scs)
	if o.DetectionDelay[0] != 0 {
		t.Errorf("delay = %v, want 0", o.DetectionDelay[0])
	}
}

func TestMerge(t *testing.T) {
	a := Outcome{TruePositives: 1, FalsePositives: 2, FalseNegatives: 0, Scenarios: 1,
		DetectionDelay: map[int]time.Duration{0: time.Second}}
	b := Outcome{TruePositives: 0, FalsePositives: 0, FalseNegatives: 1, Scenarios: 1,
		DetectionDelay: map[int]time.Duration{}}
	m := Merge(a, b)
	if m.TruePositives != 1 || m.FalsePositives != 2 || m.FalseNegatives != 1 || m.Scenarios != 2 {
		t.Errorf("merged = %+v", m)
	}
	if m.DetectionDelay[0] != time.Second {
		t.Error("delays not carried over")
	}
}

func TestEmptyRates(t *testing.T) {
	var o Outcome
	if o.FPRatio() != 0 || o.FNRatio() != 0 {
		t.Error("empty outcome rates should be 0")
	}
}

func TestManualMitigationGrowsWithFlood(t *testing.T) {
	m := DefaultOperatorModel()
	small := m.ManualMitigation(16) // the §2.4 anecdote: 16 alerts, quick diagnosis
	big := m.ManualMitigation(10000)
	if big <= small {
		t.Errorf("flood should cost more: %v vs %v", small, big)
	}
	// The small case is minutes, not hours.
	if small > 15*time.Minute {
		t.Errorf("16-alert diagnosis too slow: %v", small)
	}
	// The flood case includes a wrong-lead penalty beyond the cap.
	if big <= m.TriageCap+m.LocalizeManual+m.Repair {
		t.Error("flood cost should include a wrong-lead component")
	}
}

func TestSkyNetMitigationShapes(t *testing.T) {
	m := DefaultOperatorModel()
	auto := m.SkyNetMitigation(1, true, true)
	if auto != time.Minute {
		t.Errorf("auto-SOP = %v, want 1m", auto)
	}
	zoomed := m.SkyNetMitigation(2, true, false)
	unzoomed := m.SkyNetMitigation(2, false, false)
	if zoomed >= unzoomed {
		t.Error("zoom-in should reduce mitigation time")
	}
	if m.SkyNetMitigation(0, true, false) <= 0 {
		t.Error("zero incidents should still cost something")
	}
}

func TestPaperHeadlineReduction(t *testing.T) {
	// The >80 % claim, reproduced in shape: a severe failure with an
	// O(10^4) alert flood, mitigated manually vs through SkyNet digests
	// with zoom-in.
	m := DefaultOperatorModel()
	before := m.ManualMitigation(12000)
	after := m.SkyNetMitigation(3, true, false)
	if r := Reduction(before, after); r < 0.8 {
		t.Errorf("reduction = %.2f, want ≥ 0.80 (before=%v after=%v)", r, before, after)
	}
}

func TestSummarize(t *testing.T) {
	ds := []time.Duration{5 * time.Second, 1 * time.Second, 9 * time.Second, 3 * time.Second, 7 * time.Second}
	s := Summarize(ds)
	if s.Median != 5*time.Second {
		t.Errorf("median = %v", s.Median)
	}
	if s.Max != 9*time.Second {
		t.Errorf("max = %v", s.Max)
	}
	if s.P90 != 9*time.Second {
		t.Errorf("p90 = %v", s.P90)
	}
	if (Summary{}) != Summarize(nil) {
		t.Error("empty summarize should be zero")
	}
}

func TestReduction(t *testing.T) {
	if r := Reduction(100*time.Second, 20*time.Second); r != 0.8 {
		t.Errorf("reduction = %v", r)
	}
	if Reduction(0, time.Second) != 0 {
		t.Error("zero before should be 0")
	}
}
