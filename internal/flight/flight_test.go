package flight

import (
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"skynet/internal/span"
	"skynet/internal/telemetry"
)

// dumpRoot returns where this test should write flight dumps: the
// SKYNET_FLIGHT_DUMP_DIR directory when set (CI uploads it as an
// artifact), else a per-test temp dir.
func dumpRoot(t *testing.T) string {
	t.Helper()
	if dir := os.Getenv("SKYNET_FLIGHT_DUMP_DIR"); dir != "" {
		sub := filepath.Join(dir, strings.ReplaceAll(t.Name(), "/", "_"))
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		return sub
	}
	return t.TempDir()
}

func at(sec int) time.Time {
	return time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC).Add(time.Duration(sec) * time.Second)
}

// TestTickP99TriggerFiresAndRecovers induces one slow tick: the p99
// trigger must fire, write a dump with the span ring, metrics snapshot,
// and goroutine profile, flip health to degraded — and recover once the
// slow sample leaves the window.
func TestTickP99TriggerFiresAndRecovers(t *testing.T) {
	dir := dumpRoot(t)
	tracer := span.NewTracer(4)
	reg := telemetry.New()
	reg.Counter("skynet_test_sentinel", "Present in dump snapshots.").Inc()
	// Record one real trace so spans.json has content.
	act := tracer.StartTick(1, at(0))
	r := act.Begin(span.Root, "preprocess")
	act.End(r, 3)
	act.Finish()

	rec := New(Config{Dir: dir, SLOTickP99: 100 * time.Millisecond, Window: 4},
		Sources{Tracer: tracer, Metrics: reg, Incidents: func() any { return []string{"inc-1"} }})

	var events []Event
	rec.SetNotify(func(ev Event) { events = append(events, ev) })

	rec.Observe(at(0), 10*time.Millisecond)
	if h := rec.Health(); !h.OK {
		t.Fatalf("healthy tick reported degraded: %+v", h)
	}
	rec.Observe(at(10), 500*time.Millisecond) // the induced slow tick
	h := rec.Health()
	if h.OK {
		t.Fatal("slow tick did not flip health to degraded")
	}
	if len(h.Degraded) != 1 || h.Degraded[0] != TriggerTickP99 {
		t.Fatalf("degraded = %v, want [%s]", h.Degraded, TriggerTickP99)
	}
	if h.Dumps != 1 || h.LastDump == "" {
		t.Fatalf("dumps = %d lastDump = %q, want one dump", h.Dumps, h.LastDump)
	}
	for _, name := range []string{"trigger.json", "spans.json", "metrics.prom", "goroutines.txt", "heap.pprof", "incidents.json"} {
		fi, err := os.Stat(filepath.Join(h.LastDump, name))
		if err != nil {
			t.Errorf("dump missing %s: %v", name, err)
			continue
		}
		if fi.Size() == 0 {
			t.Errorf("dump %s is empty", name)
		}
	}
	data, err := os.ReadFile(filepath.Join(h.LastDump, "metrics.prom"))
	if err != nil || !strings.Contains(string(data), "skynet_test_sentinel") {
		t.Errorf("metrics.prom missing registry content: %v", err)
	}
	if len(events) != 1 || events[0].Trigger != TriggerTickP99 || events[0].DumpDir != h.LastDump {
		t.Fatalf("events = %+v, want one tick_p99 event carrying the dump dir", events)
	}

	// Window is 4: four more fast ticks evict the slow sample.
	for i := 0; i < 4; i++ {
		rec.Observe(at(20+10*i), 10*time.Millisecond)
	}
	if h := rec.Health(); !h.OK {
		t.Fatalf("health did not recover after slow sample left the window: %+v", h)
	}
	// Recovery emits no event and no second dump.
	if len(events) != 1 {
		t.Fatalf("recovery emitted events: %+v", events[1:])
	}
	if h := rec.Health(); h.Dumps != 1 {
		t.Fatalf("recovery wrote a dump: %d", h.Dumps)
	}
}

// TestEdgeTriggersFireOnDeltas drives the shed and journal counters: the
// triggers must fire on positive deltas only, once per rising edge.
func TestEdgeTriggersFireOnDeltas(t *testing.T) {
	var shed, evicted atomic.Int64
	shed.Store(5) // pre-existing sheds must not fire at construction
	rec := New(Config{Window: 8},
		Sources{Shed: shed.Load, JournalEvicted: evicted.Load})
	var events []Event
	rec.SetNotify(func(ev Event) { events = append(events, ev) })

	rec.Observe(at(0), time.Millisecond)
	if h := rec.Health(); !h.OK {
		t.Fatalf("baseline sheds fired a trigger: %+v", h)
	}
	shed.Add(3)
	evicted.Add(1)
	rec.Observe(at(10), time.Millisecond)
	h := rec.Health()
	if h.OK || len(h.Degraded) != 2 {
		t.Fatalf("want ingest_shed+journal_drop firing, got %+v", h.Degraded)
	}
	if len(events) != 2 {
		t.Fatalf("want 2 events, got %+v", events)
	}
	// No new deltas: both recover.
	rec.Observe(at(20), time.Millisecond)
	if h := rec.Health(); !h.OK {
		t.Fatalf("edge triggers stayed firing with no new deltas: %+v", h.Degraded)
	}
	// A second burst re-fires.
	shed.Add(1)
	rec.Observe(at(30), time.Millisecond)
	found := false
	for _, got := range rec.Health().Triggers {
		if got.Name == TriggerIngestShed {
			found = true
			if got.Fired != 2 {
				t.Fatalf("ingest_shed fired = %+v, want 2 edges", got)
			}
		}
	}
	if !found {
		t.Fatal("ingest_shed missing from health triggers")
	}
}

// TestQueueAndConservationTriggers covers the level triggers.
func TestQueueAndConservationTriggers(t *testing.T) {
	var depth, inflight atomic.Int64
	rec := New(Config{Window: 8, QueueFraction: 0.5},
		Sources{
			Queue:        func() (int, int) { return int(depth.Load()), 100 },
			ProvInFlight: inflight.Load,
		})
	depth.Store(49)
	rec.Observe(at(0), time.Millisecond)
	if !rec.Health().OK {
		t.Fatal("queue below high water fired")
	}
	depth.Store(50)
	inflight.Store(-1)
	rec.Observe(at(10), time.Millisecond)
	h := rec.Health()
	if len(h.Degraded) != 2 || h.Degraded[0] != TriggerQueueHigh || h.Degraded[1] != TriggerProvViolate {
		t.Fatalf("degraded = %v", h.Degraded)
	}
	depth.Store(0)
	inflight.Store(0)
	rec.Observe(at(20), time.Millisecond)
	if !rec.Health().OK {
		t.Fatal("level triggers did not recover")
	}
}

// TestDumpCooldownAndCap verifies rate limiting: within the cooldown only
// the first firing dumps, and MaxDumps bounds the lifetime total.
func TestDumpCooldownAndCap(t *testing.T) {
	dir := dumpRoot(t)
	var shed atomic.Int64
	rec := New(Config{Dir: dir, Window: 4, Cooldown: time.Minute, MaxDumps: 2},
		Sources{Shed: shed.Load})
	fire := func(sec int) {
		shed.Add(1)
		rec.Observe(at(sec), time.Millisecond)
		rec.Observe(at(sec+1), time.Millisecond) // recover so the next delta is a rising edge
	}
	fire(0)   // dump 1
	fire(10)  // within cooldown: no dump
	fire(70)  // dump 2
	fire(140) // capped
	h := rec.Health()
	if h.Dumps != 2 {
		t.Fatalf("dumps = %d, want 2 (cooldown + cap)", h.Dumps)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("dump dirs on disk = %d, want 2", len(entries))
	}
}

// TestTwoTriggersWithinCooldown pins the cooldown/cap interaction when
// two DIFFERENT triggers fire inside one cooldown window: the first
// firing carries the dump, the second is an event only (empty DumpDir,
// dump count unchanged), and once the cooldown elapses the suppressed
// trigger class dumps normally.
func TestTwoTriggersWithinCooldown(t *testing.T) {
	dir := dumpRoot(t)
	var shed, evicted atomic.Int64
	rec := New(Config{Dir: dir, Window: 4, Cooldown: time.Minute, MaxDumps: 4},
		Sources{Shed: shed.Load, JournalEvicted: evicted.Load})
	var events []Event
	rec.SetNotify(func(ev Event) { events = append(events, ev) })

	shed.Add(1)
	rec.Observe(at(0), time.Millisecond) // dump 1
	evicted.Add(1)
	rec.Observe(at(10), time.Millisecond) // within cooldown: event only
	h := rec.Health()
	if h.Dumps != 1 {
		t.Fatalf("dumps = %d after second trigger inside cooldown, want 1", h.Dumps)
	}
	if len(events) != 2 {
		t.Fatalf("events = %+v, want 2", events)
	}
	if events[0].Trigger != TriggerIngestShed || events[0].DumpDir == "" {
		t.Fatalf("first event %+v should carry the dump", events[0])
	}
	if events[1].Trigger != TriggerJournalDrop || events[1].DumpDir != "" {
		t.Fatalf("second event %+v should be event-only (no dump dir)", events[1])
	}
	// The suppressed trigger was detected, just not dumped.
	for _, tr := range h.Triggers {
		if tr.Name == TriggerJournalDrop && tr.Fired != 1 {
			t.Fatalf("journal_drop fired = %d, want 1 (detection is never rate-limited)", tr.Fired)
		}
	}

	// Recover both edges, then re-fire the suppressed class after the
	// cooldown: it must dump this time.
	rec.Observe(at(20), time.Millisecond)
	evicted.Add(1)
	rec.Observe(at(70), time.Millisecond)
	if h := rec.Health(); h.Dumps != 2 {
		t.Fatalf("dumps = %d after cooldown elapsed, want 2", h.Dumps)
	}
	if last := events[len(events)-1]; last.Trigger != TriggerJournalDrop || last.DumpDir == "" {
		t.Fatalf("post-cooldown event %+v should carry a dump", last)
	}
	if entries, err := os.ReadDir(dir); err != nil || len(entries) != 2 {
		t.Fatalf("dump dirs on disk = %d (%v), want 2", len(entries), err)
	}
}

// TestSLOBurnSupersedesTickP99 wires the burn-rate engine taps: the
// internal single-window tick_p99 trigger must stop evaluating (a tick
// far over the SLO does not fire), a positive burn-event delta fires
// slo_burn with the engine's detail, and dumps embed the pre-trigger
// history window as history.json.
func TestSLOBurnSupersedesTickP99(t *testing.T) {
	dir := dumpRoot(t)
	var burns atomic.Int64
	burns.Store(3) // events from before the recorder existed must not fire
	rec := New(Config{Dir: dir, SLOTickP99: 100 * time.Millisecond, Window: 4},
		Sources{
			SLOBurnEvents: burns.Load,
			SLODetail:     func() string { return "tick-latency fast 15.00 slow 7.10" },
			History: func(w io.Writer) error {
				_, err := io.WriteString(w, `{"series":[]}`)
				return err
			},
		})
	var events []Event
	rec.SetNotify(func(ev Event) { events = append(events, ev) })

	rec.Observe(at(0), 500*time.Millisecond) // 5x the tick SLO
	if h := rec.Health(); !h.OK {
		t.Fatalf("tick_p99 fired despite burn-rate engine wired: %+v", h.Degraded)
	}
	burns.Add(1)
	rec.Observe(at(10), time.Millisecond)
	h := rec.Health()
	if len(h.Degraded) != 1 || h.Degraded[0] != TriggerSLOBurn {
		t.Fatalf("degraded = %v, want [%s]", h.Degraded, TriggerSLOBurn)
	}
	if len(events) != 1 || events[0].Trigger != TriggerSLOBurn ||
		!strings.Contains(events[0].Detail, "tick-latency fast 15.00") {
		t.Fatalf("events = %+v, want one slo_burn carrying the engine detail", events)
	}
	data, err := os.ReadFile(filepath.Join(h.LastDump, "history.json"))
	if err != nil || string(data) != `{"series":[]}` {
		t.Fatalf("history.json = %q (%v), want the history snapshot", data, err)
	}
	// No new events: slo_burn recovers.
	rec.Observe(at(20), time.Millisecond)
	if h := rec.Health(); !h.OK {
		t.Fatalf("slo_burn stayed firing with no new events: %+v", h.Degraded)
	}
}

// TestRetentionRacesDumpInProgress hammers MaxDumpDirs pruning while
// dumps are still being written from concurrent Observe calls: the slow
// Incidents callback keeps each dump in progress while other goroutines
// prune, which must never panic or corrupt recorder state, and a final
// quiescent dump must leave exactly MaxDumpDirs directories.
func TestRetentionRacesDumpInProgress(t *testing.T) {
	dir := dumpRoot(t)
	var shed atomic.Int64
	rec := New(Config{Dir: dir, Window: 4, Cooldown: time.Nanosecond, MaxDumps: -1, MaxDumpDirs: 2},
		Sources{
			Shed: shed.Load,
			Incidents: func() any {
				time.Sleep(2 * time.Millisecond) // hold the dump open mid-write
				return []string{"inc"}
			},
		})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				shed.Add(1)
				rec.Observe(at(g*100+i*2), time.Millisecond)
				rec.Observe(at(g*100+i*2+1), time.Millisecond) // recover the edge
			}
		}(g)
	}
	wg.Wait()
	if h := rec.Health(); h.Dumps < 1 {
		t.Fatalf("no dumps written under concurrency: %+v", h)
	}
	// Quiesce, then one final sequential dump: its prune pass sees every
	// completed directory and must enforce the cap.
	rec.Observe(at(1000), time.Millisecond)
	shed.Add(1)
	rec.Observe(at(1001), time.Millisecond)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var dumps []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "flight-") {
			dumps = append(dumps, e.Name())
		}
	}
	if len(dumps) != 2 {
		t.Fatalf("retained %d dump dirs %v after quiescent prune, want 2", len(dumps), dumps)
	}
}

// TestRegisterMetrics checks the self-metrics reflect recorder state.
func TestRegisterMetrics(t *testing.T) {
	var shed atomic.Int64
	rec := New(Config{Window: 4}, Sources{Shed: shed.Load})
	reg := telemetry.New()
	rec.RegisterMetrics(reg)
	find := func(name string) float64 {
		for _, s := range reg.Snapshot() {
			if s.Name == name {
				return s.Value
			}
		}
		t.Fatalf("metric %s not registered", name)
		return 0
	}
	rec.Observe(at(0), time.Millisecond)
	if v := find("skynet_flight_degraded"); v != 0 {
		t.Fatalf("degraded = %v at rest", v)
	}
	shed.Add(1)
	rec.Observe(at(10), time.Millisecond)
	if v := find("skynet_flight_degraded"); v != 1 {
		t.Fatalf("degraded = %v while firing", v)
	}
	if v := find("skynet_flight_trigger_ingest_shed_total"); v != 1 {
		t.Fatalf("trigger counter = %v, want 1", v)
	}
	if v := find("skynet_flight_tick_p99_seconds"); v <= 0 {
		t.Fatalf("tick p99 gauge = %v", v)
	}
}

// TestDumpRetention verifies MaxDumpDirs pruning: after each dump the
// oldest flight-* directories beyond the cap are deleted, while
// anything else under the dump root is left alone.
func TestDumpRetention(t *testing.T) {
	dir := dumpRoot(t)
	if err := os.MkdirAll(filepath.Join(dir, "keepme"), 0o755); err != nil {
		t.Fatal(err)
	}
	var shed atomic.Int64
	rec := New(Config{Dir: dir, Window: 4, Cooldown: time.Second, MaxDumps: -1, MaxDumpDirs: 2},
		Sources{Shed: shed.Load})
	fire := func(sec int) {
		shed.Add(1)
		rec.Observe(at(sec), time.Millisecond)
		rec.Observe(at(sec+1), time.Millisecond) // recover so the next delta is a rising edge
	}
	for i := 0; i < 4; i++ {
		fire(i * 70)
	}
	if h := rec.Health(); h.Dumps != 4 {
		t.Fatalf("dumps written = %d, want 4 (MaxDumps<0 is unlimited)", h.Dumps)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var dumps []string
	keep := false
	for _, e := range entries {
		if e.Name() == "keepme" {
			keep = true
			continue
		}
		if strings.HasPrefix(e.Name(), "flight-") {
			dumps = append(dumps, e.Name())
		}
	}
	if !keep {
		t.Error("retention pruning deleted an unrelated directory")
	}
	if len(dumps) != 2 {
		t.Fatalf("retained %d dump dirs %v, want the 2 newest", len(dumps), dumps)
	}
	// Names embed the observe timestamp, so lexicographic order is
	// chronological: the survivors must be the two most recent dumps
	// (sequence numbers 003 and 004).
	sort.Strings(dumps)
	for i, want := range []string{"-003", "-004"} {
		if !strings.HasSuffix(dumps[i], want) {
			t.Errorf("survivor %d = %q, want suffix %q (oldest-first deletion)", i, dumps[i], want)
		}
	}
}

// TestFloodCloseTrigger verifies the flood_close edge: a closed flood
// episode fires one dump trigger, and pre-existing closes at
// construction do not.
func TestFloodCloseTrigger(t *testing.T) {
	var closed atomic.Int64
	closed.Store(2) // episodes closed before the recorder existed
	rec := New(Config{Window: 4}, Sources{FloodClosed: closed.Load})
	var events []Event
	rec.SetNotify(func(ev Event) { events = append(events, ev) })

	rec.Observe(at(0), time.Millisecond)
	if h := rec.Health(); !h.OK {
		t.Fatalf("pre-existing flood closes fired at construction: %+v", h.Degraded)
	}
	closed.Add(1)
	rec.Observe(at(10), time.Millisecond)
	h := rec.Health()
	if len(h.Degraded) != 1 || h.Degraded[0] != TriggerFloodClose {
		t.Fatalf("degraded = %v, want [%s]", h.Degraded, TriggerFloodClose)
	}
	if len(events) != 1 || events[0].Trigger != TriggerFloodClose {
		t.Fatalf("events = %+v, want one flood_close", events)
	}
	rec.Observe(at(20), time.Millisecond)
	if h := rec.Health(); !h.OK {
		t.Fatalf("flood_close stayed firing with no new closes: %+v", h.Degraded)
	}
}
