// Package flight is SkyNet's always-on flight recorder: a small,
// lock-light watchdog that rides along with the pipeline, keeps a
// sliding window of recent tick durations, and — when something goes
// wrong — captures the evidence an operator needs *at the moment of the
// anomaly*, not minutes later when a human gets paged.
//
// The paper's failure mode is exactly the situation where post-hoc
// debugging is hardest: an alert flood degrades the very pipeline that
// is supposed to explain it. The recorder therefore watches a fixed set
// of anomaly triggers every tick:
//
//   - tick_p99          — tick latency p99 over the window breached the SLO
//     (only when no burn-rate engine is wired; see slo_burn)
//   - slo_burn          — the multi-window SLO burn-rate engine emitted a
//     fire/resolve event; supersedes the single-window tick_p99 trigger
//     when Sources.SLOBurnEvents is set
//   - ingest_shed       — the daemon dropped raw alerts on a full queue
//   - journal_drop      — the lifecycle journal evicted events
//   - queue_high_water  — the ingest queue passed its high-water fraction
//   - prov_conservation — the provenance ledger went negative (alerts
//     terminal more than once: an accounting bug, never load)
//
// On a trigger's rising edge it dumps a self-contained snapshot — the
// recent span-trace ring, a /metrics snapshot, goroutine and heap
// profiles, and the active incident list — into a timestamped directory,
// rate-limited by a cooldown and a dump cap so a sustained storm cannot
// fill the disk. Health() summarizes the trigger states as a self-SLO
// verdict for GET /api/health, and SetNotify streams anomaly events into
// the SSE bus.
package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"skynet/internal/span"
	"skynet/internal/telemetry"
)

// Defaults for Config's zero fields.
const (
	DefaultSLOTickP99    = time.Second
	DefaultWindow        = 64
	DefaultQueueFraction = 0.9
	DefaultCooldown      = time.Minute
	DefaultMaxDumps      = 16
)

// Config tunes the recorder. The zero value is usable: defaults apply,
// and an empty Dir records triggers and health without writing dumps.
type Config struct {
	// Dir is the root directory dumps are written under (created on
	// demand). Empty disables dumping; triggers and health still work.
	Dir string
	// SLOTickP99 is the self-SLO on tick latency: the p99 of the sliding
	// window above this fires tick_p99. Default 1s.
	SLOTickP99 time.Duration
	// Window is how many recent tick durations the p99 is computed over.
	// Default 64 — at the daemon's 10s tick, ~10 minutes.
	Window int
	// QueueFraction is the ingest-queue high-water mark as a fraction of
	// capacity. Default 0.9.
	QueueFraction float64
	// Cooldown is the minimum spacing between dumps. Default 1m.
	Cooldown time.Duration
	// MaxDumps caps the dump directories written over the recorder's
	// lifetime. Default 16; negative means unlimited.
	MaxDumps int
	// MaxDumpDirs caps the dump directories retained on disk: after each
	// dump, the oldest flight-* directories under Dir beyond this count
	// are deleted (a sustained storm keeps only the newest evidence).
	// 0 disables retention pruning.
	MaxDumpDirs int
}

// Sources are the read-only taps the recorder samples every Observe.
// Any field may be nil/zero; its trigger or dump section is skipped.
type Sources struct {
	// Shed returns the cumulative count of raw alerts dropped at ingest
	// (queue full). A positive delta between ticks fires ingest_shed.
	Shed func() int64
	// JournalEvicted returns the journal's cumulative eviction count. A
	// positive delta fires journal_drop.
	JournalEvicted func() int64
	// Queue returns the ingest queue's current depth and capacity.
	Queue func() (depth, capacity int)
	// ProvInFlight returns the provenance ledger's in-flight count
	// (ingested − terminal). Negative fires prov_conservation.
	ProvInFlight func() int64
	// FloodClosed returns the flood detector's cumulative closed-episode
	// count. A positive delta fires flood_close, so every finished flood
	// episode captures a postmortem evidence dump.
	FloodClosed func() int64
	// Incidents returns a JSON-serializable snapshot of the active
	// incident population, captured at dump time.
	Incidents func() any
	// Metrics is the registry whose exposition is written into dumps.
	Metrics *telemetry.Registry
	// Tracer supplies the recent span-trace ring written into dumps.
	Tracer *span.Tracer
	// SLOBurnEvents returns the burn-rate engine's cumulative event count
	// (fire + resolve edges). When set it SUPERSEDES the recorder's
	// internal single-window tick-p99 self-SLO: tick_p99 stops being
	// evaluated and a positive delta here fires slo_burn instead — the
	// rule engine's fast/slow windows are strictly better at telling a
	// blip from a breach.
	SLOBurnEvents func() int64
	// SLODetail describes the most recent burn event, joined into the
	// slo_burn trigger detail.
	SLODetail func() string
	// History writes the pre-trigger telemetry history window into dumps
	// as history.json — typically tsdb.DB.SnapshotTo, so every dump
	// carries how the pipeline trended INTO the anomaly, not just the
	// instant of it.
	History func(w io.Writer) error
	// Profiles drops extra profile files into a dump directory —
	// typically prof.Collector.WriteLatest, which copies the continuous
	// profiler's most recent stage-labeled CPU window. Must not block
	// (dumps run on the engine loop): copy captured evidence, never
	// capture fresh.
	Profiles func(dir string)
}

// Trigger names, stable identifiers used in health reports, events,
// metrics, and dump file names.
const (
	TriggerTickP99     = "tick_p99"
	TriggerSLOBurn     = "slo_burn"
	TriggerIngestShed  = "ingest_shed"
	TriggerJournalDrop = "journal_drop"
	TriggerQueueHigh   = "queue_high_water"
	TriggerProvViolate = "prov_conservation"
	TriggerFloodClose  = "flood_close"
)

var triggerNames = []string{
	TriggerTickP99, TriggerSLOBurn, TriggerIngestShed, TriggerJournalDrop,
	TriggerQueueHigh, TriggerProvViolate, TriggerFloodClose,
}

// TriggerState is the health view of one anomaly trigger.
type TriggerState struct {
	// Name is the trigger identifier.
	Name string `json:"name"`
	// Firing reports whether the trigger's condition held at the last
	// Observe (edge triggers: whether it fired at the last Observe).
	Firing bool `json:"firing"`
	// Fired counts rising edges over the recorder's lifetime.
	Fired int64 `json:"fired"`
	// Last is when the trigger last fired (zero when never).
	Last time.Time `json:"last,omitempty"`
	// Detail describes the most recent firing ("p99 1.2s > SLO 1s").
	Detail string `json:"detail,omitempty"`
}

// Health is the recorder's self-SLO verdict.
type Health struct {
	// OK is true when no trigger is firing.
	OK bool `json:"ok"`
	// Degraded lists the names of currently firing triggers.
	Degraded []string `json:"degraded,omitempty"`
	// TickP99 is the current sliding-window tick latency p99.
	TickP99 time.Duration `json:"tick_p99_ns"`
	// SLOTickP99 is the configured latency SLO.
	SLOTickP99 time.Duration `json:"slo_tick_p99_ns"`
	// Ticks counts Observe calls over the recorder's lifetime.
	Ticks int64 `json:"ticks"`
	// Dumps counts dump directories written.
	Dumps int64 `json:"dumps"`
	// LastDump is the path of the most recent dump directory.
	LastDump string `json:"last_dump,omitempty"`
	// Triggers is the per-trigger state, in a fixed order.
	Triggers []TriggerState `json:"triggers"`
}

// Event is one anomaly notification, emitted on a trigger's rising edge.
type Event struct {
	// Time is the pipeline time of the Observe that fired the trigger.
	Time time.Time `json:"time"`
	// Trigger is the trigger name.
	Trigger string `json:"trigger"`
	// Detail describes the firing condition with its measured values.
	Detail string `json:"detail"`
	// DumpDir is the dump directory written for this firing (empty when
	// dumping is disabled, rate-limited, or capped).
	DumpDir string `json:"dump_dir,omitempty"`
}

// Recorder is the flight recorder. Observe must be called from one
// goroutine (the engine loop); Health, SetNotify, and RegisterMetrics
// are safe from any goroutine.
type Recorder struct {
	cfg Config
	src Sources

	mu       sync.Mutex
	window   []time.Duration // tick-duration ring
	wstart   int
	wn       int
	ticks    int64
	p99      time.Duration
	triggers map[string]*TriggerState

	lastShed        int64
	lastEvicted     int64
	lastFloodClosed int64
	lastSLOBurn     int64

	dumps     int64
	lastDump  string
	lastDumpT time.Time
	hasDumped bool
	dumpSeq   int

	notify func(Event)
}

// New builds a recorder over the given sources, applying defaults to
// zero Config fields.
func New(cfg Config, src Sources) *Recorder {
	if cfg.SLOTickP99 <= 0 {
		cfg.SLOTickP99 = DefaultSLOTickP99
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.QueueFraction <= 0 || cfg.QueueFraction > 1 {
		cfg.QueueFraction = DefaultQueueFraction
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = DefaultCooldown
	}
	if cfg.MaxDumps == 0 {
		cfg.MaxDumps = DefaultMaxDumps
	}
	r := &Recorder{
		cfg:      cfg,
		src:      src,
		window:   make([]time.Duration, cfg.Window),
		triggers: make(map[string]*TriggerState, len(triggerNames)),
	}
	for _, name := range triggerNames {
		r.triggers[name] = &TriggerState{Name: name}
	}
	if src.Shed != nil {
		r.lastShed = src.Shed()
	}
	if src.JournalEvicted != nil {
		r.lastEvicted = src.JournalEvicted()
	}
	if src.FloodClosed != nil {
		r.lastFloodClosed = src.FloodClosed()
	}
	if src.SLOBurnEvents != nil {
		r.lastSLOBurn = src.SLOBurnEvents()
	}
	return r
}

// SetNotify installs the anomaly event callback (the SSE bus tap). The
// callback runs on the Observe goroutine, outside the recorder's lock.
func (r *Recorder) SetNotify(fn func(Event)) {
	r.mu.Lock()
	r.notify = fn
	r.mu.Unlock()
}

// Observe feeds one finished tick into the recorder: its duration joins
// the sliding window, every trigger is evaluated, and rising edges dump
// and notify. now is pipeline time (wall in the daemon, simulated under
// replay); dur is the tick's measured wall time.
func (r *Recorder) Observe(now time.Time, dur time.Duration) {
	r.mu.Lock()
	r.ticks++
	if r.wn == len(r.window) {
		r.wstart = (r.wstart + 1) % len(r.window)
		r.wn--
	}
	r.window[(r.wstart+r.wn)%len(r.window)] = dur
	r.wn++
	r.p99 = r.windowP99()

	var fired []Event
	edge := func(name string, firing bool, detail string) {
		st := r.triggers[name]
		rising := firing && !st.Firing
		st.Firing = firing
		if firing {
			st.Detail = detail
		}
		if rising {
			st.Fired++
			st.Last = now
			fired = append(fired, Event{Time: now, Trigger: name, Detail: detail})
		}
	}

	if r.src.SLOBurnEvents == nil {
		edge(TriggerTickP99, r.p99 > r.cfg.SLOTickP99,
			fmt.Sprintf("tick p99 %s over %d ticks > SLO %s", r.p99, r.wn, r.cfg.SLOTickP99))
	} else {
		// The burn-rate engine owns latency (and more) judgement; the
		// recorder just converts its event stream into dump triggers.
		cur := r.src.SLOBurnEvents()
		d := cur - r.lastSLOBurn
		r.lastSLOBurn = cur
		detail := ""
		if d > 0 && r.src.SLODetail != nil {
			detail = ": " + r.src.SLODetail()
		}
		edge(TriggerSLOBurn, d > 0,
			fmt.Sprintf("slo burn-rate engine emitted %d events (%d total)%s", d, cur, detail))
	}

	if r.src.Shed != nil {
		cur := r.src.Shed()
		d := cur - r.lastShed
		r.lastShed = cur
		edge(TriggerIngestShed, d > 0,
			fmt.Sprintf("ingest queue shed %d raw alerts since last tick (%d total)", d, cur))
	}
	if r.src.JournalEvicted != nil {
		cur := r.src.JournalEvicted()
		d := cur - r.lastEvicted
		r.lastEvicted = cur
		edge(TriggerJournalDrop, d > 0,
			fmt.Sprintf("journal evicted %d events since last tick (%d total)", d, cur))
	}
	if r.src.Queue != nil {
		depth, capacity := r.src.Queue()
		high := capacity > 0 && float64(depth) >= r.cfg.QueueFraction*float64(capacity)
		edge(TriggerQueueHigh, high,
			fmt.Sprintf("ingest queue depth %d/%d ≥ %.0f%% high water", depth, capacity, 100*r.cfg.QueueFraction))
	}
	if r.src.ProvInFlight != nil {
		fl := r.src.ProvInFlight()
		edge(TriggerProvViolate, fl < 0,
			fmt.Sprintf("provenance conservation violated: in-flight %d < 0", fl))
	}
	if r.src.FloodClosed != nil {
		cur := r.src.FloodClosed()
		d := cur - r.lastFloodClosed
		r.lastFloodClosed = cur
		edge(TriggerFloodClose, d > 0,
			fmt.Sprintf("flood episode closed (%d episodes total): capturing postmortem evidence", cur))
	}

	// Rate-limit dumping, not detection: at most one dump per cooldown,
	// capped over the lifetime. The first firing in a burst carries the
	// dump; the rest are events only.
	var dumpDir string
	if len(fired) > 0 && r.cfg.Dir != "" &&
		(r.cfg.MaxDumps < 0 || r.dumps < int64(r.cfg.MaxDumps)) &&
		(!r.hasDumped || now.Sub(r.lastDumpT) >= r.cfg.Cooldown) {
		r.dumpSeq++
		dumpDir = filepath.Join(r.cfg.Dir,
			fmt.Sprintf("flight-%s-%03d", now.UTC().Format("20060102T150405"), r.dumpSeq))
		r.dumps++
		r.lastDump = dumpDir
		r.lastDumpT = now
		r.hasDumped = true
		for i := range fired {
			fired[i].DumpDir = dumpDir
		}
	}
	notify := r.notify
	health := r.healthLocked()
	r.mu.Unlock()

	// Dump and notify outside the lock: the incident snapshot callback
	// may take the engine lock, and the SSE bus takes its own.
	if dumpDir != "" {
		r.writeDump(dumpDir, fired, health)
	}
	if notify != nil {
		for _, ev := range fired {
			notify(ev)
		}
	}
}

// windowP99 computes the p99 of the current window. Caller holds mu.
func (r *Recorder) windowP99() time.Duration {
	if r.wn == 0 {
		return 0
	}
	buf := make([]time.Duration, r.wn)
	for i := 0; i < r.wn; i++ {
		buf[i] = r.window[(r.wstart+i)%len(r.window)]
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	rank := (99*r.wn + 99) / 100 // ceil(0.99·n)
	if rank < 1 {
		rank = 1
	}
	if rank > r.wn {
		rank = r.wn
	}
	return buf[rank-1]
}

// Health returns the current self-SLO verdict.
func (r *Recorder) Health() Health {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.healthLocked()
}

func (r *Recorder) healthLocked() Health {
	h := Health{
		OK:         true,
		TickP99:    r.p99,
		SLOTickP99: r.cfg.SLOTickP99,
		Ticks:      r.ticks,
		Dumps:      r.dumps,
		LastDump:   r.lastDump,
		Triggers:   make([]TriggerState, 0, len(triggerNames)),
	}
	for _, name := range triggerNames {
		st := *r.triggers[name]
		h.Triggers = append(h.Triggers, st)
		if st.Firing {
			h.OK = false
			h.Degraded = append(h.Degraded, name)
		}
	}
	return h
}

// RegisterMetrics exposes the recorder's own state on a registry.
func (r *Recorder) RegisterMetrics(reg *telemetry.Registry) {
	reg.GaugeFunc("skynet_flight_degraded",
		"1 when any flight-recorder anomaly trigger is firing, else 0.",
		func() float64 {
			if r.Health().OK {
				return 0
			}
			return 1
		})
	reg.GaugeFunc("skynet_flight_tick_p99_seconds",
		"Sliding-window tick latency p99 watched by the flight recorder.",
		func() float64 {
			r.mu.Lock()
			defer r.mu.Unlock()
			return r.p99.Seconds()
		})
	reg.CounterFunc("skynet_flight_dumps_total",
		"Flight-recorder dump directories written.",
		func() float64 {
			r.mu.Lock()
			defer r.mu.Unlock()
			return float64(r.dumps)
		})
	for _, name := range triggerNames {
		st := r.triggers[name]
		reg.CounterFunc("skynet_flight_trigger_"+name+"_total",
			"Rising edges of the "+name+" flight-recorder trigger.",
			func() float64 {
				r.mu.Lock()
				defer r.mu.Unlock()
				return float64(st.Fired)
			})
	}
}

// dumpManifest is the trigger.json payload: why the dump happened and
// what the recorder believed at that moment.
type dumpManifest struct {
	Time     time.Time `json:"time"`
	Triggers []Event   `json:"triggers"`
	Health   Health    `json:"health"`
}

// writeDump captures one snapshot directory. Best-effort: a failing
// section is skipped (written as an .err file) rather than aborting the
// pipeline — the recorder must never take the patient down with it.
func (r *Recorder) writeDump(dir string, fired []Event, health Health) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	writeErr := func(name string, err error) {
		_ = os.WriteFile(filepath.Join(dir, name+".err"), []byte(err.Error()+"\n"), 0o644)
	}
	writeJSON := func(name string, v any) {
		data, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			writeErr(name, err)
			return
		}
		if err := os.WriteFile(filepath.Join(dir, name), append(data, '\n'), 0o644); err != nil {
			writeErr(name, err)
		}
	}
	writeJSON("trigger.json", dumpManifest{Time: health.timeOf(fired), Triggers: fired, Health: health})
	if r.src.Tracer != nil {
		writeJSON("spans.json", r.src.Tracer.Last(0))
	}
	if r.src.Metrics != nil {
		f, err := os.Create(filepath.Join(dir, "metrics.prom"))
		if err == nil {
			err = r.src.Metrics.Expose(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			writeErr("metrics.prom", err)
		}
	}
	if r.src.Incidents != nil {
		writeJSON("incidents.json", r.src.Incidents())
	}
	if r.src.History != nil {
		f, err := os.Create(filepath.Join(dir, "history.json"))
		if err == nil {
			err = r.src.History(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			writeErr("history.json", err)
		}
	}
	if f, err := os.Create(filepath.Join(dir, "goroutines.txt")); err == nil {
		_ = pprof.Lookup("goroutine").WriteTo(f, 2)
		_ = f.Close()
	}
	if f, err := os.Create(filepath.Join(dir, "heap.pprof")); err == nil {
		_ = pprof.WriteHeapProfile(f)
		_ = f.Close()
	}
	// Contention snapshots ride along (cheap; empty unless the daemon
	// enabled -mutex-fraction / -block-rate), then the profiler's latest
	// labeled CPU window via the Profiles hook.
	for _, name := range []string{"mutex", "block"} {
		if p := pprof.Lookup(name); p != nil {
			if f, err := os.Create(filepath.Join(dir, name+".pprof")); err == nil {
				_ = p.WriteTo(f, 0)
				_ = f.Close()
			}
		}
	}
	if r.src.Profiles != nil {
		r.src.Profiles(dir)
	}
	r.pruneDumps()
}

// pruneDumps enforces Config.MaxDumpDirs: the oldest flight-* dump
// directories under Dir beyond the cap are deleted, so a long-running
// daemon riding out a storm keeps the newest evidence instead of
// filling the disk. Dump names sort chronologically (UTC timestamp plus
// a monotonic sequence), so lexicographic order is age order.
func (r *Recorder) pruneDumps() {
	if r.cfg.MaxDumpDirs <= 0 || r.cfg.Dir == "" {
		return
	}
	entries, err := os.ReadDir(r.cfg.Dir)
	if err != nil {
		return
	}
	var dumps []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "flight-") {
			dumps = append(dumps, e.Name())
		}
	}
	if len(dumps) <= r.cfg.MaxDumpDirs {
		return
	}
	sort.Strings(dumps)
	for _, name := range dumps[:len(dumps)-r.cfg.MaxDumpDirs] {
		_ = os.RemoveAll(filepath.Join(r.cfg.Dir, name))
	}
}

// timeOf picks the manifest timestamp from the firing events.
func (Health) timeOf(fired []Event) time.Time {
	if len(fired) > 0 {
		return fired[0].Time
	}
	return time.Time{}
}
