package tsdb

import (
	"strings"

	"skynet/internal/telemetry"
)

// MetricTickDuration is the series the sampler writes directly from the
// engine's measured (or modeled) tick latency — the SLO engine's primary
// input. It bypasses the registry so a deterministic latency model can
// drive it in replay tests.
const MetricTickDuration = "skynet_tick_duration_seconds"

// Sampler snapshots every registry metric into the DB once per engine
// tick. Handles are pre-resolved through telemetry.Registry.Handles and
// re-resolved only when the registration revision moves, so the steady
// state allocates nothing: one lock, one append per series.
//
// Not safe for concurrent use; it runs on the engine goroutine like
// every other per-tick observer.
type Sampler struct {
	db     *DB
	reg    *telemetry.Registry
	rev    uint64
	init   bool
	tickS  *Series
	series []*Series // parallel to handles
	reads  []telemetry.Handle
}

// NewSampler binds a store to a registry. The DB's Filter decides which
// metric families are recorded.
func NewSampler(db *DB, reg *telemetry.Registry) *Sampler {
	return &Sampler{db: db, reg: reg}
}

// DB returns the backing store.
func (sp *Sampler) DB() *DB { return sp.db }

// ObserveTick samples every handle at the given tick and records the
// tick's duration (seconds) under MetricTickDuration. Ticks must be
// strictly increasing.
func (sp *Sampler) ObserveTick(tick uint64, durSeconds float64) {
	db := sp.db
	db.mu.Lock()
	if !sp.init || sp.reg.Rev() != sp.rev {
		sp.resolveLocked()
	}
	sp.tickS.append(db, tick, durSeconds)
	for i, h := range sp.reads {
		sp.series[i].append(db, tick, h.Read())
	}
	if tick > db.lastT {
		db.lastT = tick
	}
	db.samplesN.Add(int64(len(sp.reads)) + 1)
	db.mu.Unlock()
}

// resolveLocked rebuilds the handle set. Runs with db.mu held; rare (only
// when a new series registers, e.g. a labeled flood episode counter).
func (sp *Sampler) resolveLocked() {
	sp.rev = sp.reg.Rev()
	sp.init = true
	if sp.tickS == nil {
		sp.tickS = sp.db.seriesLocked(MetricTickDuration)
	}
	handles := sp.reg.Handles()
	sp.reads = sp.reads[:0]
	sp.series = sp.series[:0]
	for _, h := range handles {
		if h.Name == MetricTickDuration {
			continue // the sampler's own direct series wins
		}
		if sp.db.cfg.Filter != nil && !sp.db.cfg.Filter(h.Name) {
			continue
		}
		sp.reads = append(sp.reads, h)
		sp.series = append(sp.series, sp.db.seriesLocked(h.Name))
	}
}

// DeterministicFilter is the Config.Filter for bit-identity tests and
// deterministic replays: it drops every series whose value depends on the
// wall clock, the host, or the worker fan-out (latency histograms, replay
// throughput, the store's own byte accounting, per-shard occupancy) and
// keeps the pure pipeline counters and gauges. MetricTickDuration itself
// is written directly by the sampler from the engine's latency model, so
// it stays deterministic under this filter.
func DeterministicFilter(name string) bool {
	if strings.Contains(name, "_seconds") {
		return false
	}
	if name == "skynet_pipeline_workers" {
		return false
	}
	for _, prefix := range []string{
		"skynet_replay_", "skynet_tsdb_", "skynet_flight_",
		"skynet_preprocess_shard_", "skynet_locator_shard_",
		// Continuous-profiler and Go-runtime series measure the host
		// machine (CPU samples, GC, scheduler), never the alert stream.
		"skynet_prof_", "skynet_runtime_",
		// Fan-out series count subscribers, queue depths, and drops —
		// all functions of who is connected, not of the alert stream.
		"skynet_fanout_",
	} {
		if strings.HasPrefix(name, prefix) {
			return false
		}
	}
	return true
}
