package tsdb

import (
	"fmt"
	"math"
	"strings"
)

// sparkTicks is the eight-level block ramp used by Sparkline.
var sparkTicks = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a fixed-width terminal sparkline. When
// len(values) exceeds width, consecutive values are averaged into width
// cells; fewer values render one cell each. A flat series renders at the
// lowest level.
func Sparkline(values []float64, width int) string {
	if len(values) == 0 || width <= 0 {
		return ""
	}
	cells := values
	if len(values) > width {
		cells = make([]float64, width)
		for i := 0; i < width; i++ {
			lo := i * len(values) / width
			hi := (i + 1) * len(values) / width
			if hi <= lo {
				hi = lo + 1
			}
			var sum float64
			for _, v := range values[lo:hi] {
				sum += v
			}
			cells[i] = sum / float64(hi-lo)
		}
	}
	min, max := math.Inf(1), math.Inf(-1)
	for _, v := range cells {
		min = math.Min(min, v)
		max = math.Max(max, v)
	}
	var b strings.Builder
	for _, v := range cells {
		lvl := 0
		if max > min {
			lvl = int((v - min) / (max - min) * float64(len(sparkTicks)-1))
			if lvl < 0 {
				lvl = 0
			}
			if lvl >= len(sparkTicks) {
				lvl = len(sparkTicks) - 1
			}
		}
		b.WriteRune(sparkTicks[lvl])
	}
	return b.String()
}

// RenderHistory formats one query result as a labeled sparkline block for
// skynet-replay -history:
//
//	skynet_active_incidents                 ticks 0..412 (raw)
//	  min 0    max 14    last 3
//	  ▁▁▂▃▅█▇▅▃▂▁▁ ...
func RenderHistory(res QueryResult, width int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s  ticks %d..%d (%s, %d points)\n",
		res.Metric, res.From, res.To, res.Source, len(res.Points))
	if len(res.Points) == 0 {
		b.WriteString("  (no samples)\n")
		return b.String()
	}
	values := make([]float64, len(res.Points))
	min, max := math.Inf(1), math.Inf(-1)
	for i, p := range res.Points {
		values[i] = p.Value
		min = math.Min(min, p.Value)
		max = math.Max(max, p.Value)
	}
	fmt.Fprintf(&b, "  min %s  max %s  last %s\n",
		formatShort(min), formatShort(max), formatShort(values[len(values)-1]))
	fmt.Fprintf(&b, "  %s\n", Sparkline(values, width))
	return b.String()
}

func formatShort(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 0.01:
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.3e", v)
	}
}
