// Package tsdb is SkyNet's embedded time-series store: every registry
// metric is sampled once per engine tick into a tick-indexed series of
// XOR-compressed float chunks, with raw→10-tick→100-tick downsampling
// tiers and chunk-granular retention.
//
// The design premise is the same determinism contract the rest of the
// pipeline honors: the store is indexed by tick, not wall time, and its
// write path never reads a clock. Feed two stores the same (tick, value)
// sequence and their contents — including the compressed bit streams —
// are identical, no matter the worker count or host. That is what lets
// replay tests compare whole history snapshots byte-for-byte, and what
// the ROADMAP's distributed-SkyNet item needs to merge per-region health
// history deterministically.
//
// Timestamps cost zero bits: because the index is the tick and samples
// are consecutive, a chunk stores only its start tick and a count — the
// delta-of-delta timestamp stream of a general-purpose TSDB degenerates
// to nothing. Values use the Facebook Gorilla float scheme: XOR against
// the previous value, then either a single 0 bit (repeat), or the
// meaningful bits inside the previous leading/trailing-zero window, or a
// re-sized window. Flat series — most gauges most of the time — cost
// ~1.1 bits per sample.
package tsdb

import (
	"math"
	"math/bits"
)

// chunkDataBytes is the fixed payload size of one chunk. Chunks are
// pooled and recycled through the DB freelist, so steady-state appends
// allocate nothing.
const chunkDataBytes = 256

// maxSampleBits is the worst-case encoded size of one sample: control
// bits + 5-bit leading count + 6-bit significant-bit count + 64 value
// bits.
const maxSampleBits = 1 + 1 + 5 + 6 + 64

// leadingSentinel marks "no window established yet" in chunk.leading.
const leadingSentinel = 0xff

// chunk is one compressed run of consecutive samples. start is the tick
// of the first sample; sample i sits at tick start + i*step, where step
// belongs to the owning column (1 for raw, 10/100 for the tiers).
type chunk struct {
	start    uint64
	count    uint32
	bits     uint32 // bits written into buf
	prev     uint64 // last value's IEEE bits
	leading  uint8  // current XOR window; leadingSentinel when unset
	trailing uint8
	buf      []byte
	next     *chunk // freelist link
}

func newChunk() *chunk {
	return &chunk{buf: make([]byte, chunkDataBytes), leading: leadingSentinel}
}

// reset prepares a recycled chunk for reuse.
func (c *chunk) reset() {
	for i := range c.buf {
		c.buf[i] = 0
	}
	c.start, c.count, c.bits, c.prev = 0, 0, 0, 0
	c.leading, c.trailing = leadingSentinel, 0
	c.next = nil
}

// room reports whether n more bits fit.
func (c *chunk) room(n uint32) bool {
	return c.bits+n <= uint32(len(c.buf))*8
}

// writeBits appends the low n bits of v, most significant first.
func (c *chunk) writeBits(v uint64, n uint) {
	for n > 0 {
		byteIdx := c.bits >> 3
		bitOff := uint(c.bits & 7)
		free := 8 - bitOff
		take := n
		if take > free {
			take = free
		}
		part := byte(v>>(n-take)) & byte((1<<take)-1)
		c.buf[byteIdx] |= part << (free - take)
		c.bits += uint32(take)
		n -= take
	}
}

// append encodes one more value; false means the chunk is full and must
// be sealed (the value was NOT written).
func (c *chunk) append(v float64) bool {
	vb := math.Float64bits(v)
	if c.count == 0 {
		if !c.room(64) {
			return false
		}
		c.writeBits(vb, 64)
		c.prev = vb
		c.count++
		return true
	}
	if !c.room(maxSampleBits) {
		return false
	}
	xor := c.prev ^ vb
	if xor == 0 {
		c.writeBits(0, 1)
	} else {
		c.writeBits(1, 1)
		lead := uint8(bits.LeadingZeros64(xor))
		if lead > 31 { // 5-bit field; extra leading zeros ride in the payload
			lead = 31
		}
		trail := uint8(bits.TrailingZeros64(xor))
		if c.leading != leadingSentinel && lead >= c.leading && trail >= c.trailing {
			// Fits the established window: control 0 + meaningful bits.
			c.writeBits(0, 1)
			sig := uint(64 - c.leading - c.trailing)
			c.writeBits(xor>>c.trailing, sig)
		} else {
			// New window: control 1 + 5-bit leading + 6-bit (sig-1) + bits.
			c.writeBits(1, 1)
			c.leading, c.trailing = lead, trail
			sig := uint(64 - lead - trail)
			c.writeBits(uint64(lead), 5)
			c.writeBits(uint64(sig-1), 6)
			c.writeBits(xor>>trail, sig)
		}
	}
	c.prev = vb
	c.count++
	return true
}

// lastTick returns the tick of the final sample for the given column step.
func (c *chunk) lastTick(step uint64) uint64 {
	if c.count == 0 {
		return c.start
	}
	return c.start + uint64(c.count-1)*step
}

// chunkIter decodes a chunk sequentially.
type chunkIter struct {
	buf      []byte
	total    uint32
	i        uint32
	bits     uint32
	prev     uint64
	leading  uint8
	trailing uint8
}

func (c *chunk) iter() chunkIter {
	return chunkIter{buf: c.buf, total: c.count, leading: leadingSentinel}
}

func (it *chunkIter) readBits(n uint) uint64 {
	var v uint64
	for n > 0 {
		byteIdx := it.bits >> 3
		bitOff := uint(it.bits & 7)
		avail := 8 - bitOff
		take := n
		if take > avail {
			take = avail
		}
		part := (it.buf[byteIdx] >> (avail - take)) & byte((1<<take)-1)
		v = v<<take | uint64(part)
		it.bits += uint32(take)
		n -= take
	}
	return v
}

// next decodes the following sample; ok is false past the end.
func (it *chunkIter) next() (float64, bool) {
	if it.i >= it.total {
		return 0, false
	}
	if it.i == 0 {
		it.prev = it.readBits(64)
		it.i++
		return math.Float64frombits(it.prev), true
	}
	it.i++
	if it.readBits(1) == 0 {
		return math.Float64frombits(it.prev), true
	}
	if it.readBits(1) == 1 {
		it.leading = uint8(it.readBits(5))
		sig := uint8(it.readBits(6)) + 1
		it.trailing = 64 - it.leading - sig
	}
	sig := uint(64 - it.leading - it.trailing)
	xor := it.readBits(sig) << it.trailing
	it.prev ^= xor
	return math.Float64frombits(it.prev), true
}
