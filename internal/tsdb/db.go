package tsdb

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"skynet/internal/telemetry"
)

// Config sizes a DB. The zero value takes every default.
type Config struct {
	// RawRetention is how many ticks of raw-resolution history to keep
	// (default 4096; 0 picks the default, negative keeps everything).
	RawRetention int
	// Tier10Retention / Tier100Retention bound the downsample tiers, in
	// raw ticks (defaults 40960 / 409600).
	Tier10Retention  int
	Tier100Retention int
	// RecentWindow is the per-series uncompressed tail ring, in ticks
	// (default 512). Tail reads never touch the compressed chunks.
	RecentWindow int
	// Filter, when set, decides which metric names are stored; nil keeps
	// everything. The filter must be a pure function of the name so that
	// two stores fed the same samples hold the same series.
	Filter func(name string) bool
}

func (c Config) withDefaults() Config {
	pick := func(v, def int) int {
		switch {
		case v == 0:
			return def
		case v < 0:
			return 0 // keep all
		default:
			return v
		}
	}
	c.RawRetention = pick(c.RawRetention, 4096)
	c.Tier10Retention = pick(c.Tier10Retention, 40960)
	c.Tier100Retention = pick(c.Tier100Retention, 409600)
	if c.RecentWindow <= 0 {
		c.RecentWindow = 512
	}
	return c
}

// DB is the embedded store: a set of named tick-indexed series sharing
// one chunk freelist. Writers (the per-tick sampler) and readers (HTTP
// query handlers, the SLO engine, dump writers) synchronize on one
// RWMutex; the write path holds it once per tick for all series.
type DB struct {
	mu      sync.RWMutex
	cfg     Config
	byName  map[string]*Series
	ordered []*Series // insertion order; sorted views sort on demand
	free    *chunk    // freelist of recycled chunks
	lastT   uint64

	// Exposition counters are atomics so GaugeFuncs never take db.mu —
	// the sampler reads them while holding the write lock.
	seriesN    atomic.Int64
	samplesN   atomic.Int64
	bytesN     atomic.Int64
	chunksNewN atomic.Int64
	recycledN  atomic.Int64
}

// New creates an empty store.
func New(cfg Config) *DB {
	return &DB{cfg: cfg.withDefaults(), byName: make(map[string]*Series)}
}

// getChunk pops a recycled chunk or allocates one. Called with db.mu held.
func (db *DB) getChunk() *chunk {
	if c := db.free; c != nil {
		db.free = c.next
		c.next = nil
		db.recycledN.Add(1)
		return c
	}
	db.chunksNewN.Add(1)
	db.bytesN.Add(chunkDataBytes)
	return newChunk()
}

// putChunk returns a retired chunk to the freelist. Called with db.mu held.
func (db *DB) putChunk(c *chunk) {
	c.reset()
	c.next = db.free
	db.free = c
}

// seriesLocked returns the named series, creating it on first use.
// Called with db.mu held.
func (db *DB) seriesLocked(name string) *Series {
	if s, ok := db.byName[name]; ok {
		return s
	}
	s := &Series{
		name:   name,
		recent: make([]float64, db.cfg.RecentWindow),
		raw:    column{step: 1, maxTicks: uint64(db.cfg.RawRetention)},
		t10m:   column{step: 10, maxTicks: uint64(db.cfg.Tier10Retention)},
		t10x:   column{step: 10, maxTicks: uint64(db.cfg.Tier10Retention)},
		t100m:  column{step: 100, maxTicks: uint64(db.cfg.Tier100Retention)},
		t100x:  column{step: 100, maxTicks: uint64(db.cfg.Tier100Retention)},
	}
	db.byName[name] = s
	db.ordered = append(db.ordered, s)
	db.seriesN.Add(1)
	db.bytesN.Add(int64(len(s.recent)) * 8)
	return s
}

// Append records one sample outside a sampler cycle (tests, ad-hoc use).
func (db *DB) Append(name string, tick uint64, v float64) {
	db.mu.Lock()
	db.seriesLocked(name).append(db, tick, v)
	if tick > db.lastT {
		db.lastT = tick
	}
	db.samplesN.Add(1)
	db.mu.Unlock()
}

// LastTick reports the newest tick any series holds.
func (db *DB) LastTick() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.lastT
}

// SeriesNames returns every stored series name, sorted.
func (db *DB) SeriesNames() []string {
	db.mu.RLock()
	out := make([]string, 0, len(db.ordered))
	for _, s := range db.ordered {
		out = append(out, s.name)
	}
	db.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Tail copies the newest n raw samples of one series (oldest first) into
// buf and returns the filled slice; ok is false for an unknown series.
// The result length may be shorter than n when the series is younger
// than n ticks.
func (db *DB) Tail(name string, n int, buf []float64) ([]float64, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s, ok := db.byName[name]
	if !ok {
		return buf[:0], false
	}
	return s.tail(n, buf), true
}

// Point is one sample of a query result.
type Point struct {
	Tick  uint64  `json:"tick"`
	Value float64 `json:"value"`
	Max   float64 `json:"max,omitempty"` // downsampled results: block max
}

// QueryResult is the JSON shape of GET /api/query.
type QueryResult struct {
	Metric string  `json:"metric"`
	From   uint64  `json:"from"`
	To     uint64  `json:"to"`
	Step   uint64  `json:"step"`
	Source string  `json:"source"` // raw | 10-tick | 100-tick
	Points []Point `json:"points"`
}

// Query reads one series over [from, to] at the requested step (0 or 1 =
// raw resolution). Steps ≥ 10 read the mean/max downsample tiers; the
// result is re-bucketed to exactly the requested step by averaging means
// and taking the max of maxes, with buckets aligned to absolute tick
// multiples of step.
func (db *DB) Query(metric string, from, to, step uint64) (QueryResult, error) {
	if step == 0 {
		step = 1
	}
	res := QueryResult{Metric: metric, From: from, To: to, Step: step}
	db.mu.RLock()
	defer db.mu.RUnlock()
	s, ok := db.byName[metric]
	if !ok {
		return res, fmt.Errorf("tsdb: unknown series %q", metric)
	}
	if to == 0 || to > s.last {
		to = s.last
		res.To = to
	}
	if from > to {
		return res, nil
	}
	var mean, max *column
	switch {
	case step >= 100:
		mean, max = &s.t100m, &s.t100x
		res.Source = "100-tick"
	case step >= 10:
		mean, max = &s.t10m, &s.t10x
		res.Source = "10-tick"
	default:
		res.Source = "raw"
	}
	if res.Source == "raw" {
		s.raw.visit(from, to, func(tick uint64, v float64) {
			res.Points = append(res.Points, Point{Tick: tick, Value: v})
		})
		return res, nil
	}
	// Bucket tier samples into the requested step. Tier blocks are
	// step-10/step-100 aligned, so buckets of any multiple re-aggregate
	// exactly.
	var (
		cur   Point
		curN  int
		open  bool
		flush = func() {
			if open && curN > 0 {
				cur.Value /= float64(curN)
				res.Points = append(res.Points, cur)
			}
			open = false
		}
	)
	maxAt := map[uint64]float64{}
	max.visit(from, to, func(tick uint64, v float64) { maxAt[tick] = v })
	mean.visit(from, to, func(tick uint64, v float64) {
		bucket := tick - tick%step
		if !open || bucket != cur.Tick {
			flush()
			cur = Point{Tick: bucket}
			curN = 0
			open = true
		}
		cur.Value += v
		curN++
		if m, ok := maxAt[tick]; ok && (curN == 1 || m > cur.Max) {
			cur.Max = m
		}
	})
	flush()
	return res, nil
}

// MemoryBytes reports the store's resident footprint: chunk payloads plus
// recent-window rings (freelist chunks included — they are still resident).
func (db *DB) MemoryBytes() int64 { return db.bytesN.Load() }

// Samples reports the total samples ever appended.
func (db *DB) Samples() int64 { return db.samplesN.Load() }

// RegisterMetrics publishes the store's own accounting. The callbacks
// read atomics only — never db.mu — so the sampler can sample them while
// holding the write lock.
func (db *DB) RegisterMetrics(reg *telemetry.Registry) {
	reg.GaugeFunc("skynet_tsdb_series",
		"Series held by the telemetry history store.",
		func() float64 { return float64(db.seriesN.Load()) })
	reg.CounterFunc("skynet_tsdb_samples_total",
		"Samples appended to the telemetry history store.",
		func() float64 { return float64(db.samplesN.Load()) })
	reg.GaugeFunc("skynet_tsdb_bytes",
		"Resident bytes of the telemetry history store (chunks + tail rings).",
		func() float64 { return float64(db.bytesN.Load()) })
	reg.CounterFunc("skynet_tsdb_chunks_allocated_total",
		"Chunks ever allocated by the history store.",
		func() float64 { return float64(db.chunksNewN.Load()) })
	reg.CounterFunc("skynet_tsdb_chunks_recycled_total",
		"Chunk reuses served from the history store freelist.",
		func() float64 { return float64(db.recycledN.Load()) })
}

// SeriesSnapshot is the portable form of one series in SnapshotTo.
type SeriesSnapshot struct {
	Name    string    `json:"name"`
	First   uint64    `json:"first_tick"`
	Last    uint64    `json:"last_tick"`
	Samples uint64    `json:"samples"`
	RawFrom uint64    `json:"raw_from"` // oldest retained raw tick
	Raw     []float64 `json:"raw"`
	T10Mean []float64 `json:"t10_mean,omitempty"`
	T10Max  []float64 `json:"t10_max,omitempty"`
}

// Snapshot decodes every retained series, sorted by name — the shutdown
// artifact and the byte-exact comparison surface of the determinism
// tests.
type Snapshot struct {
	TakenAt  string           `json:"taken_at,omitempty"` // wall stamp, caller-provided
	LastTick uint64           `json:"last_tick"`
	Series   []SeriesSnapshot `json:"series"`
}

// SnapshotAt builds a Snapshot. at may be zero (omitted from the JSON) —
// the determinism tests rely on that: everything else in the snapshot is
// a pure function of the appended samples.
func (db *DB) SnapshotAt(at time.Time) Snapshot {
	db.mu.RLock()
	defer db.mu.RUnlock()
	snap := Snapshot{LastTick: db.lastT}
	if !at.IsZero() {
		snap.TakenAt = at.UTC().Format(time.RFC3339Nano)
	}
	names := make([]*Series, len(db.ordered))
	copy(names, db.ordered)
	sort.Slice(names, func(i, j int) bool { return names[i].name < names[j].name })
	for _, s := range names {
		ss := SeriesSnapshot{Name: s.name, First: s.first, Last: s.last, Samples: s.n}
		first := true
		s.raw.visit(0, ^uint64(0), func(tick uint64, v float64) {
			if first {
				ss.RawFrom = tick
				first = false
			}
			ss.Raw = append(ss.Raw, v)
		})
		s.t10m.visit(0, ^uint64(0), func(_ uint64, v float64) { ss.T10Mean = append(ss.T10Mean, v) })
		s.t10x.visit(0, ^uint64(0), func(_ uint64, v float64) { ss.T10Max = append(ss.T10Max, v) })
		snap.Series = append(snap.Series, ss)
	}
	return snap
}

// SnapshotTo writes the snapshot as deterministic JSON: series sorted by
// name, floats in shortest round-trip form, one series per line.
func (db *DB) SnapshotTo(w io.Writer, at time.Time) error {
	snap := db.SnapshotAt(at)
	var b strings.Builder
	b.WriteString("{")
	if snap.TakenAt != "" {
		fmt.Fprintf(&b, "%q:%q,", "taken_at", snap.TakenAt)
	}
	fmt.Fprintf(&b, "%q:%d,%q:[", "last_tick", snap.LastTick, "series")
	for i := range snap.Series {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString("\n")
		writeSeriesJSON(&b, &snap.Series[i])
	}
	b.WriteString("\n]}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func writeSeriesJSON(b *strings.Builder, s *SeriesSnapshot) {
	fmt.Fprintf(b, "{%q:%q,%q:%d,%q:%d,%q:%d,%q:%d,%q:",
		"name", s.Name, "first_tick", s.First, "last_tick", s.Last,
		"samples", s.Samples, "raw_from", s.RawFrom, "raw")
	writeFloats(b, s.Raw)
	fmt.Fprintf(b, ",%q:", "t10_mean")
	writeFloats(b, s.T10Mean)
	fmt.Fprintf(b, ",%q:", "t10_max")
	writeFloats(b, s.T10Max)
	b.WriteString("}")
}

func writeFloats(b *strings.Builder, vs []float64) {
	b.WriteString("[")
	for i, v := range vs {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
	b.WriteString("]")
}
