package tsdb

import (
	"math"
	"testing"
)

// decodeAll drains a chunk's iterator.
func decodeAll(t *testing.T, c *chunk) []float64 {
	t.Helper()
	out := make([]float64, 0, c.count)
	it := c.iter()
	for {
		v, ok := it.next()
		if !ok {
			break
		}
		out = append(out, v)
	}
	if _, ok := it.next(); ok {
		t.Fatal("iterator yielded a value past the end")
	}
	return out
}

// sameBits compares float slices bit-exactly, so NaN and -0 round-trips
// are checked too.
func sameBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestChunkRoundTrip pins the XOR codec on the value shapes the sampler
// produces: flat gauges (repeat bits), integer ramps (window reuse), sign
// flips and exponent jumps (window re-size), and the IEEE specials.
func TestChunkRoundTrip(t *testing.T) {
	ramp := make([]float64, 120)
	for i := range ramp {
		ramp[i] = float64(i)
	}
	cases := map[string][]float64{
		"constant":    {3.5, 3.5, 3.5, 3.5, 3.5, 3.5},
		"ramp":        ramp,
		"gauge-steps": {0, 0, 0, 5, 5, 5, 2, 2, 2, 2, 7, 7, 0, 0},
		"sign-flips":  {1.5, -1.5, 2.25, math.Copysign(0, -1), 0, -1e10, 1e10},
		"exponents":   {1e-300, 1e300, 2, 6.02214076e23, 1e-9, 0.1},
		"specials":    {0, math.Inf(1), math.Inf(-1), math.NaN(), 42, math.NaN()},
	}
	for name, vals := range cases {
		c := newChunk()
		for i, v := range vals {
			if !c.append(v) {
				t.Fatalf("%s: chunk full after only %d samples", name, i)
			}
		}
		got := decodeAll(t, c)
		if !sameBits(got, vals) {
			t.Errorf("%s: decoded %v, want %v", name, got, vals)
		}
	}
}

// TestChunkFullRefusesWithoutWriting pins the seal contract: a full chunk
// returns false from append and the rejected value must NOT appear in the
// decoded stream.
func TestChunkFullRefusesWithoutWriting(t *testing.T) {
	c := newChunk()
	var want []float64
	for i := 0; ; i++ {
		// Irrational-ish values keep most mantissa bits busy, so the chunk
		// fills in a few dozen samples instead of thousands.
		v := math.Sqrt(float64(i) + 2)
		if !c.append(v) {
			break
		}
		want = append(want, v)
	}
	if len(want) == 0 {
		t.Fatal("chunk refused its first sample")
	}
	if c.count != uint32(len(want)) {
		t.Fatalf("count %d, want %d", c.count, len(want))
	}
	if c.append(12345.6789) {
		t.Fatal("full chunk accepted another sample")
	}
	if got := decodeAll(t, c); !sameBits(got, want) {
		t.Fatalf("decode after refusal diverged: got %d samples, want %d", len(got), len(want))
	}
}

// TestChunkResetReusable pins the freelist contract: a reset chunk
// encodes a fresh stream with no residue from its previous life.
func TestChunkResetReusable(t *testing.T) {
	c := newChunk()
	for i := 0; i < 50; i++ {
		if !c.append(math.Sqrt(float64(i) + 3)) {
			break
		}
	}
	c.reset()
	if c.count != 0 || c.bits != 0 || c.leading != leadingSentinel {
		t.Fatalf("reset left state behind: count=%d bits=%d leading=%#x", c.count, c.bits, c.leading)
	}
	want := []float64{7, 7, 8.25, -1, 7}
	for _, v := range want {
		if !c.append(v) {
			t.Fatal("reset chunk refused a sample")
		}
	}
	if got := decodeAll(t, c); !sameBits(got, want) {
		t.Fatalf("recycled chunk decoded %v, want %v", got, want)
	}
}

// TestChunkFlatSeriesDensity guards the ~1.1 bits/sample claim for flat
// gauges: a constant series must pack well over a thousand samples into
// one 256-byte chunk.
func TestChunkFlatSeriesDensity(t *testing.T) {
	c := newChunk()
	n := 0
	for c.append(0.25) {
		n++
	}
	if n < 1500 {
		t.Fatalf("constant series packed only %d samples per chunk", n)
	}
}
