package tsdb

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"skynet/internal/telemetry"
)

// TestDownsampleTiers pins the 10- and 100-tick mean/max tiers on an
// integer ramp, where block aggregates have exact closed forms.
func TestDownsampleTiers(t *testing.T) {
	db := New(Config{})
	for tick := uint64(0); tick < 200; tick++ {
		db.Append("m", tick, float64(tick))
	}

	res, err := db.Query("m", 0, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "10-tick" || len(res.Points) != 20 {
		t.Fatalf("step 10: source %q, %d points", res.Source, len(res.Points))
	}
	for k, p := range res.Points {
		base := float64(k * 10)
		if p.Tick != uint64(k*10) || p.Value != base+4.5 || p.Max != base+9 {
			t.Fatalf("block %d: got (tick=%d mean=%g max=%g), want (%d %g %g)",
				k, p.Tick, p.Value, p.Max, k*10, base+4.5, base+9)
		}
	}

	res, err = db.Query("m", 0, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "100-tick" || len(res.Points) != 2 {
		t.Fatalf("step 100: source %q, %d points", res.Source, len(res.Points))
	}
	want := []Point{{Tick: 0, Value: 49.5, Max: 99}, {Tick: 100, Value: 149.5, Max: 199}}
	for i, p := range res.Points {
		if p != want[i] {
			t.Fatalf("100-tick block %d: got %+v, want %+v", i, p, want[i])
		}
	}
}

// TestDownsamplePartialFirstBlock pins block alignment for a series that
// appears mid-block: the first block is a partial aggregate over the
// ticks the series actually saw, and every later block is exact.
func TestDownsamplePartialFirstBlock(t *testing.T) {
	db := New(Config{})
	for tick := uint64(7); tick <= 29; tick++ {
		db.Append("m", tick, float64(tick))
	}
	res, err := db.Query("m", 0, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Block 0 saw ticks 7..9 only.
	want := []Point{{Tick: 0, Value: 8, Max: 9}, {Tick: 10, Value: 14.5, Max: 19}, {Tick: 20, Value: 24.5, Max: 29}}
	if len(res.Points) != len(want) {
		t.Fatalf("got %d points, want %d", len(res.Points), len(want))
	}
	for i, p := range res.Points {
		if p != want[i] {
			t.Fatalf("block %d: got %+v, want %+v", i, p, want[i])
		}
	}
}

// TestQueryRebucketsTierMultiples pins re-aggregation at steps that are
// multiples of the tier resolution: means of means, max of maxes, buckets
// aligned to absolute tick multiples of the requested step.
func TestQueryRebucketsTierMultiples(t *testing.T) {
	db := New(Config{})
	for tick := uint64(0); tick < 200; tick++ {
		db.Append("m", tick, float64(tick))
	}

	res, err := db.Query("m", 0, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "10-tick" || len(res.Points) != 10 {
		t.Fatalf("step 20: source %q, %d points", res.Source, len(res.Points))
	}
	for k, p := range res.Points {
		base := float64(k * 20)
		if p.Tick != uint64(k*20) || p.Value != base+9.5 || p.Max != base+19 {
			t.Fatalf("bucket %d: got (tick=%d mean=%g max=%g), want (%d %g %g)",
				k, p.Tick, p.Value, p.Max, k*20, base+9.5, base+19)
		}
	}

	res, err = db.Query("m", 0, 0, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "100-tick" || len(res.Points) != 1 {
		t.Fatalf("step 200: source %q, %d points", res.Source, len(res.Points))
	}
	if p := res.Points[0]; p.Tick != 0 || p.Value != 99.5 || p.Max != 199 {
		t.Fatalf("step 200 bucket: got %+v", p)
	}
}

// TestQueryRawAndBounds pins the raw path and the range edge cases.
func TestQueryRawAndBounds(t *testing.T) {
	db := New(Config{})
	for tick := uint64(0); tick < 50; tick++ {
		db.Append("m", tick, float64(tick)*0.5)
	}

	res, err := db.Query("m", 10, 19, 0) // step 0 means raw
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "raw" || res.Step != 1 || len(res.Points) != 10 {
		t.Fatalf("raw window: source %q step %d, %d points", res.Source, res.Step, len(res.Points))
	}
	for i, p := range res.Points {
		if p.Tick != uint64(10+i) || p.Value != float64(10+i)*0.5 {
			t.Fatalf("point %d: got %+v", i, p)
		}
	}

	// to=0 clamps to the series' newest tick.
	res, err = db.Query("m", 45, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.To != 49 || len(res.Points) != 5 {
		t.Fatalf("clamped query: to=%d, %d points", res.To, len(res.Points))
	}

	// An inverted range is empty, not an error.
	res, err = db.Query("m", 30, 20, 1)
	if err != nil || len(res.Points) != 0 {
		t.Fatalf("inverted range: err=%v, %d points", err, len(res.Points))
	}

	if _, err := db.Query("nope", 0, 0, 1); err == nil {
		t.Fatal("unknown series did not error")
	}
}

// TestTailReadsRing pins the uncompressed tail: oldest-first order,
// clamping to both the series age and the ring size, and the unknown-
// series miss.
func TestTailReadsRing(t *testing.T) {
	db := New(Config{RecentWindow: 16})
	for tick := uint64(0); tick < 100; tick++ {
		db.Append("m", tick, float64(tick))
	}

	buf, ok := db.Tail("m", 8, nil)
	if !ok || len(buf) != 8 {
		t.Fatalf("tail(8): ok=%t len=%d", ok, len(buf))
	}
	for i, v := range buf {
		if v != float64(92+i) {
			t.Fatalf("tail(8)[%d] = %g, want %d", i, v, 92+i)
		}
	}

	// Requests past the ring clamp to the ring.
	buf, ok = db.Tail("m", 100, buf)
	if !ok || len(buf) != 16 {
		t.Fatalf("tail(100): ok=%t len=%d, want ring size 16", ok, len(buf))
	}
	if buf[0] != 84 || buf[15] != 99 {
		t.Fatalf("tail(100) spans [%g, %g], want [84, 99]", buf[0], buf[15])
	}

	// A young series yields only what it has.
	db.Append("young", 0, 1)
	db.Append("young", 1, 2)
	buf, ok = db.Tail("young", 10, buf)
	if !ok || len(buf) != 2 || buf[0] != 1 || buf[1] != 2 {
		t.Fatalf("young tail: ok=%t %v", ok, buf)
	}

	if _, ok := db.Tail("nope", 4, nil); ok {
		t.Fatal("unknown series reported ok")
	}
}

// TestRetentionRecyclesChunks drives one series far past a small raw
// retention horizon and asserts the expired chunks are recycled through
// the freelist, the resident footprint stays bounded, and the surviving
// window still decodes exactly.
func TestRetentionRecyclesChunks(t *testing.T) {
	db := New(Config{RawRetention: 256, Tier10Retention: 2560, Tier100Retention: 25600, RecentWindow: 32})
	value := func(tick uint64) float64 { return math.Sin(float64(tick) * 0.7) }
	const ticks = 50000
	for tick := uint64(0); tick < ticks; tick++ {
		db.Append("m", tick, value(tick))
	}

	if db.recycledN.Load() == 0 {
		t.Fatal("retention never recycled a chunk")
	}
	s := db.byName["m"]
	if s.raw.dropped == 0 {
		t.Fatal("raw column reports zero dropped samples")
	}
	if n := s.raw.samples(); n > 4096 {
		t.Fatalf("raw column retains %d samples despite a 256-tick horizon", n)
	}
	// Steady state pulls chunks from the freelist, so fresh allocations
	// stay near the live-chunk high water instead of growing with time.
	if allocated := db.chunksNewN.Load(); allocated > 100 {
		t.Fatalf("allocated %d chunks over the run; freelist is not recycling", allocated)
	}
	if mem := db.MemoryBytes(); mem > 1<<20 {
		t.Fatalf("resident footprint %d bytes for one bounded series", mem)
	}

	res, err := db.Query("m", ticks-50, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 50 {
		t.Fatalf("post-retention raw window has %d points, want 50", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Value != value(p.Tick) {
			t.Fatalf("tick %d decoded %g, want %g", p.Tick, p.Value, value(p.Tick))
		}
	}
}

// TestSnapshotDeterministicBytes pins the snapshot contract: two stores
// fed the same samples serialize to the same bytes, a zero stamp omits
// taken_at entirely, and the output is valid JSON either way.
func TestSnapshotDeterministicBytes(t *testing.T) {
	feed := func() *DB {
		db := New(Config{})
		for tick := uint64(0); tick < 500; tick++ {
			db.Append("b_second", tick, math.Cos(float64(tick)*0.3))
			db.Append("a_first", tick, float64(tick%17)*0.25)
		}
		return db
	}
	snapshot := func(db *DB, at time.Time) string {
		var buf bytes.Buffer
		if err := db.SnapshotTo(&buf, at); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	a, b := snapshot(feed(), time.Time{}), snapshot(feed(), time.Time{})
	if a != b {
		t.Fatal("identically-fed stores produced different snapshot bytes")
	}
	if strings.Contains(a, "taken_at") {
		t.Fatal("zero-stamp snapshot contains taken_at")
	}
	if !json.Valid([]byte(a)) {
		t.Fatal("snapshot is not valid JSON")
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(a), &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Series) != 2 || snap.Series[0].Name != "a_first" || snap.Series[1].Name != "b_second" {
		t.Fatalf("snapshot series not sorted by name: %+v", snap.Series)
	}

	stamped := snapshot(feed(), time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC))
	if !strings.Contains(stamped, `"taken_at":"2026-08-08T12:00:00Z"`) {
		t.Fatal("stamped snapshot missing taken_at")
	}
	if !json.Valid([]byte(stamped)) {
		t.Fatal("stamped snapshot is not valid JSON")
	}
}

// TestSamplerPicksUpNewSeries pins handle re-resolution: a metric
// registered mid-run starts recording at the next tick, the tick-latency
// series takes the sampler's direct value, and the store filter is
// honored.
func TestSamplerPicksUpNewSeries(t *testing.T) {
	reg := telemetry.New()
	ctr := reg.Counter("skynet_smoke_total", "Test counter.")
	reg.Gauge("skynet_pipeline_workers", "Filtered out by DeterministicFilter.").Set(8)
	db := New(Config{Filter: DeterministicFilter})
	sp := NewSampler(db, reg)

	for tick := uint64(0); tick < 10; tick++ {
		ctr.Add(2)
		sp.ObserveTick(tick, 0.25)
	}
	late := reg.Gauge("skynet_late_depth", "Registered mid-run.")
	for tick := uint64(10); tick < 20; tick++ {
		late.Set(float64(tick))
		sp.ObserveTick(tick, 0.25)
	}

	res, err := db.Query("skynet_late_depth", 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Points[0].Tick != 10 {
		t.Fatalf("late series first tick %d, want 10", res.Points[0].Tick)
	}
	tail, ok := db.Tail(MetricTickDuration, 1, nil)
	if !ok || tail[0] != 0.25 {
		t.Fatalf("tick-duration tail: ok=%t %v", ok, tail)
	}
	if _, err := db.Query("skynet_pipeline_workers", 0, 0, 1); err == nil {
		t.Fatal("filtered metric was stored anyway")
	}
}

// TestDeterministicFilter pins the drop list: anything wall-clock-, host-
// or fan-out-dependent is excluded; pipeline counters stay.
func TestDeterministicFilter(t *testing.T) {
	keep := []string{
		"skynet_raw_alerts_total",
		"skynet_active_incidents",
		"skynet_preprocess_pending_depth",
		"skynet_self_alerts_total",
	}
	drop := []string{
		"skynet_tick_duration_seconds",
		"skynet_stage_locate_seconds_sum",
		"skynet_replay_alerts_per_second",
		"skynet_pipeline_workers",
		"skynet_tsdb_bytes",
		"skynet_flight_dumps_total",
		"skynet_preprocess_shard_0_aggregates",
		"skynet_locator_shard_3_nodes",
		"skynet_fanout_subscribers",
		"skynet_fanout_dropped_total",
	}
	for _, name := range keep {
		if !DeterministicFilter(name) {
			t.Errorf("filter drops %s, want keep", name)
		}
	}
	for _, name := range drop {
		if DeterministicFilter(name) {
			t.Errorf("filter keeps %s, want drop", name)
		}
	}
}

// TestSamplerSteadyStateAllocs is the allocation pin from the issue's
// acceptance criteria: once handles are resolved and the chunk freelist
// is warm, a sampler tick — every registered metric appended across all
// tiers, retention included — allocates nothing.
func TestSamplerSteadyStateAllocs(t *testing.T) {
	reg := telemetry.New()
	ctr := reg.Counter("skynet_smoke_events_total", "Test counter.")
	g := reg.Gauge("skynet_smoke_depth", "Test gauge.")
	db := New(Config{RawRetention: 64, Tier10Retention: 640, Tier100Retention: 6400, RecentWindow: 32})
	sp := NewSampler(db, reg)

	tick := uint64(0)
	step := func() {
		ctr.Add(3)
		g.Set(float64(tick % 113))
		sp.ObserveTick(tick, 0.0015)
		tick++
	}
	// Warm far past every retention horizon so sealed-slice capacity and
	// the freelist reach steady state.
	for tick < 20000 {
		step()
	}
	if db.recycledN.Load() == 0 {
		t.Fatal("warmup never recycled a chunk; the measurement would not cover retention")
	}
	if allocs := testing.AllocsPerRun(2000, step); allocs != 0 {
		t.Fatalf("sampler steady state allocates %.3f allocs/tick, want 0", allocs)
	}
}
