package tsdb

// column is one resolution tier of a series: a run of sealed chunks plus
// the open chunk being appended to. step is the tick stride between
// consecutive samples (1 raw, 10 and 100 for the downsample tiers).
type column struct {
	step     uint64
	maxTicks uint64 // retention horizon in raw ticks; 0 = keep all
	sealed   []*chunk
	cur      *chunk
	dropped  uint64 // samples discarded by retention
}

// append encodes one sample at the given tick. Ticks must arrive in
// strictly increasing step-aligned order — the sampler guarantees it.
func (col *column) append(db *DB, tick uint64, v float64) {
	if col.cur == nil {
		col.cur = db.getChunk()
		col.cur.start = tick
	}
	if col.cur.append(v) {
		return
	}
	col.seal(db, tick)
	col.cur = db.getChunk()
	col.cur.start = tick
	col.cur.append(v) // fresh chunk always fits the first sample
}

// seal retires the open chunk and enforces retention: sealed chunks whose
// newest sample is older than nowTick-maxTicks go back to the freelist.
// The slice is compacted in place (memmove, no allocation once capacity
// has grown to the steady-state chunk count).
func (col *column) seal(db *DB, nowTick uint64) {
	col.sealed = append(col.sealed, col.cur)
	col.cur = nil
	if col.maxTicks == 0 || nowTick < col.maxTicks {
		return
	}
	cut := nowTick - col.maxTicks
	drop := 0
	for drop < len(col.sealed) && col.sealed[drop].lastTick(col.step) < cut {
		col.dropped += uint64(col.sealed[drop].count)
		db.putChunk(col.sealed[drop])
		drop++
	}
	if drop > 0 {
		n := copy(col.sealed, col.sealed[drop:])
		for i := n; i < len(col.sealed); i++ {
			col.sealed[i] = nil
		}
		col.sealed = col.sealed[:n]
	}
}

// oldestTick returns the tick of the oldest retained sample (ok=false
// when the column is empty).
func (col *column) oldestTick() (uint64, bool) {
	if len(col.sealed) > 0 {
		return col.sealed[0].start, true
	}
	if col.cur != nil && col.cur.count > 0 {
		return col.cur.start, true
	}
	return 0, false
}

// visit decodes every retained sample overlapping [from, to] in tick
// order, calling fn(tick, value).
func (col *column) visit(from, to uint64, fn func(tick uint64, v float64)) {
	scan := func(c *chunk) {
		if c == nil || c.count == 0 || c.lastTick(col.step) < from || c.start > to {
			return
		}
		it := c.iter()
		tick := c.start
		for {
			v, ok := it.next()
			if !ok {
				break
			}
			if tick >= from && tick <= to {
				fn(tick, v)
			}
			tick += col.step
		}
	}
	for _, c := range col.sealed {
		scan(c)
	}
	scan(col.cur)
}

// samples reports how many samples the column retains.
func (col *column) samples() uint64 {
	var n uint64
	for _, c := range col.sealed {
		n += uint64(c.count)
	}
	if col.cur != nil {
		n += uint64(col.cur.count)
	}
	return n
}

// memBytes reports the column's chunk payload footprint.
func (col *column) memBytes() uint64 {
	n := uint64(len(col.sealed)) * chunkDataBytes
	if col.cur != nil {
		n += chunkDataBytes
	}
	return n
}

// Series is the tick-indexed history of one metric: a raw tier at tick
// resolution, mean and max tiers at 10- and 100-tick resolution, and an
// uncompressed recent-window ring for O(1) tail reads (the SLO engine's
// working set). Owned by the DB; all access goes through its lock.
type Series struct {
	name  string
	first uint64 // tick of the first sample
	last  uint64 // tick of the newest sample
	n     uint64 // samples ever appended

	recent []float64 // ring indexed by tick % len

	raw          column
	t10m, t10x   column // 10-tick mean / max
	t100m, t100x column // 100-tick mean / max

	aggN   int // 10-tick accumulator
	aggSum float64
	aggMax float64
	a2N    int // 100-tick accumulator
	a2Sum  float64
	a2Max  float64
}

// append records the sample for one tick. Ticks are consecutive per
// series (a series that appears mid-run simply starts at a later first
// tick). Downsample blocks align to absolute tick multiples — block k
// covers [k*10, k*10+9] — so a series appearing mid-block flushes a
// partial first block and every later block is exact.
func (s *Series) append(db *DB, tick uint64, v float64) {
	if s.n == 0 {
		s.first = tick
	}
	s.last = tick
	s.n++
	s.recent[tick%uint64(len(s.recent))] = v
	s.raw.append(db, tick, v)

	if s.aggN == 0 || v > s.aggMax {
		s.aggMax = v
	}
	s.aggSum += v
	s.aggN++
	if s.a2N == 0 || v > s.a2Max {
		s.a2Max = v
	}
	s.a2Sum += v
	s.a2N++
	if tick%10 == 9 {
		s.t10m.append(db, tick-tick%10, s.aggSum/float64(s.aggN))
		s.t10x.append(db, tick-tick%10, s.aggMax)
		s.aggN, s.aggSum, s.aggMax = 0, 0, 0
	}
	if tick%100 == 99 {
		s.t100m.append(db, tick-tick%100, s.a2Sum/float64(s.a2N))
		s.t100x.append(db, tick-tick%100, s.a2Max)
		s.a2N, s.a2Sum, s.a2Max = 0, 0, 0
	}
}

// tail copies the newest n raw samples (oldest first) into buf, growing
// it as needed, and returns the filled slice. Reads come from the
// uncompressed recent ring, so the SLO engine's per-tick reads never
// touch the compressed tiers.
func (s *Series) tail(n int, buf []float64) []float64 {
	if s.n == 0 || n <= 0 {
		return buf[:0]
	}
	span := uint64(n)
	if span > s.n {
		span = s.n
	}
	if ring := uint64(len(s.recent)); span > ring {
		span = ring
	}
	if cap(buf) < int(span) {
		buf = make([]float64, span)
	}
	buf = buf[:span]
	start := s.last - span + 1
	for i := uint64(0); i < span; i++ {
		buf[i] = s.recent[(start+i)%uint64(len(s.recent))]
	}
	return buf
}

// memBytes reports the series' resident footprint.
func (s *Series) memBytes() uint64 {
	return uint64(len(s.recent))*8 +
		s.raw.memBytes() +
		s.t10m.memBytes() + s.t10x.memBytes() +
		s.t100m.memBytes() + s.t100x.memBytes()
}
