package alert

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// This file implements the two wire encodings used by SkyNet's ingestion
// and trace layers:
//
//   - JSON Lines: one JSON object per line, used for trace files and the
//     TCP ingestion listener. Self-describing and extensible.
//   - A compact pipe-delimited line format used by the UDP listener, in
//     the spirit of the raw monitoring feeds shown in Figure 2b:
//     "<unix-nanos>|<source>|<type>|<class>|<location>|<value>|<raw>".

// MaxLineBytes bounds a single encoded alert line. Lines beyond this are
// rejected by decoders to protect the ingestion path from hostile or
// corrupt peers.
const MaxLineBytes = 64 * 1024

// ErrLineTooLong is returned when an encoded alert exceeds MaxLineBytes.
var ErrLineTooLong = errors.New("alert: encoded line exceeds limit")

// Encoder writes alerts as JSON Lines to an underlying writer.
// It is not safe for concurrent use.
type Encoder struct {
	w   *bufio.Writer
	enc *json.Encoder
}

// NewEncoder returns an Encoder writing to w.
func NewEncoder(w io.Writer) *Encoder {
	bw := bufio.NewWriter(w)
	return &Encoder{w: bw, enc: json.NewEncoder(bw)}
}

// Encode writes one alert as a JSON line.
func (e *Encoder) Encode(a *Alert) error {
	if err := e.enc.Encode(a); err != nil {
		return fmt.Errorf("alert: encode: %w", err)
	}
	return nil
}

// Flush flushes buffered output to the underlying writer.
func (e *Encoder) Flush() error { return e.w.Flush() }

// Decoder reads JSON Lines alerts from an underlying reader.
// It is not safe for concurrent use.
type Decoder struct {
	s *bufio.Scanner
}

// NewDecoder returns a Decoder reading from r. Lines longer than
// MaxLineBytes cause Decode to fail.
func NewDecoder(r io.Reader) *Decoder {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 4096), MaxLineBytes)
	return &Decoder{s: s}
}

// Decode reads the next alert. It returns io.EOF at end of input and skips
// blank lines.
func (d *Decoder) Decode(a *Alert) error {
	for d.s.Scan() {
		line := bytes.TrimSpace(d.s.Bytes())
		if len(line) == 0 {
			continue
		}
		*a = Alert{}
		if err := json.Unmarshal(line, a); err != nil {
			return fmt.Errorf("alert: decode: %w", err)
		}
		return nil
	}
	if err := d.s.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return ErrLineTooLong
		}
		return fmt.Errorf("alert: decode: %w", err)
	}
	return io.EOF
}

// ReadAll decodes every alert from r. It is a convenience for tests and
// trace loading; streaming consumers should use Decoder directly.
func ReadAll(r io.Reader) ([]Alert, error) {
	d := NewDecoder(r)
	var out []Alert
	for {
		var a Alert
		err := d.Decode(&a)
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, a)
	}
}

// WriteAll encodes every alert to w as JSON Lines.
func WriteAll(w io.Writer, alerts []Alert) error {
	e := NewEncoder(w)
	for i := range alerts {
		if err := e.Encode(&alerts[i]); err != nil {
			return err
		}
	}
	return e.Flush()
}

// AppendWire appends the compact pipe-delimited form of a to dst and
// returns the extended slice. The format is:
//
//	<unix-nanos>|<end-unix-nanos>|<source>|<type>|<class>|<location>|<peer>|<value>|<count>|<circuitset>|<raw>
//
// Location segments use hierarchy.Sep internally, so location fields are
// sub-delimited with "/" on the wire.
func AppendWire(dst []byte, a *Alert) []byte {
	dst = appendInt(dst, a.Time.UnixNano())
	dst = append(dst, '|')
	dst = appendInt(dst, a.End.UnixNano())
	dst = append(dst, '|')
	dst = append(dst, a.Source.String()...)
	dst = append(dst, '|')
	dst = append(dst, escapeWire(a.Type)...)
	dst = append(dst, '|')
	dst = append(dst, a.Class.String()...)
	dst = append(dst, '|')
	dst = a.Location.AppendString(dst, wireLocSep)
	dst = append(dst, '|')
	dst = a.Peer.AppendString(dst, wireLocSep)
	dst = append(dst, '|')
	dst = appendFloat(dst, a.Value)
	dst = append(dst, '|')
	dst = appendInt(dst, int64(a.Count))
	dst = append(dst, '|')
	dst = append(dst, escapeWire(a.CircuitSet)...)
	dst = append(dst, '|')
	dst = append(dst, escapeWire(a.Raw)...)
	return dst
}

// splitWire walks a wire line's fields in place (no slice-of-slices
// allocation). The returned sub-slices alias line; callers must
// materialize anything they keep. Shared by ParseWire and
// Batch.AppendWire so both decoders agree on framing exactly.
func splitWire(line []byte) ([11][]byte, error) {
	var fields [11][]byte
	if len(line) > MaxLineBytes {
		return fields, ErrLineTooLong
	}
	nf, start := 0, 0
	for i := 0; i <= len(line); i++ {
		if i == len(line) || line[i] == '|' {
			if nf < len(fields) {
				fields[nf] = line[start:i]
			}
			nf++
			start = i + 1
		}
	}
	if nf != 11 {
		return fields, fmt.Errorf("alert: wire: %d fields, want 11", nf)
	}
	return fields, nil
}

// ParseWire parses the compact pipe-delimited form produced by AppendWire.
// Every string field is materialized fresh; decoders on a hot loop should
// use WireScratch.ParseWire instead, which interns repeated values.
func ParseWire(line []byte) (Alert, error) {
	return parseWire(line, nil)
}

// ParseWire is ParseWire through the scratch's intern caches: decoding a
// line whose string fields have all been seen before is allocation-free.
func (sc *WireScratch) ParseWire(line []byte) (Alert, error) {
	return parseWire(line, sc)
}

func parseWire(line []byte, sc *WireScratch) (Alert, error) {
	fields, err := splitWire(line)
	if err != nil {
		return Alert{}, err
	}
	var a Alert
	startNanos, err := parseInt(fields[0])
	if err != nil {
		return Alert{}, fmt.Errorf("alert: wire time: %w", err)
	}
	endNanos, err := parseInt(fields[1])
	if err != nil {
		return Alert{}, fmt.Errorf("alert: wire end: %w", err)
	}
	a.Time = unixNano(startNanos)
	a.End = unixNano(endNanos)
	if a.Source, err = parseSourceBytes(fields[2]); err != nil {
		return Alert{}, err
	}
	a.Type = wireString(fields[3], sc)
	if a.Class, err = parseClassBytes(fields[4]); err != nil {
		return Alert{}, err
	}
	if a.Location, err = wireLoc(fields[5], sc); err != nil {
		return Alert{}, fmt.Errorf("alert: wire location: %w", err)
	}
	if a.Peer, err = wireLoc(fields[6], sc); err != nil {
		return Alert{}, fmt.Errorf("alert: wire peer: %w", err)
	}
	if a.Value, err = parseFloat(fields[7]); err != nil {
		return Alert{}, fmt.Errorf("alert: wire value: %w", err)
	}
	count, err := parseInt(fields[8])
	if err != nil {
		return Alert{}, fmt.Errorf("alert: wire count: %w", err)
	}
	a.Count = int(count)
	a.CircuitSet = wireString(fields[9], sc)
	a.Raw = wireString(fields[10], sc)
	return a, nil
}
