package alert

import (
	"fmt"
	"time"

	"skynet/internal/hierarchy"
)

// NoID marks a dense-ID column slot that has not been resolved yet. The
// intern tables live above this package (internal/intern imports alert),
// so Batch carries plain int32 IDs and the consumer assigns them.
const NoID int32 = -1

// Batch is a struct-of-arrays buffer of alerts: column i across every
// slice describes one alert. It is the hand-off unit between ingest and
// the preprocessor, replacing []Alert so the per-phase scans touch only
// the columns they need (cache-linear, no ~330-byte struct copies).
//
// Ownership model (DESIGN.md §9): the producer appends rows (Append /
// AppendWire) and never touches dense-ID columns; the consumer may
// normalize value columns in place and fills PID/TID/CS from its intern
// tables. A Batch is reused across ticks via Reset, which keeps column
// capacity — steady-state ingest allocates nothing.
type Batch struct {
	// Time/End span of each observation.
	Time []time.Time
	End  []time.Time
	// Source, Type, Class identify what happened.
	Source []Source
	Type   []string
	Class  []Class
	// Location/Peer place the observation in the hierarchy.
	Location []hierarchy.Path
	Peer     []hierarchy.Path
	// Value and Count carry magnitude and consolidation weight.
	Value []float64
	Count []int64
	// CircuitSet and Raw are the string payloads.
	CircuitSet []string
	Raw        []string
	// PID/TID/CS are the dense interned IDs of Location, (Source, Type)
	// and CircuitSet. Producers append NoID; the preprocessor's serial
	// intern pass resolves them so the parallel consolidate phase hashes
	// pure integers.
	PID []int32
	TID []int32
	CS  []int32
}

// Len returns the number of rows.
func (b *Batch) Len() int { return len(b.Time) }

// Reset truncates every column to zero length, keeping capacity so the
// batch can be refilled without allocating.
func (b *Batch) Reset() {
	b.Time = b.Time[:0]
	b.End = b.End[:0]
	b.Source = b.Source[:0]
	b.Type = b.Type[:0]
	b.Class = b.Class[:0]
	b.Location = b.Location[:0]
	b.Peer = b.Peer[:0]
	b.Value = b.Value[:0]
	b.Count = b.Count[:0]
	b.CircuitSet = b.CircuitSet[:0]
	b.Raw = b.Raw[:0]
	b.PID = b.PID[:0]
	b.TID = b.TID[:0]
	b.CS = b.CS[:0]
}

// Append adds one alert as a new row. The alert's ID is not carried:
// structured IDs are assigned downstream at emission.
func (b *Batch) Append(a *Alert) {
	b.Time = append(b.Time, a.Time)
	b.End = append(b.End, a.End)
	b.Source = append(b.Source, a.Source)
	b.Type = append(b.Type, a.Type)
	b.Class = append(b.Class, a.Class)
	b.Location = append(b.Location, a.Location)
	b.Peer = append(b.Peer, a.Peer)
	b.Value = append(b.Value, a.Value)
	b.Count = append(b.Count, int64(a.Count))
	b.CircuitSet = append(b.CircuitSet, a.CircuitSet)
	b.Raw = append(b.Raw, a.Raw)
	b.PID = append(b.PID, NoID)
	b.TID = append(b.TID, NoID)
	b.CS = append(b.CS, NoID)
}

// AppendRange bulk-appends rows [lo, hi) of src — one memmove per
// column instead of a per-row scatter. Dense-ID columns are copied as-is
// (producers only ever hold NoID there).
func (b *Batch) AppendRange(src *Batch, lo, hi int) {
	if lo >= hi {
		return
	}
	b.Time = append(b.Time, src.Time[lo:hi]...)
	b.End = append(b.End, src.End[lo:hi]...)
	b.Source = append(b.Source, src.Source[lo:hi]...)
	b.Type = append(b.Type, src.Type[lo:hi]...)
	b.Class = append(b.Class, src.Class[lo:hi]...)
	b.Location = append(b.Location, src.Location[lo:hi]...)
	b.Peer = append(b.Peer, src.Peer[lo:hi]...)
	b.Value = append(b.Value, src.Value[lo:hi]...)
	b.Count = append(b.Count, src.Count[lo:hi]...)
	b.CircuitSet = append(b.CircuitSet, src.CircuitSet[lo:hi]...)
	b.Raw = append(b.Raw, src.Raw[lo:hi]...)
	b.PID = append(b.PID, src.PID[lo:hi]...)
	b.TID = append(b.TID, src.TID[lo:hi]...)
	b.CS = append(b.CS, src.CS[lo:hi]...)
}

// AlertAt materializes row i into dst. dst's ID is zeroed; dense IDs are
// not part of the Alert shape.
func (b *Batch) AlertAt(i int, dst *Alert) {
	dst.ID = 0
	dst.Time = b.Time[i]
	dst.End = b.End[i]
	dst.Source = b.Source[i]
	dst.Type = b.Type[i]
	dst.Class = b.Class[i]
	dst.Location = b.Location[i]
	dst.Peer = b.Peer[i]
	dst.Value = b.Value[i]
	dst.Count = int(b.Count[i])
	dst.CircuitSet = b.CircuitSet[i]
	dst.Raw = b.Raw[i]
}

// AppendWire decodes one compact pipe-delimited line (the AppendWire /
// ParseWire format) straight into the columns, with no intermediate
// Alert struct. On error no partial row is left behind and nothing in
// the batch aliases the input buffer — line may be a reused socket
// buffer, so every string column is materialized by the decode.
func (b *Batch) AppendWire(line []byte) error {
	return b.appendWire(line, nil)
}

// AppendWireScratch is AppendWire through the scratch's intern caches:
// repeated type names, locations, and raw lines are decoded without
// allocating. The interned strings are shared across rows and batches —
// safe because batch consumers never mutate string columns in place.
func (b *Batch) AppendWireScratch(line []byte, sc *WireScratch) error {
	return b.appendWire(line, sc)
}

func (b *Batch) appendWire(line []byte, sc *WireScratch) error {
	fields, err := splitWire(line)
	if err != nil {
		return err
	}
	startNanos, err := parseInt(fields[0])
	if err != nil {
		return fmt.Errorf("alert: wire time: %w", err)
	}
	endNanos, err := parseInt(fields[1])
	if err != nil {
		return fmt.Errorf("alert: wire end: %w", err)
	}
	src, err := parseSourceBytes(fields[2])
	if err != nil {
		return err
	}
	class, err := parseClassBytes(fields[4])
	if err != nil {
		return err
	}
	loc, err := wireLoc(fields[5], sc)
	if err != nil {
		return fmt.Errorf("alert: wire location: %w", err)
	}
	peer, err := wireLoc(fields[6], sc)
	if err != nil {
		return fmt.Errorf("alert: wire peer: %w", err)
	}
	value, err := parseFloat(fields[7])
	if err != nil {
		return fmt.Errorf("alert: wire value: %w", err)
	}
	count, err := parseInt(fields[8])
	if err != nil {
		return fmt.Errorf("alert: wire count: %w", err)
	}
	b.Time = append(b.Time, unixNano(startNanos))
	b.End = append(b.End, unixNano(endNanos))
	b.Source = append(b.Source, src)
	b.Type = append(b.Type, wireString(fields[3], sc))
	b.Class = append(b.Class, class)
	b.Location = append(b.Location, loc)
	b.Peer = append(b.Peer, peer)
	b.Value = append(b.Value, value)
	b.Count = append(b.Count, count)
	b.CircuitSet = append(b.CircuitSet, wireString(fields[9], sc))
	b.Raw = append(b.Raw, wireString(fields[10], sc))
	b.PID = append(b.PID, NoID)
	b.TID = append(b.TID, NoID)
	b.CS = append(b.CS, NoID)
	return nil
}

// ValidateRow checks the structural invariants of row i, mirroring
// Alert.Validate without materializing the row.
func (b *Batch) ValidateRow(i int) error {
	if !b.Source[i].Valid() {
		return fmt.Errorf("alert: invalid source %v", b.Source[i])
	}
	if b.Type[i] == "" {
		return fmt.Errorf("alert: empty type")
	}
	if !b.Class[i].Valid() {
		return fmt.Errorf("alert: invalid class %v", b.Class[i])
	}
	if b.Time[i].IsZero() {
		return fmt.Errorf("alert: zero timestamp")
	}
	if b.End[i].Before(b.Time[i]) {
		return fmt.Errorf("alert: end %v before start %v", b.End[i], b.Time[i])
	}
	if b.Location[i].IsRoot() {
		return fmt.Errorf("alert: root location")
	}
	if b.Count[i] < 0 {
		return fmt.Errorf("alert: negative count %d", b.Count[i])
	}
	return nil
}

// DropLast removes the most recently appended row. Used by producers
// that validate after appending.
func (b *Batch) DropLast() {
	n := b.Len() - 1
	b.Time = b.Time[:n]
	b.End = b.End[:n]
	b.Source = b.Source[:n]
	b.Type = b.Type[:n]
	b.Class = b.Class[:n]
	b.Location = b.Location[:n]
	b.Peer = b.Peer[:n]
	b.Value = b.Value[:n]
	b.Count = b.Count[:n]
	b.CircuitSet = b.CircuitSet[:n]
	b.Raw = b.Raw[:n]
	b.PID = b.PID[:n]
	b.TID = b.TID[:n]
	b.CS = b.CS[:n]
}
