package alert

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"skynet/internal/hierarchy"
)

// Helpers for the compact wire format. Kept separate from codec.go so the
// escaping rules are reviewable in one place.

// wireLocSep replaces hierarchy.Sep inside wire location fields, because
// "|" is the wire field delimiter.
const wireLocSep = '/'

// parseWireLoc parses a "/"-separated wire location by slicing segments
// out of s in place — the substrings share s's backing, so a well-formed
// location costs no allocation beyond the field's string conversion.
func parseWireLoc(s string) (hierarchy.Path, error) {
	if s == "" {
		return hierarchy.Root(), nil
	}
	orig := s
	var segs [hierarchy.NumLevels]string
	n := 0
	for {
		i := strings.IndexByte(s, wireLocSep)
		if n == len(segs) {
			// Too deep; let hierarchy report it the canonical way.
			return hierarchy.Parse(strings.ReplaceAll(orig, string(wireLocSep), hierarchy.Sep))
		}
		if i < 0 {
			segs[n] = s
			n++
			break
		}
		segs[n] = s[:i]
		n++
		s = s[i+1:]
	}
	return hierarchy.New(segs[:n]...)
}

// escapeWire makes free-text fields safe for the pipe-delimited format:
// "|" and newlines are replaced with visually similar characters rather
// than escaped, keeping parsing allocation-free and unambiguous.
func escapeWire(s string) string {
	if !strings.ContainsAny(s, "|\n\r") {
		return s
	}
	r := strings.NewReplacer("|", "¦", "\n", " ", "\r", " ")
	return r.Replace(s)
}

func unescapeWire(s string) string { return s }

// parseSourceBytes is ParseSource without the string materialization:
// the comparison against each known name is allocation-free, so a
// decoder calling it in a hot loop costs nothing on the happy path.
func parseSourceBytes(b []byte) (Source, error) {
	for i, n := range sourceNames {
		if string(b) == n && Source(i) != SourceUnknown {
			return Source(i), nil
		}
	}
	return SourceUnknown, fmt.Errorf("alert: unknown source %q", b)
}

// parseClassBytes is ParseClass without the string materialization.
func parseClassBytes(b []byte) (Class, error) {
	for i, n := range classNames {
		if string(b) == n {
			return Class(i), nil
		}
	}
	return ClassInfo, fmt.Errorf("alert: unknown class %q", b)
}

// wireScratchMaxEntries caps each WireScratch cache; hostile or
// unbounded-cardinality input resets a full cache instead of growing it
// forever.
const wireScratchMaxEntries = 1 << 16

// WireScratch is a caller-owned decode cache for the compact wire
// format. Alert streams are massively repetitive — the same few dozen
// type names, locations, and (during a flood) even raw lines recur on
// every datagram — so the scratch interns decoded strings and parsed
// locations keyed by their wire bytes. A cache hit costs a map lookup
// and zero allocations; only the first sighting of a value pays the
// string materialization the reused socket buffer forces. Not safe for
// concurrent use: each reader goroutine owns one.
type WireScratch struct {
	strs map[string]string
	locs map[string]hierarchy.Path
}

// str returns the interned copy of b. The cache is keyed by the
// unescaped value, which equals the raw bytes while unescapeWire is the
// identity; if that ever changes, escaped inputs simply stop caching —
// they never return a wrong value.
func (sc *WireScratch) str(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if v, ok := sc.strs[string(b)]; ok {
		return v
	}
	if sc.strs == nil || len(sc.strs) >= wireScratchMaxEntries {
		sc.strs = make(map[string]string, 64)
	}
	v := unescapeWire(string(b))
	sc.strs[v] = v
	return v
}

// loc returns the parsed and cached location for wire field b.
func (sc *WireScratch) loc(b []byte) (hierarchy.Path, error) {
	if len(b) == 0 {
		return hierarchy.Root(), nil
	}
	if p, ok := sc.locs[string(b)]; ok {
		return p, nil
	}
	p, err := parseWireLoc(string(b))
	if err != nil {
		return p, err
	}
	if sc.locs == nil || len(sc.locs) >= wireScratchMaxEntries {
		sc.locs = make(map[string]hierarchy.Path, 64)
	}
	sc.locs[string(b)] = p
	return p, nil
}

// wireString materializes a free-text wire field, through the scratch
// cache when one is supplied.
func wireString(b []byte, sc *WireScratch) string {
	if sc != nil {
		return sc.str(b)
	}
	return unescapeWire(string(b))
}

// wireLoc parses a location wire field, through the scratch cache when
// one is supplied.
func wireLoc(b []byte, sc *WireScratch) (hierarchy.Path, error) {
	if sc != nil {
		return sc.loc(b)
	}
	return parseWireLoc(string(b))
}

func appendInt(dst []byte, v int64) []byte { return strconv.AppendInt(dst, v, 10) }

func parseInt(b []byte) (int64, error) { return strconv.ParseInt(string(b), 10, 64) }

func appendFloat(dst []byte, v float64) []byte {
	return strconv.AppendFloat(dst, v, 'g', -1, 64)
}

func parseFloat(b []byte) (float64, error) {
	if len(b) == 0 {
		return 0, nil
	}
	v, err := strconv.ParseFloat(string(b), 64)
	if err != nil {
		return 0, fmt.Errorf("parse float %q: %w", b, err)
	}
	return v, nil
}

// unixNano converts nanoseconds to a time.Time, mapping the sentinel
// value of the zero time back to a zero time.
func unixNano(n int64) time.Time {
	if n == zeroUnixNano {
		return time.Time{}
	}
	return time.Unix(0, n)
}

// zeroUnixNano is what time.Time{}.UnixNano() yields; used to round-trip
// unset timestamps through the wire format.
var zeroUnixNano = time.Time{}.UnixNano()
