package alert

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"skynet/internal/hierarchy"
)

// Helpers for the compact wire format. Kept separate from codec.go so the
// escaping rules are reviewable in one place.

// wireLocSep replaces hierarchy.Sep inside wire location fields, because
// "|" is the wire field delimiter.
const wireLocSep = '/'

// parseWireLoc parses a "/"-separated wire location by slicing segments
// out of s in place — the substrings share s's backing, so a well-formed
// location costs no allocation beyond the field's string conversion.
func parseWireLoc(s string) (hierarchy.Path, error) {
	if s == "" {
		return hierarchy.Root(), nil
	}
	orig := s
	var segs [hierarchy.NumLevels]string
	n := 0
	for {
		i := strings.IndexByte(s, wireLocSep)
		if n == len(segs) {
			// Too deep; let hierarchy report it the canonical way.
			return hierarchy.Parse(strings.ReplaceAll(orig, string(wireLocSep), hierarchy.Sep))
		}
		if i < 0 {
			segs[n] = s
			n++
			break
		}
		segs[n] = s[:i]
		n++
		s = s[i+1:]
	}
	return hierarchy.New(segs[:n]...)
}

// escapeWire makes free-text fields safe for the pipe-delimited format:
// "|" and newlines are replaced with visually similar characters rather
// than escaped, keeping parsing allocation-free and unambiguous.
func escapeWire(s string) string {
	if !strings.ContainsAny(s, "|\n\r") {
		return s
	}
	r := strings.NewReplacer("|", "¦", "\n", " ", "\r", " ")
	return r.Replace(s)
}

func unescapeWire(s string) string { return s }

func appendInt(dst []byte, v int64) []byte { return strconv.AppendInt(dst, v, 10) }

func parseInt(b []byte) (int64, error) { return strconv.ParseInt(string(b), 10, 64) }

func appendFloat(dst []byte, v float64) []byte {
	return strconv.AppendFloat(dst, v, 'g', -1, 64)
}

func parseFloat(b []byte) (float64, error) {
	if len(b) == 0 {
		return 0, nil
	}
	v, err := strconv.ParseFloat(string(b), 64)
	if err != nil {
		return 0, fmt.Errorf("parse float %q: %w", b, err)
	}
	return v, nil
}

// unixNano converts nanoseconds to a time.Time, mapping the sentinel
// value of the zero time back to a zero time.
func unixNano(n int64) time.Time {
	if n == zeroUnixNano {
		return time.Time{}
	}
	return time.Unix(0, n)
}

// zeroUnixNano is what time.Time{}.UnixNano() yields; used to round-trip
// unset timestamps through the wire format.
var zeroUnixNano = time.Time{}.UnixNano()
