// Package alert defines SkyNet's uniform alert model (§4.1 of the paper).
//
// Every monitoring tool — ping, SNMP, syslog, out-of-band, and the rest of
// Table 2 — emits raw observations in its own shape and cadence. The
// preprocessor converts them into the single structured form defined here:
// a Source (which tool), a Type (what happened), a Class (how much it
// matters for incident detection: failure, abnormal, or root-cause), a time
// span, and a Location in the network hierarchy.
package alert

import (
	"fmt"
	"time"

	"skynet/internal/hierarchy"
)

// Source identifies the monitoring data source that produced an alert,
// mirroring Table 2 of the paper.
type Source int

// The monitoring data sources integrated by SkyNet (Table 2).
const (
	SourceUnknown Source = iota
	SourcePing
	SourceTraceroute
	SourceOutOfBand
	SourceTraffic // sFlow traffic statistics
	SourceNetFlow // per-customer flow accounting
	SourceInternetTelemetry
	SourceSyslog
	SourceSNMP
	SourceINT // in-band network telemetry
	SourcePTP
	SourceRouteMonitoring
	SourceModificationEvents
	SourcePatrolInspection

	numSources
)

var sourceNames = [...]string{
	SourceUnknown:            "unknown",
	SourcePing:               "ping",
	SourceTraceroute:         "traceroute",
	SourceOutOfBand:          "out-of-band",
	SourceTraffic:            "traffic",
	SourceNetFlow:            "netflow",
	SourceInternetTelemetry:  "internet-telemetry",
	SourceSyslog:             "syslog",
	SourceSNMP:               "snmp",
	SourceINT:                "int",
	SourcePTP:                "ptp",
	SourceRouteMonitoring:    "route-monitoring",
	SourceModificationEvents: "modification-events",
	SourcePatrolInspection:   "patrol-inspection",
}

// Sources returns all real sources (excluding SourceUnknown), in Table 2
// order. The returned slice is freshly allocated.
func Sources() []Source {
	out := make([]Source, 0, int(numSources)-1)
	for s := SourcePing; s < numSources; s++ {
		out = append(out, s)
	}
	return out
}

// String returns the canonical lowercase source name.
func (s Source) String() string {
	if s < 0 || int(s) >= len(sourceNames) {
		return fmt.Sprintf("source(%d)", int(s))
	}
	return sourceNames[s]
}

// Valid reports whether s is a known real source.
func (s Source) Valid() bool { return s > SourceUnknown && s < numSources }

// ParseSource parses the canonical source name.
func ParseSource(name string) (Source, error) {
	for i, n := range sourceNames {
		if n == name && Source(i) != SourceUnknown {
			return Source(i), nil
		}
	}
	return SourceUnknown, fmt.Errorf("alert: unknown source %q", name)
}

// MarshalText implements encoding.TextMarshaler.
func (s Source) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (s *Source) UnmarshalText(b []byte) error {
	v, err := ParseSource(string(b))
	if err != nil {
		return err
	}
	*s = v
	return nil
}

// Class is the importance tier SkyNet assigns to an alert type (§4.2).
type Class int

// The three alert classes of §4.2, plus ClassInfo for alerts that carry
// context but never count toward incident thresholds.
const (
	// ClassInfo alerts are informational only (e.g. a completed planned
	// modification). They are retained for display but never counted.
	ClassInfo Class = iota
	// ClassAbnormal alerts flag irregular but not definitively broken
	// behaviour: jitter, sudden latency increase, abrupt flow decrease.
	ClassAbnormal
	// ClassRootCause alerts indicate failures of network entities: device
	// or NIC failures, link outages, CRC errors, risky routing paths.
	ClassRootCause
	// ClassFailure alerts mark definitively abnormal network behaviour:
	// packet loss, packet bit flips, high transmission latency. They are
	// the most authoritative signal during incident detection.
	ClassFailure

	numClasses
)

var classNames = [...]string{
	ClassInfo:      "info",
	ClassAbnormal:  "abnormal",
	ClassRootCause: "rootcause",
	ClassFailure:   "failure",
}

// String returns the canonical lowercase class name.
func (c Class) String() string {
	if c < 0 || int(c) >= len(classNames) {
		return fmt.Sprintf("class(%d)", int(c))
	}
	return classNames[c]
}

// Valid reports whether c is a known class.
func (c Class) Valid() bool { return c >= ClassInfo && c < numClasses }

// ParseClass parses the canonical class name.
func ParseClass(name string) (Class, error) {
	for i, n := range classNames {
		if n == name {
			return Class(i), nil
		}
	}
	return ClassInfo, fmt.Errorf("alert: unknown class %q", name)
}

// MarshalText implements encoding.TextMarshaler.
func (c Class) MarshalText() ([]byte, error) { return []byte(c.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (c *Class) UnmarshalText(b []byte) error {
	v, err := ParseClass(string(b))
	if err != nil {
		return err
	}
	*c = v
	return nil
}

// TypeKey identifies an alert kind for deduplicated counting: the locator
// counts distinct (source, type) pairs rather than alert instances (§4.2).
type TypeKey struct {
	Source Source
	Type   string
}

// String renders "[source][type]" as in Figure 6.
func (k TypeKey) String() string { return "[" + k.Source.String() + "][" + k.Type + "]" }

// Alert is SkyNet's uniform structured alert (§4.1): the output format of
// the preprocessor and the input of the locator.
type Alert struct {
	// ID is a process-unique identifier assigned at ingestion.
	ID uint64 `json:"id,omitempty"`

	// Source is the monitoring tool that produced the alert.
	Source Source `json:"source"`

	// Type names what happened, e.g. "packet loss", "link down",
	// "bgp peer down". Types are normalized lowercase strings; syslog
	// types come from FT-tree templates.
	Type string `json:"type"`

	// Class is the importance tier of the alert type.
	Class Class `json:"class"`

	// Time is when the condition started; End is the last time it was
	// observed. For one-shot alerts (syslog) End equals Time. The
	// preprocessor extends End as repeated observations arrive,
	// implementing the "duration" attribute of §4.1.
	Time time.Time `json:"time"`
	End  time.Time `json:"end"`

	// Location is the position in the network hierarchy the alert is
	// attributed to. Link alerts are split by the preprocessor into two
	// alerts, one per endpoint device, before reaching the locator.
	Location hierarchy.Path `json:"location"`

	// Peer is the far end of a link- or path-scoped measurement
	// (e.g. the ping destination), or the zero Path.
	Peer hierarchy.Path `json:"peer,omitempty"`

	// Value carries the source-specific magnitude: packet-loss ratio for
	// ping/sFlow (0..1), utilization for SNMP traffic, delay seconds for
	// PTP, etc. Zero when not applicable.
	Value float64 `json:"value,omitempty"`

	// Count is the number of raw observations consolidated into this
	// alert. The preprocessor sets it ≥ 1.
	Count int `json:"count,omitempty"`

	// CircuitSet names the redundant circuit group a link alert belongs
	// to, used by the evaluator's impact factor (Eq. 1). Empty when not
	// link-scoped.
	CircuitSet string `json:"circuitset,omitempty"`

	// Raw preserves the original message (e.g. the syslog line) for
	// operator display.
	Raw string `json:"raw,omitempty"`
}

// Key returns the dedup-counting key for the alert: the locator counts
// distinct (source, type) pairs (§4.2).
func (a *Alert) Key() TypeKey { return TypeKey{Source: a.Source, Type: a.Type} }

// StreamKey identifies an aggregation stream: alerts of the same source
// and type are consolidated together, but per-circuit-set streams stay
// separate so the evaluator keeps its per-set break and SLA ratios
// (Eq. 1). Type-based counting still uses Key.
type StreamKey struct {
	Source     Source
	Type       string
	CircuitSet string
}

// StreamKey returns the aggregation-stream key for the alert.
func (a *Alert) StreamKey() StreamKey {
	return StreamKey{Source: a.Source, Type: a.Type, CircuitSet: a.CircuitSet}
}

// TypeKey returns the counting key of the stream.
func (k StreamKey) TypeKey() TypeKey { return TypeKey{Source: k.Source, Type: k.Type} }

// Duration returns how long the condition has been observed. One-shot
// alerts have zero duration.
func (a *Alert) Duration() time.Duration {
	if a.End.Before(a.Time) {
		return 0
	}
	return a.End.Sub(a.Time)
}

// Validate checks structural invariants of a preprocessed alert.
func (a *Alert) Validate() error {
	if !a.Source.Valid() {
		return fmt.Errorf("alert: invalid source %v", a.Source)
	}
	if a.Type == "" {
		return fmt.Errorf("alert: empty type")
	}
	if !a.Class.Valid() {
		return fmt.Errorf("alert: invalid class %v", a.Class)
	}
	if a.Time.IsZero() {
		return fmt.Errorf("alert: zero timestamp")
	}
	if a.End.Before(a.Time) {
		return fmt.Errorf("alert: end %v before start %v", a.End, a.Time)
	}
	if a.Location.IsRoot() {
		return fmt.Errorf("alert: root location")
	}
	if a.Count < 0 {
		return fmt.Errorf("alert: negative count %d", a.Count)
	}
	return nil
}

// String renders a compact single-line operator view, in the spirit of the
// structured-alert boxes of Figure 6.
func (a *Alert) String() string {
	return fmt.Sprintf("%s %s loc=%s class=%s t=%s..%s n=%d",
		a.Key(), valueStr(a.Value), a.Location, a.Class,
		a.Time.Format(time.TimeOnly), a.End.Format(time.TimeOnly), a.Count)
}

func valueStr(v float64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%.4g", v)
}
