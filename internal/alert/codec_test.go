package alert

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"skynet/internal/hierarchy"
)

func TestJSONLinesRoundTrip(t *testing.T) {
	in := []Alert{testAlert(), testAlert(), testAlert()}
	in[1].Source = SourceSyslog
	in[1].Type = TypeLinkDown
	in[1].Class = ClassRootCause
	in[1].Raw = "LINEPROTO-5-UPDOWN: Line protocol on Interface TenGigE0/1/0/25, changed state to down"
	in[2].Peer = hierarchy.MustNew("RegionA", "Citya", "Logic site 2", "Site I", "Cluster o", "Device o")

	var buf bytes.Buffer
	if err := WriteAll(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d alerts, want %d", len(out), len(in))
	}
	for i := range in {
		if !alertEqual(&in[i], &out[i]) {
			t.Errorf("alert %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestDecoderSkipsBlankLines(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	a := testAlert()
	if err := e.Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	input := "\n\n" + buf.String() + "\n\n"
	out, err := ReadAll(strings.NewReader(input))
	if err != nil || len(out) != 1 {
		t.Fatalf("ReadAll = %d alerts, %v", len(out), err)
	}
}

func TestDecoderRejectsGarbage(t *testing.T) {
	_, err := ReadAll(strings.NewReader("{not json}\n"))
	if err == nil {
		t.Error("want decode error")
	}
}

func TestDecoderLineTooLong(t *testing.T) {
	long := strings.Repeat("x", MaxLineBytes+10)
	d := NewDecoder(strings.NewReader(long))
	var a Alert
	err := d.Decode(&a)
	if !errors.Is(err, ErrLineTooLong) {
		t.Errorf("got %v, want ErrLineTooLong", err)
	}
}

func TestDecoderEOF(t *testing.T) {
	d := NewDecoder(strings.NewReader(""))
	var a Alert
	if err := d.Decode(&a); !errors.Is(err, io.EOF) {
		t.Errorf("got %v, want EOF", err)
	}
}

func TestWireRoundTrip(t *testing.T) {
	a := testAlert()
	a.CircuitSet = "cs-17"
	a.Raw = "Packet loss to H3"
	line := AppendWire(nil, &a)
	got, err := ParseWire(line)
	if err != nil {
		t.Fatal(err)
	}
	got.ID = a.ID // ID is not carried on the wire
	if !alertEqual(&a, &got) {
		t.Errorf("wire round trip:\n got %+v\nwant %+v", got, a)
	}
}

func TestWireZeroTimes(t *testing.T) {
	a := testAlert()
	a.End = time.Time{}
	a.Time = time.Time{}
	line := AppendWire(nil, &a)
	got, err := ParseWire(line)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Time.IsZero() || !got.End.IsZero() {
		t.Errorf("zero times not preserved: %v %v", got.Time, got.End)
	}
}

func TestWireEscaping(t *testing.T) {
	a := testAlert()
	a.Raw = "weird|raw\nwith newline"
	line := AppendWire(nil, &a)
	if bytes.Count(line, []byte{'|'}) != 10 {
		t.Fatalf("escaping failed: %d delimiters in %q", bytes.Count(line, []byte{'|'}), line)
	}
	if _, err := ParseWire(line); err != nil {
		t.Fatal(err)
	}
}

func TestWireErrors(t *testing.T) {
	cases := []string{
		"",
		"1|2|3",
		"x|0|ping|t|failure|R|R|0|1||",         // bad start time
		"0|x|ping|t|failure|R|R|0|1||",         // bad end time
		"0|0|bogus|t|failure|R|R|0|1||",        // bad source
		"0|0|ping|t|bogus|R|R|0|1||",           // bad class
		"0|0|ping|t|failure|a//b|R|0|1||",      // bad location
		"0|0|ping|t|failure|R|a//b|0|1||",      // bad peer
		"0|0|ping|t|failure|R|R|notafloat|1||", // bad value
		"0|0|ping|t|failure|R|R|0|notanint||",  // bad count
	}
	for _, c := range cases {
		if _, err := ParseWire([]byte(c)); err == nil {
			t.Errorf("ParseWire(%q): want error", c)
		}
	}
	if _, err := ParseWire(bytes.Repeat([]byte{'x'}, MaxLineBytes+1)); !errors.Is(err, ErrLineTooLong) {
		t.Error("oversize wire line: want ErrLineTooLong")
	}
}

func randWireAlert(r *rand.Rand) Alert {
	srcs := Sources()
	depth := 1 + r.Intn(hierarchy.NumLevels)
	segs := make([]string, depth)
	for i := range segs {
		segs[i] = string(rune('A'+r.Intn(5))) + string(rune('0'+r.Intn(10)))
	}
	t0 := time.Unix(r.Int63n(1e9), int64(r.Intn(1e9))).UTC()
	return Alert{
		Source:   srcs[r.Intn(len(srcs))],
		Type:     "type-" + string(rune('a'+r.Intn(26))),
		Class:    Class(r.Intn(int(numClasses))),
		Time:     t0,
		End:      t0.Add(time.Duration(r.Intn(600)) * time.Second),
		Location: hierarchy.MustNew(segs...),
		Value:    float64(r.Intn(1000)) / 997.0,
		Count:    r.Intn(100),
	}
}

func TestPropertyWireRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		a := randWireAlert(rand.New(rand.NewSource(seed)))
		got, err := ParseWire(AppendWire(nil, &a))
		return err == nil && alertEqual(&a, &got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyJSONRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		a := randWireAlert(rand.New(rand.NewSource(seed)))
		var buf bytes.Buffer
		if err := WriteAll(&buf, []Alert{a}); err != nil {
			return false
		}
		out, err := ReadAll(&buf)
		return err == nil && len(out) == 1 && alertEqual(&a, &out[0])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// alertEqual compares alerts with time equality that tolerates the
// monotonic-clock stripping done by serialization.
func alertEqual(a, b *Alert) bool {
	return a.Source == b.Source &&
		a.Type == b.Type &&
		a.Class == b.Class &&
		a.Time.Equal(b.Time) &&
		a.End.Equal(b.End) &&
		a.Location == b.Location &&
		a.Peer == b.Peer &&
		a.Value == b.Value &&
		a.Count == b.Count &&
		a.CircuitSet == b.CircuitSet
}
